// Benchmarks regenerating the paper's evaluation artifacts — one bench per
// table and figure (run them with -v to see the regenerated rows) — plus
// ablation benches for the design choices called out in DESIGN.md §6.
//
// The figure benches run the experiment harness at a reduced problem scale
// and application subset so `go test -bench=.` completes in minutes; use
// cmd/sweep for the full-size runs recorded in EXPERIMENTS.md.
package swiftsim

import (
	"fmt"
	"os"
	"runtime"
	"testing"

	"swiftsim/internal/config"
	"swiftsim/internal/experiments"
	"swiftsim/internal/regress"
	"swiftsim/internal/runner"
	"swiftsim/internal/sim"
	"swiftsim/internal/trace"
	"swiftsim/internal/workload"
)

// benchParams returns a reduced-cost experiment parameterization for
// benchmarking; `go test -short` shrinks it further.
func benchParams(b *testing.B) experiments.Params {
	p := experiments.Params{
		Apps:  []string{"BFS", "HOTSPOT", "NW", "GEMM", "ADI", "SM", "GRU", "PAGERANK"},
		Scale: 0.4,
	}
	if testing.Short() {
		p.Apps = p.Apps[:3]
		p.Scale = 0.15
		p.GPU = config.RTX2080Ti()
		p.GPU.NumSMs = 8
		p.GPU.MemPartitions = 4
	}
	return p
}

// BenchmarkTable1 regenerates Table I (three-GPU comparison).
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Table1(os.Stderr)
	}
}

// BenchmarkTable2 regenerates Table II (RTX 2080 Ti configuration).
func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Table2(os.Stderr)
	}
}

// BenchmarkFigure4 regenerates Figure 4: per-application prediction error
// of the three simulators against the golden hardware reference, plus
// single-thread speedups over the detailed baseline.
func BenchmarkFigure4(b *testing.B) {
	p := benchParams(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure4(p)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			res.Print(os.Stderr)
		}
	}
}

// BenchmarkFigure5 regenerates Figure 5: the speedup contribution
// analysis (analytical ALU, analytical memory, parallel execution).
func BenchmarkFigure5(b *testing.B) {
	p := benchParams(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure5(p)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			res.Print(os.Stderr)
		}
	}
}

// BenchmarkFigure6 regenerates Figure 6: prediction error of the detailed
// simulator and Swift-Sim-Basic across the three GPU architectures.
func BenchmarkFigure6(b *testing.B) {
	p := benchParams(b)
	p.Apps = p.Apps[:4] // three full GPUs per app: keep the bench bounded
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure6(p)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			res.Print(os.Stderr)
		}
	}
}

// BenchmarkGoldenCorpus measures one full pass over the committed golden
// regression corpus (20 apps × 3 GPU presets under Swift-Sim-Memory) —
// the cost of the drift check gating every change; see
// internal/regress and the `make verify` target.
func BenchmarkGoldenCorpus(b *testing.B) {
	corpus := regress.DefaultCorpus()
	if testing.Short() {
		corpus.Apps = corpus.Apps[:4]
		corpus.GPUs = corpus.GPUs[:1]
	}
	cases := corpus.Cases()
	var insts uint64
	for i := 0; i < b.N; i++ {
		insts = 0
		for _, cs := range cases {
			res, err := cs.Run()
			if err != nil {
				b.Fatalf("%s on %s: %v", cs.App, cs.GPU.Name, err)
			}
			insts += res.Instructions
		}
	}
	b.ReportMetric(float64(len(cases))*float64(b.N)/b.Elapsed().Seconds(), "cases/s")
	b.ReportMetric(float64(insts), "warp-insts")
}

// benchGPU returns the GPU used by the ablation benches.
func benchGPU() config.GPU {
	g := config.RTX2080Ti()
	g.NumSMs = 16
	g.MemPartitions = 8
	return g
}

func runOnce(b *testing.B, app string, scale float64, gpu config.GPU, opts sim.Options) uint64 {
	b.Helper()
	w, err := workload.Generate(app, scale)
	if err != nil {
		b.Fatal(err)
	}
	res, err := sim.Run(w, gpu, opts)
	if err != nil {
		b.Fatal(err)
	}
	return res.Cycles
}

// BenchmarkAblationScheduler sweeps the warp-scheduler policy (the
// module the paper's working example keeps cycle-accurate for design
// exploration).
func BenchmarkAblationScheduler(b *testing.B) {
	for _, pol := range []config.SchedPolicy{config.GTO, config.LRR, config.OldestFirst} {
		b.Run(pol.String(), func(b *testing.B) {
			gpu := benchGPU()
			gpu.SM.Scheduler = pol
			var cycles uint64
			for i := 0; i < b.N; i++ {
				cycles = runOnce(b, "BFS", 0.3, gpu, sim.Options{Kind: sim.Memory})
			}
			b.ReportMetric(float64(cycles), "gpu-cycles")
		})
	}
}

// BenchmarkAblationReplacement sweeps the L1 replacement policy — the
// flexibility the paper contrasts against LRU-only analytical cache
// models.
func BenchmarkAblationReplacement(b *testing.B) {
	for _, rep := range []config.Replacement{config.LRU, config.FIFO, config.Random} {
		b.Run(rep.String(), func(b *testing.B) {
			gpu := benchGPU()
			gpu.L1.Replacement = rep
			var cycles uint64
			for i := 0; i < b.N; i++ {
				cycles = runOnce(b, "SRAD", 0.3, gpu, sim.Options{Kind: sim.Basic})
			}
			b.ReportMetric(float64(cycles), "gpu-cycles")
		})
	}
}

// BenchmarkAblationHitRateSource compares Swift-Sim-Memory with hit rates
// from the functional cache simulator vs reuse-distance theory.
func BenchmarkAblationHitRateSource(b *testing.B) {
	for _, src := range []struct {
		name string
		s    sim.HitRateSource
	}{{"FunctionalCaches", sim.FunctionalCaches}, {"ReuseDistance", sim.ReuseDistance}} {
		b.Run(src.name, func(b *testing.B) {
			var cycles uint64
			for i := 0; i < b.N; i++ {
				cycles = runOnce(b, "MVT", 0.3, benchGPU(),
					sim.Options{Kind: sim.Memory, HitRates: src.s})
			}
			b.ReportMetric(float64(cycles), "gpu-cycles")
		})
	}
}

// BenchmarkSimulatorThroughput measures raw simulation speed
// (instructions per second) of the three configurations on one workload —
// the per-app speedup substrate of Figure 4's scatter plot.
func BenchmarkSimulatorThroughput(b *testing.B) {
	app, err := workload.Generate("SM", 0.4)
	if err != nil {
		b.Fatal(err)
	}
	for _, kind := range []sim.Kind{sim.Detailed, sim.Basic, sim.Memory} {
		b.Run(kind.String(), func(b *testing.B) {
			gpu := benchGPU()
			var insts uint64
			for i := 0; i < b.N; i++ {
				res, err := sim.Run(app, gpu, sim.Options{Kind: kind})
				if err != nil {
					b.Fatal(err)
				}
				insts = res.Instructions
			}
			b.ReportMetric(float64(insts)*float64(b.N)/b.Elapsed().Seconds(), "warp-insts/s")
		})
	}
}

// BenchmarkObsOff pins the observability off-path contract: with no
// tracer, a full Detailed simulation — every obs hook compiled in, all of
// them hitting the nil check — must match the untraced baseline. The
// benchmark runs in the benchcmp gate, so an accidentally hot off path
// (an allocation per request, a missed level check) regresses the gated
// time. The alloc assertion makes the cheaper half of the contract exact:
// the hook sequence itself must not allocate at all.
func BenchmarkObsOff(b *testing.B) {
	var tr *Tracer // the off path: Config.Trace left nil
	allocs := testing.AllocsPerRun(1000, func() {
		if tr.Enabled(TraceModule) {
			b.Fatal("nil tracer reported enabled")
		}
		tr.Span(TraceRequest, "mem", "l1", 0, 0, 1)
		tr.Counter(TraceModule, "active_sms", 0, 0, 1)
		tr.Instant(TraceKernel, "job", "launch", 0, 0)
	})
	if allocs != 0 {
		b.Fatalf("off-path trace hooks allocated %.1f times per run; want 0", allocs)
	}
	app, err := workload.Generate("BFS", 0.3)
	if err != nil {
		b.Fatal(err)
	}
	gpu := benchGPU()
	var cycles uint64
	for i := 0; i < b.N; i++ {
		res, err := sim.Run(app, gpu, sim.Options{Kind: sim.Detailed})
		if err != nil {
			b.Fatal(err)
		}
		cycles = res.Cycles
	}
	b.ReportMetric(float64(cycles), "gpu-cycles")
}

// BenchmarkRunnerScaling measures sweep throughput as the worker count
// grows — the paper's Figure 5 axis. The job list is a fixed mix of
// applications and simulator kinds so each thread count does identical
// work; jobs/s is the comparable metric across sub-benchmarks.
func BenchmarkRunnerScaling(b *testing.B) {
	apps := []string{"BFS", "HOTSPOT", "NW", "GEMM", "ADI", "SM", "GRU", "PAGERANK"}
	gpu := benchGPU()
	var jobs []runner.Job
	for _, name := range apps {
		w, err := workload.Generate(name, 0.2)
		if err != nil {
			b.Fatal(err)
		}
		for _, kind := range []sim.Kind{sim.Basic, sim.Memory} {
			jobs = append(jobs, runner.Job{App: w, GPU: gpu, Opts: sim.Options{Kind: kind}})
		}
	}
	threadCounts := []int{1, 2, 4, runtime.NumCPU()}
	for _, threads := range threadCounts {
		b.Run(fmt.Sprintf("threads=%d", threads), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for _, o := range runner.RunAll(jobs, threads) {
					if o.Err != nil {
						b.Fatal(o.Err)
					}
				}
			}
			b.ReportMetric(float64(len(jobs))*float64(b.N)/b.Elapsed().Seconds(), "jobs/s")
		})
	}
}

// BenchmarkEngineParallel measures intra-simulation parallelism: one
// Detailed simulation of a compute-heavy workload with its SMs sharded
// across 1, 2, 4 and NumCPU engine threads. Results are deterministic at
// every thread count (the engine synchronizes shards at a per-cycle
// barrier), so the bench also cross-checks cycles against the serial run;
// speedup is bounded by the host's core count. The threads=1/threads=4
// pair feeds the `make benchcmp` speedup gate on multi-core hosts.
func BenchmarkEngineParallel(b *testing.B) {
	app, err := workload.Generate("GEMM", 4.0)
	if err != nil {
		b.Fatal(err)
	}
	gpu := benchGPU()
	base, err := sim.Run(app, gpu, sim.Options{Kind: sim.Detailed})
	if err != nil {
		b.Fatal(err)
	}
	threadCounts := []int{1, 2, 4}
	if n := runtime.NumCPU(); n != 1 && n != 2 && n != 4 {
		threadCounts = append(threadCounts, n)
	}
	for _, threads := range threadCounts {
		b.Run(fmt.Sprintf("threads=%d", threads), func(b *testing.B) {
			var cycles uint64
			for i := 0; i < b.N; i++ {
				res, err := sim.Run(app, gpu, sim.Options{Kind: sim.Detailed, EngineThreads: threads})
				if err != nil {
					b.Fatal(err)
				}
				cycles = res.Cycles
			}
			if cycles != base.Cycles {
				b.Fatalf("EngineThreads=%d cycles %d != serial %d", threads, cycles, base.Cycles)
			}
			b.ReportMetric(float64(cycles), "gpu-cycles")
		})
	}
}

// BenchmarkEngineRelaxed measures the relaxed-sync epoch mode: the same
// sharded Detailed simulation as BenchmarkEngineParallel at a fixed thread
// count, sweeping the epoch length k. k=1 is the exact protocol (cycles
// cross-checked against the serial run); k=8 and k=64 amortize the barrier
// over longer shard passes and trade bounded cycle drift for wall-clock
// speed — the accuracy side of the trade is pinned by the error-envelope
// fixtures in internal/regress. The k=1/k=8 pair feeds the `make benchcmp`
// epoch speedup gate on multi-core hosts.
func BenchmarkEngineRelaxed(b *testing.B) {
	app, err := workload.Generate("GEMM", 4.0)
	if err != nil {
		b.Fatal(err)
	}
	gpu := benchGPU()
	base, err := sim.Run(app, gpu, sim.Options{Kind: sim.Detailed})
	if err != nil {
		b.Fatal(err)
	}
	threads := 4
	if n := runtime.NumCPU(); n < threads {
		threads = n
	}
	for _, k := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			var cycles uint64
			for i := 0; i < b.N; i++ {
				res, err := sim.Run(app, gpu, sim.Options{
					Kind: sim.Detailed, EngineThreads: threads, EpochCycles: k})
				if err != nil {
					b.Fatal(err)
				}
				cycles = res.Cycles
			}
			if k == 1 && cycles != base.Cycles {
				b.Fatalf("EpochCycles=1 cycles %d != serial %d", cycles, base.Cycles)
			}
			b.ReportMetric(float64(cycles), "gpu-cycles")
		})
	}
}

// BenchmarkEngineSampled measures the sampled-execution mode end to end: a
// corpus of repeat-heavy applications (iterative GRU and LSTM, where
// launch memoization replays most kernels, each surviving launch block-
// sampled) under Swift-Sim-Basic on a 4-SM GPU, exact vs. default
// sampling. The corpus=off/corpus=on pair feeds the `make benchcmp`
// sampling speedup floor — the gate is host-size independent (serial
// single simulations), so it runs even on small hosts where the engine
// sharding floors are skipped. Accuracy of the same operating point is
// pinned separately by the sample envelopes in internal/regress.
func BenchmarkEngineSampled(b *testing.B) {
	corpus := []struct {
		name  string
		scale float64
	}{{"GRU", 2}, {"LSTM", 2}}
	gpu := config.RTX2080Ti()
	gpu.NumSMs = 4
	gpu.MemPartitions = 2
	apps := make([]*trace.App, len(corpus))
	for i, c := range corpus {
		w, err := workload.Generate(c.name, c.scale)
		if err != nil {
			b.Fatal(err)
		}
		apps[i] = w
	}
	for _, mode := range []struct {
		name string
		s    sim.Sampling
	}{{"corpus=off", sim.Sampling{}}, {"corpus=on", sim.Sampling{Enabled: true}}} {
		b.Run(mode.name, func(b *testing.B) {
			var cycles uint64
			for i := 0; i < b.N; i++ {
				cycles = 0
				for j, w := range apps {
					res, err := sim.Run(w, gpu, sim.Options{Kind: sim.Basic, Sampling: mode.s})
					if err != nil {
						b.Fatal(err)
					}
					if res.Sampled != mode.s.Enabled {
						b.Fatalf("%s: Sampled=%t, want %t", corpus[j].name, res.Sampled, mode.s.Enabled)
					}
					cycles += res.Cycles
				}
			}
			b.ReportMetric(float64(cycles), "gpu-cycles")
		})
	}
}

// BenchmarkAblationTopology swaps the interconnect module between crossbar
// and ring — the NoC-exploration flexibility the paper contrasts against
// queueing-model NoCs.
func BenchmarkAblationTopology(b *testing.B) {
	for _, topo := range []string{"crossbar", "ring"} {
		b.Run(topo, func(b *testing.B) {
			gpu := benchGPU()
			gpu.NoCTopology = topo
			var cycles uint64
			for i := 0; i < b.N; i++ {
				cycles = runOnce(b, "SM", 0.3, gpu, sim.Options{Kind: sim.Detailed})
			}
			b.ReportMetric(float64(cycles), "gpu-cycles")
		})
	}
}

// BenchmarkAblationHybridDepth compares the four hybridization depths on
// one workload: how much speed each additional analytical module buys.
func BenchmarkAblationHybridDepth(b *testing.B) {
	for _, kind := range []sim.Kind{sim.Detailed, sim.Basic, sim.L2Hybrid, sim.Memory} {
		b.Run(kind.String(), func(b *testing.B) {
			var cycles uint64
			for i := 0; i < b.N; i++ {
				cycles = runOnce(b, "GRU", 0.3, benchGPU(), sim.Options{Kind: kind})
			}
			b.ReportMetric(float64(cycles), "gpu-cycles")
		})
	}
}

// BenchmarkAblationSampling measures wave-aware block sampling: simulated
// work shrinks with the sampling fraction while extrapolated cycles stay
// in band.
func BenchmarkAblationSampling(b *testing.B) {
	for _, frac := range []float64{0, 0.5, 0.25} {
		name := "full"
		if frac > 0 {
			name = fmt.Sprintf("frac%.2f", frac)
		}
		b.Run(name, func(b *testing.B) {
			// A small GPU so the workload spans several waves and
			// sampling has blocks to skip.
			gpu := benchGPU()
			gpu.NumSMs = 4
			gpu.MemPartitions = 2
			var cycles uint64
			for i := 0; i < b.N; i++ {
				cycles = runOnce(b, "SM", 2, gpu,
					sim.Options{Kind: sim.Basic, SampleBlocks: frac})
			}
			b.ReportMetric(float64(cycles), "gpu-cycles")
		})
	}
}
