package swiftsim_test

import (
	"fmt"
	"sort"

	"swiftsim"
)

// Simulating a bundled workload with the hybrid Swift-Sim-Memory
// configuration. Cycle counts are deterministic, so the output is stable.
func ExampleSimulate() {
	gpu := swiftsim.RTX2080Ti()
	gpu.NumSMs = 4 // scaled down so the example runs instantly
	gpu.MemPartitions = 2
	app, _ := swiftsim.GenerateWorkload("MVT", 0.1)
	res, _ := swiftsim.Simulate(app, gpu, swiftsim.Config{
		Simulator: swiftsim.SwiftSimMemory,
	})
	fmt.Println(res.App, res.Kind, res.Instructions, "instructions")
	// Output: MVT Swift-Sim-Memory 880 instructions
}

// Listing the bundled benchmark suites.
func ExampleWorkloadCatalog() {
	suites := map[string]int{}
	for _, w := range swiftsim.WorkloadCatalog() {
		suites[w.Suite]++
	}
	names := make([]string, 0, len(suites))
	for s := range suites {
		names = append(names, s)
	}
	sort.Strings(names)
	for _, s := range names {
		fmt.Println(s, suites[s])
	}
	// Output:
	// Mars 2
	// Pannotia 2
	// Polybench 6
	// Rodinia 7
	// Tango 3
}

// Exploring a custom warp-scheduling policy — the paper's motivating
// scenario — by plugging a WarpPicker into any simulator configuration.
func ExampleConfig_customScheduler() {
	gpu := swiftsim.RTX2080Ti()
	gpu.NumSMs = 4
	gpu.MemPartitions = 2
	app, _ := swiftsim.GenerateWorkload("BFS", 0.1)
	res, _ := swiftsim.Simulate(app, gpu, swiftsim.Config{
		Simulator: swiftsim.SwiftSimMemory,
		Scheduler: func(smID, subCore int) swiftsim.WarpPicker {
			return swiftsim.NewMemFirstPicker()
		},
	})
	fmt.Println(res.Instructions == uint64(app.Insts()))
	// Output: true
}
