package main

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

// syncBuffer is an io.Writer the daemon goroutine writes while the test
// reads.
type syncBuffer struct {
	mu sync.Mutex
	sb strings.Builder
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.sb.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.sb.String()
}

var listenRE = regexp.MustCompile(`listening on (http://[^ ]+)`)

// startDaemon launches realMain on an ephemeral port and returns its base
// URL, a shutdown trigger and the exit-code channel.
func startDaemon(t *testing.T, args ...string) (url string, stop func(), done chan int, out *syncBuffer, errw *syncBuffer) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	out, errw = &syncBuffer{}, &syncBuffer{}
	done = make(chan int, 1)
	full := append([]string{"-addr", "127.0.0.1:0", "-cache-dir", t.TempDir()}, args...)
	go func() { done <- realMain(ctx, full, out, errw) }()

	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if m := listenRE.FindStringSubmatch(out.String()); m != nil {
			return m[1], cancel, done, out, errw
		}
		select {
		case code := <-done:
			t.Fatalf("daemon exited %d before listening; stderr:\n%s", code, errw.String())
		case <-time.After(2 * time.Millisecond):
		}
	}
	cancel()
	t.Fatal("daemon never printed its address")
	return "", nil, nil, nil, nil
}

// TestDaemonLifecycle boots the daemon, runs one sweep through the HTTP
// API, then triggers the signal path and expects a clean drain (exit 0).
func TestDaemonLifecycle(t *testing.T) {
	url, stop, done, out, errw := startDaemon(t)

	resp, err := http.Get(url + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}

	spec := `{"apps":["BFS"],"gpus":["RTX2080Ti"],"sims":["memory"],"scale":0.1}`
	resp, err = http.Post(url+"/v1/sweeps", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	var sub struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST = %d", resp.StatusCode)
	}

	// The events stream terminates when the sweep does.
	resp, err = http.Get(url + "/v1/sweeps/" + sub.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	stream, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || !strings.Contains(string(stream), `"type":"sweep"`) {
		t.Fatalf("event stream did not complete (%v):\n%s", err, stream)
	}

	resp, err = http.Get(url + "/v1/sweeps/" + sub.ID + "/results")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "swiftsim-canonical 1") {
		t.Fatalf("results = %d:\n%s", resp.StatusCode, body)
	}

	stop()
	select {
	case code := <-done:
		if code != 0 {
			t.Fatalf("exit = %d, want 0; stderr:\n%s", code, errw.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not shut down")
	}
	if !strings.Contains(out.String(), "drained cleanly") {
		t.Errorf("missing drain confirmation:\n%s", out.String())
	}
}

func TestDaemonBadFlag(t *testing.T) {
	var out, errw syncBuffer
	if code := realMain(context.Background(), []string{"-no-such-flag"}, &out, &errw); code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
}

// TestDaemonRejectsRelaxedEpochSerialEngine mirrors the cmd/sweep check:
// a daemon default of -epoch-cycles > 1 without a parallel engine is a
// configuration contradiction, rejected at startup.
func TestDaemonRejectsRelaxedEpochSerialEngine(t *testing.T) {
	var out, errw syncBuffer
	code := realMain(context.Background(),
		[]string{"-epoch-cycles", "8"}, &out, &errw)
	if code != 1 {
		t.Fatalf("exit = %d, want 1; stderr:\n%s", code, errw.String())
	}
	if !strings.Contains(errw.String(), "-engine-threads") {
		t.Errorf("stderr does not point at -engine-threads:\n%s", errw.String())
	}
}

// TestDaemonBadRemoteFlags: nonsensical lease tuning is rejected at
// startup rather than surfacing as runaway requeue behavior later.
func TestDaemonBadRemoteFlags(t *testing.T) {
	for _, args := range [][]string{
		{"-remote", "-lease-ttl", "0s"},
		{"-remote", "-lease-ttl", "-5s"},
		{"-remote", "-lease-retries", "0"},
	} {
		var out, errw syncBuffer
		if code := realMain(context.Background(), args, &out, &errw); code != 1 {
			t.Errorf("realMain(%v) = %d, want 1", args, code)
		}
	}
}

func TestDaemonBadTraceLevel(t *testing.T) {
	var out, errw syncBuffer
	code := realMain(context.Background(),
		[]string{"-trace-out", "x.json", "-trace-level", "bogus"}, &out, &errw)
	if code != 1 || !strings.Contains(errw.String(), "trace level") {
		t.Fatalf("exit = %d, stderr:\n%s", code, errw.String())
	}
}

// TestDaemonTraceLevelOffWarns mirrors the cmd/sweep satellite: -trace-out
// with the level off is called out instead of silently writing nothing.
func TestDaemonTraceLevelOffWarns(t *testing.T) {
	url, stop, done, _, errw := startDaemon(t,
		"-trace-out", t.TempDir()+"/trace.json", "-trace-level", "off")
	resp, err := http.Get(url + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !strings.Contains(errw.String(), "warning") {
		t.Errorf("no warning about ignored -trace-out:\n%s", errw.String())
	}
	stop()
	<-done
}
