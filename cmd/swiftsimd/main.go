// Command swiftsimd is the Swift-Sim sweep daemon: a long-running HTTP
// service that accepts sweep specifications (applications × GPU presets ×
// simulator kinds), executes them on a bounded worker pool, and serves
// per-job progress and byte-stable canonical results. Identical jobs are
// served from a persistent on-disk cache, across requests and across
// restarts.
//
// API (see internal/service):
//
//	POST /v1/sweeps              submit {"apps":[...],"gpus":[...],"sims":[...],"scale":0.1}
//	GET  /v1/sweeps/{id}         poll status
//	GET  /v1/sweeps/{id}/events  stream NDJSON progress
//	GET  /v1/sweeps/{id}/results fetch canonical metrics
//	GET  /v1/stats               cache and queue counters
//	GET  /healthz                liveness
//
// With -remote, jobs are not simulated in this process: they are
// published to a lease-based job board and executed by swiftsim-worker
// processes pulling over the same HTTP API (worker registration,
// long-poll claims, heartbeat-renewed leases with requeue on worker
// loss, and a content-addressed blob store carrying traces, configs and
// canonical results by hash).
//
// SIGINT/SIGTERM triggers a graceful drain: in-flight and queued sweeps
// get -drain-timeout to finish before being hard-canceled.
//
// Usage:
//
//	swiftsimd -addr :8080 -cache-dir /var/cache/swiftsim [-queue-depth 64]
//	          [-workers 2] [-threads 8] [-max-job-timeout 5m] [-drain-timeout 30s]
//	          [-engine-threads 4 -epoch-cycles 8]
//	          [-remote -lease-ttl 10s -lease-retries 3]
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"swiftsim/internal/cliutil"
	"swiftsim/internal/obs"
	"swiftsim/internal/service"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(realMain(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

// realMain runs the daemon until ctx is canceled and returns the process
// exit code: 0 after a clean drain, 1 on startup failure or when the
// drain deadline forced a hard cancel. Split from main so tests can drive
// the full lifecycle.
func realMain(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("swiftsimd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "127.0.0.1:8080", "listen address")
	cacheDir := fs.String("cache-dir", "swiftsim-cache", "persistent result cache directory")
	queueDepth := fs.Int("queue-depth", 64, "max queued+running jobs before submissions are shed with 429")
	workers := fs.Int("workers", 1, "sweeps executed concurrently")
	threads := fs.Int("threads", 0, "worker pool per sweep (0 = NumCPU)")
	maxJobTimeout := fs.Duration("max-job-timeout", 5*time.Minute, "cap and default for per-job wall-clock budgets (0 = none)")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "grace period for queued sweeps on shutdown")
	engineThreads := fs.Int("engine-threads", 1, "default engine shards per simulation for specs that omit engine_threads (deterministic; the per-sweep job pool shrinks to threads/engine-threads)")
	epochCycles := fs.Int("epoch-cycles", 1, "default relaxed-sync epoch length for specs that omit epoch_cycles (1 = exact per-cycle barrier; >1 trades bounded cycle drift for speed and requires -engine-threads > 1)")
	sample := fs.Bool("sample", false, "default sampled execution for specs that omit sample: replay repeated kernel launches and simulate a representative block subset per launch")
	sampleFrac := fs.Float64("sample-frac", 0, "with -sample: default fraction of post-first-wave blocks to simulate in (0,1); 0 = simulator default")
	sampleStride := fs.Int("sample-stride", 0, "with -sample: default launch re-simulation stride (0 = simulator default, 1 = no replay)")
	traceOut := fs.String("trace-out", "", "write a Chrome trace-event JSON file for all sweeps")
	traceLevel := fs.String("trace-level", "kernel", "trace detail: off|kernel|module|request")
	remote := fs.Bool("remote", false, "execute jobs on swiftsim-worker processes pulling over HTTP instead of in-process (lease-based ownership; see -lease-ttl/-lease-retries)")
	leaseTTL := fs.Duration("lease-ttl", 10*time.Second, "with -remote: how long a claimed job survives without a worker heartbeat before it is requeued")
	leaseRetries := fs.Int("lease-retries", 3, "with -remote: how many expired leases a job may burn through before failing terminally")
	if err := fs.Parse(args); err != nil {
		return 1
	}
	if err := cliutil.ValidateModes(cliutil.Modes{
		EngineThreads:  *engineThreads,
		EpochCycles:    *epochCycles,
		Sample:         *sample,
		SampleFraction: *sampleFrac,
		SampleStride:   *sampleStride,
	}); err != nil {
		fmt.Fprintln(stderr, "swiftsimd:", err)
		return 1
	}

	var tracer *obs.Tracer
	if *traceOut != "" {
		level, err := obs.ParseLevel(*traceLevel)
		if err != nil {
			fmt.Fprintf(stderr, "swiftsimd: -trace-level: %v\n", err)
			return 1
		}
		if level == obs.Off {
			fmt.Fprintf(stderr, "swiftsimd: warning: -trace-out %s ignored because -trace-level is off; no trace file will be written\n", *traceOut)
		} else {
			f, err := os.Create(*traceOut)
			if err != nil {
				fmt.Fprintf(stderr, "swiftsimd: -trace-out: %v\n", err)
				return 1
			}
			rec := obs.NewJSONStream(f)
			defer func() {
				if cerr := rec.Close(); cerr != nil {
					fmt.Fprintf(stderr, "swiftsimd: -trace-out: %v\n", cerr)
				}
			}()
			tracer = obs.New(rec, level)
		}
	}

	if *leaseTTL <= 0 || *leaseRetries < 1 {
		fmt.Fprintln(stderr, "swiftsimd: -lease-ttl must be > 0 and -lease-retries >= 1")
		return 1
	}
	svcCfg := service.Config{
		CacheDir:      *cacheDir,
		QueueDepth:    *queueDepth,
		Workers:       *workers,
		Threads:       *threads,
		MaxJobTimeout: *maxJobTimeout,
		EngineThreads: *engineThreads,
		EpochCycles:   *epochCycles,
		Trace:         tracer,
		Remote: service.RemoteConfig{
			Enabled:     *remote,
			LeaseTTL:    *leaseTTL,
			MaxAttempts: *leaseRetries,
		},
	}
	if *sample {
		svcCfg.Sampling = service.SamplingDefaults{
			Enabled:       true,
			BlockFraction: *sampleFrac,
			ReplayStride:  *sampleStride,
		}
	}
	svc, err := service.New(svcCfg)
	if err != nil {
		fmt.Fprintln(stderr, "swiftsimd:", err)
		return 1
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(stderr, "swiftsimd:", err)
		return 1
	}
	// The resolved address is printed (not just the flag value) so
	// ":0"-style addresses are usable by scripts and tests.
	fmt.Fprintf(stdout, "swiftsimd: listening on http://%s (cache %s, queue depth %d)\n",
		ln.Addr(), *cacheDir, *queueDepth)

	srv := &http.Server{Handler: service.NewHandler(svc)}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	select {
	case err := <-serveErr:
		fmt.Fprintln(stderr, "swiftsimd:", err)
		return 1
	case <-ctx.Done():
	}

	// Graceful drain: stop accepting connections, then give queued and
	// in-flight sweeps the grace period before hard-canceling them.
	fmt.Fprintf(stdout, "swiftsimd: shutting down (drain %v)\n", *drainTimeout)
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(dctx); err != nil {
		fmt.Fprintf(stderr, "swiftsimd: http shutdown: %v\n", err)
	}
	if err := svc.Close(dctx); err != nil {
		fmt.Fprintf(stderr, "swiftsimd: drain deadline exceeded, in-flight jobs canceled: %v\n", err)
		return 1
	}
	fmt.Fprintln(stdout, "swiftsimd: drained cleanly")
	return 0
}
