// Command explore runs a design-space exploration: it sweeps one hardware
// configuration key over a list of values and simulates a set of workloads
// under a chosen simulator configuration, printing predicted cycles per
// point — the architect workflow Swift-Sim exists to accelerate.
//
// The swept key uses the configuration-file syntax (see cmd/swiftsim
// -config), so any parameter can be explored.
//
// Examples:
//
//	explore -key sm.scheduler -values GTO,LRR,OLDEST -apps BFS,SM -sim memory
//	explore -key l1.sets -values 32,64,128 -apps SRAD -sim basic
//	explore -key gpu.noc_topology -values crossbar,ring -apps SM -sim detailed
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"swiftsim"
	"swiftsim/internal/cliutil"
	"swiftsim/internal/config"
)

func main() {
	os.Exit(realMain(os.Args[1:], os.Stdout, os.Stderr))
}

// realMain runs the command and returns the process exit code. Split from
// main so tests can drive the full command, including flag parsing and
// exit codes.
func realMain(args []string, stdout, stderr io.Writer) int {
	if err := run(args, stdout, stderr); err != nil {
		fmt.Fprintln(stderr, "explore:", err)
		return 1
	}
	return 0
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("explore", flag.ContinueOnError)
	fs.SetOutput(stderr)
	key := fs.String("key", "", "configuration key to sweep (e.g. sm.scheduler, l1.sets)")
	values := fs.String("values", "", "comma-separated values for -key")
	apps := fs.String("apps", "BFS,SM,GEMM", "comma-separated workloads")
	scale := fs.Float64("scale", 0.5, "workload problem scale")
	gpuName := fs.String("gpu", "RTX2080Ti", "base GPU preset")
	simName := fs.String("sim", "memory", "simulator: detailed|basic|memory|l2")
	sample := fs.Float64("sample", 0, "block-sampling fraction in (0,1)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *key == "" || *values == "" {
		return fmt.Errorf("-key and -values are required")
	}
	var simulator swiftsim.Simulator
	switch *simName {
	case "detailed":
		simulator = swiftsim.Detailed
	case "basic":
		simulator = swiftsim.SwiftSimBasic
	case "memory":
		simulator = swiftsim.SwiftSimMemory
	case "l2":
		simulator = swiftsim.SwiftSimL2
	default:
		return fmt.Errorf("unknown simulator %q", *simName)
	}

	points := cliutil.SplitList(*values)
	appNames := cliutil.SplitList(*apps)
	if len(points) == 0 {
		return fmt.Errorf("-values %q contains no values", *values)
	}
	if len(appNames) == 0 {
		return fmt.Errorf("-apps %q contains no applications", *apps)
	}

	// Build one GPU per sweep point by round-tripping through the
	// configuration-file parser, so any file key is sweepable.
	gpus := make([]swiftsim.GPU, len(points))
	for i, v := range points {
		text := fmt.Sprintf("gpu.base = %s\n%s = %s\n", *gpuName, *key, v)
		g, err := config.Parse(strings.NewReader(text))
		if err != nil {
			return fmt.Errorf("sweep point %q: %w", v, err)
		}
		gpus[i] = g
	}

	fmt.Fprintf(stdout, "design-space exploration: %s over %v (%s, scale %g)\n\n",
		*key, points, simulator, *scale)
	fmt.Fprintf(stdout, "%-12s", "App")
	for _, v := range points {
		fmt.Fprintf(stdout, " %12s", v)
	}
	fmt.Fprintln(stdout)

	for _, name := range appNames {
		app, err := swiftsim.GenerateWorkload(name, *scale)
		if err != nil {
			return err
		}
		// All sweep points of one app run in parallel.
		jobs := make([]swiftsim.Job, len(gpus))
		for i, g := range gpus {
			jobs[i] = swiftsim.Job{App: app, GPU: g, Cfg: swiftsim.Config{
				Simulator: simulator, SampleBlocks: *sample,
			}}
		}
		fmt.Fprintf(stdout, "%-12s", name)
		for _, out := range swiftsim.SimulateAll(jobs, 0) {
			if out.Err != nil {
				return out.Err
			}
			fmt.Fprintf(stdout, " %12d", out.Result.Cycles)
		}
		fmt.Fprintln(stdout)
	}
	return nil
}
