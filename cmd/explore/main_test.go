package main

import (
	"strings"
	"testing"
)

func runCmd(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errw strings.Builder
	code = realMain(args, &out, &errw)
	return code, out.String(), errw.String()
}

// TestSweepSchedulers drives a tiny two-point exploration end to end and
// checks the table structure: a header naming the key, a column per sweep
// point, and a row per app.
func TestSweepSchedulers(t *testing.T) {
	code, out, stderr := runCmd(t,
		"-key", "sm.scheduler", "-values", "GTO,LRR",
		"-apps", "BFS", "-scale", "0.1", "-sim", "memory")
	if code != 0 {
		t.Fatalf("exit = %d, stderr:\n%s", code, stderr)
	}
	for _, want := range []string{"sm.scheduler", "GTO", "LRR", "BFS"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// The BFS row must carry one cycle count per sweep point.
	var row string
	for _, l := range strings.Split(out, "\n") {
		if strings.HasPrefix(l, "BFS") {
			row = l
		}
	}
	if fields := strings.Fields(row); len(fields) != 3 {
		t.Errorf("BFS row has %d fields, want 3 (app + 2 points): %q", len(fields), row)
	}
}

// TestDeterministicAcrossRuns pins that two identical explorations print
// identical tables (the parallel runner must not reorder output).
func TestDeterministicAcrossRuns(t *testing.T) {
	args := []string{"-key", "l1.ways", "-values", "4,8",
		"-apps", "SM,BFS", "-scale", "0.1", "-sim", "memory"}
	_, out1, _ := runCmd(t, args...)
	code, out2, stderr := runCmd(t, args...)
	if code != 0 {
		t.Fatalf("exit = %d, stderr:\n%s", code, stderr)
	}
	if out1 != out2 {
		t.Errorf("exploration output not deterministic:\nfirst:\n%s\nsecond:\n%s", out1, out2)
	}
}

// TestListFlagsTolerant: padded elements and trailing commas in -values
// and -apps are cleaned up rather than producing phantom sweep points or
// empty app names.
func TestListFlagsTolerant(t *testing.T) {
	code, out, stderr := runCmd(t,
		"-key", "l1.ways", "-values", " 4 , 8 ,",
		"-apps", " BFS ,", "-scale", "0.1", "-sim", "memory")
	if code != 0 {
		t.Fatalf("exit = %d, stderr:\n%s", code, stderr)
	}
	var row string
	for _, l := range strings.Split(out, "\n") {
		if strings.HasPrefix(l, "BFS") {
			row = l
		}
	}
	if fields := strings.Fields(row); len(fields) != 3 {
		t.Errorf("BFS row has %d fields, want 3 (app + 2 points): %q", len(fields), row)
	}
}

func TestExitOneOnErrors(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"missing key", []string{"-values", "1,2"}, "-key and -values are required"},
		{"missing values", []string{"-key", "l1.sets"}, "-key and -values are required"},
		{"bad flag", []string{"-no-such-flag"}, "flag provided but not defined"},
		{"unknown sim", []string{"-key", "l1.sets", "-values", "64", "-sim", "x"}, "unknown simulator"},
		{"bad sweep value", []string{"-key", "l1.sets", "-values", "64,banana", "-apps", "BFS", "-scale", "0.1"}, `sweep point "banana"`},
		{"unknown key", []string{"-key", "no.such.key", "-values", "1", "-apps", "BFS", "-scale", "0.1"}, "unknown configuration key"},
		{"unknown app", []string{"-key", "l1.sets", "-values", "64", "-apps", "NOPE", "-scale", "0.1"}, "NOPE"},
		{"empty values list", []string{"-key", "l1.sets", "-values", ",,"}, "contains no values"},
		{"empty apps list", []string{"-key", "l1.sets", "-values", "64", "-apps", " , "}, "contains no applications"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, _, stderr := runCmd(t, tc.args...)
			if code != 1 {
				t.Fatalf("exit = %d, want 1", code)
			}
			if !strings.Contains(stderr, tc.want) {
				t.Errorf("stderr missing %q:\n%s", tc.want, stderr)
			}
		})
	}
}
