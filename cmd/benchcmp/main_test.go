package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const oldBench = `goos: linux
BenchmarkSimulatorThroughput/Detailed-8   2  200000000 ns/op  50 warp-insts/s
BenchmarkSimulatorThroughput/Detailed-8   2  220000000 ns/op  45 warp-insts/s
BenchmarkSimulatorThroughput/Detailed-8   2  180000000 ns/op  55 warp-insts/s
BenchmarkGoldenCorpus-8                   1  1200000000 ns/op 48 cases/s
PASS
`

const newBench = `goos: linux
BenchmarkSimulatorThroughput/Detailed-8   10  50000000 ns/op  200 warp-insts/s
BenchmarkSimulatorThroughput/Detailed-8   10  40000000 ns/op  250 warp-insts/s
BenchmarkSimulatorThroughput/Detailed-8   10  45000000 ns/op  220 warp-insts/s
BenchmarkGoldenCorpus-8                    2  600000000 ns/op 96 cases/s
BenchmarkOnlyInNew-8                       1  1000 ns/op
PASS
`

func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestCompareMedianSpeedup(t *testing.T) {
	o := writeTemp(t, "old.txt", oldBench)
	n := writeTemp(t, "new.txt", newBench)
	var out, errb bytes.Buffer
	if code := realMain([]string{o, n}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	s := out.String()
	// Median old 200ms vs median new 45ms: 4.44x.
	if !strings.Contains(s, "4.44x") {
		t.Errorf("missing Detailed speedup 4.44x in:\n%s", s)
	}
	if !strings.Contains(s, "2.00x") {
		t.Errorf("missing GoldenCorpus speedup 2.00x in:\n%s", s)
	}
	if !strings.Contains(s, "geomean") {
		t.Errorf("missing geomean in:\n%s", s)
	}
	if strings.Contains(s, "OnlyInNew") {
		t.Errorf("benchmark missing from old side must be skipped:\n%s", s)
	}
}

func TestGate(t *testing.T) {
	o := writeTemp(t, "old.txt", oldBench)
	n := writeTemp(t, "new.txt", newBench)
	var out, errb bytes.Buffer
	if code := realMain([]string{"-gate", "10", o, n}, &out, &errb); code != 2 {
		t.Fatalf("exit %d, want 2 (gate at 10x must fail)", code)
	}
	if code := realMain([]string{"-gate", "1.5", o, n}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, want 0 (gate at 1.5x must pass)", code)
	}
}

func TestAlternateMetric(t *testing.T) {
	o := writeTemp(t, "old.txt", oldBench)
	n := writeTemp(t, "new.txt", newBench)
	var out, errb bytes.Buffer
	if code := realMain([]string{"-metric", "cases/s", o, n}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "BenchmarkGoldenCorpus-8") {
		t.Errorf("cases/s comparison missing GoldenCorpus:\n%s", out.String())
	}
	// Throughput metrics: "speedup" is new/old inverted — the tool reports
	// old/new, so a rising cases/s shows as 0.5x; callers pick the metric
	// accordingly. Just assert it parsed one row.
	if strings.Contains(out.String(), "Detailed") {
		t.Errorf("Detailed has no cases/s metric, must be skipped:\n%s", out.String())
	}
}

func TestBadInput(t *testing.T) {
	o := writeTemp(t, "old.txt", "no benchmarks here\n")
	n := writeTemp(t, "new.txt", newBench)
	var out, errb bytes.Buffer
	if code := realMain([]string{o, n}, &out, &errb); code != 1 {
		t.Fatalf("exit %d, want 1 for input without benchmarks", code)
	}
	if code := realMain([]string{o}, &out, &errb); code != 1 {
		t.Fatalf("exit %d, want 1 for wrong arg count", code)
	}
}

func TestJSONReport(t *testing.T) {
	o := writeTemp(t, "old.txt", oldBench)
	n := writeTemp(t, "new.txt", newBench)
	out := filepath.Join(t.TempDir(), "cmp.json")
	var stdout, stderr bytes.Buffer
	if code := realMain([]string{"-gate", "1.5", "-json", out, o, n}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatalf("-json wrote nothing: %v", err)
	}
	var rep struct {
		Metric     string `json:"metric"`
		Benchmarks []struct {
			Name    string  `json:"name"`
			Speedup float64 `json:"speedup"`
		} `json:"benchmarks"`
		Geomean float64 `json:"geomean"`
		Gate    *struct {
			Floor float64 `json:"floor"`
			Pass  bool    `json:"pass"`
		} `json:"gate"`
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("-json output does not parse: %v\n%s", err, data)
	}
	if rep.Metric != "ns/op" || len(rep.Benchmarks) != 2 {
		t.Errorf("report has metric %q and %d rows, want ns/op and 2", rep.Metric, len(rep.Benchmarks))
	}
	if rep.Benchmarks[0].Speedup < 4.4 || rep.Benchmarks[0].Speedup > 4.5 {
		t.Errorf("Detailed speedup %.4f, want ~4.44", rep.Benchmarks[0].Speedup)
	}
	if rep.Gate == nil || !rep.Gate.Pass || rep.Gate.Floor != 1.5 {
		t.Errorf("gate record %+v, want pass at floor 1.5", rep.Gate)
	}

	// A failing gate must still write the file, recording pass=false.
	if code := realMain([]string{"-gate", "10", "-json", out, o, n}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	data, err = os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Gate == nil || rep.Gate.Pass {
		t.Errorf("failing gate recorded %+v, want pass=false", rep.Gate)
	}
}

func TestJSONWithin(t *testing.T) {
	o := writeTemp(t, "old.txt", withinBench)
	n := writeTemp(t, "new.txt", withinBench)
	out := filepath.Join(t.TempDir(), "cmp.json")
	var stdout, stderr bytes.Buffer
	spec := "BenchmarkEngineParallel/threads=1,BenchmarkEngineParallel/threads=4,1.8"
	if code := realMain([]string{"-within", spec, "-json", out, o, n}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Within *struct {
			Speedup float64 `json:"speedup"`
			Floor   float64 `json:"floor"`
			Pass    bool    `json:"pass"`
		} `json:"within"`
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Within == nil || !rep.Within.Pass || rep.Within.Speedup != 2.05 {
		t.Errorf("within record %+v, want pass at 2.05x", rep.Within)
	}
}

const withinBench = `goos: linux
BenchmarkEngineParallel/threads=1-8  2  400000000 ns/op
BenchmarkEngineParallel/threads=1-8  2  420000000 ns/op
BenchmarkEngineParallel/threads=1-8  2  410000000 ns/op
BenchmarkEngineParallel/threads=4-8  2  200000000 ns/op
BenchmarkEngineParallel/threads=4-8  2  190000000 ns/op
BenchmarkEngineParallel/threads=4-8  2  210000000 ns/op
PASS
`

func TestWithinGate(t *testing.T) {
	o := writeTemp(t, "old.txt", withinBench)
	n := writeTemp(t, "new.txt", withinBench)
	spec := "BenchmarkEngineParallel/threads=1,BenchmarkEngineParallel/threads=4,"
	var out, errb bytes.Buffer
	// 410ms / 200ms = 2.05x: passes a 1.8 floor, fails a 2.5 floor. The
	// spec omits the -8 cpu suffix — matching must ignore it.
	if code := realMain([]string{"-within", spec + "1.8", o, n}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, want 0 (2.05x over a 1.8x floor); stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "2.05x") {
		t.Errorf("missing within speedup 2.05x in:\n%s", out.String())
	}
	if code := realMain([]string{"-within", spec + "2.5", o, n}, &out, &errb); code != 2 {
		t.Fatalf("exit %d, want 2 (2.05x under a 2.5x floor)", code)
	}
	if code := realMain([]string{"-within", "nope,also-nope,1.8", o, n}, &out, &errb); code != 1 {
		t.Fatalf("exit %d, want 1 (unknown benchmarks)", code)
	}
	if code := realMain([]string{"-within", "bad-spec", o, n}, &out, &errb); code != 1 {
		t.Fatalf("exit %d, want 1 (malformed spec)", code)
	}
}
