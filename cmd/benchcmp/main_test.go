package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const oldBench = `goos: linux
BenchmarkSimulatorThroughput/Detailed-8   2  200000000 ns/op  50 warp-insts/s
BenchmarkSimulatorThroughput/Detailed-8   2  220000000 ns/op  45 warp-insts/s
BenchmarkSimulatorThroughput/Detailed-8   2  180000000 ns/op  55 warp-insts/s
BenchmarkGoldenCorpus-8                   1  1200000000 ns/op 48 cases/s
PASS
`

const newBench = `goos: linux
BenchmarkSimulatorThroughput/Detailed-8   10  50000000 ns/op  200 warp-insts/s
BenchmarkSimulatorThroughput/Detailed-8   10  40000000 ns/op  250 warp-insts/s
BenchmarkSimulatorThroughput/Detailed-8   10  45000000 ns/op  220 warp-insts/s
BenchmarkGoldenCorpus-8                    2  600000000 ns/op 96 cases/s
BenchmarkOnlyInNew-8                       1  1000 ns/op
PASS
`

func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestCompareMedianSpeedup(t *testing.T) {
	o := writeTemp(t, "old.txt", oldBench)
	n := writeTemp(t, "new.txt", newBench)
	var out, errb bytes.Buffer
	if code := realMain([]string{o, n}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	s := out.String()
	// Median old 200ms vs median new 45ms: 4.44x.
	if !strings.Contains(s, "4.44x") {
		t.Errorf("missing Detailed speedup 4.44x in:\n%s", s)
	}
	if !strings.Contains(s, "2.00x") {
		t.Errorf("missing GoldenCorpus speedup 2.00x in:\n%s", s)
	}
	if !strings.Contains(s, "geomean") {
		t.Errorf("missing geomean in:\n%s", s)
	}
	if strings.Contains(s, "OnlyInNew") {
		t.Errorf("benchmark missing from old side must be skipped:\n%s", s)
	}
}

func TestGate(t *testing.T) {
	o := writeTemp(t, "old.txt", oldBench)
	n := writeTemp(t, "new.txt", newBench)
	var out, errb bytes.Buffer
	if code := realMain([]string{"-gate", "10", o, n}, &out, &errb); code != 2 {
		t.Fatalf("exit %d, want 2 (gate at 10x must fail)", code)
	}
	if code := realMain([]string{"-gate", "1.5", o, n}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, want 0 (gate at 1.5x must pass)", code)
	}
}

func TestAlternateMetric(t *testing.T) {
	o := writeTemp(t, "old.txt", oldBench)
	n := writeTemp(t, "new.txt", newBench)
	var out, errb bytes.Buffer
	if code := realMain([]string{"-metric", "cases/s", o, n}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "BenchmarkGoldenCorpus-8") {
		t.Errorf("cases/s comparison missing GoldenCorpus:\n%s", out.String())
	}
	// Throughput metrics: "speedup" is new/old inverted — the tool reports
	// old/new, so a rising cases/s shows as 0.5x; callers pick the metric
	// accordingly. Just assert it parsed one row.
	if strings.Contains(out.String(), "Detailed") {
		t.Errorf("Detailed has no cases/s metric, must be skipped:\n%s", out.String())
	}
}

func TestBadInput(t *testing.T) {
	o := writeTemp(t, "old.txt", "no benchmarks here\n")
	n := writeTemp(t, "new.txt", newBench)
	var out, errb bytes.Buffer
	if code := realMain([]string{o, n}, &out, &errb); code != 1 {
		t.Fatalf("exit %d, want 1 for input without benchmarks", code)
	}
	if code := realMain([]string{o}, &out, &errb); code != 1 {
		t.Fatalf("exit %d, want 1 for wrong arg count", code)
	}
}

func TestJSONReport(t *testing.T) {
	o := writeTemp(t, "old.txt", oldBench)
	n := writeTemp(t, "new.txt", newBench)
	out := filepath.Join(t.TempDir(), "cmp.json")
	var stdout, stderr bytes.Buffer
	if code := realMain([]string{"-gate", "1.5", "-json", out, o, n}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatalf("-json wrote nothing: %v", err)
	}
	var rep struct {
		Metric     string `json:"metric"`
		Benchmarks []struct {
			Name    string  `json:"name"`
			Speedup float64 `json:"speedup"`
		} `json:"benchmarks"`
		Geomean float64 `json:"geomean"`
		Gate    *struct {
			Floor float64 `json:"floor"`
			Pass  bool    `json:"pass"`
		} `json:"gate"`
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("-json output does not parse: %v\n%s", err, data)
	}
	if rep.Metric != "ns/op" || len(rep.Benchmarks) != 2 {
		t.Errorf("report has metric %q and %d rows, want ns/op and 2", rep.Metric, len(rep.Benchmarks))
	}
	if rep.Benchmarks[0].Speedup < 4.4 || rep.Benchmarks[0].Speedup > 4.5 {
		t.Errorf("Detailed speedup %.4f, want ~4.44", rep.Benchmarks[0].Speedup)
	}
	if rep.Gate == nil || !rep.Gate.Pass || rep.Gate.Floor != 1.5 {
		t.Errorf("gate record %+v, want pass at floor 1.5", rep.Gate)
	}

	// A failing gate must still write the file, recording pass=false.
	if code := realMain([]string{"-gate", "10", "-json", out, o, n}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	data, err = os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Gate == nil || rep.Gate.Pass {
		t.Errorf("failing gate recorded %+v, want pass=false", rep.Gate)
	}
}

func TestJSONWithin(t *testing.T) {
	o := writeTemp(t, "old.txt", withinBench)
	n := writeTemp(t, "new.txt", withinBench)
	out := filepath.Join(t.TempDir(), "cmp.json")
	var stdout, stderr bytes.Buffer
	spec := "BenchmarkEngineParallel/threads=1,BenchmarkEngineParallel/threads=4,1.8"
	if code := realMain([]string{"-within", spec, "-json", out, o, n}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Within *struct {
			Speedup float64 `json:"speedup"`
			Floor   float64 `json:"floor"`
			Pass    bool    `json:"pass"`
		} `json:"within"`
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Within == nil || !rep.Within.Pass || rep.Within.Speedup != 2.05 {
		t.Errorf("within record %+v, want pass at 2.05x", rep.Within)
	}
}

const withinBench = `goos: linux
BenchmarkEngineParallel/threads=1-8  2  400000000 ns/op
BenchmarkEngineParallel/threads=1-8  2  420000000 ns/op
BenchmarkEngineParallel/threads=1-8  2  410000000 ns/op
BenchmarkEngineParallel/threads=4-8  2  200000000 ns/op
BenchmarkEngineParallel/threads=4-8  2  190000000 ns/op
BenchmarkEngineParallel/threads=4-8  2  210000000 ns/op
PASS
`

// memBench carries the -benchmem columns; memOldNoCols is the same
// benchmarks as recorded before -benchmem was turned on (ns/op only).
const memBench = `goos: linux
BenchmarkEngineShardedTick/shards=2-8  1000  1425 ns/op  0 B/op  0 allocs/op
BenchmarkEngineShardedTick/shards=2-8  1000  1430 ns/op  0 B/op  0 allocs/op
BenchmarkEngineShardedTick/shards=2-8  1000  1418 ns/op  0 B/op  0 allocs/op
BenchmarkEngineShardedTick/shards=4-8  1000  2633 ns/op  16 B/op  1 allocs/op
BenchmarkEngineShardedTick/shards=4-8  1000  2640 ns/op  16 B/op  1 allocs/op
BenchmarkEngineShardedTick/shards=4-8  1000  2629 ns/op  32 B/op  2 allocs/op
PASS
`

const memOldNoCols = `goos: linux
BenchmarkEngineShardedTick/shards=2-8  1000  1500 ns/op
BenchmarkEngineShardedTick/shards=4-8  1000  2700 ns/op
PASS
`

func TestBenchmemMetrics(t *testing.T) {
	o := writeTemp(t, "old.txt", memBench)
	n := writeTemp(t, "new.txt", memBench)
	for _, metric := range []string{"B/op", "allocs/op"} {
		var out, errb bytes.Buffer
		if code := realMain([]string{"-metric", metric, o, n}, &out, &errb); code != 0 {
			t.Fatalf("-metric %s: exit %d, stderr: %s", metric, code, errb.String())
		}
		s := out.String()
		if !strings.Contains(s, "shards=2") || !strings.Contains(s, "shards=4") {
			t.Errorf("-metric %s table missing rows:\n%s", metric, s)
		}
	}
}

func TestMaxGate(t *testing.T) {
	o := writeTemp(t, "old.txt", memBench)
	n := writeTemp(t, "new.txt", memBench)
	// shards=2 median is 0 allocs/op: passes a 0 ceiling. The spec omits
	// the -8 cpu suffix — matching must ignore it.
	var out, errb bytes.Buffer
	args := []string{"-metric", "allocs/op", "-max", "BenchmarkEngineShardedTick/shards=2,0", o, n}
	if code := realMain(args, &out, &errb); code != 0 {
		t.Fatalf("exit %d, want 0 (0 allocs under a 0 ceiling); stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "max: BenchmarkEngineShardedTick/shards=2") {
		t.Errorf("missing max report line in:\n%s", out.String())
	}
	// shards=4 median is 1 allocs/op: fails a 0 ceiling.
	out.Reset()
	errb.Reset()
	args = []string{"-metric", "allocs/op", "-max", "BenchmarkEngineShardedTick/shards=4,0", o, n}
	if code := realMain(args, &out, &errb); code != 2 {
		t.Fatalf("exit %d, want 2 (1 alloc over a 0 ceiling)", code)
	}
	if !strings.Contains(errb.String(), "above ceiling") {
		t.Errorf("missing ceiling violation on stderr:\n%s", errb.String())
	}
	// Repeatable: one passing and one failing spec still fails.
	if code := realMain([]string{"-metric", "allocs/op",
		"-max", "BenchmarkEngineShardedTick/shards=2,0",
		"-max", "BenchmarkEngineShardedTick/shards=4,0", o, n}, &out, &errb); code != 2 {
		t.Fatalf("exit %d, want 2 (second -max trips)", code)
	}
	if code := realMain([]string{"-max", "nope,0", o, n}, &out, &errb); code != 1 {
		t.Fatalf("exit %d, want 1 (unknown benchmark)", code)
	}
	if code := realMain([]string{"-max", "bad-spec", o, n}, &out, &errb); code != 1 {
		t.Fatalf("exit %d, want 1 (malformed spec)", code)
	}
	if code := realMain([]string{"-max", "BenchmarkEngineShardedTick/shards=2,-1", o, n}, &out, &errb); code != 1 {
		t.Fatalf("exit %d, want 1 (negative ceiling)", code)
	}
}

func TestMaxWithOldFileLackingBenchmem(t *testing.T) {
	o := writeTemp(t, "old.txt", memOldNoCols)
	n := writeTemp(t, "new.txt", memBench)
	// Without -max, an old baseline with no allocs/op samples is fatal.
	var out, errb bytes.Buffer
	if code := realMain([]string{"-metric", "allocs/op", o, n}, &out, &errb); code != 1 {
		t.Fatalf("exit %d, want 1 (old file lacks the metric, nothing to gate)", code)
	}
	// With -max, the ceiling is absolute: the comparison is skipped with a
	// note and the gate runs against the new file alone.
	out.Reset()
	errb.Reset()
	args := []string{"-metric", "allocs/op", "-max", "BenchmarkEngineShardedTick/shards=2,0", o, n}
	if code := realMain(args, &out, &errb); code != 0 {
		t.Fatalf("exit %d, want 0; stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "comparison skipped") {
		t.Errorf("missing skip note in:\n%s", out.String())
	}
	// And a violated ceiling still trips even without a baseline.
	args = []string{"-metric", "allocs/op", "-max", "BenchmarkEngineShardedTick/shards=4,0", o, n}
	if code := realMain(args, &out, &errb); code != 2 {
		t.Fatalf("exit %d, want 2 (ceiling violated, no baseline needed)", code)
	}
	// The reverse mix — new file lacking the metric — stays fatal: there is
	// nothing to measure the ceiling against.
	if code := realMain([]string{"-metric", "allocs/op",
		"-max", "BenchmarkEngineShardedTick/shards=2,0",
		writeTemp(t, "old2.txt", memBench), writeTemp(t, "new2.txt", memOldNoCols)},
		&out, &errb); code != 1 {
		t.Fatalf("exit %d, want 1 (new file lacks the metric)", code)
	}
}

func TestJSONMax(t *testing.T) {
	o := writeTemp(t, "old.txt", memBench)
	n := writeTemp(t, "new.txt", memBench)
	out := filepath.Join(t.TempDir(), "cmp.json")
	var stdout, stderr bytes.Buffer
	args := []string{"-metric", "allocs/op",
		"-max", "BenchmarkEngineShardedTick/shards=2,0",
		"-max", "BenchmarkEngineShardedTick/shards=4,0",
		"-json", out, o, n}
	if code := realMain(args, &stdout, &stderr); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatalf("-json wrote nothing: %v", err)
	}
	var rep struct {
		Metric string `json:"metric"`
		Max    []struct {
			Name    string  `json:"name"`
			Median  float64 `json:"median"`
			Ceiling float64 `json:"ceiling"`
			Pass    bool    `json:"pass"`
		} `json:"max"`
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("-json output does not parse: %v\n%s", err, data)
	}
	if rep.Metric != "allocs/op" || len(rep.Max) != 2 {
		t.Fatalf("report has metric %q and %d max records, want allocs/op and 2", rep.Metric, len(rep.Max))
	}
	if !rep.Max[0].Pass || rep.Max[0].Median != 0 {
		t.Errorf("shards=2 record %+v, want pass at median 0", rep.Max[0])
	}
	if rep.Max[1].Pass || rep.Max[1].Median != 1 {
		t.Errorf("shards=4 record %+v, want fail at median 1", rep.Max[1])
	}
}

func TestWithinGate(t *testing.T) {
	o := writeTemp(t, "old.txt", withinBench)
	n := writeTemp(t, "new.txt", withinBench)
	spec := "BenchmarkEngineParallel/threads=1,BenchmarkEngineParallel/threads=4,"
	var out, errb bytes.Buffer
	// 410ms / 200ms = 2.05x: passes a 1.8 floor, fails a 2.5 floor. The
	// spec omits the -8 cpu suffix — matching must ignore it.
	if code := realMain([]string{"-within", spec + "1.8", o, n}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, want 0 (2.05x over a 1.8x floor); stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "2.05x") {
		t.Errorf("missing within speedup 2.05x in:\n%s", out.String())
	}
	if code := realMain([]string{"-within", spec + "2.5", o, n}, &out, &errb); code != 2 {
		t.Fatalf("exit %d, want 2 (2.05x under a 2.5x floor)", code)
	}
	if code := realMain([]string{"-within", "nope,also-nope,1.8", o, n}, &out, &errb); code != 1 {
		t.Fatalf("exit %d, want 1 (unknown benchmarks)", code)
	}
	if code := realMain([]string{"-within", "bad-spec", o, n}, &out, &errb); code != 1 {
		t.Fatalf("exit %d, want 1 (malformed spec)", code)
	}
}
