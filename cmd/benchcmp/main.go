// Command benchcmp compares two `go test -bench` output files and prints a
// per-benchmark speedup table, in the spirit of benchstat but dependency
// free. Run each side with -count N (N >= 5 recommended); benchcmp
// aggregates repeated runs of a benchmark by median, which is robust to
// the occasional scheduling outlier.
//
// Usage:
//
//	go test -bench=. -count 5 > old.txt
//	... apply the optimization ...
//	go test -bench=. -count 5 > new.txt
//	benchcmp old.txt new.txt
//
// Exit codes: 0 — comparison printed; 1 — bad input or I/O error.
// With -gate X, exit 2 if the geometric-mean speedup falls below X
// (used by `make benchcmp` as a regression tripwire).
//
// -within 'A,B,ratio' gates a pair of benchmarks inside the NEW file:
// median(A) must be at least ratio × median(B), matching names with the
// -cpu suffix (-8 etc.) ignored. `make benchcmp` uses it on multi-core
// hosts to require the sharded engine's threads=4 run to beat threads=1
// by the committed speedup floor.
//
// -metric selects any column unit present in the files, including the
// -benchmem columns (B/op, allocs/op). -max 'NAME,ceiling' (repeatable)
// gates an absolute value in the NEW file: median(NAME) must not exceed
// ceiling — `make benchcmp` uses it with `-metric allocs/op` to pin the
// sharded steady-state tick at zero allocations. When the old file
// predates -benchmem and lacks the metric entirely, -max still runs (the
// comparison table is skipped with a note); the ceiling is about the new
// code, not the baseline.
//
// -json FILE additionally writes the comparison — per-benchmark rows,
// geomean, and the outcome of any -gate/-within/-max checks — as JSON,
// the machine-readable record behind the committed BENCH_PR*.json files.
// The file is written even when a gate fails, so CI retains what tripped.
package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
)

func main() {
	os.Exit(realMain(os.Args[1:], os.Stdout, os.Stderr))
}

func realMain(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchcmp", flag.ContinueOnError)
	fs.SetOutput(stderr)
	metric := fs.String("metric", "ns/op", "metric to compare (any unit present in the files, including -benchmem's B/op and allocs/op)")
	gate := fs.Float64("gate", 0, "fail (exit 2) if geomean speedup < this (0 = no gate)")
	within := fs.String("within", "", "'A,B,ratio': fail (exit 2) unless median(A) >= ratio*median(B) in the new file (-cpu suffixes ignored)")
	var maxSpecs stringList
	fs.Var(&maxSpecs, "max", "'NAME,ceiling': fail (exit 2) if median(NAME) in the new file exceeds ceiling (-cpu suffixes ignored; repeatable)")
	jsonOut := fs.String("json", "", "also write the comparison (rows, geomean, gates) as JSON to this file")
	if err := fs.Parse(args); err != nil {
		return 1
	}
	if fs.NArg() != 2 {
		fmt.Fprintln(stderr, "usage: benchcmp [-metric ns/op] [-gate 1.0] old.txt new.txt")
		return 1
	}
	new_, err := parseFile(fs.Arg(1), *metric)
	if err != nil {
		fmt.Fprintf(stderr, "benchcmp: %v\n", err)
		return 1
	}
	old, err := parseFile(fs.Arg(0), *metric)
	if err != nil {
		// An old baseline that simply predates the metric (no -benchmem
		// columns, say) cannot block a -max ceiling on the new file: the
		// ceiling is absolute. Anything else is still fatal.
		if !(len(maxSpecs) > 0 && errors.Is(err, errNoMetric)) {
			fmt.Fprintf(stderr, "benchcmp: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "note: old file has no %s samples; comparison skipped, -max gates still apply\n", *metric)
		old = &benchSet{samples: make(map[string][]float64)}
	}

	// Compare benchmarks present on both sides, in the old file's order.
	type row struct {
		name     string
		old, new float64
		speedup  float64
	}
	var rows []row
	for _, name := range old.order {
		nv, ok := new_.samples[name]
		if !ok {
			continue
		}
		o, n := median(old.samples[name]), median(nv)
		r := row{name: name, old: o, new: n}
		if n > 0 {
			r.speedup = o / n
		}
		rows = append(rows, r)
	}
	if len(rows) == 0 && len(maxSpecs) == 0 {
		fmt.Fprintln(stderr, "benchcmp: no common benchmarks")
		return 1
	}

	gm := 0.0
	if len(rows) > 0 {
		w := 4
		for _, r := range rows {
			if len(r.name) > w {
				w = len(r.name)
			}
		}
		fmt.Fprintf(stdout, "%-*s  %14s  %14s  %8s\n", w, "name", "old "+*metric, "new "+*metric, "speedup")
		geo, geoN := 0.0, 0
		for _, r := range rows {
			fmt.Fprintf(stdout, "%-*s  %14s  %14s  %7.2fx\n", w, r.name, fmtVal(r.old), fmtVal(r.new), r.speedup)
			if r.speedup > 0 {
				geo += math.Log(r.speedup)
				geoN++
			}
		}
		if geoN > 0 {
			gm = math.Exp(geo / float64(geoN))
			fmt.Fprintf(stdout, "%-*s  %14s  %14s  %7.2fx\n", w, "geomean", "", "", gm)
		}
	}
	code := 0
	if *gate > 0 && gm < *gate {
		fmt.Fprintf(stderr, "benchcmp: geomean speedup %.2fx below gate %.2fx\n", gm, *gate)
		code = 2
	}
	rep := jsonReport{Metric: *metric, Geomean: round4(gm)}
	if *gate > 0 {
		rep.Gate = &jsonGate{Floor: *gate, Pass: gm >= *gate}
	}
	for _, r := range rows {
		rep.Benchmarks = append(rep.Benchmarks, jsonRow{
			Name: r.name, Old: r.old, New: r.new, Speedup: round4(r.speedup)})
	}
	if *within != "" {
		res, wcode := gateWithin(*within, new_, stdout, stderr)
		rep.Within = res
		if wcode != 0 && (code == 0 || wcode == 1) {
			code = wcode
		}
	}
	for _, spec := range maxSpecs {
		res, mcode := gateMax(spec, *metric, new_, stdout, stderr)
		if res != nil {
			rep.Max = append(rep.Max, *res)
		}
		if mcode != 0 && (code == 0 || mcode == 1) {
			code = mcode
		}
	}
	if *jsonOut != "" {
		// Written on failing gates too: CI keeps a machine-readable record
		// of what tripped.
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintf(stderr, "benchcmp: -json: %v\n", err)
			return 1
		}
		if err := os.WriteFile(*jsonOut, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(stderr, "benchcmp: -json: %v\n", err)
			return 1
		}
	}
	return code
}

// jsonReport is the -json output: the comparison table plus the outcome of
// any gates, machine readable for dashboards and the committed BENCH_PR*
// records.
type jsonReport struct {
	Metric     string      `json:"metric"`
	Benchmarks []jsonRow   `json:"benchmarks"`
	Geomean    float64     `json:"geomean"`
	Gate       *jsonGate   `json:"gate,omitempty"`
	Within     *jsonWithin `json:"within,omitempty"`
	Max        []jsonMax   `json:"max,omitempty"`
}

type jsonRow struct {
	Name    string  `json:"name"`
	Old     float64 `json:"old"`
	New     float64 `json:"new"`
	Speedup float64 `json:"speedup"`
}

type jsonGate struct {
	Floor float64 `json:"floor"`
	Pass  bool    `json:"pass"`
}

type jsonWithin struct {
	Numerator   string  `json:"numerator"`
	Denominator string  `json:"denominator"`
	Speedup     float64 `json:"speedup"`
	Floor       float64 `json:"floor"`
	Pass        bool    `json:"pass"`
}

type jsonMax struct {
	Name    string  `json:"name"`
	Median  float64 `json:"median"`
	Ceiling float64 `json:"ceiling"`
	Pass    bool    `json:"pass"`
}

// stringList collects a repeatable flag's values in order.
type stringList []string

func (l *stringList) String() string { return strings.Join(*l, ";") }
func (l *stringList) Set(v string) error {
	*l = append(*l, v)
	return nil
}

// round4 trims float noise so JSON speedups read like the table ("3.8831"
// not "3.883142857142857").
func round4(v float64) float64 { return math.Round(v*1e4) / 1e4 }

// gateWithin enforces a -within 'A,B,ratio' constraint against the new
// file's samples: median(A) >= ratio * median(B). The returned jsonWithin
// (nil on malformed specs) records the measurement for -json.
func gateWithin(spec string, set *benchSet, stdout, stderr io.Writer) (*jsonWithin, int) {
	parts := strings.Split(spec, ",")
	if len(parts) != 3 {
		fmt.Fprintf(stderr, "benchcmp: -within wants 'A,B,ratio', got %q\n", spec)
		return nil, 1
	}
	ratio, err := strconv.ParseFloat(strings.TrimSpace(parts[2]), 64)
	if err != nil || ratio <= 0 {
		fmt.Fprintf(stderr, "benchcmp: -within: bad ratio %q\n", parts[2])
		return nil, 1
	}
	lookup := func(want string) []float64 {
		want = stripCPUSuffix(strings.TrimSpace(want))
		var out []float64
		for name, v := range set.samples {
			if stripCPUSuffix(name) == want {
				out = append(out, v...)
			}
		}
		return out
	}
	a, b := lookup(parts[0]), lookup(parts[1])
	if len(a) == 0 || len(b) == 0 {
		fmt.Fprintf(stderr, "benchcmp: -within: %q or %q not found in the new file\n", parts[0], parts[1])
		return nil, 1
	}
	sp := 0.0
	if mb := median(b); mb > 0 {
		sp = median(a) / mb
	}
	fmt.Fprintf(stdout, "within: %s / %s = %.2fx (floor %.2fx)\n",
		strings.TrimSpace(parts[0]), strings.TrimSpace(parts[1]), sp, ratio)
	res := &jsonWithin{
		Numerator:   strings.TrimSpace(parts[0]),
		Denominator: strings.TrimSpace(parts[1]),
		Speedup:     round4(sp),
		Floor:       ratio,
		Pass:        sp >= ratio,
	}
	if sp < ratio {
		fmt.Fprintf(stderr, "benchcmp: within-file speedup %.2fx below floor %.2fx\n", sp, ratio)
		return res, 2
	}
	return res, 0
}

// gateMax enforces a -max 'NAME,ceiling' constraint against the new
// file's samples of the current metric: median(NAME) <= ceiling. Unlike
// -gate and -within it is an absolute bound, which is what an
// allocation floor needs — "0 allocs/op" is not a ratio against anything.
func gateMax(spec, metric string, set *benchSet, stdout, stderr io.Writer) (*jsonMax, int) {
	parts := strings.Split(spec, ",")
	if len(parts) != 2 {
		fmt.Fprintf(stderr, "benchcmp: -max wants 'NAME,ceiling', got %q\n", spec)
		return nil, 1
	}
	ceiling, err := strconv.ParseFloat(strings.TrimSpace(parts[1]), 64)
	if err != nil || ceiling < 0 {
		fmt.Fprintf(stderr, "benchcmp: -max: bad ceiling %q\n", parts[1])
		return nil, 1
	}
	want := stripCPUSuffix(strings.TrimSpace(parts[0]))
	var samples []float64
	for name, v := range set.samples {
		if stripCPUSuffix(name) == want {
			samples = append(samples, v...)
		}
	}
	if len(samples) == 0 {
		fmt.Fprintf(stderr, "benchcmp: -max: %q not found in the new file\n", parts[0])
		return nil, 1
	}
	m := median(samples)
	fmt.Fprintf(stdout, "max: %s = %s %s (ceiling %s)\n", want, fmtVal(m), metric, fmtVal(ceiling))
	res := &jsonMax{Name: want, Median: round4(m), Ceiling: ceiling, Pass: m <= ceiling}
	if m > ceiling {
		fmt.Fprintf(stderr, "benchcmp: %s median %s %s above ceiling %s\n", want, fmtVal(m), metric, fmtVal(ceiling))
		return res, 2
	}
	return res, 0
}

// stripCPUSuffix drops go test's trailing -GOMAXPROCS from a benchmark
// name ("Bench/threads=4-8" -> "Bench/threads=4") so -within specs stay
// host independent.
func stripCPUSuffix(name string) string {
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			return name[:i]
		}
	}
	return name
}

// benchSet holds the samples of one file: benchmark name -> metric values,
// one per -count repetition.
type benchSet struct {
	samples map[string][]float64
	order   []string
}

func parseFile(path, metric string) (*benchSet, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return parse(f, metric)
}

// parse reads `go test -bench` output: lines starting with "Benchmark",
// whitespace-separated as `name iterations {value unit}...`. The -cpu
// suffix (-8 etc.) is kept — it distinguishes GOMAXPROCS variants.
func parse(r io.Reader, metric string) (*benchSet, error) {
	set := &benchSet{samples: make(map[string][]float64)}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		// fields[1] is the iteration count; then (value, unit) pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			if fields[i+1] != metric {
				continue
			}
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("%s: bad %s value %q", name, metric, fields[i])
			}
			if _, seen := set.samples[name]; !seen {
				set.order = append(set.order, name)
			}
			set.samples[name] = append(set.samples[name], v)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(set.samples) == 0 {
		return nil, fmt.Errorf("%w %q", errNoMetric, metric)
	}
	return set, nil
}

// errNoMetric marks a file that parsed fine but carried no samples of the
// requested metric — distinguishable (errors.Is) so realMain can tolerate
// an old baseline that predates -benchmem when only -max gates are asked.
var errNoMetric = errors.New("no benchmark lines with metric")

func median(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	s := append([]float64(nil), v...)
	sort.Float64s(s)
	if n := len(s); n%2 == 1 {
		return s[n/2]
	} else {
		return (s[n/2-1] + s[n/2]) / 2
	}
}

// fmtVal renders a metric value compactly with SI-ish scaling.
func fmtVal(v float64) string {
	switch {
	case v >= 1e9:
		return fmt.Sprintf("%.3gG", v/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%.4gM", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.4gk", v/1e3)
	default:
		return fmt.Sprintf("%.4g", v)
	}
}
