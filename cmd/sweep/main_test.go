package main

import (
	"context"
	"os"
	"strings"
	"testing"
)

func runSweep(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errw strings.Builder
	code = realMain(context.Background(), args, &out, &errw)
	return code, out.String(), errw.String()
}

func TestExitZeroOnSuccess(t *testing.T) {
	code, out, stderr := runSweep(t, "-exp", "table1")
	if code != 0 {
		t.Fatalf("exit = %d, stderr:\n%s", code, stderr)
	}
	if !strings.Contains(out, "Table I") {
		t.Errorf("missing table output:\n%s", out)
	}
}

func TestExitOneOnBadExperiment(t *testing.T) {
	code, _, stderr := runSweep(t, "-exp", "nonsense")
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	if !strings.Contains(stderr, "unknown experiment") {
		t.Errorf("stderr does not name the problem:\n%s", stderr)
	}
}

func TestExitOneOnBadFlag(t *testing.T) {
	if code, _, _ := runSweep(t, "-no-such-flag"); code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
}

// TestExitOneOnRelaxedEpochSerialEngine: -epoch-cycles > 1 is meaningless
// without a parallel engine; the contradiction is rejected up front with
// an actionable message instead of silently running exact mode.
func TestExitOneOnRelaxedEpochSerialEngine(t *testing.T) {
	code, _, stderr := runSweep(t, "-exp", "fig4", "-epoch-cycles", "8")
	if code != 1 {
		t.Fatalf("exit = %d, want 1; stderr:\n%s", code, stderr)
	}
	if !strings.Contains(stderr, "-engine-threads") {
		t.Errorf("stderr does not point at -engine-threads:\n%s", stderr)
	}
}

func TestExitOneOnUnknownApp(t *testing.T) {
	code, _, stderr := runSweep(t, "-exp", "fig4", "-apps", "NOPE")
	if code != 1 {
		t.Fatalf("exit = %d, want 1; stderr:\n%s", code, stderr)
	}
}

// TestExitTwoOnFailedJobs: an unmeetable per-job deadline makes every
// fig4 simulation fail; the sweep completes, renders the (empty) figure
// and exits 2 with a failure report.
func TestExitTwoOnFailedJobs(t *testing.T) {
	code, out, stderr := runSweep(t,
		"-exp", "fig4", "-apps", "BFS", "-scale", "0.1", "-job-timeout", "1ns")
	if code != 2 {
		t.Fatalf("exit = %d, want 2; stderr:\n%s", code, stderr)
	}
	if !strings.Contains(out, "Figure 4") {
		t.Errorf("figure not rendered:\n%s", out)
	}
	if !strings.Contains(stderr, "job(s) failed") || !strings.Contains(stderr, "BFS") {
		t.Errorf("failure report missing:\n%s", stderr)
	}
}

// TestAppsListTolerant: -apps with padding and a trailing comma still
// selects the named apps — the bare strings.Split turned "BFS," into
// ["BFS", ""] and the phantom empty name failed the whole sweep.
func TestAppsListTolerant(t *testing.T) {
	code, out, stderr := runSweep(t,
		"-exp", "fig4", "-apps", " BFS , GEMM ,", "-scale", "0.1")
	if code != 0 {
		t.Fatalf("exit = %d, stderr:\n%s", code, stderr)
	}
	for _, app := range []string{"BFS", "GEMM"} {
		if !strings.Contains(out, app) {
			t.Errorf("figure missing %s:\n%s", app, out)
		}
	}
}

// TestAppsListAllEmpty: an -apps value that reduces to nothing falls back
// to the full catalog rather than running a zero-app sweep; table1 keeps
// the test fast while exercising the flag path.
func TestAppsListAllEmpty(t *testing.T) {
	code, _, stderr := runSweep(t, "-exp", "table1", "-apps", " , ,")
	if code != 0 {
		t.Fatalf("exit = %d, stderr:\n%s", code, stderr)
	}
}

// TestTraceOutLevelOffWarns: -trace-out with -trace-level off writes no
// file; the combination must be called out instead of silently doing
// nothing.
func TestTraceOutLevelOffWarns(t *testing.T) {
	path := t.TempDir() + "/trace.json"
	code, _, stderr := runSweep(t,
		"-exp", "table1", "-trace-out", path, "-trace-level", "off")
	if code != 0 {
		t.Fatalf("exit = %d, stderr:\n%s", code, stderr)
	}
	if !strings.Contains(stderr, "warning") || !strings.Contains(stderr, "trace-level") {
		t.Errorf("no warning about the ignored -trace-out:\n%s", stderr)
	}
	if _, err := os.Stat(path); err == nil {
		t.Error("a trace file was written despite -trace-level off")
	}
}

// TestCanceledContext: a canceled sweep context is an operational failure,
// not a silent success.
func TestCanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var out, errw strings.Builder
	code := realMain(ctx, []string{"-exp", "fig4", "-apps", "BFS", "-scale", "0.1"}, &out, &errw)
	if code == 0 {
		t.Fatalf("canceled sweep exited 0; stdout:\n%s", out.String())
	}
}
