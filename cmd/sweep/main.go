// Command sweep regenerates the paper's evaluation artifacts: Table I,
// Table II, Figure 4 (error + speedup on the RTX 2080 Ti), Figure 5
// (speedup contribution analysis) and Figure 6 (error across three GPUs).
//
// Sweeps are fault tolerant: a job that fails (bad trace, unschedulable
// kernel, per-job timeout, panic inside a module) is excluded from its
// figure and reported, while the remaining jobs complete. Ctrl-C cancels
// the whole sweep promptly.
//
// Exit codes: 0 — everything succeeded; 1 — the sweep itself could not run
// (bad flags, unknown experiment or application); 2 — the sweep completed
// but one or more jobs failed (figures rendered from the successful
// subset).
//
// Usage:
//
//	sweep -exp fig4 [-scale 1.0] [-apps BFS,NW,GRU] [-threads 8] [-job-timeout 2m]
//	sweep -exp all
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"syscall"

	"swiftsim/internal/cliutil"
	"swiftsim/internal/experiments"
	"swiftsim/internal/obs"
	"swiftsim/internal/sim"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(realMain(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

// realMain runs the sweep and returns the process exit code. Split from
// main so tests can drive the full command, including exit codes.
func realMain(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("sweep", flag.ContinueOnError)
	fs.SetOutput(stderr)
	exp := fs.String("exp", "all", "experiment: table1|table2|fig4|fig5|fig6|all")
	scale := fs.Float64("scale", 1.0, "workload problem scale")
	apps := fs.String("apps", "", "comma-separated application subset (default: all 20)")
	threads := fs.Int("threads", 0, "parallel workers for the fig5 and fig6 sweeps (0 = NumCPU; fig4 measures single-thread wall clock and always runs serially)")
	engineThreads := fs.Int("engine-threads", 1, "engine shards per simulation (deterministic; the fig5 job pool shrinks to threads/engine-threads)")
	epochCycles := fs.Int("epoch-cycles", 1, "relaxed-sync epoch length for parallel simulations (1 = exact per-cycle barrier; >1 trades bounded cycle drift for speed and requires -engine-threads > 1)")
	sample := fs.Bool("sample", false, "sampled execution: replay repeated kernel launches and simulate a representative block subset per launch (approximate; fig4 wall-clock columns measure the sampled runs)")
	sampleFrac := fs.Float64("sample-frac", 0, "with -sample: fraction of post-first-wave blocks to simulate in (0,1); 0 = default")
	sampleStride := fs.Int("sample-stride", 0, "with -sample: re-simulate every Nth repeated launch (0 = default, 1 = no replay)")
	jobTimeout := fs.Duration("job-timeout", 0, "per-job wall-clock deadline (0 = none)")
	traceOut := fs.String("trace-out", "", "write a Chrome trace-event JSON file for the sweep")
	traceLevel := fs.String("trace-level", "kernel", "trace detail: off|kernel|module|request")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := fs.String("memprofile", "", "write a heap profile to this file at exit")
	if err := fs.Parse(args); err != nil {
		return 1
	}
	if err := cliutil.ValidateModes(cliutil.Modes{
		EngineThreads:  *engineThreads,
		EpochCycles:    *epochCycles,
		Sample:         *sample,
		SampleFraction: *sampleFrac,
		SampleStride:   *sampleStride,
	}); err != nil {
		fmt.Fprintln(stderr, "sweep:", err)
		return 1
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(stderr, "sweep: -cpuprofile: %v\n", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(stderr, "sweep: -cpuprofile: %v\n", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(stderr, "sweep: -memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle allocations so the heap profile reflects live data
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(stderr, "sweep: -memprofile: %v\n", err)
			}
		}()
	}

	var tracer *obs.Tracer
	if *traceOut != "" {
		level, err := obs.ParseLevel(*traceLevel)
		if err != nil {
			fmt.Fprintf(stderr, "sweep: -trace-level: %v\n", err)
			return 1
		}
		if level == obs.Off {
			// -trace-out with the level forced off writes nothing; without
			// this warning the flag silently produces no file and users
			// hunt for an I/O failure that never happened.
			fmt.Fprintf(stderr, "sweep: warning: -trace-out %s ignored because -trace-level is off; no trace file will be written\n", *traceOut)
		} else {
			f, err := os.Create(*traceOut)
			if err != nil {
				fmt.Fprintf(stderr, "sweep: -trace-out: %v\n", err)
				return 1
			}
			rec := obs.NewJSONStream(f)
			// Close on every exit path — including exit code 2 (failed
			// jobs, e.g. per-job timeouts) and Ctrl-C cancellation — so a
			// truncated sweep still leaves a well-terminated, loadable
			// trace file instead of an unparseable fragment.
			defer func() {
				if cerr := rec.Close(); cerr != nil {
					fmt.Fprintf(stderr, "sweep: -trace-out: %v\n", cerr)
				}
			}()
			tracer = obs.New(rec, level)
		}
	}

	p := experiments.Params{
		Scale:         *scale,
		Threads:       *threads,
		EngineThreads: *engineThreads,
		EpochCycles:   *epochCycles,
		Ctx:           ctx,
		JobTimeout:    *jobTimeout,
		Trace:         tracer,
	}
	if *sample {
		p.Sampling = sim.Sampling{
			Enabled:       true,
			BlockFraction: *sampleFrac,
			ReplayStride:  *sampleStride,
		}
	}
	if list := cliutil.SplitList(*apps); len(list) > 0 {
		p.Apps = list
	}

	var failures []experiments.Failure
	run := func(name string) error {
		switch name {
		case "table1":
			experiments.Table1(stdout)
		case "table2":
			experiments.Table2(stdout)
		case "fig4":
			res, err := experiments.Figure4(p)
			if err != nil {
				return err
			}
			res.Print(stdout)
			failures = append(failures, res.Failed...)
		case "fig5":
			res, err := experiments.Figure5(p)
			if err != nil {
				return err
			}
			res.Print(stdout)
			failures = append(failures, res.Failed...)
		case "fig6":
			res, err := experiments.Figure6(p)
			if err != nil {
				return err
			}
			res.Print(stdout)
			failures = append(failures, res.Failed...)
		default:
			return fmt.Errorf("unknown experiment %q", name)
		}
		return nil
	}

	names := []string{*exp}
	if *exp == "all" {
		names = []string{"table1", "table2", "fig4", "fig5", "fig6"}
	}
	for i, name := range names {
		if i > 0 {
			fmt.Fprintln(stdout)
		}
		if err := run(name); err != nil {
			fmt.Fprintln(stderr, "sweep:", err)
			return 1
		}
	}
	if len(failures) > 0 {
		fmt.Fprintf(stderr, "sweep: %d job(s) failed; figures rendered from the successful subset:\n", len(failures))
		for _, f := range failures {
			fmt.Fprintf(stderr, "  %s\n", f)
		}
		return 2
	}
	return 0
}
