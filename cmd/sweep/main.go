// Command sweep regenerates the paper's evaluation artifacts: Table I,
// Table II, Figure 4 (error + speedup on the RTX 2080 Ti), Figure 5
// (speedup contribution analysis) and Figure 6 (error across three GPUs).
//
// Usage:
//
//	sweep -exp fig4 [-scale 1.0] [-apps BFS,NW,GRU] [-threads 8]
//	sweep -exp all
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"swiftsim/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment: table1|table2|fig4|fig5|fig6|all")
	scale := flag.Float64("scale", 1.0, "workload problem scale")
	apps := flag.String("apps", "", "comma-separated application subset (default: all 20)")
	threads := flag.Int("threads", 0, "parallel workers for fig5 (0 = NumCPU)")
	flag.Parse()

	p := experiments.Params{Scale: *scale, Threads: *threads}
	if *apps != "" {
		p.Apps = strings.Split(*apps, ",")
	}

	run := func(name string) error {
		switch name {
		case "table1":
			experiments.Table1(os.Stdout)
		case "table2":
			experiments.Table2(os.Stdout)
		case "fig4":
			res, err := experiments.Figure4(p)
			if err != nil {
				return err
			}
			res.Print(os.Stdout)
		case "fig5":
			res, err := experiments.Figure5(p)
			if err != nil {
				return err
			}
			res.Print(os.Stdout)
		case "fig6":
			res, err := experiments.Figure6(p)
			if err != nil {
				return err
			}
			res.Print(os.Stdout)
		default:
			return fmt.Errorf("unknown experiment %q", name)
		}
		return nil
	}

	names := []string{*exp}
	if *exp == "all" {
		names = []string{"table1", "table2", "fig4", "fig5", "fig6"}
	}
	for i, name := range names {
		if i > 0 {
			fmt.Println()
		}
		if err := run(name); err != nil {
			fmt.Fprintln(os.Stderr, "sweep:", err)
			os.Exit(1)
		}
	}
}
