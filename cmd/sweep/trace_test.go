package main

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// readTraceJSON parses path as a Chrome trace-event array.
func readTraceJSON(t *testing.T, path string) []map[string]any {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(data, &events); err != nil {
		t.Fatalf("%s is not a valid trace-event array: %v\n%s", path, err, data)
	}
	return events
}

// TestSweepTraceOut: a successful sweep writes a loadable trace with
// kernel spans from every simulation it ran (fig4 drives its simulations
// directly; the runner's job spans are covered by the fig5 path in
// internal/runner's tests).
func TestSweepTraceOut(t *testing.T) {
	out := filepath.Join(t.TempDir(), "sweep.json")
	code, _, stderr := runSweep(t,
		"-exp", "fig4", "-apps", "BFS", "-scale", "0.1", "-trace-out", out)
	if code != 0 {
		t.Fatalf("exit = %d, stderr:\n%s", code, stderr)
	}
	var kernelSpans int
	for _, ev := range readTraceJSON(t, out) {
		if ev["cat"] == "kernel" && ev["ph"] == "X" {
			kernelSpans++
		}
	}
	if kernelSpans == 0 {
		t.Error("trace has no kernel spans")
	}
}

// TestSweepTraceTerminatedOnFailedJobs is the truncation regression test:
// when jobs fail (exit code 2 — here via an unmeetable per-job deadline),
// the trace file must still be a well-terminated JSON array, not a
// fragment cut off mid-stream.
func TestSweepTraceTerminatedOnFailedJobs(t *testing.T) {
	out := filepath.Join(t.TempDir(), "partial.json")
	code, _, stderr := runSweep(t, "-exp", "fig4", "-apps", "BFS", "-scale", "0.1",
		"-job-timeout", "1ns", "-trace-out", out)
	if code != 2 {
		t.Fatalf("exit = %d, want 2; stderr:\n%s", code, stderr)
	}
	readTraceJSON(t, out) // fails the test if the array is unterminated
}

// TestSweepTraceTerminatedOnCancel: even a sweep canceled before it
// starts (exit code 1) leaves a valid, loadable trace file.
func TestSweepTraceTerminatedOnCancel(t *testing.T) {
	out := filepath.Join(t.TempDir(), "canceled.json")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var o, e strings.Builder
	code := realMain(ctx, []string{
		"-exp", "fig4", "-apps", "BFS", "-scale", "0.1", "-trace-out", out}, &o, &e)
	if code == 0 {
		t.Fatalf("canceled sweep exited 0; stdout:\n%s", o.String())
	}
	readTraceJSON(t, out)
}

// TestSweepTraceBadLevelExitsOne: an unknown -trace-level is a usage
// error, caught before any work runs.
func TestSweepTraceBadLevelExitsOne(t *testing.T) {
	code, _, stderr := runSweep(t, "-exp", "table1",
		"-trace-out", filepath.Join(t.TempDir(), "t.json"), "-trace-level", "everything")
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	if !strings.Contains(stderr, "everything") {
		t.Errorf("stderr does not name the bad level:\n%s", stderr)
	}
}
