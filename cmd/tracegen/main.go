// Command tracegen synthesizes benchmark application traces and writes
// them as .sgt files — the frontend path that replaces NVBit capture on
// real hardware (traces are architecture-independent, as in the paper).
//
// Examples:
//
//	tracegen -app BFS -o bfs.sgt
//	tracegen -all -scale 0.5 -dir traces/
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"swiftsim"
)

func main() {
	os.Exit(realMain(os.Args[1:], os.Stdout, os.Stderr))
}

// realMain runs the command and returns the process exit code. Split from
// main so tests can drive the full command, including flag parsing and
// exit codes.
func realMain(args []string, stdout, stderr io.Writer) int {
	if err := run(args, stdout, stderr); err != nil {
		fmt.Fprintln(stderr, "tracegen:", err)
		return 1
	}
	return 0
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("tracegen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	appName := fs.String("app", "", "workload to generate (see swiftsim -list)")
	scale := fs.Float64("scale", 1.0, "problem scale")
	out := fs.String("o", "", "output .sgt path (default <app>.sgt)")
	all := fs.Bool("all", false, "generate every bundled workload")
	dir := fs.String("dir", ".", "output directory for -all")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *all {
		if err := os.MkdirAll(*dir, 0o755); err != nil {
			return err
		}
		for _, name := range swiftsim.Workloads() {
			if err := generate(stdout, name, *scale, filepath.Join(*dir, name+".sgt")); err != nil {
				return err
			}
		}
		return nil
	}
	if *appName == "" {
		return fmt.Errorf("-app or -all is required")
	}
	path := *out
	if path == "" {
		path = *appName + ".sgt"
	}
	return generate(stdout, *appName, *scale, path)
}

func generate(stdout io.Writer, name string, scale float64, path string) error {
	app, err := swiftsim.GenerateWorkload(name, scale)
	if err != nil {
		return err
	}
	if err := swiftsim.WriteTrace(path, app); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "%-12s %8d instructions -> %s\n", name, app.Insts(), path)
	return nil
}
