// Command tracegen synthesizes benchmark application traces and writes
// them as .sgt files — the frontend path that replaces NVBit capture on
// real hardware (traces are architecture-independent, as in the paper).
//
// Examples:
//
//	tracegen -app BFS -o bfs.sgt
//	tracegen -all -scale 0.5 -dir traces/
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"swiftsim"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func run() error {
	appName := flag.String("app", "", "workload to generate (see swiftsim -list)")
	scale := flag.Float64("scale", 1.0, "problem scale")
	out := flag.String("o", "", "output .sgt path (default <app>.sgt)")
	all := flag.Bool("all", false, "generate every bundled workload")
	dir := flag.String("dir", ".", "output directory for -all")
	flag.Parse()

	if *all {
		if err := os.MkdirAll(*dir, 0o755); err != nil {
			return err
		}
		for _, name := range swiftsim.Workloads() {
			if err := generate(name, *scale, filepath.Join(*dir, name+".sgt")); err != nil {
				return err
			}
		}
		return nil
	}
	if *appName == "" {
		return fmt.Errorf("-app or -all is required")
	}
	path := *out
	if path == "" {
		path = *appName + ".sgt"
	}
	return generate(*appName, *scale, path)
}

func generate(name string, scale float64, path string) error {
	app, err := swiftsim.GenerateWorkload(name, scale)
	if err != nil {
		return err
	}
	if err := swiftsim.WriteTrace(path, app); err != nil {
		return err
	}
	fmt.Printf("%-12s %8d instructions -> %s\n", name, app.Insts(), path)
	return nil
}
