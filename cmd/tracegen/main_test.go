package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"swiftsim"
)

func runCmd(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errw strings.Builder
	code = realMain(args, &out, &errw)
	return code, out.String(), errw.String()
}

func TestGenerateOneApp(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bfs.sgt")
	code, out, stderr := runCmd(t, "-app", "BFS", "-scale", "0.1", "-o", path)
	if code != 0 {
		t.Fatalf("exit = %d, stderr:\n%s", code, stderr)
	}
	if !strings.Contains(out, "BFS") || !strings.Contains(out, path) {
		t.Errorf("report line missing app or path:\n%s", out)
	}
	app, err := swiftsim.ReadTrace(path)
	if err != nil {
		t.Fatalf("generated trace does not parse: %v", err)
	}
	if app.Name != "BFS" {
		t.Errorf("trace app = %s, want BFS", app.Name)
	}
}

func TestGenerateGzip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bfs.sgt.gz")
	if code, _, stderr := runCmd(t, "-app", "BFS", "-scale", "0.1", "-o", path); code != 0 {
		t.Fatalf("exit = %d, stderr:\n%s", code, stderr)
	}
	if _, err := swiftsim.ReadTrace(path); err != nil {
		t.Fatalf("gzip trace does not parse: %v", err)
	}
}

func TestGenerateAll(t *testing.T) {
	if testing.Short() {
		t.Skip("generates the full catalog")
	}
	dir := t.TempDir()
	code, out, stderr := runCmd(t, "-all", "-scale", "0.1", "-dir", dir)
	if code != 0 {
		t.Fatalf("exit = %d, stderr:\n%s", code, stderr)
	}
	names := swiftsim.Workloads()
	if got := strings.Count(out, "->"); got != len(names) {
		t.Errorf("report lines = %d, want %d", got, len(names))
	}
	for _, name := range names {
		if _, err := os.Stat(filepath.Join(dir, name+".sgt")); err != nil {
			t.Errorf("missing trace for %s: %v", name, err)
		}
	}
}

func TestExitOneOnErrors(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"no app", nil, "-app or -all is required"},
		{"bad flag", []string{"-no-such-flag"}, "flag provided but not defined"},
		{"unknown app", []string{"-app", "NOPE"}, "NOPE"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, _, stderr := runCmd(t, tc.args...)
			if code != 1 {
				t.Fatalf("exit = %d, want 1", code)
			}
			if !strings.Contains(stderr, tc.want) {
				t.Errorf("stderr missing %q:\n%s", tc.want, stderr)
			}
		})
	}
}
