package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// readTraceJSON parses path as a Chrome trace-event array.
func readTraceJSON(t *testing.T, path string) []map[string]any {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(data, &events); err != nil {
		t.Fatalf("%s is not a valid trace-event array: %v\n%s", path, err, data)
	}
	return events
}

// TestTraceOutModuleLevel is the CLI acceptance path: -trace-out at
// module level on BFS produces a loadable Chrome trace with metadata,
// span and counter events.
func TestTraceOutModuleLevel(t *testing.T) {
	out := filepath.Join(t.TempDir(), "t.json")
	code, _, stderr := runCmd(t, "-app", "BFS", "-scale", "0.1", "-sim", "detailed",
		"-trace-out", out, "-trace-level", "module")
	if code != 0 {
		t.Fatalf("exit = %d, stderr:\n%s", code, stderr)
	}
	events := readTraceJSON(t, out)
	phases := map[string]bool{}
	cats := map[string]bool{}
	for _, ev := range events {
		phases[ev["ph"].(string)] = true
		if c, ok := ev["cat"].(string); ok {
			cats[c] = true
		}
	}
	for _, ph := range []string{"M", "X", "C"} {
		if !phases[ph] {
			t.Errorf("trace has no %q events", ph)
		}
	}
	for _, cat := range []string{"kernel", "sm", "counter"} {
		if !cats[cat] {
			t.Errorf("trace has no cat=%q events", cat)
		}
	}
}

// TestTraceCSVAndStalls covers the two derived views: the counter
// timeline CSV and the stdout stall summary.
func TestTraceCSVAndStalls(t *testing.T) {
	csv := filepath.Join(t.TempDir(), "t.csv")
	code, out, stderr := runCmd(t, "-app", "BFS", "-scale", "0.1", "-sim", "detailed",
		"-trace-csv", csv, "-trace-stalls")
	if code != 0 {
		t.Fatalf("exit = %d, stderr:\n%s", code, stderr)
	}
	data, err := os.ReadFile(csv)
	if err != nil {
		t.Fatal(err)
	}
	header := strings.SplitN(string(data), "\n", 2)[0]
	for _, col := range []string{"kernel", "cycle", "active_sms", "dram_queue"} {
		if !strings.Contains(header, col) {
			t.Errorf("CSV header missing %q: %s", col, header)
		}
	}
	if !strings.Contains(out, "stall reasons") {
		t.Errorf("stdout missing the stall summary:\n%s", out)
	}
}

// TestTraceLevelOffWritesNothing: the off level must leave no trace file
// behind (and, per the goldens, must not perturb the simulation).
func TestTraceLevelOffWritesNothing(t *testing.T) {
	out := filepath.Join(t.TempDir(), "t.json")
	code, _, stderr := runCmd(t, "-app", "BFS", "-scale", "0.1", "-sim", "memory",
		"-trace-out", out, "-trace-level", "off")
	if code != 0 {
		t.Fatalf("exit = %d, stderr:\n%s", code, stderr)
	}
	if _, err := os.Stat(out); !os.IsNotExist(err) {
		t.Errorf("-trace-level=off created %s", out)
	}
}

// TestTraceBadLevelExitsOne: an unknown level is a usage error.
func TestTraceBadLevelExitsOne(t *testing.T) {
	code, _, stderr := runCmd(t, "-app", "BFS", "-scale", "0.1",
		"-trace-out", filepath.Join(t.TempDir(), "t.json"), "-trace-level", "verbose")
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	if !strings.Contains(stderr, "verbose") {
		t.Errorf("stderr does not name the bad level:\n%s", stderr)
	}
}
