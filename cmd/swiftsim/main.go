// Command swiftsim simulates one GPU application and prints the gathered
// performance metrics.
//
// The application comes either from a .sgt trace file (-trace) or from the
// bundled synthetic workload catalog (-app, -scale). The hardware
// configuration comes from a preset (-gpu) or a configuration file
// (-config); the simulator configuration from -sim.
//
// Examples:
//
//	swiftsim -app BFS -sim memory
//	swiftsim -trace run.sgt -config mygpu.cfg -sim detailed -metrics
//	swiftsim -app GEMM -sim detailed -engine-threads 4 -epoch-cycles 8
//	swiftsim -app GRU -sim basic -sample
//	swiftsim -app BFS -sim l2 -snapshot-at 5000 -snapshot-out warm.snap
//	swiftsim -app BFS -sim l2 -restore warm.snap
//	swiftsim -list
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"

	"swiftsim"
	"swiftsim/internal/cliutil"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(realMain(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

// realMain runs the command and returns the process exit code. Split from
// main so tests can drive the full command, including flag parsing and
// exit codes.
func realMain(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	if err := run(ctx, args, stdout, stderr); err != nil {
		fmt.Fprintln(stderr, "swiftsim:", err)
		return 1
	}
	return 0
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("swiftsim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	appName := fs.String("app", "", "bundled workload name (see -list)")
	scale := fs.Float64("scale", 1.0, "workload problem scale")
	tracePath := fs.String("trace", "", ".sgt trace file to simulate instead of -app")
	gpuName := fs.String("gpu", "RTX2080Ti", "GPU preset: RTX2080Ti|RTX3060|RTX3090")
	cfgPath := fs.String("config", "", "hardware configuration file (overrides -gpu)")
	simName := fs.String("sim", "detailed", "simulator: detailed|basic|memory|l2")
	hitSrc := fs.String("hitrates", "functional", "memory-model hit-rate source: functional|reuse")
	samplePrefix := fs.Float64("sample-prefix", 0, "legacy prefix block-sampling fraction in (0,1); 0 = full simulation")
	sample := fs.Bool("sample", false, "sampled execution: replay repeated kernel launches and simulate a representative block subset per launch")
	sampleFrac := fs.Float64("sample-frac", 0, "with -sample: fraction of post-first-wave blocks to simulate in (0,1); 0 = default")
	sampleStride := fs.Int("sample-stride", 0, "with -sample: re-simulate every Nth repeated launch (0 = default, 1 = no replay)")
	engineThreads := fs.Int("engine-threads", 1, "engine shards ticking SMs concurrently (deterministic; 1 = serial)")
	epochCycles := fs.Int("epoch-cycles", 1, "relaxed-sync epoch length (1 = exact per-cycle barrier; >1 trades bounded cycle drift for speed and requires -engine-threads > 1)")
	snapshotAt := fs.Uint64("snapshot-at", 0, "write a snapshot at the first quiescent kernel boundary at or after this cycle (requires -snapshot-out)")
	snapshotOut := fs.String("snapshot-out", "", "snapshot output file (see -snapshot-at; cycle 0 checkpoints before the first kernel)")
	restorePath := fs.String("restore", "", "resume from a snapshot file written by -snapshot-out (app and config must match)")
	timeout := fs.Duration("timeout", 0, "wall-clock deadline for the simulation (0 = none)")
	showMetrics := fs.Bool("metrics", false, "print the full Metrics Gatherer report")
	traceOut := fs.String("trace-out", "", "write a Chrome trace-event JSON file (load in chrome://tracing)")
	traceLevel := fs.String("trace-level", "module", "trace detail: off|kernel|module|request")
	traceCSV := fs.String("trace-csv", "", "write the per-kernel counter timeline as CSV")
	traceStalls := fs.Bool("trace-stalls", false, "print the top stall reasons after the run")
	list := fs.Bool("list", false, "list bundled workloads and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := cliutil.ValidateModes(cliutil.Modes{
		EngineThreads:  *engineThreads,
		EpochCycles:    *epochCycles,
		Sample:         *sample,
		SampleFraction: *sampleFrac,
		SampleStride:   *sampleStride,
	}); err != nil {
		return err
	}
	if *snapshotAt > 0 && *snapshotOut == "" {
		return fmt.Errorf("-snapshot-at requires -snapshot-out")
	}

	if *list {
		fmt.Fprintf(stdout, "%-12s %-10s %-4s %s\n", "NAME", "SUITE", "MEM", "DESCRIPTION")
		for _, wi := range swiftsim.WorkloadCatalog() {
			mem := ""
			if wi.MemoryBound {
				mem = "yes"
			}
			fmt.Fprintf(stdout, "%-12s %-10s %-4s %s\n", wi.Name, wi.Suite, mem, wi.Description)
		}
		return nil
	}

	var gpu swiftsim.GPU
	if *cfgPath != "" {
		var err error
		if gpu, err = swiftsim.LoadGPU(*cfgPath); err != nil {
			return err
		}
	} else {
		var ok bool
		if gpu, ok = swiftsim.GPUPreset(*gpuName); !ok {
			return fmt.Errorf("unknown GPU preset %q", *gpuName)
		}
	}

	var app *swiftsim.App
	var err error
	switch {
	case *tracePath != "":
		app, err = swiftsim.ReadTrace(*tracePath)
	case *appName != "":
		app, err = swiftsim.GenerateWorkload(*appName, *scale)
	default:
		return fmt.Errorf("one of -app or -trace is required (or -list)")
	}
	if err != nil {
		return err
	}

	cfg := swiftsim.Config{
		SampleBlocks:  *samplePrefix,
		EngineThreads: *engineThreads,
		EpochCycles:   *epochCycles,
	}
	if *sample {
		cfg.Sampling = swiftsim.Sampling{
			Enabled:       true,
			BlockFraction: *sampleFrac,
			ReplayStride:  *sampleStride,
		}
	}
	// The snapshot is staged in memory and written only after a successful
	// run, so a failed simulation never leaves a truncated snapshot file.
	var snapBuf bytes.Buffer
	if *snapshotOut != "" {
		cfg.SnapshotAt = *snapshotAt
		cfg.SnapshotTo = &snapBuf
	}
	if *restorePath != "" {
		data, err := os.ReadFile(*restorePath)
		if err != nil {
			return err
		}
		cfg.RestoreFrom = bytes.NewReader(data)
	}
	switch *simName {
	case "detailed":
		cfg.Simulator = swiftsim.Detailed
	case "basic":
		cfg.Simulator = swiftsim.SwiftSimBasic
	case "memory":
		cfg.Simulator = swiftsim.SwiftSimMemory
	case "l2":
		cfg.Simulator = swiftsim.SwiftSimL2
	default:
		return fmt.Errorf("unknown simulator %q (want detailed|basic|memory|l2)", *simName)
	}
	switch *hitSrc {
	case "functional":
		cfg.HitRates = swiftsim.FunctionalCaches
	case "reuse":
		cfg.HitRates = swiftsim.ReuseDistance
	default:
		return fmt.Errorf("unknown hit-rate source %q (want functional|reuse)", *hitSrc)
	}

	// Observability: assemble the requested trace sinks. The JSON stream
	// writes as the simulation runs; the ring buffers events for the CSV
	// and stall views. The recorder is closed on every exit path (deferred
	// immediately after creation) so even a failed or interrupted run
	// leaves a well-terminated, loadable JSON file.
	level, err := swiftsim.ParseTraceLevel(*traceLevel)
	if err != nil {
		return err
	}
	var recs []swiftsim.TraceRecorder
	var ring *swiftsim.TraceRing
	if level == swiftsim.TraceOff && (*traceOut != "" || *traceCSV != "" || *traceStalls) {
		// Output flags with the level forced off write nothing; warn so
		// the missing files are attributable to the flag combination.
		fmt.Fprintln(stderr, "swiftsim: warning: trace output flags ignored because -trace-level is off; no trace output will be written")
	}
	if *traceOut != "" && level != swiftsim.TraceOff {
		f, err := os.Create(*traceOut)
		if err != nil {
			return err
		}
		recs = append(recs, swiftsim.NewTraceJSON(f))
	}
	if (*traceCSV != "" || *traceStalls) && level != swiftsim.TraceOff {
		ring = swiftsim.NewTraceRing(0)
		recs = append(recs, ring)
	}
	if len(recs) > 0 {
		rec := swiftsim.TraceMulti(recs...)
		defer rec.Close()
		cfg.Trace = swiftsim.NewTracer(rec, level)
	}

	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	res, err := swiftsim.SimulateCtx(ctx, app, gpu, cfg)
	if err != nil {
		return err
	}
	if *snapshotOut != "" {
		if err := os.WriteFile(*snapshotOut, snapBuf.Bytes(), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "snapshot     %s (%d bytes, requested at cycle %d)\n",
			*snapshotOut, snapBuf.Len(), *snapshotAt)
	}

	fmt.Fprintf(stdout, "app          %s\n", res.App)
	fmt.Fprintf(stdout, "gpu          %s\n", res.GPUName)
	fmt.Fprintf(stdout, "simulator    %s\n", res.Kind)
	fmt.Fprintf(stdout, "cycles       %d\n", res.Cycles)
	fmt.Fprintf(stdout, "instructions %d\n", res.Instructions)
	fmt.Fprintf(stdout, "wall time    %s\n", res.Wall)
	fmt.Fprintf(stdout, "ticked       %d cycles, fast-forwarded %d\n", res.TickedCycles, res.SkippedCycles)
	if res.Sampled {
		fmt.Fprintf(stdout, "sampling     sampled run; cycles include analytical extrapolation\n")
	}
	if len(res.KernelCycles) > 1 {
		fmt.Fprintf(stdout, "kernels      ")
		for i, kc := range res.KernelCycles {
			if i > 0 {
				fmt.Fprint(stdout, " ")
			}
			fmt.Fprintf(stdout, "%d", kc)
		}
		fmt.Fprintln(stdout)
	}
	if *showMetrics {
		fmt.Fprintln(stdout, "--- metrics ---")
		if err := swiftsim.WriteMetricsReport(stdout, res); err != nil {
			return err
		}
	}
	if ring != nil {
		if *traceCSV != "" {
			f, err := os.Create(*traceCSV)
			if err != nil {
				return err
			}
			if err := swiftsim.WriteTraceCounterCSV(f, ring.Events()); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
		}
		if *traceStalls {
			fmt.Fprintln(stdout, "--- stalls ---")
			if err := swiftsim.WriteTraceStallSummary(stdout, ring.Events(), nil, 10); err != nil {
				return err
			}
		}
	}
	return nil
}
