package main

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"swiftsim"
)

func runCmd(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errw strings.Builder
	code = realMain(context.Background(), args, &out, &errw)
	return code, out.String(), errw.String()
}

func TestListWorkloads(t *testing.T) {
	code, out, stderr := runCmd(t, "-list")
	if code != 0 {
		t.Fatalf("exit = %d, stderr:\n%s", code, stderr)
	}
	for _, name := range []string{"BFS", "GEMM", "PAGERANK", "LSTM"} {
		if !strings.Contains(out, name) {
			t.Errorf("-list missing %s:\n%s", name, out)
		}
	}
}

// TestTinyRunStdout pins the structural lines of a small simulation's
// output. The wall-time line is the one nondeterministic line and is
// asserted only by prefix.
func TestTinyRunStdout(t *testing.T) {
	code, out, stderr := runCmd(t, "-app", "BFS", "-scale", "0.1", "-sim", "memory")
	if code != 0 {
		t.Fatalf("exit = %d, stderr:\n%s", code, stderr)
	}
	for _, want := range []string{
		"app          BFS\n",
		"gpu          RTX2080Ti\n",
		"simulator    Swift-Sim-Memory\n",
		"cycles       ",
		"instructions ",
		"wall time    ",
		"ticked       ",
		"kernels      ",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// TestSnapshotRestoreRoundTrip drives the snapshot flags end to end: a
// run checkpoints at a mid-run kernel boundary, a second run resumes from
// the file, and both report the same cycle count as an uninterrupted run.
func TestSnapshotRestoreRoundTrip(t *testing.T) {
	cyclesLine := func(out string) string {
		for _, line := range strings.Split(out, "\n") {
			if strings.HasPrefix(line, "cycles") {
				return line
			}
		}
		t.Fatalf("no cycles line in output:\n%s", out)
		return ""
	}

	code, base, stderr := runCmd(t, "-app", "BFS", "-scale", "0.1", "-sim", "memory")
	if code != 0 {
		t.Fatalf("baseline exit = %d, stderr:\n%s", code, stderr)
	}

	snap := filepath.Join(t.TempDir(), "mid.snap")
	code, out, stderr := runCmd(t, "-app", "BFS", "-scale", "0.1", "-sim", "memory",
		"-snapshot-at", "1", "-snapshot-out", snap)
	if code != 0 {
		t.Fatalf("snapshot run exit = %d, stderr:\n%s", code, stderr)
	}
	if cyclesLine(out) != cyclesLine(base) {
		t.Errorf("snapshotting perturbed the run:\n%s\nvs\n%s", cyclesLine(out), cyclesLine(base))
	}
	if !strings.Contains(out, "snapshot     "+snap) {
		t.Errorf("no snapshot confirmation line:\n%s", out)
	}
	if fi, err := os.Stat(snap); err != nil || fi.Size() == 0 {
		t.Fatalf("snapshot file: %v (size %v)", err, fi)
	}

	code, out, stderr = runCmd(t, "-app", "BFS", "-scale", "0.1", "-sim", "memory",
		"-restore", snap)
	if code != 0 {
		t.Fatalf("restore exit = %d, stderr:\n%s", code, stderr)
	}
	if cyclesLine(out) != cyclesLine(base) {
		t.Errorf("restored run diverged:\n%s\nvs\n%s", cyclesLine(out), cyclesLine(base))
	}

	// A mismatched restore (different app) must fail loudly, not resume.
	if code, _, stderr = runCmd(t, "-app", "SM", "-scale", "0.1", "-sim", "memory",
		"-restore", snap); code != 1 || !strings.Contains(stderr, "snapshot") {
		t.Errorf("mismatched restore: exit %d, stderr:\n%s", code, stderr)
	}
}

func TestMetricsReport(t *testing.T) {
	code, out, _ := runCmd(t, "-app", "BFS", "-scale", "0.1", "-sim", "basic", "-metrics")
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	if !strings.Contains(out, "--- metrics ---") || !strings.Contains(out, "l1.hit") {
		t.Errorf("metrics report missing:\n%s", out)
	}
}

func TestTraceFileRoundTrip(t *testing.T) {
	app, err := swiftsim.GenerateWorkload("HOTSPOT", 0.1)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "hotspot.sgt")
	if err := swiftsim.WriteTrace(path, app); err != nil {
		t.Fatal(err)
	}
	code, out, stderr := runCmd(t, "-trace", path, "-sim", "memory")
	if code != 0 {
		t.Fatalf("exit = %d, stderr:\n%s", code, stderr)
	}
	if !strings.Contains(out, "app          HOTSPOT") {
		t.Errorf("trace run output wrong:\n%s", out)
	}
}

func TestExitOneOnErrors(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string // substring of stderr
	}{
		{"no input", nil, "one of -app or -trace"},
		{"bad flag", []string{"-no-such-flag"}, "flag provided but not defined"},
		{"unknown app", []string{"-app", "NOPE"}, "NOPE"},
		{"unknown gpu", []string{"-app", "BFS", "-gpu", "GTX480"}, "unknown GPU preset"},
		{"unknown sim", []string{"-app", "BFS", "-sim", "psychic"}, "unknown simulator"},
		{"unknown hitrates", []string{"-app", "BFS", "-sim", "memory", "-hitrates", "x"}, "unknown hit-rate source"},
		{"missing trace", []string{"-trace", filepath.Join(t.TempDir(), "nope.sgt")}, "no such file"},
		{"relaxed epoch on serial engine", []string{"-app", "BFS", "-epoch-cycles", "8"}, "-engine-threads"},
		{"negative epoch", []string{"-app", "BFS", "-epoch-cycles", "-2"}, "-epoch-cycles"},
		{"snapshot-at without out", []string{"-app", "BFS", "-snapshot-at", "100"}, "-snapshot-out"},
		{"missing restore file", []string{"-app", "BFS", "-restore", filepath.Join(t.TempDir(), "nope.snap")}, "no such file"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, _, stderr := runCmd(t, tc.args...)
			if code != 1 {
				t.Fatalf("exit = %d, want 1", code)
			}
			if !strings.Contains(stderr, tc.want) {
				t.Errorf("stderr missing %q:\n%s", tc.want, stderr)
			}
		})
	}
}

func TestConfigFileOverridesPreset(t *testing.T) {
	path := filepath.Join(t.TempDir(), "gpu.cfg")
	cfg := "gpu.base = RTX3060\ngpu.name = MyGPU\n"
	if err := os.WriteFile(path, []byte(cfg), 0o644); err != nil {
		t.Fatal(err)
	}
	code, out, stderr := runCmd(t, "-app", "BFS", "-scale", "0.1", "-sim", "memory", "-config", path)
	if code != 0 {
		t.Fatalf("exit = %d, stderr:\n%s", code, stderr)
	}
	if !strings.Contains(out, "gpu          MyGPU") {
		t.Errorf("config file not applied:\n%s", out)
	}
}
