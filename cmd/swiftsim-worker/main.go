// Command swiftsim-worker is the remote execution arm of the swiftsimd
// sweep daemon: it registers with a daemon over HTTP, long-polls for
// simulation job leases, fetches each job's trace and GPU configuration
// from the daemon's content-addressed store (verifying content hashes),
// simulates locally with the same runner guarantees the daemon has
// (panic isolation, per-job deadlines), and publishes the byte-stable
// canonical result back by hash.
//
// Any number of workers may serve one daemon — job ownership is a
// heartbeat-renewed lease, so a worker that crashes or loses its
// network mid-job simply stops heartbeating and the daemon requeues the
// job to another worker. Results are canonical, so every worker
// produces identical bytes for a given job; which worker runs a job
// never changes what the client receives.
//
// Usage:
//
//	swiftsim-worker -daemon http://host:8080 [-name lab-3] [-jobs 2]
//	                [-engine-threads 4] [-poll 25s]
//
// SIGINT/SIGTERM stops the worker; jobs in flight are abandoned and
// requeued by the daemon after the lease TTL.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"swiftsim/internal/service"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(realMain(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

// realMain runs the worker until ctx is canceled and returns the process
// exit code: 0 after a clean stop, 1 on startup or registration failure.
// Split from main so tests can drive the full lifecycle.
func realMain(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("swiftsim-worker", flag.ContinueOnError)
	fs.SetOutput(stderr)
	daemon := fs.String("daemon", "http://127.0.0.1:8080", "swiftsimd base URL to pull jobs from")
	name := fs.String("name", "", "worker label in daemon accounting (default: the hostname)")
	jobs := fs.Int("jobs", 1, "jobs executed concurrently on this worker")
	engineThreads := fs.Int("engine-threads", 0, "override engine shards per simulation for this host (0 = as requested by the sweep; results are byte-identical at every value)")
	poll := fs.Duration("poll", 25*time.Second, "long-poll duration per claim request")
	if err := fs.Parse(args); err != nil {
		return 1
	}
	if *jobs < 1 {
		fmt.Fprintln(stderr, "swiftsim-worker: -jobs must be >= 1")
		return 1
	}
	if *engineThreads < 0 {
		fmt.Fprintln(stderr, "swiftsim-worker: -engine-threads must be >= 0")
		return 1
	}
	if *name == "" {
		if host, err := os.Hostname(); err == nil {
			*name = host
		} else {
			*name = "worker"
		}
	}

	w := service.NewWorker(service.WorkerConfig{
		BaseURL:       *daemon,
		Name:          *name,
		Jobs:          *jobs,
		EngineThreads: *engineThreads,
		PollWait:      *poll,
	})
	fmt.Fprintf(stdout, "swiftsim-worker: %s pulling from %s (%d job slot(s))\n", *name, *daemon, *jobs)
	if err := w.Run(ctx); err != nil && !errors.Is(err, context.Canceled) {
		fmt.Fprintln(stderr, "swiftsim-worker:", err)
		return 1
	}
	st := w.Stats()
	fmt.Fprintf(stdout, "swiftsim-worker: stopping (claimed %d, done %d, failed %d, lost %d)\n",
		st.Claimed, st.Done, st.Failed, st.Lost)
	return 0
}
