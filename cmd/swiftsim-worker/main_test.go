package main

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"swiftsim/internal/service"
)

// syncBuffer is an io.Writer the worker goroutine writes while the test
// reads.
type syncBuffer struct {
	mu sync.Mutex
	sb strings.Builder
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.sb.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.sb.String()
}

// TestWorkerLifecycle boots realMain against a Remote-enabled in-process
// daemon, lets it execute one sweep job, then cancels the context and
// expects a clean exit with a stats line.
func TestWorkerLifecycle(t *testing.T) {
	svc, err := service.New(service.Config{
		CacheDir: t.TempDir(),
		Remote:   service.RemoteConfig{Enabled: true, LeaseTTL: 5 * time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(service.NewHandler(svc))
	defer srv.Close()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = svc.Close(ctx)
	}()

	ctx, cancel := context.WithCancel(context.Background())
	var out, errw syncBuffer
	done := make(chan int, 1)
	go func() {
		done <- realMain(ctx, []string{"-daemon", srv.URL, "-name", "t-worker", "-poll", "200ms"}, &out, &errw)
	}()

	spec := `{"apps":["BFS"],"gpus":["RTX2080Ti"],"sims":["memory"],"scale":0.1}`
	resp, err := http.Post(srv.URL+"/v1/sweeps", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	var sub struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST = %d", resp.StatusCode)
	}

	deadline := time.Now().Add(60 * time.Second)
	for {
		resp, err := http.Get(srv.URL + "/v1/sweeps/" + sub.ID)
		if err != nil {
			t.Fatal(err)
		}
		var st service.Status
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if st.Done {
			if st.Ok != 1 || st.Failed != 0 {
				t.Fatalf("sweep status: %+v", st)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("sweep never finished on the worker")
		}
		time.Sleep(10 * time.Millisecond)
	}

	resp, err = http.Get(srv.URL + "/v1/sweeps/" + sub.ID + "/results")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "swiftsim-canonical 1") {
		t.Fatalf("results not canonical:\n%s", body)
	}

	cancel()
	select {
	case code := <-done:
		if code != 0 {
			t.Fatalf("exit = %d, want 0; stderr:\n%s", code, errw.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatal("worker did not stop")
	}
	if s := out.String(); !strings.Contains(s, "t-worker pulling from") || !strings.Contains(s, "done 1") {
		t.Errorf("worker output missing banner or stats:\n%s", s)
	}
}

func TestWorkerBadFlags(t *testing.T) {
	cases := [][]string{
		{"-no-such-flag"},
		{"-jobs", "0"},
		{"-engine-threads", "-1"},
	}
	for _, args := range cases {
		var out, errw syncBuffer
		if code := realMain(context.Background(), args, &out, &errw); code != 1 {
			t.Errorf("realMain(%v) = %d, want 1", args, code)
		}
	}
}

// TestWorkerRegistrationRejected: a daemon that answers but refuses the
// registration (here: a plain 404 mux) is a terminal startup failure,
// not a retry loop.
func TestWorkerRegistrationRejected(t *testing.T) {
	srv := httptest.NewServer(http.NotFoundHandler())
	defer srv.Close()
	var out, errw syncBuffer
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if code := realMain(ctx, []string{"-daemon", srv.URL}, &out, &errw); code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	if !strings.Contains(errw.String(), "registration rejected") {
		t.Errorf("stderr does not explain the rejection:\n%s", errw.String())
	}
}
