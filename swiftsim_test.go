package swiftsim

import (
	"strings"
	"testing"
)

func smallGPU() GPU {
	g := RTX2080Ti()
	g.NumSMs = 4
	g.MemPartitions = 2
	return g
}

func TestFacadeQuickstartFlow(t *testing.T) {
	app, err := GenerateWorkload("BFS", 0.1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Simulate(app, smallGPU(), Config{Simulator: SwiftSimMemory})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles == 0 || res.Instructions == 0 {
		t.Fatalf("empty result: %+v", res)
	}
	var sb strings.Builder
	if err := WriteMetricsReport(&sb, res); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "gpu.cycles") {
		t.Error("metrics report missing gpu.cycles")
	}
}

func TestFacadePresets(t *testing.T) {
	for _, name := range []string{"RTX2080Ti", "RTX3060", "RTX3090"} {
		g, ok := GPUPreset(name)
		if !ok || g.Name != name {
			t.Errorf("GPUPreset(%q) = %v, %v", name, g.Name, ok)
		}
	}
	if RTX2080Ti().NumSMs != 68 || RTX3060().NumSMs != 28 || RTX3090().NumSMs != 82 {
		t.Error("preset SM counts wrong")
	}
}

func TestFacadeWorkloadCatalog(t *testing.T) {
	if got := len(Workloads()); got != 20 {
		t.Fatalf("Workloads() = %d names, want 20", got)
	}
	cat := WorkloadCatalog()
	if len(cat) != 20 {
		t.Fatalf("catalog = %d entries, want 20", len(cat))
	}
	memBound := 0
	for _, wi := range cat {
		if wi.Name == "" || wi.Suite == "" || wi.Description == "" {
			t.Errorf("incomplete catalog entry %+v", wi)
		}
		if wi.MemoryBound {
			memBound++
		}
	}
	if memBound != 4 {
		t.Errorf("memory-bound apps = %d, want 4 (NW, ADI, SM, GRU)", memBound)
	}
}

func TestFacadeTraceRoundTrip(t *testing.T) {
	app, err := GenerateWorkload("MVT", 0.1)
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/mvt.sgt"
	if err := WriteTrace(path, app); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Insts() != app.Insts() {
		t.Errorf("trace round trip changed instruction count: %d vs %d", back.Insts(), app.Insts())
	}
}

func TestFacadeGPUFileRoundTrip(t *testing.T) {
	path := t.TempDir() + "/gpu.cfg"
	want := RTX3060()
	if err := WriteGPU(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := LoadGPU(path)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Error("GPU config file round trip mismatch")
	}
}

func TestFacadeSimulateAll(t *testing.T) {
	gpu := smallGPU()
	var jobs []Job
	for _, name := range []string{"BFS", "GEMM", "WC"} {
		app, err := GenerateWorkload(name, 0.1)
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, Job{App: app, GPU: gpu, Cfg: Config{Simulator: SwiftSimMemory}})
	}
	outs := SimulateAll(jobs, 2)
	if len(outs) != 3 {
		t.Fatalf("outcomes = %d, want 3", len(outs))
	}
	for i, o := range outs {
		if o.Err != nil {
			t.Errorf("job %d: %v", i, o.Err)
		}
	}
}

func TestFacadeHardwareModel(t *testing.T) {
	app, err := GenerateWorkload("GAUSSIAN", 0.1)
	if err != nil {
		t.Fatal(err)
	}
	gpu := smallGPU()
	hw, err := SimulateHardware(app, gpu)
	if err != nil {
		t.Fatal(err)
	}
	det, err := Simulate(app, gpu, Config{Simulator: Detailed})
	if err != nil {
		t.Fatal(err)
	}
	if hw.Cycles <= det.Cycles {
		t.Errorf("hardware model (%d cycles) must exceed the detailed simulator (%d): it adds unmodeled effects",
			hw.Cycles, det.Cycles)
	}
}
