module swiftsim

go 1.22
