package workload

import (
	"fmt"

	"swiftsim/internal/trace"
)

// This file registers the 20 application generators, grouped by suite.
// Each generator reproduces the pattern class of the real benchmark:
//
//	Rodinia:   BFS, HOTSPOT, NW, PATHFINDER, SRAD, BACKPROP, GAUSSIAN
//	Polybench: 2MM, ATAX, GEMM, MVT, ADI, LU
//	Mars:      SM (string match), WC (word count)
//	Tango:     ALEXNET, GRU, LSTM
//	Pannotia:  PAGERANK, SSSP
//
// Applications marked MemoryBound stream large footprints with little
// reuse; in the paper these (NW, ADI, SM, GRU) show the largest
// Swift-Sim-Memory speedups because the hybrid simulator skips their
// memory-system ticking entirely.

func init() {
	registerRodinia()
	registerPolybench()
	registerMars()
	registerTango()
	registerPannotia()
}

// rowBytesOf spreads block working sets over a region larger than the L2
// (5.5 MiB on the 2080 Ti) so streaming workloads become DRAM-bound.
const bigRegion = 64 << 20

func app(name, suite string, kernels ...*trace.Kernel) *trace.App {
	return &trace.App{Name: name, Suite: suite, Kernels: kernels}
}

// ---------------------------------------------------------------------------
// Rodinia

func registerRodinia() {
	register(Spec{
		Name: "BFS", Suite: "Rodinia",
		Description: "level-synchronous breadth-first search: divergent gathers over CSR arrays",
		Generate: func(scale float64) *trace.App {
			blocks := scaleDim(16, scale, 2)
			var kernels []*trace.Kernel
			// Each BFS level is one kernel; frontier shrinks/grows.
			fracs := []float64{0.9, 0.5, 0.25, 0.6}
			for lvl, frac := range fracs {
				r := newRNG(uint64(0xBF5 + lvl))
				k := kernel1D(fmt.Sprintf("bfs_level%d", lvl), blocks, 256, 24, 0,
					func(b *wb, block, warp int) {
						seed := newRNG(r.next() ^ uint64(block*64+warp))
						tid := b.alu(trace.OpInt)
						base := uint64(arrA + (block*8+warp)*1024)
						frontier := b.load(coalesced(base, 4), tid)
						b.loop(6, func(e int) {
							m := divergentMask(seed, frac)
							nbr := b.loadMasked(m, gatherMasked(seed, m, arrB, bigRegion), frontier)
							dist := b.loadMasked(m, gatherMasked(seed, m, arrC, bigRegion), nbr)
							upd := b.aluMasked(trace.OpInt, m, nbr, dist)
							b.storeMasked(m, gatherMasked(seed, m, arrC, bigRegion), upd)
						})
					})
				kernels = append(kernels, k)
			}
			return app("BFS", "Rodinia", kernels...)
		},
	})

	register(Spec{
		Name: "HOTSPOT", Suite: "Rodinia",
		Description: "2D thermal stencil with shared-memory tiles and halo reuse",
		Generate: func(scale float64) *trace.App {
			blocks := scaleDim(24, scale, 2)
			k := kernel1D("hotspot_stencil", blocks, 256, 30, 4096,
				func(b *wb, block, warp int) {
					row := uint64(arrA + (block*256+warp*32)*4)
					// Load tile + halo into shared memory.
					t0 := b.load(coalesced(row, 4), 0)
					b.shStore(shBank(uint64(warp*128), 4), t0)
					t1 := b.load(coalesced(row+1024, 4), 0)
					b.shStore(shBank(uint64(warp*128+4096), 4), t1)
					b.barrier()
					b.loop(24, func(it int) {
						n := b.shLoad(shBank(uint64(warp*128), 4))
						s := b.shLoad(shBank(uint64(warp*128+4096), 4))
						e := b.alu(trace.OpSP, n, s)
						w := b.alu(trace.OpSP, e, n)
						acc := b.alu(trace.OpSP, w, e)
						b.shStore(shBank(uint64(warp*128), 4), acc)
						b.barrier()
					})
					res := b.shLoad(shBank(uint64(warp*128), 4))
					b.store(coalesced(arrB+row, 4), res)
				})
			return app("HOTSPOT", "Rodinia", k)
		},
	})

	register(Spec{
		Name: "NW", Suite: "Rodinia", MemoryBound: true,
		Description: "Needleman-Wunsch wavefront: strided matrix sweeps, minimal reuse",
		Generate: func(scale float64) *trace.App {
			blocks := scaleDim(12, scale, 2)
			mk := func(name string, pass int) *trace.Kernel {
				return kernel1D(name, blocks, 128, 28, 2048,
					func(b *wb, block, warp int) {
						base := uint64(arrA + pass*0x400_0000 + (block*16+warp)*65536)
						b.loop(20, func(d int) {
							// Wavefront diagonal: strided (uncoalesced) row
							// and column reads over a big matrix.
							up := b.load(strided(base+uint64(d)*2048, 512), 0)
							left := b.load(strided(base+uint64(d)*2048+4, 512), 0)
							ref := b.load(coalesced(arrD+base%bigRegion+uint64(d)*128, 4), 0)
							sc := b.alu(trace.OpInt, up, left)
							sc2 := b.alu(trace.OpInt, sc, ref)
							b.store(strided(base+uint64(d+1)*2048, 512), sc2)
						})
					})
			}
			return app("NW", "Rodinia", mk("nw_pass1", 0), mk("nw_pass2", 1))
		},
	})

	register(Spec{
		Name: "PATHFINDER", Suite: "Rodinia",
		Description: "dynamic-programming row relaxation with neighbour reuse",
		Generate: func(scale float64) *trace.App {
			blocks := scaleDim(20, scale, 2)
			k := kernel1D("pathfinder_rows", blocks, 256, 20, 2048,
				func(b *wb, block, warp int) {
					base := uint64(arrA + (block*2048+warp*256)*4)
					prev := b.load(coalesced(base, 4), 0)
					b.loop(12, func(row int) {
						l := b.load(coalesced(base+uint64(row)*8192, 4), 0)
						c := b.load(coalesced(base+uint64(row)*8192+128, 4), 0)
						m1 := b.alu(trace.OpInt, prev, l)
						m2 := b.alu(trace.OpInt, m1, c)
						prev = b.alu(trace.OpInt, m2, l)
						b.barrier()
					})
					b.store(coalesced(arrB+base%bigRegion, 4), prev)
				})
			return app("PATHFINDER", "Rodinia", k)
		},
	})

	register(Spec{
		Name: "SRAD", Suite: "Rodinia",
		Description: "speckle-reducing anisotropic diffusion: stencil + transcendental-heavy updates",
		Generate: func(scale float64) *trace.App {
			blocks := scaleDim(20, scale, 2)
			mk := func(name string, phase int) *trace.Kernel {
				return kernel1D(name, blocks, 256, 32, 0,
					func(b *wb, block, warp int) {
						// 2D stencil over row-major tiles: each warp
						// sweeps down its column slice reading the
						// centre and south rows; the south row is
						// re-read as the centre of the next iteration,
						// so the L1 sees genuine halo reuse.
						const rowStride = 4096
						base := uint64(arrA+phase*0x100_0000) +
							uint64(block)*16*rowStride + uint64(warp)*128
						b.loop(10, func(i int) {
							c := b.load(coalesced(base+uint64(i)*rowStride, 4), 0)
							s := b.load(coalesced(base+uint64(i+1)*rowStride, 4), 0)
							g := b.alu(trace.OpSP, c, s)
							d := b.alu(trace.OpSFU, g)
							e := b.alu(trace.OpSP, d, c)
							f := b.alu(trace.OpSFU, e)
							out := b.alu(trace.OpSP, f, g)
							b.store(coalesced(arrC+base%bigRegion+uint64(i)*rowStride, 4), out)
						})
					})
			}
			return app("SRAD", "Rodinia", mk("srad_k1", 0), mk("srad_k2", 1))
		},
	})

	register(Spec{
		Name: "BACKPROP", Suite: "Rodinia",
		Description: "MLP back-propagation: dense matvec layers with SFU activations",
		Generate: func(scale float64) *trace.App {
			blocks := scaleDim(16, scale, 2)
			fwd := kernel1D("backprop_forward", blocks, 256, 26, 8192,
				func(b *wb, block, warp int) {
					acc := b.alu(trace.OpSP)
					b.loop(14, func(i int) {
						w := b.load(coalesced(uint64(arrA+(block*14+i)*8192+warp*1024), 4), 0)
						x := b.load(broadcast(uint64(arrB+i*512)), 0)
						acc = b.alu(trace.OpSP, w, x)
					})
					act := b.alu(trace.OpSFU, acc)
					b.store(coalesced(uint64(arrC+(block*256+warp*32)*4), 4), act)
				})
			bwd := kernel1D("backprop_adjust", blocks, 256, 26, 8192,
				func(b *wb, block, warp int) {
					g := b.load(coalesced(uint64(arrC+(block*256+warp*32)*4), 4), 0)
					b.loop(10, func(i int) {
						w := b.load(coalesced(uint64(arrA+(block*10+i)*8192+warp*1024), 4), 0)
						d := b.alu(trace.OpSP, g, w)
						b.store(coalesced(uint64(arrA+(block*10+i)*8192+warp*1024), 4), d)
					})
				})
			return app("BACKPROP", "Rodinia", fwd, bwd)
		},
	})

	register(Spec{
		Name: "GAUSSIAN", Suite: "Rodinia",
		Description: "Gaussian elimination: shrinking row updates, broadcast pivot reads",
		Generate: func(scale float64) *trace.App {
			blocks := scaleDim(12, scale, 2)
			var kernels []*trace.Kernel
			for step := 0; step < 3; step++ {
				k := kernel1D(fmt.Sprintf("gaussian_step%d", step), blocks, 128, 22, 0,
					func(b *wb, block, warp int) {
						base := uint64(arrA + (block*512+warp*64)*4)
						piv := b.load(broadcast(uint64(arrB+step*256)), 0)
						b.loop(8-2*step, func(i int) {
							row := b.load(coalesced(base+uint64(i)*2048, 4), 0)
							f := b.alu(trace.OpSP, row, piv)
							u := b.alu(trace.OpSP, f, row)
							b.store(coalesced(base+uint64(i)*2048, 4), u)
						})
					})
				kernels = append(kernels, k)
			}
			return app("GAUSSIAN", "Rodinia", kernels...)
		},
	})
}

// ---------------------------------------------------------------------------
// Polybench

func registerPolybench() {
	gemmLike := func(name string, blocks int, depth int) *trace.Kernel {
		return kernel1D(name, blocks, 256, 32, 8192,
			func(b *wb, block, warp int) {
				acc := b.alu(trace.OpSP)
				b.loop(depth, func(t int) {
					// Tiled: load A and B tiles to shared, then FMA chain.
					a := b.load(coalesced(uint64(arrA+(block*depth+t)*4096+warp*1024), 4), 0)
					b.shStore(shBank(uint64(warp*256), 4), a)
					bb := b.load(coalesced(uint64(arrB+t*4096+warp*1024), 4), 0)
					b.shStore(shBank(uint64(8192+warp*256), 4), bb)
					b.barrier()
					b.loop(6, func(u int) {
						x := b.shLoad(shBank(uint64(warp*256), 4))
						y := b.shLoad(shBank(uint64(8192+warp*256), 4))
						acc = b.alu(trace.OpSP, x, y)
						acc = b.alu(trace.OpSP, acc, x)
					})
					b.barrier()
				})
				b.store(coalesced(uint64(arrC+(block*256+warp*32)*4), 4), acc)
			})
	}

	register(Spec{
		Name: "GEMM", Suite: "Polybench",
		Description: "dense matrix multiply with shared-memory tiling",
		Generate: func(scale float64) *trace.App {
			return app("GEMM", "Polybench", gemmLike("gemm", scaleDim(16, scale, 2), 10))
		},
	})

	register(Spec{
		Name: "2MM", Suite: "Polybench",
		Description: "two chained dense matrix multiplies",
		Generate: func(scale float64) *trace.App {
			blocks := scaleDim(12, scale, 2)
			return app("2MM", "Polybench",
				gemmLike("mm1", blocks, 8), gemmLike("mm2", blocks, 8))
		},
	})

	register(Spec{
		Name: "ATAX", Suite: "Polybench",
		Description: "A^T A x: two matvec passes, row-major then column-major",
		Generate: func(scale float64) *trace.App {
			blocks := scaleDim(16, scale, 2)
			rowPass := kernel1D("atax_ax", blocks, 256, 24, 0,
				func(b *wb, block, warp int) {
					acc := b.alu(trace.OpSP)
					b.loop(12, func(i int) {
						a := b.load(coalesced(uint64(arrA+(block*12+i)*8192+warp*1024), 4), 0)
						x := b.load(broadcast(uint64(arrB+i*128)), 0)
						acc = b.alu(trace.OpSP, a, x)
					})
					b.store(coalesced(uint64(arrC+(block*256+warp*32)*4), 4), acc)
				})
			colPass := kernel1D("atax_aty", blocks, 256, 24, 0,
				func(b *wb, block, warp int) {
					acc := b.alu(trace.OpSP)
					b.loop(12, func(i int) {
						// Column-major: strided, poorly coalesced.
						a := b.load(strided(uint64(arrA+(block*256+warp*32)*4+i*128), 8192), 0)
						y := b.load(broadcast(uint64(arrC+i*128)), 0)
						acc = b.alu(trace.OpSP, a, y)
					})
					b.store(coalesced(uint64(arrD+(block*256+warp*32)*4), 4), acc)
				})
			return app("ATAX", "Polybench", rowPass, colPass)
		},
	})

	register(Spec{
		Name: "MVT", Suite: "Polybench",
		Description: "matrix-vector product twice (row and column sweeps)",
		Generate: func(scale float64) *trace.App {
			blocks := scaleDim(16, scale, 2)
			k := kernel1D("mvt", blocks, 256, 22, 0,
				func(b *wb, block, warp int) {
					acc1 := b.alu(trace.OpSP)
					acc2 := b.alu(trace.OpSP)
					b.loop(10, func(i int) {
						a := b.load(coalesced(uint64(arrA+(block*10+i)*8192+warp*1024), 4), 0)
						v := b.load(broadcast(uint64(arrB+i*64)), 0)
						acc1 = b.alu(trace.OpSP, a, v)
						at := b.load(strided(uint64(arrA+(block*256+warp*32)*4+i*64), 8192), 0)
						acc2 = b.alu(trace.OpSP, at, acc1)
					})
					b.store(coalesced(uint64(arrC+(block*256+warp*32)*4), 4), acc1)
					b.store(coalesced(uint64(arrD+(block*256+warp*32)*4), 4), acc2)
				})
			return app("MVT", "Polybench", k)
		},
	})

	register(Spec{
		Name: "ADI", Suite: "Polybench", MemoryBound: true,
		Description: "alternating-direction implicit sweeps: long strided streams, no reuse",
		Generate: func(scale float64) *trace.App {
			blocks := scaleDim(12, scale, 2)
			mk := func(name string, vertical bool, region uint64) *trace.Kernel {
				return kernel1D(name, blocks, 128, 26, 0,
					func(b *wb, block, warp int) {
						base := region + uint64(block*32+warp)*131072
						b.loop(24, func(i int) {
							var cur, prev trace.Reg
							if vertical {
								cur = b.load(strided(base+uint64(i)*4096, 2048), 0)
								prev = b.load(strided(base+uint64(i)*4096+2048, 2048), 0)
							} else {
								cur = b.load(coalesced(base+uint64(i)*4096, 4), 0)
								prev = b.load(coalesced(base+uint64(i)*4096+128, 4), 0)
							}
							u := b.alu(trace.OpSP, cur, prev)
							u2 := b.alu(trace.OpSP, u, cur)
							if vertical {
								b.store(strided(base+uint64(i)*4096, 2048), u2)
							} else {
								b.store(coalesced(base+uint64(i)*4096, 4), u2)
							}
						})
					})
			}
			return app("ADI", "Polybench",
				mk("adi_row_sweep", false, arrA), mk("adi_col_sweep", true, arrB))
		},
	})

	register(Spec{
		Name: "LU", Suite: "Polybench",
		Description: "LU decomposition: pivot broadcasts and shrinking trailing updates",
		Generate: func(scale float64) *trace.App {
			blocks := scaleDim(12, scale, 2)
			var kernels []*trace.Kernel
			for step := 0; step < 3; step++ {
				k := kernel1D(fmt.Sprintf("lu_step%d", step), blocks, 128, 26, 0,
					func(b *wb, block, warp int) {
						base := uint64(arrA + (block*1024+warp*128)*4)
						piv := b.load(broadcast(uint64(arrB+step*512)), 0)
						inv := b.alu(trace.OpSFU, piv)
						b.loop(10-3*step, func(i int) {
							row := b.load(coalesced(base+uint64(i)*8192, 4), 0)
							l := b.alu(trace.OpSP, row, inv)
							u := b.alu(trace.OpSP, l, row)
							b.store(coalesced(base+uint64(i)*8192, 4), u)
						})
					})
				kernels = append(kernels, k)
			}
			return app("LU", "Polybench", kernels...)
		},
	})
}

// ---------------------------------------------------------------------------
// Mars

func registerMars() {
	register(Spec{
		Name: "SM", Suite: "Mars", MemoryBound: true,
		Description: "map-reduce string match: pure streaming scans over huge keys/values",
		Generate: func(scale float64) *trace.App {
			blocks := scaleDim(20, scale, 2)
			mapK := kernel1D("sm_map", blocks, 256, 18, 0,
				func(b *wb, block, warp int) {
					// Disjoint per-warp streaming regions: pure
					// cold-miss scans, the bandwidth-bound profile of
					// map-reduce string matching.
					base := uint64(arrA) + uint64(block*8+warp)*262144
					// The search pattern is loaded once and kept in
					// registers; the scan itself streams large chunks.
					pat := b.load(broadcast(uint64(arrB+warp*128)), 0)
					b.loop(22, func(i int) {
						chunk := b.load(coalesced(base+uint64(i)*8192, 4), 0)
						cmp := b.alu(trace.OpInt, chunk, pat)
						b.store(coalesced(uint64(arrC)+base%bigRegion+uint64(i)*8192, 4), cmp)
					})
				})
			reduceK := kernel1D("sm_reduce", blocks/2+1, 256, 18, 0,
				func(b *wb, block, warp int) {
					acc := b.alu(trace.OpInt)
					base := uint64(arrC) + uint64(block*8+warp)*262144
					b.loop(12, func(i int) {
						v := b.load(coalesced(base+uint64(i)*16384, 4), 0)
						acc = b.alu(trace.OpInt, acc, v)
					})
					b.store(coalesced(uint64(arrD+(block*256+warp*32)*4), 4), acc)
				})
			return app("SM", "Mars", mapK, reduceK)
		},
	})

	register(Spec{
		Name: "WC", Suite: "Mars",
		Description: "map-reduce word count: streaming scan with divergent token boundaries",
		Generate: func(scale float64) *trace.App {
			blocks := scaleDim(16, scale, 2)
			r := newRNG(0x3C)
			k := kernel1D("wc_map", blocks, 256, 20, 1024,
				func(b *wb, block, warp int) {
					seed := newRNG(r.next() ^ uint64(block*64+warp))
					base := uint64(arrA) + uint64(block*256+warp*32)*4096
					b.loop(14, func(i int) {
						chunk := b.load(coalesced(base+uint64(i)*65536, 4), 0)
						isSep := b.alu(trace.OpInt, chunk)
						m := divergentMask(seed, 0.4)
						cnt := b.aluMasked(trace.OpInt, m, isSep)
						b.storeMasked(m, coalescedMasked(m, uint64(arrB)+base%bigRegion+uint64(i)*65536, 4), cnt)
					})
				})
			return app("WC", "Mars", k)
		},
	})
}

// ---------------------------------------------------------------------------
// Tango (DNN benchmarks)

func registerTango() {
	register(Spec{
		Name: "ALEXNET", Suite: "Tango",
		Description: "convolution layers: high arithmetic intensity, shared-memory filter reuse",
		Generate: func(scale float64) *trace.App {
			var kernels []*trace.Kernel
			layerBlocks := []int{scaleDim(20, scale, 2), scaleDim(14, scale, 2), scaleDim(10, scale, 2)}
			for li, blocks := range layerBlocks {
				k := kernel1D(fmt.Sprintf("alexnet_conv%d", li+1), blocks, 256, 40, 12288,
					func(b *wb, block, warp int) {
						// Load filter once to shared, stream activations.
						f := b.load(coalesced(uint64(arrA+li*0x100_0000+warp*1024), 4), 0)
						b.shStore(shBank(uint64(warp*256), 4), f)
						b.barrier()
						acc := b.alu(trace.OpSP)
						b.loop(10, func(t int) {
							x := b.load(coalesced(uint64(arrB+li*0x100_0000+(block*10+t)*4096+warp*512), 4), 0)
							w := b.shLoad(shBank(uint64(warp*256), 4))
							b.loop(5, func(u int) {
								acc = b.alu(trace.OpSP, x, w)
								acc = b.alu(trace.OpSP, acc, x)
							})
						})
						act := b.alu(trace.OpSFU, acc)
						b.store(coalesced(uint64(arrC+li*0x100_0000+(block*256+warp*32)*4), 4), act)
					})
				kernels = append(kernels, k)
			}
			return app("ALEXNET", "Tango", kernels...)
		},
	})

	register(Spec{
		Name: "GRU", Suite: "Tango", MemoryBound: true,
		Description: "gated recurrent unit: many small memory-bound matvec kernels in sequence",
		Generate: func(scale float64) *trace.App {
			steps := scaleDim(6, scale, 2)
			blocks := scaleDim(10, scale, 2)
			var kernels []*trace.Kernel
			for s := 0; s < steps; s++ {
				k := kernel1D(fmt.Sprintf("gru_step%d", s), blocks, 128, 30, 0,
					func(b *wb, block, warp int) {
						// Weight matrices far exceed cache: streamed anew
						// every timestep (the recurrent-weight reload that
						// makes GRUs bandwidth-bound).
						base := uint64(arrA) + uint64(s%3)*0x800_0000 + uint64(block*16+warp)*262144
						z := b.alu(trace.OpSP)
						b.loop(16, func(i int) {
							w := b.load(coalesced(base+uint64(i)*16384, 4), 0)
							h := b.load(broadcast(uint64(arrD+s*4096+i*64)), 0)
							z = b.alu(trace.OpSP, w, h)
						})
						g := b.alu(trace.OpSFU, z)
						b.store(coalesced(uint64(arrE+(block*128+warp*32)*4+s*8192), 4), g)
					})
				kernels = append(kernels, k)
			}
			return app("GRU", "Tango", kernels...)
		},
	})

	register(Spec{
		Name: "LSTM", Suite: "Tango",
		Description: "LSTM cell: four gate matvecs per step, mixed compute/memory",
		Generate: func(scale float64) *trace.App {
			steps := scaleDim(4, scale, 1)
			blocks := scaleDim(10, scale, 2)
			var kernels []*trace.Kernel
			for s := 0; s < steps; s++ {
				k := kernel1D(fmt.Sprintf("lstm_step%d", s), blocks, 128, 36, 4096,
					func(b *wb, block, warp int) {
						base := uint64(arrA) + uint64(s%2)*0x400_0000 + uint64(block*16+warp)*131072
						var gates [4]trace.Reg
						b.loop(len(gates), func(gi int) {
							acc := b.alu(trace.OpSP)
							b.loop(6, func(i int) {
								w := b.load(coalesced(base+uint64(gi*6+i)*8192, 4), 0)
								h := b.load(broadcast(uint64(arrD+s*2048+i*64)), 0)
								acc = b.alu(trace.OpSP, w, h)
							})
							gates[gi] = b.alu(trace.OpSFU, acc)
						})
						c := b.alu(trace.OpSP, gates[0], gates[1])
						c2 := b.alu(trace.OpSP, c, gates[2])
						hOut := b.alu(trace.OpSP, c2, gates[3])
						b.store(coalesced(uint64(arrE+(block*128+warp*32)*4+s*8192), 4), hOut)
					})
				kernels = append(kernels, k)
			}
			return app("LSTM", "Tango", kernels...)
		},
	})
}

// ---------------------------------------------------------------------------
// Pannotia (graph analytics)

func registerPannotia() {
	register(Spec{
		Name: "PAGERANK", Suite: "Pannotia",
		Description: "pagerank power iteration: irregular gathers of neighbour ranks",
		Generate: func(scale float64) *trace.App {
			blocks := scaleDim(16, scale, 2)
			var kernels []*trace.Kernel
			for it := 0; it < 2; it++ {
				r := newRNG(uint64(0x9A + it))
				k := kernel1D(fmt.Sprintf("pagerank_iter%d", it), blocks, 256, 24, 0,
					func(b *wb, block, warp int) {
						seed := newRNG(r.next() ^ uint64(block*64+warp))
						off := b.load(coalesced(uint64(arrA+(block*256+warp*32)*4), 4), 0)
						acc := b.alu(trace.OpSP)
						b.loop(10, func(e int) {
							nbr := b.load(gather(seed, arrB, bigRegion), off)
							rank := b.load(gather(seed, arrC, bigRegion), nbr)
							acc = b.alu(trace.OpSP, acc, rank)
						})
						norm := b.alu(trace.OpSFU, acc)
						b.store(coalesced(uint64(arrD+(block*256+warp*32)*4), 4), norm)
					})
				kernels = append(kernels, k)
			}
			return app("PAGERANK", "Pannotia", kernels...)
		},
	})

	register(Spec{
		Name: "SSSP", Suite: "Pannotia",
		Description: "single-source shortest paths: divergent relaxations with scattered updates",
		Generate: func(scale float64) *trace.App {
			blocks := scaleDim(14, scale, 2)
			var kernels []*trace.Kernel
			fracs := []float64{0.8, 0.45, 0.2}
			for it, frac := range fracs {
				r := newRNG(uint64(0x55 + it))
				k := kernel1D(fmt.Sprintf("sssp_iter%d", it), blocks, 256, 22, 0,
					func(b *wb, block, warp int) {
						seed := newRNG(r.next() ^ uint64(block*64+warp))
						dist := b.load(coalesced(uint64(arrA+(block*256+warp*32)*4), 4), 0)
						b.loop(8, func(e int) {
							m := divergentMask(seed, frac)
							wgt := b.loadMasked(m, gatherMasked(seed, m, arrB, bigRegion), dist)
							nd := b.aluMasked(trace.OpInt, m, dist, wgt)
							b.storeMasked(m, gatherMasked(seed, m, arrC, bigRegion), nd)
						})
					})
				kernels = append(kernels, k)
			}
			return app("SSSP", "Pannotia", kernels...)
		},
	})
}
