// Package workload synthesizes application traces for the benchmark suites
// the paper evaluates (Rodinia, Polybench, Mars, Tango, Pannotia).
//
// The paper captures traces from real GPU runs with NVBit; this repository
// has no GPU, so each application is replaced by a generator that
// reproduces the characteristics that drive both simulator accuracy and
// simulation cost: instruction mix, register dependency chains, branch
// divergence (active masks), coalescing behaviour, data reuse (cache
// friendliness), shared-memory tiling and synchronization. Generators are
// deterministic in (scale, seed), so every simulator sees byte-identical
// traces.
package workload

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"swiftsim/internal/trace"
)

// Spec describes one synthesizable application.
type Spec struct {
	// Name is the application name used in the paper's figures.
	Name string
	// Suite is the benchmark suite the application belongs to.
	Suite string
	// Description summarizes the modeled computation pattern.
	Description string
	// MemoryBound marks applications dominated by global-memory traffic
	// (the paper's NW, ADI, SM and GRU fall in this class and show the
	// largest hybrid speedups).
	MemoryBound bool
	// Generate builds the application trace at the given problem scale
	// (1.0 = default size).
	Generate func(scale float64) *trace.App
}

var catalog []Spec

func register(s Spec) {
	catalog = append(catalog, s)
}

// Catalog lists all applications sorted by suite then name.
func Catalog() []Spec {
	out := make([]Spec, len(catalog))
	copy(out, catalog)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Suite != out[j].Suite {
			return out[i].Suite < out[j].Suite
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// Names lists all application names in Catalog order.
func Names() []string {
	specs := Catalog()
	names := make([]string, len(specs))
	for i, s := range specs {
		names[i] = s.Name
	}
	return names
}

// ByName returns the Spec for an application name.
func ByName(name string) (Spec, bool) {
	for _, s := range catalog {
		if s.Name == name {
			return s, true
		}
	}
	return Spec{}, false
}

// Generators are deterministic in (name, scale), so Generate memoizes its
// results: sweeps and the regression corpus build the same trace under many
// simulator kinds and thread counts, and regeneration is pure recomputation.
// Callers therefore share the returned *trace.App and must treat it as
// immutable (the simulator already does — traces are read-only inputs).
type genKey struct {
	name  string
	scale float64
}

// genEntry's once gives single-flight semantics: concurrent sweep workers
// requesting the same application generate it exactly once.
type genEntry struct {
	once sync.Once
	app  *trace.App
}

const genCacheCap = 64

var (
	genMu    sync.Mutex
	genCache = make(map[genKey]*genEntry)
	genOrder []genKey // FIFO eviction order
)

// Generate builds the named application at the given scale. The returned
// trace is memoized and shared across callers; it must not be mutated.
func Generate(name string, scale float64) (*trace.App, error) {
	s, ok := ByName(name)
	if !ok {
		return nil, fmt.Errorf("workload: unknown application %q (have %v)", name, Names())
	}
	if scale <= 0 {
		return nil, fmt.Errorf("workload: scale must be positive, got %v", scale)
	}
	key := genKey{name: name, scale: scale}
	genMu.Lock()
	e, ok := genCache[key]
	if !ok {
		if len(genOrder) >= genCacheCap {
			oldest := genOrder[0]
			genOrder = genOrder[1:]
			delete(genCache, oldest)
		}
		e = &genEntry{}
		genCache[key] = e
		genOrder = append(genOrder, key)
	}
	genMu.Unlock()
	e.once.Do(func() { e.app = s.Generate(scale) })
	return e.app, nil
}

// ---------------------------------------------------------------------------
// Deterministic PRNG (splitmix64) so traces are reproducible.

type rng struct{ s uint64 }

func newRNG(seed uint64) *rng { return &rng{s: seed} }

func (r *rng) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

func (r *rng) float() float64 { return float64(r.next()>>11) / (1 << 53) }

// ---------------------------------------------------------------------------
// Warp-trace builder.

const fullMask = 0xffffffff

// wb builds one warp's instruction stream.
type wb struct {
	insts []trace.Inst
	pc    uint64
	reg   trace.Reg // rotating destination register
}

func newWB() *wb { return &wb{reg: 1} }

// nextReg rotates through registers 1..31, creating realistic dependency
// chains without exceeding typical register footprints.
func (b *wb) nextReg() trace.Reg {
	r := b.reg
	b.reg++
	if b.reg > 31 {
		b.reg = 1
	}
	return r
}

func (b *wb) emit(in trace.Inst) {
	in.PC = b.pc
	b.pc += 8
	b.insts = append(b.insts, in)
}

// loop emits body n times with the PCs of every iteration identical, the
// way dynamic NVBit traces repeat a loop body's static instructions. The
// per-PC analytical memory model averages hit rates across iterations of
// the same static instruction exactly as in the paper.
func (b *wb) loop(n int, body func(i int)) {
	start := b.pc
	end := start
	for i := 0; i < n; i++ {
		b.pc = start
		body(i)
		if i == 0 {
			end = b.pc
		}
	}
	b.pc = end
}

// alu emits an arithmetic instruction reading srcs into a fresh register.
// PCs advance uniformly, so warps that execute the same static code share
// PCs for the same instruction — which the per-PC analytical memory model
// relies on.
func (b *wb) alu(op trace.OpClass, srcs ...trace.Reg) trace.Reg {
	dst := b.nextReg()
	var s [2]trace.Reg
	copy(s[:], srcs)
	b.emit(trace.Inst{Op: op, Dst: dst, Src: s, ActiveMask: fullMask})
	return dst
}

func (b *wb) aluMasked(op trace.OpClass, mask uint32, srcs ...trace.Reg) trace.Reg {
	dst := b.nextReg()
	var s [2]trace.Reg
	copy(s[:], srcs)
	b.emit(trace.Inst{Op: op, Dst: dst, Src: s, ActiveMask: mask})
	return dst
}

func (b *wb) load(addrs []uint64, addrReg trace.Reg) trace.Reg {
	dst := b.nextReg()
	b.emit(trace.Inst{Op: trace.OpLoadGlobal, Dst: dst, Src: [2]trace.Reg{addrReg},
		ActiveMask: fullMask, Addrs: addrs})
	return dst
}

func (b *wb) loadMasked(mask uint32, addrs []uint64, addrReg trace.Reg) trace.Reg {
	dst := b.nextReg()
	b.emit(trace.Inst{Op: trace.OpLoadGlobal, Dst: dst, Src: [2]trace.Reg{addrReg},
		ActiveMask: mask, Addrs: addrs})
	return dst
}

func (b *wb) store(addrs []uint64, data trace.Reg) {
	b.emit(trace.Inst{Op: trace.OpStoreGlobal, Src: [2]trace.Reg{data},
		ActiveMask: fullMask, Addrs: addrs})
}

func (b *wb) storeMasked(mask uint32, addrs []uint64, data trace.Reg) {
	b.emit(trace.Inst{Op: trace.OpStoreGlobal, Src: [2]trace.Reg{data},
		ActiveMask: mask, Addrs: addrs})
}

func (b *wb) shLoad(addrs []uint64) trace.Reg {
	dst := b.nextReg()
	b.emit(trace.Inst{Op: trace.OpLoadShared, Dst: dst, ActiveMask: fullMask, Addrs: addrs})
	return dst
}

func (b *wb) shStore(addrs []uint64, data trace.Reg) {
	b.emit(trace.Inst{Op: trace.OpStoreShared, Src: [2]trace.Reg{data},
		ActiveMask: fullMask, Addrs: addrs})
}

func (b *wb) barrier() {
	b.emit(trace.Inst{Op: trace.OpBarrier, ActiveMask: fullMask})
}

func (b *wb) exit() trace.WarpTrace {
	b.emit(trace.Inst{Op: trace.OpExit, ActiveMask: fullMask})
	return b.insts
}

// ---------------------------------------------------------------------------
// Address-pattern helpers. All return one address per active lane.

// coalesced returns perfectly coalesced lane addresses: lane i accesses
// base + i*width (width 4 = dense fp32 array).
func coalesced(base uint64, width uint64) []uint64 {
	a := make([]uint64, trace.WarpSize)
	for i := range a {
		a[i] = base + uint64(i)*width
	}
	return a
}

// coalescedMasked is coalesced for the active lanes of mask only.
func coalescedMasked(mask uint32, base uint64, width uint64) []uint64 {
	var a []uint64
	for i := 0; i < trace.WarpSize; i++ {
		if mask&(1<<uint(i)) != 0 {
			a = append(a, base+uint64(i)*width)
		}
	}
	return a
}

// strided returns lane addresses with a large stride (uncoalesced,
// column-major style): lane i accesses base + i*stride.
func strided(base, stride uint64) []uint64 {
	a := make([]uint64, trace.WarpSize)
	for i := range a {
		a[i] = base + uint64(i)*stride
	}
	return a
}

// gather returns irregular per-lane addresses drawn from a region
// [base, base+size), 4-byte aligned — the access pattern of graph
// workloads.
func gather(r *rng, base, size uint64) []uint64 {
	a := make([]uint64, trace.WarpSize)
	for i := range a {
		a[i] = base + (r.next()%(size/4))*4
	}
	return a
}

// gatherMasked is gather over the active lanes only.
func gatherMasked(r *rng, mask uint32, base, size uint64) []uint64 {
	var a []uint64
	for i := 0; i < trace.WarpSize; i++ {
		if mask&(1<<uint(i)) != 0 {
			a = append(a, base+(r.next()%(size/4))*4)
		}
	}
	return a
}

// broadcast returns the same address for every lane (fully merged by the
// coalescer into one sector).
func broadcast(base uint64) []uint64 {
	a := make([]uint64, trace.WarpSize)
	for i := range a {
		a[i] = base
	}
	return a
}

// shBank returns shared-memory addresses spread across banks
// (conflict-free when stride is 4).
func shBank(base uint64, stride uint64) []uint64 {
	a := make([]uint64, trace.WarpSize)
	for i := range a {
		a[i] = base + uint64(i)*stride
	}
	return a
}

// divergentMask derives a deterministic partial mask with roughly frac of
// the lanes active (at least one).
func divergentMask(r *rng, frac float64) uint32 {
	var m uint32
	for i := 0; i < trace.WarpSize; i++ {
		if r.float() < frac {
			m |= 1 << uint(i)
		}
	}
	if m == 0 {
		m = 1
	}
	return m
}

// scaleDim scales n by s, with a floor of lo.
func scaleDim(n int, s float64, lo int) int {
	v := int(math.Round(float64(n) * s))
	if v < lo {
		return lo
	}
	return v
}

// kernel1D assembles a kernel from a per-(block, warp) builder function.
func kernel1D(name string, blocks, threadsPerBlock, regs, shmem int,
	build func(b *wb, block, warp int)) *trace.Kernel {
	k := &trace.Kernel{
		Name:              name,
		Grid:              trace.Dim3{X: blocks, Y: 1, Z: 1},
		Block:             trace.Dim3{X: threadsPerBlock, Y: 1, Z: 1},
		RegsPerThread:     regs,
		SharedMemPerBlock: shmem,
	}
	wpb := k.WarpsPerBlock()
	k.Blocks = make([]trace.BlockTrace, blocks)
	for bi := 0; bi < blocks; bi++ {
		warps := make([]trace.WarpTrace, wpb)
		for wi := 0; wi < wpb; wi++ {
			b := newWB()
			build(b, bi, wi)
			warps[wi] = b.exit()
		}
		k.Blocks[bi].Warps = warps
	}
	return k
}

// Array base addresses used by the generators: distinct 256 MiB regions so
// arrays never alias.
const (
	arrA = 0x1000_0000
	arrB = 0x2000_0000
	arrC = 0x3000_0000
	arrD = 0x4000_0000
	arrE = 0x5000_0000
)
