package workload

import (
	"bytes"
	"reflect"
	"testing"
	"testing/quick"

	"swiftsim/internal/trace"
)

func TestCatalogComplete(t *testing.T) {
	specs := Catalog()
	if len(specs) != 20 {
		t.Fatalf("catalog has %d applications, want 20", len(specs))
	}
	suites := map[string]int{}
	for _, s := range specs {
		suites[s.Suite]++
		if s.Name == "" || s.Description == "" || s.Generate == nil {
			t.Errorf("incomplete spec %+v", s)
		}
	}
	want := map[string]int{"Rodinia": 7, "Polybench": 6, "Mars": 2, "Tango": 3, "Pannotia": 2}
	if !reflect.DeepEqual(suites, want) {
		t.Errorf("suite counts = %v, want %v", suites, want)
	}
}

func TestPaperMemoryBoundApps(t *testing.T) {
	// The paper singles out NW, ADI, SM and GRU as the applications with
	// >1000x Swift-Sim-Memory speedup; they must be marked memory-bound.
	for _, name := range []string{"NW", "ADI", "SM", "GRU"} {
		s, ok := ByName(name)
		if !ok {
			t.Errorf("%s missing from catalog", name)
			continue
		}
		if !s.MemoryBound {
			t.Errorf("%s must be MemoryBound", name)
		}
	}
}

func TestAllAppsValidate(t *testing.T) {
	for _, s := range Catalog() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			app := s.Generate(1.0)
			if err := app.Validate(); err != nil {
				t.Fatalf("generated invalid trace: %v", err)
			}
			if app.Name != s.Name || app.Suite != s.Suite {
				t.Errorf("app identity %s/%s, want %s/%s", app.Name, app.Suite, s.Name, s.Suite)
			}
			n := app.Insts()
			if n < 1000 {
				t.Errorf("only %d instructions; too small to be meaningful", n)
			}
			if n > 5_000_000 {
				t.Errorf("%d instructions; default scale too large", n)
			}
		})
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	for _, name := range []string{"BFS", "GEMM", "SM", "GRU", "SSSP"} {
		a1, err := Generate(name, 1.0)
		if err != nil {
			t.Fatal(err)
		}
		a2, _ := Generate(name, 1.0)
		if !reflect.DeepEqual(a1, a2) {
			t.Errorf("%s: generator not deterministic", name)
		}
	}
}

func TestScaleGrowsWork(t *testing.T) {
	for _, name := range []string{"HOTSPOT", "ADI", "ALEXNET"} {
		small, err := Generate(name, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		big, err := Generate(name, 2.0)
		if err != nil {
			t.Fatal(err)
		}
		if big.Insts() <= small.Insts() {
			t.Errorf("%s: scale 2.0 (%d insts) not larger than scale 0.5 (%d insts)",
				name, big.Insts(), small.Insts())
		}
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := Generate("NOPE", 1.0); err == nil {
		t.Error("unknown app accepted")
	}
	if _, err := Generate("BFS", 0); err == nil {
		t.Error("zero scale accepted")
	}
	if _, err := Generate("BFS", -1); err == nil {
		t.Error("negative scale accepted")
	}
}

func TestMemoryBoundAppsAreLoadHeavy(t *testing.T) {
	// Memory-bound generators must have a higher global-memory
	// instruction fraction than the compute-bound ones.
	memFrac := func(app *trace.App) float64 {
		memOps, total := 0, 0
		for _, k := range app.Kernels {
			for _, b := range k.Blocks {
				for _, w := range b.Warps {
					for _, in := range w {
						total++
						if in.Op.IsGlobalMem() {
							memOps++
						}
					}
				}
			}
		}
		return float64(memOps) / float64(total)
	}
	sm, _ := Generate("SM", 1.0)
	alex, _ := Generate("ALEXNET", 1.0)
	if memFrac(sm) <= memFrac(alex) {
		t.Errorf("SM mem fraction %.2f not above ALEXNET %.2f", memFrac(sm), memFrac(alex))
	}
}

func TestTracesRoundTripSGT(t *testing.T) {
	// Generated traces must survive the frontend's serialize/parse path.
	app, err := Generate("PATHFINDER", 0.3)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := trace.Write(&buf, app); err != nil {
		t.Fatal(err)
	}
	got, err := trace.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, app) {
		t.Error("SGT round trip mismatch")
	}
}

func TestAddressHelpers(t *testing.T) {
	c := coalesced(0x1000, 4)
	if len(c) != trace.WarpSize || c[0] != 0x1000 || c[31] != 0x1000+31*4 {
		t.Errorf("coalesced = %v", c[:3])
	}
	s := strided(0x1000, 512)
	if s[1]-s[0] != 512 {
		t.Errorf("strided stride = %d", s[1]-s[0])
	}
	bc := broadcast(0x42)
	for _, a := range bc {
		if a != 0x42 {
			t.Fatal("broadcast addresses differ")
		}
	}
	cm := coalescedMasked(0b101, 0, 4)
	if len(cm) != 2 || cm[0] != 0 || cm[1] != 8 {
		t.Errorf("coalescedMasked = %v", cm)
	}
	r := newRNG(1)
	g := gather(r, 0x1000, 4096)
	for _, a := range g {
		if a < 0x1000 || a >= 0x1000+4096 || a%4 != 0 {
			t.Fatalf("gather address %#x out of range or misaligned", a)
		}
	}
	gm := gatherMasked(newRNG(1), 0xf, 0x1000, 4096)
	if len(gm) != 4 {
		t.Errorf("gatherMasked length = %d, want 4", len(gm))
	}
}

func TestDivergentMask(t *testing.T) {
	r := newRNG(7)
	for i := 0; i < 100; i++ {
		m := divergentMask(r, 0.3)
		if m == 0 {
			t.Fatal("divergentMask returned empty mask")
		}
	}
	// frac=0 still yields at least one active lane.
	if divergentMask(newRNG(1), 0) == 0 {
		t.Fatal("zero-fraction mask empty")
	}
}

func TestScaleDim(t *testing.T) {
	if scaleDim(10, 0.01, 2) != 2 {
		t.Error("floor not applied")
	}
	if scaleDim(10, 2, 1) != 20 {
		t.Error("scaling wrong")
	}
}

// TestQuickMaskedHelpersAgree: for any mask, the masked helpers return
// exactly one address per active lane.
func TestQuickMaskedHelpersAgree(t *testing.T) {
	f := func(mask uint32, seed uint64) bool {
		if mask == 0 {
			mask = 1
		}
		want := 0
		for i := 0; i < 32; i++ {
			if mask&(1<<uint(i)) != 0 {
				want++
			}
		}
		cm := coalescedMasked(mask, 0x1000, 4)
		gm := gatherMasked(newRNG(seed), mask, 0x1000, 1<<20)
		return len(cm) == want && len(gm) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestWarpBuilderRegisterRotation(t *testing.T) {
	b := newWB()
	seen := map[trace.Reg]bool{}
	for i := 0; i < 64; i++ {
		r := b.nextReg()
		if r == trace.RegNone || r > 31 {
			t.Fatalf("register %d out of range 1..31", r)
		}
		seen[r] = true
	}
	if len(seen) != 31 {
		t.Errorf("rotation covered %d registers, want 31", len(seen))
	}
}
