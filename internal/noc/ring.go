package noc

import (
	"swiftsim/internal/engine"
	"swiftsim/internal/mem"
	"swiftsim/internal/metrics"
	"swiftsim/internal/obs"
)

// Ring is an alternative cycle-accurate interconnect: SMs and memory
// partitions sit on a bidirectional ring, a message traverses
// shortest-path hops at hopLatency cycles per hop, and the ring's
// bisection bounds aggregate injection per cycle.
//
// The paper criticizes queueing-theory NoC models because "when the NoC
// topology changes, a new analytical model has to be created". Here the
// topology is just another module implementation behind the same mem.Port
// interface: assemblies switch between Crossbar and Ring with one
// configuration key (gpu.noc_topology) and nothing else changes.
type Ring struct {
	name       string
	eng        *engine.Engine
	wake       func() // engine activation callback (nil when standalone)
	hopLatency uint64
	nodes      int // ring positions (SM count + partition count)
	bisection  int // messages accepted onto the ring per cycle
	targets    []mem.Port
	mapAddr    func(addr uint64) int
	smPos      func(smID int) int
	partPos    func(part int) int

	fwd [][]entry // per-destination-partition queues
	ret [][]entry // per-source-partition response queues

	requests *metrics.Counter
	stalls   *metrics.Counter
	hopsAcc  *metrics.Counter
	busyCnt  int
	injected int // messages injected this cycle (bisection budget)

	tr    *obs.Tracer
	trTid int32
	trOn  bool
}

// SetTracer installs the ring's tracer (nil for off) and registers its
// trace track; traversal spans are emitted at RequestLevel.
func (r *Ring) SetTracer(t *obs.Tracer) {
	r.tr = t
	r.trOn = t.Enabled(obs.RequestLevel)
	if r.trOn {
		r.trTid = t.RegisterTrack(r.name)
	}
}

// Occupancy returns the number of messages currently in flight on the
// ring (both directions).
func (r *Ring) Occupancy() int { return r.busyCnt }

// NewRing builds a ring over numSMs SM nodes and the target partitions,
// interleaved evenly around the ring. mapAddr maps sector addresses to
// partition indices; hopLatency is the per-hop traversal cost; bisection
// the per-cycle injection budget.
func NewRing(name string, eng *engine.Engine, numSMs int, targets []mem.Port, mapAddr func(uint64) int, hopLatency uint64, bisection int, g *metrics.Gatherer) *Ring {
	if bisection < 1 {
		bisection = 1
	}
	parts := len(targets)
	nodes := numSMs + parts
	r := &Ring{
		name:       name,
		eng:        eng,
		hopLatency: hopLatency,
		nodes:      nodes,
		bisection:  bisection,
		targets:    targets,
		mapAddr:    mapAddr,
		fwd:        make([][]entry, parts),
		ret:        make([][]entry, parts),
		requests:   g.Counter(name + ".request"),
		stalls:     g.Counter(name + ".stall"),
		hopsAcc:    g.Counter(name + ".hops"),
	}
	// SMs and partitions are each spread evenly around the ring, so
	// request distances are balanced and average ≈ nodes/4.
	r.smPos = func(smID int) int {
		if numSMs == 0 {
			return 0
		}
		return (smID % numSMs) * nodes / numSMs
	}
	r.partPos = func(part int) int {
		return (part*nodes/parts + 1) % nodes
	}
	return r
}

// hops returns the shortest ring distance between two positions.
func (r *Ring) hops(a, b int) int {
	d := a - b
	if d < 0 {
		d = -d
	}
	if alt := r.nodes - d; alt < d {
		d = alt
	}
	if d == 0 {
		d = 1
	}
	return d
}

// Name implements engine.Module.
func (r *Ring) Name() string { return r.name }

// Kind implements engine.Module.
func (r *Ring) Kind() engine.ModelKind { return engine.CycleAccurate }

// Busy implements engine.Ticker.
func (r *Ring) Busy() bool { return r.busyCnt > 0 }

// SetWake implements engine.WakeAware: the ring is ticked only while
// messages are in flight. Any message since the last tick re-activates it,
// so the per-tick bisection-budget reset still happens before the next
// cycle's injections, exactly as when it was ticked unconditionally.
func (r *Ring) SetWake(wake func()) { r.wake = wake }

// Accept implements mem.Port: inject a request onto the ring, bounded by
// queue capacity and the cycle's bisection budget.
func (r *Ring) Accept(req *mem.Request) bool {
	dst := r.mapAddr(req.Addr)
	if len(r.fwd[dst]) >= queueCap || r.injected >= r.bisection {
		r.stalls.Inc()
		return false
	}
	r.injected++
	h := r.hops(r.smPos(req.SMID), r.partPos(dst))
	r.hopsAcc.Add(uint64(h))
	r.requests.Inc()
	e := entry{r: req, ready: r.eng.Cycle() + uint64(h)*r.hopLatency}
	if r.trOn {
		e.enq = r.eng.Cycle()
	}
	if req.Done != nil {
		orig := req.Done
		smID := req.SMID
		req.Done = func() { r.respond(dst, smID, req, orig) }
	}
	r.fwd[dst] = append(r.fwd[dst], e)
	r.busyCnt++
	if r.wake != nil {
		r.wake()
	}
	return true
}

func (r *Ring) respond(src, smID int, req *mem.Request, done func()) {
	h := r.hops(r.partPos(src), r.smPos(smID))
	e := entry{r: req, ready: r.eng.Cycle() + uint64(h)*r.hopLatency, done: done}
	if r.trOn {
		e.enq = r.eng.Cycle()
	}
	r.ret[src] = append(r.ret[src], e)
	r.busyCnt++
	if r.wake != nil {
		r.wake()
	}
}

// Tick implements engine.Ticker: refresh the bisection budget, deliver
// arrived requests to partitions, and drain responses.
func (r *Ring) Tick(cycle uint64) {
	r.injected = 0
	for dst := range r.fwd {
		for len(r.fwd[dst]) > 0 {
			head := r.fwd[dst][0]
			if head.ready > cycle {
				break
			}
			if !r.targets[dst].Accept(head.r) {
				r.stalls.Inc()
				break
			}
			if r.trOn {
				r.emitSpan("fwd", &head, cycle)
			}
			r.fwd[dst] = r.fwd[dst][1:]
			r.busyCnt--
		}
	}
	for src := range r.ret {
		// One response per partition per cycle leaves the ring.
		if len(r.ret[src]) == 0 {
			continue
		}
		head := r.ret[src][0]
		if head.ready > cycle {
			continue
		}
		r.ret[src] = r.ret[src][1:]
		r.busyCnt--
		if r.trOn {
			// Emit before done(): the completion chain may recycle the
			// pooled request.
			r.emitSpan("ret", &head, cycle)
		}
		head.done()
	}
}

func (r *Ring) emitSpan(dir string, e *entry, cycle uint64) {
	r.tr.Emit(obs.Event{Name: dir, Cat: "noc", Ph: obs.PhaseSpan,
		Ts: e.enq, Dur: cycle - e.enq, Tid: r.trTid,
		Arg1Name: "addr", Arg1: e.r.Addr})
}
