package noc

import (
	"testing"

	"swiftsim/internal/engine"
	"swiftsim/internal/mem"
	"swiftsim/internal/metrics"
)

// sink is a target port that completes reads after a fixed latency.
type sink struct {
	eng      *engine.Engine
	latency  uint64
	accepted []*mem.Request
	refuse   bool
	inflight int
}

func (s *sink) Accept(r *mem.Request) bool {
	if s.refuse {
		return false
	}
	s.accepted = append(s.accepted, r)
	if !r.Write {
		s.inflight++
		s.eng.Schedule(s.latency, func() {
			s.inflight--
			r.Complete(mem.LevelL2)
		})
	}
	return true
}

type sinkTicker struct{ s *sink }

func (t sinkTicker) Name() string           { return "sink" }
func (t sinkTicker) Kind() engine.ModelKind { return engine.CycleAccurate }
func (t sinkTicker) Tick(uint64)            {}
func (t sinkTicker) Busy() bool             { return t.s.inflight > 0 }

func setup(nParts int, latency uint64, perCycle int) (*engine.Engine, *Crossbar, []*sink, *metrics.Gatherer) {
	eng := engine.New()
	g := metrics.New()
	sinks := make([]*sink, nParts)
	ports := make([]mem.Port, nParts)
	for i := range sinks {
		sinks[i] = &sink{eng: eng, latency: 10}
		ports[i] = sinks[i]
		eng.Register(sinkTicker{sinks[i]})
	}
	mapAddr := func(addr uint64) int { return int((addr / 32) % uint64(nParts)) }
	x := NewCrossbar("noc", eng, ports, mapAddr, latency, perCycle, g)
	eng.Register(x)
	return eng, x, sinks, g
}

func TestCrossbarRoutesByAddress(t *testing.T) {
	eng, x, sinks, _ := setup(4, 2, 1)
	done := 0
	for i := 0; i < 4; i++ {
		r := &mem.Request{Addr: uint64(i) * 32, Size: 32, Done: func() { done++ }}
		if !x.Accept(r) {
			t.Fatal("Accept rejected")
		}
	}
	if _, err := eng.Run(func() bool { return done == 4 }, 10000); err != nil {
		t.Fatal(err)
	}
	for i, s := range sinks {
		if len(s.accepted) != 1 {
			t.Errorf("partition %d received %d requests, want 1", i, len(s.accepted))
		}
	}
}

func TestCrossbarRoundTripLatency(t *testing.T) {
	eng, x, _, _ := setup(1, 5, 1)
	done := false
	r := &mem.Request{Addr: 0, Size: 32, Done: func() { done = true }}
	x.Accept(r)
	cyc, err := eng.Run(func() bool { return done }, 10000)
	if err != nil {
		t.Fatal(err)
	}
	// Forward latency 5 + sink 10 + return latency 5, plus queue ticks.
	if cyc < 20 {
		t.Errorf("round trip = %d cycles, want >= 20", cyc)
	}
	if cyc > 26 {
		t.Errorf("round trip = %d cycles, want about 20-26", cyc)
	}
}

func TestCrossbarBandwidthContention(t *testing.T) {
	// Two requests to the same partition with perCycle=1 serialize; with
	// perCycle=2 they don't.
	measure := func(perCycle int) uint64 {
		eng, x, _, _ := setup(1, 1, perCycle)
		done := 0
		for i := 0; i < 8; i++ {
			r := &mem.Request{Addr: uint64(i) * 64, Size: 32, Done: func() { done++ }}
			if !x.Accept(r) {
				t.Fatal("Accept rejected")
			}
		}
		cyc, err := eng.Run(func() bool { return done == 8 }, 10000)
		if err != nil {
			t.Fatal(err)
		}
		return cyc
	}
	narrow, wide := measure(1), measure(4)
	if narrow <= wide {
		t.Errorf("narrow NoC (%d cycles) not slower than wide NoC (%d cycles)", narrow, wide)
	}
}

func TestCrossbarBackpressure(t *testing.T) {
	_, x, sinks, g := setup(1, 1, 1)
	sinks[0].refuse = true
	accepted := 0
	for i := 0; i < queueCap+10; i++ {
		r := &mem.Request{Addr: 0, Size: 32}
		if x.Accept(r) {
			accepted++
		}
	}
	if accepted != queueCap {
		t.Errorf("accepted = %d, want %d", accepted, queueCap)
	}
	if g.Value("noc.stall") == 0 {
		t.Error("expected NoC stalls recorded")
	}
}

func TestCrossbarTargetRefusalRetries(t *testing.T) {
	eng, x, sinks, _ := setup(1, 1, 1)
	sinks[0].refuse = true
	done := false
	r := &mem.Request{Addr: 0, Size: 32, Done: func() { done = true }}
	x.Accept(r)
	// Run a while with the target refusing: request must not be lost.
	eng.Schedule(50, func() { sinks[0].refuse = false })
	if _, err := eng.Run(func() bool { return done }, 10000); err != nil {
		t.Fatal(err)
	}
	if len(sinks[0].accepted) != 1 {
		t.Errorf("target received %d requests, want 1", len(sinks[0].accepted))
	}
}

func TestCrossbarWritesNoReturnPath(t *testing.T) {
	eng, x, sinks, _ := setup(1, 1, 1)
	w := &mem.Request{Addr: 0, Write: true, Size: 32}
	x.Accept(w)
	// Writes have no Done: the crossbar must go idle after delivery.
	idle := func() bool { return !x.Busy() && len(sinks[0].accepted) == 1 }
	if _, err := eng.Run(idle, 10000); err != nil {
		t.Fatal(err)
	}
}

func TestCrossbarBusyLifecycle(t *testing.T) {
	eng, x, _, _ := setup(1, 1, 1)
	if x.Busy() {
		t.Fatal("fresh crossbar busy")
	}
	done := false
	r := &mem.Request{Addr: 0, Size: 32, Done: func() { done = true }}
	x.Accept(r)
	if !x.Busy() {
		t.Fatal("crossbar with queued request idle")
	}
	if _, err := eng.Run(func() bool { return done }, 10000); err != nil {
		t.Fatal(err)
	}
	if x.Busy() {
		t.Error("crossbar busy after completion")
	}
}
