// Snapshot support (snap.Stateful) for the interconnects. A NoC carries no
// cross-kernel state: at a quiescent point both directions are empty, so
// the snapshot payload is empty and save/load only verify quiescence.
package noc

import (
	"fmt"

	"swiftsim/internal/snap"
)

// SnapSave implements snap.Stateful.
func (x *Crossbar) SnapSave(w *snap.Writer) {
	if x.busyCnt != 0 {
		w.Fail(fmt.Errorf("%w: crossbar %s has %d messages in flight", snap.ErrNotQuiescent, x.name, x.busyCnt))
	}
}

// SnapLoad implements snap.Stateful.
func (x *Crossbar) SnapLoad(r *snap.Reader) error { return r.Err() }

// SnapSave implements snap.Stateful.
func (r *Ring) SnapSave(w *snap.Writer) {
	if r.busyCnt != 0 {
		w.Fail(fmt.Errorf("%w: ring %s has %d messages in flight", snap.ErrNotQuiescent, r.name, r.busyCnt))
	}
}

// SnapLoad implements snap.Stateful.
func (r *Ring) SnapLoad(rd *snap.Reader) error { return rd.Err() }
