package noc

import (
	"testing"

	"swiftsim/internal/engine"
	"swiftsim/internal/mem"
	"swiftsim/internal/metrics"
)

func ringSetup(numSMs, nParts int, hopLat uint64, bisection int) (*engine.Engine, *Ring, []*sink, *metrics.Gatherer) {
	eng := engine.New()
	g := metrics.New()
	sinks := make([]*sink, nParts)
	ports := make([]mem.Port, nParts)
	for i := range sinks {
		sinks[i] = &sink{eng: eng, latency: 10}
		ports[i] = sinks[i]
		eng.Register(sinkTicker{sinks[i]})
	}
	mapAddr := func(addr uint64) int { return int((addr / 32) % uint64(nParts)) }
	r := NewRing("ring", eng, numSMs, ports, mapAddr, hopLat, bisection, g)
	eng.Register(r)
	return eng, r, sinks, g
}

func TestRingRoutesAndCompletes(t *testing.T) {
	eng, r, sinks, g := ringSetup(8, 4, 1, 8)
	done := 0
	for i := 0; i < 4; i++ {
		req := &mem.Request{Addr: uint64(i) * 32, SMID: i, Size: 32, Done: func() { done++ }}
		if !r.Accept(req) {
			t.Fatal("Accept rejected")
		}
	}
	if _, err := eng.Run(func() bool { return done == 4 }, 100000); err != nil {
		t.Fatal(err)
	}
	for i, s := range sinks {
		if len(s.accepted) != 1 {
			t.Errorf("partition %d received %d, want 1", i, len(s.accepted))
		}
	}
	if g.Value("ring.hops") == 0 {
		t.Error("no hops recorded")
	}
}

func TestRingDistanceMattersForLatency(t *testing.T) {
	// A request between nearby nodes completes sooner than one across
	// the ring.
	measure := func(smID int) uint64 {
		eng, r, _, _ := ringSetup(16, 2, 4, 8)
		done := false
		req := &mem.Request{Addr: 0, SMID: smID, Size: 32, Done: func() { done = true }}
		if !r.Accept(req) {
			t.Fatal("Accept rejected")
		}
		cyc, err := eng.Run(func() bool { return done }, 100000)
		if err != nil {
			t.Fatal(err)
		}
		return cyc
	}
	// Partition 0 sits near position 1; SM 0 is at position 0, SM 8
	// halfway around an 18-node ring.
	near, far := measure(0), measure(8)
	if far <= near {
		t.Errorf("far request (%d cycles) not slower than near request (%d)", far, near)
	}
}

func TestRingBisectionBound(t *testing.T) {
	_, r, _, g := ringSetup(8, 4, 1, 2)
	accepted := 0
	for i := 0; i < 6; i++ {
		req := &mem.Request{Addr: uint64(i) * 32, SMID: i, Size: 32}
		if r.Accept(req) {
			accepted++
		}
	}
	if accepted != 2 {
		t.Errorf("accepted = %d, want 2 (bisection budget)", accepted)
	}
	if g.Value("ring.stall") == 0 {
		t.Error("no stalls recorded")
	}
}

func TestRingBudgetRefreshesPerTick(t *testing.T) {
	eng, r, _, _ := ringSetup(8, 4, 1, 1)
	if !r.Accept(&mem.Request{Addr: 0, SMID: 0, Size: 32}) {
		t.Fatal("first inject rejected")
	}
	if r.Accept(&mem.Request{Addr: 32, SMID: 1, Size: 32}) {
		t.Fatal("second inject same cycle accepted")
	}
	r.Tick(eng.Cycle() + 1)
	if !r.Accept(&mem.Request{Addr: 32, SMID: 1, Size: 32}) {
		t.Fatal("inject after budget refresh rejected")
	}
}

func TestRingHops(t *testing.T) {
	r := &Ring{nodes: 10}
	cases := []struct{ a, b, want int }{
		{0, 1, 1}, {0, 5, 5}, {0, 9, 1}, {2, 8, 4}, {3, 3, 1},
	}
	for _, c := range cases {
		if got := r.hops(c.a, c.b); got != c.want {
			t.Errorf("hops(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestRingPositionsInRange(t *testing.T) {
	for _, cfg := range []struct{ sms, parts int }{{68, 22}, {8, 4}, {1, 1}, {28, 12}} {
		eng := engine.New()
		g := metrics.New()
		ports := make([]mem.Port, cfg.parts)
		for i := range ports {
			ports[i] = mem.PortFunc(func(*mem.Request) bool { return true })
		}
		r := NewRing("ring", eng, cfg.sms, ports, func(uint64) int { return 0 }, 1, 4, g)
		for s := 0; s < cfg.sms; s++ {
			if p := r.smPos(s); p < 0 || p >= r.nodes {
				t.Fatalf("smPos(%d) = %d out of [0,%d)", s, p, r.nodes)
			}
		}
		for p := 0; p < cfg.parts; p++ {
			if pos := r.partPos(p); pos < 0 || pos >= r.nodes {
				t.Fatalf("partPos(%d) = %d out of [0,%d)", p, pos, r.nodes)
			}
		}
	}
}

func TestRingWritesNoReturn(t *testing.T) {
	eng, r, sinks, _ := ringSetup(4, 2, 1, 4)
	w := &mem.Request{Addr: 0, Write: true, SMID: 0, Size: 32}
	if !r.Accept(w) {
		t.Fatal("write rejected")
	}
	idle := func() bool { return !r.Busy() && len(sinks[0].accepted) == 1 }
	if _, err := eng.Run(idle, 100000); err != nil {
		t.Fatal(err)
	}
}
