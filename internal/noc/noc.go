// Package noc implements the on-chip interconnect between the SMs' L1
// caches and the L2 slices in the memory partitions: a crossbar with
// per-destination queues, a fixed traversal latency, and bounded
// per-cycle bandwidth in both directions. Contention appears as queueing
// delay and as backpressure toward the L1s — the NoC stall cycles the
// Metrics Gatherer reports come from here.
//
// The paper criticizes queueing-model NoCs in analytical simulators for
// being hard to retarget to new topologies; this module is the
// cycle-accurate alternative that Swift-Sim assemblies keep when the NoC is
// the component under study.
package noc

import (
	"swiftsim/internal/engine"
	"swiftsim/internal/mem"
	"swiftsim/internal/metrics"
	"swiftsim/internal/obs"
)

// queueCap bounds each per-destination queue; Accept exerts backpressure
// beyond it.
const queueCap = 32

type entry struct {
	r     *mem.Request
	ready uint64 // cycle at which the traversal latency has elapsed
	done  func() // original completion callback (responses only)
	enq   uint64 // enqueue cycle, stamped only while tracing at RequestLevel
}

// Crossbar is a cycle-accurate SM↔partition crossbar. One instance handles
// both directions: requests flow to partition ports, responses flow back to
// the requesting L1 by invoking the request's completion callback after the
// return traversal.
type Crossbar struct {
	name     string
	eng      *engine.Engine
	wake     func() // engine activation callback (nil when standalone)
	latency  uint64
	perCycle int // requests per destination per cycle
	targets  []mem.Port
	mapAddr  func(addr uint64) int

	fwd [][]entry // per-destination request queues
	ret [][]entry // per-source-partition response queues

	requests *metrics.Counter
	stalls   *metrics.Counter
	busyCnt  int

	tr    *obs.Tracer
	trTid int32
	trOn  bool
}

// SetTracer installs the crossbar's tracer (nil for off) and registers
// its trace track. Traversal spans (enqueue → delivery) are emitted at
// RequestLevel for both network directions.
func (x *Crossbar) SetTracer(t *obs.Tracer) {
	x.tr = t
	x.trOn = t.Enabled(obs.RequestLevel)
	if x.trOn {
		x.trTid = t.RegisterTrack(x.name)
	}
}

// Occupancy returns the number of messages currently in flight on the
// network (both directions) — the NoC column of the counter timeline.
func (x *Crossbar) Occupancy() int { return x.busyCnt }

// NewCrossbar builds a crossbar delivering to targets (one port per memory
// partition). mapAddr maps a sector address to its partition index; latency
// is the one-way traversal in cycles; perCycle the per-destination
// per-cycle throughput.
func NewCrossbar(name string, eng *engine.Engine, targets []mem.Port, mapAddr func(uint64) int, latency uint64, perCycle int, g *metrics.Gatherer) *Crossbar {
	if perCycle <= 0 {
		perCycle = 1
	}
	return &Crossbar{
		name:     name,
		eng:      eng,
		latency:  latency,
		perCycle: perCycle,
		targets:  targets,
		mapAddr:  mapAddr,
		fwd:      make([][]entry, len(targets)),
		ret:      make([][]entry, len(targets)),
		requests: g.Counter(name + ".request"),
		stalls:   g.Counter(name + ".stall"),
	}
}

// Name implements engine.Module.
func (x *Crossbar) Name() string { return x.name }

// Kind implements engine.Module.
func (x *Crossbar) Kind() engine.ModelKind { return engine.CycleAccurate }

// Busy implements engine.Ticker.
func (x *Crossbar) Busy() bool { return x.busyCnt > 0 }

// SetWake implements engine.WakeAware: the crossbar is ticked only while
// flits are in flight. Accept (forward path) and respond (return path,
// reached from completion events while the crossbar may be idle) both
// re-activate it.
func (x *Crossbar) SetWake(wake func()) { x.wake = wake }

// Accept implements mem.Port: requests enter the forward network.
func (x *Crossbar) Accept(r *mem.Request) bool {
	dst := x.mapAddr(r.Addr)
	if len(x.fwd[dst]) >= queueCap {
		x.stalls.Inc()
		return false
	}
	x.requests.Inc()
	e := entry{r: r, ready: x.eng.Cycle() + x.latency}
	if x.trOn {
		e.enq = x.eng.Cycle()
	}
	if r.Done != nil {
		// Interpose on the response path: when the memory side
		// completes the request, it travels back through the return
		// network before the L1 sees it.
		orig := r.Done
		r.Done = func() { x.respond(dst, r, orig) }
	}
	x.fwd[dst] = append(x.fwd[dst], e)
	x.busyCnt++
	if x.wake != nil {
		x.wake()
	}
	return true
}

// respond enqueues a completed request on the return network.
func (x *Crossbar) respond(src int, r *mem.Request, done func()) {
	// The return queue is not backpressured toward the L2 (responses in
	// real hardware use a separate virtual network with guaranteed
	// sinking); bandwidth is still bounded per cycle at drain time.
	e := entry{r: r, ready: x.eng.Cycle() + x.latency, done: done}
	if x.trOn {
		e.enq = x.eng.Cycle()
	}
	x.ret[src] = append(x.ret[src], e)
	x.busyCnt++
	if x.wake != nil {
		x.wake()
	}
}

// Tick implements engine.Ticker: move up to perCycle ready entries per
// destination into the target ports, and drain up to perCycle responses per
// source partition.
func (x *Crossbar) Tick(cycle uint64) {
	for dst := range x.fwd {
		for n := 0; n < x.perCycle && len(x.fwd[dst]) > 0; n++ {
			head := x.fwd[dst][0]
			if head.ready > cycle {
				break
			}
			if !x.targets[dst].Accept(head.r) {
				x.stalls.Inc()
				break
			}
			if x.trOn {
				x.emitSpan("fwd", &head, cycle)
			}
			x.fwd[dst] = x.fwd[dst][1:]
			x.busyCnt--
		}
	}
	for src := range x.ret {
		for n := 0; n < x.perCycle && len(x.ret[src]) > 0; n++ {
			head := x.ret[src][0]
			if head.ready > cycle {
				break
			}
			x.ret[src] = x.ret[src][1:]
			x.busyCnt--
			if x.trOn {
				// Emit before done(): the completion chain may recycle the
				// pooled request.
				x.emitSpan("ret", &head, cycle)
			}
			head.done()
		}
	}
}

func (x *Crossbar) emitSpan(dir string, e *entry, cycle uint64) {
	x.tr.Emit(obs.Event{Name: dir, Cat: "noc", Ph: obs.PhaseSpan,
		Ts: e.enq, Dur: cycle - e.enq, Tid: x.trTid,
		Arg1Name: "addr", Arg1: e.r.Addr})
}
