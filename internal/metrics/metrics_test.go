package metrics

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestCounterBasics(t *testing.T) {
	g := New()
	c := g.Counter("sm.issue")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("Value = %d, want 5", c.Value())
	}
	if c.Name() != "sm.issue" {
		t.Errorf("Name = %q", c.Name())
	}
	if g.Value("sm.issue") != 5 {
		t.Errorf("Gatherer.Value = %d, want 5", g.Value("sm.issue"))
	}
}

func TestCounterIdentity(t *testing.T) {
	g := New()
	a := g.Counter("x")
	b := g.Counter("x")
	if a != b {
		t.Fatal("Counter returned distinct instances for the same name")
	}
}

func TestValueUnknown(t *testing.T) {
	if New().Value("never") != 0 {
		t.Fatal("unknown counter must read 0")
	}
}

func TestSet(t *testing.T) {
	g := New()
	g.Set("cycles", 1234)
	if g.Value("cycles") != 1234 {
		t.Errorf("Value = %d, want 1234", g.Value("cycles"))
	}
}

func TestSnapshotAndNames(t *testing.T) {
	g := New()
	g.Counter("b").Add(2)
	g.Counter("a").Add(1)
	snap := g.Snapshot()
	if snap["a"] != 1 || snap["b"] != 2 {
		t.Errorf("Snapshot = %v", snap)
	}
	names := g.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Errorf("Names = %v, want [a b]", names)
	}
}

func TestRatio(t *testing.T) {
	cases := []struct {
		num, den uint64
		want     float64
	}{{0, 0, 0}, {1, 0, 1}, {0, 1, 0}, {1, 3, 0.25}, {3, 1, 0.75}}
	for _, c := range cases {
		if got := Ratio(c.num, c.den); got != c.want {
			t.Errorf("Ratio(%d,%d) = %v, want %v", c.num, c.den, got, c.want)
		}
	}
}

func TestReport(t *testing.T) {
	g := New()
	g.Counter("l1.hit").Add(3)
	g.Counter("l1.miss").Add(1)
	g.Counter("cycles").Add(100)
	var sb strings.Builder
	if err := g.Report(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"l1.hit", "l1.miss", "cycles", "l1.miss_rate", "0.2500"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestReportNoRateWithoutAccesses(t *testing.T) {
	g := New()
	g.Counter("l1.miss") // zero
	g.Counter("l1.hit")  // zero
	var sb strings.Builder
	if err := g.Report(&sb); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "miss_rate") {
		t.Error("report printed a miss rate with zero accesses")
	}
}

// TestQuickCounterSum: a counter equals the sum of its Adds.
func TestQuickCounterSum(t *testing.T) {
	f := func(adds []uint16) bool {
		g := New()
		c := g.Counter("q")
		var want uint64
		for _, a := range adds {
			c.Add(uint64(a))
			want += uint64(a)
		}
		return c.Value() == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
