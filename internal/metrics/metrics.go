// Package metrics implements the Metrics Gatherer of the Swift-Sim
// framework: a registry of named counters that every module writes into and
// a report generator architects read performance metrics from
// (total cycles, stall breakdowns, cache miss rates, NoC contention, ...).
package metrics

import (
	"fmt"
	"io"
	"sort"
	"strconv"
)

// Counter is a monotonically increasing event count. Modules hold
// *Counter directly so the hot path is a single add.
type Counter struct {
	name string
	v    uint64
}

// Name returns the counter's registered name.
func (c *Counter) Name() string { return c.name }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v }

// Add increases the counter by n.
func (c *Counter) Add(n uint64) { c.v += n }

// Inc increases the counter by one.
func (c *Counter) Inc() { c.v++ }

// Window computes a windowed hit rate over a hit/miss counter pair: each
// DeltaPermille call reports the rate of the traffic since the previous
// call, not since the start of the run. The observability layer samples it
// into the counter timeline, where a cumulative rate would flatten every
// phase change out of view. It only reads the counters.
type Window struct {
	hits, misses       *Counter
	lastHits, lastMiss uint64
}

// NewWindow returns a Window over the given hit/miss counters.
func NewWindow(hits, misses *Counter) *Window {
	return &Window{hits: hits, misses: misses}
}

// DeltaPermille returns the hit rate of the traffic since the last call in
// per-mille (0..1000), and 1000 when the window saw no traffic (an idle
// cache is not missing).
func (w *Window) DeltaPermille() uint64 {
	h, m := w.hits.Value(), w.misses.Value()
	dh, dm := h-w.lastHits, m-w.lastMiss
	w.lastHits, w.lastMiss = h, m
	if dh+dm == 0 {
		return 1000
	}
	return 1000 * dh / (dh + dm)
}

// Gatherer collects counters from all modules of a simulator instance.
// The zero value is not usable; call New.
type Gatherer struct {
	byName map[string]*Counter
	order  []*Counter
}

// New returns an empty Gatherer.
func New() *Gatherer {
	return &Gatherer{byName: make(map[string]*Counter)}
}

// Counter returns the counter with the given name, creating it at zero on
// first use. Names are conventionally dotted paths such as
// "sm.warp_issue_stall" or "l2.miss".
func (g *Gatherer) Counter(name string) *Counter {
	if c, ok := g.byName[name]; ok {
		return c
	}
	c := &Counter{name: name}
	g.byName[name] = c
	g.order = append(g.order, c)
	return c
}

// Value returns the current value of the named counter, or 0 if it was
// never created.
func (g *Gatherer) Value(name string) uint64 {
	if c, ok := g.byName[name]; ok {
		return c.v
	}
	return 0
}

// Set forces the named counter to v (used for gauges like final cycle
// counts gathered from the Block Scheduler).
func (g *Gatherer) Set(name string, v uint64) {
	g.Counter(name).v = v
}

// Absorb adds every counter of s into g (creating counters on
// first sight) and zeroes s. Parallel simulator assemblies give each
// engine shard a private shadow Gatherer and fold the shadows into the
// main one at observation points; since counter addition commutes, the
// folded totals are identical to a serial run's.
func (g *Gatherer) Absorb(s *Gatherer) {
	for _, c := range s.order {
		// Zero counters are absorbed too: a counter's existence is part of
		// the snapshot (serial runs report zero-valued counters), so the
		// folded gatherer must carry the same name set.
		g.Counter(c.name).v += c.v
		c.v = 0
	}
}

// FoldScaled scales every counter's growth since base (a Snapshot taken
// earlier on this gatherer) by factor: each counter with delta d since base
// gains an additional round((factor−1)×d), as if the observed activity had
// happened factor times. Counters for which exempt returns true keep their
// measured value (sampled mode exempts per-run gauges like "gpu.kernels"
// that must not scale with block count). Counters created after base was
// taken have an implicit base of zero. factor ≤ 1 and nil-base entries
// leave counters untouched; rounding is half-up per counter.
func (g *Gatherer) FoldScaled(base map[string]uint64, factor float64, exempt func(name string) bool) {
	if factor <= 1 {
		return
	}
	for _, c := range g.order {
		if exempt != nil && exempt(c.name) {
			continue
		}
		d := c.v - base[c.name]
		if d == 0 {
			continue
		}
		c.v += uint64(float64(d)*(factor-1) + 0.5)
	}
}

// Snapshot copies all counters into a map.
func (g *Gatherer) Snapshot() map[string]uint64 {
	m := make(map[string]uint64, len(g.order))
	for _, c := range g.order {
		m[c.name] = c.v
	}
	return m
}

// Names returns all counter names in sorted order.
func (g *Gatherer) Names() []string {
	names := make([]string, 0, len(g.order))
	for _, c := range g.order {
		names = append(names, c.name)
	}
	sort.Strings(names)
	return names
}

// Ratio returns num/(num+den) as a rate in [0,1], and 0 when both are zero.
// Typical use: miss rate = Ratio(misses, hits).
func Ratio(num, den uint64) float64 {
	if num+den == 0 {
		return 0
	}
	return float64(num) / float64(num+den)
}

// FormatRate renders a rate in the canonical fixed-point form used by
// byte-stable reports: always six decimals, no exponent, so the same value
// always serializes to the same bytes.
func FormatRate(v float64) string {
	return strconv.FormatFloat(v, 'f', 6, 64)
}

// missRatePrefixes returns, for sorted counter names, the prefixes <p> that
// have a "<p>.miss" counter and nonzero hit+miss traffic.
func missRatePrefixes(names []string, value func(string) uint64) []string {
	var out []string
	for _, n := range names {
		const suffix = ".miss"
		if len(n) > len(suffix) && n[len(n)-len(suffix):] == suffix {
			prefix := n[:len(n)-len(suffix)]
			if value(prefix+".hit")+value(n) > 0 {
				out = append(out, prefix)
			}
		}
	}
	return out
}

// WriteCanonical writes a counter snapshot to w in canonical, byte-stable
// form: one "name value" line per counter in sorted key order, followed by
// one "<p>.miss_rate <rate>" line (fixed six-decimal formatting) for every
// "<p>.hit"/"<p>.miss" counter pair with traffic. Two snapshots with equal
// contents always serialize to identical bytes, which makes the output
// suitable for golden-file comparison.
func WriteCanonical(w io.Writer, m map[string]uint64) error {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	value := func(n string) uint64 { return m[n] }
	for _, n := range names {
		if _, err := fmt.Fprintf(w, "%s %d\n", n, m[n]); err != nil {
			return err
		}
	}
	for _, p := range missRatePrefixes(names, value) {
		rate := Ratio(m[p+".miss"], m[p+".hit"])
		if _, err := fmt.Fprintf(w, "%s.miss_rate %s\n", p, FormatRate(rate)); err != nil {
			return err
		}
	}
	return nil
}

// WriteCanonical writes the gatherer's counters in canonical, byte-stable
// form (see the package-level WriteCanonical).
func (g *Gatherer) WriteCanonical(w io.Writer) error {
	return WriteCanonical(w, g.Snapshot())
}

// Report writes all counters to w, one "name value" line in sorted order,
// followed by derived rates for any pair of counters named "<p>.hit" and
// "<p>.miss".
func (g *Gatherer) Report(w io.Writer) error {
	names := g.Names()
	for _, n := range names {
		if _, err := fmt.Fprintf(w, "%-40s %d\n", n, g.Value(n)); err != nil {
			return err
		}
	}
	for _, p := range missRatePrefixes(names, g.Value) {
		rate := Ratio(g.Value(p+".miss"), g.Value(p+".hit"))
		if _, err := fmt.Fprintf(w, "%-40s %.4f\n", p+".miss_rate", rate); err != nil {
			return err
		}
	}
	return nil
}
