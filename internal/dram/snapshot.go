// Snapshot support (snap.Stateful) for the DRAM partition. Bank timing is
// kept in absolute cycles, so bank-free times and open-row state carry
// across a checkpoint unchanged (a bank may legitimately be booked past the
// snapshot cycle by the last access before quiescence).
package dram

import (
	"fmt"

	"swiftsim/internal/snap"
)

// SnapSave implements snap.Stateful.
func (p *Partition) SnapSave(w *snap.Writer) {
	if len(p.queue) != 0 {
		w.Fail(fmt.Errorf("%w: DRAM partition %s holds %d queued requests", snap.ErrNotQuiescent, p.name, len(p.queue)))
		return
	}
	w.U64(uint64(p.banks))
	for b := 0; b < p.banks; b++ {
		w.U64(p.bankFreeAt[b])
		w.U64(p.openRow[b])
		w.Bool(p.rowOpen[b])
	}
}

// SnapLoad implements snap.Stateful.
func (p *Partition) SnapLoad(r *snap.Reader) error {
	if n := r.Count(17); n != p.banks {
		if r.Err() == nil {
			r.Failf("DRAM partition %s: snapshot has %d banks, assembly has %d", p.name, n, p.banks)
		}
		return r.Err()
	}
	for b := 0; b < p.banks; b++ {
		p.bankFreeAt[b] = r.U64()
		p.openRow[b] = r.U64()
		p.rowOpen[b] = r.Bool()
	}
	return r.Err()
}
