// Package dram models the DRAM channel behind each memory partition: a
// bounded request queue, multiple banks with open-row state, FR-FCFS-style
// scheduling (row hits bypass older row misses within a small window), and
// the access latencies of Table II (227-cycle average miss latency on the
// RTX 2080 Ti).
package dram

import (
	"swiftsim/internal/engine"
	"swiftsim/internal/mem"
	"swiftsim/internal/metrics"
	"swiftsim/internal/obs"
)

const (
	// queueCap bounds the per-partition request queue.
	queueCap = 64
	// frfcfsWindow is how deep the scheduler looks for row hits.
	frfcfsWindow = 8
	// rowBytes is the DRAM row (page) size used to derive row addresses.
	rowBytes = 2048
	// bankBusyRowHit / bankBusyRowMiss are the cycles a bank is occupied
	// per access (data transfer + precharge/activate for misses); the
	// requester additionally waits the full access latency.
	bankBusyRowHit  = 8
	bankBusyRowMiss = 24
)

// Partition is one DRAM channel. It implements mem.Port upstream (fed by
// its L2 slice) and engine.Ticker.
type Partition struct {
	name       string
	eng        *engine.Engine
	wake       func() // engine activation callback (nil when standalone)
	banks      int
	latency    uint64 // row-miss (full) access latency
	rowHitLat  uint64
	queue      []*mem.Request
	bankFreeAt []uint64
	openRow    []uint64
	rowOpen    []bool

	reads     *metrics.Counter
	writes    *metrics.Counter
	rowHits   *metrics.Counter
	rowMisses *metrics.Counter
	stalls    *metrics.Counter

	tr    *obs.Tracer
	trTid int32
	trOn  bool
}

// SetTracer installs the partition's tracer (nil for off) and registers
// its trace track. Request spans (accept → data return) are emitted at
// RequestLevel with a row hit/miss argument.
func (p *Partition) SetTracer(t *obs.Tracer) {
	p.tr = t
	p.trOn = t.Enabled(obs.RequestLevel)
	if p.trOn {
		p.trTid = t.RegisterTrack(p.name)
	}
}

// QueueDepth returns the number of requests waiting in the partition's
// queue — the DRAM column of the counter timeline.
func (p *Partition) QueueDepth() int { return len(p.queue) }

// New constructs a DRAM partition. latency and rowHitLatency are end-to-end
// access latencies in core cycles.
func New(name string, eng *engine.Engine, banks int, latency, rowHitLatency int, g *metrics.Gatherer) *Partition {
	if rowHitLatency <= 0 || rowHitLatency > latency {
		rowHitLatency = latency
	}
	return &Partition{
		name:       name,
		eng:        eng,
		banks:      banks,
		latency:    uint64(latency),
		rowHitLat:  uint64(rowHitLatency),
		bankFreeAt: make([]uint64, banks),
		openRow:    make([]uint64, banks),
		rowOpen:    make([]bool, banks),
		reads:      g.Counter(name + ".read"),
		writes:     g.Counter(name + ".write"),
		rowHits:    g.Counter(name + ".row_hit"),
		rowMisses:  g.Counter(name + ".row_miss"),
		stalls:     g.Counter(name + ".stall"),
	}
}

// Name implements engine.Module.
func (p *Partition) Name() string { return p.name }

// Kind implements engine.Module.
func (p *Partition) Kind() engine.ModelKind { return engine.CycleAccurate }

// Busy implements engine.Ticker: the partition needs ticks only while
// requests are queued (in-flight accesses complete via scheduled events).
func (p *Partition) Busy() bool { return len(p.queue) > 0 }

// SetWake implements engine.WakeAware: an idle partition (empty queue)
// leaves the per-cycle tick set; an arriving request re-activates it. Bank
// timing state is kept in absolute cycles, so skipped idle cycles do not
// disturb it.
func (p *Partition) SetWake(wake func()) { p.wake = wake }

// Accept implements mem.Port.
func (p *Partition) Accept(r *mem.Request) bool {
	if len(p.queue) >= queueCap {
		p.stalls.Inc()
		return false
	}
	p.queue = append(p.queue, r)
	if p.trOn {
		r.T0 = p.eng.Cycle()
	}
	if p.wake != nil {
		p.wake()
	}
	return true
}

func (p *Partition) bankOf(addr uint64) int {
	return int((addr / rowBytes) % uint64(p.banks))
}

func (p *Partition) rowOf(addr uint64) uint64 {
	return addr / rowBytes / uint64(p.banks)
}

// Tick implements engine.Ticker: issue as many queued requests as have a
// free bank, preferring row hits within the scheduling window (FR-FCFS).
func (p *Partition) Tick(cycle uint64) {
	for {
		idx := p.pick(cycle)
		if idx < 0 {
			return
		}
		r := p.queue[idx]
		p.queue = append(p.queue[:idx], p.queue[idx+1:]...)
		p.service(cycle, r)
	}
}

// pick returns the queue index of the next request to service, or -1.
// Row hits within the window win over older row misses; otherwise the
// oldest request with a free bank is chosen.
func (p *Partition) pick(cycle uint64) int {
	window := len(p.queue)
	if window > frfcfsWindow {
		window = frfcfsWindow
	}
	oldest := -1
	for i := 0; i < window; i++ {
		r := p.queue[i]
		b := p.bankOf(r.Addr)
		if p.bankFreeAt[b] > cycle {
			continue
		}
		if p.rowOpen[b] && p.openRow[b] == p.rowOf(r.Addr) {
			return i // row hit wins immediately
		}
		if oldest < 0 {
			oldest = i
		}
	}
	return oldest
}

func (p *Partition) service(cycle uint64, r *mem.Request) {
	b := p.bankOf(r.Addr)
	row := p.rowOf(r.Addr)
	hit := p.rowOpen[b] && p.openRow[b] == row

	var lat, busy uint64
	if hit {
		p.rowHits.Inc()
		lat, busy = p.rowHitLat, bankBusyRowHit
	} else {
		p.rowMisses.Inc()
		lat, busy = p.latency, bankBusyRowMiss
	}
	p.rowOpen[b] = true
	p.openRow[b] = row
	p.bankFreeAt[b] = cycle + busy

	if r.Write {
		p.writes.Inc()
	} else {
		p.reads.Inc()
	}
	p.eng.Schedule(lat, func() {
		if p.trOn {
			// Emit before Complete: the creator's Done callback may recycle
			// the pooled request.
			rowArg := uint64(0)
			if hit {
				rowArg = 1
			}
			p.tr.Emit(obs.Event{Name: "access", Cat: "dram", Ph: obs.PhaseSpan,
				Ts: r.T0, Dur: p.eng.Cycle() - r.T0, Tid: p.trTid,
				Arg1Name: "addr", Arg1: r.Addr, Arg2Name: "row_hit", Arg2: rowArg})
		}
		// Decide ownership before Complete: a creator's Done callback may
		// recycle r (zeroing Done), and checking afterwards would free it
		// a second time.
		fireAndForget := r.Done == nil
		r.Complete(mem.LevelDRAM)
		if fireAndForget {
			// Writebacks and write-through forwards end their life here;
			// requests with callbacks are recycled by their creators.
			mem.PutRequest(r)
		}
	})
}
