package dram

import (
	"testing"

	"swiftsim/internal/engine"
	"swiftsim/internal/mem"
	"swiftsim/internal/metrics"
)

func setup(banks, latency, rowHitLatency int) (*engine.Engine, *Partition, *metrics.Gatherer) {
	eng := engine.New()
	g := metrics.New()
	p := New("dram0", eng, banks, latency, rowHitLatency, g)
	eng.Register(p)
	return eng, p, g
}

func run(t *testing.T, eng *engine.Engine, done *int, want int) uint64 {
	t.Helper()
	cyc, err := eng.Run(func() bool { return *done == want }, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	return cyc
}

func TestFirstAccessIsRowMiss(t *testing.T) {
	eng, p, g := setup(4, 227, 100)
	done := 0
	r := &mem.Request{Addr: 0x1000, Size: 32, Done: func() { done++ }}
	p.Accept(r)
	cyc := run(t, eng, &done, 1)
	if cyc < 227 {
		t.Errorf("row-miss latency = %d, want >= 227", cyc)
	}
	if g.Value("dram0.row_miss") != 1 || g.Value("dram0.row_hit") != 0 {
		t.Errorf("row hit/miss = %d/%d", g.Value("dram0.row_hit"), g.Value("dram0.row_miss"))
	}
}

func TestRowHitFasterThanMiss(t *testing.T) {
	eng, p, g := setup(4, 227, 100)
	done := 0
	p.Accept(&mem.Request{Addr: 0x100, Size: 32, Done: func() { done++ }})
	run(t, eng, &done, 1)
	start := eng.Cycle()
	p.Accept(&mem.Request{Addr: 0x120, Size: 32, Done: func() { done++ }}) // same row
	run(t, eng, &done, 2)
	hitLat := eng.Cycle() - start
	if hitLat > 110 {
		t.Errorf("row-hit latency = %d, want about 100", hitLat)
	}
	if g.Value("dram0.row_hit") != 1 {
		t.Errorf("row_hit = %d, want 1", g.Value("dram0.row_hit"))
	}
}

func TestFRFCFSPrefersRowHits(t *testing.T) {
	eng, p, g := setup(1, 227, 100)
	done := 0
	// Open row A, then enqueue: [row B (miss), row A (hit)]. The
	// scheduler should service the row-A request first.
	p.Accept(&mem.Request{Addr: 0, Size: 32, Done: func() { done++ }}) // row 0
	run(t, eng, &done, 1)

	var order []uint64
	mk := func(addr uint64) *mem.Request {
		return &mem.Request{Addr: addr, Size: 32, Done: func() { order = append(order, addr); done++ }}
	}
	p.Accept(mk(rowBytes * 5)) // different row: miss
	p.Accept(mk(64))           // open row: hit
	run(t, eng, &done, 3)
	if len(order) != 2 || order[0] != 64 {
		t.Errorf("service order = %v, want row-hit (64) first", order)
	}
	if g.Value("dram0.row_hit") != 1 {
		t.Errorf("row_hit = %d, want 1", g.Value("dram0.row_hit"))
	}
}

func TestBankParallelism(t *testing.T) {
	// Requests to different banks overlap; to one bank they serialize.
	measure := func(sameBank bool) uint64 {
		eng, p, _ := setup(4, 200, 200)
		done := 0
		for i := 0; i < 4; i++ {
			addr := uint64(i) * rowBytes // bank i
			if sameBank {
				addr = uint64(i) * rowBytes * 4 // all bank 0, distinct rows
			}
			p.Accept(&mem.Request{Addr: addr, Size: 32, Done: func() { done++ }})
		}
		return run(t, eng, &done, 4)
	}
	spread, serial := measure(false), measure(true)
	if serial <= spread {
		t.Errorf("same-bank (%d cycles) not slower than spread banks (%d cycles)", serial, spread)
	}
}

func TestQueueBackpressure(t *testing.T) {
	_, p, g := setup(1, 100, 100)
	accepted := 0
	for i := 0; i < queueCap+10; i++ {
		if p.Accept(&mem.Request{Addr: uint64(i) * 32, Size: 32}) {
			accepted++
		}
	}
	if accepted != queueCap {
		t.Errorf("accepted = %d, want %d", accepted, queueCap)
	}
	if g.Value("dram0.stall") == 0 {
		t.Error("expected stalls recorded")
	}
}

func TestReadWriteCounters(t *testing.T) {
	eng, p, g := setup(2, 50, 50)
	done := 0
	p.Accept(&mem.Request{Addr: 0, Size: 32, Done: func() { done++ }})
	p.Accept(&mem.Request{Addr: 4096, Write: true, Size: 32})
	run(t, eng, &done, 1)
	// Let the write drain too.
	if _, err := eng.Run(func() bool { return !p.Busy() }, 100000); err != nil {
		t.Fatal(err)
	}
	if g.Value("dram0.read") != 1 || g.Value("dram0.write") != 1 {
		t.Errorf("read/write = %d/%d, want 1/1", g.Value("dram0.read"), g.Value("dram0.write"))
	}
}

func TestRowHitLatencyClamped(t *testing.T) {
	// rowHitLatency > latency gets clamped to latency.
	_, p, _ := setup(1, 100, 500)
	if p.rowHitLat != 100 {
		t.Errorf("rowHitLat = %d, want clamped to 100", p.rowHitLat)
	}
	// Zero row-hit latency also falls back to full latency.
	_, p2, _ := setup(1, 100, 0)
	if p2.rowHitLat != 100 {
		t.Errorf("rowHitLat = %d, want 100", p2.rowHitLat)
	}
}

func TestAllRequestsComplete(t *testing.T) {
	eng, p, _ := setup(4, 100, 40)
	const n = 200
	done := 0
	issued := 0
	feeder := func() {}
	feeder = func() {
		for issued < n {
			r := &mem.Request{Addr: uint64(issued*1024) % (1 << 20), Size: 32, Done: func() { done++ }}
			if !p.Accept(r) {
				break
			}
			issued++
		}
		if issued < n {
			eng.Schedule(10, feeder)
		}
	}
	feeder()
	if _, err := eng.Run(func() bool { return done == n }, 10_000_000); err != nil {
		t.Fatalf("run: %v (completed %d/%d)", err, done, n)
	}
}
