package analytic

import "sort"

// ExtrapolateBlocks estimates the cycles the blocks *not* simulated by a
// sampled launch would have added, from the measured (launch, end) cycle
// pairs of the sampled blocks — the block-level analogue of Eq. 1's
// expectation model: instead of evaluating every block cycle by cycle, the
// unsampled remainder is charged its expected cost.
//
// The sample's tail blocks run as contiguous windows at full occupancy
// with their grid neighbors (smcore.SelectSampleBlocks), so their
// measurements embed the steady-state hit rates, neighbor locality, and
// contention delays the unsimulated waves would see. Two per-block cost
// estimators cover the two steady-state regimes:
//
//   - Occupancy floor: mean block duration / waveCap, the per-block cost
//     when waveCap blocks run in lockstep. Exact for compute-bound waves,
//     which finish in step; an underestimate when a saturated memory
//     system stretches wall time beyond what resident blocks account for.
//   - Saturated throughput: completions that happen no later than the last
//     sampled launch occur while blocks are still pending (every such
//     completion backfills one), so their mean spacing — span over
//     count−1 — is the machine's saturated drain rate. Completions after
//     the last launch are rundown — occupancy decays and survivors speed
//     up — and are excluded.
//
// Which to trust is decided by the shape of the saturated completions:
// queue-drain-dominated launches complete in bursts (a memory-system
// convoy drains, a gap follows), so a max consecutive gap well above the
// mean gap selects the throughput estimate; evenly spaced completions mean
// lockstep execution, where the spacing of the few saturated samples only
// echoes the first wave's cold transient and the floor is the faithful
// price. Sums, extrema, and the sorted gap scan are order-independent,
// keeping the result deterministic.
//
// Returns 0 when nothing was left unsimulated or nothing was measured.
// Rounding is half-up, matching the wave extrapolation of legacy prefix
// sampling (truncation systematically under-predicts).
func ExtrapolateBlocks(launch, end []uint64, waveCap, total, simulated int) uint64 {
	if total <= simulated || len(launch) == 0 || len(launch) != len(end) {
		return 0
	}
	if waveCap < 1 {
		waveCap = 1
	}
	var sum, lastLaunch uint64
	for i, l := range launch {
		sum += end[i] - l
		if l > lastLaunch {
			lastLaunch = l
		}
	}
	perBlock := float64(sum) / float64(len(launch)) / float64(waveCap)
	sat := make([]uint64, 0, len(end))
	for _, e := range end {
		if e <= lastLaunch {
			sat = append(sat, e)
		}
	}
	if len(sat) > 2 {
		sort.Slice(sat, func(i, j int) bool { return sat[i] < sat[j] })
		meanGap := float64(sat[len(sat)-1]-sat[0]) / float64(len(sat)-1)
		var maxGap uint64
		for i := 1; i < len(sat); i++ {
			if g := sat[i] - sat[i-1]; g > maxGap {
				maxGap = g
			}
		}
		if float64(maxGap) > 2*meanGap && meanGap > perBlock {
			perBlock = meanGap
		}
	}
	return uint64(float64(total-simulated)*perBlock + 0.5)
}
