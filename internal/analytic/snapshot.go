// Snapshot support (snap.Stateful) for the analytical models. Their entire
// state is next-free bookkeeping (issue ports, bandwidth meters) plus the
// Backend's functional L2 contents. Bandwidth meters are shared between
// instances (one DRAM meter per GPU, one L1-port meter per SM); every
// instance saves and restores the shared meter's free time, which is
// harmless because all of them write the same value.
package analytic

import (
	"swiftsim/internal/snap"
)

// SnapSave implements snap.Stateful.
func (u *ALUModel) SnapSave(w *snap.Writer) {
	w.U64(u.freeAt)
}

// SnapLoad implements snap.Stateful.
func (u *ALUModel) SnapLoad(r *snap.Reader) error {
	u.freeAt = r.U64()
	return r.Err()
}

// snapSave serializes the meter's booked-until time; the service rate is
// configuration-derived.
func (m *BandwidthMeter) snapSave(w *snap.Writer) { w.F64(m.freeAt) }

func (m *BandwidthMeter) snapLoad(r *snap.Reader) { m.freeAt = r.F64() }

// SnapSave implements snap.Stateful.
func (u *MemModel) SnapSave(w *snap.Writer) {
	w.U64(u.freeAt)
	for _, m := range []*BandwidthMeter{u.dram, u.l1port, u.noc, u.mshr} {
		w.Bool(m != nil)
		if m != nil {
			m.snapSave(w)
		}
	}
}

// SnapLoad implements snap.Stateful.
func (u *MemModel) SnapLoad(r *snap.Reader) error {
	u.freeAt = r.U64()
	for _, m := range []*BandwidthMeter{u.dram, u.l1port, u.noc, u.mshr} {
		if has := r.Bool(); has != (m != nil) {
			r.Failf("memory model %s: bandwidth-meter presence mismatch", u.name)
			return r.Err()
		}
		if m != nil {
			m.snapLoad(r)
		}
	}
	return r.Err()
}

// SnapSave implements snap.Stateful: the warmed functional L2 plus the
// shared bandwidth meters.
func (b *Backend) SnapSave(w *snap.Writer) {
	b.l2.SnapSave(w)
	b.noc.snapSave(w)
	b.dram.snapSave(w)
}

// SnapLoad implements snap.Stateful.
func (b *Backend) SnapLoad(r *snap.Reader) error {
	if err := b.l2.SnapLoad(r); err != nil {
		return err
	}
	b.noc.snapLoad(r)
	b.dram.snapLoad(r)
	return r.Err()
}
