package analytic

import (
	"swiftsim/internal/cache"
	"swiftsim/internal/config"
	"swiftsim/internal/engine"
	"swiftsim/internal/mem"
	"swiftsim/internal/metrics"
)

// Backend replaces everything below the L1 — interconnect, L2 slices and
// DRAM — with an analytical model, while the L1 (and the LD/ST units above
// it) stay cycle-accurate. It demonstrates the framework's third
// hybridization boundary: any level of the memory hierarchy can be swapped
// behind the mem.Port interface, exactly as the paper's §III-B3 promises
// ("architects can also use analytical models for other modules as
// needed").
//
// Requests are classified by a timeless functional model of the aggregate
// L2 and complete after the NoC+L2 (hit) or NoC+L2+DRAM (miss) latency
// plus bandwidth-meter queueing.
type Backend struct {
	name    string
	eng     *engine.Engine
	l2      *cache.Functional
	latL2   uint64
	latDRAM uint64
	noc     *BandwidthMeter
	dram    *BandwidthMeter

	inflight int
	hits     *metrics.Counter
	misses   *metrics.Counter
	writes   *metrics.Counter
}

// NewBackend builds the analytical below-L1 backend for gpu. Latencies are
// end-to-end from the L1's perspective (one NoC round trip is folded in).
func NewBackend(name string, eng *engine.Engine, gpu config.GPU, g *metrics.Gatherer) *Backend {
	l2cfg := gpu.L2
	l2cfg.Sets *= gpu.MemPartitions // aggregate capacity across slices
	return &Backend{
		name:    name,
		eng:     eng,
		l2:      cache.NewFunctional(l2cfg),
		latL2:   uint64(2*gpu.NoCLatency + gpu.L2.HitLatency),
		latDRAM: uint64(2*gpu.NoCLatency + gpu.L2.HitLatency + gpu.DRAMLatency),
		noc:     NewBandwidthMeterRate(1 / float64(gpu.MemPartitions)),
		dram:    NewBandwidthMeterRate(24.0 / float64(gpu.DRAMBanksPerPartition*gpu.MemPartitions)),
		hits:    g.Counter(name + ".l2_hit"),
		misses:  g.Counter(name + ".l2_miss"),
		writes:  g.Counter(name + ".write"),
	}
}

// Name implements engine.Module.
func (b *Backend) Name() string { return b.name }

// Kind implements engine.Module.
func (b *Backend) Kind() engine.ModelKind { return engine.Analytical }

// Busy implements engine.Ticker: the backend needs no per-cycle work, but
// the engine must not deadlock while responses are pending — completions
// are scheduled events, so Busy can always report false.
func (b *Backend) Busy() bool { return false }

// Tick implements engine.Ticker as a no-op (analytical module).
func (b *Backend) Tick(uint64) {}

// Accept implements mem.Port: classify, meter, and schedule completion.
func (b *Backend) Accept(r *mem.Request) bool {
	now := b.eng.Cycle()
	nocDelay := b.noc.Reserve(now, 1)
	hit := b.l2.Access(r.Addr, r.Write)
	if r.Write {
		b.writes.Inc()
		// Write-through traffic is consumed here; the store already
		// retired at the L1. Misses still book DRAM bandwidth.
		if !hit {
			b.dram.Reserve(now, 1)
		}
		if r.Done != nil {
			b.eng.Schedule(nocDelay+b.latL2, func() { r.Complete(mem.LevelL2) })
		}
		return true
	}
	if hit {
		b.hits.Inc()
		b.eng.Schedule(nocDelay+b.latL2, func() { r.Complete(mem.LevelL2) })
		return true
	}
	b.misses.Inc()
	dramDelay := b.dram.Reserve(now, 1)
	b.eng.Schedule(nocDelay+dramDelay+b.latDRAM, func() { r.Complete(mem.LevelDRAM) })
	return true
}
