package analytic

import (
	"testing"
	"testing/quick"

	"swiftsim/internal/config"
	"swiftsim/internal/engine"
	"swiftsim/internal/mem"
	"swiftsim/internal/metrics"
	"swiftsim/internal/reuse"
	"swiftsim/internal/trace"
)

func runUntil(t *testing.T, eng *engine.Engine, done *bool) uint64 {
	t.Helper()
	start := eng.Cycle()
	if _, err := eng.Run(func() bool { return *done }, start+1_000_000); err != nil {
		t.Fatal(err)
	}
	return eng.Cycle() - start
}

func TestALUModelFixedLatency(t *testing.T) {
	eng := engine.New()
	g := metrics.New()
	u := NewALUModel("alu.a", eng, 4, 2, g)
	done := false
	in := &trace.Inst{Op: trace.OpInt, ActiveMask: 1}
	if !u.TryIssue(0, in, func() { done = true }) {
		t.Fatal("analytical ALU refused issue")
	}
	if lat := runUntil(t, eng, &done); lat != 4 {
		t.Errorf("latency = %d, want 4", lat)
	}
	if u.Busy() {
		t.Error("analytical unit reports busy")
	}
}

func TestALUModelContentionAccumulates(t *testing.T) {
	eng := engine.New()
	g := metrics.New()
	u := NewALUModel("alu.a", eng, 4, 2, g)
	in := &trace.Inst{Op: trace.OpInt, ActiveMask: 1}
	var completions []uint64
	n := 5
	remaining := n
	done := false
	for i := 0; i < n; i++ {
		u.TryIssue(0, in, func() {
			completions = append(completions, eng.Cycle())
			remaining--
			if remaining == 0 {
				done = true
			}
		})
	}
	runUntil(t, eng, &done)
	// Issue port: starts at 0,2,4,6,8; completions at 4,6,8,10,12.
	want := []uint64{4, 6, 8, 10, 12}
	for i := range want {
		if completions[i] != want[i] {
			t.Fatalf("completions = %v, want %v", completions, want)
		}
	}
	// Contention: 0+2+4+6+8 = 20 cycles.
	if got := g.Value("alu.a.contention_cycles"); got != 20 {
		t.Errorf("contention_cycles = %d, want 20", got)
	}
}

// TestQuickALUModelMatchesPipelineThroughput: for back-to-back issues the
// analytical model's completion times equal the cycle-accurate pipeline's
// (same latency, same initiation interval, generous writeback port).
func TestQuickALUModelMatchesPipelineThroughput(t *testing.T) {
	f := func(latRaw, iiRaw, nRaw uint8) bool {
		lat := 1 + int(latRaw)%16
		ii := 1 + int(iiRaw)%8
		n := 1 + int(nRaw)%20
		in := &trace.Inst{Op: trace.OpInt, ActiveMask: 1}

		// Analytical completions.
		engA := engine.New()
		uA := NewALUModel("a", engA, lat, ii, metrics.New())
		var compA []uint64
		doneA := false
		remA := n
		for i := 0; i < n; i++ {
			uA.TryIssue(0, in, func() {
				compA = append(compA, engA.Cycle())
				if remA--; remA == 0 {
					doneA = true
				}
			})
		}
		if _, err := engA.Run(func() bool { return doneA }, 1_000_000); err != nil {
			return false
		}

		// The pipeline issues one instruction per ii cycles and
		// completes lat cycles later (wb port wide enough).
		for i, c := range compA {
			if want := uint64(i*ii + lat); c != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestBandwidthMeter(t *testing.T) {
	m := NewBandwidthMeter(2) // 0.5 cycles per sector
	if d := m.Reserve(0, 4); d != 0 {
		t.Errorf("first reserve delay = %d, want 0", d)
	}
	// Channel busy until cycle 2; a request at 0 queues 2 cycles.
	if d := m.Reserve(0, 4); d != 2 {
		t.Errorf("second reserve delay = %d, want 2", d)
	}
	// After the channel drains, no delay.
	if d := m.Reserve(100, 1); d != 0 {
		t.Errorf("late reserve delay = %d, want 0", d)
	}
}

func TestBandwidthMeterClamp(t *testing.T) {
	m := NewBandwidthMeter(0)
	if m.cyclesPerSector != 1 {
		t.Errorf("cyclesPerSector = %v, want 1 (clamped)", m.cyclesPerSector)
	}
}

func memParams(prof *reuse.Profile, kernel *int) MemModelParams {
	return MemModelParams{
		Profile:          prof,
		KernelIndex:      kernel,
		L1Latency:        32,
		L2Latency:        188,
		DRAMLatency:      227,
		SharedMemLatency: 24,
		SectorBytes:      32,
		Lanes:            4,
		DRAM:             NewBandwidthMeter(22),
	}
}

func coalescedAddrs(base uint64) []uint64 {
	a := make([]uint64, 32)
	for i := range a {
		a[i] = base + uint64(i)*4
	}
	return a
}

func TestMemModelEquation1(t *testing.T) {
	// A single-sector load at a PC with known rates must complete in
	// exactly Eq. 1's expected latency (zero contention, first access).
	kernel := 0
	prof := &reuse.Profile{
		PerPC:   map[reuse.Key]reuse.Rates{{Kernel: 0, PC: 16}: {L1: 0.5, L2: 0.25, DRAM: 0.25}},
		Default: reuse.Rates{L1: 1},
	}
	eng := engine.New()
	u := NewMemModel("mem", eng, memParams(prof, &kernel), metrics.New())
	done := false
	in := &trace.Inst{Op: trace.OpLoadGlobal, PC: 16, Dst: 1, ActiveMask: 1,
		Addrs: []uint64{0x1000}}
	if !u.TryIssue(0, in, func() { done = true }) {
		t.Fatal("issue refused")
	}
	// Eq. 1: 32*0.5 + 188*0.25 + 227*0.25 = 16 + 47 + 56.75 = 119.75 → 119.
	if lat := runUntil(t, eng, &done); lat != 119 {
		t.Errorf("latency = %d, want 119 (Eq. 1)", lat)
	}
}

func TestMemModelMultiSectorSlower(t *testing.T) {
	// A load of many sectors completes at its slowest sector: with a
	// DRAM fraction of 0.25, four sectors almost surely include a DRAM
	// access, so the latency approaches the DRAM term plus the
	// divergence serialization penalty.
	kernel := 0
	prof := &reuse.Profile{
		PerPC:   map[reuse.Key]reuse.Rates{{Kernel: 0, PC: 16}: {L1: 0.5, L2: 0.25, DRAM: 0.25}},
		Default: reuse.Rates{L1: 1},
	}
	eng := engine.New()
	u := NewMemModel("mem", eng, memParams(prof, &kernel), metrics.New())
	done := false
	in := &trace.Inst{Op: trace.OpLoadGlobal, PC: 16, Dst: 1, ActiveMask: 0xffffffff,
		Addrs: coalescedAddrs(0x1000)} // 4 sectors
	u.TryIssue(0, in, func() { done = true })
	lat := runUntil(t, eng, &done)
	if lat <= 119 {
		t.Errorf("multi-sector latency = %d, want > single-sector 119", lat)
	}
	if lat > 300 {
		t.Errorf("multi-sector latency = %d, implausibly high", lat)
	}
}

func TestMemModelDefaultRates(t *testing.T) {
	kernel := 0
	prof := &reuse.Profile{Default: reuse.Rates{DRAM: 1}}
	eng := engine.New()
	u := NewMemModel("mem", eng, memParams(prof, &kernel), metrics.New())
	done := false
	in := &trace.Inst{Op: trace.OpLoadGlobal, PC: 99, Dst: 1, ActiveMask: 1, Addrs: []uint64{0}}
	u.TryIssue(0, in, func() { done = true })
	if lat := runUntil(t, eng, &done); lat != 227 {
		t.Errorf("latency = %d, want 227 (DRAM)", lat)
	}
}

func TestMemModelKernelIndexDisambiguates(t *testing.T) {
	kernel := 1
	prof := &reuse.Profile{
		PerPC: map[reuse.Key]reuse.Rates{
			{Kernel: 0, PC: 8}: {DRAM: 1},
			{Kernel: 1, PC: 8}: {L1: 1},
		},
		Default: reuse.Rates{DRAM: 1},
	}
	eng := engine.New()
	u := NewMemModel("mem", eng, memParams(prof, &kernel), metrics.New())
	done := false
	in := &trace.Inst{Op: trace.OpLoadGlobal, PC: 8, Dst: 1, ActiveMask: 1, Addrs: []uint64{0}}
	u.TryIssue(0, in, func() { done = true })
	if lat := runUntil(t, eng, &done); lat != 32 {
		t.Errorf("latency = %d, want 32 (kernel-1 profile: L1)", lat)
	}
}

func TestMemModelStore(t *testing.T) {
	kernel := 0
	prof := &reuse.Profile{Default: reuse.Rates{DRAM: 1}}
	eng := engine.New()
	u := NewMemModel("mem", eng, memParams(prof, &kernel), metrics.New())
	done := false
	in := &trace.Inst{Op: trace.OpStoreGlobal, PC: 8, ActiveMask: 1, Addrs: []uint64{0}}
	u.TryIssue(0, in, func() { done = true })
	// Stores retire at L1 write-through latency, not Eq. 1's DRAM term.
	if lat := runUntil(t, eng, &done); lat != 32 {
		t.Errorf("store latency = %d, want 32", lat)
	}
}

func TestMemModelSharedMemory(t *testing.T) {
	kernel := 0
	prof := &reuse.Profile{Default: reuse.Rates{DRAM: 1}}
	eng := engine.New()
	g := metrics.New()
	u := NewMemModel("mem", eng, memParams(prof, &kernel), g)
	done := false
	// 32 lanes all hitting bank 0: degree 32 → 24 + 4*31 = 148 cycles.
	addrs := make([]uint64, 32)
	for i := range addrs {
		addrs[i] = uint64(i) * 128
	}
	in := &trace.Inst{Op: trace.OpLoadShared, PC: 8, Dst: 1, ActiveMask: 0xffffffff, Addrs: addrs}
	u.TryIssue(0, in, func() { done = true })
	if lat := runUntil(t, eng, &done); lat != 148 {
		t.Errorf("shared latency = %d, want 148", lat)
	}
	// No global transactions for shared memory.
	if g.Value("mem.transactions") != 0 {
		t.Errorf("transactions = %d, want 0", g.Value("mem.transactions"))
	}
}

func TestMemModelPortOccupancySerializes(t *testing.T) {
	kernel := 0
	prof := &reuse.Profile{Default: reuse.Rates{L1: 1}}
	eng := engine.New()
	g := metrics.New()
	u := NewMemModel("mem", eng, memParams(prof, &kernel), g)
	var comp []uint64
	done := false
	rem := 3
	for i := 0; i < 3; i++ {
		in := &trace.Inst{Op: trace.OpLoadGlobal, PC: 8, Dst: 1, ActiveMask: 0xffffffff,
			Addrs: coalescedAddrs(uint64(i) * 0x10000)}
		u.TryIssue(0, in, func() {
			comp = append(comp, eng.Cycle())
			if rem--; rem == 0 {
				done = true
			}
		})
	}
	runUntil(t, eng, &done)
	// 4 sectors / 4 lanes = 1 cycle occupancy each: completions 32,33,34.
	want := []uint64{32, 33, 34}
	for i := range want {
		if comp[i] != want[i] {
			t.Fatalf("completions = %v, want %v", comp, want)
		}
	}
	if g.Value("mem.contention_cycles") == 0 {
		t.Error("no contention recorded")
	}
}

func TestMemModelDRAMBandwidthContention(t *testing.T) {
	// Many DRAM-bound loads must see growing completion times (bandwidth
	// queueing), unlike L1-bound loads.
	measure := func(rates reuse.Rates) uint64 {
		kernel := 0
		prof := &reuse.Profile{Default: rates}
		eng := engine.New()
		p := memParams(prof, &kernel)
		p.DRAM = NewBandwidthMeter(1) // narrow channel
		u := NewMemModel("mem", eng, p, metrics.New())
		done := false
		rem := 50
		for i := 0; i < 50; i++ {
			in := &trace.Inst{Op: trace.OpLoadGlobal, PC: 8, Dst: 1, ActiveMask: 0xffffffff,
				Addrs: coalescedAddrs(uint64(i) * 0x10000)}
			u.TryIssue(0, in, func() {
				if rem--; rem == 0 {
					done = true
				}
			})
		}
		return runUntil(t, eng, &done)
	}
	dramBound := measure(reuse.Rates{DRAM: 1})
	l1Bound := measure(reuse.Rates{L1: 1})
	if dramBound <= l1Bound+100 {
		t.Errorf("DRAM-bound total %d not clearly above L1-bound %d", dramBound, l1Bound)
	}
}

func TestBackendHitMissLatency(t *testing.T) {
	eng := engine.New()
	g := metrics.New()
	gpu := config.RTX2080Ti()
	gpu.MemPartitions = 2
	b := NewBackend("be", eng, gpu, g)

	measure := func(addr uint64) uint64 {
		done := false
		r := &mem.Request{Addr: addr, Size: 32, Done: func() { done = true }}
		if !b.Accept(r) {
			t.Fatal("backend refused")
		}
		start := eng.Cycle()
		if _, err := eng.Run(func() bool { return done }, start+100000); err != nil {
			t.Fatal(err)
		}
		return eng.Cycle() - start
	}
	missLat := measure(0x1000)
	hitLat := measure(0x1000)
	if hitLat >= missLat {
		t.Errorf("L2 hit (%d) not faster than miss (%d)", hitLat, missLat)
	}
	wantHit := uint64(2*gpu.NoCLatency + gpu.L2.HitLatency)
	if hitLat < wantHit || hitLat > wantHit+4 {
		t.Errorf("hit latency = %d, want about %d", hitLat, wantHit)
	}
	if g.Value("be.l2_hit") != 1 || g.Value("be.l2_miss") != 1 {
		t.Errorf("hit/miss counters = %d/%d", g.Value("be.l2_hit"), g.Value("be.l2_miss"))
	}
}

func TestBackendWrites(t *testing.T) {
	eng := engine.New()
	g := metrics.New()
	b := NewBackend("be", eng, config.RTX2080Ti(), g)
	// Writes without Done complete silently; the backend must stay
	// consistent and count them.
	for i := 0; i < 5; i++ {
		if !b.Accept(&mem.Request{Addr: uint64(i) * 4096, Write: true, Size: 32}) {
			t.Fatal("write refused")
		}
	}
	if g.Value("be.write") != 5 {
		t.Errorf("writes = %d, want 5", g.Value("be.write"))
	}
	// A read of a previously written sector hits (write-allocate).
	done := false
	r := &mem.Request{Addr: 0, Size: 32, Done: func() { done = true }}
	b.Accept(r)
	if _, err := eng.Run(func() bool { return done }, 100000); err != nil {
		t.Fatal(err)
	}
	if r.ServicedBy != mem.LevelL2 {
		t.Errorf("read after write serviced by %v, want L2", r.ServicedBy)
	}
}
