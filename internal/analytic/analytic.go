// Package analytic implements the paper's two working examples of hybrid
// modeling (§III-D): an analytical ALU-pipeline model and an analytical
// memory-access model based on Eq. 1. Both implement smcore.Unit, so an
// assembly swaps them in for the cycle-accurate pipelines without touching
// the Warp Scheduler & Dispatch module — the whole point of Swift-Sim's
// modular design.
package analytic

import (
	"math"

	"swiftsim/internal/engine"
	"swiftsim/internal/metrics"
	"swiftsim/internal/reuse"
	"swiftsim/internal/smcore"
	"swiftsim/internal/trace"
)

// ALUModel replaces an ALUPipeline with the improved analytical model of
// §III-D1: the instruction's completion time is its fixed execution
// latency plus the delay caused by issue-port contention — and the
// contention component is still tracked exactly (via the unit's next-free
// bookkeeping) rather than estimated with a queueing formula, which is what
// keeps the accuracy degradation small. No per-cycle state is evaluated:
// completion is a single scheduled event.
type ALUModel struct {
	name     string
	eng      engine.Context
	latency  uint64
	interval uint64
	freeAt   uint64 // issue port next free (absolute cycle)

	issued     *metrics.Counter
	contention *metrics.Counter
}

// NewALUModel builds an analytical ALU with the same parameters as the
// cycle-accurate pipeline it replaces.
func NewALUModel(name string, eng engine.Context, latency, interval int, g *metrics.Gatherer) *ALUModel {
	if interval < 1 {
		interval = 1
	}
	return &ALUModel{
		name:       name,
		eng:        eng,
		latency:    uint64(latency),
		interval:   uint64(interval),
		issued:     g.Counter(name + ".issued"),
		contention: g.Counter(name + ".contention_cycles"),
	}
}

// Name implements engine.Module.
func (u *ALUModel) Name() string { return u.name }

// Kind implements engine.Module.
func (u *ALUModel) Kind() engine.ModelKind { return engine.Analytical }

// Busy implements smcore.Unit: analytical units never require ticking.
func (u *ALUModel) Busy() bool { return false }

// Tick implements smcore.Unit as a no-op.
func (u *ALUModel) Tick(uint64) {}

// TryIssue implements smcore.Unit. The analytical unit never refuses an
// instruction: port contention is folded into the completion delay instead
// of bouncing the scheduler, which is what removes the per-cycle retry
// work.
func (u *ALUModel) TryIssue(cycle uint64, in *trace.Inst, done func()) bool {
	start := cycle
	if u.freeAt > start {
		start = u.freeAt
	}
	delay := (start - cycle) + u.latency
	u.contention.Add(start - cycle)
	u.freeAt = start + u.interval
	u.issued.Inc()
	u.eng.Schedule(delay, done)
	return true
}

// BandwidthMeter models aggregate DRAM bandwidth contention for the
// analytical memory model: each DRAM-bound sector reserves service time on
// a shared virtual channel, and the extra queueing delay is returned to the
// requester. This is the "additional latency due to resource contention"
// the paper adds on top of Eq. 1's expected latency.
type BandwidthMeter struct {
	// cyclesPerSector is the aggregate service cost of one sector across
	// all partitions (1 / (partitions × sectors-per-cycle-per-partition)).
	cyclesPerSector float64
	freeAt          float64
}

// NewBandwidthMeter builds a meter for a GPU with the given number of
// memory partitions, each able to transfer one sector per cycle.
func NewBandwidthMeter(partitions int) *BandwidthMeter {
	if partitions < 1 {
		partitions = 1
	}
	return &BandwidthMeter{cyclesPerSector: 1 / float64(partitions)}
}

// NewBandwidthMeterRate builds a meter with an explicit aggregate service
// cost per sector, for channels whose rate is not one sector per cycle per
// unit (e.g. DRAM banks with multi-cycle occupancy).
func NewBandwidthMeterRate(cyclesPerSector float64) *BandwidthMeter {
	if cyclesPerSector <= 0 {
		cyclesPerSector = 1
	}
	return &BandwidthMeter{cyclesPerSector: cyclesPerSector}
}

// Reserve books sectors×weight sector transfers starting no earlier than
// now and returns the queueing delay in cycles.
func (m *BandwidthMeter) Reserve(now uint64, sectors float64) uint64 {
	return m.ReserveCost(now, sectors*m.cyclesPerSector)
}

// ReserveCost books an explicit service cost in cycles (for channels whose
// per-transaction cost varies by request) and returns the queueing delay.
func (m *BandwidthMeter) ReserveCost(now uint64, cycles float64) uint64 {
	start := float64(now)
	if m.freeAt > start {
		start = m.freeAt
	}
	m.freeAt = start + cycles
	return uint64(start - float64(now))
}

// MemModel replaces the LD/ST unit and the entire memory hierarchy
// (L1/NoC/L2/DRAM) with the classical analytical model of §III-D2: a
// global-memory instruction's latency is Eq. 1's expectation over the
// per-PC hit rates extracted by the reuse package, plus cycle-accurately
// tracked contention (LD/ST issue-port occupancy and aggregate DRAM
// bandwidth). Shared-memory accesses keep the conflict model of the
// cycle-accurate unit, which needs no global state.
type MemModel struct {
	name        string
	eng         *engine.Engine
	prof        *reuse.Profile
	kernel      *int // current kernel index, shared across all instances
	latL1       float64
	latL2       float64
	latDRAM     float64
	shmemLat    uint64
	sectorBytes int
	lanes       int
	freeAt      uint64
	dram        *BandwidthMeter
	l1port      *BandwidthMeter
	noc         *BandwidthMeter
	mshr        *BandwidthMeter
	mshrEntries float64
	divergeCost float64

	issued       *metrics.Counter
	transactions *metrics.Counter
	contention   *metrics.Counter
}

// MemModelParams collects the shared configuration of all MemModel
// instances of one simulator.
type MemModelParams struct {
	// Profile supplies Eq. 1's hit rates.
	Profile *reuse.Profile
	// KernelIndex points at the simulator's current kernel counter so
	// per-PC lookups stay unambiguous across kernels.
	KernelIndex *int
	// L1Latency, L2Latency, DRAMLatency are Eq. 1's L_L1, L_L2, L_DRAM.
	L1Latency, L2Latency, DRAMLatency int
	// SharedMemLatency is the shared-memory access latency.
	SharedMemLatency int
	// SectorBytes is the coalescing granularity.
	SectorBytes int
	// Lanes is the LD/ST lane count (sectors accepted per cycle).
	Lanes int
	// DRAM is the shared bandwidth meter (one per simulated GPU).
	DRAM *BandwidthMeter
	// L1Port optionally models the SM's L1 access bandwidth (one meter
	// shared by the sub-cores of one SM); nil disables the term.
	L1Port *BandwidthMeter
	// NoC optionally models aggregate interconnect bandwidth (one meter
	// per simulated GPU); nil disables the term.
	NoC *BandwidthMeter
	// DivergeCost is the serialization cost per additional DRAM-bound
	// sector of one divergent load (the MDM-style memory-divergence
	// penalty); 0 disables the term.
	DivergeCost float64
	// MSHR optionally models the per-SM MSHR file's throughput limit:
	// each missing sector occupies one of MSHREntries entries for its
	// full round trip, bounding the SM's memory-level parallelism. One
	// meter per SM; nil disables the term.
	MSHR        *BandwidthMeter
	MSHREntries int
}

// NewMemModel builds one analytical LD/ST replacement (one per sub-core).
func NewMemModel(name string, eng *engine.Engine, p MemModelParams, g *metrics.Gatherer) *MemModel {
	lanes := p.Lanes
	if lanes < 1 {
		lanes = 1
	}
	return &MemModel{
		name:         name,
		eng:          eng,
		prof:         p.Profile,
		kernel:       p.KernelIndex,
		latL1:        float64(p.L1Latency),
		latL2:        float64(p.L2Latency),
		latDRAM:      float64(p.DRAMLatency),
		shmemLat:     uint64(p.SharedMemLatency),
		sectorBytes:  p.SectorBytes,
		lanes:        lanes,
		dram:         p.DRAM,
		l1port:       p.L1Port,
		noc:          p.NoC,
		mshr:         p.MSHR,
		mshrEntries:  float64(p.MSHREntries),
		divergeCost:  p.DivergeCost,
		issued:       g.Counter(name + ".issued"),
		transactions: g.Counter(name + ".transactions"),
		contention:   g.Counter(name + ".contention_cycles"),
	}
}

// Name implements engine.Module.
func (u *MemModel) Name() string { return u.name }

// Kind implements engine.Module.
func (u *MemModel) Kind() engine.ModelKind { return engine.Analytical }

// Busy implements smcore.Unit.
func (u *MemModel) Busy() bool { return false }

// Tick implements smcore.Unit as a no-op.
func (u *MemModel) Tick(uint64) {}

// TryIssue implements smcore.Unit.
func (u *MemModel) TryIssue(cycle uint64, in *trace.Inst, done func()) bool {
	u.issued.Inc()

	if in.Op.IsSharedMem() {
		deg := smcore.SharedBankConflicts(in.Addrs)
		u.eng.Schedule(u.shmemLat+uint64(4*(deg-1)), done)
		return true
	}

	sectors := len(smcore.Coalesce(in.Addrs, u.sectorBytes))
	u.transactions.Add(uint64(sectors))

	// LD/ST issue-port occupancy: the unit is held for the cycles needed
	// to inject all sector transactions.
	start := cycle
	if u.freeAt > start {
		start = u.freeAt
	}
	occupancy := uint64((sectors + u.lanes - 1) / u.lanes)
	u.freeAt = start + occupancy
	portDelay := start - cycle

	kernel := 0
	if u.kernel != nil {
		kernel = *u.kernel
	}
	rates := u.prof.Rates(kernel, in.PC)

	// Contention adder: every sector occupies the SM's L1 port and the
	// interconnect; the DRAM-bound fraction also occupies the aggregate
	// DRAM channel.
	var l1Delay, nocDelay uint64
	if u.l1port != nil {
		l1Delay = u.l1port.Reserve(cycle, float64(sectors))
	}
	if u.noc != nil {
		nocDelay = u.noc.Reserve(cycle, float64(sectors))
	}
	var base float64
	var dramDelay uint64
	if in.Op == trace.OpStoreGlobal {
		// Stores retire once handed to the (write-through) L1, but
		// their traffic still occupies downstream bandwidth.
		base = u.latL1
		dramDelay = u.dram.Reserve(cycle, float64(sectors))
	} else {
		// Multi-sector generalization of Eq. 1: a warp load completes
		// when its slowest sector returns, so with s independent
		// sectors the expected latency steps up to a level's latency
		// once *any* sector is serviced there. For s = 1 this is
		// exactly Eq. 1.
		sf := float64(sectors)
		pBeyondL1 := 1 - math.Pow(rates.L1, sf)
		pDRAM := 1 - math.Pow(1-rates.DRAM, sf)
		base = u.latL1 + (u.latL2-u.latL1)*pBeyondL1 + (u.latDRAM-u.latL2)*pDRAM
		// Memory-divergence serialization (after MDM): the DRAM-bound
		// sectors of one divergent load contend for banks and return
		// bandwidth, so each additional one delays the warp's restart.
		if sectors > 1 {
			base += u.divergeCost * (sf - 1) * rates.DRAM
		}
		dramDelay = u.dram.Reserve(cycle, sf*rates.DRAM)
		// MSHR-limited memory-level parallelism (after MDM): every
		// missing sector holds an MSHR entry for its round trip, so the
		// SM's aggregate miss throughput is entries/latency.
		if u.mshr != nil && u.mshrEntries > 0 {
			missRTT := u.latL2*rates.L2 + u.latDRAM*rates.DRAM
			cost := sf * missRTT / u.mshrEntries
			d := u.mshr.ReserveCost(cycle, cost)
			u.contention.Add(d)
			if d > dramDelay {
				dramDelay = d
			}
		}
	}

	contention := portDelay + l1Delay + nocDelay + dramDelay
	u.contention.Add(contention)
	u.eng.Schedule(contention+uint64(base), done)
	return true
}

// NewHybridUnits builds the UnitSet of Swift-Sim-Basic: analytical ALUs
// (one shared ALUModel per class per sub-core) with the caller-supplied
// LD/ST provider (cycle-accurate for Basic, analytical for Memory).
func NewHybridUnits(aluFor func(smID, sub int, class trace.OpClass) smcore.Unit, ldstFor func(smID, sub int) smcore.Unit) smcore.UnitSet {
	return smcore.UnitSet{ALU: aluFor, LDST: ldstFor}
}
