package smcore

// Ready-made Picker implementations beyond the three built-in policies.
// They double as worked examples of the custom-scheduler extension point:
// a policy only needs candidate inspection (Issuable/NextOp/
// RemainingInsts) and returns slot indices.

// memFirstPicker prioritizes warps whose next instruction is a
// global-memory access, issuing loads as early as possible to maximize
// memory-level parallelism; ties fall back to oldest-first.
type memFirstPicker struct{}

// NewMemFirstPicker returns the MLP-greedy policy.
func NewMemFirstPicker() Picker { return memFirstPicker{} }

// Pick implements Picker.
func (memFirstPicker) Pick(cycle uint64, warps []*Warp, tried func(*Warp) bool) int {
	best := -1
	bestMem := false
	var bestAge uint64
	for i, w := range warps {
		if !Issuable(w) || tried(w) {
			continue
		}
		op, _ := NextOp(w)
		isMem := op.IsGlobalMem()
		better := false
		switch {
		case best < 0:
			better = true
		case isMem != bestMem:
			better = isMem
		default:
			better = w.Age < bestAge
		}
		if better {
			best, bestMem, bestAge = i, isMem, w.Age
		}
	}
	return best
}

// Issued implements Picker (stateless policy).
func (memFirstPicker) Issued(int, *Warp) {}

// youngestFirstPicker always issues from the most recently assigned warp —
// a deliberately cache-unfriendly strawman useful as an exploration
// baseline.
type youngestFirstPicker struct{}

// NewYoungestFirstPicker returns the youngest-first strawman policy.
func NewYoungestFirstPicker() Picker { return youngestFirstPicker{} }

// Pick implements Picker.
func (youngestFirstPicker) Pick(cycle uint64, warps []*Warp, tried func(*Warp) bool) int {
	best := -1
	var bestAge uint64
	for i, w := range warps {
		if !Issuable(w) || tried(w) {
			continue
		}
		if best < 0 || w.Age > bestAge {
			best, bestAge = i, w.Age
		}
	}
	return best
}

// Issued implements Picker.
func (youngestFirstPicker) Issued(int, *Warp) {}
