package smcore

import (
	"testing"

	"swiftsim/internal/engine"
	"swiftsim/internal/metrics"
	"swiftsim/internal/trace"
)

// immediateUnit accepts everything and completes synchronously on Tick.
type immediateUnit struct {
	pending []func()
	issued  int
	refuse  bool
}

func (u *immediateUnit) Name() string           { return "imm" }
func (u *immediateUnit) Kind() engine.ModelKind { return engine.CycleAccurate }
func (u *immediateUnit) Busy() bool             { return len(u.pending) > 0 }
func (u *immediateUnit) TryIssue(cycle uint64, in *trace.Inst, done func()) bool {
	if u.refuse {
		return false
	}
	u.issued++
	u.pending = append(u.pending, done)
	return true
}
func (u *immediateUnit) Tick(cycle uint64) {
	for _, d := range u.pending {
		d()
	}
	u.pending = nil
}

func TestOperandCollectorSameBankSerializes(t *testing.T) {
	g := metrics.New()
	inner := &immediateUnit{}
	oc := NewOperandCollector("oc", inner, g)
	// Two source registers in the same bank (1 and 1+regFileBanks): the
	// instruction needs two cycles of collection.
	in := &trace.Inst{Op: trace.OpInt, Dst: 3,
		Src: [2]trace.Reg{1, 1 + regFileBanks}, ActiveMask: 1}
	if !oc.TryIssue(0, in, func() {}) {
		t.Fatal("collector refused")
	}
	oc.Tick(1) // reads bank 1 once; conflict on second operand
	if inner.issued != 0 {
		t.Fatal("instruction dispatched before both operands collected")
	}
	if g.Value("oc.bank_conflict") == 0 {
		t.Error("no bank conflict recorded")
	}
	oc.Tick(2) // second read completes; dispatch
	if inner.issued != 1 {
		t.Fatalf("issued = %d, want 1 after two collection cycles", inner.issued)
	}
}

func TestOperandCollectorDistinctBanksOneCycle(t *testing.T) {
	g := metrics.New()
	inner := &immediateUnit{}
	oc := NewOperandCollector("oc", inner, g)
	in := &trace.Inst{Op: trace.OpInt, Dst: 3, Src: [2]trace.Reg{1, 2}, ActiveMask: 1}
	oc.TryIssue(0, in, func() {})
	oc.Tick(1)
	if inner.issued != 1 {
		t.Fatalf("issued = %d, want 1 after one cycle", inner.issued)
	}
	if g.Value("oc.bank_conflict") != 0 {
		t.Error("spurious bank conflict")
	}
}

func TestOperandCollectorNoSourcesImmediate(t *testing.T) {
	inner := &immediateUnit{}
	oc := NewOperandCollector("oc", inner, metrics.New())
	in := &trace.Inst{Op: trace.OpInt, Dst: 3, ActiveMask: 1} // no sources
	oc.TryIssue(0, in, func() {})
	oc.Tick(1)
	if inner.issued != 1 {
		t.Fatal("source-free instruction delayed")
	}
}

func TestOperandCollectorSlotLimit(t *testing.T) {
	inner := &immediateUnit{refuse: true} // inner full: entries pile up
	oc := NewOperandCollector("oc", inner, metrics.New())
	in := &trace.Inst{Op: trace.OpInt, Dst: 3, Src: [2]trace.Reg{1, 2}, ActiveMask: 1}
	for i := 0; i < collectorSlots; i++ {
		if !oc.TryIssue(0, in, func() {}) {
			t.Fatalf("slot %d refused", i)
		}
	}
	if oc.TryIssue(0, in, func() {}) {
		t.Fatal("collector accepted beyond slot capacity")
	}
	if !oc.Busy() {
		t.Fatal("full collector reports idle")
	}
}

func TestOperandCollectorCrossEntryBankArbitration(t *testing.T) {
	// Two entries both needing bank 1: the older entry reads first.
	inner := &immediateUnit{}
	oc := NewOperandCollector("oc", inner, metrics.New())
	in1 := &trace.Inst{Op: trace.OpInt, Dst: 3, Src: [2]trace.Reg{1, trace.RegNone}, ActiveMask: 1}
	in2 := &trace.Inst{Op: trace.OpInt, Dst: 4, Src: [2]trace.Reg{1 + regFileBanks, trace.RegNone}, ActiveMask: 1}
	first, second := false, false
	oc.TryIssue(0, in1, func() { first = true })
	oc.TryIssue(0, in2, func() { second = true })
	oc.Tick(1)
	oc.Tick(2) // in1 dispatched at 1, executed at 2; in2 reads bank at 2
	if !first {
		t.Fatal("older entry not completed first")
	}
	if second {
		t.Fatal("younger same-bank entry completed too early")
	}
	oc.Tick(3)
	if !second {
		t.Fatal("younger entry never completed")
	}
}

func TestOperandCollectorRetriesWhenInnerBusy(t *testing.T) {
	inner := &immediateUnit{refuse: true}
	oc := NewOperandCollector("oc", inner, metrics.New())
	in := &trace.Inst{Op: trace.OpInt, Dst: 3, Src: [2]trace.Reg{1, 2}, ActiveMask: 1}
	done := false
	oc.TryIssue(0, in, func() { done = true })
	oc.Tick(1)
	oc.Tick(2)
	if inner.issued != 0 {
		t.Fatal("dispatched into refusing unit")
	}
	inner.refuse = false
	oc.Tick(3)
	oc.Tick(4)
	if !done {
		t.Fatal("instruction lost after inner unit freed up")
	}
}
