package smcore

import "swiftsim/internal/trace"

// Picker is a pluggable warp-scheduling policy — the extension point for
// the paper's motivating scenario: "assuming we need to explore a new warp
// scheduling algorithm, Warp Scheduler & Dispatch needs cycle-accurate
// simulation". Installing a Picker (via UnitSet.Scheduler) replaces the
// built-in GTO/LRR/oldest-first selection of one sub-core while leaving
// every other module untouched.
//
// Each simulated cycle the dispatcher repeatedly calls Pick until an
// instruction issues or Pick returns -1. The tried predicate reports warps
// already rejected this round (their unit was busy); Pick must not return
// them again. Returned warps must satisfy issuable reporting via
// Issuable(w).
type Picker interface {
	// Pick returns the index into warps of the next candidate, or -1
	// when no (remaining) warp should issue this cycle. Nil slots and
	// non-issuable warps must be skipped; use Issuable to test.
	Pick(cycle uint64, warps []*Warp, tried func(*Warp) bool) int
	// Issued notifies the policy that warps[idx] issued an instruction
	// (for greedy or history-based policies).
	Issued(idx int, w *Warp)
}

// Issuable reports whether w can issue this cycle (ignoring execution-unit
// availability): it exists so custom Pickers outside this package can test
// candidates exactly like the built-in policies do.
func Issuable(w *Warp) bool { return w != nil && w.issuable() }

// NextOp returns the opcode class of w's next instruction; ok is false
// when the warp has no pending instruction. Pickers use it to build
// instruction-aware policies (e.g. prioritizing memory instructions).
func NextOp(w *Warp) (op trace.OpClass, ok bool) {
	if w == nil {
		return 0, false
	}
	in := w.next()
	if in == nil {
		return 0, false
	}
	return in.Op, true
}

// RemainingInsts returns how many instructions w still has to issue
// (criticality-aware policies use it).
func RemainingInsts(w *Warp) int {
	if w == nil {
		return 0
	}
	return len(w.insts) - w.pc
}

// issueCustom drives dispatch through an installed Picker.
func (sc *subCore) issueCustom(cycle uint64) bool {
	tried := func(w *Warp) bool { return w.triedEpoch == sc.epoch }
	for {
		idx := sc.picker.Pick(cycle, sc.warps, tried)
		if idx < 0 {
			return false
		}
		if idx >= len(sc.warps) {
			return false
		}
		w := sc.warps[idx]
		if w == nil || !w.issuable() || tried(w) {
			// Defensive: a misbehaving picker must not livelock the
			// scheduler.
			return false
		}
		if sc.dispatch(w, cycle) {
			sc.picker.Issued(idx, w)
			return true
		}
		w.triedEpoch = sc.epoch
	}
}
