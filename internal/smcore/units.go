package smcore

import (
	"swiftsim/internal/engine"
	"swiftsim/internal/metrics"
	"swiftsim/internal/trace"
)

// Unit is the fixed interface between the Warp Scheduler & Dispatch module
// and every execution resource (§III-B2 of the paper): the scheduler hands
// in an instruction, the unit acknowledges completion by calling done at
// writeback. Both cycle-accurate pipelines and analytical latency models
// implement it, which is what makes Swift-Sim's hybrid assemblies possible.
type Unit interface {
	engine.Module
	// TryIssue attempts to accept in at the given cycle; done is invoked
	// when the instruction's result is written back. It returns false
	// when the unit cannot accept this cycle (issue-port or pipeline
	// contention).
	TryIssue(cycle uint64, in *trace.Inst, done func()) bool
	// Tick advances cycle-accurate unit state (writeback draining);
	// analytical units no-op.
	Tick(cycle uint64)
	// Busy reports whether the unit holds in-flight work that needs
	// per-cycle evaluation.
	Busy() bool
}

// pipeSlot is one pipeline register; empty slots hold a nil done.
type pipeSlot struct {
	done func()
}

// ALUPipeline is the cycle-accurate arithmetic unit model: an issue port
// with an initiation interval derived from the lane count, and a pipeline
// register per latency stage through which every in-flight instruction is
// physically moved each cycle — the GPGPU-Sim/Accel-Sim modeling style
// whose per-cycle cost the analytical ALU model of §III-D1 eliminates.
type ALUPipeline struct {
	name      string
	interval  uint64
	nextIssue uint64
	stages    []pipeSlot // stages[i] retires in i+1 ticks
	occupancy int

	issued    *metrics.Counter
	portStall *metrics.Counter
}

// NewALUPipeline builds a pipeline with the given execution latency (stage
// count) and initiation interval (cycles the issue port is held per
// instruction). wbPerCycle is retained for interface stability; the
// register pipeline inherently writes back one instruction per cycle.
func NewALUPipeline(name string, latency, interval, wbPerCycle int, g *metrics.Gatherer) *ALUPipeline {
	if interval < 1 {
		interval = 1
	}
	if latency < 1 {
		latency = 1
	}
	_ = wbPerCycle
	return &ALUPipeline{
		name:      name,
		interval:  uint64(interval),
		stages:    make([]pipeSlot, latency),
		issued:    g.Counter(name + ".issued"),
		portStall: g.Counter(name + ".port_stall"),
	}
}

// Name implements engine.Module.
func (u *ALUPipeline) Name() string { return u.name }

// Kind implements engine.Module.
func (u *ALUPipeline) Kind() engine.ModelKind { return engine.CycleAccurate }

// Busy implements Unit.
func (u *ALUPipeline) Busy() bool { return u.occupancy > 0 }

// TryIssue implements Unit: place the instruction in the deepest pipeline
// register; it reaches writeback after latency ticks.
func (u *ALUPipeline) TryIssue(cycle uint64, in *trace.Inst, done func()) bool {
	if cycle < u.nextIssue {
		u.portStall.Inc()
		return false
	}
	last := len(u.stages) - 1
	if u.stages[last].done != nil {
		u.portStall.Inc()
		return false
	}
	u.nextIssue = cycle + u.interval
	u.issued.Inc()
	u.stages[last].done = done
	u.occupancy++
	return true
}

// Tick implements Unit: retire the head register, then advance every
// instruction one stage — per-cycle pipeline-register movement, as in the
// detailed simulators this configuration reproduces.
func (u *ALUPipeline) Tick(cycle uint64) {
	if head := u.stages[0].done; head != nil {
		u.stages[0].done = nil
		u.occupancy--
		head()
	}
	for i := 1; i < len(u.stages); i++ {
		if u.stages[i].done != nil && u.stages[i-1].done == nil {
			u.stages[i-1].done = u.stages[i].done
			u.stages[i].done = nil
		}
	}
}
