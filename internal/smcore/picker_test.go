package smcore

import (
	"testing"

	"swiftsim/internal/config"
	"swiftsim/internal/trace"
)

// harness with a custom picker installed.
func newPickerHarness(t *testing.T, mk func() Picker) *smHarness {
	t.Helper()
	h := newSMHarness(t, testSMConfig())
	for _, sc := range h.sm.subcores {
		sc.picker = mk()
	}
	return h
}

func TestCustomPickerRunsKernel(t *testing.T) {
	for _, mk := range []struct {
		name string
		f    func() Picker
	}{
		{"mem-first", NewMemFirstPicker},
		{"youngest-first", NewYoungestFirstPicker},
	} {
		t.Run(mk.name, func(t *testing.T) {
			h := newPickerHarness(t, mk.f)
			k := simpleKernel(2, 4, func(b *kbuilder) {
				b.loadAt(1, 0x4000)
				for i := 0; i < 6; i++ {
					b.intOp(trace.Reg(i+2), 1, trace.Reg(i+1))
				}
				b.barrier()
			})
			h.run(t, k)
			want := uint64(2 * 4 * 9)
			if got := h.g.Value("sm.issued"); got != want {
				t.Errorf("issued = %d, want %d", got, want)
			}
		})
	}
}

func TestMemFirstPrefersMemoryWarp(t *testing.T) {
	// Two issuable warps: one at an INT instruction, one at a load. The
	// policy must pick the load.
	aluWarp := &Warp{ID: 1, Age: 1, ibuf: -1, insts: trace.WarpTrace{
		{Op: trace.OpInt, Dst: 1, ActiveMask: 1},
		{Op: trace.OpExit, ActiveMask: 1},
	}}
	memWarp := &Warp{ID: 2, Age: 2, ibuf: -1, insts: trace.WarpTrace{
		{Op: trace.OpLoadGlobal, Dst: 1, ActiveMask: 1, Addrs: []uint64{0}},
		{Op: trace.OpExit, ActiveMask: 1},
	}}
	warps := []*Warp{aluWarp, memWarp}
	p := NewMemFirstPicker()
	if got := p.Pick(0, warps, func(*Warp) bool { return false }); got != 1 {
		t.Errorf("Pick = %d, want 1 (memory warp)", got)
	}
	// With the memory warp excluded, the ALU warp wins.
	if got := p.Pick(0, warps, func(w *Warp) bool { return w == memWarp }); got != 0 {
		t.Errorf("Pick with mem tried = %d, want 0", got)
	}
	// Oldest wins among equals.
	memWarp.insts[0] = aluWarp.insts[0]
	if got := p.Pick(0, warps, func(*Warp) bool { return false }); got != 0 {
		t.Errorf("tie-break Pick = %d, want 0 (older)", got)
	}
}

func TestYoungestFirstOrder(t *testing.T) {
	mk := func(age uint64) *Warp {
		return &Warp{Age: age, ibuf: -1, insts: trace.WarpTrace{
			{Op: trace.OpInt, Dst: 1, ActiveMask: 1},
			{Op: trace.OpExit, ActiveMask: 1},
		}}
	}
	warps := []*Warp{mk(3), mk(9), mk(5)}
	p := NewYoungestFirstPicker()
	if got := p.Pick(0, warps, func(*Warp) bool { return false }); got != 1 {
		t.Errorf("Pick = %d, want 1 (youngest)", got)
	}
}

// brokenPicker returns out-of-range and already-tried indices; the
// dispatcher must not livelock or crash.
type brokenPicker struct{ calls int }

func (b *brokenPicker) Pick(cycle uint64, warps []*Warp, tried func(*Warp) bool) int {
	b.calls++
	switch b.calls % 3 {
	case 0:
		return len(warps) + 7 // out of range
	case 1:
		return -1
	default:
		for i, w := range warps {
			if w != nil {
				return i // may be non-issuable or already tried
			}
		}
		return -1
	}
}
func (b *brokenPicker) Issued(int, *Warp) {}

func TestBrokenPickerDoesNotLivelock(t *testing.T) {
	h := newPickerHarness(t, func() Picker { return &brokenPicker{} })
	k := simpleKernel(1, 2, func(b *kbuilder) {
		b.intOp(1, 0, 0)
	})
	// The broken picker issues only sometimes; the kernel must still
	// finish (engine events keep arriving) or hit the cycle guard — it
	// must never hang inside one Tick.
	h.bs.LaunchKernel(k)
	if _, err := h.eng.Run(h.bs.KernelDone, 5_000_000); err != nil {
		t.Logf("run ended with %v (acceptable for a broken policy)", err)
	}
}

func TestPickerHelpers(t *testing.T) {
	if Issuable(nil) {
		t.Error("nil warp issuable")
	}
	if _, ok := NextOp(nil); ok {
		t.Error("NextOp(nil) ok")
	}
	if RemainingInsts(nil) != 0 {
		t.Error("RemainingInsts(nil) != 0")
	}
	w := &Warp{ibuf: -1, insts: trace.WarpTrace{
		{Op: trace.OpSFU, Dst: 1, ActiveMask: 1},
		{Op: trace.OpExit, ActiveMask: 1},
	}}
	if !Issuable(w) {
		t.Error("fresh warp not issuable")
	}
	if op, ok := NextOp(w); !ok || op != trace.OpSFU {
		t.Errorf("NextOp = %v, %v", op, ok)
	}
	if RemainingInsts(w) != 2 {
		t.Errorf("RemainingInsts = %d, want 2", RemainingInsts(w))
	}
}

func TestCustomPickerOverridesConfigPolicy(t *testing.T) {
	// Install a picker and verify the built-in policy switch is not
	// consulted (the picker counts its calls).
	counting := &countingPicker{inner: NewMemFirstPicker()}
	cfg := testSMConfig()
	cfg.Scheduler = config.LRR
	h := newSMHarness(t, cfg)
	for _, sc := range h.sm.subcores {
		sc.picker = counting
	}
	k := simpleKernel(1, 4, func(b *kbuilder) {
		b.intOp(1, 0, 0)
		b.intOp(2, 1, 0)
	})
	h.run(t, k)
	if counting.picks == 0 {
		t.Error("custom picker never consulted")
	}
}

type countingPicker struct {
	inner Picker
	picks int
}

func (c *countingPicker) Pick(cycle uint64, warps []*Warp, tried func(*Warp) bool) int {
	c.picks++
	return c.inner.Pick(cycle, warps, tried)
}
func (c *countingPicker) Issued(i int, w *Warp) { c.inner.Issued(i, w) }
