package smcore

import (
	"swiftsim/internal/engine"
	"swiftsim/internal/mem"
	"swiftsim/internal/metrics"
	"swiftsim/internal/trace"
)

// Coalesce merges the per-lane byte addresses of a warp memory instruction
// into the minimal set of unique sector addresses (sectorBytes-aligned),
// preserving first-touch order. This is the memory coalescer every LD/ST
// model shares: the number of returned sectors is the instruction's
// transaction count.
func Coalesce(addrs []uint64, sectorBytes int) []uint64 {
	return coalesceInto(make([]uint64, 0, 4), addrs, sectorBytes)
}

// coalesceInto is Coalesce appending into dst[:0]'s backing array, so the
// LD/ST unit can reuse one buffer per pooled instruction.
func coalesceInto(dst []uint64, addrs []uint64, sectorBytes int) []uint64 {
	mask := ^uint64(sectorBytes - 1)
	out := dst[:0]
	for _, a := range addrs {
		s := a & mask
		dup := false
		for _, o := range out {
			if o == s {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, s)
		}
	}
	return out
}

// SharedBankConflicts returns the conflict degree of a shared-memory
// access: the maximum number of active lanes hitting the same bank
// (32 four-byte banks). Degree 1 means conflict-free.
func SharedBankConflicts(addrs []uint64) int {
	var counts [32]int
	max := 0
	for _, a := range addrs {
		b := (a >> 2) & 31
		counts[b]++
		if counts[b] > max {
			max = counts[b]
		}
	}
	return max
}

// ldstInst is one memory instruction in flight in the LD/ST unit.
type ldstInst struct {
	in      *trace.Inst
	done    func()
	sectors []uint64 // global sectors not yet accepted by the L1
	buf     []uint64 // full coalesce buffer backing sectors, reused on recycle
	waiting int      // accepted sectors whose responses are outstanding
	smid    int
}

// LDSTUnit is the cycle-accurate Load/Store unit of one sub-core: it
// coalesces global accesses into sector requests, pushes them to the SM's
// L1 port with backpressure, models shared-memory bank conflicts, and
// acknowledges the Warp Scheduler when all transactions of an instruction
// complete.
type LDSTUnit struct {
	name        string
	eng         engine.Context
	l1          mem.Port
	smid        int
	sectorBytes int
	lanes       int // sectors pushed to L1 per cycle
	shmemLat    uint64
	queueCap    int

	queue []*ldstInst
	free  []*ldstInst // recycled instructions (engine runs single-threaded)

	issued       *metrics.Counter
	transactions *metrics.Counter
	shConflicts  *metrics.Counter
	portStall    *metrics.Counter
}

// NewLDSTUnit builds a cycle-accurate LD/ST unit feeding the given L1 port.
// lanes is the LD/ST lane count (sector requests injected per cycle);
// queueCap bounds concurrently tracked memory instructions.
func NewLDSTUnit(name string, eng engine.Context, l1 mem.Port, smid, sectorBytes, lanes int, shmemLatency int, queueCap int, g *metrics.Gatherer) *LDSTUnit {
	if queueCap < 1 {
		queueCap = 8
	}
	return &LDSTUnit{
		name:         name,
		eng:          eng,
		l1:           l1,
		smid:         smid,
		sectorBytes:  sectorBytes,
		lanes:        lanes,
		shmemLat:     uint64(shmemLatency),
		queueCap:     queueCap,
		issued:       g.Counter(name + ".issued"),
		transactions: g.Counter(name + ".transactions"),
		shConflicts:  g.Counter(name + ".shmem_conflict"),
		portStall:    g.Counter(name + ".port_stall"),
	}
}

// Name implements engine.Module.
func (u *LDSTUnit) Name() string { return u.name }

// Kind implements engine.Module.
func (u *LDSTUnit) Kind() engine.ModelKind { return engine.CycleAccurate }

// Busy implements Unit.
func (u *LDSTUnit) Busy() bool { return len(u.queue) > 0 }

// TryIssue implements Unit.
func (u *LDSTUnit) TryIssue(cycle uint64, in *trace.Inst, done func()) bool {
	if len(u.queue) >= u.queueCap {
		u.portStall.Inc()
		return false
	}
	u.issued.Inc()

	if in.Op.IsSharedMem() {
		// Shared memory: latency plus serialization from bank
		// conflicts; no global traffic.
		deg := SharedBankConflicts(in.Addrs)
		if deg > 1 {
			u.shConflicts.Add(uint64(deg - 1))
		}
		u.eng.Schedule(u.shmemLat+uint64(4*(deg-1)), done)
		return true
	}

	var li *ldstInst
	if n := len(u.free); n > 0 {
		li = u.free[n-1]
		u.free = u.free[:n-1]
	} else {
		li = &ldstInst{}
	}
	li.in = in
	li.done = done
	li.sectors = coalesceInto(li.buf, in.Addrs, u.sectorBytes)
	li.buf = li.sectors
	li.smid = u.smid
	u.transactions.Add(uint64(len(li.sectors)))
	u.queue = append(u.queue, li)
	return true
}

// Tick implements Unit: inject up to lanes sector requests into the L1.
func (u *LDSTUnit) Tick(cycle uint64) {
	budget := u.lanes
	for budget > 0 && len(u.queue) > 0 {
		li := u.queue[0]
		if len(li.sectors) == 0 {
			// All sectors sent; the instruction stays tracked via
			// callbacks, not the queue head.
			u.queue = u.queue[1:]
			continue
		}
		sent := false
		for budget > 0 && len(li.sectors) > 0 {
			addr := li.sectors[0]
			r := mem.GetRequest()
			r.Addr = addr
			r.Write = li.in.Op == trace.OpStoreGlobal
			r.Size = u.sectorBytes
			r.PC = li.in.PC
			r.SMID = li.smid
			li.waiting++
			// The creator frees its request once the completion callback
			// has run; nothing downstream holds it after that.
			r.Done = func() { u.sectorDone(li); mem.PutRequest(r) }
			if !u.l1.Accept(r) {
				li.waiting--
				u.portStall.Inc()
				mem.PutRequest(r)
				budget = 0
				break
			}
			li.sectors = li.sectors[1:]
			budget--
			sent = true
		}
		if len(li.sectors) == 0 && sent {
			u.queue = u.queue[1:]
		} else {
			break // L1 backpressure: keep instruction order
		}
	}
}

func (u *LDSTUnit) sectorDone(li *ldstInst) {
	li.waiting--
	if li.waiting == 0 && len(li.sectors) == 0 {
		done := li.done
		// Every sector callback has fired: the instruction can be
		// recycled. The coalesce buffer is kept for the next occupant.
		li.in = nil
		li.done = nil
		li.sectors = nil
		u.free = append(u.free, li)
		done()
	}
}
