// Package smcore implements the streaming-multiprocessor model of
// Swift-Sim: the Block Scheduler, the Warp Scheduler & Dispatch module
// (GTO / LRR / oldest-first policies), the scoreboard, the cycle-accurate
// execution-unit pipelines, and the LD/ST unit with its memory coalescer.
//
// Following the paper's modular design (§III-B2), every execution resource
// sits behind the Unit interface: the Warp Scheduler only knows that it
// hands instructions to units and receives completion acknowledgments, so a
// cycle-accurate pipeline and an analytical latency model are
// interchangeable per unit.
package smcore

import (
	"swiftsim/internal/trace"
)

// scoreboard tracks registers with outstanding writes for one warp.
type scoreboard struct {
	pending [4]uint64
}

func (s *scoreboard) set(r trace.Reg) {
	if r == trace.RegNone {
		return
	}
	s.pending[r>>6] |= 1 << (r & 63)
}

func (s *scoreboard) clear(r trace.Reg) {
	if r == trace.RegNone {
		return
	}
	s.pending[r>>6] &^= 1 << (r & 63)
}

func (s *scoreboard) busy(r trace.Reg) bool {
	if r == trace.RegNone {
		return false
	}
	return s.pending[r>>6]&(1<<(r&63)) != 0
}

// ready reports whether in can issue: no RAW/WAW hazard on its registers.
func (s *scoreboard) ready(in *trace.Inst) bool {
	return !s.busy(in.Dst) && !s.busy(in.Src[0]) && !s.busy(in.Src[1])
}

// Warp is one resident warp's execution context.
type Warp struct {
	// ID is the warp's global id within its SM (stable while resident).
	ID int
	// Age is a monotonically increasing assignment stamp used by the
	// oldest-first and GTO policies.
	Age uint64

	block *residentBlock
	insts trace.WarpTrace
	pc    int
	sb    scoreboard

	outstanding int // issued but incomplete instructions
	atBarrier   bool
	exited      bool // EXIT issued
	done        bool // EXIT issued and all outstanding complete

	// ibuf counts fetched-but-unissued instructions when the detailed
	// front-end (fetch stage + instruction buffer) is modeled; -1 means
	// the front-end is disabled and instructions are always available.
	ibuf int

	// triedEpoch marks the last scheduling round in which dispatch
	// failed for this warp, so the picker skips it without allocating.
	triedEpoch uint64
}

// next returns the next instruction to issue, or nil when the warp has
// issued its whole stream.
func (w *Warp) next() *trace.Inst {
	if w.pc >= len(w.insts) {
		return nil
	}
	return &w.insts[w.pc]
}

// issuable reports whether the warp could issue this cycle, ignoring
// execution-unit availability.
func (w *Warp) issuable() bool {
	if w.done || w.exited || w.atBarrier || w.ibuf == 0 {
		return false
	}
	in := w.next()
	return in != nil && w.sb.ready(in)
}

// wantsFetch reports whether the front-end should fetch for this warp.
func (w *Warp) wantsFetch(depth int) bool {
	return !w.done && !w.exited && w.ibuf >= 0 && w.ibuf < depth &&
		w.pc+w.ibuf < len(w.insts)
}

// consumeIBuf removes one fetched instruction from the buffer (no-op when
// the front-end is disabled).
func (w *Warp) consumeIBuf() {
	if w.ibuf > 0 {
		w.ibuf--
	}
}
