package smcore

import (
	"swiftsim/internal/engine"
	"swiftsim/internal/metrics"
	"swiftsim/internal/trace"
)

// regFileBanks is the number of register-file banks per sub-core; two
// source operands in the same bank collect over two cycles.
const regFileBanks = 8

// collectorSlots is the number of collector units (instructions gathering
// operands concurrently).
const collectorSlots = 4

// collectEntry is one instruction gathering its source operands.
type collectEntry struct {
	in      *trace.Inst
	done    func()
	pending []int // register banks still to read
}

// OperandCollector models the operand-collection stage of the detailed
// simulator: issued instructions park in collector units, read their
// source operands through banked register-file ports (one read per bank
// per cycle; same-bank operands serialize), and only then enter the
// execution pipeline. Swift-Sim-Basic drops this stage — it is one of the
// "less critical modules" the paper simplifies — so it exists only in the
// fully cycle-accurate configuration.
type OperandCollector struct {
	name  string
	inner Unit
	queue []*collectEntry

	collected *metrics.Counter
	conflicts *metrics.Counter
}

// NewOperandCollector wraps unit with an operand-collection stage.
func NewOperandCollector(name string, unit Unit, g *metrics.Gatherer) *OperandCollector {
	return &OperandCollector{
		name:      name,
		inner:     unit,
		collected: g.Counter(name + ".collected"),
		conflicts: g.Counter(name + ".bank_conflict"),
	}
}

// Name implements engine.Module.
func (oc *OperandCollector) Name() string { return oc.name }

// Kind implements engine.Module.
func (oc *OperandCollector) Kind() engine.ModelKind { return engine.CycleAccurate }

// Busy implements Unit.
func (oc *OperandCollector) Busy() bool { return len(oc.queue) > 0 || oc.inner.Busy() }

// TryIssue implements Unit: accept the instruction into a collector slot.
func (oc *OperandCollector) TryIssue(cycle uint64, in *trace.Inst, done func()) bool {
	if len(oc.queue) >= collectorSlots {
		return false
	}
	e := &collectEntry{in: in, done: done}
	for _, src := range in.Src {
		if src != trace.RegNone {
			e.pending = append(e.pending, int(src)%regFileBanks)
		}
	}
	oc.queue = append(oc.queue, e)
	return true
}

// Tick implements Unit: arbitrate register-bank reads (one per bank per
// cycle, oldest collector first), dispatch complete entries into the
// execution pipeline, then advance the pipeline itself.
func (oc *OperandCollector) Tick(cycle uint64) {
	oc.inner.Tick(cycle)

	var bankUsed [regFileBanks]bool
	remaining := oc.queue[:0]
	for _, e := range oc.queue {
		// Read as many pending operands as bank ports allow.
		keep := e.pending[:0]
		for _, b := range e.pending {
			if bankUsed[b] {
				oc.conflicts.Inc()
				keep = append(keep, b)
				continue
			}
			bankUsed[b] = true
		}
		e.pending = keep
		if len(e.pending) == 0 {
			if oc.inner.TryIssue(cycle, e.in, e.done) {
				oc.collected.Inc()
				continue // leaves the collector
			}
		}
		remaining = append(remaining, e)
	}
	oc.queue = remaining
}
