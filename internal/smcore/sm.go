package smcore

import (
	"fmt"

	"swiftsim/internal/config"
	"swiftsim/internal/engine"
	"swiftsim/internal/metrics"
	"swiftsim/internal/obs"
	"swiftsim/internal/trace"
)

// UnitSet supplies the execution units of each sub-core. Assemblies choose
// the modeling style per unit here: the detailed simulator installs
// cycle-accurate ALUPipelines and LDSTUnits, Swift-Sim-Basic swaps the ALUs
// for analytical models, Swift-Sim-Memory also swaps the LD/ST unit.
// Providers may return shared instances (e.g. one DP pipeline per two
// sub-cores, Table II's "DP:0.5x").
type UnitSet struct {
	// ALU returns the unit executing the given arithmetic class
	// (OpInt, OpSP, OpDP, OpSFU) for sub-core sub of SM smID.
	ALU func(smID, sub int, class trace.OpClass) Unit
	// LDST returns the load/store unit for sub-core sub of SM smID.
	LDST func(smID, sub int) Unit
	// ICache optionally returns a per-sub-core instruction cache; nil
	// runs without one (the hybrid configurations simplify it away).
	ICache func(smID, sub int) *ICache
	// ModelFrontEnd enables the detailed fetch stage: instructions are
	// fetched through the ICache into per-warp instruction buffers every
	// cycle before they become eligible for issue. The hybrid
	// configurations leave it off (another simplified module).
	ModelFrontEnd bool
	// Scheduler optionally installs a custom warp-scheduling policy per
	// sub-core, overriding the configuration's built-in policy — the
	// paper's new-warp-scheduler exploration hook. nil keeps the
	// configured GTO/LRR/oldest-first policy.
	Scheduler func(smID, sub int) Picker
}

// residentBlock tracks one thread block resident on an SM.
type residentBlock struct {
	sm        *SM
	index     int // block index within the kernel
	warps     []*Warp
	liveWarps int
	atBarrier int
	regs      int
	shmem     int
	// launchCycle is the assignment cycle, recorded only while tracing so
	// blockDone can emit the block's residency span.
	launchCycle uint64
}

func (b *residentBlock) barrierArrive() {
	b.atBarrier++
	b.maybeRelease()
}

func (b *residentBlock) maybeRelease() {
	if b.liveWarps > 0 && b.atBarrier >= b.liveWarps {
		b.atBarrier = 0
		for _, w := range b.warps {
			w.atBarrier = false
		}
	}
}

func (b *residentBlock) warpDone() {
	b.liveWarps--
	if b.liveWarps == 0 {
		b.sm.blockDone(b)
		return
	}
	// A warp exiting may satisfy a barrier its siblings wait on.
	b.maybeRelease()
}

// subCore is one warp-scheduler partition of an SM.
// Front-end parameters of the detailed configuration: per-warp
// instruction-buffer depth and fetches per cycle per sub-core.
const (
	ibufDepth     = 2
	fetchPerCycle = 2
)

type subCore struct {
	sm          *SM
	index       int
	warps       []*Warp
	units       [4]Unit // indexed by trace.OpInt..trace.OpSFU
	ldst        Unit
	icache      *ICache // nil when the configuration simplifies it away
	picker      Picker  // nil = built-in policy
	last        *Warp   // GTO greedy target
	cursor      int     // LRR rotation point
	fetchCursor int     // front-end round-robin point
	epoch       uint64  // scheduling round for allocation-free retries
}

// fetch runs the detailed front-end: fill per-warp instruction buffers
// through the instruction cache, round-robin, up to fetchPerCycle fetches.
func (sc *subCore) fetch(cycle uint64) {
	n := len(sc.warps)
	fetched := 0
	for i := 1; i <= n && fetched < fetchPerCycle; i++ {
		idx := (sc.fetchCursor + i) % n
		w := sc.warps[idx]
		if w == nil || !w.wantsFetch(ibufDepth) {
			continue
		}
		pc := w.insts[w.pc+w.ibuf].PC
		if sc.icache != nil && !sc.icache.Ready(pc, cycle) {
			continue
		}
		w.ibuf++
		fetched++
		sc.fetchCursor = idx
	}
}

// fetchPending reports whether some warp still needs front-end work.
func (sc *subCore) fetchPending() bool {
	for _, w := range sc.warps {
		if w != nil && w.wantsFetch(ibufDepth) {
			return true
		}
	}
	return false
}

// issue performs one scheduling round: pick a ready warp per the policy
// and dispatch its next instruction. Returns true if an instruction issued.
func (sc *subCore) issue(cycle uint64) bool {
	sc.epoch++
	if sc.picker != nil {
		return sc.issueCustom(cycle)
	}
	switch sc.sm.cfg.Scheduler {
	case config.GTO:
		if sc.last != nil && sc.last.issuable() && sc.dispatch(sc.last, cycle) {
			return true
		}
		return sc.issueOldest(cycle)
	case config.LRR:
		n := len(sc.warps)
		for i := 1; i <= n; i++ {
			w := sc.warps[(sc.cursor+i)%n]
			if w != nil && w.issuable() && sc.dispatch(w, cycle) {
				sc.cursor = (sc.cursor + i) % n
				return true
			}
		}
		return false
	default: // OldestFirst
		return sc.issueOldest(cycle)
	}
}

func (sc *subCore) issueOldest(cycle uint64) bool {
	// Repeatedly try candidates in age order; a warp whose unit is busy
	// does not block younger warps (the dispatch stage skips it). Failed
	// candidates are marked with the round's epoch instead of an
	// allocated set — this path runs every simulated cycle.
	for {
		var best *Warp
		for _, w := range sc.warps {
			if w == nil || w.triedEpoch == sc.epoch || !w.issuable() {
				continue
			}
			if best == nil || w.Age < best.Age {
				best = w
			}
		}
		if best == nil {
			return false
		}
		if sc.dispatch(best, cycle) {
			return true
		}
		best.triedEpoch = sc.epoch
	}
}

// dispatch hands w's next instruction to its unit. Control instructions
// (barrier, exit) retire in the scheduler itself.
func (sc *subCore) dispatch(w *Warp, cycle uint64) bool {
	in := w.next()
	switch {
	case in.Op == trace.OpBarrier:
		w.pc++
		w.consumeIBuf()
		w.atBarrier = true
		sc.sm.issued.Inc()
		sc.last = w
		w.block.barrierArrive()
		return true
	case in.Op == trace.OpExit:
		w.pc++
		w.consumeIBuf()
		w.exited = true
		sc.sm.issued.Inc()
		if sc.last == w {
			sc.last = nil
		}
		sc.maybeComplete(w)
		return true
	default:
		var u Unit
		if in.Op.IsMem() {
			u = sc.ldst
		} else {
			u = sc.units[in.Op]
		}
		if !u.TryIssue(cycle, in, sc.completionFn(w, in)) {
			return false
		}
		w.sb.set(in.Dst)
		w.outstanding++
		w.pc++
		w.consumeIBuf()
		sc.sm.issued.Inc()
		sc.last = w
		return true
	}
}

func (sc *subCore) completionFn(w *Warp, in *trace.Inst) func() {
	return func() {
		// A completing instruction may make the warp (or a sibling past a
		// barrier) issuable: re-activate the SM so the next cycle ticks it.
		if wake := sc.sm.wake; wake != nil {
			wake()
		}
		w.sb.clear(in.Dst)
		w.outstanding--
		sc.maybeComplete(w)
	}
}

func (sc *subCore) maybeComplete(w *Warp) {
	if w.exited && !w.done && w.outstanding == 0 && w.next() == nil {
		w.done = true
		w.block.warpDone()
	}
}

// anyIssuable reports whether some resident warp could issue (ignoring
// unit availability); it drives SM.Busy so the engine keeps ticking while
// forward progress is possible.
func (sc *subCore) anyIssuable() bool {
	for _, w := range sc.warps {
		if w != nil && w.issuable() {
			return true
		}
	}
	return false
}

func (sc *subCore) addWarp(w *Warp) error {
	for i, slot := range sc.warps {
		if slot == nil {
			sc.warps[i] = w
			return nil
		}
	}
	// Capacity is enforced by SM.CanAccept and validated at assembly time;
	// reaching here means the residency accounting diverged from the slot
	// state. Surface it as an error (via the Block Scheduler) so one bad
	// configuration fails its own run instead of killing the process.
	return fmt.Errorf("smcore: sub-core %d.%d warp slots exhausted", sc.sm.id, sc.index)
}

func (sc *subCore) removeWarp(w *Warp) {
	for i, slot := range sc.warps {
		if slot == w {
			sc.warps[i] = nil
			if sc.last == w {
				sc.last = nil
			}
			return
		}
	}
}

// SM is one streaming multiprocessor: sub-cores with warp schedulers,
// execution units, and residency accounting for blocks, warps, registers
// and shared memory.
type SM struct {
	id        int
	cfg       config.SM
	eng       engine.Context
	engDefers bool   // eng stages Defers (shard context); false = inline, skip the closure
	wake      func() // engine activation callback (nil when standalone)
	subcores  []*subCore
	unitList  []Unit // distinct units across all sub-cores
	blocks    []*residentBlock
	nextAge   uint64
	lastCycle uint64
	busyCache bool
	usedWarps int
	usedRegs  int
	usedShmem int

	// accounted is the number of engine iterations whose scheduler-stall
	// contribution has been recorded, either by an actual Tick or by
	// settle(). The engine skips ticking an idle SM; settle() reconstructs
	// the stall counts those skipped ticks would have produced, keeping
	// sm.stall bit-identical to the tick-everything engine.
	accounted uint64

	frontEnd bool

	onBlockDone func(sm *SM)

	// blockObs, when set, observes every finished block's (index, launch
	// cycle, end cycle). Sampled mode (internal/sim) uses it to measure
	// per-block durations for analytical extrapolation. Like onBlockDone it
	// is invoked from finishBlock, which runs in a serial engine phase
	// (inline serially, at the barrier in deterministic defer order when
	// sharded), so observers need no synchronization.
	blockObs func(index int, launch, end uint64)

	issued    *metrics.Counter
	stalls    *metrics.Counter
	blocksRun *metrics.Counter

	// tracing. trOn caches tr.Enabled(ModuleLevel); stallReasons is
	// SM-local (not a metrics counter — the metrics snapshot must be
	// byte-identical with tracing on, see the regress determinism oracle)
	// and is flushed as obs events by FlushTrace at end of run.
	tr           *obs.Tracer
	trTid        int32
	trOn         bool
	stallReasons [numStallReasons]uint64
}

// Stall-reason classification for the trace's stall summary. A stalled
// sub-core is attributed to the highest-priority reason that applies:
// waiting on memory/unit results, parked at a barrier, draining exited
// warps, else structural ("other": unit conflicts, scoreboard, empty).
const (
	stallMem = iota
	stallBarrier
	stallDrain
	stallOther
	numStallReasons
)

var stallReasonNames = [numStallReasons]string{"mem", "barrier", "drain", "other"}

// classifyStall attributes the sub-core's failed issue round to a reason.
// Only called while tracing at ModuleLevel.
func (sc *subCore) classifyStall() int {
	reason := stallOther
	for _, w := range sc.warps {
		if w == nil {
			continue
		}
		if w.outstanding > 0 {
			return stallMem
		}
		if w.atBarrier && reason > stallBarrier {
			reason = stallBarrier
		} else if w.exited && !w.done && reason > stallDrain {
			reason = stallDrain
		}
	}
	return reason
}

// SetTracer installs the SM's tracer (nil for off) and registers its
// trace track. Call before the simulation runs.
func (sm *SM) SetTracer(t *obs.Tracer) {
	sm.tr = t
	sm.trOn = t.Enabled(obs.ModuleLevel)
	if sm.trOn {
		sm.trTid = t.RegisterTrack(sm.Name())
	}
}

// FlushTrace emits the SM's accumulated stall-reason totals as obs
// counter events (cat "stall", in sub-core cycles). The simulator calls it
// once after the run; cycle is the final simulated cycle.
func (sm *SM) FlushTrace(cycle uint64) {
	if !sm.trOn {
		return
	}
	sm.settle()
	for i, n := range sm.stallReasons {
		if n == 0 {
			continue
		}
		sm.tr.Emit(obs.Event{Name: stallReasonNames[i], Cat: "stall", Ph: obs.PhaseCounter,
			Ts: cycle, Tid: sm.trTid, Arg1Name: "cycles", Arg1: n})
	}
}

// NewSM builds an SM with units supplied by us. onBlockDone is invoked
// whenever a resident block finishes (the Block Scheduler uses it to
// assign further blocks and detect kernel completion).
//
// NewSM validates that the unit set and configuration are satisfiable: every
// arithmetic class must resolve to a unit, the LD/ST provider must return a
// unit, and every sub-core must get at least one warp slot. Violations are
// reported as errors at assembly time rather than panics mid-simulation.
func NewSM(id int, cfg config.SM, eng engine.Context, us UnitSet, g *metrics.Gatherer, onBlockDone func(sm *SM)) (*SM, error) {
	if cfg.SubCores <= 0 {
		return nil, fmt.Errorf("smcore: SM%d: SubCores must be positive, got %d", id, cfg.SubCores)
	}
	if cfg.MaxWarps/cfg.SubCores < 1 {
		return nil, fmt.Errorf("smcore: SM%d: MaxWarps %d gives %d sub-cores no warp slots",
			id, cfg.MaxWarps, cfg.SubCores)
	}
	if us.ALU == nil || us.LDST == nil {
		return nil, fmt.Errorf("smcore: SM%d: unit set missing ALU or LDST provider", id)
	}
	// *engine.Engine runs Defer inline; only shard contexts (or other
	// staging wrappers) need blockDone's completion closure. Detecting the
	// serial engine here keeps the per-block hot path allocation free.
	_, directEng := eng.(*engine.Engine)
	sm := &SM{
		id:          id,
		cfg:         cfg,
		eng:         eng,
		engDefers:   eng != nil && !directEng,
		frontEnd:    us.ModelFrontEnd,
		onBlockDone: onBlockDone,
		issued:      g.Counter("sm.issued"),
		stalls:      g.Counter("sm.stall"),
		blocksRun:   g.Counter("sm.blocks"),
	}
	warpsPerSub := cfg.MaxWarps / cfg.SubCores
	addUnit := func(u Unit) {
		// Only cycle-accurate units enter the per-cycle tick list;
		// analytical units interact purely through scheduled events —
		// the mechanism behind the hybrid configurations' speed.
		if u == nil || u.Kind() != engine.CycleAccurate {
			return
		}
		for _, have := range sm.unitList {
			if have == u {
				return
			}
		}
		sm.unitList = append(sm.unitList, u)
	}
	for s := 0; s < cfg.SubCores; s++ {
		sc := &subCore{sm: sm, index: s, warps: make([]*Warp, warpsPerSub)}
		for _, class := range []trace.OpClass{trace.OpInt, trace.OpSP, trace.OpDP, trace.OpSFU} {
			u := us.ALU(id, s, class)
			if u == nil {
				return nil, fmt.Errorf("smcore: SM%d sub-core %d: no ALU unit for class %v", id, s, class)
			}
			sc.units[class] = u
			addUnit(u)
		}
		sc.ldst = us.LDST(id, s)
		if sc.ldst == nil {
			return nil, fmt.Errorf("smcore: SM%d sub-core %d: no LD/ST unit", id, s)
		}
		addUnit(sc.ldst)
		if us.ICache != nil {
			sc.icache = us.ICache(id, s)
		}
		if us.Scheduler != nil {
			sc.picker = us.Scheduler(id, s)
		}
		sm.subcores = append(sm.subcores, sc)
	}
	return sm, nil
}

// ID returns the SM's index.
func (sm *SM) ID() int { return sm.id }

// Name implements engine.Module.
func (sm *SM) Name() string { return fmt.Sprintf("SM%d", sm.id) }

// Kind implements engine.Module: the Warp Scheduler & Dispatch module is
// cycle-accurate in every Swift-Sim assembly in the paper.
func (sm *SM) Kind() engine.ModelKind { return engine.CycleAccurate }

// SetWake implements engine.WakeAware: the engine installs its activation
// callback so the SM can leave the per-cycle tick set while idle and be
// re-activated by completion events, block assignment, and barrier
// releases.
func (sm *SM) SetWake(wake func()) { sm.wake = wake }

// settle records the scheduler stalls the skipped ticks since the last
// accounting point would have produced. While the SM is out of the active
// set no warp is issuable (wake-ups arrive only through events, which
// re-activate it), so the tick-everything engine would have counted one
// stall per sub-core per visited cycle whenever blocks were resident. It
// must be called before anything changes len(sm.blocks) and at the start
// of each Tick.
func (sm *SM) settle() {
	if sm.eng == nil {
		return
	}
	now := sm.eng.TickedCycles()
	if now <= sm.accounted {
		return
	}
	if len(sm.blocks) > 0 {
		gap := now - sm.accounted
		sm.stalls.Add(uint64(len(sm.subcores)) * gap)
		if sm.trOn {
			// Attribute the reconstructed stalls the same way the ticks
			// would have: each sub-core's current blocked state held for
			// the whole gap (nothing changes while the SM is out of the
			// active set).
			for _, sc := range sm.subcores {
				sm.stallReasons[sc.classifyStall()] += gap
			}
		}
	}
	sm.accounted = now
}

// Busy implements engine.Ticker: the SM needs per-cycle evaluation while
// any warp could issue or any cycle-accurate unit holds in-flight work.
// When every resident warp is blocked on outstanding results, the engine
// may fast-forward to the next completion event. The value is computed at
// the end of each Tick (warp wake-ups between ticks arrive only through
// engine events, so it stays valid until the next tick).
func (sm *SM) Busy() bool { return sm.busyCache }

func (sm *SM) computeBusy() bool {
	for _, sc := range sm.subcores {
		if sc.anyIssuable() {
			return true
		}
	}
	for _, u := range sm.unitList {
		if u.Busy() {
			return true
		}
	}
	for _, sc := range sm.subcores {
		if sc.icache != nil && sc.icache.Busy(sm.lastCycle+1) {
			return true
		}
		if sm.frontEnd && sc.fetchPending() {
			return true
		}
	}
	return false
}

// Tick implements engine.Ticker: advance unit pipelines, then run one
// scheduling round per sub-core scheduler.
func (sm *SM) Tick(cycle uint64) {
	sm.settle()
	sm.lastCycle = cycle
	for _, u := range sm.unitList {
		u.Tick(cycle)
	}
	if sm.frontEnd {
		for _, sc := range sm.subcores {
			sc.fetch(cycle)
		}
	}
	for _, sc := range sm.subcores {
		for s := 0; s < sm.cfg.SchedulersPerSubCore; s++ {
			if !sc.issue(cycle) {
				if len(sm.blocks) > 0 {
					sm.stalls.Inc()
					if sm.trOn {
						sm.stallReasons[sc.classifyStall()]++
					}
				}
				break
			}
		}
	}
	sm.busyCache = sm.computeBusy()
	if sm.eng != nil {
		// This tick covers the engine iteration in progress (the engine
		// counts it after the tick phase completes).
		sm.accounted = sm.eng.TickedCycles() + 1
	}
}

// blockCost returns the warp count, register and shared-memory footprint
// of one block of k.
func blockCost(cfg config.SM, k *trace.Kernel) (warps, regs, shmem int) {
	warps = k.WarpsPerBlock()
	regs = k.RegsPerThread * k.Block.Count()
	shmem = k.SharedMemPerBlock
	return
}

// CanAccept reports whether the SM has residency resources for one more
// block of k.
func (sm *SM) CanAccept(k *trace.Kernel) bool {
	warps, regs, shmem := blockCost(sm.cfg, k)
	if len(sm.blocks) >= sm.cfg.MaxBlocks {
		return false
	}
	if sm.usedWarps+warps > sm.cfg.MaxWarps {
		return false
	}
	if sm.usedRegs+regs > sm.cfg.Registers {
		return false
	}
	if sm.usedShmem+shmem > sm.cfg.SharedMemBytes {
		return false
	}
	// Every sub-core must have free warp slots for its share.
	perSub := make([]int, sm.cfg.SubCores)
	for i := 0; i < warps; i++ {
		perSub[i%sm.cfg.SubCores]++
	}
	for s, need := range perSub {
		free := 0
		for _, slot := range sm.subcores[s].warps {
			if slot == nil {
				free++
			}
		}
		if free < need {
			return false
		}
	}
	return true
}

// AssignBlock makes block index of k resident, distributing its warps
// round-robin over the sub-cores. The caller must have checked CanAccept.
// An error means the SM's residency accounting disagreed with its warp-slot
// state; the block is unwound and the SM left usable.
func (sm *SM) AssignBlock(k *trace.Kernel, index int) error {
	sm.settle() // stall accounting up to here used the old resident set
	warps, regs, shmem := blockCost(sm.cfg, k)
	rb := &residentBlock{sm: sm, index: index, liveWarps: warps, regs: regs, shmem: shmem}
	bt := &k.Blocks[index]
	for wi := 0; wi < warps; wi++ {
		sm.nextAge++
		w := &Warp{
			ID:    sm.id*4096 + index*64 + wi,
			Age:   sm.nextAge,
			block: rb,
			insts: bt.Warps[wi],
		}
		if !sm.frontEnd {
			w.ibuf = -1 // instructions always available
		}
		rb.warps = append(rb.warps, w)
		if err := sm.subcores[wi%sm.cfg.SubCores].addWarp(w); err != nil {
			// Unwind the partially placed block.
			for pwi, pw := range rb.warps[:len(rb.warps)-1] {
				sm.subcores[pwi%sm.cfg.SubCores].removeWarp(pw)
			}
			return fmt.Errorf("smcore: SM%d block %d of kernel %s: %w", sm.id, index, k.Name, err)
		}
	}
	sm.blocks = append(sm.blocks, rb)
	sm.usedWarps += warps
	sm.usedRegs += regs
	sm.usedShmem += shmem
	sm.blocksRun.Inc()
	if (sm.trOn || sm.blockObs != nil) && sm.eng != nil {
		rb.launchCycle = sm.eng.Cycle()
	}
	sm.busyCache = true // newly resident warps have work
	if sm.wake != nil {
		sm.wake()
	}
	return nil
}

// blockDone releases a finished block's resources.
func (sm *SM) blockDone(rb *residentBlock) {
	sm.settle() // stall accounting up to here included rb
	for i, b := range sm.blocks {
		if b == rb {
			sm.blocks = append(sm.blocks[:i], sm.blocks[i+1:]...)
			break
		}
	}
	for wi, w := range rb.warps {
		sm.subcores[wi%sm.cfg.SubCores].removeWarp(w)
	}
	sm.usedWarps -= rb.liveWarpsTotal()
	sm.usedRegs -= rb.regs
	sm.usedShmem -= rb.shmem
	// The block-completion notification (and its trace span) escapes the
	// SM: onBlockDone wakes the shared Block Scheduler. During a parallel
	// shard pass that is a cross-shard side effect, so it goes through the
	// engine context's Defer — applied at the deterministic barrier in
	// registration order. In serial mode Defer would run the closure
	// inline anyway, so skip the per-block allocation and call directly.
	// All captured values (launch cycle, index) are already frozen here.
	if sm.engDefers {
		launchCycle, index := rb.launchCycle, rb.index
		sm.eng.Defer(func() { sm.finishBlock(launchCycle, index) })
	} else {
		sm.finishBlock(rb.launchCycle, rb.index)
	}
}

// finishBlock emits the block's trace span and notifies the Block
// Scheduler. In sharded assemblies it runs at the engine barrier (via
// Defer from blockDone); serially it runs inline.
func (sm *SM) finishBlock(launchCycle uint64, index int) {
	if sm.trOn && sm.eng != nil {
		sm.tr.Emit(obs.Event{Name: "block", Cat: "sm", Ph: obs.PhaseSpan,
			Ts: launchCycle, Dur: sm.eng.Cycle() - launchCycle, Tid: sm.trTid,
			Arg1Name: "index", Arg1: uint64(index)})
	}
	if sm.blockObs != nil && sm.eng != nil {
		sm.blockObs(index, launchCycle, sm.eng.Cycle())
	}
	if sm.onBlockDone != nil {
		sm.onBlockDone(sm)
	}
}

// SetBlockObserver installs fn to be called for every block the SM
// finishes, with the block's kernel-local index and its launch/end cycles.
// nil disables observation. Call before the simulation runs; installing an
// observer makes AssignBlock record launch cycles even without tracing.
func (sm *SM) SetBlockObserver(fn func(index int, launch, end uint64)) {
	sm.blockObs = fn
}

func (b *residentBlock) liveWarpsTotal() int { return len(b.warps) }

// ResidentBlocks returns the number of blocks currently resident (for
// tests and occupancy metrics).
func (sm *SM) ResidentBlocks() int { return len(sm.blocks) }

// BlocksPerSM returns how many blocks of k fit concurrently on one SM
// under cfg's residency limits (the classic occupancy calculation). It
// returns at least 1 for any kernel that fits at all, and 0 for kernels
// that can never be scheduled.
func BlocksPerSM(cfg config.SM, k *trace.Kernel) int {
	warps, regs, shmem := blockCost(cfg, k)
	n := cfg.MaxBlocks
	if warps > 0 {
		if byWarps := cfg.MaxWarps / warps; byWarps < n {
			n = byWarps
		}
	}
	if regs > 0 {
		if byRegs := cfg.Registers / regs; byRegs < n {
			n = byRegs
		}
	}
	if shmem > 0 {
		if byShmem := cfg.SharedMemBytes / shmem; byShmem < n {
			n = byShmem
		}
	}
	if n < 0 {
		n = 0
	}
	return n
}

// ValidateKernel checks that at least one block of k can ever become
// resident on an SM under cfg. Unsatisfiable kernels previously surfaced
// as engine deadlocks (or, with corrupted accounting, warp-slot panics)
// deep inside a run; validating at assembly time turns them into a clear
// per-job configuration error.
func ValidateKernel(cfg config.SM, k *trace.Kernel) error {
	if BlocksPerSM(cfg, k) >= 1 {
		return nil
	}
	warps, regs, shmem := blockCost(cfg, k)
	return fmt.Errorf(
		"smcore: kernel %s can never be scheduled: one block needs %d warps, %d registers, %dB shared memory; an SM offers %d warps, %d registers, %dB",
		k.Name, warps, regs, shmem, cfg.MaxWarps, cfg.Registers, cfg.SharedMemBytes)
}
