package smcore

import (
	"swiftsim/internal/engine"
	"swiftsim/internal/metrics"
)

// icacheLineBytes is the instruction-cache line size (8 instructions at 8
// bytes per trace PC step).
const icacheLineBytes = 64

// ICache models the per-sub-core instruction cache of the detailed
// simulator: the fetch of each issued PC must hit, misses stall the warp
// for the fill latency, and capacity is managed FIFO. The paper's
// Swift-Sim-Basic explicitly simplifies the instruction cache away, so the
// hybrid configurations run without one.
type ICache struct {
	name        string
	capacity    int
	missLatency uint64
	lines       map[uint64]uint64 // line -> cycle at which it is usable
	order       []uint64          // FIFO eviction order
	lastPending uint64            // latest outstanding fill completion

	hits   *metrics.Counter
	misses *metrics.Counter
}

// NewICache builds an instruction cache with the given capacity in lines
// and miss (fill) latency in cycles.
func NewICache(name string, capacityLines, missLatency int, g *metrics.Gatherer) *ICache {
	if capacityLines < 1 {
		capacityLines = 1
	}
	return &ICache{
		name:        name,
		capacity:    capacityLines,
		missLatency: uint64(missLatency),
		lines:       make(map[uint64]uint64, capacityLines),
		hits:        g.Counter(name + ".hit"),
		misses:      g.Counter(name + ".miss"),
	}
}

// Name implements engine.Module.
func (ic *ICache) Name() string { return ic.name }

// Kind implements engine.Module.
func (ic *ICache) Kind() engine.ModelKind { return engine.CycleAccurate }

// Busy reports whether a fill is outstanding, so the engine keeps ticking
// until stalled warps can fetch again.
func (ic *ICache) Busy(cycle uint64) bool { return cycle < ic.lastPending }

// prefetchDepth is how many sequential lines the stream prefetcher runs
// ahead of the fetch PC.
const prefetchDepth = 2

// Ready reports whether the instruction at pc can be fetched at the given
// cycle. A miss starts the fill and returns false; the caller retries
// until the fill completes. Sequential next lines are prefetched, as
// hardware instruction caches stream code.
func (ic *ICache) Ready(pc, cycle uint64) bool {
	line := pc / icacheLineBytes
	for d := uint64(1); d <= prefetchDepth; d++ {
		ic.fill(line+d, cycle)
	}
	if readyAt, ok := ic.lines[line]; ok {
		if cycle >= readyAt {
			ic.hits.Inc()
			return true
		}
		return false // fill in flight
	}
	ic.misses.Inc()
	ic.fill(line, cycle)
	return false
}

// fill starts fetching a line if it is absent.
func (ic *ICache) fill(line, cycle uint64) {
	if _, ok := ic.lines[line]; ok {
		return
	}
	if len(ic.lines) >= ic.capacity {
		victim := ic.order[0]
		ic.order = ic.order[1:]
		delete(ic.lines, victim)
	}
	readyAt := cycle + ic.missLatency
	ic.lines[line] = readyAt
	ic.order = append(ic.order, line)
	if readyAt > ic.lastPending {
		ic.lastPending = readyAt
	}
}
