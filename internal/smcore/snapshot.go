// Snapshot support (snap.Stateful) for the SM core modules. All state is
// captured at quiescent kernel boundaries: no blocks are resident, no warp
// is in flight, and every pipeline register is empty — what remains is the
// timing bookkeeping that carries across kernels (ages, issue-port cursors,
// instruction-cache contents, stall accounting).
package smcore

import (
	"fmt"

	"swiftsim/internal/snap"
)

// SnapSave implements snap.Stateful.
func (sm *SM) SnapSave(w *snap.Writer) {
	if len(sm.blocks) != 0 || sm.usedWarps != 0 || sm.usedRegs != 0 || sm.usedShmem != 0 || sm.busyCache {
		w.Fail(fmt.Errorf("%w: SM%d has %d resident blocks", snap.ErrNotQuiescent, sm.id, len(sm.blocks)))
		return
	}
	w.U64(sm.nextAge)
	w.U64(sm.lastCycle)
	w.U64(sm.accounted)
	w.U64(uint64(len(sm.subcores)))
	for _, sc := range sm.subcores {
		for _, warp := range sc.warps {
			if warp != nil {
				w.Fail(fmt.Errorf("%w: SM%d sub-core %d holds a warp", snap.ErrNotQuiescent, sm.id, sc.index))
				return
			}
		}
		w.U64(uint64(sc.cursor))
		w.U64(uint64(sc.fetchCursor))
		w.U64(sc.epoch)
		w.Bool(sc.icache != nil)
		if sc.icache != nil {
			sc.icache.snapSave(w)
		}
	}
	w.U64(uint64(len(sm.unitList)))
	for _, u := range sm.unitList {
		if s, ok := u.(snap.Stateful); ok {
			s.SnapSave(w)
		}
	}
}

// SnapLoad implements snap.Stateful.
func (sm *SM) SnapLoad(r *snap.Reader) error {
	sm.nextAge = r.U64()
	sm.lastCycle = r.U64()
	sm.accounted = r.U64()
	if n := r.U64(); n != uint64(len(sm.subcores)) {
		r.Failf("SM%d: snapshot has %d sub-cores, assembly has %d", sm.id, n, len(sm.subcores))
		return r.Err()
	}
	for _, sc := range sm.subcores {
		sc.cursor = int(r.U64())
		sc.fetchCursor = int(r.U64())
		sc.epoch = r.U64()
		if has := r.Bool(); has != (sc.icache != nil) {
			r.Failf("SM%d sub-core %d: instruction-cache presence mismatch", sm.id, sc.index)
			return r.Err()
		}
		if sc.icache != nil {
			if err := sc.icache.snapLoad(r); err != nil {
				return err
			}
		}
	}
	if n := r.U64(); n != uint64(len(sm.unitList)) {
		r.Failf("SM%d: snapshot has %d units, assembly has %d", sm.id, n, len(sm.unitList))
		return r.Err()
	}
	for _, u := range sm.unitList {
		if s, ok := u.(snap.Stateful); ok {
			if err := s.SnapLoad(r); err != nil {
				return err
			}
		}
	}
	return r.Err()
}

// SnapSave implements snap.Stateful. The cursor (round-robin start SM) is
// the scheduler's only cross-kernel state; launch bookkeeping is reset by
// LaunchKernel.
func (bs *BlockScheduler) SnapSave(w *snap.Writer) {
	if !bs.KernelDone() {
		w.Fail(fmt.Errorf("%w: block scheduler mid-kernel (%d/%d blocks)", snap.ErrNotQuiescent,
			bs.done, len(bs.kernel.Blocks)))
		return
	}
	w.U64(uint64(bs.cursor))
}

// SnapLoad implements snap.Stateful.
func (bs *BlockScheduler) SnapLoad(r *snap.Reader) error {
	cursor := r.U64()
	if len(bs.sms) > 0 && cursor >= uint64(len(bs.sms)) {
		r.Failf("block scheduler cursor %d out of range for %d SMs", cursor, len(bs.sms))
		return r.Err()
	}
	bs.cursor = int(cursor)
	return r.Err()
}

// SnapSave implements snap.Stateful: the pipeline registers must be empty
// at a quiescent point; only the issue port's next-free cycle persists.
func (u *ALUPipeline) SnapSave(w *snap.Writer) {
	if u.occupancy != 0 {
		w.Fail(fmt.Errorf("%w: pipeline %s holds %d in-flight instructions", snap.ErrNotQuiescent, u.name, u.occupancy))
		return
	}
	w.U64(u.nextIssue)
}

// SnapLoad implements snap.Stateful.
func (u *ALUPipeline) SnapLoad(r *snap.Reader) error {
	u.nextIssue = r.U64()
	return r.Err()
}

// SnapSave implements snap.Stateful: collector slots must be empty; the
// inner unit's state follows inline.
func (oc *OperandCollector) SnapSave(w *snap.Writer) {
	if len(oc.queue) != 0 {
		w.Fail(fmt.Errorf("%w: operand collector %s holds %d entries", snap.ErrNotQuiescent, oc.name, len(oc.queue)))
		return
	}
	if s, ok := oc.inner.(snap.Stateful); ok {
		s.SnapSave(w)
	}
}

// SnapLoad implements snap.Stateful.
func (oc *OperandCollector) SnapLoad(r *snap.Reader) error {
	if s, ok := oc.inner.(snap.Stateful); ok {
		return s.SnapLoad(r)
	}
	return r.Err()
}

// SnapSave implements snap.Stateful: the LD/ST unit has no cross-kernel
// timing state — it only checks that no memory instruction is in flight.
func (u *LDSTUnit) SnapSave(w *snap.Writer) {
	if len(u.queue) != 0 {
		w.Fail(fmt.Errorf("%w: LD/ST unit %s holds %d instructions", snap.ErrNotQuiescent, u.name, len(u.queue)))
	}
}

// SnapLoad implements snap.Stateful.
func (u *LDSTUnit) SnapLoad(r *snap.Reader) error { return r.Err() }

// snapSave serializes the instruction cache deterministically via its FIFO
// order slice (map iteration order must never reach the snapshot bytes).
func (ic *ICache) snapSave(w *snap.Writer) {
	w.U64(ic.lastPending)
	w.U64(uint64(len(ic.order)))
	for _, line := range ic.order {
		w.U64(line)
		w.U64(ic.lines[line])
	}
}

// snapLoad restores the instruction cache's lines and FIFO order.
func (ic *ICache) snapLoad(r *snap.Reader) error {
	ic.lastPending = r.U64()
	n := r.Count(16)
	if n > ic.capacity {
		r.Failf("icache %s: %d lines exceed capacity %d", ic.name, n, ic.capacity)
		return r.Err()
	}
	ic.lines = make(map[uint64]uint64, n)
	ic.order = ic.order[:0]
	for i := 0; i < n; i++ {
		line := r.U64()
		ready := r.U64()
		if r.Err() != nil {
			return r.Err()
		}
		if _, dup := ic.lines[line]; dup {
			r.Failf("icache %s: duplicate line %#x", ic.name, line)
			return r.Err()
		}
		ic.lines[line] = ready
		ic.order = append(ic.order, line)
	}
	return r.Err()
}
