package smcore

import (
	"swiftsim/internal/engine"
	"swiftsim/internal/metrics"
	"swiftsim/internal/trace"
)

// BlockScheduler is the GPU-level CTA scheduler: it distributes the thread
// blocks of the running kernel across SMs as residency resources free up,
// and detects kernel completion. The Metrics Gatherer reads total
// simulation cycles from here (paper §III-C).
type BlockScheduler struct {
	sms    []*SM
	wake   func() // engine activation callback (nil when standalone)
	kernel *trace.Kernel
	next   int // next block to assign
	done   int // completed blocks
	cursor int // round-robin start SM
	err    error

	kernelsRun  *metrics.Counter
	blocksTotal *metrics.Counter
}

// NewBlockScheduler builds a scheduler over the given SMs. Wire each SM's
// onBlockDone to (*BlockScheduler).BlockDone.
func NewBlockScheduler(sms []*SM, g *metrics.Gatherer) *BlockScheduler {
	return &BlockScheduler{
		sms:         sms,
		kernelsRun:  g.Counter("gpu.kernels"),
		blocksTotal: g.Counter("gpu.blocks"),
	}
}

// LaunchKernel starts distributing k's blocks. Any previous kernel must
// have completed.
func (bs *BlockScheduler) LaunchKernel(k *trace.Kernel) {
	bs.kernel = k
	bs.next = 0
	bs.done = 0
	bs.kernelsRun.Inc()
	if bs.wake != nil {
		bs.wake() // distribute the new kernel's blocks at the next tick
	}
}

// SetWake implements engine.WakeAware. The scheduler only has work right
// after a kernel launch or a block completion, so it wakes itself at those
// two points and otherwise stays out of the engine's active set.
func (bs *BlockScheduler) SetWake(wake func()) { bs.wake = wake }

// KernelDone reports whether every block of the current kernel completed
// (or the kernel was aborted by an assignment error; check Err).
func (bs *BlockScheduler) KernelDone() bool {
	return bs.kernel == nil || bs.done == len(bs.kernel.Blocks)
}

// Err returns the first block-assignment error, if any. A non-nil error
// means the current kernel was aborted: KernelDone reports true so the
// engine run unwinds, and the caller must treat the kernel as failed. The
// error is sticky across LaunchKernel calls.
func (bs *BlockScheduler) Err() error { return bs.err }

// BlockDone records one finished block; SMs call it via their onBlockDone
// hook.
func (bs *BlockScheduler) BlockDone(*SM) {
	bs.done++
	bs.blocksTotal.Inc()
	if bs.wake != nil {
		bs.wake() // freed residency may admit further blocks
	}
}

// Name implements engine.Module.
func (bs *BlockScheduler) Name() string { return "BlockScheduler" }

// Kind implements engine.Module.
func (bs *BlockScheduler) Kind() engine.ModelKind { return engine.CycleAccurate }

// Busy implements engine.Ticker. Assignment only unblocks when a block
// completes, which is always an engine event, and the engine ticks every
// module on event cycles — so the scheduler never needs to force ticking
// and can let the engine fast-forward.
func (bs *BlockScheduler) Busy() bool { return false }

// Tick implements engine.Ticker: assign as many pending blocks as fit,
// round-robin over SMs. An assignment error aborts the kernel (recorded in
// Err) instead of panicking, so the enclosing simulation can fail its own
// job while sibling jobs in a parallel sweep continue.
func (bs *BlockScheduler) Tick(uint64) {
	if bs.kernel == nil || bs.err != nil {
		return
	}
	for bs.next < len(bs.kernel.Blocks) {
		assigned := false
		for i := 0; i < len(bs.sms) && bs.next < len(bs.kernel.Blocks); i++ {
			sm := bs.sms[(bs.cursor+i)%len(bs.sms)]
			if sm.CanAccept(bs.kernel) {
				if err := sm.AssignBlock(bs.kernel, bs.next); err != nil {
					bs.err = err
					bs.kernel = nil // abort: KernelDone turns true
					return
				}
				bs.next++
				bs.cursor = (bs.cursor + i + 1) % len(bs.sms)
				assigned = true
			}
		}
		if !assigned {
			return
		}
	}
}
