package smcore

import (
	"swiftsim/internal/config"
	"swiftsim/internal/engine"
	"swiftsim/internal/metrics"
	"swiftsim/internal/trace"
)

// BlockScheduler is the GPU-level CTA scheduler: it distributes the thread
// blocks of the running kernel across SMs as residency resources free up,
// and detects kernel completion. The Metrics Gatherer reads total
// simulation cycles from here (paper §III-C).
type BlockScheduler struct {
	sms    []*SM
	wake   func() // engine activation callback (nil when standalone)
	kernel *trace.Kernel
	next   int // next block to assign
	done   int // completed blocks
	cursor int // round-robin start SM
	err    error

	kernelsRun  *metrics.Counter
	blocksTotal *metrics.Counter
}

// NewBlockScheduler builds a scheduler over the given SMs. Wire each SM's
// onBlockDone to (*BlockScheduler).BlockDone.
func NewBlockScheduler(sms []*SM, g *metrics.Gatherer) *BlockScheduler {
	return &BlockScheduler{
		sms:         sms,
		kernelsRun:  g.Counter("gpu.kernels"),
		blocksTotal: g.Counter("gpu.blocks"),
	}
}

// LaunchKernel starts distributing k's blocks. Any previous kernel must
// have completed.
func (bs *BlockScheduler) LaunchKernel(k *trace.Kernel) {
	bs.kernel = k
	bs.next = 0
	bs.done = 0
	bs.kernelsRun.Inc()
	if bs.wake != nil {
		bs.wake() // distribute the new kernel's blocks at the next tick
	}
}

// SetWake implements engine.WakeAware. The scheduler only has work right
// after a kernel launch or a block completion, so it wakes itself at those
// two points and otherwise stays out of the engine's active set.
func (bs *BlockScheduler) SetWake(wake func()) { bs.wake = wake }

// KernelDone reports whether every block of the current kernel completed
// (or the kernel was aborted by an assignment error; check Err).
func (bs *BlockScheduler) KernelDone() bool {
	return bs.kernel == nil || bs.done == len(bs.kernel.Blocks)
}

// Err returns the first block-assignment error, if any. A non-nil error
// means the current kernel was aborted: KernelDone reports true so the
// engine run unwinds, and the caller must treat the kernel as failed. The
// error is sticky across LaunchKernel calls.
func (bs *BlockScheduler) Err() error { return bs.err }

// BlockDone records one finished block; SMs call it via their onBlockDone
// hook.
func (bs *BlockScheduler) BlockDone(*SM) {
	bs.done++
	bs.blocksTotal.Inc()
	if bs.wake != nil {
		bs.wake() // freed residency may admit further blocks
	}
}

// Name implements engine.Module.
func (bs *BlockScheduler) Name() string { return "BlockScheduler" }

// Kind implements engine.Module.
func (bs *BlockScheduler) Kind() engine.ModelKind { return engine.CycleAccurate }

// Busy implements engine.Ticker. Assignment only unblocks when a block
// completes, which is always an engine event, and the engine ticks every
// module on event cycles — so the scheduler never needs to force ticking
// and can let the engine fast-forward.
func (bs *BlockScheduler) Busy() bool { return false }

// SelectSampleBlocks picks the representative block subset of one kernel
// launch for sampled simulation: the entire first wave (every block that
// would be concurrently resident at launch under cfg's occupancy limits on
// numSMs SMs — cold-cache behavior and launch contention must be measured,
// not modeled), plus one or more *contiguous windows* of one-and-a-half
// waves each from the tail. A window's blocks execute concurrently at full
// occupancy with their grid neighbors, so the measured window carries the
// same contention, warmed-cache hit rates, and neighbor locality (stencil
// halos, shared tiles) the unsimulated waves would have seen — scattered
// single-block samples run under-occupied next to strangers and
// systematically mis-price both effects. The extra half wave is pressure:
// while it drains, the window's first completions happen with blocks still
// pending, i.e. at sustained full occupancy, which is exactly the
// steady-state drain rate analytic.ExtrapolateBlocks prices the
// unsimulated remainder with (a bare one-wave window ends in rundown — the
// machine empties out and the surviving blocks speed up — biasing every
// completion it measures).
//
// The default is one window; frac grows the sample (round(frac×tail/wlen)
// windows, capped so windows never overlap), and the windows are
// stratified across the tail at seed-jittered offsets so the sample tracks
// index-dependent behavior drift (wavefront apps).
//
// The returned indices are strictly increasing, always include index 0,
// and are a pure function of (cfg, k, numSMs, frac, seed) — the selection
// is deterministic and reproducible across hosts and thread counts.
// Kernels whose tail is no larger than one window are returned whole.
func SelectSampleBlocks(cfg config.SM, k *trace.Kernel, numSMs int, frac float64, seed uint64) []int {
	n := len(k.Blocks)
	wave := BlocksPerSM(cfg, k) * numSMs
	if wave < 1 {
		wave = 1
	}
	wlen := wave + (wave+1)/2
	tail := n - wave
	if tail <= wlen {
		all := make([]int, n)
		for i := range all {
			all[i] = i
		}
		return all
	}
	win := int(float64(tail)*frac/float64(wlen) + 0.5)
	if win < 1 {
		win = 1
	}
	if max := tail / wlen; win > max {
		win = max
	}
	out := make([]int, 0, wave+win*wlen)
	for i := 0; i < wave; i++ {
		out = append(out, i)
	}
	// One stratum per window; win ≤ tail/wlen guarantees every stratum is
	// at least one window long, so jittered windows stay inside their
	// stratum and never overlap.
	for s := 0; s < win; s++ {
		lo := wave + s*tail/win
		hi := wave + (s+1)*tail/win
		start := lo
		if slack := hi - lo - wlen; slack > 0 {
			start += int(sampleJitter(seed, uint64(s)) % uint64(slack+1))
		}
		for i := 0; i < wlen; i++ {
			out = append(out, start+i)
		}
	}
	return out
}

// sampleJitter derives a per-stratum pseudo-random offset from the sampling
// seed (splitmix64 finalizer — deterministic, well-mixed, dependency-free).
func sampleJitter(seed, stratum uint64) uint64 {
	z := seed + 0x9e3779b97f4a7c15*(stratum+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Tick implements engine.Ticker: assign as many pending blocks as fit,
// round-robin over SMs. An assignment error aborts the kernel (recorded in
// Err) instead of panicking, so the enclosing simulation can fail its own
// job while sibling jobs in a parallel sweep continue.
func (bs *BlockScheduler) Tick(uint64) {
	if bs.kernel == nil || bs.err != nil {
		return
	}
	for bs.next < len(bs.kernel.Blocks) {
		assigned := false
		for i := 0; i < len(bs.sms) && bs.next < len(bs.kernel.Blocks); i++ {
			sm := bs.sms[(bs.cursor+i)%len(bs.sms)]
			if sm.CanAccept(bs.kernel) {
				if err := sm.AssignBlock(bs.kernel, bs.next); err != nil {
					bs.err = err
					bs.kernel = nil // abort: KernelDone turns true
					return
				}
				bs.next++
				bs.cursor = (bs.cursor + i + 1) % len(bs.sms)
				assigned = true
			}
		}
		if !assigned {
			return
		}
	}
}
