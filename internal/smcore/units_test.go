package smcore

import (
	"sort"
	"testing"
	"testing/quick"

	"swiftsim/internal/metrics"
	"swiftsim/internal/trace"
)

func TestScoreboard(t *testing.T) {
	var sb scoreboard
	if sb.busy(5) {
		t.Fatal("fresh scoreboard busy")
	}
	sb.set(5)
	if !sb.busy(5) {
		t.Fatal("set register not busy")
	}
	sb.set(200)
	if !sb.busy(200) {
		t.Fatal("high register not tracked")
	}
	sb.clear(5)
	if sb.busy(5) || !sb.busy(200) {
		t.Fatal("clear affected wrong register")
	}
	// Register 0 (RegNone) is never tracked.
	sb.set(trace.RegNone)
	if sb.busy(trace.RegNone) {
		t.Fatal("RegNone tracked")
	}
}

func TestScoreboardReady(t *testing.T) {
	var sb scoreboard
	in := &trace.Inst{Dst: 3, Src: [2]trace.Reg{1, 2}}
	if !sb.ready(in) {
		t.Fatal("independent instruction not ready")
	}
	sb.set(1)
	if sb.ready(in) {
		t.Fatal("RAW hazard missed")
	}
	sb.clear(1)
	sb.set(3)
	if sb.ready(in) {
		t.Fatal("WAW hazard missed")
	}
}

// TestQuickScoreboard: set/clear round-trips for any register.
func TestQuickScoreboard(t *testing.T) {
	f := func(regs []uint8) bool {
		var sb scoreboard
		for _, r := range regs {
			sb.set(trace.Reg(r))
			if r != 0 && !sb.busy(trace.Reg(r)) {
				return false
			}
			sb.clear(trace.Reg(r))
			if sb.busy(trace.Reg(r)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCoalesceFullyCoalesced(t *testing.T) {
	// 32 consecutive fp32 words span 4 sectors of 32 B.
	addrs := make([]uint64, 32)
	for i := range addrs {
		addrs[i] = 0x1000 + uint64(i)*4
	}
	got := Coalesce(addrs, 32)
	if len(got) != 4 {
		t.Fatalf("coalesced sectors = %d, want 4", len(got))
	}
	want := []uint64{0x1000, 0x1020, 0x1040, 0x1060}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("sector %d = %#x, want %#x", i, got[i], want[i])
		}
	}
}

func TestCoalesceBroadcast(t *testing.T) {
	addrs := make([]uint64, 32)
	for i := range addrs {
		addrs[i] = 0x2008
	}
	got := Coalesce(addrs, 32)
	if len(got) != 1 || got[0] != 0x2000 {
		t.Fatalf("broadcast coalesce = %v", got)
	}
}

func TestCoalesceScattered(t *testing.T) {
	addrs := make([]uint64, 32)
	for i := range addrs {
		addrs[i] = uint64(i) * 512 // all distinct sectors
	}
	if got := Coalesce(addrs, 32); len(got) != 32 {
		t.Fatalf("scattered coalesce = %d sectors, want 32", len(got))
	}
}

// TestQuickCoalesce: outputs are unique, sector-aligned, and cover every
// input address.
func TestQuickCoalesce(t *testing.T) {
	f := func(raw []uint32) bool {
		if len(raw) == 0 {
			return true
		}
		addrs := make([]uint64, len(raw))
		for i, r := range raw {
			addrs[i] = uint64(r)
		}
		out := Coalesce(addrs, 32)
		seen := map[uint64]bool{}
		for _, s := range out {
			if s%32 != 0 || seen[s] {
				return false
			}
			seen[s] = true
		}
		for _, a := range addrs {
			if !seen[a&^31] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSharedBankConflicts(t *testing.T) {
	conflictFree := make([]uint64, 32)
	for i := range conflictFree {
		conflictFree[i] = uint64(i) * 4
	}
	if got := SharedBankConflicts(conflictFree); got != 1 {
		t.Errorf("conflict-free degree = %d, want 1", got)
	}
	twoWay := make([]uint64, 32)
	for i := range twoWay {
		twoWay[i] = uint64(i%16) * 4 // pairs share banks
	}
	if got := SharedBankConflicts(twoWay); got != 2 {
		t.Errorf("two-way degree = %d, want 2", got)
	}
	broadcast := make([]uint64, 32)
	if got := SharedBankConflicts(broadcast); got != 32 {
		t.Errorf("broadcast degree = %d, want 32", got)
	}
}

func TestALUPipelineLatency(t *testing.T) {
	g := metrics.New()
	u := NewALUPipeline("alu.test", 4, 2, 1, g)
	in := &trace.Inst{Op: trace.OpInt, ActiveMask: 1}
	completedAt := uint64(0)
	u.Tick(10)
	if !u.TryIssue(10, in, func() {}) {
		t.Fatal("fresh pipeline refused issue")
	}
	for c := uint64(11); c < 20; c++ {
		wasBusy := u.Busy()
		u.Tick(c)
		if wasBusy && !u.Busy() && completedAt == 0 {
			completedAt = c
		}
	}
	if completedAt != 14 {
		t.Errorf("writeback at %d, want 14 (issue 10 + latency 4)", completedAt)
	}
	if g.Value("alu.test.issued") != 1 {
		t.Errorf("issued = %d, want 1", g.Value("alu.test.issued"))
	}
}

func TestALUPipelineInitiationInterval(t *testing.T) {
	g := metrics.New()
	u := NewALUPipeline("alu.test", 4, 2, 4, g)
	in := &trace.Inst{Op: trace.OpInt, ActiveMask: 1}
	u.Tick(0)
	if !u.TryIssue(0, in, func() {}) {
		t.Fatal("first issue refused")
	}
	u.Tick(1)
	if u.TryIssue(1, in, func() {}) {
		t.Fatal("issue accepted during initiation interval")
	}
	if g.Value("alu.test.port_stall") != 1 {
		t.Errorf("port_stall = %d, want 1", g.Value("alu.test.port_stall"))
	}
	u.Tick(2)
	if !u.TryIssue(2, in, func() {}) {
		t.Fatal("issue refused after initiation interval")
	}
}

func TestALUPipelineWritebackOrder(t *testing.T) {
	// Issue one instruction per cycle (II=1, latency 2) with per-cycle
	// ticking, as the SM does: writebacks come back in order, one per
	// cycle, at issue+latency.
	g := metrics.New()
	u := NewALUPipeline("alu.test", 2, 1, 1, g)
	in := &trace.Inst{Op: trace.OpInt, ActiveMask: 1}
	var order []int
	var wbCycles []uint64
	for c := uint64(0); c < 10; c++ {
		before := len(order)
		u.Tick(c)
		for range order[before:] {
			wbCycles = append(wbCycles, c)
		}
		if c < 3 {
			i := int(c)
			if !u.TryIssue(c, in, func() { order = append(order, i) }) {
				t.Fatalf("issue %d refused", i)
			}
		}
	}
	if len(order) != 3 || !sort.IntsAreSorted(order) {
		t.Fatalf("writeback order = %v", order)
	}
	want := []uint64{2, 3, 4}
	for i := range want {
		if wbCycles[i] != want[i] {
			t.Fatalf("writeback cycles = %v, want %v", wbCycles, want)
		}
	}
	if u.Busy() {
		t.Error("pipeline busy after draining")
	}
}

func TestALUPipelineParameterClamping(t *testing.T) {
	g := metrics.New()
	u := NewALUPipeline("alu.test", 0, 0, 0, g)
	if u.interval != 1 || len(u.stages) != 1 {
		t.Errorf("clamping failed: interval=%d stages=%d", u.interval, len(u.stages))
	}
}
