package smcore

import (
	"testing"

	"swiftsim/internal/metrics"
)

func TestICacheMissThenHit(t *testing.T) {
	g := metrics.New()
	ic := NewICache("ic", 8, 40, g)
	if ic.Ready(0, 0) {
		t.Fatal("cold fetch ready")
	}
	if ic.Ready(0, 10) {
		t.Fatal("fetch ready before fill completes")
	}
	if !ic.Ready(0, 40) {
		t.Fatal("fetch not ready after fill latency")
	}
	if g.Value("ic.miss") != 1 {
		t.Errorf("misses = %d, want 1 (in-flight retries are not misses)", g.Value("ic.miss"))
	}
	if g.Value("ic.hit") != 1 {
		t.Errorf("hits = %d, want 1", g.Value("ic.hit"))
	}
}

func TestICacheSameLineSharesFill(t *testing.T) {
	g := metrics.New()
	ic := NewICache("ic", 8, 40, g)
	ic.Ready(0, 0)
	// PC 8..56 are in the same 64-byte line: no extra misses.
	for pc := uint64(8); pc < 64; pc += 8 {
		ic.Ready(pc, 1)
	}
	if g.Value("ic.miss") != 1 {
		t.Errorf("misses = %d, want 1 for one line", g.Value("ic.miss"))
	}
}

func TestICacheNextLinePrefetch(t *testing.T) {
	g := metrics.New()
	ic := NewICache("ic", 8, 40, g)
	ic.Ready(0, 0) // miss line 0; prefetch lines 1..2
	// After the fill window, sequential code hits without new misses.
	for pc := uint64(64); pc < 64*3; pc += 8 {
		if !ic.Ready(pc, 100) {
			t.Fatalf("prefetched pc %#x not ready", pc)
		}
	}
	if g.Value("ic.miss") != 1 {
		t.Errorf("misses = %d, want 1 (stream prefetch)", g.Value("ic.miss"))
	}
}

func TestICacheCapacityEviction(t *testing.T) {
	g := metrics.New()
	ic := NewICache("ic", 2, 10, g)
	// Touch many distinct lines far apart (no prefetch overlap).
	for i := uint64(0); i < 8; i++ {
		ic.Ready(i*64*10, 100*(i+1))
	}
	if got := len(ic.lines); got > 2 {
		t.Errorf("resident lines = %d, want <= capacity 2", got)
	}
	// The earliest line was evicted: fetching it again misses.
	before := g.Value("ic.miss")
	ic.Ready(0, 10_000)
	if g.Value("ic.miss") != before+1 {
		t.Error("evicted line did not miss")
	}
}

func TestICacheBusyWindow(t *testing.T) {
	g := metrics.New()
	ic := NewICache("ic", 8, 40, g)
	if ic.Busy(0) {
		t.Fatal("fresh icache busy")
	}
	ic.Ready(0, 5)
	if !ic.Busy(6) {
		t.Fatal("icache idle during fill")
	}
	if ic.Busy(100) {
		t.Fatal("icache busy after fills complete")
	}
}

func TestICacheCapacityClamp(t *testing.T) {
	ic := NewICache("ic", 0, 10, metrics.New())
	if ic.capacity != 1 {
		t.Errorf("capacity = %d, want clamped to 1", ic.capacity)
	}
}
