package smcore

import (
	"swiftsim/internal/config"
	"swiftsim/internal/engine"
	"swiftsim/internal/mem"
	"swiftsim/internal/metrics"
	"swiftsim/internal/trace"
)

// ldstQueueCap bounds memory instructions concurrently tracked per LD/ST
// unit.
const ldstQueueCap = 8

// icacheCapacityLines and icacheMissLatency parameterize the detailed
// configuration's per-sub-core instruction cache.
const (
	icacheCapacityLines = 64
	icacheMissLatency   = 40
)

// NewCycleAccurateUnits returns the fully cycle-accurate UnitSet used by
// the detailed (Accel-Sim-class) simulator: ALUPipelines for every
// arithmetic class — with one DP pipeline shared per sub-core pair when the
// configuration says "DP:0.5x" — and an LDSTUnit feeding the SM's L1 port.
//
// sectorBytes is the memory-system transaction size (the L1 sector size);
// l1For returns the L1 data-cache port of the given SM.
func NewCycleAccurateUnits(cfg config.SM, eng engine.Context, g *metrics.Gatherer, sectorBytes int, l1For func(smID int) mem.Port) UnitSet {
	type dpKey struct{ sm, pair int }
	sharedDP := make(map[dpKey]Unit)

	pipe := func(name string, lat, lanes int) Unit {
		// Each arithmetic pipeline sits behind an operand-collection
		// stage reading through the banked register file — part of the
		// per-cycle detail that the hybrid configurations drop.
		return NewOperandCollector("oc."+name[4:],
			NewALUPipeline(name, lat, cfg.IssueInterval(lanes), 1, g), g)
	}
	alu := func(smID, sub int, class trace.OpClass) Unit {
		switch class {
		case trace.OpInt:
			return pipe("alu.INT", cfg.IntLatency, cfg.IntLanes)
		case trace.OpSP:
			return pipe("alu.SP", cfg.SPLatency, cfg.SPLanes)
		case trace.OpSFU:
			return pipe("alu.SFU", cfg.SFULatency, cfg.SFULanes)
		case trace.OpDP:
			if !cfg.DPLanesHalf {
				return pipe("alu.DP", cfg.DPLatency, cfg.DPLanes)
			}
			key := dpKey{smID, sub / 2}
			if u, ok := sharedDP[key]; ok {
				return u
			}
			u := pipe("alu.DP", cfg.DPLatency, cfg.DPLanes)
			sharedDP[key] = u
			return u
		default:
			// Unknown arithmetic class: report the hole by returning nil;
			// NewSM turns a nil unit into a validation error at assembly
			// time instead of a process-killing panic mid-sweep.
			return nil
		}
	}
	ldst := func(smID, sub int) Unit {
		return NewLDSTUnit("ldst", eng, l1For(smID), smID, sectorBytes,
			cfg.LDSTLanes, cfg.SharedMemLatency, ldstQueueCap, g)
	}
	icache := func(smID, sub int) *ICache {
		return NewICache("icache", icacheCapacityLines, icacheMissLatency, g)
	}
	return UnitSet{ALU: alu, LDST: ldst, ICache: icache, ModelFrontEnd: true}
}
