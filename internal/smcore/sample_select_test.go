package smcore

import (
	"reflect"
	"testing"

	"swiftsim/internal/trace"
)

// selectGeometry reports the wave and window sizes SelectSampleBlocks
// derives for a kernel under testSMConfig on numSMs SMs.
func selectGeometry(k *trace.Kernel, numSMs int) (wave, wlen int) {
	wave = BlocksPerSM(testSMConfig(), k) * numSMs
	if wave < 1 {
		wave = 1
	}
	return wave, wave + (wave+1)/2
}

func aluKernel(blocks int) *trace.Kernel {
	return simpleKernel(blocks, 4, func(b *kbuilder) { b.intOp(1, 1, 1) })
}

// TestSelectSampleBlocksSmallKernelWhole pins the full-simulation cutoff:
// a kernel whose tail fits inside one sampling window has nothing to
// extrapolate and is returned whole.
func TestSelectSampleBlocksSmallKernelWhole(t *testing.T) {
	cfg := testSMConfig()
	k := aluKernel(8)
	wave, wlen := selectGeometry(k, 4)
	if tail := len(k.Blocks) - wave; tail > wlen {
		t.Fatalf("test kernel too large: tail %d exceeds window %d", tail, wlen)
	}
	got := SelectSampleBlocks(cfg, k, 4, 0, 0)
	if len(got) != len(k.Blocks) {
		t.Fatalf("small kernel sampled: got %d of %d blocks", len(got), len(k.Blocks))
	}
	for i, b := range got {
		if b != i {
			t.Fatalf("small kernel selection is not the identity at %d: %d", i, b)
		}
	}
}

// TestSelectSampleBlocksProperties checks the documented invariants on a
// multi-wave grid: determinism, strictly increasing in-range indices, the
// complete first wave, and exactly one window at the default fraction.
func TestSelectSampleBlocksProperties(t *testing.T) {
	cfg := testSMConfig()
	k := aluKernel(400)
	wave, wlen := selectGeometry(k, 4)
	if len(k.Blocks)-wave <= wlen {
		t.Fatalf("test kernel not multi-wave: wave %d, window %d", wave, wlen)
	}
	got := SelectSampleBlocks(cfg, k, 4, 0, 0)
	again := SelectSampleBlocks(cfg, k, 4, 0, 0)
	if !reflect.DeepEqual(got, again) {
		t.Error("selection is not deterministic across calls")
	}
	if want := wave + wlen; len(got) != want {
		t.Errorf("default selection has %d blocks, want first wave + one window = %d", len(got), want)
	}
	for i, b := range got {
		if b < 0 || b >= len(k.Blocks) {
			t.Fatalf("selected block %d out of range [0,%d)", b, len(k.Blocks))
		}
		if i > 0 && b <= got[i-1] {
			t.Fatalf("selection not strictly increasing at %d: %d after %d", i, b, got[i-1])
		}
		if i < wave && b != i {
			t.Errorf("first wave incomplete: position %d holds block %d", i, b)
		}
	}
}

// TestSelectSampleBlocksFracGrowsWindows checks frac scales the window
// count — round(frac×tail/wlen) windows, capped so they cannot overlap —
// and that windows land inside their strata (guaranteed non-overlap shows
// up as strictly increasing output even at the cap).
func TestSelectSampleBlocksFracGrowsWindows(t *testing.T) {
	cfg := testSMConfig()
	k := aluKernel(400)
	wave, wlen := selectGeometry(k, 4)
	tail := len(k.Blocks) - wave
	prev := -1
	for _, frac := range []float64{0, 0.25, 0.5, 0.99} {
		got := SelectSampleBlocks(cfg, k, 4, frac, 0)
		win := (len(got) - wave) / wlen
		if (len(got)-wave)%wlen != 0 {
			t.Fatalf("frac %g: tail sample %d is not a whole number of %d-block windows", frac, len(got)-wave, wlen)
		}
		if win < prev {
			t.Errorf("frac %g selected %d windows, fewer than the %d at a smaller fraction", frac, win, prev)
		}
		if max := tail / wlen; win > max {
			t.Errorf("frac %g selected %d windows, past the non-overlap cap %d", frac, win, max)
		}
		for i := wave + 1; i < len(got); i++ {
			if got[i] <= got[i-1] {
				t.Fatalf("frac %g: windows overlap (%d then %d)", frac, got[i-1], got[i])
			}
		}
		prev = win
	}
}

// TestSelectSampleBlocksSeedJitter checks the seed moves the window
// placement while leaving the sample size and the measured first wave
// untouched — and that every seed keeps its windows inside the tail.
func TestSelectSampleBlocksSeedJitter(t *testing.T) {
	cfg := testSMConfig()
	k := aluKernel(400)
	wave, _ := selectGeometry(k, 4)
	base := SelectSampleBlocks(cfg, k, 4, 0, 0)
	moved := false
	for seed := uint64(0); seed < 8; seed++ {
		got := SelectSampleBlocks(cfg, k, 4, 0, seed)
		if len(got) != len(base) {
			t.Fatalf("seed %d changed the sample size: %d vs %d", seed, len(got), len(base))
		}
		if !reflect.DeepEqual(got[:wave], base[:wave]) {
			t.Fatalf("seed %d perturbed the first wave", seed)
		}
		if got[wave] < wave || got[len(got)-1] >= len(k.Blocks) {
			t.Fatalf("seed %d placed its window outside the tail: [%d,%d]", seed, got[wave], got[len(got)-1])
		}
		if !reflect.DeepEqual(got, base) {
			moved = true
		}
	}
	if !moved {
		t.Error("no seed in 0..7 moved the sampling window; jitter appears disconnected from the seed")
	}
}
