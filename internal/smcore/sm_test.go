package smcore

import (
	"testing"
	"testing/quick"

	"swiftsim/internal/config"
	"swiftsim/internal/engine"
	"swiftsim/internal/mem"
	"swiftsim/internal/metrics"
	"swiftsim/internal/trace"
)

// fixedMem is an L1 stand-in that completes every request after a fixed
// latency.
type fixedMem struct {
	eng      *engine.Engine
	latency  uint64
	accepted int
	inflight int
}

func (m *fixedMem) Accept(r *mem.Request) bool {
	m.accepted++
	m.inflight++
	m.eng.Schedule(m.latency, func() {
		m.inflight--
		r.Complete(mem.LevelL1)
	})
	return true
}

func (m *fixedMem) Name() string           { return "fixedMem" }
func (m *fixedMem) Kind() engine.ModelKind { return engine.CycleAccurate }
func (m *fixedMem) Tick(uint64)            {}
func (m *fixedMem) Busy() bool             { return m.inflight > 0 }

func testSMConfig() config.SM {
	cfg := config.RTX2080Ti().SM
	cfg.MaxWarps = 16
	return cfg
}

type smHarness struct {
	eng *engine.Engine
	sm  *SM
	bs  *BlockScheduler
	mem *fixedMem
	g   *metrics.Gatherer
}

func newSMHarness(t *testing.T, cfg config.SM) *smHarness {
	t.Helper()
	eng := engine.New()
	g := metrics.New()
	fm := &fixedMem{eng: eng, latency: 40}
	us := NewCycleAccurateUnits(cfg, eng, g, 32, func(int) mem.Port { return fm })
	h := &smHarness{eng: eng, mem: fm, g: g}
	sm, err := NewSM(0, cfg, eng, us, g, func(sm *SM) { h.bs.BlockDone(sm) })
	if err != nil {
		t.Fatalf("NewSM: %v", err)
	}
	h.sm = sm
	h.bs = NewBlockScheduler([]*SM{h.sm}, g)
	eng.Register(h.bs)
	eng.Register(h.sm)
	eng.Register(fm)
	return h
}

func (h *smHarness) run(t *testing.T, k *trace.Kernel) uint64 {
	t.Helper()
	if err := k.Validate(); err != nil {
		t.Fatalf("invalid test kernel: %v", err)
	}
	h.bs.LaunchKernel(k)
	start := h.eng.Cycle()
	if _, err := h.eng.Run(h.bs.KernelDone, start+5_000_000); err != nil {
		t.Fatalf("run: %v", err)
	}
	return h.eng.Cycle() - start
}

// simpleKernel builds a kernel of identical warps from an instruction
// pattern function.
func simpleKernel(blocks, warpsPerBlock int, gen func(b *kbuilder)) *trace.Kernel {
	k := &trace.Kernel{
		Name:          "test",
		Grid:          trace.Dim3{X: blocks, Y: 1, Z: 1},
		Block:         trace.Dim3{X: warpsPerBlock * 32, Y: 1, Z: 1},
		RegsPerThread: 16,
	}
	for b := 0; b < blocks; b++ {
		var bt trace.BlockTrace
		for w := 0; w < warpsPerBlock; w++ {
			kb := &kbuilder{}
			gen(kb)
			kb.emit(trace.Inst{Op: trace.OpExit, ActiveMask: 0xffffffff})
			bt.Warps = append(bt.Warps, kb.insts)
		}
		k.Blocks = append(k.Blocks, bt)
	}
	return k
}

type kbuilder struct {
	insts trace.WarpTrace
	pc    uint64
}

func (b *kbuilder) emit(in trace.Inst) {
	in.PC = b.pc
	b.pc += 8
	b.insts = append(b.insts, in)
}

func (b *kbuilder) intOp(dst trace.Reg, srcs ...trace.Reg) {
	var s [2]trace.Reg
	copy(s[:], srcs)
	b.emit(trace.Inst{Op: trace.OpInt, Dst: dst, Src: s, ActiveMask: 0xffffffff})
}

func (b *kbuilder) loadAt(dst trace.Reg, base uint64) {
	addrs := make([]uint64, 32)
	for i := range addrs {
		addrs[i] = base + uint64(i)*4
	}
	b.emit(trace.Inst{Op: trace.OpLoadGlobal, Dst: dst, ActiveMask: 0xffffffff, Addrs: addrs})
}

func (b *kbuilder) barrier() {
	b.emit(trace.Inst{Op: trace.OpBarrier, ActiveMask: 0xffffffff})
}

func TestSMRunsALUKernel(t *testing.T) {
	h := newSMHarness(t, testSMConfig())
	k := simpleKernel(2, 4, func(b *kbuilder) {
		for i := 0; i < 10; i++ {
			b.intOp(trace.Reg(i+1), trace.Reg(i), 0)
		}
	})
	cycles := h.run(t, k)
	if cycles == 0 {
		t.Fatal("kernel completed in zero cycles")
	}
	// 2 blocks × 4 warps × 11 instructions.
	if got := h.g.Value("sm.issued"); got != 88 {
		t.Errorf("issued = %d, want 88", got)
	}
	if h.sm.ResidentBlocks() != 0 {
		t.Errorf("blocks still resident after kernel end")
	}
	if h.sm.usedWarps != 0 || h.sm.usedRegs != 0 || h.sm.usedShmem != 0 {
		t.Errorf("resources leaked: warps=%d regs=%d shmem=%d",
			h.sm.usedWarps, h.sm.usedRegs, h.sm.usedShmem)
	}
}

func TestSMDependencyStalls(t *testing.T) {
	// A chain of dependent instructions must take at least latency per
	// instruction; independent ones pipeline.
	cfg := testSMConfig()
	chain := simpleKernel(1, 1, func(b *kbuilder) {
		for i := 0; i < 20; i++ {
			b.intOp(5, 5, 0) // serial dependency on r5
		}
	})
	indep := simpleKernel(1, 1, func(b *kbuilder) {
		for i := 0; i < 20; i++ {
			b.intOp(trace.Reg(i+1), 0, 0)
		}
	})
	hChain := newSMHarness(t, cfg)
	cChain := hChain.run(t, chain)
	hIndep := newSMHarness(t, cfg)
	cIndep := hIndep.run(t, indep)
	if cChain <= cIndep {
		t.Errorf("dependent chain (%d cycles) not slower than independent stream (%d)", cChain, cIndep)
	}
	if cChain < 20*uint64(cfg.IntLatency) {
		t.Errorf("chain = %d cycles, want >= %d (20 × latency)", cChain, 20*cfg.IntLatency)
	}
}

func TestSMMemoryKernel(t *testing.T) {
	h := newSMHarness(t, testSMConfig())
	k := simpleKernel(1, 2, func(b *kbuilder) {
		b.loadAt(1, 0x1000)
		b.intOp(2, 1, 0) // depends on the load
	})
	cycles := h.run(t, k)
	if cycles < h.mem.latency {
		t.Errorf("kernel = %d cycles, below memory latency %d", cycles, h.mem.latency)
	}
	// Each load coalesces to 4 sectors: 2 blocks? 1 block × 2 warps × 4.
	if h.mem.accepted != 8 {
		t.Errorf("memory requests = %d, want 8", h.mem.accepted)
	}
	if got := h.g.Value("ldst.transactions"); got != 8 {
		t.Errorf("ldst.transactions = %d, want 8", got)
	}
}

func TestSMBarrierSynchronizes(t *testing.T) {
	h := newSMHarness(t, testSMConfig())
	k := simpleKernel(1, 4, func(b *kbuilder) {
		b.intOp(1, 0, 0)
		b.barrier()
		b.intOp(2, 1, 0)
	})
	h.run(t, k) // must not deadlock
	if got := h.g.Value("sm.issued"); got != 16 {
		t.Errorf("issued = %d, want 16", got)
	}
}

func TestSMSchedulerPoliciesAllComplete(t *testing.T) {
	for _, pol := range []config.SchedPolicy{config.GTO, config.LRR, config.OldestFirst} {
		cfg := testSMConfig()
		cfg.Scheduler = pol
		h := newSMHarness(t, cfg)
		k := simpleKernel(3, 4, func(b *kbuilder) {
			b.loadAt(1, 0x4000)
			for i := 0; i < 6; i++ {
				b.intOp(trace.Reg(i+2), 1, trace.Reg(i+1))
			}
		})
		h.run(t, k)
		if got := h.g.Value("sm.issued"); got != 3*4*8 {
			t.Errorf("%v: issued = %d, want %d", pol, got, 3*4*8)
		}
	}
}

func TestSMOccupancyLimits(t *testing.T) {
	cfg := testSMConfig()
	cfg.MaxBlocks = 2
	h := newSMHarness(t, cfg)
	// Many small blocks: at most 2 resident at once.
	k := simpleKernel(8, 1, func(b *kbuilder) {
		b.loadAt(1, 0x8000)
		b.intOp(2, 1, 0)
	})
	h.bs.LaunchKernel(k)
	maxResident := 0
	for !h.bs.KernelDone() {
		if _, err := h.eng.Run(func() bool {
			return h.sm.ResidentBlocks() > maxResident || h.bs.KernelDone()
		}, 5_000_000); err != nil {
			t.Fatal(err)
		}
		if r := h.sm.ResidentBlocks(); r > maxResident {
			maxResident = r
		}
	}
	if maxResident > 2 {
		t.Errorf("max resident blocks = %d, want <= 2", maxResident)
	}
	if maxResident == 0 {
		t.Error("no block ever resident")
	}
}

func TestSMRegisterPressureLimitsOccupancy(t *testing.T) {
	cfg := testSMConfig()
	h := newSMHarness(t, cfg)
	k := simpleKernel(4, 2, func(b *kbuilder) { b.intOp(1, 0, 0) })
	k.RegsPerThread = cfg.Registers / k.Block.Count() // one block's regs fill the SM
	if !h.sm.CanAccept(k) {
		t.Fatal("SM cannot accept even one block")
	}
	if err := h.sm.AssignBlock(k, 0); err != nil {
		t.Fatal(err)
	}
	if h.sm.CanAccept(k) {
		t.Error("register file oversubscribed")
	}
}

func TestSMSharedMemLimitsOccupancy(t *testing.T) {
	cfg := testSMConfig()
	h := newSMHarness(t, cfg)
	k := simpleKernel(4, 2, func(b *kbuilder) { b.intOp(1, 0, 0) })
	k.SharedMemPerBlock = cfg.SharedMemBytes
	if err := h.sm.AssignBlock(k, 0); err != nil {
		t.Fatal(err)
	}
	if h.sm.CanAccept(k) {
		t.Error("shared memory oversubscribed")
	}
}

func TestGTOGreedinessDiffersFromLRR(t *testing.T) {
	// With multiple warps of pure ALU work, GTO keeps issuing from one
	// warp while LRR rotates; both complete all instructions but their
	// stall/issue traces differ. We only require both to finish with
	// identical totals and nonzero cycles.
	mk := func(pol config.SchedPolicy) (uint64, uint64) {
		cfg := testSMConfig()
		cfg.Scheduler = pol
		h := newSMHarness(t, cfg)
		k := simpleKernel(1, 4, func(b *kbuilder) {
			for i := 0; i < 30; i++ {
				b.intOp(trace.Reg(i%28+1), trace.Reg(i%28), 0)
			}
		})
		cyc := h.run(t, k)
		return cyc, h.g.Value("sm.issued")
	}
	gtoCyc, gtoIss := mk(config.GTO)
	lrrCyc, lrrIss := mk(config.LRR)
	if gtoIss != lrrIss {
		t.Errorf("issued differ: GTO %d, LRR %d", gtoIss, lrrIss)
	}
	if gtoCyc == 0 || lrrCyc == 0 {
		t.Error("zero-cycle kernels")
	}
}

func TestLDSTSharedMemoryConflictLatency(t *testing.T) {
	eng := engine.New()
	g := metrics.New()
	u := NewLDSTUnit("ldst.t", eng, nil, 0, 32, 4, 24, 8, g)

	measure := func(addrs []uint64) uint64 {
		done := false
		in := &trace.Inst{Op: trace.OpLoadShared, ActiveMask: 0xffffffff, Addrs: addrs}
		if !u.TryIssue(eng.Cycle(), in, func() { done = true }) {
			t.Fatal("issue refused")
		}
		start := eng.Cycle()
		if _, err := eng.Run(func() bool { return done }, start+10000); err != nil {
			t.Fatal(err)
		}
		return eng.Cycle() - start
	}
	free := make([]uint64, 32)
	for i := range free {
		free[i] = uint64(i) * 4
	}
	conflicted := make([]uint64, 32) // all bank 0
	for i := range conflicted {
		conflicted[i] = uint64(i) * 128
	}
	if lf, lc := measure(free), measure(conflicted); lc <= lf {
		t.Errorf("conflicted access (%d) not slower than conflict-free (%d)", lc, lf)
	}
	if g.Value("ldst.t.shmem_conflict") == 0 {
		t.Error("no conflicts recorded")
	}
}

func TestLDSTQueueBackpressure(t *testing.T) {
	eng := engine.New()
	g := metrics.New()
	refuse := mem.PortFunc(func(*mem.Request) bool { return false })
	u := NewLDSTUnit("ldst.t", eng, refuse, 0, 32, 4, 24, 2, g)
	in := &trace.Inst{Op: trace.OpLoadGlobal, Dst: 1, ActiveMask: 1, Addrs: []uint64{0}}
	if !u.TryIssue(0, in, func() {}) || !u.TryIssue(0, in, func() {}) {
		t.Fatal("first two issues refused")
	}
	if u.TryIssue(0, in, func() {}) {
		t.Fatal("issue accepted beyond queue capacity")
	}
	if g.Value("ldst.t.port_stall") == 0 {
		t.Error("no port stalls recorded")
	}
}

// TestQuickSMAnyKernelCompletes: random small kernels complete without
// deadlock, and the issue count matches the trace's instruction count.
func TestQuickSMAnyKernelCompletes(t *testing.T) {
	f := func(seed int64, blocksRaw, warpsRaw, instsRaw uint8, polRaw uint8) bool {
		blocks := 1 + int(blocksRaw)%3
		warps := 1 + int(warpsRaw)%4
		insts := 1 + int(instsRaw)%25
		cfg := testSMConfig()
		cfg.Scheduler = config.SchedPolicy(int(polRaw) % 3)
		h := newSMHarness(t, cfg)
		rng := seed
		next := func() int {
			rng = rng*6364136223846793005 + 1442695040888963407
			v := int(rng>>33) % 100
			if v < 0 {
				v = -v
			}
			return v
		}
		k := simpleKernel(blocks, warps, func(b *kbuilder) {
			for i := 0; i < insts; i++ {
				switch v := next(); {
				case v < 50:
					b.intOp(trace.Reg(i%30+1), trace.Reg((i+7)%31), 0)
				case v < 75:
					b.loadAt(trace.Reg(i%30+1), uint64(v)*4096)
				case v < 90:
					b.emit(trace.Inst{Op: trace.OpSP, Dst: trace.Reg(i%30 + 1),
						Src: [2]trace.Reg{trace.Reg((i + 3) % 31)}, ActiveMask: 0xffffffff})
				default:
					b.barrier()
				}
			}
		})
		h.run(t, k)
		want := uint64(blocks * warps * (insts + 1))
		return h.g.Value("sm.issued") == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
