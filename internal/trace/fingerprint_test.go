package trace

import "testing"

// launchKernel builds a two-block kernel with a short mixed instruction
// stream. base offsets every address value without changing the access
// shape, mimicking a repeated launch that walks a different buffer.
func launchKernel(name string, base uint64) *Kernel {
	k := &Kernel{
		Name:              name,
		Grid:              Dim3{X: 2, Y: 1, Z: 1},
		Block:             Dim3{X: 64, Y: 1, Z: 1},
		RegsPerThread:     16,
		SharedMemPerBlock: 1024,
	}
	for b := 0; b < 2; b++ {
		var bt BlockTrace
		for w := 0; w < 2; w++ {
			addrs := make([]uint64, 32)
			for i := range addrs {
				addrs[i] = base + uint64(b*2+w)*128 + uint64(i)*4
			}
			bt.Warps = append(bt.Warps, WarpTrace{
				{PC: 0, Op: OpLoadGlobal, Dst: 1, ActiveMask: 0xffffffff, Addrs: addrs},
				{PC: 8, Op: OpInt, Dst: 2, Src: [2]Reg{1, 1}, ActiveMask: 0xffffffff},
				{PC: 16, Op: OpExit, ActiveMask: 0xffffffff},
			})
		}
		k.Blocks = append(k.Blocks, bt)
	}
	return k
}

// TestLaunchKeyIgnoresNameAndAddressValues pins the memoization unit of
// sampled mode: repeated launches of one kernel differ only in their
// suffixed name and the buffers they walk, and must collide on LaunchKey.
func TestLaunchKeyIgnoresNameAndAddressValues(t *testing.T) {
	a := launchKernel("gemm_step0", 0x1000)
	b := launchKernel("gemm_step1", 0x9000_0000)
	if LaunchKey(a) != LaunchKey(b) {
		t.Error("launches differing only in name and address values got distinct LaunchKeys")
	}
}

// TestLaunchKeyDistinguishesStaticContent flips each hashed dimension in
// turn and checks the key moves: geometry, resources, opcode, operands,
// active mask, stream length, and the per-instruction address *count* (the
// coalescing shape) are all static content.
func TestLaunchKeyDistinguishesStaticContent(t *testing.T) {
	base := LaunchKey(launchKernel("k", 0))
	mutations := []struct {
		name string
		mut  func(k *Kernel)
	}{
		{"grid", func(k *Kernel) { k.Grid.X++ }},
		{"block dims", func(k *Kernel) { k.Block.Y = 2 }},
		{"registers", func(k *Kernel) { k.RegsPerThread++ }},
		{"shared memory", func(k *Kernel) { k.SharedMemPerBlock += 256 }},
		{"opcode", func(k *Kernel) { k.Blocks[0].Warps[0][1].Op = OpSP }},
		{"dst register", func(k *Kernel) { k.Blocks[0].Warps[0][1].Dst = 3 }},
		{"src register", func(k *Kernel) { k.Blocks[0].Warps[0][1].Src[0] = 7 }},
		{"pc", func(k *Kernel) { k.Blocks[1].Warps[1][1].PC += 8 }},
		{"active mask", func(k *Kernel) { k.Blocks[0].Warps[1][0].ActiveMask = 0xffff }},
		{"address count", func(k *Kernel) {
			w := &k.Blocks[0].Warps[0]
			(*w)[0].Addrs = (*w)[0].Addrs[:16]
		}},
		{"stream length", func(k *Kernel) {
			w := &k.Blocks[1].Warps[0]
			*w = append(WarpTrace{{PC: 0, Op: OpInt, ActiveMask: 0xffffffff}}, *w...)
		}},
	}
	for _, m := range mutations {
		k := launchKernel("k", 0)
		m.mut(k)
		if LaunchKey(k) == base {
			t.Errorf("mutating %s did not change the LaunchKey", m.name)
		}
	}
}

// TestLaunchKeyMemoized checks the per-pointer cache returns the computed
// digest on repeat lookups (kernels are immutable once built, so hitting
// the cache must be indistinguishable from recomputing).
func TestLaunchKeyMemoized(t *testing.T) {
	k := launchKernel("k", 0)
	want := computeLaunchKey(k)
	for i := 0; i < 3; i++ {
		if got := LaunchKey(k); got != want {
			t.Fatalf("lookup %d: LaunchKey diverged from computeLaunchKey", i)
		}
	}
}
