package trace

import (
	"crypto/sha256"
	"encoding/binary"
	"sync"
)

// ContentHash returns a SHA-256 digest over an application's full semantic
// content: names, every kernel's launch geometry and resource footprint,
// and every instruction of every warp including per-lane addresses. Two
// apps with equal content hash simulate identically under every
// configuration, regardless of how (or how many times) the trace was
// parsed or generated — which is exactly what pointer identity cannot
// express. The sweep service keys its persistent result cache on this
// hash, and the profile memoization in internal/sim uses it so
// separately-parsed copies of the same trace share one profile.
//
// Apps are immutable once built (the simulator relies on this already), so
// the digest is memoized per *App. The memo is bounded: sampled runs hash
// freshly-built truncated apps whose pointers never repeat, and FIFO
// eviction keeps those from accumulating.
func ContentHash(a *App) [32]byte {
	hashMu.Lock()
	if h, ok := hashCache[a]; ok {
		hashMu.Unlock()
		return h
	}
	hashMu.Unlock()

	// Hash outside the lock: concurrent first requests for the same app
	// may compute twice, but the result is deterministic and the apps can
	// be large — holding the mutex across the walk would serialize sweeps.
	h := computeContentHash(a)

	hashMu.Lock()
	if _, ok := hashCache[a]; !ok {
		if len(hashOrder) >= hashCacheCap {
			delete(hashCache, hashOrder[0])
			hashOrder = hashOrder[1:]
		}
		hashCache[a] = h
		hashOrder = append(hashOrder, a)
	}
	hashMu.Unlock()
	return h
}

const hashCacheCap = 256

var (
	hashMu    sync.Mutex
	hashCache = make(map[*App][32]byte)
	hashOrder []*App // FIFO eviction order
)

// computeContentHash walks the app in declaration order with unambiguous
// framing (every string and slice is length-prefixed), so distinct traces
// cannot collide by field concatenation.
func computeContentHash(a *App) [32]byte {
	d := sha256.New()
	// buf batches writes into the digest; sha256.Write per instruction
	// field would dominate the walk.
	buf := make([]byte, 0, 1<<15)
	flush := func() {
		d.Write(buf)
		buf = buf[:0]
	}
	u32 := func(v uint32) { buf = binary.LittleEndian.AppendUint32(buf, v) }
	u64 := func(v uint64) { buf = binary.LittleEndian.AppendUint64(buf, v) }
	str := func(s string) {
		u32(uint32(len(s)))
		buf = append(buf, s...)
	}
	dim := func(v Dim3) { u32(uint32(v.X)); u32(uint32(v.Y)); u32(uint32(v.Z)) }

	str("swiftsim-trace-hash 1")
	str(a.Name)
	str(a.Suite)
	u32(uint32(len(a.Kernels)))
	for _, k := range a.Kernels {
		str(k.Name)
		dim(k.Grid)
		dim(k.Block)
		u32(uint32(k.RegsPerThread))
		u32(uint32(k.SharedMemPerBlock))
		u32(uint32(len(k.Blocks)))
		for bi := range k.Blocks {
			b := &k.Blocks[bi]
			u32(uint32(len(b.Warps)))
			for _, w := range b.Warps {
				u32(uint32(len(w)))
				for i := range w {
					in := &w[i]
					u64(in.PC)
					buf = append(buf, byte(in.Op), byte(in.Dst), byte(in.Src[0]), byte(in.Src[1]))
					u32(in.ActiveMask)
					u32(uint32(len(in.Addrs)))
					for _, addr := range in.Addrs {
						u64(addr)
					}
					if len(buf) >= 1<<15-64 {
						flush()
					}
				}
			}
		}
	}
	flush()
	var out [32]byte
	d.Sum(out[:0])
	return out
}
