package trace

import (
	"bytes"
	"math/bits"
	"math/rand"
	"os"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

// tinyApp builds a small, valid application for tests.
func tinyApp() *App {
	mkWarp := func(seed uint64) WarpTrace {
		return WarpTrace{
			{PC: 0, Op: OpInt, Dst: 1, ActiveMask: 0xffffffff},
			{PC: 8, Op: OpLoadGlobal, Dst: 2, Src: [2]Reg{1, RegNone}, ActiveMask: 0xf,
				Addrs: []uint64{seed, seed + 32, seed + 64, seed + 96}},
			{PC: 16, Op: OpSP, Dst: 3, Src: [2]Reg{2, 1}, ActiveMask: 0xffffffff},
			{PC: 24, Op: OpStoreGlobal, Src: [2]Reg{3, RegNone}, ActiveMask: 0x3,
				Addrs: []uint64{seed + 128, seed + 160}},
			{PC: 32, Op: OpBarrier, ActiveMask: 0xffffffff},
			{PC: 40, Op: OpExit, ActiveMask: 0xffffffff},
		}
	}
	k := &Kernel{
		Name:              "k0",
		Grid:              Dim3{2, 1, 1},
		Block:             Dim3{64, 1, 1},
		RegsPerThread:     32,
		SharedMemPerBlock: 1024,
	}
	for b := 0; b < 2; b++ {
		k.Blocks = append(k.Blocks, BlockTrace{
			Warps: []WarpTrace{mkWarp(uint64(b) * 4096), mkWarp(uint64(b)*4096 + 2048)},
		})
	}
	return &App{Name: "tiny", Suite: "unit", Kernels: []*Kernel{k}}
}

func TestTinyAppValid(t *testing.T) {
	if err := tinyApp().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAppCounts(t *testing.T) {
	a := tinyApp()
	k := a.Kernels[0]
	if got := k.NumBlocks(); got != 2 {
		t.Errorf("NumBlocks = %d, want 2", got)
	}
	if got := k.WarpsPerBlock(); got != 2 {
		t.Errorf("WarpsPerBlock = %d, want 2", got)
	}
	if got := k.Insts(); got != 24 {
		t.Errorf("Insts = %d, want 24", got)
	}
	if got := a.Insts(); got != 24 {
		t.Errorf("app Insts = %d, want 24", got)
	}
}

func TestOpClassStrings(t *testing.T) {
	for op := OpClass(0); op < numOpClasses; op++ {
		parsed, err := ParseOpClass(op.String())
		if err != nil || parsed != op {
			t.Errorf("ParseOpClass(%q) = %v, %v", op.String(), parsed, err)
		}
	}
	if _, err := ParseOpClass("FMA"); err == nil {
		t.Error("ParseOpClass accepted unknown mnemonic")
	}
	if OpClass(200).String() == "" {
		t.Error("unknown OpClass String() must be non-empty")
	}
}

func TestOpClassPredicates(t *testing.T) {
	cases := []struct {
		op                   OpClass
		alu, mem, gmem, smem bool
	}{
		{OpInt, true, false, false, false},
		{OpSP, true, false, false, false},
		{OpDP, true, false, false, false},
		{OpSFU, true, false, false, false},
		{OpLoadGlobal, false, true, true, false},
		{OpStoreGlobal, false, true, true, false},
		{OpLoadShared, false, true, false, true},
		{OpStoreShared, false, true, false, true},
		{OpBarrier, false, false, false, false},
		{OpExit, false, false, false, false},
	}
	for _, c := range cases {
		if c.op.IsALU() != c.alu || c.op.IsMem() != c.mem ||
			c.op.IsGlobalMem() != c.gmem || c.op.IsSharedMem() != c.smem {
			t.Errorf("%v: predicates (alu=%v mem=%v gmem=%v smem=%v)",
				c.op, c.op.IsALU(), c.op.IsMem(), c.op.IsGlobalMem(), c.op.IsSharedMem())
		}
	}
}

func TestValidateRejections(t *testing.T) {
	mutate := []struct {
		name string
		mut  func(*App)
	}{
		{"empty app name", func(a *App) { a.Name = "" }},
		{"no kernels", func(a *App) { a.Kernels = nil }},
		{"empty kernel name", func(a *App) { a.Kernels[0].Name = "" }},
		{"zero grid", func(a *App) { a.Kernels[0].Grid = Dim3{0, 1, 1} }},
		{"block too large", func(a *App) { a.Kernels[0].Block = Dim3{2048, 1, 1} }},
		{"block count mismatch", func(a *App) { a.Kernels[0].Blocks = a.Kernels[0].Blocks[:1] }},
		{"zero regs", func(a *App) { a.Kernels[0].RegsPerThread = 0 }},
		{"negative shmem", func(a *App) { a.Kernels[0].SharedMemPerBlock = -1 }},
		{"warp count mismatch", func(a *App) {
			a.Kernels[0].Blocks[0].Warps = a.Kernels[0].Blocks[0].Warps[:1]
		}},
		{"empty warp", func(a *App) { a.Kernels[0].Blocks[0].Warps[0] = nil }},
		{"bad opcode", func(a *App) { a.Kernels[0].Blocks[0].Warps[0][0].Op = numOpClasses }},
		{"zero mask", func(a *App) { a.Kernels[0].Blocks[0].Warps[0][0].ActiveMask = 0 }},
		{"addr count mismatch", func(a *App) { a.Kernels[0].Blocks[0].Warps[0][1].Addrs = nil }},
		{"addrs on ALU op", func(a *App) { a.Kernels[0].Blocks[0].Warps[0][0].Addrs = []uint64{1} }},
		{"early exit", func(a *App) { a.Kernels[0].Blocks[0].Warps[0][2].Op = OpExit }},
		{"no exit", func(a *App) {
			w := a.Kernels[0].Blocks[0].Warps[0]
			w[len(w)-1].Op = OpInt
		}},
	}
	for _, m := range mutate {
		a := tinyApp()
		m.mut(a)
		if err := a.Validate(); err == nil {
			t.Errorf("%s: Validate accepted invalid app", m.name)
		}
	}
}

func TestSGTRoundTrip(t *testing.T) {
	want := tinyApp()
	var buf bytes.Buffer
	if err := Write(&buf, want); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("round trip mismatch")
	}
}

func TestSGTFileRoundTrip(t *testing.T) {
	path := t.TempDir() + "/tiny.sgt"
	want := tinyApp()
	if err := WriteFile(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("file round trip mismatch")
	}
}

func TestReadFileMissing(t *testing.T) {
	if _, err := ReadFile(t.TempDir() + "/none.sgt"); err == nil {
		t.Fatal("expected error")
	}
}

func TestSGTParseErrors(t *testing.T) {
	valid := func() string {
		var buf bytes.Buffer
		if err := Write(&buf, tinyApp()); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}()
	cases := []struct {
		name, text string
	}{
		{"empty", ""},
		{"bad header", "sgt 2\n"},
		{"truncated after header", "sgt 1\n"},
		{"bad app line", "sgt 1\napp tiny\n"},
		{"bad kernel count", "sgt 1\napp tiny suite unit kernels zero\n"},
		{"zero kernels", "sgt 1\napp tiny suite unit kernels 0\n"},
		{"bad kernel line", "sgt 1\napp t suite u kernels 1\nkernel k0 grid 1,1\n"},
		{"bad dim3", "sgt 1\napp t suite u kernels 1\nkernel k0 grid 1,1 block 32,1,1 regs 8 shmem 0\n"},
		{"truncated body", strings.Join(strings.Split(valid, "\n")[:6], "\n")},
		{"no endapp", strings.Replace(valid, "endapp", "", 1)},
		{"corrupt mask", strings.Replace(valid, "ffffffff", "zz", 1)},
		{"bad blocktrace index", strings.Replace(valid, "blocktrace 0", "blocktrace 7", 1)},
		{"bad warp index", strings.Replace(valid, "warp 0 insts", "warp 9 insts", 1)},
		{"bad inst count", strings.Replace(valid, "insts 6", "insts -1", 1)},
	}
	for _, c := range cases {
		if _, err := Read(strings.NewReader(c.text)); err == nil {
			t.Errorf("%s: Read accepted invalid input", c.name)
		}
	}
}

func TestSGTIgnoresCommentsAndBlanks(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, tinyApp()); err != nil {
		t.Fatal(err)
	}
	commented := "# leading comment\n\n" + strings.Replace(buf.String(), "\n", "\n# interleaved\n\n", 1)
	if _, err := Read(strings.NewReader(commented)); err != nil {
		t.Fatalf("Read with comments: %v", err)
	}
}

// randomWarp builds a structurally valid warp from a PRNG, for property
// tests.
func randomWarp(r *rand.Rand, n int) WarpTrace {
	w := make(WarpTrace, 0, n+1)
	for i := 0; i < n; i++ {
		op := OpClass(r.Intn(int(OpBarrier + 1)))
		mask := r.Uint32()
		if mask == 0 {
			mask = 1
		}
		in := Inst{
			PC:         uint64(i * 8),
			Op:         op,
			Dst:        Reg(r.Intn(255)),
			Src:        [2]Reg{Reg(r.Intn(256)), Reg(r.Intn(256))},
			ActiveMask: mask,
		}
		if op.IsMem() {
			in.Addrs = make([]uint64, bits.OnesCount32(mask))
			for j := range in.Addrs {
				in.Addrs[j] = uint64(r.Int63()) &^ 3
			}
		}
		w = append(w, in)
	}
	w = append(w, Inst{PC: uint64(n * 8), Op: OpExit, ActiveMask: 1})
	return w
}

// TestQuickSGTRoundTrip: serialization followed by parsing reproduces any
// structurally valid application exactly.
func TestQuickSGTRoundTrip(t *testing.T) {
	f := func(seed int64, nBlocksRaw, nInstsRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		nBlocks := 1 + int(nBlocksRaw)%4
		nInsts := 1 + int(nInstsRaw)%40
		k := &Kernel{
			Name:          "kq",
			Grid:          Dim3{nBlocks, 1, 1},
			Block:         Dim3{64, 1, 1},
			RegsPerThread: 16,
		}
		for b := 0; b < nBlocks; b++ {
			k.Blocks = append(k.Blocks, BlockTrace{
				Warps: []WarpTrace{randomWarp(r, nInsts), randomWarp(r, nInsts)},
			})
		}
		app := &App{Name: "q", Suite: "quick", Kernels: []*Kernel{k}}
		if err := app.Validate(); err != nil {
			t.Logf("generated invalid app: %v", err)
			return false
		}
		var buf bytes.Buffer
		if err := Write(&buf, app); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil {
			t.Logf("Read: %v", err)
			return false
		}
		return reflect.DeepEqual(got, app)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestActiveLanes(t *testing.T) {
	cases := []struct {
		mask uint32
		want int
	}{{0, 0}, {1, 1}, {0xffffffff, 32}, {0xf0f0f0f0, 16}}
	for _, c := range cases {
		in := Inst{ActiveMask: c.mask}
		if got := in.ActiveLanes(); got != c.want {
			t.Errorf("ActiveLanes(%#x) = %d, want %d", c.mask, got, c.want)
		}
	}
}

func TestDim3(t *testing.T) {
	d := Dim3{2, 3, 4}
	if d.Count() != 24 {
		t.Errorf("Count = %d, want 24", d.Count())
	}
	if d.String() != "2,3,4" {
		t.Errorf("String = %q", d.String())
	}
	got, err := parseDim3("2,3,4")
	if err != nil || got != d {
		t.Errorf("parseDim3 = %v, %v", got, err)
	}
}

func TestSGTGzipRoundTrip(t *testing.T) {
	dir := t.TempDir()
	want := tinyApp()
	plain := dir + "/a.sgt"
	zipped := dir + "/a.sgt.gz"
	if err := WriteFile(plain, want); err != nil {
		t.Fatal(err)
	}
	if err := WriteFile(zipped, want); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(zipped)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("gzip round trip mismatch")
	}
	pi, _ := os.Stat(plain)
	zi, _ := os.Stat(zipped)
	if zi.Size() >= pi.Size() {
		t.Errorf("gzip (%d bytes) not smaller than plain (%d)", zi.Size(), pi.Size())
	}
}

func TestGzipRejectsCorrupt(t *testing.T) {
	path := t.TempDir() + "/bad.sgt.gz"
	if err := os.WriteFile(path, []byte("not gzip"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(path); err == nil {
		t.Fatal("corrupt gzip accepted")
	}
}
