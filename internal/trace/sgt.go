package trace

import (
	"bufio"
	"compress/gzip"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// The .sgt ("Swift GPU trace") text format:
//
//	sgt 1
//	app <name> suite <suite> kernels <n>
//	kernel <name> grid <x,y,z> block <x,y,z> regs <n> shmem <bytes>
//	blocktrace <index>
//	warp <index> insts <n>
//	<pc> <op> <dst> <src0> <src1> <mask-hex> [<addr-hex> ...]
//	...
//	endapp
//
// All integers are decimal except masks and addresses, which are
// unprefixed hexadecimal.

// Write serializes app to w in .sgt format.
func Write(w io.Writer, app *App) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	fmt.Fprintln(bw, "sgt 1")
	fmt.Fprintf(bw, "app %s suite %s kernels %d\n", app.Name, app.Suite, len(app.Kernels))
	for _, k := range app.Kernels {
		fmt.Fprintf(bw, "kernel %s grid %s block %s regs %d shmem %d\n",
			k.Name, k.Grid, k.Block, k.RegsPerThread, k.SharedMemPerBlock)
		for bi := range k.Blocks {
			fmt.Fprintf(bw, "blocktrace %d\n", bi)
			for wi, warp := range k.Blocks[bi].Warps {
				fmt.Fprintf(bw, "warp %d insts %d\n", wi, len(warp))
				for i := range warp {
					writeInst(bw, &warp[i])
				}
			}
		}
	}
	fmt.Fprintln(bw, "endapp")
	return bw.Flush()
}

func writeInst(bw *bufio.Writer, in *Inst) {
	fmt.Fprintf(bw, "%d %s %d %d %d %x", in.PC, in.Op, in.Dst, in.Src[0], in.Src[1], in.ActiveMask)
	for _, a := range in.Addrs {
		fmt.Fprintf(bw, " %x", a)
	}
	bw.WriteByte('\n')
}

// WriteFile serializes app to the file at path. Paths ending in ".gz" are
// gzip-compressed (trace files grow large; compression typically shrinks
// them by an order of magnitude).
func WriteFile(path string, app *App) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	var w io.Writer = f
	var gz *gzip.Writer
	if strings.HasSuffix(path, ".gz") {
		gz = gzip.NewWriter(f)
		w = gz
	}
	if err := Write(w, app); err != nil {
		f.Close()
		return fmt.Errorf("trace: %s: %w", path, err)
	}
	if gz != nil {
		if err := gz.Close(); err != nil {
			f.Close()
			return fmt.Errorf("trace: %s: %w", path, err)
		}
	}
	return f.Close()
}

// ReadFile parses the .sgt (or gzip-compressed .sgt.gz) file at path.
func ReadFile(path string) (*App, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	defer f.Close()
	var r io.Reader = f
	if strings.HasSuffix(path, ".gz") {
		gz, err := gzip.NewReader(f)
		if err != nil {
			return nil, fmt.Errorf("trace: %s: %w", path, err)
		}
		defer gz.Close()
		r = gz
	}
	app, err := Read(r)
	if err != nil {
		return nil, fmt.Errorf("trace: %s: %w", path, err)
	}
	return app, nil
}

type sgtReader struct {
	sc   *bufio.Scanner
	line int
}

func (r *sgtReader) next() (string, bool) {
	for r.sc.Scan() {
		r.line++
		line := strings.TrimSpace(r.sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		return line, true
	}
	return "", false
}

func (r *sgtReader) errf(format string, args ...any) error {
	return fmt.Errorf("line %d: %s", r.line, fmt.Sprintf(format, args...))
}

// Read parses a .sgt stream and validates the resulting application.
func Read(rd io.Reader) (*App, error) {
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	r := &sgtReader{sc: sc}

	header, ok := r.next()
	if !ok {
		return nil, fmt.Errorf("empty trace")
	}
	if header != "sgt 1" {
		return nil, r.errf("bad header %q, want \"sgt 1\"", header)
	}

	line, ok := r.next()
	if !ok {
		return nil, r.errf("missing app line")
	}
	f := strings.Fields(line)
	if len(f) != 6 || f[0] != "app" || f[2] != "suite" || f[4] != "kernels" {
		return nil, r.errf("malformed app line %q", line)
	}
	nKernels, err := strconv.Atoi(f[5])
	if err != nil || nKernels <= 0 {
		return nil, r.errf("bad kernel count %q", f[5])
	}
	app := &App{Name: f[1], Suite: f[3]}

	for ki := 0; ki < nKernels; ki++ {
		k, err := r.readKernel()
		if err != nil {
			return nil, err
		}
		app.Kernels = append(app.Kernels, k)
	}
	end, ok := r.next()
	if !ok || end != "endapp" {
		return nil, r.errf("missing endapp (got %q)", end)
	}
	if err := app.Validate(); err != nil {
		return nil, err
	}
	return app, nil
}

func (r *sgtReader) readKernel() (*Kernel, error) {
	line, ok := r.next()
	if !ok {
		return nil, r.errf("missing kernel line")
	}
	f := strings.Fields(line)
	if len(f) != 10 || f[0] != "kernel" || f[2] != "grid" || f[4] != "block" || f[6] != "regs" || f[8] != "shmem" {
		return nil, r.errf("malformed kernel line %q", line)
	}
	k := &Kernel{Name: f[1]}
	var err error
	if k.Grid, err = parseDim3(f[3]); err != nil {
		return nil, r.errf("grid: %v", err)
	}
	if k.Block, err = parseDim3(f[5]); err != nil {
		return nil, r.errf("block: %v", err)
	}
	if k.RegsPerThread, err = strconv.Atoi(f[7]); err != nil {
		return nil, r.errf("regs: %v", err)
	}
	if k.SharedMemPerBlock, err = strconv.Atoi(f[9]); err != nil {
		return nil, r.errf("shmem: %v", err)
	}

	// Validate the dimensions before deriving any allocation size from
	// them: Grid.Count() is a plain X*Y*Z whose product can overflow int
	// (wrapping to an innocuous-looking value), and a negative or huge
	// block extent would turn WarpsPerBlock into a panic- or OOM-sized
	// make() length. Checking each factor stepwise keeps every
	// intermediate product inside the final bound, so no overflow can
	// occur.
	const maxBlocks = 1 << 22
	if err := checkDim3(k.Grid, maxBlocks); err != nil {
		return nil, r.errf("grid: %v", err)
	}
	if err := checkDim3(k.Block, maxBlockThreads); err != nil {
		return nil, r.errf("block: %v", err)
	}

	nBlocks := k.Grid.Count()
	if nBlocks > maxBlocks {
		return nil, r.errf("unreasonable grid size %d", nBlocks)
	}
	wpb := k.WarpsPerBlock()
	k.Blocks = make([]BlockTrace, nBlocks)
	for bi := 0; bi < nBlocks; bi++ {
		line, ok := r.next()
		if !ok {
			return nil, r.errf("missing blocktrace %d", bi)
		}
		bf := strings.Fields(line)
		if len(bf) != 2 || bf[0] != "blocktrace" {
			return nil, r.errf("malformed blocktrace line %q", line)
		}
		if idx, err := strconv.Atoi(bf[1]); err != nil || idx != bi {
			return nil, r.errf("blocktrace index %q, want %d", bf[1], bi)
		}
		k.Blocks[bi].Warps = make([]WarpTrace, wpb)
		for wi := 0; wi < wpb; wi++ {
			warp, err := r.readWarp(wi)
			if err != nil {
				return nil, err
			}
			k.Blocks[bi].Warps[wi] = warp
		}
	}
	return k, nil
}

func (r *sgtReader) readWarp(want int) (WarpTrace, error) {
	line, ok := r.next()
	if !ok {
		return nil, r.errf("missing warp %d header", want)
	}
	f := strings.Fields(line)
	if len(f) != 4 || f[0] != "warp" || f[2] != "insts" {
		return nil, r.errf("malformed warp line %q", line)
	}
	if idx, err := strconv.Atoi(f[1]); err != nil || idx != want {
		return nil, r.errf("warp index %q, want %d", f[1], want)
	}
	n, err := strconv.Atoi(f[3])
	if err != nil || n <= 0 || n > maxWarpInsts {
		return nil, r.errf("bad instruction count %q", f[3])
	}
	// Grow the trace as instructions actually arrive instead of trusting
	// the declared count: a hostile header claiming maxWarpInsts
	// instructions must not allocate gigabytes before the (truncated)
	// body is read.
	warp := make(WarpTrace, 0, min(n, 4096))
	for i := 0; i < n; i++ {
		line, ok := r.next()
		if !ok {
			return nil, r.errf("truncated warp: %d of %d instructions", i, n)
		}
		var in Inst
		if err := parseInst(line, &in); err != nil {
			return nil, r.errf("%v", err)
		}
		warp = append(warp, in)
	}
	return warp, nil
}

// Parser bounds. maxWarpInsts caps one warp's declared instruction count
// (the largest catalog workloads stay well under 1<<20 per warp);
// maxBlockThreads is the CUDA architectural thread-per-block limit.
const (
	maxWarpInsts    = 1 << 20
	maxBlockThreads = 1024
)

// checkDim3 rejects non-positive extents and products above limit without
// ever overflowing: each dimension is bounded before it enters a product,
// and the product is checked stepwise.
func checkDim3(d Dim3, limit int) error {
	for _, v := range []int{d.X, d.Y, d.Z} {
		if v <= 0 || v > limit {
			return fmt.Errorf("dimension %s out of range [1,%d]", d, limit)
		}
	}
	if p := d.X * d.Y; p > limit || p*d.Z > limit {
		return fmt.Errorf("dimension %s: extent exceeds %d", d, limit)
	}
	return nil
}

func parseInst(line string, in *Inst) error {
	f := strings.Fields(line)
	if len(f) < 6 {
		return fmt.Errorf("malformed instruction %q", line)
	}
	pc, err := strconv.ParseUint(f[0], 10, 64)
	if err != nil {
		return fmt.Errorf("pc: %v", err)
	}
	op, err := ParseOpClass(f[1])
	if err != nil {
		return err
	}
	dst, err := parseReg(f[2])
	if err != nil {
		return fmt.Errorf("dst: %v", err)
	}
	s0, err := parseReg(f[3])
	if err != nil {
		return fmt.Errorf("src0: %v", err)
	}
	s1, err := parseReg(f[4])
	if err != nil {
		return fmt.Errorf("src1: %v", err)
	}
	mask, err := strconv.ParseUint(f[5], 16, 32)
	if err != nil {
		return fmt.Errorf("mask: %v", err)
	}
	*in = Inst{PC: pc, Op: op, Dst: dst, Src: [2]Reg{s0, s1}, ActiveMask: uint32(mask)}
	if naddr := len(f) - 6; naddr > 0 {
		in.Addrs = make([]uint64, naddr)
		for i := 0; i < naddr; i++ {
			a, err := strconv.ParseUint(f[6+i], 16, 64)
			if err != nil {
				return fmt.Errorf("addr %d: %v", i, err)
			}
			in.Addrs[i] = a
		}
	}
	return nil
}

func parseReg(s string) (Reg, error) {
	n, err := strconv.ParseUint(s, 10, 8)
	if err != nil {
		return 0, err
	}
	return Reg(n), nil
}

func parseDim3(s string) (Dim3, error) {
	parts := strings.Split(s, ",")
	if len(parts) != 3 {
		return Dim3{}, fmt.Errorf("bad dim3 %q", s)
	}
	var d Dim3
	for i, dst := range []*int{&d.X, &d.Y, &d.Z} {
		n, err := strconv.Atoi(parts[i])
		if err != nil {
			return Dim3{}, fmt.Errorf("bad dim3 %q: %v", s, err)
		}
		*dst = n
	}
	return d, nil
}
