package trace

import "testing"

// hashTestApp builds a small two-kernel app exercising every hashed field.
func hashTestApp() *App {
	k := func(name string, base uint64) *Kernel {
		return &Kernel{
			Name:              name,
			Grid:              Dim3{X: 2, Y: 1, Z: 1},
			Block:             Dim3{X: 32, Y: 1, Z: 1},
			RegsPerThread:     16,
			SharedMemPerBlock: 1024,
			Blocks: []BlockTrace{
				{Warps: []WarpTrace{{
					{PC: 0, Op: OpInt, Dst: 1, ActiveMask: 0xffffffff},
					{PC: 8, Op: OpLoadGlobal, Dst: 2, Src: [2]Reg{1}, ActiveMask: 0x1, Addrs: []uint64{base}},
					{PC: 16, Op: OpExit, ActiveMask: 0xffffffff},
				}}},
				{Warps: []WarpTrace{{
					{PC: 0, Op: OpSP, Dst: 3, Src: [2]Reg{2, 1}, ActiveMask: 0xffffffff},
					{PC: 8, Op: OpExit, ActiveMask: 0xffffffff},
				}}},
			},
		}
	}
	return &App{Name: "HASH", Suite: "test", Kernels: []*Kernel{k("k0", 0x100), k("k1", 0x200)}}
}

// deepCopyApp clones an app down to the instruction slices, producing a
// structurally identical trace at entirely new addresses — the
// "separately parsed copy" case the content hash exists for.
func deepCopyApp(a *App) *App {
	out := &App{Name: a.Name, Suite: a.Suite}
	for _, k := range a.Kernels {
		nk := &Kernel{
			Name: k.Name, Grid: k.Grid, Block: k.Block,
			RegsPerThread: k.RegsPerThread, SharedMemPerBlock: k.SharedMemPerBlock,
		}
		for _, b := range k.Blocks {
			nb := BlockTrace{}
			for _, w := range b.Warps {
				nw := make(WarpTrace, len(w))
				copy(nw, w)
				for i := range nw {
					nw[i].Addrs = append([]uint64(nil), w[i].Addrs...)
				}
				nb.Warps = append(nb.Warps, nw)
			}
			nk.Blocks = append(nk.Blocks, nb)
		}
		out.Kernels = append(out.Kernels, nk)
	}
	return out
}

func TestContentHashEqualForCopies(t *testing.T) {
	a := hashTestApp()
	b := deepCopyApp(a)
	if a == b {
		t.Fatal("deep copy returned the same pointer")
	}
	if ContentHash(a) != ContentHash(b) {
		t.Error("structurally identical apps hash differently")
	}
	// Memoized path must agree with the fresh computation.
	if ContentHash(a) != computeContentHash(a) {
		t.Error("memoized hash differs from recomputation")
	}
}

func TestContentHashSensitivity(t *testing.T) {
	base := hashTestApp()
	mutations := map[string]func(a *App){
		"app name":    func(a *App) { a.Name = "OTHER" },
		"kernel name": func(a *App) { a.Kernels[0].Name = "kX" },
		"grid":        func(a *App) { a.Kernels[0].Grid.Y = 7 },
		"regs":        func(a *App) { a.Kernels[0].RegsPerThread++ },
		"shmem":       func(a *App) { a.Kernels[1].SharedMemPerBlock++ },
		"opcode":      func(a *App) { a.Kernels[0].Blocks[0].Warps[0][0].Op = OpSFU },
		"dst reg":     func(a *App) { a.Kernels[0].Blocks[0].Warps[0][0].Dst = 9 },
		"mask":        func(a *App) { a.Kernels[1].Blocks[0].Warps[0][0].ActiveMask = 0x3 },
		"address":     func(a *App) { a.Kernels[0].Blocks[0].Warps[0][1].Addrs[0]++ },
		"pc":          func(a *App) { a.Kernels[0].Blocks[0].Warps[0][1].PC += 8 },
	}
	want := ContentHash(base)
	for name, mutate := range mutations {
		m := deepCopyApp(base)
		mutate(m)
		if ContentHash(m) == want {
			t.Errorf("%s change did not change the hash", name)
		}
	}
}

// TestContentHashFraming: moving a byte of content across a field boundary
// must change the digest (length prefixes make encodings unambiguous).
func TestContentHashFraming(t *testing.T) {
	a := hashTestApp()
	a.Name, a.Suite = "AB", "C"
	b := deepCopyApp(a)
	b.Name, b.Suite = "A", "BC"
	if ContentHash(a) == ContentHash(b) {
		t.Error("field-boundary shift collided")
	}
}

func TestContentHashMemoBounded(t *testing.T) {
	for i := 0; i < hashCacheCap+16; i++ {
		ContentHash(hashTestApp())
	}
	hashMu.Lock()
	n := len(hashCache)
	hashMu.Unlock()
	if n > hashCacheCap {
		t.Errorf("hash memo grew to %d entries, cap %d", n, hashCacheCap)
	}
}
