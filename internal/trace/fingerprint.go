package trace

import (
	"crypto/sha256"
	"encoding/binary"
	"sync"
)

// LaunchKey returns a SHA-256 digest over a kernel launch's *static*
// content: grid/block geometry, resource footprint, and the per-warp
// instruction streams (PC, opcode, registers, active mask, access width)
// — everything that determines the launch's control and issue behavior.
// Two things are deliberately excluded:
//
//   - The kernel name. Trace generators (and real NVBit traces) suffix
//     repeated launches of one kernel with a step or invocation index, so
//     the name distinguishes launches that execute identical code.
//   - Per-lane address values. Repeated launches walk different base
//     pointers over the same access pattern; the address *count* per
//     instruction (the coalescing shape's upper bound) is static and is
//     hashed, the values are not.
//
// Launches with equal LaunchKey therefore execute the same instruction
// stream over the same geometry — the memoization unit of sampled mode
// (internal/sim). Unlike ContentHash this is an approximation by design:
// different address values can change cache behavior, which is exactly the
// drift the sampling envelopes in internal/regress bound.
//
// Kernels are immutable once built, so the digest is memoized per *Kernel
// with the same bounded-FIFO discipline as ContentHash.
func LaunchKey(k *Kernel) [32]byte {
	launchMu.Lock()
	if h, ok := launchCache[k]; ok {
		launchMu.Unlock()
		return h
	}
	launchMu.Unlock()

	h := computeLaunchKey(k)

	launchMu.Lock()
	if _, ok := launchCache[k]; !ok {
		if len(launchOrder) >= launchCacheCap {
			delete(launchCache, launchOrder[0])
			launchOrder = launchOrder[1:]
		}
		launchCache[k] = h
		launchOrder = append(launchOrder, k)
	}
	launchMu.Unlock()
	return h
}

const launchCacheCap = 1024

var (
	launchMu    sync.Mutex
	launchCache = make(map[*Kernel][32]byte)
	launchOrder []*Kernel // FIFO eviction order
)

// computeLaunchKey walks the kernel with the same unambiguous framing as
// computeContentHash (strings and slices length-prefixed).
func computeLaunchKey(k *Kernel) [32]byte {
	d := sha256.New()
	buf := make([]byte, 0, 1<<15)
	flush := func() {
		d.Write(buf)
		buf = buf[:0]
	}
	u32 := func(v uint32) { buf = binary.LittleEndian.AppendUint32(buf, v) }
	u64 := func(v uint64) { buf = binary.LittleEndian.AppendUint64(buf, v) }
	str := func(s string) {
		u32(uint32(len(s)))
		buf = append(buf, s...)
	}
	dim := func(v Dim3) { u32(uint32(v.X)); u32(uint32(v.Y)); u32(uint32(v.Z)) }

	str("swiftsim-launch-key 1")
	dim(k.Grid)
	dim(k.Block)
	u32(uint32(k.RegsPerThread))
	u32(uint32(k.SharedMemPerBlock))
	u32(uint32(len(k.Blocks)))
	for bi := range k.Blocks {
		b := &k.Blocks[bi]
		u32(uint32(len(b.Warps)))
		for _, w := range b.Warps {
			u32(uint32(len(w)))
			for i := range w {
				in := &w[i]
				u64(in.PC)
				buf = append(buf, byte(in.Op), byte(in.Dst), byte(in.Src[0]), byte(in.Src[1]))
				u32(in.ActiveMask)
				u32(uint32(len(in.Addrs)))
				if len(buf) >= 1<<15-64 {
					flush()
				}
			}
		}
	}
	flush()
	var out [32]byte
	d.Sum(out[:0])
	return out
}
