// Package trace defines Swift-Sim's architecture-independent application
// trace representation and its text serialization (the ".sgt" format).
//
// The paper's frontend captures traces with an NVBit extension on real
// NVIDIA hardware and stresses that the traces are independent of the GPU
// being simulated. This package is the equivalent substrate: traces carry
// only what the performance model needs — per-warp instruction streams with
// register dependencies, opcode classes, active masks, and per-thread memory
// addresses for load/store instructions.
package trace

import (
	"fmt"
	"math/bits"
)

// OpClass classifies an instruction by the execution unit that retires it.
type OpClass uint8

const (
	// OpInt executes on the INT units (integer ALU, address arithmetic).
	OpInt OpClass = iota
	// OpSP executes on the single-precision FP32 units.
	OpSP
	// OpDP executes on the double-precision FP64 units.
	OpDP
	// OpSFU executes on the special-function units (transcendentals).
	OpSFU
	// OpLoadGlobal is a load from global memory through L1/L2/DRAM.
	OpLoadGlobal
	// OpStoreGlobal is a store to global memory (L1 write-through).
	OpStoreGlobal
	// OpLoadShared is a load from per-SM shared memory.
	OpLoadShared
	// OpStoreShared is a store to per-SM shared memory.
	OpStoreShared
	// OpBarrier is a block-wide synchronization (__syncthreads).
	OpBarrier
	// OpExit terminates the warp.
	OpExit

	numOpClasses
)

var opNames = [numOpClasses]string{
	"INT", "SP", "DP", "SFU", "LDG", "STG", "LDS", "STS", "BAR", "EXIT",
}

// String returns the trace-file mnemonic of op.
func (op OpClass) String() string {
	if int(op) < len(opNames) {
		return opNames[op]
	}
	return fmt.Sprintf("OpClass(%d)", uint8(op))
}

// ParseOpClass converts a trace-file mnemonic into an OpClass.
func ParseOpClass(s string) (OpClass, error) {
	for i, n := range opNames {
		if n == s {
			return OpClass(i), nil
		}
	}
	return 0, fmt.Errorf("trace: unknown opcode class %q", s)
}

// IsGlobalMem reports whether op accesses global memory.
func (op OpClass) IsGlobalMem() bool { return op == OpLoadGlobal || op == OpStoreGlobal }

// IsSharedMem reports whether op accesses shared memory.
func (op OpClass) IsSharedMem() bool { return op == OpLoadShared || op == OpStoreShared }

// IsMem reports whether op is handled by the LD/ST unit.
func (op OpClass) IsMem() bool { return op.IsGlobalMem() || op.IsSharedMem() }

// IsALU reports whether op executes on an arithmetic unit
// (INT/SP/DP/SFU).
func (op OpClass) IsALU() bool { return op <= OpSFU }

// Reg identifies an architectural register within a warp. Register 0 is
// reserved to mean "none" (no destination / unused source slot).
type Reg uint8

// RegNone is the absent-register sentinel.
const RegNone Reg = 0

// MaxReg is the largest usable register index.
const MaxReg Reg = 255

// Inst is one warp-level instruction.
type Inst struct {
	// PC is the program counter; instructions at the same PC across
	// warps are "the same instruction" for the per-PC analytical memory
	// model (Eq. 1 of the paper).
	PC uint64
	// Op is the opcode class.
	Op OpClass
	// Dst is the destination register (RegNone if none).
	Dst Reg
	// Src holds up to two source registers (RegNone padding).
	Src [2]Reg
	// ActiveMask is the per-lane execution mask (bit i = lane i active).
	// Warp size is fixed at 32 lanes.
	ActiveMask uint32
	// Addrs holds one byte address per active lane, in ascending lane
	// order, for global and shared memory instructions; it is empty for
	// all other opcode classes.
	Addrs []uint64
}

// ActiveLanes returns the number of active lanes.
func (in Inst) ActiveLanes() int { return bits.OnesCount32(in.ActiveMask) }

// Dim3 is a CUDA-style three-dimensional extent.
type Dim3 struct {
	X, Y, Z int
}

// Count returns the total number of elements in the extent.
func (d Dim3) Count() int { return d.X * d.Y * d.Z }

// String renders the extent as "x,y,z".
func (d Dim3) String() string { return fmt.Sprintf("%d,%d,%d", d.X, d.Y, d.Z) }

// WarpTrace is the instruction stream of a single warp.
type WarpTrace []Inst

// BlockTrace holds the warp traces of one thread block.
type BlockTrace struct {
	// Warps is indexed by the warp's index within the block.
	Warps []WarpTrace
}

// Insts returns the total instruction count in the block.
func (b BlockTrace) Insts() int {
	n := 0
	for _, w := range b.Warps {
		n += len(w)
	}
	return n
}

// Kernel is one kernel launch: a grid of thread blocks plus the static
// resources each block consumes (which bound SM occupancy).
type Kernel struct {
	// Name identifies the kernel.
	Name string
	// Grid and Block are the launch dimensions.
	Grid, Block Dim3
	// RegsPerThread is the register footprint of one thread.
	RegsPerThread int
	// SharedMemPerBlock is the static shared-memory footprint of one
	// block in bytes.
	SharedMemPerBlock int
	// Blocks holds one BlockTrace per thread block, in linearized grid
	// order.
	Blocks []BlockTrace
}

// WarpSize is the fixed number of threads per warp.
const WarpSize = 32

// NumBlocks returns the number of thread blocks in the launch.
func (k *Kernel) NumBlocks() int { return len(k.Blocks) }

// WarpsPerBlock returns the number of warps per thread block.
func (k *Kernel) WarpsPerBlock() int {
	return (k.Block.Count() + WarpSize - 1) / WarpSize
}

// Insts returns the total dynamic instruction count of the kernel.
func (k *Kernel) Insts() int {
	n := 0
	for i := range k.Blocks {
		n += k.Blocks[i].Insts()
	}
	return n
}

// Validate checks structural invariants of the kernel trace and returns a
// descriptive error for the first violation found.
func (k *Kernel) Validate() error {
	if k.Name == "" {
		return fmt.Errorf("trace: kernel with empty name")
	}
	if k.Grid.Count() <= 0 || k.Block.Count() <= 0 {
		return fmt.Errorf("trace: kernel %s: non-positive grid (%v) or block (%v)", k.Name, k.Grid, k.Block)
	}
	if k.Block.Count() > 1024 {
		return fmt.Errorf("trace: kernel %s: block of %d threads exceeds 1024", k.Name, k.Block.Count())
	}
	if len(k.Blocks) != k.Grid.Count() {
		return fmt.Errorf("trace: kernel %s: %d block traces for grid of %d", k.Name, len(k.Blocks), k.Grid.Count())
	}
	if k.RegsPerThread <= 0 {
		return fmt.Errorf("trace: kernel %s: RegsPerThread must be positive, got %d", k.Name, k.RegsPerThread)
	}
	if k.SharedMemPerBlock < 0 {
		return fmt.Errorf("trace: kernel %s: negative SharedMemPerBlock", k.Name)
	}
	wpb := k.WarpsPerBlock()
	for bi := range k.Blocks {
		b := &k.Blocks[bi]
		if len(b.Warps) != wpb {
			return fmt.Errorf("trace: kernel %s block %d: %d warps, want %d", k.Name, bi, len(b.Warps), wpb)
		}
		for wi, w := range b.Warps {
			if err := validateWarp(w); err != nil {
				return fmt.Errorf("trace: kernel %s block %d warp %d: %w", k.Name, bi, wi, err)
			}
		}
	}
	return nil
}

func validateWarp(w WarpTrace) error {
	if len(w) == 0 {
		return fmt.Errorf("empty warp trace")
	}
	for i := range w {
		in := &w[i]
		if in.Op >= numOpClasses {
			return fmt.Errorf("inst %d: invalid opcode class %d", i, in.Op)
		}
		if in.ActiveMask == 0 && in.Op != OpExit && in.Op != OpBarrier {
			return fmt.Errorf("inst %d (%v): zero active mask", i, in.Op)
		}
		if in.Op.IsMem() {
			if got, want := len(in.Addrs), in.ActiveLanes(); got != want {
				return fmt.Errorf("inst %d (%v): %d addresses for %d active lanes", i, in.Op, got, want)
			}
		} else if len(in.Addrs) != 0 {
			return fmt.Errorf("inst %d (%v): non-memory instruction carries addresses", i, in.Op)
		}
		if in.Op == OpExit && i != len(w)-1 {
			return fmt.Errorf("inst %d: EXIT before end of warp trace", i)
		}
	}
	if last := w[len(w)-1]; last.Op != OpExit {
		return fmt.Errorf("warp trace does not end in EXIT")
	}
	return nil
}

// App is a traced application: an ordered list of kernel launches.
type App struct {
	// Name is the application name as used in the paper's figures
	// (e.g. "BFS", "NW", "GRU").
	Name string
	// Suite is the benchmark suite the application comes from.
	Suite string
	// Kernels are executed back to back in order.
	Kernels []*Kernel
}

// Insts returns the total dynamic instruction count of the application.
func (a *App) Insts() int {
	n := 0
	for _, k := range a.Kernels {
		n += k.Insts()
	}
	return n
}

// Validate checks the application and all its kernels.
func (a *App) Validate() error {
	if a.Name == "" {
		return fmt.Errorf("trace: app with empty name")
	}
	if len(a.Kernels) == 0 {
		return fmt.Errorf("trace: app %s has no kernels", a.Name)
	}
	for _, k := range a.Kernels {
		if err := k.Validate(); err != nil {
			return fmt.Errorf("app %s: %w", a.Name, err)
		}
	}
	return nil
}
