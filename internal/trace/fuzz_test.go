package trace

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// validSGT is a small hand-written trace covering every syntactic feature:
// two kernels, multi-block grids, multi-warp blocks, comments, blank
// lines, and instructions with and without address lists.
const validSGT = `sgt 1
# comment lines and blank lines are ignored

app demo suite test kernels 2
kernel k0 grid 2,1,1 block 64,1,1 regs 16 shmem 0
blocktrace 0
warp 0 insts 3
0 LDG 1 0 0 f 10000000 10000004 10000008 1000000c
8 INT 2 1 0 f
16 EXIT 0 0 0 0
warp 1 insts 2
0 SP 1 0 0 3
8 EXIT 0 0 0 0
blocktrace 1
warp 0 insts 3
0 LDG 1 0 0 1 10000040
8 STG 0 1 0 1 20000000
16 EXIT 0 0 0 0
warp 1 insts 2
0 DP 1 0 0 1
8 EXIT 0 0 0 0
kernel k1 grid 1,1,1 block 32,1,1 regs 8 shmem 2048
blocktrace 0
warp 0 insts 5
0 LDS 1 0 0 3 0 4
8 SFU 2 1 0 3
16 BAR 0 0 0 0
24 STS 0 1 0 1 8
32 EXIT 0 0 0 0
endapp
`

// FuzzParseTrace asserts the .sgt parser never panics or runs away on
// arbitrary input, and that any input it accepts survives a
// Write/Read round trip unchanged (the parser and serializer agree).
func FuzzParseTrace(f *testing.F) {
	f.Add(validSGT)
	// Malformed seeds steer the fuzzer toward each parser stage.
	f.Add("")
	f.Add("sgt 1")
	f.Add("sgt 2\napp x suite y kernels 1\n")
	f.Add("sgt 1\napp x suite y kernels 99999999\n")
	f.Add("sgt 1\napp x suite y kernels 1\nkernel k grid 9999999,9999999,9999999 block 1,1,1 regs 0 shmem 0\n")
	f.Add("sgt 1\napp x suite y kernels 1\nkernel k grid 1,1,1 block -5,1,1 regs 0 shmem 0\n")
	f.Add("sgt 1\napp x suite y kernels 1\nkernel k grid 1,1,1 block 32,1,1 regs 8 shmem 0\nblocktrace 0\nwarp 0 insts 67108864\n")
	f.Add("sgt 1\napp x suite y kernels 1\nkernel k grid 1,1,1 block 32,1,1 regs 8 shmem 0\nblocktrace 0\nwarp 0 insts 1\n0 bogus.op 0 0 0 ff\n")
	f.Add(strings.Replace(validSGT, "LDG", "zz.op", 1))
	f.Add(strings.Replace(validSGT, "insts 3", "insts 1", 1))

	f.Fuzz(func(t *testing.T, data string) {
		app, err := Read(strings.NewReader(data))
		if err != nil {
			return // rejected input: must only be reported, never panic
		}
		var buf bytes.Buffer
		if err := Write(&buf, app); err != nil {
			t.Fatalf("serializing accepted trace: %v", err)
		}
		app2, err := Read(&buf)
		if err != nil {
			t.Fatalf("reparsing serialized trace: %v\ninput:\n%s", err, buf.String())
		}
		if !reflect.DeepEqual(app, app2) {
			t.Fatalf("round trip changed the trace\noriginal: %+v\nreparsed: %+v", app, app2)
		}
	})
}
