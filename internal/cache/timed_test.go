package cache

import (
	"testing"
	"testing/quick"

	"swiftsim/internal/config"
	"swiftsim/internal/engine"
	"swiftsim/internal/mem"
	"swiftsim/internal/metrics"
)

// stubDown is a downstream port with fixed latency and optional refusal.
type stubDown struct {
	eng      *engine.Engine
	latency  uint64
	refuse   bool
	reads    []*mem.Request
	writes   []*mem.Request
	inflight int
}

func (s *stubDown) Accept(r *mem.Request) bool {
	if s.refuse {
		return false
	}
	if r.Write {
		s.writes = append(s.writes, r)
		return true
	}
	s.reads = append(s.reads, r)
	s.inflight++
	s.eng.Schedule(s.latency, func() {
		s.inflight--
		r.Complete(mem.LevelDRAM)
	})
	return true
}

// Busy-keeping ticker so the engine does not fast-forward past the stub's
// in-flight completions while the cache itself is idle.
type stubTicker struct{ s *stubDown }

func (t stubTicker) Name() string           { return "stubDown" }
func (t stubTicker) Kind() engine.ModelKind { return engine.CycleAccurate }
func (t stubTicker) Tick(uint64)            {}
func (t stubTicker) Busy() bool             { return t.s.inflight > 0 }

type harness struct {
	eng   *engine.Engine
	cache *Timed
	down  *stubDown
	g     *metrics.Gatherer
}

func newHarness(t *testing.T, cfg config.Cache) *harness {
	t.Helper()
	eng := engine.New()
	g := metrics.New()
	down := &stubDown{eng: eng, latency: 50}
	c := NewTimed("l1", cfg, mem.LevelL1, eng, down, g)
	eng.Register(c)
	eng.Register(stubTicker{down})
	return &harness{eng: eng, cache: c, down: down, g: g}
}

// access issues a read/write and runs the engine until it completes,
// returning the number of cycles elapsed.
func (h *harness) access(t *testing.T, addr uint64, write bool) uint64 {
	t.Helper()
	start := h.eng.Cycle()
	done := false
	r := &mem.Request{Addr: addr, Write: write, Size: 32, Done: func() { done = true }}
	if !h.cache.Accept(r) {
		t.Fatalf("Accept(%#x) rejected", addr)
	}
	if _, err := h.eng.Run(func() bool { return done }, start+100000); err != nil {
		t.Fatalf("run: %v", err)
	}
	return h.eng.Cycle() - start
}

func TestTimedMissThenHitLatency(t *testing.T) {
	cfg := smallCache()
	h := newHarness(t, cfg)
	missLat := h.access(t, 0x1000, false)
	hitLat := h.access(t, 0x1000, false)
	if missLat <= hitLat {
		t.Errorf("miss latency %d not greater than hit latency %d", missLat, hitLat)
	}
	if missLat < h.down.latency {
		t.Errorf("miss latency %d below downstream latency %d", missLat, h.down.latency)
	}
	// Hit latency: 1 cycle queue + HitLatency completion.
	if hitLat < uint64(cfg.HitLatency) || hitLat > uint64(cfg.HitLatency)+3 {
		t.Errorf("hit latency = %d, want ≈%d", hitLat, cfg.HitLatency)
	}
	if h.g.Value("l1.hit") != 1 || h.g.Value("l1.miss") != 1 {
		t.Errorf("hit/miss = %d/%d, want 1/1", h.g.Value("l1.hit"), h.g.Value("l1.miss"))
	}
}

func TestTimedMSHRMergesConcurrentMisses(t *testing.T) {
	h := newHarness(t, smallCache())
	completed := 0
	for i := 0; i < 2; i++ {
		r := &mem.Request{Addr: 0x2000, Size: 32, Done: func() { completed++ }}
		if !h.cache.Accept(r) {
			t.Fatal("Accept rejected")
		}
	}
	if _, err := h.eng.Run(func() bool { return completed == 2 }, 100000); err != nil {
		t.Fatal(err)
	}
	if len(h.down.reads) != 1 {
		t.Errorf("downstream fetches = %d, want 1 (merged)", len(h.down.reads))
	}
	if h.g.Value("l1.mshr_merge") != 1 {
		t.Errorf("mshr_merge = %d, want 1", h.g.Value("l1.mshr_merge"))
	}
}

func TestTimedSectorMissFetchesSeparately(t *testing.T) {
	h := newHarness(t, smallCache())
	completed := 0
	for _, addr := range []uint64{0x2000, 0x2020} { // two sectors, one line
		r := &mem.Request{Addr: addr, Size: 32, Done: func() { completed++ }}
		if !h.cache.Accept(r) {
			t.Fatal("Accept rejected")
		}
	}
	if _, err := h.eng.Run(func() bool { return completed == 2 }, 100000); err != nil {
		t.Fatal(err)
	}
	if len(h.down.reads) != 2 {
		t.Errorf("downstream fetches = %d, want 2 (distinct sectors)", len(h.down.reads))
	}
}

func TestTimedMSHRCapacityStall(t *testing.T) {
	cfg := smallCache()
	cfg.MSHREntries = 1
	cfg.MSHRMaxMerge = 1
	h := newHarness(t, cfg)
	completed := 0
	// Two misses to different lines: the second must stall until the
	// first fill frees the only MSHR, but both eventually complete.
	for _, addr := range []uint64{0x0, 0x4000} {
		r := &mem.Request{Addr: addr, Size: 32, Done: func() { completed++ }}
		if !h.cache.Accept(r) {
			t.Fatal("Accept rejected")
		}
	}
	if _, err := h.eng.Run(func() bool { return completed == 2 }, 100000); err != nil {
		t.Fatal(err)
	}
	if h.g.Value("l1.mshr_stall") == 0 {
		t.Error("expected MSHR stall cycles")
	}
}

func TestTimedBankBackpressure(t *testing.T) {
	h := newHarness(t, smallCache())
	h.down.refuse = true // nothing drains
	accepted := 0
	for i := 0; i < bankQueueDepth+5; i++ {
		// Same bank: sector address stride of banks*sectorBytes.
		r := &mem.Request{Addr: uint64(i) * 64 * 2, Size: 32}
		if h.cache.Accept(r) {
			accepted++
		}
	}
	if accepted != bankQueueDepth {
		t.Errorf("accepted = %d, want %d", accepted, bankQueueDepth)
	}
	if h.g.Value("l1.bank_conflict") == 0 {
		t.Error("expected bank conflicts recorded")
	}
}

func TestTimedWriteThroughForwardsWrites(t *testing.T) {
	cfg := smallCache()
	cfg.WriteBack = false
	h := newHarness(t, cfg)
	h.access(t, 0x3000, true)
	if len(h.down.writes) != 1 {
		t.Fatalf("downstream writes = %d, want 1 (write-through)", len(h.down.writes))
	}
	if h.g.Value("l1.write") != 1 {
		t.Errorf("write counter = %d, want 1", h.g.Value("l1.write"))
	}
	// Write-through no-allocate: a subsequent read must miss.
	h.down.refuse = false
	if got := h.g.Value("l1.miss"); got != 1 {
		t.Errorf("write miss count = %d, want 1", got)
	}
}

func TestTimedWriteBackDirtyEviction(t *testing.T) {
	cfg := smallCache()
	cfg.WriteBack = true
	cfg.Ways = 1
	h := newHarness(t, cfg)
	stride := uint64(cfg.Sets * cfg.LineBytes)
	h.access(t, 0, true) // dirty line in set 0
	if len(h.down.writes) != 0 {
		t.Fatal("write-back cache forwarded a store downstream")
	}
	h.access(t, stride, false) // read miss evicts dirty line
	if len(h.down.writes) != 1 {
		t.Fatalf("downstream writes = %d, want 1 (dirty writeback)", len(h.down.writes))
	}
	if h.g.Value("l1.writeback") != 1 || h.g.Value("l1.eviction") != 1 {
		t.Errorf("writeback/eviction = %d/%d, want 1/1",
			h.g.Value("l1.writeback"), h.g.Value("l1.eviction"))
	}
}

func TestTimedServicedByPropagation(t *testing.T) {
	h := newHarness(t, smallCache())
	var lvl mem.Level
	done := false
	r := &mem.Request{Addr: 0x5000, Size: 32}
	r.Done = func() { lvl = r.ServicedBy; done = true }
	h.cache.Accept(r)
	if _, err := h.eng.Run(func() bool { return done }, 100000); err != nil {
		t.Fatal(err)
	}
	if lvl != mem.LevelDRAM {
		t.Errorf("miss ServicedBy = %v, want DRAM (stub)", lvl)
	}
	done = false
	r2 := &mem.Request{Addr: 0x5000, Size: 32}
	r2.Done = func() { lvl = r2.ServicedBy; done = true }
	h.cache.Accept(r2)
	if _, err := h.eng.Run(func() bool { return done }, 200000); err != nil {
		t.Fatal(err)
	}
	if lvl != mem.LevelL1 {
		t.Errorf("hit ServicedBy = %v, want L1", lvl)
	}
}

func TestTimedBusyLifecycle(t *testing.T) {
	h := newHarness(t, smallCache())
	if h.cache.Busy() {
		t.Fatal("fresh cache reports busy")
	}
	done := false
	r := &mem.Request{Addr: 0x100, Size: 32, Done: func() { done = true }}
	h.cache.Accept(r)
	if !h.cache.Busy() {
		t.Fatal("cache with queued request reports idle")
	}
	if _, err := h.eng.Run(func() bool { return done }, 100000); err != nil {
		t.Fatal(err)
	}
	if h.cache.Busy() {
		t.Error("cache busy after all requests completed")
	}
}

// TestQuickTimedMatchesFunctional: issuing reads one at a time, the timed
// cache's hit/miss counts must match the functional reference exactly for
// any address stream and any replacement policy.
func TestQuickTimedMatchesFunctional(t *testing.T) {
	f := func(seed int64, nRaw uint8, polRaw uint8) bool {
		n := 1 + int(nRaw)%100
		pol := config.Replacement(int(polRaw) % 3)
		cfg := smallCache()
		cfg.Replacement = pol

		ref := NewFunctional(cfg)
		h := newHarness(t, cfg)

		rng := newXorshift(uint64(seed)*2 + 1)
		for i := 0; i < n; i++ {
			addr := (rng.next() % 128) * 32 // 128 sectors
			refHit := ref.Access(addr, false)
			before := h.g.Value("l1.hit")
			h.access(t, addr, false)
			timedHit := h.g.Value("l1.hit") > before
			if refHit != timedHit {
				t.Logf("divergence at access %d addr %#x: ref=%v timed=%v", i, addr, refHit, timedHit)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

type xorshift struct{ s uint64 }

func newXorshift(seed uint64) *xorshift { return &xorshift{s: seed | 1} }
func (x *xorshift) next() uint64 {
	x.s ^= x.s << 13
	x.s ^= x.s >> 7
	x.s ^= x.s << 17
	return x.s
}

// TestQuickMSHRConservation: every request added to an MSHR is released by
// fills exactly once.
func TestQuickMSHRConservation(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := 1 + int(nRaw)%60
		m := newMSHR(8, 4)
		rng := newXorshift(uint64(seed)*2 + 1)
		added, released := 0, 0
		type pend struct {
			line   uint64
			sector uint
		}
		var pending []pend
		for i := 0; i < n; i++ {
			la := rng.next() % 4
			sec := uint(rng.next() % 4)
			switch m.add(la, sec, &mem.Request{}) {
			case mshrStall:
				// Drain one pending fill to make progress.
				if len(pending) > 0 {
					p := pending[0]
					pending = pending[1:]
					released += len(m.fill(p.line, p.sector))
				}
			case mshrNewEntry, mshrNewSector:
				added++
				pending = append(pending, pend{la, sec})
			case mshrMerged:
				added++
			}
		}
		for _, p := range pending {
			released += len(m.fill(p.line, p.sector))
		}
		return released == added && m.used() == 0 && m.pendingWaiters() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
