package cache

import (
	"fmt"

	"swiftsim/internal/config"
	"swiftsim/internal/engine"
	"swiftsim/internal/mem"
	"swiftsim/internal/metrics"
	"swiftsim/internal/obs"
)

// bankQueueDepth bounds each bank's input queue; Accept exerts
// backpressure beyond it.
const bankQueueDepth = 16

// Timed is the cycle-accurate sectored cache module. It models banked
// access with conflicts, hit latency, MSHR allocation/merging with stalls,
// streaming (non-reserving) L1 behaviour, write-through or write-back
// policies, and dirty evictions. It implements engine.Ticker on the
// upstream side and mem.Port for request entry; downstream traffic goes out
// through the port supplied at construction.
type Timed struct {
	name  string
	cfg   config.Cache
	level mem.Level
	eng   engine.Context
	wake  func() // engine activation callback (nil when standalone)
	down  mem.Port

	tags  *tags
	mshr  *mshrTable
	banks [][]*mem.Request // per-bank FIFO input queues

	// toDown holds downstream requests (fetches, write-throughs,
	// writebacks) not yet accepted by the next level.
	toDown []*mem.Request

	// inflight counts upstream requests accepted but not yet completed.
	inflight int

	hits, misses *metrics.Counter
	// readHits/readMisses count the read subset of hits/misses, so hit
	// rates can be compared against read-only models (the reuse profiler
	// never services a store from the L1).
	readHits, readMisses *metrics.Counter
	sectorMisses         *metrics.Counter // line present, sector absent
	bankConflicts        *metrics.Counter
	mshrMerges           *metrics.Counter
	mshrStalls           *metrics.Counter
	evictions            *metrics.Counter
	writebacks           *metrics.Counter
	writeAccesses        *metrics.Counter

	// tracing. trOn caches tr.Enabled(RequestLevel); with tracing off the
	// request path's only observability cost is this bool.
	tr    *obs.Tracer
	trTid int32
	trOn  bool
}

// SetTracer installs the cache's tracer (nil for off) and registers its
// trace track. Request lifecycle spans (accept → retire) are emitted at
// RequestLevel, named for the hierarchy level that serviced the request.
func (c *Timed) SetTracer(t *obs.Tracer) {
	c.tr = t
	c.trOn = t.Enabled(obs.RequestLevel)
	if c.trOn {
		c.trTid = t.RegisterTrack(c.name)
	}
}

// NewTimed constructs a cycle-accurate cache named name (the metrics
// prefix), at hierarchy level level, writing downstream traffic to down.
func NewTimed(name string, cfg config.Cache, level mem.Level, eng engine.Context, down mem.Port, g *metrics.Gatherer) *Timed {
	c := &Timed{
		name:          name,
		cfg:           cfg,
		level:         level,
		eng:           eng,
		down:          down,
		tags:          newTags(cfg),
		mshr:          newMSHR(cfg.MSHREntries, cfg.MSHRMaxMerge),
		banks:         make([][]*mem.Request, cfg.Banks),
		hits:          g.Counter(name + ".hit"),
		misses:        g.Counter(name + ".miss"),
		readHits:      g.Counter(name + ".read_hit"),
		readMisses:    g.Counter(name + ".read_miss"),
		sectorMisses:  g.Counter(name + ".sector_miss"),
		bankConflicts: g.Counter(name + ".bank_conflict"),
		mshrMerges:    g.Counter(name + ".mshr_merge"),
		mshrStalls:    g.Counter(name + ".mshr_stall"),
		evictions:     g.Counter(name + ".eviction"),
		writebacks:    g.Counter(name + ".writeback"),
		writeAccesses: g.Counter(name + ".write"),
	}
	return c
}

// Name implements engine.Module.
func (c *Timed) Name() string { return c.name }

// Kind implements engine.Module.
func (c *Timed) Kind() engine.ModelKind { return engine.CycleAccurate }

// Busy implements engine.Ticker: the cache has per-cycle work while any
// request is queued, in flight, or waiting to go downstream.
func (c *Timed) Busy() bool {
	return c.inflight > 0 || len(c.toDown) > 0
}

// SetWake implements engine.WakeAware: an idle cache leaves the engine's
// per-cycle tick set and re-enters it when a request arrives.
func (c *Timed) SetWake(wake func()) { c.wake = wake }

// Accept implements mem.Port. Requests are routed to a bank by sector
// address; a full bank queue rejects the request.
func (c *Timed) Accept(r *mem.Request) bool {
	b := c.bankOf(r.Addr)
	if len(c.banks[b]) >= bankQueueDepth {
		c.bankConflicts.Inc()
		return false
	}
	c.banks[b] = append(c.banks[b], r)
	c.inflight++
	if c.trOn {
		r.T0 = c.eng.Cycle()
	}
	if c.wake != nil {
		c.wake()
	}
	return true
}

func (c *Timed) bankOf(addr uint64) int {
	return int((addr >> c.tags.sectorShift) % uint64(c.cfg.Banks))
}

// PreTick implements engine.PreTicker: drain pending downstream traffic.
// The engine runs it immediately before Tick in serial mode, and hoists it
// into the serial pre-phase of a parallel cycle so a sharded L1's pushes
// into the shared NoC/L2 happen in registration order.
func (c *Timed) PreTick(cycle uint64) {
	c.drainDown()
}

// Tick implements engine.Ticker: let each bank process up to Throughput
// requests. Downstream drains happen in PreTick.
func (c *Timed) Tick(cycle uint64) {
	for b := range c.banks {
		for n := 0; n < c.cfg.Throughput && len(c.banks[b]) > 0; n++ {
			r := c.banks[b][0]
			if !c.process(r) {
				// MSHR stall: head-of-line blocks the bank.
				c.mshrStalls.Inc()
				break
			}
			c.banks[b] = c.banks[b][1:]
		}
	}
}

func (c *Timed) drainDown() {
	for len(c.toDown) > 0 {
		if !c.down.Accept(c.toDown[0]) {
			return
		}
		c.toDown = c.toDown[1:]
	}
}

// process services one request; it returns false if the request must stall
// (MSHR full or merge limit reached).
func (c *Timed) process(r *mem.Request) bool {
	if r.Write {
		c.processWrite(r)
		return true
	}
	l, sectorHit := c.tags.lookup(r.Addr)
	if sectorHit {
		c.hits.Inc()
		c.readHits.Inc()
		c.complete(r, c.level)
		return true
	}
	// Miss: park in the MSHR and fetch the sector downstream if needed.
	lineAddr := c.tags.lineAddr(r.Addr)
	sector := c.tags.sector(r.Addr)
	switch c.mshr.add(lineAddr, sector, r) {
	case mshrStall:
		return false
	case mshrMerged:
		c.mshrMerges.Inc()
	case mshrNewSector, mshrNewEntry:
		c.fetch(r.Addr, r.PC, r.SMID)
	}
	if l != nil {
		c.sectorMisses.Inc()
	}
	c.misses.Inc()
	c.readMisses.Inc()
	return true
}

func (c *Timed) processWrite(r *mem.Request) {
	c.writeAccesses.Inc()
	if c.cfg.WriteBack {
		// Write-back with write-allocate at sector granularity: a
		// store to a resident sector marks it dirty; a store miss
		// installs the sector directly (stores overwrite the whole
		// sector in this model, so no fetch-on-write is needed).
		if _, hit := c.tags.lookup(r.Addr); hit {
			c.hits.Inc()
		} else {
			c.misses.Inc()
			c.installSector(r.Addr)
		}
		c.tags.markDirty(r.Addr)
	} else {
		// Write-through, no-allocate (streaming L1): update the
		// sector if resident, and always forward the write.
		if _, hit := c.tags.lookup(r.Addr); hit {
			c.hits.Inc()
		} else {
			c.misses.Inc()
		}
		c.forwardWrite(r)
	}
	// The store itself retires after the hit latency regardless of the
	// downstream write completing (GPU stores are fire-and-forget).
	c.complete(r, c.level)
}

// fetch issues a downstream read for the sector containing addr.
func (c *Timed) fetch(addr uint64, pc uint64, smid int) {
	sectorAddr := addr &^ uint64(c.cfg.SectorBytes-1)
	lineAddr := c.tags.lineAddr(addr)
	sector := c.tags.sector(addr)
	dr := mem.GetRequest()
	dr.Addr = sectorAddr
	dr.Size = c.cfg.SectorBytes
	dr.PC = pc
	dr.SMID = smid
	// The fetch request's life ends when its fill callback has run (the
	// NoC return path and the downstream level have both let go of it by
	// then), so the creator recycles it here.
	dr.Done = func() {
		c.onFill(lineAddr, sector, sectorAddr, dr.ServicedBy)
		mem.PutRequest(dr)
	}
	c.toDown = append(c.toDown, dr)
}

func (c *Timed) forwardWrite(r *mem.Request) {
	w := mem.GetRequest()
	w.Addr = r.Addr &^ uint64(c.cfg.SectorBytes-1)
	w.Write = true
	w.Size = c.cfg.SectorBytes
	w.PC = r.PC
	w.SMID = r.SMID
	c.toDown = append(c.toDown, w)
}

// onFill handles a sector arriving from downstream: install it, write back
// any dirty eviction, and release the requests parked on it.
func (c *Timed) onFill(lineAddr uint64, sector uint, sectorAddr uint64, from mem.Level) {
	c.installSector(sectorAddr)
	for _, waiter := range c.mshr.fill(lineAddr, sector) {
		waiter.ServicedBy = from
		c.complete(waiter, from)
	}
}

// installSector installs addr's sector, emitting writebacks for dirty
// sectors of any displaced line.
func (c *Timed) installSector(addr uint64) {
	ev := c.tags.install(addr)
	if !ev.wasValid {
		return
	}
	c.evictions.Inc()
	if !c.cfg.WriteBack || ev.dirtySector == 0 {
		return
	}
	base := ev.lineAddr << c.tags.lineShift
	for s := 0; s < c.tags.sectorsPerLine; s++ {
		if ev.dirtySector&(1<<uint(s)) == 0 {
			continue
		}
		c.writebacks.Inc()
		wb := mem.GetRequest()
		wb.Addr = base + uint64(s*c.cfg.SectorBytes)
		wb.Write = true
		wb.Size = c.cfg.SectorBytes
		c.toDown = append(c.toDown, wb)
	}
}

// complete retires an upstream request after the hit latency.
func (c *Timed) complete(r *mem.Request, lvl mem.Level) {
	c.eng.Schedule(uint64(c.cfg.HitLatency), func() {
		c.inflight--
		if c.trOn {
			// Emit before Complete: the creator's Done callback may recycle
			// r, and a recycled request must not be read.
			c.tr.Emit(obs.Event{Name: lvl.String(), Cat: "mem", Ph: obs.PhaseSpan,
				Ts: r.T0, Dur: c.eng.Cycle() - r.T0, Tid: c.trTid,
				Arg1Name: "addr", Arg1: r.Addr, Arg2Name: "sm", Arg2: uint64(r.SMID)})
		}
		// Decide ownership before Complete: a creator's Done callback may
		// recycle r (zeroing Done), and checking afterwards would free it
		// a second time.
		fireAndForget := r.Done == nil
		r.Complete(lvl)
		if fireAndForget {
			// Fire-and-forget write traffic ends here; the completing
			// consumer recycles it.
			mem.PutRequest(r)
		}
	})
}

// Invalidate drops all cached lines, modeling the L1 flush real GPUs
// perform at kernel boundaries. It must only be used on write-through
// caches (no dirty data to lose); in-flight MSHR fills are unaffected and
// will re-install their sectors.
func (c *Timed) Invalidate() {
	c.tags.invalidateAll()
}

// MSHRUsed exposes MSHR occupancy for tests and debugging.
func (c *Timed) MSHRUsed() int { return c.mshr.used() }

func (c *Timed) String() string {
	return fmt.Sprintf("%s: %d KiB %d-way sectored cache (%s)", c.name,
		c.cfg.SizeBytes()/1024, c.cfg.Ways, c.cfg.Replacement)
}
