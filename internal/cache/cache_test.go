package cache

import (
	"math/rand"
	"testing"

	"swiftsim/internal/config"
	"swiftsim/internal/mem"
)

func smallCache() config.Cache {
	return config.Cache{
		Sets: 4, Ways: 2, LineBytes: 128, SectorBytes: 32, Banks: 2,
		MSHREntries: 4, MSHRMaxMerge: 2, HitLatency: 4,
		Replacement: config.LRU, Throughput: 1,
	}
}

func TestFunctionalHitAfterMiss(t *testing.T) {
	f := NewFunctional(smallCache())
	if f.Access(0x1000, false) {
		t.Fatal("cold access hit")
	}
	if !f.Access(0x1000, false) {
		t.Fatal("second access missed")
	}
	if f.Accesses != 2 || f.Hits != 1 {
		t.Errorf("accesses/hits = %d/%d, want 2/1", f.Accesses, f.Hits)
	}
	if got := f.HitRate(); got != 0.5 {
		t.Errorf("HitRate = %v, want 0.5", got)
	}
}

func TestFunctionalSectorGranularity(t *testing.T) {
	f := NewFunctional(smallCache())
	f.Access(0x1000, false) // sector 0 of line
	if f.Access(0x1020, false) {
		t.Fatal("different sector of same line must miss (sectored cache)")
	}
	if !f.Access(0x1020, false) {
		t.Fatal("sector should now be resident")
	}
	if !f.Access(0x1000, false) {
		t.Fatal("first sector must remain resident")
	}
}

func TestFunctionalEviction(t *testing.T) {
	cfg := smallCache() // 4 sets × 2 ways
	f := NewFunctional(cfg)
	// Three lines mapping to the same set (stride = sets*lineBytes).
	stride := uint64(cfg.Sets * cfg.LineBytes)
	f.Access(0, false)
	f.Access(stride, false)
	f.Access(2*stride, false) // evicts line 0 under LRU
	if f.Access(0, false) {
		t.Fatal("evicted line reported hit")
	}
}

func TestLRUvsFIFO(t *testing.T) {
	// Access pattern where LRU and FIFO choose different victims:
	// fill A, B; touch A; insert C. LRU evicts B, FIFO evicts A.
	run := func(rep config.Replacement) (aHit bool) {
		cfg := smallCache()
		cfg.Replacement = rep
		f := NewFunctional(cfg)
		stride := uint64(cfg.Sets * cfg.LineBytes)
		f.Access(0, false)        // A
		f.Access(stride, false)   // B
		f.Access(0, false)        // touch A
		f.Access(2*stride, false) // C evicts
		return f.Access(0, false)
	}
	if !run(config.LRU) {
		t.Error("LRU: A must survive (B was least recently used)")
	}
	if run(config.FIFO) {
		t.Error("FIFO: A must be evicted (oldest fill)")
	}
}

func TestRandomPolicyDeterministic(t *testing.T) {
	run := func() []bool {
		cfg := smallCache()
		cfg.Replacement = config.Random
		f := NewFunctional(cfg)
		r := rand.New(rand.NewSource(7))
		var outcomes []bool
		for i := 0; i < 200; i++ {
			outcomes = append(outcomes, f.Access(uint64(r.Intn(64))*32, false))
		}
		return outcomes
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("random replacement not deterministic at access %d", i)
		}
	}
}

func TestFunctionalReset(t *testing.T) {
	f := NewFunctional(smallCache())
	f.Access(0, false)
	f.Reset()
	if f.Accesses != 0 || f.Hits != 0 {
		t.Fatal("Reset did not clear stats")
	}
	if f.Access(0, false) {
		t.Fatal("Reset did not clear tags")
	}
}

func TestMSHRMergeAndFill(t *testing.T) {
	m := newMSHR(2, 4)
	r1 := &mem.Request{Addr: 0}
	r2 := &mem.Request{Addr: 0}
	r3 := &mem.Request{Addr: 32}
	if got := m.add(0, 0, r1); got != mshrNewEntry {
		t.Fatalf("first add = %v, want new entry", got)
	}
	if got := m.add(0, 0, r2); got != mshrMerged {
		t.Fatalf("same-sector add = %v, want merged", got)
	}
	if got := m.add(0, 1, r3); got != mshrNewSector {
		t.Fatalf("new-sector add = %v, want new sector", got)
	}
	if m.used() != 1 || m.pendingWaiters() != 3 {
		t.Fatalf("used/waiters = %d/%d, want 1/3", m.used(), m.pendingWaiters())
	}
	done := m.fill(0, 0)
	if len(done) != 2 {
		t.Fatalf("fill sector 0 released %d, want 2", len(done))
	}
	if m.used() != 1 {
		t.Fatal("entry removed while sector 1 still pending")
	}
	done = m.fill(0, 1)
	if len(done) != 1 || done[0] != r3 {
		t.Fatalf("fill sector 1 released %v", done)
	}
	if m.used() != 0 {
		t.Fatal("entry not removed after all sectors filled")
	}
}

func TestMSHRStalls(t *testing.T) {
	m := newMSHR(1, 2)
	m.add(0, 0, &mem.Request{})
	m.add(0, 0, &mem.Request{})
	if got := m.add(0, 0, &mem.Request{}); got != mshrStall {
		t.Fatalf("merge beyond limit = %v, want stall", got)
	}
	if got := m.add(1, 0, &mem.Request{}); got != mshrStall {
		t.Fatalf("allocation beyond capacity = %v, want stall", got)
	}
}

func TestMSHRFillUnknownLine(t *testing.T) {
	m := newMSHR(1, 1)
	if got := m.fill(42, 0); got != nil {
		t.Fatalf("fill of unknown line returned %v", got)
	}
}
