// Package cache implements Swift-Sim's sectored cache substrate: the
// cycle-accurate banked cache module with MSHRs used by the detailed
// simulators (L1 and L2 of Table II), pluggable replacement policies
// (LRU/FIFO/Random — the flexibility the paper contrasts against
// LRU-only analytical cache models), and a functional (timeless) variant
// used to extract the per-PC hit rates consumed by the analytical memory
// model of Eq. 1.
package cache

import (
	"fmt"
	"math/bits"

	"swiftsim/internal/config"
)

// line is one cache line with per-sector valid and dirty bits.
type line struct {
	lineAddr    uint64 // addr >> lineShift; tag+index combined
	valid       bool
	sectorValid uint32
	sectorDirty uint32
	lastUse     uint64 // LRU stamp
	fillSeq     uint64 // FIFO stamp
}

// policy selects victims and maintains recency state.
type policy interface {
	// touch records a hit on the line.
	touch(l *line, clock uint64)
	// filled records that the line was (re)allocated.
	filled(l *line, clock uint64)
	// victim picks the way to evict within set (all ways valid).
	victim(set []line) int
}

type lruPolicy struct{}

func (lruPolicy) touch(l *line, clock uint64)  { l.lastUse = clock }
func (lruPolicy) filled(l *line, clock uint64) { l.lastUse = clock; l.fillSeq = clock }
func (lruPolicy) victim(set []line) int {
	best, bestUse := 0, set[0].lastUse
	for i := 1; i < len(set); i++ {
		if set[i].lastUse < bestUse {
			best, bestUse = i, set[i].lastUse
		}
	}
	return best
}

type fifoPolicy struct{}

func (fifoPolicy) touch(*line, uint64)          {}
func (fifoPolicy) filled(l *line, clock uint64) { l.fillSeq = clock }
func (fifoPolicy) victim(set []line) int {
	best, bestSeq := 0, set[0].fillSeq
	for i := 1; i < len(set); i++ {
		if set[i].fillSeq < bestSeq {
			best, bestSeq = i, set[i].fillSeq
		}
	}
	return best
}

// randomPolicy uses a deterministic xorshift64 stream so simulations are
// reproducible run to run.
type randomPolicy struct {
	state uint64
}

func (randomPolicy) touch(*line, uint64)  {}
func (randomPolicy) filled(*line, uint64) {}
func (p *randomPolicy) victim(set []line) int {
	p.state ^= p.state << 13
	p.state ^= p.state >> 7
	p.state ^= p.state << 17
	return int(p.state % uint64(len(set)))
}

func newPolicy(r config.Replacement) policy {
	switch r {
	case config.FIFO:
		return fifoPolicy{}
	case config.Random:
		return &randomPolicy{state: 0x9e3779b97f4a7c15}
	default:
		return lruPolicy{}
	}
}

// tags is the sectored tag array shared by the timed and functional caches.
type tags struct {
	cfg            config.Cache
	lineShift      uint
	sectorShift    uint
	setMask        uint64
	sectorsPerLine int
	lines          []line // sets × ways
	pol            policy
	clock          uint64
}

func newTags(cfg config.Cache) *tags {
	return &tags{
		cfg:            cfg,
		lineShift:      uint(bits.TrailingZeros(uint(cfg.LineBytes))),
		sectorShift:    uint(bits.TrailingZeros(uint(cfg.SectorBytes))),
		setMask:        uint64(cfg.Sets - 1),
		sectorsPerLine: cfg.SectorsPerLine(),
		lines:          make([]line, cfg.Sets*cfg.Ways),
		pol:            newPolicy(cfg.Replacement),
	}
}

func (t *tags) lineAddr(addr uint64) uint64 { return addr >> t.lineShift }
func (t *tags) setIndex(addr uint64) int    { return int((addr >> t.lineShift) & t.setMask) }
func (t *tags) sector(addr uint64) uint     { return uint(addr>>t.sectorShift) & uint(t.sectorsPerLine-1) }

func (t *tags) set(addr uint64) []line {
	si := t.setIndex(addr)
	return t.lines[si*t.cfg.Ways : (si+1)*t.cfg.Ways]
}

// find returns the line holding addr, or nil.
func (t *tags) find(addr uint64) *line {
	la := t.lineAddr(addr)
	set := t.set(addr)
	for i := range set {
		if set[i].valid && set[i].lineAddr == la {
			return &set[i]
		}
	}
	return nil
}

// lookup probes for addr's sector. It returns the line (if the line is
// present at all) and whether the requested sector is valid.
func (t *tags) lookup(addr uint64) (l *line, sectorHit bool) {
	l = t.find(addr)
	if l == nil {
		return nil, false
	}
	t.clock++
	t.pol.touch(l, t.clock)
	return l, l.sectorValid&(1<<t.sector(addr)) != 0
}

// evicted describes a line displaced by install.
type evicted struct {
	lineAddr    uint64
	dirtySector uint32 // per-sector dirty mask at eviction
	wasValid    bool
}

// install makes room for addr's line (if absent) and marks the addressed
// sector valid. It returns the displaced line, whose dirty sectors the
// caller must write back for write-back caches.
func (t *tags) install(addr uint64) evicted {
	la := t.lineAddr(addr)
	set := t.set(addr)
	t.clock++

	// Line already present: just validate the sector.
	for i := range set {
		if set[i].valid && set[i].lineAddr == la {
			set[i].sectorValid |= 1 << t.sector(addr)
			t.pol.touch(&set[i], t.clock)
			return evicted{}
		}
	}
	// Prefer an invalid way.
	way := -1
	for i := range set {
		if !set[i].valid {
			way = i
			break
		}
	}
	var ev evicted
	if way < 0 {
		way = t.pol.victim(set)
		v := &set[way]
		ev = evicted{lineAddr: v.lineAddr, dirtySector: v.sectorDirty, wasValid: true}
	}
	set[way] = line{lineAddr: la, valid: true, sectorValid: 1 << t.sector(addr)}
	t.pol.filled(&set[way], t.clock)
	return ev
}

// invalidateAll drops every line (kernel-boundary L1 invalidation; GPU L1s
// are not coherent and are flushed between kernels). Write-through caches
// hold no dirty data, so no writebacks are needed.
func (t *tags) invalidateAll() {
	for i := range t.lines {
		t.lines[i] = line{}
	}
}

// markDirty sets the dirty bit of addr's sector; the line and sector must
// be present.
func (t *tags) markDirty(addr uint64) {
	if l := t.find(addr); l != nil {
		l.sectorDirty |= 1 << t.sector(addr)
	}
}

// Functional is a timeless sectored cache: it reports hit/miss per access
// without modeling latency, banking or MSHRs. The analytical memory model
// uses it (or the reuse-distance profiler) to obtain the hit rates of
// Eq. 1; tests use it as a reference model for the timed cache.
type Functional struct {
	t        *tags
	Accesses uint64
	Hits     uint64
}

// NewFunctional returns a functional cache with the given geometry. The
// configuration must be valid per config.GPU.Validate rules.
func NewFunctional(cfg config.Cache) *Functional {
	return &Functional{t: newTags(cfg)}
}

// Access simulates one sector access and reports whether it hit. Misses
// install the sector (write-allocate; for write-through L1s the caller
// decides whether to count store hits).
func (f *Functional) Access(addr uint64, write bool) bool {
	f.Accesses++
	_, hit := f.t.lookup(addr)
	if hit {
		f.Hits++
	} else {
		f.t.install(addr)
	}
	if write {
		f.t.markDirty(addr)
	}
	return hit
}

// HitRate returns the fraction of accesses that hit.
func (f *Functional) HitRate() float64 {
	if f.Accesses == 0 {
		return 0
	}
	return float64(f.Hits) / float64(f.Accesses)
}

// Reset clears all cache state and statistics.
func (f *Functional) Reset() {
	for i := range f.t.lines {
		f.t.lines[i] = line{}
	}
	f.Accesses, f.Hits = 0, 0
}

func (f *Functional) String() string {
	return fmt.Sprintf("functional cache %d sets × %d ways, %.2f%% hit",
		f.t.cfg.Sets, f.t.cfg.Ways, 100*f.HitRate())
}
