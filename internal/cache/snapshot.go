// Snapshot support (snap.Stateful) for the cache substrate. At a quiescent
// kernel boundary a timed cache has no queued, in-flight or pending
// downstream requests; what persists is the tag array (the L2's warmed
// contents are the whole point of checkpoint fan-out), the replacement
// policy's clock and, for Random replacement, the xorshift stream state.
package cache

import (
	"fmt"

	"swiftsim/internal/snap"
)

// lineSnapBytes is the serialized size of one cache line (for allocation
// capping during decode).
const lineSnapBytes = 8 + 1 + 4 + 4 + 8 + 8

// snapSave serializes the tag array.
func (t *tags) snapSave(w *snap.Writer) {
	w.U64(t.clock)
	if rp, ok := t.pol.(*randomPolicy); ok {
		w.U64(rp.state)
	}
	w.U64(uint64(len(t.lines)))
	for i := range t.lines {
		l := &t.lines[i]
		w.U64(l.lineAddr)
		w.Bool(l.valid)
		w.U32(l.sectorValid)
		w.U32(l.sectorDirty)
		w.U64(l.lastUse)
		w.U64(l.fillSeq)
	}
}

// snapLoad restores the tag array; the snapshot's geometry must match the
// assembled configuration.
func (t *tags) snapLoad(r *snap.Reader) error {
	t.clock = r.U64()
	if rp, ok := t.pol.(*randomPolicy); ok {
		rp.state = r.U64()
	}
	n := r.Count(lineSnapBytes)
	if r.Err() != nil {
		return r.Err()
	}
	if n != len(t.lines) {
		r.Failf("tag array has %d lines in the snapshot, %d in the assembly", n, len(t.lines))
		return r.Err()
	}
	for i := range t.lines {
		l := &t.lines[i]
		l.lineAddr = r.U64()
		l.valid = r.Bool()
		l.sectorValid = r.U32()
		l.sectorDirty = r.U32()
		l.lastUse = r.U64()
		l.fillSeq = r.U64()
	}
	return r.Err()
}

// SnapSave implements snap.Stateful.
func (c *Timed) SnapSave(w *snap.Writer) {
	if c.inflight != 0 || len(c.toDown) != 0 || c.mshr.used() != 0 {
		w.Fail(fmt.Errorf("%w: cache %s has %d in-flight requests, %d pending downstream, %d MSHR entries",
			snap.ErrNotQuiescent, c.name, c.inflight, len(c.toDown), c.mshr.used()))
		return
	}
	for b := range c.banks {
		if len(c.banks[b]) != 0 {
			w.Fail(fmt.Errorf("%w: cache %s bank %d holds %d queued requests",
				snap.ErrNotQuiescent, c.name, b, len(c.banks[b])))
			return
		}
	}
	c.tags.snapSave(w)
}

// SnapLoad implements snap.Stateful.
func (c *Timed) SnapLoad(r *snap.Reader) error {
	return c.tags.snapLoad(r)
}

// SnapSave implements snap.Stateful for the functional (timeless) cache —
// the analytical Backend checkpoints its aggregate L2 through this.
func (f *Functional) SnapSave(w *snap.Writer) {
	w.U64(f.Accesses)
	w.U64(f.Hits)
	f.t.snapSave(w)
}

// SnapLoad implements snap.Stateful.
func (f *Functional) SnapLoad(r *snap.Reader) error {
	f.Accesses = r.U64()
	f.Hits = r.U64()
	return f.t.snapLoad(r)
}
