package cache

import "swiftsim/internal/mem"

// mshrWaiter is one request parked on an MSHR entry, waiting for its
// sector to arrive.
type mshrWaiter struct {
	req    *mem.Request
	sector uint
}

// mshrEntry tracks all outstanding misses to one cache line. Sectors are
// requested downstream individually; requests to an already-pending sector
// merge without new downstream traffic (Table II: "8 maximum merge / MSHR").
type mshrEntry struct {
	lineAddr       uint64
	sectorsPending uint32
	waiters        []mshrWaiter
	merged         int // total requests attached, bounded by maxMerge
}

// mshrTable is a fully associative miss-status holding register file keyed
// by line address.
type mshrTable struct {
	entries  map[uint64]*mshrEntry
	capacity int
	maxMerge int
}

func newMSHR(entries, maxMerge int) *mshrTable {
	return &mshrTable{
		entries:  make(map[uint64]*mshrEntry, entries),
		capacity: entries,
		maxMerge: maxMerge,
	}
}

// mshrOutcome reports how lookup/allocate resolved a miss.
type mshrOutcome int

const (
	// mshrStall: no entry available or merge limit reached; the request
	// must retry.
	mshrStall mshrOutcome = iota
	// mshrMerged: attached to an existing entry with the sector already
	// in flight; no downstream request needed.
	mshrMerged
	// mshrNewSector: attached to an existing entry but this sector must
	// be fetched downstream.
	mshrNewSector
	// mshrNewEntry: a fresh entry was allocated; the sector must be
	// fetched downstream.
	mshrNewEntry
)

// add registers a missing request. lineAddr and sector identify the target;
// the caller issues a downstream fetch for outcomes mshrNewSector and
// mshrNewEntry.
func (m *mshrTable) add(lineAddr uint64, sector uint, req *mem.Request) mshrOutcome {
	if e, ok := m.entries[lineAddr]; ok {
		if e.merged >= m.maxMerge {
			return mshrStall
		}
		e.merged++
		e.waiters = append(e.waiters, mshrWaiter{req: req, sector: sector})
		if e.sectorsPending&(1<<sector) != 0 {
			return mshrMerged
		}
		e.sectorsPending |= 1 << sector
		return mshrNewSector
	}
	if len(m.entries) >= m.capacity {
		return mshrStall
	}
	m.entries[lineAddr] = &mshrEntry{
		lineAddr:       lineAddr,
		sectorsPending: 1 << sector,
		waiters:        []mshrWaiter{{req: req, sector: sector}},
		merged:         1,
	}
	return mshrNewEntry
}

// fill resolves the arrival of one sector. It returns the requests that
// were waiting on that sector and removes the entry once all sectors have
// arrived.
func (m *mshrTable) fill(lineAddr uint64, sector uint) []*mem.Request {
	e, ok := m.entries[lineAddr]
	if !ok {
		return nil
	}
	var done []*mem.Request
	remaining := e.waiters[:0]
	for _, w := range e.waiters {
		if w.sector == sector {
			done = append(done, w.req)
		} else {
			remaining = append(remaining, w)
		}
	}
	e.waiters = remaining
	e.sectorsPending &^= 1 << sector
	if e.sectorsPending == 0 {
		delete(m.entries, lineAddr)
	}
	return done
}

// used returns the number of live entries.
func (m *mshrTable) used() int { return len(m.entries) }

// pendingWaiters returns the total number of parked requests (used by
// Busy() and by invariants in tests).
func (m *mshrTable) pendingWaiters() int {
	n := 0
	for _, e := range m.entries {
		n += len(e.waiters)
	}
	return n
}
