package obs

import (
	"bufio"
	"io"
	"strconv"
	"sync"
)

// JSONStream is a streaming Recorder writing Chrome trace-event JSON (the
// "JSON array format" chrome://tracing and Perfetto load) as events
// arrive, so a killed or timed-out run still leaves everything recorded up
// to the cut on disk. Close writes the closing bracket — callers must
// Close (idempotently) on every exit path to get well-terminated JSON; see
// cmd/sweep. It is safe for concurrent use.
type JSONStream struct {
	mu     sync.Mutex
	w      *bufio.Writer
	closer io.Closer // closes the underlying file, if any
	opened bool      // '[' written
	first  bool      // next event is the first (no leading comma)
	closed bool
	err    error
}

// NewJSONStream returns a JSONStream writing to w. If w is an io.Closer
// (a file), Close closes it after terminating the array.
func NewJSONStream(w io.Writer) *JSONStream {
	s := &JSONStream{w: bufio.NewWriterSize(w, 1<<16), first: true}
	if c, ok := w.(io.Closer); ok {
		s.closer = c
	}
	return s
}

// Record implements Recorder. Encoding is hand-rolled: the event schema is
// fixed and flat, and strconv.AppendX into the bufio buffer avoids
// encoding/json's reflection on what can be a very hot path at
// RequestLevel.
func (s *JSONStream) Record(ev *Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || s.err != nil {
		return
	}
	if !s.opened {
		s.opened = true
		s.w.WriteString("[\n")
	}
	if s.first {
		s.first = false
	} else {
		s.w.WriteString(",\n")
	}
	s.writeEvent(ev)
}

// Flush implements Recorder.
func (s *JSONStream) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return s.err
	}
	if s.closed {
		return nil
	}
	s.err = s.w.Flush()
	return s.err
}

// Close implements Recorder: it terminates the JSON array (writing "[]"
// if no event was ever recorded), flushes, and closes the underlying file
// if there is one. Close is idempotent.
func (s *JSONStream) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return s.err
	}
	s.closed = true
	if !s.opened {
		s.w.WriteString("[")
	}
	s.w.WriteString("\n]\n")
	if err := s.w.Flush(); err != nil && s.err == nil {
		s.err = err
	}
	if s.closer != nil {
		if err := s.closer.Close(); err != nil && s.err == nil {
			s.err = err
		}
	}
	return s.err
}

// writeEvent encodes one event. Caller holds s.mu.
func (s *JSONStream) writeEvent(ev *Event) {
	w := s.w
	var num [20]byte
	writeU := func(v uint64) { w.Write(strconv.AppendUint(num[:0], v, 10)) }
	writeI := func(v int64) { w.Write(strconv.AppendInt(num[:0], v, 10)) }

	// For metadata events the trace format puts the metadata *kind*
	// ("thread_name") in the top-level name and the label in args.name;
	// Event stores the kind in Cat and the label in Name, so swap here.
	name := ev.Name
	if ev.Ph == PhaseMeta {
		name = ev.Cat
	}
	w.WriteString(`{"name":`)
	writeJSONString(w, name)
	w.WriteString(`,"ph":"`)
	w.WriteByte(ev.Ph)
	w.WriteString(`","pid":`)
	writeI(int64(ev.Pid))
	w.WriteString(`,"tid":`)
	writeI(int64(ev.Tid))
	switch ev.Ph {
	case PhaseMeta:
		w.WriteString(`,"args":{"name":`)
		writeJSONString(w, ev.Name)
		w.WriteString(`}}`)
		return
	case PhaseCounter:
		w.WriteString(`,"cat":`)
		writeJSONString(w, ev.Cat)
		w.WriteString(`,"ts":`)
		writeU(ev.Ts)
		w.WriteString(`,"args":{`)
		writeJSONString(w, ev.Arg1Name)
		w.WriteString(`:`)
		writeU(ev.Arg1)
		w.WriteString(`}}`)
		return
	}
	w.WriteString(`,"cat":`)
	writeJSONString(w, ev.Cat)
	w.WriteString(`,"ts":`)
	writeU(ev.Ts)
	if ev.Ph == PhaseSpan {
		w.WriteString(`,"dur":`)
		writeU(ev.Dur)
	}
	if ev.Ph == PhaseInstant {
		w.WriteString(`,"s":"t"`)
	}
	if ev.Arg1Name != "" {
		w.WriteString(`,"args":{`)
		writeJSONString(w, ev.Arg1Name)
		w.WriteString(`:`)
		writeU(ev.Arg1)
		if ev.Arg2Name != "" {
			w.WriteString(`,`)
			writeJSONString(w, ev.Arg2Name)
			w.WriteString(`:`)
			writeU(ev.Arg2)
		}
		w.WriteString(`}`)
	}
	w.WriteString(`}`)
}

// writeJSONString writes s as a JSON string. Event names and categories
// are simulator-chosen identifiers (module names, stall reasons), so the
// escape path is cold but still correct for arbitrary input.
func writeJSONString(w *bufio.Writer, s string) {
	w.WriteByte('"')
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"' || c == '\\':
			w.WriteByte('\\')
			w.WriteByte(c)
		case c < 0x20:
			const hex = "0123456789abcdef"
			w.WriteString(`\u00`)
			w.WriteByte(hex[c>>4])
			w.WriteByte(hex[c&0xf])
		default:
			w.WriteByte(c)
		}
	}
	w.WriteByte('"')
}
