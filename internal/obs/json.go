package obs

import (
	"bufio"
	"io"
	"strconv"
	"sync"
)

// JSONStream is a streaming Recorder writing Chrome trace-event JSON (the
// "JSON array format" chrome://tracing and Perfetto load) as events
// arrive, so a killed or timed-out run still leaves everything recorded up
// to the cut on disk. Close writes the closing bracket — callers must
// Close (idempotently) on every exit path to get well-terminated JSON; see
// cmd/sweep. It is safe for concurrent use.
type JSONStream struct {
	mu     sync.Mutex
	w      *bufio.Writer
	buf    []byte    // reusable per-event encode buffer (guarded by mu)
	closer io.Closer // closes the underlying file, if any
	opened bool      // '[' written
	first  bool      // next event is the first (no leading comma)
	closed bool
	err    error
}

// NewJSONStream returns a JSONStream writing to w. The stream buffers
// through a bufio.Writer, flushed by Flush and on Close. If w is an
// io.Closer (a file), Close closes it after terminating the array.
func NewJSONStream(w io.Writer) *JSONStream {
	s := &JSONStream{w: bufio.NewWriterSize(w, 1<<16), first: true}
	if c, ok := w.(io.Closer); ok {
		s.closer = c
	}
	return s
}

// Record implements Recorder. Encoding is hand-rolled: the event schema is
// fixed and flat, and strconv.AppendX into a reusable scratch buffer
// avoids encoding/json's reflection on what can be a very hot path at
// RequestLevel. Each event is encoded into the scratch buffer and handed
// to the buffered writer in one Write, keeping the critical section short
// when many goroutines (parallel sweeps, engine shard barriers) share the
// recorder.
func (s *JSONStream) Record(ev *Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || s.err != nil {
		return
	}
	b := s.buf[:0]
	if !s.opened {
		s.opened = true
		b = append(b, "[\n"...)
	}
	if s.first {
		s.first = false
	} else {
		b = append(b, ",\n"...)
	}
	b = appendEvent(b, ev)
	s.buf = b
	s.w.Write(b)
}

// Flush implements Recorder.
func (s *JSONStream) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return s.err
	}
	if s.closed {
		return nil
	}
	s.err = s.w.Flush()
	return s.err
}

// Close implements Recorder: it terminates the JSON array (writing "[]"
// if no event was ever recorded), flushes, and closes the underlying file
// if there is one. Close is idempotent.
func (s *JSONStream) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return s.err
	}
	s.closed = true
	if !s.opened {
		s.w.WriteString("[")
	}
	s.w.WriteString("\n]\n")
	if err := s.w.Flush(); err != nil && s.err == nil {
		s.err = err
	}
	if s.closer != nil {
		if err := s.closer.Close(); err != nil && s.err == nil {
			s.err = err
		}
	}
	return s.err
}

// appendEvent encodes one event onto b and returns the extended buffer.
func appendEvent(b []byte, ev *Event) []byte {
	// For metadata events the trace format puts the metadata *kind*
	// ("thread_name") in the top-level name and the label in args.name;
	// Event stores the kind in Cat and the label in Name, so swap here.
	name := ev.Name
	if ev.Ph == PhaseMeta {
		name = ev.Cat
	}
	b = append(b, `{"name":`...)
	b = appendJSONString(b, name)
	b = append(b, `,"ph":"`...)
	b = append(b, ev.Ph)
	b = append(b, `","pid":`...)
	b = strconv.AppendInt(b, int64(ev.Pid), 10)
	b = append(b, `,"tid":`...)
	b = strconv.AppendInt(b, int64(ev.Tid), 10)
	switch ev.Ph {
	case PhaseMeta:
		b = append(b, `,"args":{"name":`...)
		b = appendJSONString(b, ev.Name)
		return append(b, `}}`...)
	case PhaseCounter:
		b = append(b, `,"cat":`...)
		b = appendJSONString(b, ev.Cat)
		b = append(b, `,"ts":`...)
		b = strconv.AppendUint(b, ev.Ts, 10)
		b = append(b, `,"args":{`...)
		b = appendJSONString(b, ev.Arg1Name)
		b = append(b, ':')
		b = strconv.AppendUint(b, ev.Arg1, 10)
		return append(b, `}}`...)
	}
	b = append(b, `,"cat":`...)
	b = appendJSONString(b, ev.Cat)
	b = append(b, `,"ts":`...)
	b = strconv.AppendUint(b, ev.Ts, 10)
	if ev.Ph == PhaseSpan {
		b = append(b, `,"dur":`...)
		b = strconv.AppendUint(b, ev.Dur, 10)
	}
	if ev.Ph == PhaseInstant {
		b = append(b, `,"s":"t"`...)
	}
	if ev.Arg1Name != "" {
		b = append(b, `,"args":{`...)
		b = appendJSONString(b, ev.Arg1Name)
		b = append(b, ':')
		b = strconv.AppendUint(b, ev.Arg1, 10)
		if ev.Arg2Name != "" {
			b = append(b, ',')
			b = appendJSONString(b, ev.Arg2Name)
			b = append(b, ':')
			b = strconv.AppendUint(b, ev.Arg2, 10)
		}
		b = append(b, '}')
	}
	return append(b, '}')
}

// appendJSONString appends s as a JSON string. Event names and categories
// are simulator-chosen identifiers (module names, stall reasons), so the
// escape path is cold but still correct for arbitrary input.
func appendJSONString(b []byte, s string) []byte {
	b = append(b, '"')
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"' || c == '\\':
			b = append(b, '\\', c)
		case c < 0x20:
			const hex = "0123456789abcdef"
			b = append(b, '\\', 'u', '0', '0', hex[c>>4], hex[c&0xf])
		default:
			b = append(b, c)
		}
	}
	return append(b, '"')
}
