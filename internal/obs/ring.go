package obs

import "sync"

// DefaultRingCap is the default capacity of an in-memory Ring recorder:
// large enough for a module-level trace of a full golden-corpus app,
// small enough (~48 MiB of Events) to be a safe always-on buffer.
const DefaultRingCap = 1 << 18

// Ring is a bounded in-memory Recorder. When full it overwrites the
// oldest events (keeping the most recent window) and counts the drops, so
// a runaway request-level trace degrades gracefully instead of exhausting
// memory. It is safe for concurrent use.
type Ring struct {
	mu      sync.Mutex
	buf     []Event
	next    int // next write index
	full    bool
	dropped uint64
}

// NewRing returns a Ring holding at most capacity events (DefaultRingCap
// if capacity <= 0).
func NewRing(capacity int) *Ring {
	if capacity <= 0 {
		capacity = DefaultRingCap
	}
	return &Ring{buf: make([]Event, capacity)}
}

// Record implements Recorder.
func (r *Ring) Record(ev *Event) {
	r.mu.Lock()
	if r.full {
		r.dropped++
	}
	r.buf[r.next] = *ev
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
	r.mu.Unlock()
}

// Flush implements Recorder (no-op: the ring is already in memory).
func (r *Ring) Flush() error { return nil }

// Close implements Recorder (no-op; the events stay readable).
func (r *Ring) Close() error { return nil }

// Len returns the number of events currently held.
func (r *Ring) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.full {
		return len(r.buf)
	}
	return r.next
}

// Dropped returns how many events were overwritten because the ring was
// full.
func (r *Ring) Dropped() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// Events returns a copy of the recorded events in arrival order (oldest
// surviving event first).
func (r *Ring) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.full {
		out := make([]Event, r.next)
		copy(out, r.buf[:r.next])
		return out
	}
	out := make([]Event, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}
