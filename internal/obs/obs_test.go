package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden fixtures")

func TestParseLevel(t *testing.T) {
	cases := []struct {
		in   string
		want Level
		err  bool
	}{
		{"off", Off, false},
		{"", Off, false},
		{"kernel", KernelLevel, false},
		{"Module", ModuleLevel, false},
		{" request ", RequestLevel, false},
		{"verbose", Off, true},
	}
	for _, c := range cases {
		got, err := ParseLevel(c.in)
		if (err != nil) != c.err {
			t.Errorf("ParseLevel(%q) err = %v, want err=%v", c.in, err, c.err)
		}
		if got != c.want {
			t.Errorf("ParseLevel(%q) = %v, want %v", c.in, got, c.want)
		}
	}
	for _, l := range []Level{Off, KernelLevel, ModuleLevel, RequestLevel} {
		back, err := ParseLevel(l.String())
		if err != nil || back != l {
			t.Errorf("round trip %v -> %q -> %v, err %v", l, l.String(), back, err)
		}
	}
}

func TestTracerLevelFiltering(t *testing.T) {
	var nilT *Tracer
	if nilT.Enabled(KernelLevel) {
		t.Fatal("nil tracer must be disabled at every level")
	}
	if nilT.Level() != Off || nilT.Pid() != 0 {
		t.Fatal("nil tracer accessors")
	}
	// Nil-safe emission paths must not panic.
	nilT.Emit(Event{Name: "x"})
	nilT.Span(KernelLevel, "c", "n", 0, 0, 1)
	nilT.Instant(KernelLevel, "c", "n", 0, 0)
	nilT.Counter(ModuleLevel, "n", 0, 0, 1)
	nilT.NameProcess("p")
	if nilT.RegisterTrack("t") != 0 {
		t.Fatal("nil RegisterTrack should return 0")
	}
	if nilT.WithPid(3) != nil {
		t.Fatal("nil WithPid should stay nil")
	}

	if New(nil, RequestLevel) != nil {
		t.Fatal("New(nil recorder) should be the off tracer")
	}
	if New(NewRing(8), Off) != nil {
		t.Fatal("New(level Off) should be the off tracer")
	}

	ring := NewRing(16)
	tr := New(ring, ModuleLevel)
	if !tr.Enabled(KernelLevel) || !tr.Enabled(ModuleLevel) || tr.Enabled(RequestLevel) {
		t.Fatal("level comparison wrong")
	}
	tr.Span(RequestLevel, "mem", "filtered", 1, 0, 10)
	tr.Span(ModuleLevel, "sm", "kept", 1, 5, 9)
	tr.Counter(RequestLevel, "filtered", 1, 0, 1)
	tr.Instant(KernelLevel, "kernel", "kept2", 0, 7)
	evs := ring.Events()
	if len(evs) != 2 {
		t.Fatalf("got %d events, want 2 (request-level filtered out): %+v", len(evs), evs)
	}
	if evs[0].Name != "kept" || evs[1].Name != "kept2" {
		t.Fatalf("unexpected events %+v", evs)
	}
}

func TestWithPid(t *testing.T) {
	ring := NewRing(8)
	parent := New(ring, KernelLevel)
	child := parent.WithPid(7)
	child.Span(KernelLevel, "job", "j", 0, 1, 2)
	parent.Span(KernelLevel, "job", "p", 0, 1, 2)
	evs := ring.Events()
	if evs[0].Pid != 7 || evs[1].Pid != 0 {
		t.Fatalf("pids = %d,%d want 7,0", evs[0].Pid, evs[1].Pid)
	}
	if child.Level() != KernelLevel {
		t.Fatal("WithPid must keep the level")
	}
}

func TestRegisterTrack(t *testing.T) {
	ring := NewRing(8)
	tr := New(ring, KernelLevel)
	a := tr.RegisterTrack("engine")
	b := tr.RegisterTrack("SM0")
	if a == b || a == 0 || b == 0 {
		t.Fatalf("track ids must be distinct and nonzero: %d %d", a, b)
	}
	evs := ring.Events()
	if len(evs) != 2 || evs[0].Ph != PhaseMeta || evs[0].Cat != "thread_name" ||
		evs[0].Name != "engine" || evs[0].Tid != a {
		t.Fatalf("metadata events wrong: %+v", evs)
	}
}

func TestRingWraparound(t *testing.T) {
	r := NewRing(4)
	for i := 0; i < 10; i++ {
		r.Record(&Event{Ts: uint64(i)})
	}
	if r.Len() != 4 {
		t.Fatalf("Len = %d, want 4", r.Len())
	}
	if got := r.Dropped(); got != 6 {
		t.Fatalf("Dropped = %d, want 6", got)
	}
	evs := r.Events()
	for i, ev := range evs {
		if want := uint64(6 + i); ev.Ts != want {
			t.Fatalf("event %d Ts = %d, want %d (oldest-first order)", i, ev.Ts, want)
		}
	}
	// Partial fill keeps order too.
	r2 := NewRing(4)
	r2.Record(&Event{Ts: 1})
	r2.Record(&Event{Ts: 2})
	if evs := r2.Events(); len(evs) != 2 || evs[0].Ts != 1 || evs[1].Ts != 2 {
		t.Fatalf("partial ring events wrong: %+v", evs)
	}
	if r2.Dropped() != 0 {
		t.Fatal("no drops expected on partial fill")
	}
	if NewRing(0).buf == nil || len(NewRing(-1).buf) != DefaultRingCap {
		t.Fatal("non-positive capacity should use DefaultRingCap")
	}
}

// TestConcurrentEmit mimics the parallel runner: many jobs, each with its
// own WithPid tracer, emitting into one shared recorder. Run under -race
// (tier-1 does) this doubles as the data-race check for Ring, JSONStream
// and Multi.
func TestConcurrentEmit(t *testing.T) {
	ring := NewRing(1 << 12)
	var sink bytes.Buffer
	js := NewJSONStream(&sink)
	parent := New(Multi(ring, js), RequestLevel)
	const jobs, perJob = 8, 200
	var wg sync.WaitGroup
	for j := 0; j < jobs; j++ {
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			tr := parent.WithPid(j + 1)
			tid := tr.RegisterTrack("mod")
			for i := 0; i < perJob; i++ {
				tr.Span(RequestLevel, "mem", "req", tid, uint64(i), uint64(i+3))
			}
		}(j)
	}
	wg.Wait()
	if err := js.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	want := jobs * (perJob + 1) // spans + one metadata each
	if got := ring.Len(); got != want {
		t.Fatalf("ring holds %d events, want %d", got, want)
	}
	var parsed []map[string]any
	if err := json.Unmarshal(sink.Bytes(), &parsed); err != nil {
		t.Fatalf("concurrent JSON output is invalid: %v", err)
	}
	if len(parsed) != want {
		t.Fatalf("JSON has %d events, want %d", len(parsed), want)
	}
}

func TestJSONStreamEmptyAndIdempotentClose(t *testing.T) {
	var b bytes.Buffer
	s := NewJSONStream(&b)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	var parsed []any
	if err := json.Unmarshal(b.Bytes(), &parsed); err != nil || len(parsed) != 0 {
		t.Fatalf("empty stream should close to an empty JSON array, got %q (%v)", b.String(), err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	before := b.Len()
	s.Record(&Event{Name: "late", Ph: PhaseInstant}) // after Close: dropped
	_ = s.Flush()
	if b.Len() != before {
		t.Fatal("Record after Close must not write")
	}
}

// TestChromeTraceFormat validates every field chrome://tracing requires
// (name/ph/ts/dur/pid/tid) against an actual JSON parse, plus the golden
// fixture byte-for-byte.
func TestChromeTraceFormat(t *testing.T) {
	events := []Event{
		{Name: "engine", Cat: "thread_name", Ph: PhaseMeta, Tid: 1},
		{Name: "bfs", Cat: "process_name", Ph: PhaseMeta, Pid: 2},
		{Name: "kernel_0", Cat: "kernel", Ph: PhaseSpan, Ts: 0, Dur: 1200, Pid: 2, Tid: 1,
			Arg1Name: "blocks", Arg1: 64},
		{Name: "fast-forward", Cat: "engine", Ph: PhaseSpan, Ts: 100, Dur: 40, Pid: 2, Tid: 1},
		{Name: "l1.0", Cat: "mem", Ph: PhaseSpan, Ts: 220, Dur: 31, Pid: 2, Tid: 3,
			Arg1Name: "addr", Arg1: 0x8000, Arg2Name: "level", Arg2: 1},
		{Name: "block_done", Cat: "sm", Ph: PhaseInstant, Ts: 900, Pid: 2, Tid: 4},
		{Name: "active_sms", Ph: PhaseCounter, Cat: "counter", Ts: 256, Pid: 2, Tid: 1,
			Arg1Name: "value", Arg1: 13},
		{Name: `odd"name\`, Cat: "esc\x01ape", Ph: PhaseInstant, Ts: 7, Pid: 2, Tid: 1},
	}
	var b bytes.Buffer
	if err := WriteChromeTrace(&b, events); err != nil {
		t.Fatal(err)
	}

	var parsed []map[string]any
	if err := json.Unmarshal(b.Bytes(), &parsed); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, b.String())
	}
	if len(parsed) != len(events) {
		t.Fatalf("parsed %d events, want %d", len(parsed), len(events))
	}
	for i, obj := range parsed {
		for _, field := range []string{"name", "ph", "pid", "tid"} {
			if _, ok := obj[field]; !ok {
				t.Errorf("event %d missing required field %q: %v", i, field, obj)
			}
		}
		ph, _ := obj["ph"].(string)
		if len(ph) != 1 {
			t.Errorf("event %d ph = %q, want single char", i, ph)
		}
		if ph != "M" {
			if _, ok := obj["ts"]; !ok {
				t.Errorf("event %d (%s) missing ts", i, ph)
			}
		}
		if ph == "X" {
			if _, ok := obj["dur"]; !ok {
				t.Errorf("event %d: complete event missing dur", i)
			}
		}
		if ph == "M" {
			name, _ := obj["name"].(string)
			if name != "thread_name" && name != "process_name" {
				t.Errorf("metadata event %d name = %q", i, name)
			}
			args, _ := obj["args"].(map[string]any)
			if _, ok := args["name"]; !ok {
				t.Errorf("metadata event %d missing args.name", i)
			}
		}
		if ph == "C" {
			args, _ := obj["args"].(map[string]any)
			if _, ok := args["value"]; !ok {
				t.Errorf("counter event %d missing args.value", i)
			}
		}
	}
	// Spot-check numeric round trips.
	if v := parsed[2]["dur"].(float64); v != 1200 {
		t.Errorf("kernel dur = %v", v)
	}
	if v := parsed[4]["args"].(map[string]any)["addr"].(float64); v != 0x8000 {
		t.Errorf("addr arg = %v", v)
	}

	golden := filepath.Join("testdata", "chrome_trace.golden.json")
	if *update {
		if err := os.WriteFile(golden, b.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(b.Bytes(), want) {
		t.Errorf("chrome trace drifted from golden fixture\ngot:\n%s\nwant:\n%s", b.Bytes(), want)
	}
}

func TestWriteCounterCSV(t *testing.T) {
	events := []Event{
		{Name: "k0", Cat: "kernel", Ph: PhaseSpan, Ts: 0, Dur: 100},
		{Name: "k1", Cat: "kernel", Ph: PhaseSpan, Ts: 101, Dur: 100},
		{Name: "active_sms", Ph: PhaseCounter, Ts: 50, Arg1Name: "value", Arg1: 4},
		{Name: "dram.queue", Ph: PhaseCounter, Ts: 50, Arg1Name: "value", Arg1: 9},
		{Name: "active_sms", Ph: PhaseCounter, Ts: 150, Arg1Name: "value", Arg1: 2},
	}
	var b bytes.Buffer
	if err := WriteCounterCSV(&b, events); err != nil {
		t.Fatal(err)
	}
	want := "kernel,cycle,active_sms,dram.queue\nk0,50,4,9\nk1,150,2,0\n"
	if b.String() != want {
		t.Errorf("CSV:\n%s\nwant:\n%s", b.String(), want)
	}

	// Multi-pid recordings grow a pid column.
	multi := append([]Event{}, events...)
	multi = append(multi, Event{Name: "active_sms", Ph: PhaseCounter, Ts: 10, Pid: 2,
		Arg1Name: "value", Arg1: 1})
	b.Reset()
	if err := WriteCounterCSV(&b, multi); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(b.String(), "pid,kernel,cycle,") {
		t.Errorf("multi-pid CSV missing pid column:\n%s", b.String())
	}

	b.Reset()
	if err := WriteCounterCSV(&b, nil); err != nil {
		t.Fatal(err)
	}
	if b.String() != "kernel,cycle\n" {
		t.Errorf("empty CSV = %q", b.String())
	}
}

func TestStallSummary(t *testing.T) {
	events := []Event{
		{Name: "mem", Cat: "stall", Ph: PhaseCounter, Ts: 0, Tid: 1, Arg1Name: "cycles", Arg1: 70},
		{Name: "mem", Cat: "stall", Ph: PhaseCounter, Ts: 0, Tid: 2, Arg1Name: "cycles", Arg1: 30},
		{Name: "barrier", Cat: "stall", Ph: PhaseCounter, Ts: 0, Tid: 1, Arg1Name: "cycles", Arg1: 40},
		{Name: "not-a-stall", Cat: "counter", Ph: PhaseCounter, Ts: 0, Arg1: 999},
	}
	rows := StallSummary(events, map[string]uint64{"l1.mshr_stall": 55})
	if len(rows) != 3 {
		t.Fatalf("rows = %+v", rows)
	}
	if rows[0].Name != "mem" || rows[0].Cycles != 100 {
		t.Errorf("top row = %+v", rows[0])
	}
	if rows[1].Name != "l1.mshr_stall" || rows[1].Cycles != 55 {
		t.Errorf("second row = %+v", rows[1])
	}
	var b bytes.Buffer
	if err := WriteStallSummary(&b, events, nil, 2); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "mem") || !strings.Contains(out, "barrier") ||
		strings.Contains(out, "not-a-stall") {
		t.Errorf("summary:\n%s", out)
	}
	b.Reset()
	if err := WriteStallSummary(&b, nil, nil, 5); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "no stall events") {
		t.Errorf("empty summary = %q", b.String())
	}
}

func TestMultiErrorPropagation(t *testing.T) {
	m := Multi(Nop{}, Nop{})
	m.Record(&Event{})
	if err := m.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if one := Multi(Nop{}); one != (Nop{}) {
		t.Fatal("Multi of one recorder should return it directly")
	}
}

// TestOffPathAllocs is the unit-level half of the overhead guard
// (BenchmarkObsOff at the repo root is the benchcmp-gated half): the exact
// hook sequence a module runs per request with tracing off must not
// allocate.
func TestOffPathAllocs(t *testing.T) {
	var tr *Tracer
	allocs := testing.AllocsPerRun(1000, func() {
		if tr.Enabled(RequestLevel) {
			tr.Span(RequestLevel, "mem", "req", 1, 0, 10)
		}
		tr.Counter(ModuleLevel, "active", 0, 0, 1)
		tr.Instant(KernelLevel, "k", "x", 0, 0)
	})
	if allocs != 0 {
		t.Fatalf("off-path hooks allocated %v allocs/op, want 0", allocs)
	}
}
