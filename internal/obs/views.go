package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// WriteChromeTrace writes events as Chrome trace-event JSON (same format
// as the streaming JSONStream sink, but from an in-memory recording such
// as Ring.Events).
func WriteChromeTrace(w io.Writer, events []Event) error {
	s := NewJSONStream(nopWriteCloser{w})
	for i := range events {
		s.Record(&events[i])
	}
	return s.Close()
}

// nopWriteCloser keeps JSONStream.Close from closing a writer the caller
// still owns.
type nopWriteCloser struct{ io.Writer }

// WriteCounterCSV pivots the counter events (PhaseCounter) in events into
// a per-kernel timeline CSV: one row per sample cycle, one column per
// counter name, with the kernel column derived from the cat="kernel" spans
// covering that cycle. Counter names become columns in first-appearance
// order. Multi-simulation recordings get a leading pid column.
func WriteCounterCSV(w io.Writer, events []Event) error {
	type key struct {
		pid int32
		ts  uint64
	}
	var (
		cols   []string
		colIdx = map[string]int{}
		rows   = map[key][]uint64{}
		keys   []key
		pids   = map[int32]bool{}
	)
	type span struct{ start, end uint64 }
	kernels := map[int32]map[string][]span{} // pid -> kernel name -> spans
	for i := range events {
		ev := &events[i]
		switch {
		case ev.Ph == PhaseCounter:
			if ev.Cat == "stall" {
				// Stall-reason totals are end-of-run aggregates (the SMs'
				// FlushTrace), not timeline samples; they belong to the
				// stall summary, not the counter CSV.
				continue
			}
			pids[ev.Pid] = true
			ci, ok := colIdx[ev.Name]
			if !ok {
				ci = len(cols)
				colIdx[ev.Name] = ci
				cols = append(cols, ev.Name)
			}
			k := key{ev.Pid, ev.Ts}
			row, ok := rows[k]
			if !ok {
				keys = append(keys, k)
			}
			for len(row) <= ci {
				row = append(row, 0)
			}
			row[ci] = ev.Arg1
			rows[k] = row
		case ev.Ph == PhaseSpan && ev.Cat == "kernel":
			m := kernels[ev.Pid]
			if m == nil {
				m = map[string][]span{}
				kernels[ev.Pid] = m
			}
			m[ev.Name] = append(m[ev.Name], span{ev.Ts, ev.Ts + ev.Dur})
		}
	}
	if len(cols) == 0 {
		_, err := fmt.Fprintln(w, "kernel,cycle")
		return err
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].pid != keys[j].pid {
			return keys[i].pid < keys[j].pid
		}
		return keys[i].ts < keys[j].ts
	})
	kernelAt := func(pid int32, ts uint64) string {
		for name, spans := range kernels[pid] {
			for _, s := range spans {
				if ts >= s.start && ts <= s.end {
					return name
				}
			}
		}
		return ""
	}

	multi := len(pids) > 1
	var b strings.Builder
	if multi {
		b.WriteString("pid,")
	}
	b.WriteString("kernel,cycle")
	for _, c := range cols {
		b.WriteByte(',')
		b.WriteString(csvField(c))
	}
	b.WriteByte('\n')
	for _, k := range keys {
		if multi {
			b.WriteString(strconv.FormatInt(int64(k.pid), 10))
			b.WriteByte(',')
		}
		b.WriteString(csvField(kernelAt(k.pid, k.ts)))
		b.WriteByte(',')
		b.WriteString(strconv.FormatUint(k.ts, 10))
		row := rows[k]
		for ci := range cols {
			b.WriteByte(',')
			if ci < len(row) {
				b.WriteString(strconv.FormatUint(row[ci], 10))
			} else {
				b.WriteByte('0')
			}
		}
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func csvField(s string) string {
	if !strings.ContainsAny(s, ",\"\n") {
		return s
	}
	return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
}

// StallRow is one line of the stall summary.
type StallRow struct {
	Name   string
	Cycles uint64
}

// StallSummary aggregates the cat="stall" counter events in events (the
// SMs' end-of-run stall-reason flush) plus any extra named totals (e.g.
// ".stall"-suffixed metrics counters), summed across tracks and pids,
// sorted by cycles descending (name ascending on ties).
func StallSummary(events []Event, extra map[string]uint64) []StallRow {
	agg := map[string]uint64{}
	for i := range events {
		ev := &events[i]
		if ev.Ph == PhaseCounter && ev.Cat == "stall" {
			agg[ev.Name] += ev.Arg1
		}
	}
	for name, v := range extra {
		agg[name] += v
	}
	rows := make([]StallRow, 0, len(agg))
	for name, v := range agg {
		rows = append(rows, StallRow{name, v})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Cycles != rows[j].Cycles {
			return rows[i].Cycles > rows[j].Cycles
		}
		return rows[i].Name < rows[j].Name
	})
	return rows
}

// WriteStallSummary writes the top-n stall reasons as aligned plain text.
// n <= 0 means all rows.
func WriteStallSummary(w io.Writer, events []Event, extra map[string]uint64, n int) error {
	rows := StallSummary(events, extra)
	if n > 0 && len(rows) > n {
		rows = rows[:n]
	}
	var total uint64
	for _, r := range rows {
		total += r.Cycles
	}
	if len(rows) == 0 {
		_, err := fmt.Fprintln(w, "no stall events recorded")
		return err
	}
	width := 0
	for _, r := range rows {
		if len(r.Name) > width {
			width = len(r.Name)
		}
	}
	if _, err := fmt.Fprintf(w, "top %d stall reasons (subcore-cycles):\n", len(rows)); err != nil {
		return err
	}
	for _, r := range rows {
		pct := 0.0
		if total > 0 {
			pct = 100 * float64(r.Cycles) / float64(total)
		}
		if _, err := fmt.Fprintf(w, "  %-*s %12d  %5.1f%%\n", width, r.Name, r.Cycles, pct); err != nil {
			return err
		}
	}
	return nil
}
