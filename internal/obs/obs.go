// Package obs is Swift-Sim's observability layer: structured simulation
// event tracing with a near-zero cost when disabled.
//
// The whole point of a hybrid simulator is explaining *where* cycles go;
// end-of-run aggregates cannot show a kernel's timeline or attribute a
// stall to the SM vs the NoC vs DRAM. This package records typed events —
// spans, instants, counter samples — from every module behind one small
// interface, and exports three views of the recording:
//
//   - Chrome trace-event JSON (chrome://tracing / Perfetto), one track per
//     module instance (WriteChromeTrace / the streaming JSONStream sink);
//   - a per-kernel counter-timeline CSV, cycles × {active SMs, L1/L2
//     hit-rate window, NoC occupancy, DRAM queue depth, ...}
//     (WriteCounterCSV);
//   - a plain-text top-N stall summary (WriteStallSummary).
//
// # The off-path zero-cost contract
//
// Modules hold a *Tracer, which is nil (or below the requested Level) when
// tracing is off. Every hook site is guarded by Tracer.Enabled — a nil
// check plus an integer compare, with no allocation and no stores — so the
// request hot path and the golden metrics are bit-identical whether the
// build traces or not. Observation must never perturb simulation: tracing
// code only *reads* simulator state and writes to its own buffers (see the
// regression oracle in internal/regress).
//
// # Concurrency
//
// One simulation is single-threaded, but parallel sweeps (internal/runner)
// run many simulations at once, all emitting into one Recorder. Recorder
// implementations are therefore safe for concurrent use; Tracer itself is
// confined to one simulation (the runner derives a per-job Tracer with
// WithPid).
package obs

import (
	"fmt"
	"strings"
)

// Level selects how much detail is recorded. Levels are cumulative: each
// level includes everything below it.
type Level uint8

const (
	// Off records nothing; every hook site reduces to a nil/level check.
	Off Level = iota
	// KernelLevel records per-kernel and per-job spans.
	KernelLevel
	// ModuleLevel adds per-module activity: block launch/retire spans,
	// engine fast-forward spans, warp stall-reason accounting, and the
	// periodic counter timeline.
	ModuleLevel
	// RequestLevel adds the lifecycle span of every memory request through
	// the L1, NoC, L2 and DRAM — the most detailed (and most voluminous)
	// view.
	RequestLevel
)

// String returns the flag spelling of l.
func (l Level) String() string {
	switch l {
	case Off:
		return "off"
	case KernelLevel:
		return "kernel"
	case ModuleLevel:
		return "module"
	case RequestLevel:
		return "request"
	default:
		return fmt.Sprintf("Level(%d)", uint8(l))
	}
}

// ParseLevel parses the -trace-level flag spelling.
func ParseLevel(s string) (Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "off", "":
		return Off, nil
	case "kernel":
		return KernelLevel, nil
	case "module":
		return ModuleLevel, nil
	case "request":
		return RequestLevel, nil
	default:
		return Off, fmt.Errorf("obs: unknown trace level %q (want off|kernel|module|request)", s)
	}
}

// Chrome trace-event phases used by this package. Any other byte is
// rejected by the JSON writer.
const (
	// PhaseSpan is a complete event ('X'): Ts..Ts+Dur.
	PhaseSpan = byte('X')
	// PhaseInstant is a point event ('i').
	PhaseInstant = byte('i')
	// PhaseCounter is a counter sample ('C'): Arg1 holds the value.
	PhaseCounter = byte('C')
	// PhaseMeta is a metadata event ('M'): Cat names the metadata kind
	// ("thread_name", "process_name") and Name carries the label.
	PhaseMeta = byte('M')
)

// Event is one trace record. Timestamps and durations are in simulated
// cycles for simulation events, and in wall-clock microseconds for the
// runner's per-job spans (pid 0); the two never share a track.
//
// Args are at most two named integers — enough for an address, a level, a
// count — so recording an event never allocates a map.
type Event struct {
	// Name labels the event (slice text in the trace viewer).
	Name string
	// Cat is the event category ("engine", "sm", "kernel", "counter",
	// "stall", a module name, ...). For PhaseMeta it is the metadata kind.
	Cat string
	// Ph is the Chrome trace phase: one of the Phase* constants.
	Ph byte
	// Ts is the event timestamp; Dur the duration for PhaseSpan.
	Ts  uint64
	Dur uint64
	// Pid and Tid place the event on a (process, thread) track. Pid is the
	// simulation/job id; Tid the module track within it.
	Pid int32
	Tid int32
	// Arg1Name/Arg1 and Arg2Name/Arg2 are optional numeric arguments; an
	// empty name means the argument is absent.
	Arg1Name string
	Arg1     uint64
	Arg2Name string
	Arg2     uint64
}

// Recorder is the sink events are recorded into. Implementations must be
// safe for concurrent use by parallel simulations.
//
// Record copies the event; the pointer is only borrowed for the call.
// Flush forces buffered data out (streaming sinks); Close additionally
// terminates the output so that what was written so far is well-formed,
// and is idempotent. A truncated run that still Closes its recorder
// produces a loadable trace — the fault-tolerance contract cmd/sweep
// relies on.
type Recorder interface {
	Record(ev *Event)
	Flush() error
	Close() error
}

// Nop is the discard Recorder.
type Nop struct{}

// Record implements Recorder.
func (Nop) Record(*Event) {}

// Flush implements Recorder.
func (Nop) Flush() error { return nil }

// Close implements Recorder.
func (Nop) Close() error { return nil }

// multi fans one event stream out to several recorders.
type multi struct{ recs []Recorder }

// Multi returns a Recorder duplicating every event to all of recs (e.g. a
// streaming JSON file plus an in-memory ring for the CSV/stall views).
func Multi(recs ...Recorder) Recorder {
	if len(recs) == 1 {
		return recs[0]
	}
	return &multi{recs: recs}
}

// Record implements Recorder.
func (m *multi) Record(ev *Event) {
	for _, r := range m.recs {
		r.Record(ev)
	}
}

// Flush implements Recorder.
func (m *multi) Flush() error {
	var first error
	for _, r := range m.recs {
		if err := r.Flush(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Close implements Recorder.
func (m *multi) Close() error {
	var first error
	for _, r := range m.recs {
		if err := r.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Tracer is the handle modules emit through: a Recorder plus the recording
// Level and the process id of this simulation. A nil *Tracer is the "off"
// tracer — every method is nil-safe, and the Enabled guard modules use is
// a single nil/level check.
//
// A Tracer is confined to one simulation (one goroutine); only the
// Recorder behind it is shared.
type Tracer struct {
	rec   Recorder
	level Level
	pid   int32
	tids  int32 // next module track id
}

// New returns a Tracer recording into rec at the given level, or nil (the
// off tracer) when rec is nil or level is Off.
func New(rec Recorder, level Level) *Tracer {
	if rec == nil || level == Off {
		return nil
	}
	return &Tracer{rec: rec, level: level}
}

// WithPid derives a Tracer for another simulation sharing the same
// Recorder and Level but with its own pid and track-id space. It is safe
// to call concurrently on the same parent (only immutable fields are
// read); the runner uses it to give each parallel job its own process row.
func (t *Tracer) WithPid(pid int) *Tracer {
	if t == nil {
		return nil
	}
	return &Tracer{rec: t.rec, level: t.level, pid: int32(pid)}
}

// Enabled reports whether events at level l are recorded. It is the hook
// guard of the zero-cost contract: nil receiver or lower level short-
// circuits to false with no allocation.
func (t *Tracer) Enabled(l Level) bool { return t != nil && t.level >= l }

// Level returns the recording level (Off for the nil tracer).
func (t *Tracer) Level() Level {
	if t == nil {
		return Off
	}
	return t.level
}

// Flush forces the recorder's buffered data out. Long-lived emitters — the
// sweep service flushes after every finished sweep — use it so a streaming
// trace file stays current without closing the recorder. The nil tracer
// flushes nothing.
func (t *Tracer) Flush() error {
	if t == nil {
		return nil
	}
	return t.rec.Flush()
}

// Pid returns the tracer's process id.
func (t *Tracer) Pid() int32 {
	if t == nil {
		return 0
	}
	return t.pid
}

// Emit records ev verbatim after stamping the tracer's pid. Callers are
// expected to have checked Enabled for their level first.
func (t *Tracer) Emit(ev Event) {
	if t == nil {
		return
	}
	ev.Pid = t.pid
	t.rec.Record(&ev)
}

// RegisterTrack allocates the next module track id and emits the Chrome
// "thread_name" metadata naming it. The nil tracer returns 0.
func (t *Tracer) RegisterTrack(name string) int32 {
	if t == nil {
		return 0
	}
	t.tids++
	tid := t.tids
	t.Emit(Event{Name: name, Cat: "thread_name", Ph: PhaseMeta, Tid: tid})
	return tid
}

// NameProcess emits the Chrome "process_name" metadata labeling this
// tracer's pid (the runner labels each job's row with its application).
func (t *Tracer) NameProcess(name string) {
	if t == nil {
		return
	}
	t.Emit(Event{Name: name, Cat: "process_name", Ph: PhaseMeta})
}

// Span records a complete event covering cycles [start, end] on track tid
// if level l is enabled.
func (t *Tracer) Span(l Level, cat, name string, tid int32, start, end uint64) {
	if !t.Enabled(l) {
		return
	}
	t.Emit(Event{Name: name, Cat: cat, Ph: PhaseSpan, Ts: start, Dur: end - start, Tid: tid})
}

// Instant records a point event at cycle ts on track tid if level l is
// enabled.
func (t *Tracer) Instant(l Level, cat, name string, tid int32, ts uint64) {
	if !t.Enabled(l) {
		return
	}
	t.Emit(Event{Name: name, Cat: cat, Ph: PhaseInstant, Ts: ts, Tid: tid})
}

// Counter records a counter sample (name=value at cycle ts) if level l is
// enabled. Counter events carry Cat "counter" and feed the timeline CSV.
func (t *Tracer) Counter(l Level, name string, tid int32, ts, value uint64) {
	if !t.Enabled(l) {
		return
	}
	t.Emit(Event{Name: name, Cat: "counter", Ph: PhaseCounter, Ts: ts, Tid: tid,
		Arg1Name: "value", Arg1: value})
}
