// Package mem defines the fixed interface between memory-system modules:
// sector-granular requests with completion callbacks, and the backpressured
// Port every level (L1, NoC, L2 slice, DRAM partition) implements. Because
// all modules speak this one interface, any level can be swapped between a
// cycle-accurate module and an analytical model without touching its
// neighbours — the decoupling requirement of the paper's §III-B2.
package mem

import "sync"

// Level identifies which level of the hierarchy serviced a request.
type Level int

const (
	// LevelNone means the request has not completed yet.
	LevelNone Level = iota
	// LevelL1 means the request hit in the L1 data cache.
	LevelL1
	// LevelL2 means the request hit in an L2 slice.
	LevelL2
	// LevelDRAM means the request was serviced by DRAM.
	LevelDRAM
)

// String returns a short name for the level.
func (l Level) String() string {
	switch l {
	case LevelNone:
		return "none"
	case LevelL1:
		return "L1"
	case LevelL2:
		return "L2"
	case LevelDRAM:
		return "DRAM"
	default:
		return "?"
	}
}

// Request is one sector-granular memory transaction flowing through the
// modeled hierarchy.
type Request struct {
	// Addr is the byte address, sector-aligned by the coalescer.
	Addr uint64
	// Write distinguishes stores from loads.
	Write bool
	// Size is the transaction size in bytes (one sector for cache
	// traffic).
	Size int
	// PC is the program counter of the originating instruction, used for
	// per-PC statistics and the analytical memory model.
	PC uint64
	// SMID is the originating SM, used for return routing and per-SM
	// counters.
	SMID int
	// ServicedBy records the level that ultimately supplied the data.
	ServicedBy Level
	// Done is invoked exactly once when the request completes. It may be
	// nil (e.g. for write-through traffic nobody waits on).
	Done func()
	// T0 is the cycle the module that directly accepted this request took
	// it, recorded only when request-level tracing is on so the module can
	// emit a lifecycle span at completion. Each pooled Request is accepted
	// by exactly one cache/DRAM level (downstream hops allocate fresh
	// requests), so a single stamp suffices. Simulation behaviour never
	// reads it.
	T0 uint64
}

// Complete marks the request serviced by lvl and fires its callback.
func (r *Request) Complete(lvl Level) {
	if r.ServicedBy == LevelNone {
		r.ServicedBy = lvl
	}
	if r.Done != nil {
		r.Done()
	}
}

// reqPool recycles Request structs on the L1/NoC/DRAM hot path, where the
// detailed configurations allocate one per sector transaction. sync.Pool
// keeps per-P free lists, so parallel sweeps (one assembly per goroutine)
// do not contend.
var reqPool = sync.Pool{New: func() any { return new(Request) }}

// GetRequest returns a zeroed Request from the pool. Callers that know a
// request's lifetime has ended return it with PutRequest; requests with
// unclear ownership may simply be dropped for the garbage collector.
func GetRequest() *Request {
	return reqPool.Get().(*Request)
}

// PutRequest recycles r. The caller must guarantee no other module holds a
// reference: the convention in this codebase is that the module that will
// observe the completion last frees it — the creator inside its Done
// callback when Done is set, or the completing consumer when Done is nil.
func PutRequest(r *Request) {
	*r = Request{}
	reqPool.Put(r)
}

// Port accepts memory requests with backpressure: Accept returns false when
// the module cannot take the request this cycle, and the caller must retry
// later (typically next tick).
type Port interface {
	Accept(r *Request) bool
}

// PortFunc adapts a function to the Port interface.
type PortFunc func(r *Request) bool

// Accept calls f(r).
func (f PortFunc) Accept(r *Request) bool { return f(r) }
