package mem

import "testing"

func TestCompleteSetsLevelOnce(t *testing.T) {
	calls := 0
	r := &Request{Addr: 64, Done: func() { calls++ }}
	r.Complete(LevelL2)
	if r.ServicedBy != LevelL2 {
		t.Fatalf("ServicedBy = %v, want L2", r.ServicedBy)
	}
	// A second Complete (e.g. a wrapper forwarding the callback) must
	// not overwrite the first service level.
	r.Complete(LevelDRAM)
	if r.ServicedBy != LevelL2 {
		t.Errorf("ServicedBy overwritten to %v", r.ServicedBy)
	}
	if calls != 2 {
		t.Errorf("Done called %d times across two Completes", calls)
	}
}

func TestCompleteNilDone(t *testing.T) {
	r := &Request{Addr: 0, Write: true}
	r.Complete(LevelDRAM) // must not panic
	if r.ServicedBy != LevelDRAM {
		t.Errorf("ServicedBy = %v", r.ServicedBy)
	}
}

func TestLevelStrings(t *testing.T) {
	cases := map[Level]string{
		LevelNone: "none", LevelL1: "L1", LevelL2: "L2", LevelDRAM: "DRAM", Level(99): "?",
	}
	for l, want := range cases {
		if got := l.String(); got != want {
			t.Errorf("Level(%d).String() = %q, want %q", l, got, want)
		}
	}
}

func TestPortFunc(t *testing.T) {
	accepted := 0
	var p Port = PortFunc(func(r *Request) bool {
		accepted++
		return r.Addr%64 == 0
	})
	if !p.Accept(&Request{Addr: 128}) {
		t.Error("aligned request rejected")
	}
	if p.Accept(&Request{Addr: 130}) {
		t.Error("misaligned request accepted")
	}
	if accepted != 2 {
		t.Errorf("calls = %d, want 2", accepted)
	}
}
