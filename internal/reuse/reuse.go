// Package reuse extracts the per-PC cache hit rates consumed by the
// analytical memory model of the paper's Eq. 1
// (L_inst = L_L1·R_L1 + L_L2·R_L2 + L_DRAM·R_DRAM).
//
// The paper obtains R_L1/R_L2/R_DRAM "using a reuse distance tool or cache
// simulator"; this package implements both sources over the same
// block-interleaved access stream:
//
//   - ProfileApp runs timeless functional sectored caches (exact
//     organization, including the configured replacement policy);
//   - ProfileAppReuseDistance computes true LRU stack distances with a
//     Fenwick tree and classifies hits by capacity, the classical
//     reuse-distance-theory approach (which, as the paper notes, is
//     inherently LRU-only).
//
// Both profilers run in two phases so the L1 work parallelizes across
// kernels without changing a single output bit. The L1 state (functional
// caches or distance trackers) is reset at every kernel boundary — the
// non-coherent L1 flush of real GPUs — so each kernel's L1 filtering is
// independent and runs on its own worker; it yields per-PC L1 hit counts
// plus the ordered list of accesses that escaped the L1. The shared L2
// persists across kernels, so phase two replays those escape lists through
// it serially in kernel order — the exact access sequence a serial run
// produces.
package reuse

import (
	"runtime"
	"sync"

	"swiftsim/internal/cache"
	"swiftsim/internal/config"
	"swiftsim/internal/smcore"
	"swiftsim/internal/trace"
)

// Key identifies a static memory instruction: kernel index within the
// application plus the instruction's PC.
type Key struct {
	Kernel int
	PC     uint64
}

// Rates is the level-of-service distribution of one static instruction:
// the fractions of its sector transactions serviced by the L1, the L2, and
// DRAM. The three fields sum to 1 for any instruction with traffic.
type Rates struct {
	L1, L2, DRAM float64
}

// Profile holds the extracted hit rates for one application.
type Profile struct {
	// PerPC maps each static global-memory instruction to its rates.
	PerPC map[Key]Rates
	// Default is the application-wide aggregate, used for instructions
	// missing from PerPC.
	Default Rates
	// DefaultReads is the application-wide aggregate restricted to load
	// transactions. Stores are never serviced by the write-through
	// no-allocate L1, so read-only rates are the ones directly comparable
	// to the timed caches' read_hit/read_miss counters (the differential
	// oracle in internal/regress relies on this).
	DefaultReads Rates
	// Accesses is the total number of sector transactions profiled.
	Accesses uint64
}

// Rates returns the level-of-service distribution for the given
// instruction, falling back to the application aggregate.
func (p *Profile) Rates(kernel int, pc uint64) Rates {
	if r, ok := p.PerPC[Key{kernel, pc}]; ok {
		return r
	}
	return p.Default
}

// counts accumulates per-level service counts during profiling.
type counts struct {
	l1, l2, dram uint64
}

func (c counts) total() uint64 { return c.l1 + c.l2 + c.dram }

func (c counts) rates() Rates {
	t := c.total()
	if t == 0 {
		return Rates{L1: 1}
	}
	return Rates{
		L1:   float64(c.l1) / float64(t),
		L2:   float64(c.l2) / float64(t),
		DRAM: float64(c.dram) / float64(t),
	}
}

// access is one profiled sector transaction.
type access struct {
	key    Key
	sector uint64
	sm     int
	write  bool
}

// stream flattens the application into the block-interleaved sector-access
// stream the profilers consume: blocks are assigned round-robin to SMs
// (mirroring the Block Scheduler), warps within a block interleave
// instruction by instruction, and per-lane addresses are coalesced exactly
// as the LD/ST unit would.
func stream(app *trace.App, gpu config.GPU, onKernel func(ki int), visit func(a access)) {
	for ki := range app.Kernels {
		if onKernel != nil {
			onKernel(ki)
		}
		kernelStream(app, gpu, ki, visit)
	}
}

// kernelStream visits one kernel's slice of the block-interleaved stream.
func kernelStream(app *trace.App, gpu config.GPU, ki int, visit func(a access)) {
	sectorBytes := gpu.L1.SectorBytes
	k := app.Kernels[ki]
	for bi := range k.Blocks {
		sm := bi % gpu.NumSMs
		warps := k.Blocks[bi].Warps
		// Interleave warps instruction by instruction, the
		// round-robin approximation of concurrent execution.
		maxLen := 0
		for _, w := range warps {
			if len(w) > maxLen {
				maxLen = len(w)
			}
		}
		for i := 0; i < maxLen; i++ {
			for _, w := range warps {
				if i >= len(w) {
					continue
				}
				in := &w[i]
				if !in.Op.IsGlobalMem() {
					continue
				}
				for _, s := range smcore.Coalesce(in.Addrs, sectorBytes) {
					visit(access{
						key:    Key{ki, in.PC},
						sector: s,
						sm:     sm,
						write:  in.Op == trace.OpStoreGlobal,
					})
				}
			}
		}
	}
}

// l2Access is one access that escaped a kernel's L1 filter and must be
// replayed through the shared L2 in phase two.
type l2Access struct {
	key    Key
	sector uint64
	write  bool
}

// kernelProfile is the phase-one result for one kernel: how many reads
// each static instruction serviced from the per-SM L1s, and the ordered
// L2-bound remainder of the kernel's stream.
type kernelProfile struct {
	l1Hits   map[Key]uint64
	l2Bound  []l2Access
	accesses uint64
}

// profileKernels runs phase one — the per-kernel L1 filtering — on a
// worker pool bounded by GOMAXPROCS. filter(ki) must return a fresh
// kernel-private predicate (it is called on the worker) reporting whether
// an access is absorbed by an L1; stores are never absorbed.
func profileKernels(app *trace.App, gpu config.GPU, filter func(ki int) func(a access) bool) []kernelProfile {
	out := make([]kernelProfile, len(app.Kernels))
	one := func(ki int) {
		kp := kernelProfile{l1Hits: make(map[Key]uint64)}
		absorb := filter(ki)
		kernelStream(app, gpu, ki, func(a access) {
			kp.accesses++
			if !a.write && absorb(a) {
				kp.l1Hits[a.key]++
				return
			}
			kp.l2Bound = append(kp.l2Bound, l2Access{key: a.key, sector: a.sector, write: a.write})
		})
		out[ki] = kp
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > len(app.Kernels) {
		workers = len(app.Kernels)
	}
	if workers <= 1 {
		for ki := range app.Kernels {
			one(ki)
		}
		return out
	}
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ki := range next {
				one(ki)
			}
		}()
	}
	for ki := range app.Kernels {
		next <- ki
	}
	close(next)
	wg.Wait()
	return out
}

// mergeProfile runs phase two: fold the per-kernel L1 hit counts and
// replay every L2-bound access, in kernel order, through hitL2 (which
// wraps the single shared L2 model). Because counter addition commutes and
// the L2 sees the same access sequence a serial run produces, the profile
// is byte-identical to the serial one.
func mergeProfile(kps []kernelProfile, hitL2 func(a l2Access) bool) *Profile {
	per := make(map[Key]*counts)
	at := func(k Key) *counts {
		c := per[k]
		if c == nil {
			c = &counts{}
			per[k] = c
		}
		return c
	}
	var agg, aggReads counts
	var accesses uint64
	for _, kp := range kps {
		accesses += kp.accesses
		for k, n := range kp.l1Hits {
			// L1 hits are always reads: the write-through no-allocate L1
			// never absorbs stores.
			at(k).l1 += n
			agg.l1 += n
			aggReads.l1 += n
		}
		for _, a := range kp.l2Bound {
			c := at(a.key)
			switch {
			case hitL2(a):
				c.l2++
				agg.l2++
				if !a.write {
					aggReads.l2++
				}
			default:
				c.dram++
				agg.dram++
				if !a.write {
					aggReads.dram++
				}
			}
		}
	}
	return buildProfile(per, agg, aggReads, accesses)
}

// ProfileApp extracts hit rates with functional sectored caches: one L1
// per SM and one cache with the full L2 capacity, both using the
// configured geometry and replacement policy. The per-kernel L1 phase runs
// on a worker pool (L1s are invalidated at kernel boundaries, exactly as
// the timing simulators model the non-coherent L1 flush of real GPUs, so
// kernels are L1-independent); the shared L2 is replayed serially.
func ProfileApp(app *trace.App, gpu config.GPU) *Profile {
	kps := profileKernels(app, gpu, func(int) func(a access) bool {
		l1s := make([]*cache.Functional, gpu.NumSMs)
		for i := range l1s {
			l1s[i] = cache.NewFunctional(gpu.L1)
		}
		// Write-through no-allocate L1: stores never hit-allocate, and
		// always propagate to the L2 (profileKernels never offers them).
		return func(a access) bool { return l1s[a.sm].Access(a.sector, false) }
	})
	l2cfg := gpu.L2
	l2cfg.Sets *= gpu.MemPartitions // aggregate capacity of all slices
	l2 := cache.NewFunctional(l2cfg)
	return mergeProfile(kps, func(a l2Access) bool { return l2.Access(a.sector, a.write) })
}

// ProfileAppReuseDistance extracts hit rates from LRU stack distances: an
// access hits a cache when the number of distinct sectors touched since
// its previous access is smaller than the cache's sector capacity. L1
// distances are computed per SM; accesses that exceed the L1 capacity feed
// the global L2 distance stream.
func ProfileAppReuseDistance(app *trace.App, gpu config.GPU) *Profile {
	l1Cap := uint64(gpu.L1.Sets * gpu.L1.Ways * gpu.L1.SectorsPerLine())
	l2Cap := uint64(gpu.L2.Sets*gpu.L2.Ways*gpu.L2.SectorsPerLine()) * uint64(gpu.MemPartitions)

	kps := profileKernels(app, gpu, func(int) func(a access) bool {
		l1 := make([]*distanceTracker, gpu.NumSMs)
		for i := range l1 {
			l1[i] = newDistanceTracker()
		}
		return func(a access) bool { return l1[a.sm].access(a.sector) < l1Cap }
	})
	l2 := newDistanceTracker()
	return mergeProfile(kps, func(a l2Access) bool { return l2.access(a.sector) < l2Cap })
}

func buildProfile(per map[Key]*counts, agg, aggReads counts, accesses uint64) *Profile {
	p := &Profile{
		PerPC:        make(map[Key]Rates, len(per)),
		Default:      agg.rates(),
		DefaultReads: aggReads.rates(),
		Accesses:     accesses,
	}
	for k, c := range per {
		p.PerPC[k] = c.rates()
	}
	return p
}

// distanceTracker computes LRU stack distances with the classic
// Fenwick-tree algorithm: O(log n) per access.
type distanceTracker struct {
	last map[uint64]int // sector -> time of most recent access
	bit  []uint64       // Fenwick tree over times; 1 marks a most-recent access
	time int
}

const infiniteDistance = ^uint64(0)

func newDistanceTracker() *distanceTracker {
	return &distanceTracker{last: make(map[uint64]int), bit: make([]uint64, 1)}
}

// access returns the stack distance of this access (number of distinct
// sectors touched since the previous access to the same sector), or
// infiniteDistance for a cold access.
func (d *distanceTracker) access(sector uint64) uint64 {
	d.time++
	d.grow(d.time)
	dist := infiniteDistance
	if prev, ok := d.last[sector]; ok {
		// Count distinct sectors accessed in (prev, now).
		dist = d.prefix(d.time-1) - d.prefix(prev)
		d.update(prev, ^uint64(0)) // remove the stale most-recent mark (-1)
	}
	d.last[sector] = d.time
	d.update(d.time, 1)
	return dist
}

func (d *distanceTracker) grow(n int) {
	// Appending position i to a Fenwick tree must initialize its node to
	// the sum of the range it covers, (i-lowbit(i), i], which is all
	// historical at append time.
	for len(d.bit) <= n {
		i := len(d.bit)
		low := i & (-i)
		d.bit = append(d.bit, d.prefix(i-1)-d.prefix(i-low))
	}
}

func (d *distanceTracker) update(i int, delta uint64) {
	for ; i < len(d.bit); i += i & (-i) {
		d.bit[i] += delta
	}
}

func (d *distanceTracker) prefix(i int) uint64 {
	var s uint64
	for ; i > 0; i -= i & (-i) {
		s += d.bit[i]
	}
	return s
}

// Distinct returns the number of distinct sectors seen (for tests).
func (d *distanceTracker) Distinct() int { return len(d.last) }
