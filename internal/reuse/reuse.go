// Package reuse extracts the per-PC cache hit rates consumed by the
// analytical memory model of the paper's Eq. 1
// (L_inst = L_L1·R_L1 + L_L2·R_L2 + L_DRAM·R_DRAM).
//
// The paper obtains R_L1/R_L2/R_DRAM "using a reuse distance tool or cache
// simulator"; this package implements both sources over the same
// block-interleaved access stream:
//
//   - ProfileApp runs timeless functional sectored caches (exact
//     organization, including the configured replacement policy);
//   - ProfileAppReuseDistance computes true LRU stack distances with a
//     Fenwick tree and classifies hits by capacity, the classical
//     reuse-distance-theory approach (which, as the paper notes, is
//     inherently LRU-only).
package reuse

import (
	"swiftsim/internal/cache"
	"swiftsim/internal/config"
	"swiftsim/internal/smcore"
	"swiftsim/internal/trace"
)

// Key identifies a static memory instruction: kernel index within the
// application plus the instruction's PC.
type Key struct {
	Kernel int
	PC     uint64
}

// Rates is the level-of-service distribution of one static instruction:
// the fractions of its sector transactions serviced by the L1, the L2, and
// DRAM. The three fields sum to 1 for any instruction with traffic.
type Rates struct {
	L1, L2, DRAM float64
}

// Profile holds the extracted hit rates for one application.
type Profile struct {
	// PerPC maps each static global-memory instruction to its rates.
	PerPC map[Key]Rates
	// Default is the application-wide aggregate, used for instructions
	// missing from PerPC.
	Default Rates
	// DefaultReads is the application-wide aggregate restricted to load
	// transactions. Stores are never serviced by the write-through
	// no-allocate L1, so read-only rates are the ones directly comparable
	// to the timed caches' read_hit/read_miss counters (the differential
	// oracle in internal/regress relies on this).
	DefaultReads Rates
	// Accesses is the total number of sector transactions profiled.
	Accesses uint64
}

// Rates returns the level-of-service distribution for the given
// instruction, falling back to the application aggregate.
func (p *Profile) Rates(kernel int, pc uint64) Rates {
	if r, ok := p.PerPC[Key{kernel, pc}]; ok {
		return r
	}
	return p.Default
}

// counts accumulates per-level service counts during profiling.
type counts struct {
	l1, l2, dram uint64
}

func (c counts) total() uint64 { return c.l1 + c.l2 + c.dram }

func (c counts) rates() Rates {
	t := c.total()
	if t == 0 {
		return Rates{L1: 1}
	}
	return Rates{
		L1:   float64(c.l1) / float64(t),
		L2:   float64(c.l2) / float64(t),
		DRAM: float64(c.dram) / float64(t),
	}
}

// access is one profiled sector transaction.
type access struct {
	key    Key
	sector uint64
	sm     int
	write  bool
}

// stream flattens the application into the block-interleaved sector-access
// stream the profilers consume: blocks are assigned round-robin to SMs
// (mirroring the Block Scheduler), warps within a block interleave
// instruction by instruction, and per-lane addresses are coalesced exactly
// as the LD/ST unit would.
func stream(app *trace.App, gpu config.GPU, onKernel func(ki int), visit func(a access)) {
	sectorBytes := gpu.L1.SectorBytes
	for ki, k := range app.Kernels {
		if onKernel != nil {
			onKernel(ki)
		}
		for bi := range k.Blocks {
			sm := bi % gpu.NumSMs
			warps := k.Blocks[bi].Warps
			// Interleave warps instruction by instruction, the
			// round-robin approximation of concurrent execution.
			maxLen := 0
			for _, w := range warps {
				if len(w) > maxLen {
					maxLen = len(w)
				}
			}
			for i := 0; i < maxLen; i++ {
				for _, w := range warps {
					if i >= len(w) {
						continue
					}
					in := &w[i]
					if !in.Op.IsGlobalMem() {
						continue
					}
					for _, s := range smcore.Coalesce(in.Addrs, sectorBytes) {
						visit(access{
							key:    Key{ki, in.PC},
							sector: s,
							sm:     sm,
							write:  in.Op == trace.OpStoreGlobal,
						})
					}
				}
			}
		}
	}
}

// ProfileApp extracts hit rates with functional sectored caches: one L1
// per SM and one cache with the full L2 capacity, both using the
// configured geometry and replacement policy.
func ProfileApp(app *trace.App, gpu config.GPU) *Profile {
	l1s := make([]*cache.Functional, gpu.NumSMs)
	for i := range l1s {
		l1s[i] = cache.NewFunctional(gpu.L1)
	}
	l2cfg := gpu.L2
	l2cfg.Sets *= gpu.MemPartitions // aggregate capacity of all slices
	l2 := cache.NewFunctional(l2cfg)

	per := make(map[Key]*counts)
	var agg, aggReads counts
	var accesses uint64

	// L1s are invalidated at kernel boundaries, exactly as the timing
	// simulators model the non-coherent L1 flush of real GPUs.
	onKernel := func(int) {
		for _, l1 := range l1s {
			l1.Reset()
		}
	}
	stream(app, gpu, onKernel, func(a access) {
		accesses++
		c := per[a.key]
		if c == nil {
			c = &counts{}
			per[a.key] = c
		}
		// Write-through no-allocate L1: stores never hit-allocate, and
		// always propagate to the L2.
		if !a.write && l1s[a.sm].Access(a.sector, false) {
			c.l1++
			agg.l1++
			aggReads.l1++
			return
		}
		if l2.Access(a.sector, a.write) {
			c.l2++
			agg.l2++
			if !a.write {
				aggReads.l2++
			}
			return
		}
		c.dram++
		agg.dram++
		if !a.write {
			aggReads.dram++
		}
	})

	return buildProfile(per, agg, aggReads, accesses)
}

// ProfileAppReuseDistance extracts hit rates from LRU stack distances: an
// access hits a cache when the number of distinct sectors touched since
// its previous access is smaller than the cache's sector capacity. L1
// distances are computed per SM; accesses that exceed the L1 capacity feed
// the global L2 distance stream.
func ProfileAppReuseDistance(app *trace.App, gpu config.GPU) *Profile {
	l1Cap := uint64(gpu.L1.Sets * gpu.L1.Ways * gpu.L1.SectorsPerLine())
	l2Cap := uint64(gpu.L2.Sets*gpu.L2.Ways*gpu.L2.SectorsPerLine()) * uint64(gpu.MemPartitions)

	l1 := make([]*distanceTracker, gpu.NumSMs)
	for i := range l1 {
		l1[i] = newDistanceTracker()
	}
	l2 := newDistanceTracker()

	per := make(map[Key]*counts)
	var agg, aggReads counts
	var accesses uint64

	onKernel := func(int) {
		for i := range l1 {
			l1[i] = newDistanceTracker()
		}
	}
	stream(app, gpu, onKernel, func(a access) {
		accesses++
		c := per[a.key]
		if c == nil {
			c = &counts{}
			per[a.key] = c
		}
		if !a.write {
			if d := l1[a.sm].access(a.sector); d < l1Cap {
				c.l1++
				agg.l1++
				aggReads.l1++
				return
			}
		}
		if d := l2.access(a.sector); d < l2Cap {
			c.l2++
			agg.l2++
			if !a.write {
				aggReads.l2++
			}
			return
		}
		c.dram++
		agg.dram++
		if !a.write {
			aggReads.dram++
		}
	})

	return buildProfile(per, agg, aggReads, accesses)
}

func buildProfile(per map[Key]*counts, agg, aggReads counts, accesses uint64) *Profile {
	p := &Profile{
		PerPC:        make(map[Key]Rates, len(per)),
		Default:      agg.rates(),
		DefaultReads: aggReads.rates(),
		Accesses:     accesses,
	}
	for k, c := range per {
		p.PerPC[k] = c.rates()
	}
	return p
}

// distanceTracker computes LRU stack distances with the classic
// Fenwick-tree algorithm: O(log n) per access.
type distanceTracker struct {
	last map[uint64]int // sector -> time of most recent access
	bit  []uint64       // Fenwick tree over times; 1 marks a most-recent access
	time int
}

const infiniteDistance = ^uint64(0)

func newDistanceTracker() *distanceTracker {
	return &distanceTracker{last: make(map[uint64]int), bit: make([]uint64, 1)}
}

// access returns the stack distance of this access (number of distinct
// sectors touched since the previous access to the same sector), or
// infiniteDistance for a cold access.
func (d *distanceTracker) access(sector uint64) uint64 {
	d.time++
	d.grow(d.time)
	dist := infiniteDistance
	if prev, ok := d.last[sector]; ok {
		// Count distinct sectors accessed in (prev, now).
		dist = d.prefix(d.time-1) - d.prefix(prev)
		d.update(prev, ^uint64(0)) // remove the stale most-recent mark (-1)
	}
	d.last[sector] = d.time
	d.update(d.time, 1)
	return dist
}

func (d *distanceTracker) grow(n int) {
	// Appending position i to a Fenwick tree must initialize its node to
	// the sum of the range it covers, (i-lowbit(i), i], which is all
	// historical at append time.
	for len(d.bit) <= n {
		i := len(d.bit)
		low := i & (-i)
		d.bit = append(d.bit, d.prefix(i-1)-d.prefix(i-low))
	}
}

func (d *distanceTracker) update(i int, delta uint64) {
	for ; i < len(d.bit); i += i & (-i) {
		d.bit[i] += delta
	}
}

func (d *distanceTracker) prefix(i int) uint64 {
	var s uint64
	for ; i > 0; i -= i & (-i) {
		s += d.bit[i]
	}
	return s
}

// Distinct returns the number of distinct sectors seen (for tests).
func (d *distanceTracker) Distinct() int { return len(d.last) }
