package reuse

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"swiftsim/internal/cache"
	"swiftsim/internal/config"
	"swiftsim/internal/trace"
	"swiftsim/internal/workload"
)

func TestDistanceTrackerBasics(t *testing.T) {
	d := newDistanceTracker()
	if got := d.access(0x100); got != infiniteDistance {
		t.Fatalf("cold access distance = %d, want infinite", got)
	}
	if got := d.access(0x100); got != 0 {
		t.Fatalf("immediate reuse distance = %d, want 0", got)
	}
	d.access(0x200)
	d.access(0x300)
	if got := d.access(0x100); got != 2 {
		t.Fatalf("distance after 2 distinct = %d, want 2", got)
	}
	if d.Distinct() != 3 {
		t.Fatalf("Distinct = %d, want 3", d.Distinct())
	}
}

func TestDistanceTrackerRepeatedInterleave(t *testing.T) {
	d := newDistanceTracker()
	// a b a b a b: after warmup each access has distance 1.
	d.access(1)
	d.access(2)
	for i := 0; i < 5; i++ {
		if got := d.access(uint64(1 + i%2)); got != 1 {
			t.Fatalf("interleave distance = %d, want 1", got)
		}
	}
}

// referenceDistance is a naive O(n²) LRU stack distance oracle.
type referenceDistance struct {
	stack []uint64
}

func (r *referenceDistance) access(s uint64) uint64 {
	for i, v := range r.stack {
		if v == s {
			r.stack = append(r.stack[:i], r.stack[i+1:]...)
			r.stack = append(r.stack, s)
			return uint64(len(r.stack) - 1 - i)
		}
	}
	r.stack = append(r.stack, s)
	return infiniteDistance
}

// TestQuickDistanceMatchesOracle: the Fenwick implementation agrees with
// the naive stack oracle on random streams.
func TestQuickDistanceMatchesOracle(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + int(nRaw)%200
		fast := newDistanceTracker()
		slow := &referenceDistance{}
		for i := 0; i < n; i++ {
			s := uint64(r.Intn(20))
			if fast.access(s) != slow.access(s) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func smallGPU() config.GPU {
	g := config.RTX2080Ti()
	g.NumSMs = 4
	g.MemPartitions = 2
	return g
}

func ratesSumToOne(t *testing.T, p *Profile) {
	t.Helper()
	check := func(r Rates, what string) {
		sum := r.L1 + r.L2 + r.DRAM
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("%s: rates sum to %v", what, sum)
		}
		if r.L1 < 0 || r.L2 < 0 || r.DRAM < 0 {
			t.Errorf("%s: negative rate %+v", what, r)
		}
	}
	check(p.Default, "default")
	for k, r := range p.PerPC {
		check(r, "per-pc")
		_ = k
	}
}

func TestProfileAppOnWorkloads(t *testing.T) {
	gpu := smallGPU()
	for _, name := range []string{"HOTSPOT", "SM", "PAGERANK"} {
		app, err := workload.Generate(name, 0.3)
		if err != nil {
			t.Fatal(err)
		}
		p := ProfileApp(app, gpu)
		if p.Accesses == 0 {
			t.Errorf("%s: no accesses profiled", name)
		}
		if len(p.PerPC) == 0 {
			t.Errorf("%s: no per-PC entries", name)
		}
		ratesSumToOne(t, p)
	}
}

func TestProfileReuseDistanceOnWorkloads(t *testing.T) {
	gpu := smallGPU()
	app, err := workload.Generate("PATHFINDER", 0.3)
	if err != nil {
		t.Fatal(err)
	}
	p := ProfileAppReuseDistance(app, gpu)
	if p.Accesses == 0 || len(p.PerPC) == 0 {
		t.Fatal("empty reuse-distance profile")
	}
	ratesSumToOne(t, p)
}

func TestStreamingWorkloadIsDRAMHeavy(t *testing.T) {
	// SM streams huge unique footprints; GEMM's tiles are shared across
	// blocks and re-hit in the caches. The profile must reflect that.
	gpu := smallGPU()
	sm, _ := workload.Generate("SM", 0.5)
	gemm, _ := workload.Generate("GEMM", 0.5)
	pSM := ProfileApp(sm, gpu)
	pGEMM := ProfileApp(gemm, gpu)
	if pSM.Default.DRAM <= pGEMM.Default.DRAM {
		t.Errorf("SM DRAM rate %.3f not above GEMM %.3f",
			pSM.Default.DRAM, pGEMM.Default.DRAM)
	}
	cached := func(r Rates) float64 { return r.L1 + r.L2 }
	if cached(pGEMM.Default) <= cached(pSM.Default) {
		t.Errorf("GEMM cache rate %.3f not above SM %.3f",
			cached(pGEMM.Default), cached(pSM.Default))
	}
}

func TestTwoProfilersBroadlyAgree(t *testing.T) {
	// Functional LRU caches and reuse-distance theory should agree on
	// the broad shape (within 0.3 absolute on the aggregate rates) for a
	// coalesced workload. Strided workloads legitimately diverge:
	// reuse-distance theory assumes full associativity and misses the
	// set-conflict misses the functional caches model.
	gpu := smallGPU()
	app, _ := workload.Generate("PATHFINDER", 0.3)
	a := ProfileApp(app, gpu)
	b := ProfileAppReuseDistance(app, gpu)
	if math.Abs(a.Default.L1-b.Default.L1) > 0.3 {
		t.Errorf("L1 rates disagree: functional %.3f vs reuse %.3f", a.Default.L1, b.Default.L1)
	}
	if math.Abs(a.Default.DRAM-b.Default.DRAM) > 0.3 {
		t.Errorf("DRAM rates disagree: functional %.3f vs reuse %.3f", a.Default.DRAM, b.Default.DRAM)
	}
}

func TestRatesFallback(t *testing.T) {
	p := &Profile{
		PerPC:   map[Key]Rates{{0, 8}: {L1: 1}},
		Default: Rates{DRAM: 1},
	}
	if r := p.Rates(0, 8); r.L1 != 1 {
		t.Errorf("known PC rates = %+v", r)
	}
	if r := p.Rates(0, 16); r.DRAM != 1 {
		t.Errorf("fallback rates = %+v", r)
	}
	if r := p.Rates(1, 8); r.DRAM != 1 {
		t.Errorf("kernel-mismatch rates = %+v", r)
	}
}

func TestEmptyCountsRates(t *testing.T) {
	var c counts
	r := c.rates()
	if r.L1 != 1 || r.L2 != 0 || r.DRAM != 0 {
		t.Errorf("empty counts rates = %+v, want L1-only", r)
	}
}

func TestStreamCoalesces(t *testing.T) {
	// One warp loading a broadcast address must produce exactly one
	// sector access.
	addrs := make([]uint64, 32)
	for i := range addrs {
		addrs[i] = 0x1000
	}
	k := &trace.Kernel{
		Name: "k", Grid: trace.Dim3{X: 1, Y: 1, Z: 1}, Block: trace.Dim3{X: 32, Y: 1, Z: 1},
		RegsPerThread: 8,
		Blocks: []trace.BlockTrace{{Warps: []trace.WarpTrace{{
			{PC: 0, Op: trace.OpLoadGlobal, Dst: 1, ActiveMask: 0xffffffff, Addrs: addrs},
			{PC: 8, Op: trace.OpExit, ActiveMask: 0xffffffff},
		}}}},
	}
	app := &trace.App{Name: "t", Suite: "unit", Kernels: []*trace.Kernel{k}}
	if err := app.Validate(); err != nil {
		t.Fatal(err)
	}
	n := 0
	stream(app, smallGPU(), nil, func(a access) { n++ })
	if n != 1 {
		t.Errorf("stream produced %d accesses, want 1 (coalesced broadcast)", n)
	}
}

// serialProfile is the single-pass serial oracle for the two-phase
// profilers: the whole stream through the L1 filter and the shared L2
// model in order, exactly as the pre-parallel implementation did.
func serialProfile(app *trace.App, gpu config.GPU,
	newL1 func() func(a access) bool, hitL2 func(a l2Access) bool) *Profile {
	per := make(map[Key]*counts)
	var agg, aggReads counts
	var accesses uint64
	var absorb func(a access) bool
	onKernel := func(int) { absorb = newL1() }
	stream(app, gpu, onKernel, func(a access) {
		accesses++
		c := per[a.key]
		if c == nil {
			c = &counts{}
			per[a.key] = c
		}
		if !a.write && absorb(a) {
			c.l1++
			agg.l1++
			aggReads.l1++
			return
		}
		if hitL2(l2Access{key: a.key, sector: a.sector, write: a.write}) {
			c.l2++
			agg.l2++
			if !a.write {
				aggReads.l2++
			}
			return
		}
		c.dram++
		agg.dram++
		if !a.write {
			aggReads.dram++
		}
	})
	return buildProfile(per, agg, aggReads, accesses)
}

// TestProfileParallelMatchesSerial: the two-phase (parallel-L1, serial-L2)
// profilers must reproduce the serial single-pass profile bit for bit —
// every per-PC rate, the aggregates, and the access count.
func TestProfileParallelMatchesSerial(t *testing.T) {
	gpu := smallGPU()
	for _, name := range []string{"BFS", "LU", "PATHFINDER"} {
		app, err := workload.Generate(name, 0.3)
		if err != nil {
			t.Fatal(err)
		}
		if len(app.Kernels) < 2 && name != "PATHFINDER" {
			t.Fatalf("%s: want a multi-kernel app to exercise the shared L2 carry-over", name)
		}

		wantFunc := serialProfile(app, gpu,
			func() func(a access) bool {
				l1s := make([]*cache.Functional, gpu.NumSMs)
				for i := range l1s {
					l1s[i] = cache.NewFunctional(gpu.L1)
				}
				return func(a access) bool { return l1s[a.sm].Access(a.sector, false) }
			},
			func() func(a l2Access) bool {
				l2cfg := gpu.L2
				l2cfg.Sets *= gpu.MemPartitions
				l2 := cache.NewFunctional(l2cfg)
				return func(a l2Access) bool { return l2.Access(a.sector, a.write) }
			}())
		if got := ProfileApp(app, gpu); !reflect.DeepEqual(got, wantFunc) {
			t.Errorf("%s: ProfileApp diverged from the serial oracle", name)
		}

		l1Cap := uint64(gpu.L1.Sets * gpu.L1.Ways * gpu.L1.SectorsPerLine())
		l2Cap := uint64(gpu.L2.Sets*gpu.L2.Ways*gpu.L2.SectorsPerLine()) * uint64(gpu.MemPartitions)
		wantRD := serialProfile(app, gpu,
			func() func(a access) bool {
				l1 := make([]*distanceTracker, gpu.NumSMs)
				for i := range l1 {
					l1[i] = newDistanceTracker()
				}
				return func(a access) bool { return l1[a.sm].access(a.sector) < l1Cap }
			},
			func() func(a l2Access) bool {
				l2 := newDistanceTracker()
				return func(a l2Access) bool { return l2.access(a.sector) < l2Cap }
			}())
		if got := ProfileAppReuseDistance(app, gpu); !reflect.DeepEqual(got, wantRD) {
			t.Errorf("%s: ProfileAppReuseDistance diverged from the serial oracle", name)
		}
	}
}
