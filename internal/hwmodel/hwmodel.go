// Package hwmodel provides the golden "real hardware" reference that the
// repository validates simulators against, substituting for the paper's
// Nsight-Compute measurements on physical RTX GPUs (which need hardware we
// do not have).
//
// The golden model is the Detailed cycle-accurate simulator augmented with
// effects that none of the three performance simulators model — the same
// mechanism that produces prediction error in real validation studies:
//
//   - undisclosed timing: every latency parameter is scaled by a factor
//     representing the gap between public configuration files and actual
//     silicon (the paper: "Due to unique disclosed hardware parameters in
//     different GPU architectures, the error of the GPU performance
//     simulator varies");
//   - kernel launch overhead: driver + hardware dispatch cost per kernel;
//   - instruction-cache warm-up: the first wave of each kernel stalls on
//     i-cache cold misses;
//   - address-translation misses: each distinct 64 KiB page touched costs
//     a TLB walk, partially hidden by thread-level parallelism;
//   - DRAM refresh: a fixed fraction of cycles is stolen by refresh.
//
// Every effect is deterministic in the (application, GPU) pair, so error
// numbers are reproducible.
package hwmodel

import (
	"swiftsim/internal/config"
	"swiftsim/internal/sim"
	"swiftsim/internal/trace"
)

// Params are the golden model's extra-effect coefficients. Defaults are
// chosen so simulator-vs-hardware errors land in the paper's observed
// range (mean ≈ 20% for the detailed simulator).
type Params struct {
	// LatencyScale multiplies all latency parameters (silicon vs
	// config-file gap).
	LatencyScale float64
	// KernelLaunchCycles is the per-kernel dispatch overhead.
	KernelLaunchCycles uint64
	// ICacheMissCycles is the stall per static instruction during each
	// kernel's first wave.
	ICacheMissCycles float64
	// TLBMissCycles is the cost of one page walk; PageBytes the page
	// granularity.
	TLBMissCycles float64
	PageBytes     uint64
	// RefreshFraction is the fraction of cycles stolen by DRAM refresh.
	RefreshFraction float64
}

// DefaultParams returns the calibrated golden-model coefficients.
func DefaultParams() Params {
	return Params{
		LatencyScale:       1.12,
		KernelLaunchCycles: 300,
		ICacheMissCycles:   6,
		TLBMissCycles:      110,
		PageBytes:          64 << 10,
		RefreshFraction:    0.008,
	}
}

// Run produces the golden "hardware" cycle count for app on gpu.
func Run(app *trace.App, gpu config.GPU, p Params) (*sim.Result, error) {
	res, err := sim.Run(app, gpu, sim.Options{
		Kind:                sim.Detailed,
		LatencyScale:        p.LatencyScale,
		ExtraKernelOverhead: p.KernelLaunchCycles,
	})
	if err != nil {
		return nil, err
	}
	res.Cycles += icacheWarmup(app, p)
	// TLB walks overlap heavily with execution on real hardware; the
	// visible stall component is capped at a fraction of run time.
	tlb := tlbCost(app, gpu, p)
	if lim := res.Cycles / 8; tlb > lim {
		tlb = lim
	}
	res.Cycles += tlb
	res.Cycles += uint64(float64(res.Cycles) * p.RefreshFraction)
	res.GPUName = gpu.Name + "-hw"
	return res, nil
}

// icacheWarmup estimates first-wave instruction-fetch stalls: each kernel
// pays ICacheMissCycles per static instruction of its warp program once.
func icacheWarmup(app *trace.App, p Params) uint64 {
	var total float64
	for _, k := range app.Kernels {
		if len(k.Blocks) == 0 || len(k.Blocks[0].Warps) == 0 {
			continue
		}
		staticInsts := len(k.Blocks[0].Warps[0])
		total += p.ICacheMissCycles * float64(staticInsts)
	}
	return uint64(total)
}

// tlbCost estimates address-translation overhead: one walk per distinct
// page, divided by the machine parallelism that hides walks.
func tlbCost(app *trace.App, gpu config.GPU, p Params) uint64 {
	if p.PageBytes == 0 || p.TLBMissCycles == 0 {
		return 0
	}
	pages := make(map[uint64]struct{})
	for _, k := range app.Kernels {
		for bi := range k.Blocks {
			for _, w := range k.Blocks[bi].Warps {
				for i := range w {
					for _, a := range w[i].Addrs {
						if w[i].Op.IsGlobalMem() {
							pages[a/p.PageBytes] = struct{}{}
						}
					}
				}
			}
		}
	}
	parallelism := float64(gpu.NumSMs)
	return uint64(float64(len(pages)) * p.TLBMissCycles / parallelism)
}
