package hwmodel

import (
	"testing"

	"swiftsim/internal/config"
	"swiftsim/internal/sim"
	"swiftsim/internal/workload"
)

func smallGPU() config.GPU {
	g := config.RTX2080Ti()
	g.NumSMs = 4
	g.MemPartitions = 2
	return g
}

func TestGoldenExceedsDetailed(t *testing.T) {
	// Every extra effect adds time: the golden reference must predict
	// more cycles than the plain detailed simulator on every app.
	gpu := smallGPU()
	for _, name := range []string{"BFS", "GEMM", "GRU"} {
		app, err := workload.Generate(name, 0.1)
		if err != nil {
			t.Fatal(err)
		}
		hw, err := Run(app, gpu, DefaultParams())
		if err != nil {
			t.Fatal(err)
		}
		det, err := sim.Run(app, gpu, sim.Options{Kind: sim.Detailed})
		if err != nil {
			t.Fatal(err)
		}
		if hw.Cycles <= det.Cycles {
			t.Errorf("%s: golden %d <= detailed %d", name, hw.Cycles, det.Cycles)
		}
		// But not absurdly more: the gap is the realistic error band.
		if float64(hw.Cycles) > 2.5*float64(det.Cycles) {
			t.Errorf("%s: golden %d implausibly above detailed %d", name, hw.Cycles, det.Cycles)
		}
	}
}

func TestGoldenDeterministic(t *testing.T) {
	gpu := smallGPU()
	app, err := workload.Generate("SSSP", 0.1)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Run(app, gpu, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(app, gpu, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if a.Cycles != b.Cycles {
		t.Errorf("golden model nondeterministic: %d vs %d", a.Cycles, b.Cycles)
	}
}

func TestGoldenNamesGPU(t *testing.T) {
	gpu := smallGPU()
	app, _ := workload.Generate("WC", 0.1)
	hw, err := Run(app, gpu, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if hw.GPUName != gpu.Name+"-hw" {
		t.Errorf("GPUName = %q, want %q", hw.GPUName, gpu.Name+"-hw")
	}
}

func TestEffectKnobs(t *testing.T) {
	gpu := smallGPU()
	app, _ := workload.Generate("GRU", 0.1) // many kernels: launch-sensitive
	base := Params{LatencyScale: 1.0}
	baseRes, err := Run(app, gpu, base)
	if err != nil {
		t.Fatal(err)
	}
	knobs := []struct {
		name string
		mut  func(*Params)
	}{
		{"latency scale", func(p *Params) { p.LatencyScale = 1.3 }},
		{"launch overhead", func(p *Params) { p.KernelLaunchCycles = 5000 }},
		{"icache warmup", func(p *Params) { p.ICacheMissCycles = 50 }},
		{"tlb", func(p *Params) { p.TLBMissCycles = 500; p.PageBytes = 64 << 10 }},
		{"refresh", func(p *Params) { p.RefreshFraction = 0.2 }},
	}
	for _, k := range knobs {
		p := base
		k.mut(&p)
		res, err := Run(app, gpu, p)
		if err != nil {
			t.Fatal(err)
		}
		if res.Cycles <= baseRes.Cycles {
			t.Errorf("%s: no effect (%d vs base %d)", k.name, res.Cycles, baseRes.Cycles)
		}
	}
}

func TestTLBCostCountsUniquePages(t *testing.T) {
	gpu := smallGPU()
	p := Params{TLBMissCycles: 100, PageBytes: 64 << 10}
	gather, _ := workload.Generate("PAGERANK", 0.1) // scattered: many pages
	stream, _ := workload.Generate("GAUSSIAN", 0.1) // compact footprint
	if tlbCost(gather, gpu, p) <= tlbCost(stream, gpu, p) {
		t.Error("scattered app must touch more pages than compact app")
	}
	// Disabled knobs return zero.
	if tlbCost(gather, gpu, Params{}) != 0 {
		t.Error("zero params must cost nothing")
	}
}

func TestICacheWarmupScalesWithCode(t *testing.T) {
	p := DefaultParams()
	small, _ := workload.Generate("WC", 0.1)   // one kernel
	large, _ := workload.Generate("LSTM", 1.0) // several long kernels
	if icacheWarmup(large, p) <= icacheWarmup(small, p) {
		t.Error("more static code must warm up longer")
	}
}

func TestRunRejectsInvalidInput(t *testing.T) {
	app, _ := workload.Generate("BFS", 0.1)
	bad := smallGPU()
	bad.NumSMs = 0
	if _, err := Run(app, bad, DefaultParams()); err == nil {
		t.Error("invalid GPU accepted")
	}
}
