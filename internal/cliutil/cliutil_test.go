package cliutil

import (
	"reflect"
	"testing"
)

func TestSplitList(t *testing.T) {
	tests := []struct {
		name string
		in   string
		want []string
	}{
		{"plain", "BFS,GEMM,SM", []string{"BFS", "GEMM", "SM"}},
		{"spaces around elements", " BFS , GEMM ,SM", []string{"BFS", "GEMM", "SM"}},
		{"trailing comma", "BFS,GEMM,", []string{"BFS", "GEMM"}},
		{"leading comma", ",BFS", []string{"BFS"}},
		{"consecutive commas", "BFS,,GEMM", []string{"BFS", "GEMM"}},
		{"single element", "BFS", []string{"BFS"}},
		{"single padded element", "  BFS\t", []string{"BFS"}},
		{"empty", "", nil},
		{"only commas", ",,,", nil},
		{"only whitespace", "  \t ", nil},
		{"whitespace between commas", " , , ", nil},
		{"tabs", "\tBFS\t,\tGEMM\t", []string{"BFS", "GEMM"}},
		{"interior spaces preserved", "a b, c d", []string{"a b", "c d"}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := SplitList(tt.in); !reflect.DeepEqual(got, tt.want) {
				t.Errorf("SplitList(%q) = %#v, want %#v", tt.in, got, tt.want)
			}
		})
	}
}

func TestValidateModes(t *testing.T) {
	tests := []struct {
		name    string
		m       Modes
		wantErr bool
	}{
		{"defaults", Modes{}, false},
		{"exact serial", Modes{EngineThreads: 1, EpochCycles: 1}, false},
		{"exact parallel", Modes{EngineThreads: 8, EpochCycles: 1}, false},
		{"zero epoch with threads", Modes{EngineThreads: 4}, false},
		{"relaxed parallel", Modes{EngineThreads: 4, EpochCycles: 8}, false},
		{"relaxed two threads", Modes{EngineThreads: 2, EpochCycles: 2}, false},
		{"large epoch parallel", Modes{EngineThreads: 2, EpochCycles: 1024}, false},
		{"relaxed serial", Modes{EngineThreads: 1, EpochCycles: 8}, true},
		{"relaxed zero threads", Modes{EpochCycles: 8}, true},
		{"relaxed negative threads", Modes{EngineThreads: -1, EpochCycles: 8}, true},
		{"smallest relaxed serial", Modes{EngineThreads: 1, EpochCycles: 2}, true},
		{"negative epoch", Modes{EngineThreads: 4, EpochCycles: -1}, true},
		{"negative epoch serial", Modes{EpochCycles: -3}, true},

		{"sampling default knobs", Modes{Sample: true}, false},
		{"sampling explicit knobs", Modes{Sample: true, SampleFraction: 0.25, SampleStride: 4}, false},
		{"sampling stride one", Modes{Sample: true, SampleStride: 1}, false},
		{"sampling with parallel engine", Modes{Sample: true, EngineThreads: 4}, false},
		{"sampling with relaxed epochs", Modes{Sample: true, EngineThreads: 4, EpochCycles: 8}, false},
		{"sampling fraction one", Modes{Sample: true, SampleFraction: 1}, true},
		{"sampling fraction negative", Modes{Sample: true, SampleFraction: -0.5}, true},
		{"sampling stride negative", Modes{Sample: true, SampleStride: -1}, true},
		{"fraction without sample", Modes{SampleFraction: 0.25}, true},
		{"stride without sample", Modes{SampleStride: 4}, true},
		{"sampling does not excuse bad epochs", Modes{Sample: true, EngineThreads: 1, EpochCycles: 8}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := ValidateModes(tt.m)
			if (err != nil) != tt.wantErr {
				t.Errorf("ValidateModes(%+v) = %v, want error %v", tt.m, err, tt.wantErr)
			}
		})
	}
}
