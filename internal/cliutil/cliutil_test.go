package cliutil

import (
	"reflect"
	"testing"
)

func TestSplitList(t *testing.T) {
	tests := []struct {
		name string
		in   string
		want []string
	}{
		{"plain", "BFS,GEMM,SM", []string{"BFS", "GEMM", "SM"}},
		{"spaces around elements", " BFS , GEMM ,SM", []string{"BFS", "GEMM", "SM"}},
		{"trailing comma", "BFS,GEMM,", []string{"BFS", "GEMM"}},
		{"leading comma", ",BFS", []string{"BFS"}},
		{"consecutive commas", "BFS,,GEMM", []string{"BFS", "GEMM"}},
		{"single element", "BFS", []string{"BFS"}},
		{"single padded element", "  BFS\t", []string{"BFS"}},
		{"empty", "", nil},
		{"only commas", ",,,", nil},
		{"only whitespace", "  \t ", nil},
		{"whitespace between commas", " , , ", nil},
		{"tabs", "\tBFS\t,\tGEMM\t", []string{"BFS", "GEMM"}},
		{"interior spaces preserved", "a b, c d", []string{"a b", "c d"}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := SplitList(tt.in); !reflect.DeepEqual(got, tt.want) {
				t.Errorf("SplitList(%q) = %#v, want %#v", tt.in, got, tt.want)
			}
		})
	}
}
