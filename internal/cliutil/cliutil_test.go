package cliutil

import (
	"reflect"
	"testing"
)

func TestSplitList(t *testing.T) {
	tests := []struct {
		name string
		in   string
		want []string
	}{
		{"plain", "BFS,GEMM,SM", []string{"BFS", "GEMM", "SM"}},
		{"spaces around elements", " BFS , GEMM ,SM", []string{"BFS", "GEMM", "SM"}},
		{"trailing comma", "BFS,GEMM,", []string{"BFS", "GEMM"}},
		{"leading comma", ",BFS", []string{"BFS"}},
		{"consecutive commas", "BFS,,GEMM", []string{"BFS", "GEMM"}},
		{"single element", "BFS", []string{"BFS"}},
		{"single padded element", "  BFS\t", []string{"BFS"}},
		{"empty", "", nil},
		{"only commas", ",,,", nil},
		{"only whitespace", "  \t ", nil},
		{"whitespace between commas", " , , ", nil},
		{"tabs", "\tBFS\t,\tGEMM\t", []string{"BFS", "GEMM"}},
		{"interior spaces preserved", "a b, c d", []string{"a b", "c d"}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := SplitList(tt.in); !reflect.DeepEqual(got, tt.want) {
				t.Errorf("SplitList(%q) = %#v, want %#v", tt.in, got, tt.want)
			}
		})
	}
}

func TestValidateEpoch(t *testing.T) {
	tests := []struct {
		name    string
		epoch   int
		threads int
		wantErr bool
	}{
		{"defaults", 0, 0, false},
		{"exact serial", 1, 1, false},
		{"exact parallel", 1, 8, false},
		{"zero epoch with threads", 0, 4, false},
		{"relaxed parallel", 8, 4, false},
		{"relaxed two threads", 2, 2, false},
		{"large epoch parallel", 1024, 2, false},
		{"relaxed serial", 8, 1, true},
		{"relaxed zero threads", 8, 0, true},
		{"relaxed negative threads", 8, -1, true},
		{"smallest relaxed serial", 2, 1, true},
		{"negative epoch", -1, 4, true},
		{"negative epoch serial", -3, 0, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := ValidateEpoch(tt.epoch, tt.threads)
			if (err != nil) != tt.wantErr {
				t.Errorf("ValidateEpoch(%d, %d) = %v, want error %v",
					tt.epoch, tt.threads, err, tt.wantErr)
			}
		})
	}
}
