// Package cliutil holds small helpers shared by the command-line front
// ends (cmd/sweep, cmd/explore, cmd/swiftsimd).
package cliutil

import (
	"fmt"
	"strings"
)

// SplitList splits a comma-separated flag value into its elements,
// trimming surrounding whitespace and dropping empties. A bare
// strings.Split would turn "BFS, GEMM," into ["BFS", " GEMM", ""] — the
// padded name misses the workload catalog and the trailing empty string
// becomes a phantom job — so every list-valued flag goes through here.
// Empty or all-whitespace input yields nil.
func SplitList(s string) []string {
	var out []string
	for _, el := range strings.Split(s, ",") {
		if el = strings.TrimSpace(el); el != "" {
			out = append(out, el)
		}
	}
	return out
}

// Modes is the execution-mode flag set every front end exposes: the
// engine-parallelism dial (-engine-threads), the relaxed-sync dial
// (-epoch-cycles) and the sampled-execution dial (-sample, -sample-frac,
// -sample-stride). ValidateModes checks them jointly.
type Modes struct {
	EngineThreads int
	EpochCycles   int
	Sample        bool
	// SampleFraction is the -sample-frac value; 0 means the simulator's
	// default. Only meaningful (and only validated) when Sample is set.
	SampleFraction float64
	// SampleStride is the -sample-stride value; 0 means the simulator's
	// default, 1 disables launch replay. Only meaningful (and only
	// validated) when Sample is set.
	SampleStride int
}

// ValidateModes checks an execution-mode flag combination up front, so the
// front ends fail with one actionable message instead of the simulator's
// deeper error (or a silently ignored flag):
//
//   - Relaxed-sync epochs only exist in a parallel engine assembly:
//     epochCycles > 1 on a serial run (engineThreads <= 1) would be
//     silently ignored, so the contradiction is rejected. 0 or 1 (exact
//     mode) pass with any thread count.
//   - Sampling tuning flags without -sample would likewise be dead
//     settings; a fraction or stride given while sampling is off is a
//     contradiction, and an enabled fraction must lie in [0,1) with a
//     non-negative stride.
func ValidateModes(m Modes) error {
	if m.EpochCycles < 0 {
		return fmt.Errorf("-epoch-cycles must be >= 0, got %d", m.EpochCycles)
	}
	if m.EpochCycles > 1 && m.EngineThreads <= 1 {
		return fmt.Errorf("-epoch-cycles %d needs a parallel engine: pass -engine-threads > 1 (or drop -epoch-cycles for the exact serial run)", m.EpochCycles)
	}
	if !m.Sample {
		if m.SampleFraction != 0 {
			return fmt.Errorf("-sample-frac %v has no effect without -sample", m.SampleFraction)
		}
		if m.SampleStride != 0 {
			return fmt.Errorf("-sample-stride %d has no effect without -sample", m.SampleStride)
		}
		return nil
	}
	if m.SampleFraction < 0 || m.SampleFraction >= 1 {
		return fmt.Errorf("-sample-frac must be in (0,1) (0 = simulator default), got %v", m.SampleFraction)
	}
	if m.SampleStride < 0 {
		return fmt.Errorf("-sample-stride must be >= 0 (0 = simulator default, 1 = no replay), got %d", m.SampleStride)
	}
	return nil
}
