// Package cliutil holds small helpers shared by the command-line front
// ends (cmd/sweep, cmd/explore, cmd/swiftsimd).
package cliutil

import "strings"

// SplitList splits a comma-separated flag value into its elements,
// trimming surrounding whitespace and dropping empties. A bare
// strings.Split would turn "BFS, GEMM," into ["BFS", " GEMM", ""] — the
// padded name misses the workload catalog and the trailing empty string
// becomes a phantom job — so every list-valued flag goes through here.
// Empty or all-whitespace input yields nil.
func SplitList(s string) []string {
	var out []string
	for _, el := range strings.Split(s, ",") {
		if el = strings.TrimSpace(el); el != "" {
			out = append(out, el)
		}
	}
	return out
}
