// Package cliutil holds small helpers shared by the command-line front
// ends (cmd/sweep, cmd/explore, cmd/swiftsimd).
package cliutil

import (
	"fmt"
	"strings"
)

// SplitList splits a comma-separated flag value into its elements,
// trimming surrounding whitespace and dropping empties. A bare
// strings.Split would turn "BFS, GEMM," into ["BFS", " GEMM", ""] — the
// padded name misses the workload catalog and the trailing empty string
// becomes a phantom job — so every list-valued flag goes through here.
// Empty or all-whitespace input yields nil.
func SplitList(s string) []string {
	var out []string
	for _, el := range strings.Split(s, ",") {
		if el = strings.TrimSpace(el); el != "" {
			out = append(out, el)
		}
	}
	return out
}

// ValidateEpoch checks the -epoch-cycles/-engine-threads flag combination.
// Relaxed-sync epochs only exist in a parallel engine assembly: asking for
// epochCycles > 1 on a serial run (engineThreads <= 1) would be silently
// ignored by the simulator, so the front ends reject the contradiction up
// front with an actionable message instead. Negative values are rejected
// outright; epochCycles of 0 or 1 (exact mode) pass with any thread count.
func ValidateEpoch(epochCycles, engineThreads int) error {
	if epochCycles < 0 {
		return fmt.Errorf("-epoch-cycles must be >= 0, got %d", epochCycles)
	}
	if epochCycles > 1 && engineThreads <= 1 {
		return fmt.Errorf("-epoch-cycles %d needs a parallel engine: pass -engine-threads > 1 (or drop -epoch-cycles for the exact serial run)", epochCycles)
	}
	return nil
}
