// The relaxed-sync epoch boundary: bounded-staleness queues between the
// sharded L1s and the shared memory system (NoC/L2/DRAM, or the analytical
// Backend in the L2Hybrid assembly).
//
// In exact parallel mode (EpochCycles <= 1) the engine hoists every L1's
// downstream drain into a serial pre-phase, so sharded caches can push into
// the shared interconnect directly. In epoch mode drains run *inside* the
// concurrent shard pass, so each L1 instead pushes into its own shard-private
// boundary port, which always accepts and stamps the message with the
// shard-local capture cycle. The boundary itself is a serial module
// registered between the L1s and the interconnect; every visited cycle it
// folds the port buffers together and delivers, in deterministic
// (capture cycle, SM index, FIFO) order, exactly the messages whose capture
// cycle has been reached — so downstream modules never observe a message
// from their future, and the delivered schedule is a pure function of the
// assembly and the epoch length (independent of thread count).
//
// Invariants:
//   - per-port buffers are written only by the owning shard during the
//     pass, and only read/cleared by the serial boundary tick — no locks;
//   - a port's capture cycles are nondecreasing, so a stable sort on
//     (cycle, port) preserves each L1's FIFO order;
//   - messages refused by the downstream port (backpressure) are retried
//     every cycle; Busy() reports pending traffic so the engine neither
//     fast-forwards past it nor declares a deadlock while a request is
//     parked here.
//
// The boundary intentionally does not implement engine.WakeAware: as a
// legacy ticker it is permanently in the active set and Busy-polled every
// cycle, which is exactly the always-on drain semantics it needs.
package sim

import (
	"fmt"
	"sort"

	"swiftsim/internal/engine"
	"swiftsim/internal/mem"
	"swiftsim/internal/metrics"
	"swiftsim/internal/snap"
)

// boundaryItem is one in-flight message with its capture metadata.
type boundaryItem struct {
	cyc uint64 // shard-local cycle the L1 pushed the message
	ord int    // originating port (SM) index: the serial-order tie-break
	r   *mem.Request
}

// epochBoundary carries cross-shard memory traffic between barriers.
type epochBoundary struct {
	name  string
	down  mem.Port
	ports []*boundaryPort
	queue []boundaryItem // folded, sorted, awaiting delivery

	messages *metrics.Counter // total messages carried
	deferred *metrics.Counter // deliveries after the capture cycle (backpressure)
}

func newEpochBoundary(name string, down mem.Port, g *metrics.Gatherer) *epochBoundary {
	return &epochBoundary{
		name:     name,
		down:     down,
		messages: g.Counter(name + ".messages"),
		deferred: g.Counter(name + ".deferred"),
	}
}

// port returns a new shard-private entry port. ord must be unique and
// ordered like the L1s' registration order (the SM index), and ctx must be
// the owning L1's engine context so capture cycles are shard-local.
func (b *epochBoundary) port(ord int, ctx engine.Context) mem.Port {
	p := &boundaryPort{b: b, ord: ord, ctx: ctx}
	b.ports = append(b.ports, p)
	return p
}

// Name implements engine.Module.
func (b *epochBoundary) Name() string { return b.name }

// Kind implements engine.Module.
func (b *epochBoundary) Kind() engine.ModelKind { return engine.CycleAccurate }

// Busy implements engine.Ticker: pending traffic must keep the engine
// visiting cycles. Called only from the engine's serial phases.
func (b *epochBoundary) Busy() bool {
	if len(b.queue) > 0 {
		return true
	}
	for _, p := range b.ports {
		if len(p.buf) > 0 {
			return true
		}
	}
	return false
}

// Tick implements engine.Ticker: fold the port buffers, restore serial
// delivery order, and release everything captured at or before this cycle.
func (b *epochBoundary) Tick(cycle uint64) {
	folded := false
	for _, p := range b.ports {
		if len(p.buf) > 0 {
			// Counted here, not in Accept: the ports run on concurrent
			// shard goroutines and the counter is on the shared gatherer.
			b.messages.Add(uint64(len(p.buf)))
			b.queue = append(b.queue, p.buf...)
			p.buf = p.buf[:0]
			folded = true
		}
	}
	if folded {
		// Stable: items of one port at one cycle keep their FIFO order.
		sort.SliceStable(b.queue, func(i, j int) bool {
			if b.queue[i].cyc != b.queue[j].cyc {
				return b.queue[i].cyc < b.queue[j].cyc
			}
			return b.queue[i].ord < b.queue[j].ord
		})
	}
	n := 0
	for n < len(b.queue) && b.queue[n].cyc <= cycle {
		if !b.down.Accept(b.queue[n].r) {
			break
		}
		if b.queue[n].cyc < cycle {
			b.deferred.Inc()
		}
		n++
	}
	if n > 0 {
		b.queue = append(b.queue[:0], b.queue[n:]...)
	}
}

// SnapSave implements snap.Stateful: at a quiescent point no traffic is
// parked here.
func (b *epochBoundary) SnapSave(w *snap.Writer) {
	if b.Busy() {
		w.Fail(fmt.Errorf("%w: epoch boundary %s holds in-flight messages", snap.ErrNotQuiescent, b.name))
	}
}

// SnapLoad implements snap.Stateful.
func (b *epochBoundary) SnapLoad(r *snap.Reader) error { return r.Err() }

// boundaryPort is one L1's shard-private entry into the boundary.
type boundaryPort struct {
	b   *epochBoundary
	ord int
	ctx engine.Context
	buf []boundaryItem
}

// Accept implements mem.Port. It never refuses: downstream backpressure is
// absorbed by the boundary queue (and surfaced through the deferred
// counter), which is part of the relaxation — an L1 never stalls on the
// shared interconnect mid-epoch. Runs on the owning shard's goroutine, so
// it must touch only the shard-private buffer.
func (p *boundaryPort) Accept(r *mem.Request) bool {
	p.buf = append(p.buf, boundaryItem{cyc: p.ctx.Cycle(), ord: p.ord, r: r})
	return true
}
