// Simulation-level checkpointing on top of the engine snapshot
// (internal/engine/snapshot.go, format internal/snap).
//
// A sim snapshot is one snap stream:
//
//	header   magic "SSIM" + format version (snap.LoadHeader)
//	identity app name, kernel count, GPU name, Kind, MaxCycles,
//	         LatencyScale, ExtraKernelOverhead, SampleBlocks and the
//	         effective epoch length — everything that shapes the timing of
//	         the remainder of the run. Restore refuses a mismatch with
//	         ErrSnapshotMismatch. EngineThreads is deliberately excluded:
//	         the module inventory and all simulated state are thread-count
//	         independent, so a checkpoint taken at one thread count restores
//	         at any other. A custom Scheduler hook cannot be compared (it is
//	         a function) and is the caller's responsibility to keep stable.
//	run pos  next kernel index, per-kernel durations so far, extrapolated
//	         and overhead cycle accumulators, the sampling flag
//	engine   one length-framed engine.SaveState payload (scheduler counters
//	         plus every module's positional section)
//	metrics  the gatherer's counters by sorted name
//
// Snapshots are taken only at quiescent kernel boundaries: no scheduled
// events, no busy module, no in-flight memory traffic. Boundaries that are
// not quiescent (for example fire-and-forget stores still draining through
// the cycle-accurate L2/DRAM) are skipped and the next boundary is tried;
// if no quiescent boundary at or after SnapshotAt exists before the run
// ends, the run fails with a structured error rather than silently writing
// nothing.
package sim

import (
	"errors"
	"fmt"
	"io"
	"math"

	"swiftsim/internal/config"
	"swiftsim/internal/snap"
	"swiftsim/internal/trace"
)

// ErrSnapshotMismatch reports a checkpoint whose identity section does not
// match the run it is being restored into.
var ErrSnapshotMismatch = errors.New("sim: snapshot does not match this run")

// writeSnapshot checkpoints the run at the current kernel boundary, with
// nextKernel the index of the first kernel not yet simulated. It returns
// (false, nil) when the boundary is not quiescent — the caller retries at
// the next boundary — and (true, nil) once the checkpoint has been written
// to opts.SnapshotTo.
func writeSnapshot(a *gpuAssembly, app *trace.App, gpu config.GPU, opts Options, sampled bool, nextKernel int, kernelCycles []uint64, extrapolated, overhead uint64) (bool, error) {
	// Fold the per-shard metric shadows first so the saved gatherer equals
	// a serial run's at this boundary.
	if a.drain != nil {
		a.drain()
	}
	if !a.eng.Quiescent() {
		return false, nil
	}

	var w snap.Writer
	// Identity section.
	w.String(app.Name)
	w.U64(uint64(len(app.Kernels)))
	w.String(gpu.Name)
	w.U64(uint64(opts.Kind))
	w.U64(opts.MaxCycles)
	w.F64(opts.LatencyScale)
	w.U64(opts.ExtraKernelOverhead)
	w.F64(opts.SampleBlocks)
	w.U64(uint64(a.eng.EpochCycles()))

	// Run-position section.
	w.U64(uint64(nextKernel))
	w.U64(uint64(len(kernelCycles)))
	for _, kc := range kernelCycles {
		w.U64(kc)
	}
	w.U64(extrapolated)
	w.U64(overhead)
	w.Bool(sampled)

	// Engine section, length-framed so the stream can be walked without
	// engine knowledge (see ParseSnapshot).
	var ew snap.Writer
	a.eng.SaveState(&ew)
	if err := ew.Err(); err != nil {
		if errors.Is(err, snap.ErrNotQuiescent) {
			// A module still holds in-flight work the engine-level check
			// cannot see; treat like any other non-quiescent boundary.
			return false, nil
		}
		return false, err
	}
	w.Bytes64(ew.Bytes())

	// Metrics section.
	names := a.g.Names()
	w.U64(uint64(len(names)))
	for _, n := range names {
		w.String(n)
		w.U64(a.g.Value(n))
	}

	if _, err := w.WriteTo(opts.SnapshotTo); err != nil {
		return false, err
	}
	return true, nil
}

// resumeState is the run position recovered from a checkpoint.
type resumeState struct {
	nextKernel   int
	kernelCycles []uint64
	extrapolated uint64
	overhead     uint64
}

// readSnapshot restores a freshly assembled simulator from opts.RestoreFrom
// and returns where to resume. Every failure is a structured error; on
// error the assembly must be discarded.
func readSnapshot(a *gpuAssembly, app *trace.App, gpu config.GPU, opts Options, sampled bool) (*resumeState, error) {
	data, err := io.ReadAll(opts.RestoreFrom)
	if err != nil {
		return nil, err
	}
	r, err := snap.LoadHeader(data)
	if err != nil {
		return nil, err
	}

	// Identity section.
	if v := r.String(); r.Err() == nil && v != app.Name {
		return nil, fmt.Errorf("%w: snapshot is of app %q, this run simulates %q", ErrSnapshotMismatch, v, app.Name)
	}
	if v := r.U64(); r.Err() == nil && v != uint64(len(app.Kernels)) {
		return nil, fmt.Errorf("%w: snapshot has %d kernels, this run has %d", ErrSnapshotMismatch, v, len(app.Kernels))
	}
	if v := r.String(); r.Err() == nil && v != gpu.Name {
		return nil, fmt.Errorf("%w: snapshot is for GPU %q, this run uses %q", ErrSnapshotMismatch, v, gpu.Name)
	}
	if v := r.U64(); r.Err() == nil && v != uint64(opts.Kind) {
		return nil, fmt.Errorf("%w: snapshot is a %v run, this run is %v", ErrSnapshotMismatch, Kind(v), opts.Kind)
	}
	if v := r.U64(); r.Err() == nil && v != opts.MaxCycles {
		return nil, fmt.Errorf("%w: snapshot MaxCycles=%d, this run has %d", ErrSnapshotMismatch, v, opts.MaxCycles)
	}
	if v := r.F64(); r.Err() == nil && math.Float64bits(v) != math.Float64bits(opts.LatencyScale) {
		return nil, fmt.Errorf("%w: snapshot LatencyScale=%v, this run has %v", ErrSnapshotMismatch, v, opts.LatencyScale)
	}
	if v := r.U64(); r.Err() == nil && v != opts.ExtraKernelOverhead {
		return nil, fmt.Errorf("%w: snapshot ExtraKernelOverhead=%d, this run has %d", ErrSnapshotMismatch, v, opts.ExtraKernelOverhead)
	}
	if v := r.F64(); r.Err() == nil && math.Float64bits(v) != math.Float64bits(opts.SampleBlocks) {
		return nil, fmt.Errorf("%w: snapshot SampleBlocks=%v, this run has %v", ErrSnapshotMismatch, v, opts.SampleBlocks)
	}
	if v := r.U64(); r.Err() == nil && v != uint64(a.eng.EpochCycles()) {
		return nil, fmt.Errorf("%w: snapshot epoch length %d, this assembly runs %d", ErrSnapshotMismatch, v, a.eng.EpochCycles())
	}
	if err := r.Err(); err != nil {
		return nil, err
	}

	// Run-position section.
	nextKernel := r.U64()
	nkc := r.Count(8)
	kcs := make([]uint64, 0, nkc)
	for i := 0; i < nkc; i++ {
		kcs = append(kcs, r.U64())
	}
	extrapolated := r.U64()
	overhead := r.U64()
	snapSampled := r.Bool()
	if err := r.Err(); err != nil {
		return nil, err
	}
	if nextKernel > uint64(len(app.Kernels)) {
		return nil, fmt.Errorf("%w: snapshot resumes at kernel %d of %d", snap.ErrCorrupt, nextKernel, len(app.Kernels))
	}
	if nextKernel != uint64(nkc) {
		return nil, fmt.Errorf("%w: snapshot resumes at kernel %d but records %d kernel durations", snap.ErrCorrupt, nextKernel, nkc)
	}
	if snapSampled != sampled {
		return nil, fmt.Errorf("%w: snapshot sampled=%v, this run sampled=%v", ErrSnapshotMismatch, snapSampled, sampled)
	}

	// Engine section.
	er := snap.NewReader(r.BytesN())
	if err := r.Err(); err != nil {
		return nil, err
	}
	if err := a.eng.LoadState(er); err != nil {
		return nil, err
	}
	if er.Remaining() != 0 {
		return nil, fmt.Errorf("%w: engine section has %d trailing bytes", snap.ErrCorrupt, er.Remaining())
	}

	// Metrics section. All names come from a matching assembly (identity
	// checked above), so Set restores the exact counter set of the run.
	nm := r.Count(16)
	for i := 0; i < nm; i++ {
		name := r.String()
		val := r.U64()
		if r.Err() != nil {
			break
		}
		a.g.Set(name, val)
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	if r.Remaining() != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes after the snapshot", snap.ErrCorrupt, r.Remaining())
	}
	return &resumeState{
		nextKernel:   int(nextKernel),
		kernelCycles: kcs,
		extrapolated: extrapolated,
		overhead:     overhead,
	}, nil
}

// ParseSnapshot structurally validates a checkpoint stream without an
// assembly: it walks every section and every framing field and returns the
// first structured error (never panics, never over-allocates). It is the
// decoder's fuzzing surface and a cheap integrity check before shipping a
// checkpoint elsewhere.
func ParseSnapshot(data []byte) error {
	r, err := snap.LoadHeader(data)
	if err != nil {
		return err
	}

	// Identity section.
	_ = r.String() // app name
	r.U64()        // kernel count
	_ = r.String() // GPU name
	r.U64()        // kind
	r.U64()        // max cycles
	r.F64()        // latency scale
	r.U64()        // kernel overhead
	r.F64()        // sample fraction
	r.U64()        // epoch length

	// Run-position section.
	next := r.U64()
	nkc := r.Count(8)
	for i := 0; i < nkc; i++ {
		r.U64()
	}
	r.U64() // extrapolated
	r.U64() // overhead
	r.Bool()
	if err := r.Err(); err != nil {
		return err
	}
	if next != uint64(nkc) {
		return fmt.Errorf("%w: resumes at kernel %d but records %d kernel durations", snap.ErrCorrupt, next, nkc)
	}

	// Engine section: scheduler counters plus name/payload module frames.
	er := snap.NewReader(r.BytesN())
	if err := r.Err(); err != nil {
		return err
	}
	for i := 0; i < 5; i++ {
		er.U64()
	}
	nMod := er.Count(16)
	for i := 0; i < nMod; i++ {
		_ = er.String()
		er.BytesN()
		if err := er.Err(); err != nil {
			return fmt.Errorf("module section %d: %w", i, err)
		}
	}
	if err := er.Err(); err != nil {
		return err
	}
	if er.Remaining() != 0 {
		return fmt.Errorf("%w: engine section has %d trailing bytes", snap.ErrCorrupt, er.Remaining())
	}

	// Metrics section.
	nm := r.Count(16)
	for i := 0; i < nm; i++ {
		_ = r.String()
		r.U64()
	}
	if err := r.Err(); err != nil {
		return err
	}
	if r.Remaining() != 0 {
		return fmt.Errorf("%w: %d trailing bytes after the snapshot", snap.ErrCorrupt, r.Remaining())
	}
	return nil
}
