package sim

import (
	"sync"

	"swiftsim/internal/config"
	"swiftsim/internal/reuse"
	"swiftsim/internal/trace"
)

// Swift-Sim-Memory pays a hit-rate extraction pass (reuse.ProfileApp or
// ProfileAppReuseDistance) before simulating. Experiment sweeps and the
// regression corpus run the same application under several Kinds, hit-rate
// sources and thread counts, re-profiling an identical trace each time —
// pure recomputation, since a profile is a deterministic function of the
// trace and the cache geometry. This cache memoizes profiles keyed by the
// application's content hash (trace.ContentHash — traces are immutable
// once built) and the geometry fields the profilers actually read.
// Content keying, rather than pointer keying, lets separately-parsed
// copies of the same trace — two .sgt loads, a daemon request re-reading
// a file — share one profile; pointer identity could never hit across
// them.
//
// The cache is bounded: sampled runs profile freshly-built truncated apps
// whose pointers never repeat, so FIFO eviction keeps those from
// accumulating. Eviction never invalidates a handed-out profile — entries
// are immutable once computed.

// profGeom is the subset of config.GPU the profilers depend on.
type profGeom struct {
	numSMs int
	parts  int
	l1     config.Cache
	l2     config.Cache
	src    HitRateSource
}

type profKey struct {
	app  [32]byte // trace.ContentHash of the application
	geom profGeom
}

// profEntry's once gives single-flight semantics: concurrent sweep workers
// requesting the same key compute the profile exactly once.
type profEntry struct {
	once sync.Once
	prof *reuse.Profile
}

const profCacheCap = 64

var (
	profMu    sync.Mutex
	profCache = make(map[profKey]*profEntry)
	profOrder []profKey // FIFO eviction order
)

// profileCached returns the memoized hit-rate profile for (app, gpu, src),
// computing it on first use.
func profileCached(app *trace.App, gpu config.GPU, src HitRateSource) *reuse.Profile {
	key := profKey{
		app: trace.ContentHash(app),
		geom: profGeom{
			numSMs: gpu.NumSMs,
			parts:  gpu.MemPartitions,
			l1:     gpu.L1,
			l2:     gpu.L2,
			src:    src,
		},
	}
	profMu.Lock()
	e, ok := profCache[key]
	if !ok {
		if len(profOrder) >= profCacheCap {
			oldest := profOrder[0]
			profOrder = profOrder[1:]
			delete(profCache, oldest)
		}
		e = &profEntry{}
		profCache[key] = e
		profOrder = append(profOrder, key)
	}
	profMu.Unlock()
	e.once.Do(func() {
		if src == ReuseDistance {
			e.prof = reuse.ProfileAppReuseDistance(app, gpu)
		} else {
			e.prof = reuse.ProfileApp(app, gpu)
		}
	})
	return e.prof
}
