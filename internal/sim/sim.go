// Package sim assembles complete GPU performance simulators out of the
// Swift-Sim modules, reproducing the three configurations the paper
// evaluates:
//
//   - Detailed: the fully cycle-accurate baseline in the Accel-Sim class —
//     cycle-accurate warp scheduling, ALU pipelines, LD/ST units, sectored
//     L1/L2 caches with MSHRs, a crossbar NoC, and partitioned DRAM, all
//     ticked every cycle.
//   - Swift-Sim-Basic: the ALU pipelines are replaced by the analytical
//     model of §III-D1; the memory hierarchy stays cycle-accurate.
//   - Swift-Sim-Memory: Basic, plus the entire memory path (LD/ST unit,
//     L1, NoC, L2, DRAM) replaced by the Eq. 1 analytical model of
//     §III-D2 driven by reuse-distance/cache-simulation hit rates.
//
// Every configuration shares the identical Block Scheduler and Warp
// Scheduler & Dispatch modules, demonstrating the paper's claim that
// modules behind fixed interfaces can be swapped freely.
package sim

import (
	"context"
	"fmt"
	"io"
	"math"
	"time"

	"swiftsim/internal/analytic"
	"swiftsim/internal/cache"
	"swiftsim/internal/config"
	"swiftsim/internal/dram"
	"swiftsim/internal/engine"
	"swiftsim/internal/mem"
	"swiftsim/internal/metrics"
	"swiftsim/internal/noc"
	"swiftsim/internal/obs"
	"swiftsim/internal/reuse"
	"swiftsim/internal/smcore"
	"swiftsim/internal/trace"
)

// Kind selects a simulator configuration.
type Kind int

const (
	// Detailed is the fully cycle-accurate baseline (Accel-Sim class).
	Detailed Kind = iota
	// Basic is Swift-Sim-Basic: analytical ALUs, cycle-accurate memory.
	Basic
	// Memory is Swift-Sim-Memory: analytical ALUs and analytical memory.
	Memory
	// L2Hybrid keeps the LD/ST units and the L1 cycle-accurate but
	// replaces everything below the L1 (NoC, L2, DRAM) with the
	// analytical Backend — a third hybridization point, at the mem.Port
	// boundary, showing that any subset of modules can be simplified.
	L2Hybrid
)

// String returns the configuration name used in reports.
func (k Kind) String() string {
	switch k {
	case Detailed:
		return "Detailed"
	case Basic:
		return "Swift-Sim-Basic"
	case Memory:
		return "Swift-Sim-Memory"
	case L2Hybrid:
		return "Swift-Sim-L2"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// HitRateSource selects where Swift-Sim-Memory's Eq. 1 rates come from.
type HitRateSource int

const (
	// FunctionalCaches extracts rates with timeless sectored caches
	// (supports every replacement policy).
	FunctionalCaches HitRateSource = iota
	// ReuseDistance extracts rates with LRU stack-distance theory.
	ReuseDistance
)

// Options configures a simulation run.
type Options struct {
	// Kind selects the simulator configuration.
	Kind Kind
	// HitRates selects Swift-Sim-Memory's hit-rate source.
	HitRates HitRateSource
	// MaxCycles bounds simulated time per kernel (0 = default guard of
	// one billion cycles).
	MaxCycles uint64
	// LatencyScale multiplies memory/unit latencies; the golden hardware
	// model uses it (>1) to represent undisclosed real-hardware timing.
	// 0 means 1.0.
	LatencyScale float64
	// ExtraKernelOverhead adds fixed cycles per kernel launch (golden
	// model: driver/launch overhead no performance simulator models).
	ExtraKernelOverhead uint64
	// Scheduler optionally installs a custom warp-scheduling policy
	// (smcore.Picker) per sub-core in place of the configured built-in —
	// the paper's new-scheduler exploration hook. Works with every Kind.
	Scheduler func(smID, sub int) smcore.Picker
	// EngineThreads is the intra-simulation parallelism degree: the number
	// of engine shards SMs (with their private L1s and units) are ticked
	// on concurrently, synchronized at a deterministic per-cycle barrier.
	// 0 or 1 keeps the fully serial engine. The effective shard count is
	// clamped to NumSMs, and the Memory configuration always runs serially
	// (its analytical memory models share order-dependent bandwidth
	// meters — and it has no per-SM cycle-accurate state worth sharding).
	// Results are byte-identical at every value.
	EngineThreads int
	// EpochCycles is the relaxed-sync epoch length. In parallel assemblies
	// (EngineThreads >= 2 and a Kind with sharded state) a value k > 1 lets
	// every shard run k consecutive local cycles between barriers, with
	// L1→interconnect traffic carried through bounded-staleness queues (see
	// boundary.go) so no module ever observes a value from its future.
	// 0 or 1 keeps the exact barrier-per-cycle protocol and byte-identical
	// results; k > 1 trades a bounded, per-preset-quantified metric drift
	// for fewer barriers. For a given (configuration, k) results are still
	// bit-reproducible at every thread count. Serial assemblies (including
	// Memory, which always runs serially) ignore it.
	EpochCycles int
	// SnapshotAt, together with SnapshotTo, checkpoints the run at the
	// first quiescent kernel boundary at or after this cycle (0 = the
	// first boundary); the run then continues normally.
	SnapshotAt uint64
	// SnapshotTo receives the versioned binary checkpoint (internal/snap
	// format). nil disables snapshotting. If no kernel boundary at or
	// after SnapshotAt is quiescent before the run ends, the run fails
	// with a structured error rather than silently writing nothing.
	SnapshotTo io.Writer
	// RestoreFrom, when non-nil, resumes the run from a checkpoint written
	// by SnapshotTo: already-simulated kernels are skipped and all module
	// state (warmed L2, DRAM row state, scheduler counters, metrics) is
	// restored. The checkpoint's identity — app, GPU, Kind, and every
	// timing-relevant option including the effective epoch length — must
	// match this run's; EngineThreads may differ freely.
	RestoreFrom io.Reader
	// SampleBlocks in (0,1) enables legacy prefix block sampling: only the
	// first ceil(fraction×blocks) blocks of each kernel are simulated and
	// the kernel's cycles are extrapolated linearly. 0 or 1 simulates
	// everything. Composes with every Kind, but not with Sampling (which
	// subsumes it; enabling both is an error).
	SampleBlocks float64
	// Sampling enables the sampled execution mode: kernel-launch
	// memoization with analytical replay plus representative-block (CTA)
	// sampling with Eq. 1-style extrapolation — see sample.go. Opt-in and
	// deterministic (bit-reproducible at every thread count for fixed
	// options); accuracy drift is bounded by the per-preset envelopes in
	// internal/regress. Composes with every Kind and with
	// EngineThreads/EpochCycles; incompatible with SampleBlocks and with
	// snapshot/restore (a replayed launch has no simulated state to
	// checkpoint).
	Sampling Sampling
	// Trace is the observability handle (internal/obs). nil (or a tracer
	// below the relevant level) records nothing; with tracing on, the
	// engine, SMs, caches, NoC and DRAM emit spans and counter samples
	// into it. Tracing never changes simulation results or metrics.
	Trace *obs.Tracer
}

// Result is the outcome of simulating one application.
type Result struct {
	// App and GPUName identify the run.
	App     string
	GPUName string
	// Kind is the simulator configuration used.
	Kind Kind
	// Cycles is the predicted total execution time in GPU cycles.
	Cycles uint64
	// Wall is the host wall-clock time of the simulation (including
	// hit-rate extraction for Swift-Sim-Memory, as the paper's §IV
	// methodology counts it).
	Wall time.Duration
	// ProfileWall is the portion of Wall spent extracting hit rates for
	// Swift-Sim-Memory (zero for other Kinds, and near-zero when the
	// profile came from the memoization cache). Reports can subtract it
	// from Wall to separate modeling cost from simulation cost.
	ProfileWall time.Duration
	// Instructions is the number of warp instructions issued.
	Instructions uint64
	// KernelCycles records each kernel's (possibly extrapolated)
	// duration, in launch order.
	KernelCycles []uint64
	// Sampled reports whether block-level sampling was applied.
	Sampled bool
	// TickedCycles and SkippedCycles decompose simulated time into
	// cycles evaluated tick-by-tick vs fast-forwarded.
	TickedCycles  uint64
	SkippedCycles uint64
	// Metrics is the final counter snapshot from the Metrics Gatherer.
	Metrics map[string]uint64
	// Inventory lists every module with its modeling kind.
	Inventory []engine.ModuleInfo
}

// gpuAssembly holds one wired simulator instance.
type gpuAssembly struct {
	eng         *engine.Engine
	g           *metrics.Gatherer
	bs          *smcore.BlockScheduler
	l1s         []*cache.Timed
	sms         []*smcore.SM
	kernelIndex int
	// drain folds the per-shard metric shadows into g (nil when serial).
	// It runs before every probe sample and before the final snapshot, so
	// observed counters are identical to a serial run's.
	drain func()
}

// Run simulates app on gpu under opts and returns the result.
func Run(app *trace.App, gpu config.GPU, opts Options) (*Result, error) {
	return RunCtx(context.Background(), app, gpu, opts)
}

// RunCtx is Run with cooperative cancellation: the context is threaded into
// the simulation engine, which polls it every few thousand scheduler
// iterations. Canceling the context (or passing one with a deadline) stops
// the run promptly with an error wrapping engine.ErrCanceled and ctx.Err().
func RunCtx(ctx context.Context, app *trace.App, gpu config.GPU, opts Options) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := gpu.Validate(); err != nil {
		return nil, err
	}
	if err := app.Validate(); err != nil {
		return nil, err
	}
	// Assembly-time schedulability validation: a kernel whose blocks can
	// never become resident used to surface as an engine deadlock (or a
	// warp-slot panic) deep inside the run; reject it up front instead.
	for ki, k := range app.Kernels {
		if err := smcore.ValidateKernel(gpu.SM, k); err != nil {
			return nil, fmt.Errorf("sim: %s kernel %d: %w", app.Name, ki, err)
		}
	}
	start := time.Now()

	// Block-level sampling: simulate a prefix of each kernel's blocks
	// and extrapolate. The sampled app also drives hit-rate profiling.
	sampleScale := make([]float64, len(app.Kernels))
	for i := range sampleScale {
		sampleScale[i] = 1
	}
	sampled := false
	if opts.SampleBlocks > 0 && opts.SampleBlocks < 1 {
		if opts.Sampling.Enabled {
			return nil, fmt.Errorf("sim: %s: SampleBlocks and Sampling cannot be combined (Sampling subsumes prefix sampling)", app.Name)
		}
		app, sampleScale = sampleApp(app, gpu, opts.SampleBlocks)
		sampled = true
	}

	// Sampled execution mode (sample.go): representative-block subsets per
	// launch plus launch memoization. The representative app also drives
	// hit-rate profiling, so Swift-Sim-Memory's profiling cost shrinks with
	// the sample too.
	var smp *sampler
	if opts.Sampling.Enabled {
		if err := opts.Sampling.validate(); err != nil {
			return nil, fmt.Errorf("sim: %s: %w", app.Name, err)
		}
		if opts.SnapshotTo != nil || opts.RestoreFrom != nil {
			return nil, fmt.Errorf("sim: %s: sampled mode cannot be combined with snapshot/restore: a replayed launch has no simulated state to checkpoint", app.Name)
		}
		smp, app = newSampler(app, gpu, opts.Sampling)
		sampled = true
	}

	var prof *reuse.Profile
	var profileWall time.Duration
	if opts.Kind == Memory {
		// Hit-rate extraction is part of Swift-Sim-Memory's cost; it is
		// memoized across runs of the same trace and geometry.
		pStart := time.Now()
		prof = profileCached(app, gpu, opts.HitRates)
		profileWall = time.Since(pStart)
	}

	a, err := assemble(gpu, opts, prof)
	if err != nil {
		return nil, fmt.Errorf("sim: %s: %w", app.Name, err)
	}
	if smp != nil {
		smp.install(a)
	}
	maxCycles := opts.MaxCycles
	if maxCycles == 0 {
		maxCycles = 1_000_000_000
	}

	tr := opts.Trace
	var ktid int32
	if tr.Enabled(obs.KernelLevel) {
		tr.NameProcess(app.Name)
		ktid = tr.RegisterTrack("kernels")
	}

	var overhead, extrapolated uint64
	kernelCycles := make([]uint64, 0, len(app.Kernels))
	firstKernel := 0
	if opts.RestoreFrom != nil {
		st, err := readSnapshot(a, app, gpu, opts, sampled)
		if err != nil {
			return nil, fmt.Errorf("sim: %s: restore: %w", app.Name, err)
		}
		firstKernel = st.nextKernel
		kernelCycles = append(kernelCycles, st.kernelCycles...)
		extrapolated = st.extrapolated
		overhead = st.overhead
	}
	snapshotPending := opts.SnapshotTo != nil
	for ki := firstKernel; ki < len(app.Kernels); ki++ {
		k := app.Kernels[ki]
		if snapshotPending && a.eng.Cycle() >= opts.SnapshotAt {
			taken, err := writeSnapshot(a, app, gpu, opts, sampled, ki, kernelCycles, extrapolated, overhead)
			if err != nil {
				return nil, fmt.Errorf("sim: %s: snapshot: %w", app.Name, err)
			}
			snapshotPending = !taken
		}
		a.kernelIndex = ki
		if smp != nil {
			if kc, ok := smp.tryReplay(ctx, a, ki, maxCycles); ok {
				// Memoized launch: time advanced analytically, counters
				// gained the recorded delta, nothing was simulated.
				kernelCycles = append(kernelCycles, kc)
				extrapolated += kc
				overhead += opts.ExtraKernelOverhead
				if tr.Enabled(obs.KernelLevel) {
					tr.Emit(obs.Event{Name: k.Name, Cat: "kernel-replay", Ph: obs.PhaseSpan,
						Ts: a.eng.Cycle() - kc, Dur: kc, Tid: ktid,
						Arg1Name: "blocks", Arg1: uint64(len(k.Blocks)),
						Arg2Name: "index", Arg2: uint64(ki)})
				}
				continue
			}
			smp.beginLaunch(a, ki)
		}
		// Kernel-boundary L1 invalidation (non-coherent GPU L1s are
		// flushed between kernels); the L2 persists.
		for _, l1 := range a.l1s {
			l1.Invalidate()
		}
		kStart := a.eng.Cycle()
		a.bs.LaunchKernel(k)
		// The per-kernel budget is relative to the current cycle; clamp
		// the absolute limit so MaxCycles near math.MaxUint64 cannot wrap
		// into the past and turn the budget into an instant timeout.
		limit := kStart + maxCycles
		if limit < kStart {
			limit = math.MaxUint64
		}
		if _, err := a.eng.RunCtx(ctx, a.bs.KernelDone, limit); err != nil {
			return nil, fmt.Errorf("sim: %s kernel %d (%s): %w", app.Name, ki, k.Name, err)
		}
		if err := a.bs.Err(); err != nil {
			return nil, fmt.Errorf("sim: %s kernel %d (%s): %w", app.Name, ki, k.Name, err)
		}
		kc := extrapolate(a.eng.Cycle()-kStart, sampleScale[ki])
		if smp != nil {
			kc = smp.endLaunch(a, ki, a.eng.Cycle()-kStart)
		}
		kernelCycles = append(kernelCycles, kc)
		extrapolated += kc
		overhead += opts.ExtraKernelOverhead
		if tr.Enabled(obs.KernelLevel) {
			tr.Emit(obs.Event{Name: k.Name, Cat: "kernel", Ph: obs.PhaseSpan,
				Ts: kStart, Dur: a.eng.Cycle() - kStart, Tid: ktid,
				Arg1Name: "blocks", Arg1: uint64(len(k.Blocks)),
				Arg2Name: "index", Arg2: uint64(ki)})
		}
	}
	if snapshotPending {
		// Final boundary: the end of the run. Covers SnapshotAt values in
		// the last kernel and earlier boundaries skipped as non-quiescent.
		if a.eng.Cycle() < opts.SnapshotAt {
			return nil, fmt.Errorf("sim: %s: snapshot at cycle %d never taken: the run ended at cycle %d",
				app.Name, opts.SnapshotAt, a.eng.Cycle())
		}
		taken, err := writeSnapshot(a, app, gpu, opts, sampled, len(app.Kernels), kernelCycles, extrapolated, overhead)
		if err != nil {
			return nil, fmt.Errorf("sim: %s: snapshot: %w", app.Name, err)
		}
		if !taken {
			return nil, fmt.Errorf("sim: %s: no quiescent kernel boundary at or after cycle %d to snapshot",
				app.Name, opts.SnapshotAt)
		}
	}
	if tr.Enabled(obs.ModuleLevel) {
		for _, sm := range a.sms {
			sm.FlushTrace(a.eng.Cycle())
		}
	}

	if a.drain != nil {
		a.drain()
	}
	total := extrapolated + overhead
	a.g.Set("gpu.cycles", total)
	return &Result{
		App:           app.Name,
		GPUName:       gpu.Name,
		Kind:          opts.Kind,
		Cycles:        total,
		Wall:          time.Since(start),
		ProfileWall:   profileWall,
		Instructions:  a.g.Value("sm.issued"),
		KernelCycles:  kernelCycles,
		Sampled:       sampled,
		TickedCycles:  a.eng.TickedCycles(),
		SkippedCycles: a.eng.SkippedCycles(),
		Metrics:       a.g.Snapshot(),
		Inventory:     a.eng.Inventory(),
	}, nil
}

// sampleApp truncates each kernel to a prefix of its blocks and returns
// the per-kernel extrapolation factors. Extrapolation is wave-aware:
// blocks execute in waves of (occupancy × SMs) concurrent blocks, so
// scaling uses wave counts rather than raw block counts, and at least one
// full wave is always simulated.
func sampleApp(app *trace.App, gpu config.GPU, frac float64) (*trace.App, []float64) {
	out := &trace.App{Name: app.Name, Suite: app.Suite}
	scale := make([]float64, len(app.Kernels))
	for i, k := range app.Kernels {
		n := len(k.Blocks)
		waveCap := smcore.BlocksPerSM(gpu.SM, k) * gpu.NumSMs
		if waveCap < 1 {
			waveCap = 1
		}
		keep := int(float64(n)*frac + 0.5)
		if keep < waveCap {
			keep = waveCap // always simulate a full wave
		}
		if keep > n {
			keep = n
		}
		waves := func(blocks int) float64 {
			return float64((blocks + waveCap - 1) / waveCap)
		}
		sk := &trace.Kernel{
			Name:              k.Name,
			Grid:              trace.Dim3{X: keep, Y: 1, Z: 1},
			Block:             k.Block,
			RegsPerThread:     k.RegsPerThread,
			SharedMemPerBlock: k.SharedMemPerBlock,
			Blocks:            k.Blocks[:keep],
		}
		out.Kernels = append(out.Kernels, sk)
		scale[i] = waves(n) / waves(keep)
	}
	return out, scale
}

// extrapolate scales a sampled kernel's raw cycle count by its wave-based
// extrapolation factor, rounding half-up. Truncating toward zero here
// systematically under-predicted sampled runs by up to one cycle per
// kernel times the scale's fractional part.
func extrapolate(raw uint64, scale float64) uint64 {
	return uint64(float64(raw)*scale + 0.5)
}

// scaleLat applies the golden model's latency scale.
func scaleLat(l int, scale float64) int {
	if scale <= 0 {
		return l
	}
	v := int(float64(l) * scale)
	if v < 1 {
		v = 1
	}
	return v
}

// assemble wires one simulator instance per opts.Kind. Unsatisfiable unit
// or warp-slot configurations are reported as errors here, at assembly
// time, rather than as panics mid-simulation.
func assemble(gpu config.GPU, opts Options, prof *reuse.Profile) (*gpuAssembly, error) {
	eng := engine.New()
	g := metrics.New()
	a := &gpuAssembly{eng: eng, g: g}
	eng.SetTracer(opts.Trace)
	traceModule := opts.Trace.Enabled(obs.ModuleLevel)

	// Intra-simulation parallelism: SMs (and their private L1s/units) are
	// distributed over nShards engine shards; the shared modules (block
	// scheduler, NoC, L2, DRAM) stay serial. The Memory configuration has
	// no shardable cycle-accurate state (and its analytical models share
	// order-dependent bandwidth meters), so it always runs serially.
	nShards := opts.EngineThreads
	if nShards > gpu.NumSMs {
		nShards = gpu.NumSMs
	}
	if nShards < 2 || opts.Kind == Memory {
		nShards = 1
	}
	shardOf := func(smID int) int { return smID % nShards }
	var shadows []*metrics.Gatherer
	ctxFor := func(smID int) engine.Context { return eng }
	gFor := func(smID int) *metrics.Gatherer { return g }
	if nShards > 1 {
		eng.SetParallel(nShards)
		shadows = make([]*metrics.Gatherer, nShards)
		for s := range shadows {
			shadows[s] = metrics.New()
		}
		ctxFor = func(smID int) engine.Context { return eng.ShardContext(shardOf(smID)) }
		gFor = func(smID int) *metrics.Gatherer { return shadows[shardOf(smID)] }
		a.drain = func() {
			for _, s := range shadows {
				g.Absorb(s)
			}
		}
		eng.SetPreSample(a.drain)
	}

	// Relaxed-sync epochs engage only in parallel assemblies; an epoch
	// boundary (boundary.go) then carries each L1's downstream traffic,
	// because PreTick drains run inside the concurrent shard pass instead
	// of a serial pre-phase. Serial assemblies silently run exact — the
	// CLIs reject that combination up front (cliutil.ValidateModes).
	epochK := opts.EpochCycles
	if epochK < 1 || nShards < 2 {
		epochK = 1
	}
	var boundary *epochBoundary
	if epochK > 1 {
		eng.SetEpoch(epochK)
	}

	scale := opts.LatencyScale
	smCfg := gpu.SM
	if scale > 0 {
		smCfg.IntLatency = scaleLat(smCfg.IntLatency, scale)
		smCfg.SPLatency = scaleLat(smCfg.SPLatency, scale)
		smCfg.DPLatency = scaleLat(smCfg.DPLatency, scale)
		smCfg.SFULatency = scaleLat(smCfg.SFULatency, scale)
		smCfg.SharedMemLatency = scaleLat(smCfg.SharedMemLatency, scale)
	}

	// Memory hierarchy (all configurations except Memory, which models
	// the entire path analytically): one L1 per SM in front of either
	// the cycle-accurate NoC/L2/DRAM or the analytical Backend.
	var l1For func(smID int) mem.Port
	if opts.Kind == L2Hybrid {
		backend := analytic.NewBackend("membackend", eng, gpu, g)
		eng.AddModule(backend)
		l1cfg := gpu.L1
		l1cfg.HitLatency = scaleLat(l1cfg.HitLatency, scale)
		if epochK > 1 {
			boundary = newEpochBoundary("epochq", backend, g)
		}
		l1s := make([]*cache.Timed, gpu.NumSMs)
		for i := range l1s {
			var down mem.Port = backend
			if boundary != nil {
				down = boundary.port(i, ctxFor(i))
			}
			l1s[i] = cache.NewTimed("l1", l1cfg, mem.LevelL1, ctxFor(i), down, gFor(i))
			l1s[i].SetTracer(opts.Trace)
		}
		a.l1s = l1s
		l1For = func(smID int) mem.Port { return l1s[smID] }
		if traceModule {
			l1w := metrics.NewWindow(g.Counter("l1.hit"), g.Counter("l1.miss"))
			eng.AddProbe("l1_hit_permille", l1w.DeltaPermille)
		}
		defer func() {
			for i, l1 := range l1s {
				if nShards > 1 {
					eng.RegisterSharded(l1, shardOf(i))
				} else {
					eng.Register(l1)
				}
			}
			if boundary != nil {
				eng.Register(boundary)
			}
		}()
	} else if opts.Kind != Memory {
		l2cfg := gpu.L2
		l2cfg.HitLatency = scaleLat(l2cfg.HitLatency, scale)
		dramLat := scaleLat(gpu.DRAMLatency, scale)

		targets := make([]mem.Port, gpu.MemPartitions)
		var l2s []*cache.Timed
		var drams []*dram.Partition
		for p := 0; p < gpu.MemPartitions; p++ {
			dp := dram.New("dram", eng, gpu.DRAMBanksPerPartition, dramLat, gpu.DRAMRowHitLatency, g)
			l2 := cache.NewTimed("l2", l2cfg, mem.LevelL2, eng, dp, g)
			dp.SetTracer(opts.Trace)
			l2.SetTracer(opts.Trace)
			drams = append(drams, dp)
			l2s = append(l2s, l2)
			targets[p] = l2
		}
		lineBytes := uint64(gpu.L2.LineBytes)
		parts := uint64(gpu.MemPartitions)
		// XOR-hashed slice interleaving, as on real GPUs and Accel-Sim:
		// plain modulo would send power-of-two strides to one partition
		// (partition camping) and serialize the whole memory system.
		mapAddr := func(addr uint64) int {
			line := addr / lineBytes
			line ^= line >> 7
			line ^= line >> 13
			return int(line % parts)
		}
		var interconnect interface {
			mem.Port
			engine.Ticker
			SetTracer(*obs.Tracer)
			Occupancy() int
		}
		if gpu.NoCTopology == "ring" {
			// NoCLatency is the crossbar's end-to-end traversal; a
			// ring pays per hop, so the per-hop cost is derived from
			// it (≈2 cycles per hop for the default 12).
			hop := scaleLat(gpu.NoCLatency, scale) / 6
			if hop < 1 {
				hop = 1
			}
			interconnect = noc.NewRing("noc", eng, gpu.NumSMs, targets, mapAddr,
				uint64(hop), 2*gpu.MemPartitions, g)
		} else {
			// Per-destination throughput in sector-sized messages. Custom
			// configs can make the quotient zero (flit narrower than a
			// sector); clamp to 1 so the crossbar still drains. Validate()
			// rejects non-positive NoCFlitBytes, but assemblies built from
			// hand-rolled config.GPU values skip validation.
			flitsPerSector := gpu.NoCFlitBytes / gpu.L1.SectorBytes
			if flitsPerSector < 1 {
				flitsPerSector = 1
			}
			interconnect = noc.NewCrossbar("noc", eng, targets, mapAddr,
				uint64(scaleLat(gpu.NoCLatency, scale)), flitsPerSector, g)
		}

		interconnect.SetTracer(opts.Trace)

		l1cfg := gpu.L1
		l1cfg.HitLatency = scaleLat(l1cfg.HitLatency, scale)
		if epochK > 1 {
			boundary = newEpochBoundary("epochq", interconnect, g)
		}
		l1s := make([]*cache.Timed, gpu.NumSMs)
		for i := range l1s {
			var down mem.Port = interconnect
			if boundary != nil {
				down = boundary.port(i, ctxFor(i))
			}
			l1s[i] = cache.NewTimed("l1", l1cfg, mem.LevelL1, ctxFor(i), down, gFor(i))
			l1s[i].SetTracer(opts.Trace)
		}
		a.l1s = l1s
		l1For = func(smID int) mem.Port { return l1s[smID] }

		if traceModule {
			l1w := metrics.NewWindow(g.Counter("l1.hit"), g.Counter("l1.miss"))
			l2w := metrics.NewWindow(g.Counter("l2.hit"), g.Counter("l2.miss"))
			eng.AddProbe("l1_hit_permille", l1w.DeltaPermille)
			eng.AddProbe("l2_hit_permille", l2w.DeltaPermille)
			eng.AddProbe("noc_occupancy", func() uint64 { return uint64(interconnect.Occupancy()) })
			eng.AddProbe("dram_queue", func() uint64 {
				n := 0
				for _, dp := range drams {
					n += dp.QueueDepth()
				}
				return uint64(n)
			})
		}

		// Build SMs below, then register memory modules after them so
		// issue happens before same-cycle memory processing. The sharded
		// entries (SMs, then L1s) form a contiguous registration range;
		// the shared interconnect/L2/DRAM stay serial after it.
		defer func() {
			for i, l1 := range l1s {
				if nShards > 1 {
					eng.RegisterSharded(l1, shardOf(i))
				} else {
					eng.Register(l1)
				}
			}
			// The boundary ticks after the L1s and before the NoC, so
			// released traffic enters the interconnect the same cycle it
			// would have in exact mode's serial drain pre-phase.
			if boundary != nil {
				eng.Register(boundary)
			}
			eng.Register(interconnect)
			for _, l2 := range l2s {
				eng.Register(l2)
			}
			for _, dp := range drams {
				eng.Register(dp)
			}
		}()
	}

	// Execution units per configuration. In parallel mode each shard gets
	// its own provider instance bound to its shard context and metric
	// shadow; an SM's shard assignment is fixed, so intra-SM unit sharing
	// (the DP:0.5x pairs) is unaffected by the delegation.
	var units smcore.UnitSet
	switch opts.Kind {
	case Detailed:
		if nShards > 1 {
			sets := make([]smcore.UnitSet, nShards)
			for s := range sets {
				sets[s] = smcore.NewCycleAccurateUnits(smCfg, eng.ShardContext(s), shadows[s], gpu.L1.SectorBytes, l1For)
			}
			units = smcore.UnitSet{
				ALU: func(smID, sub int, class trace.OpClass) smcore.Unit {
					return sets[shardOf(smID)].ALU(smID, sub, class)
				},
				LDST: func(smID, sub int) smcore.Unit {
					return sets[shardOf(smID)].LDST(smID, sub)
				},
				ICache: func(smID, sub int) *smcore.ICache {
					return sets[shardOf(smID)].ICache(smID, sub)
				},
				ModelFrontEnd: true,
			}
		} else {
			units = smcore.NewCycleAccurateUnits(smCfg, eng, g, gpu.L1.SectorBytes, l1For)
		}
	case Basic, L2Hybrid:
		if nShards > 1 {
			alus := make([]func(smID, sub int, class trace.OpClass) smcore.Unit, nShards)
			ldsts := make([]func(smID, sub int) smcore.Unit, nShards)
			for s := range alus {
				alus[s] = analyticalALUs(smCfg, eng, eng.ShardContext(s), shadows[s])
				ldsts[s] = smcore.NewCycleAccurateUnits(smCfg, eng.ShardContext(s), shadows[s], gpu.L1.SectorBytes, l1For).LDST
			}
			units = smcore.UnitSet{
				ALU: func(smID, sub int, class trace.OpClass) smcore.Unit {
					return alus[shardOf(smID)](smID, sub, class)
				},
				LDST: func(smID, sub int) smcore.Unit {
					return ldsts[shardOf(smID)](smID, sub)
				},
			}
		} else {
			units = smcore.UnitSet{
				ALU:  analyticalALUs(smCfg, eng, eng, g),
				LDST: smcore.NewCycleAccurateUnits(smCfg, eng, g, gpu.L1.SectorBytes, l1For).LDST,
			}
		}
	case Memory:
		// Eq. 1's level latencies are end-to-end from the core: an L2
		// hit pays the L1 lookup, the NoC round trip and the L2 access;
		// a DRAM access additionally pays the DRAM latency. The DRAM
		// channel meter is rated from the detailed model's bank
		// occupancy (≈16 cycles per sector across banks×partitions);
		// each SM also has an L1-port meter at the banked L1's rate.
		l1Hit := scaleLat(gpu.L1.HitLatency, scale)
		l2End := l1Hit + 2*scaleLat(gpu.NoCLatency, scale) + scaleLat(gpu.L2.HitLatency, scale)
		dramEnd := l2End + scaleLat(gpu.DRAMLatency, scale)
		dramRate := 24.0 / float64(gpu.DRAMBanksPerPartition*gpu.MemPartitions)
		meter := analytic.NewBandwidthMeterRate(dramRate)
		nocMeter := analytic.NewBandwidthMeterRate(1 / float64(gpu.MemPartitions))
		l1Meters := make(map[int]*analytic.BandwidthMeter)
		params := analytic.MemModelParams{
			Profile:          prof,
			KernelIndex:      &a.kernelIndex,
			L1Latency:        l1Hit,
			L2Latency:        l2End,
			DRAMLatency:      dramEnd,
			SharedMemLatency: smCfg.SharedMemLatency,
			SectorBytes:      gpu.L1.SectorBytes,
			Lanes:            smCfg.LDSTLanes,
			DRAM:             meter,
			NoC:              nocMeter,
			DivergeCost:      20,
		}
		mshrMeters := make(map[int]*analytic.BandwidthMeter)
		units = smcore.UnitSet{
			ALU: analyticalALUs(smCfg, eng, eng, g),
			LDST: func(smID, sub int) smcore.Unit {
				p := params
				if m, ok := l1Meters[smID]; ok {
					p.L1Port = m
				} else {
					p.L1Port = analytic.NewBandwidthMeterRate(1 / float64(gpu.L1.Banks*gpu.L1.Throughput))
					l1Meters[smID] = p.L1Port
				}
				if m, ok := mshrMeters[smID]; ok {
					p.MSHR = m
				} else {
					p.MSHR = analytic.NewBandwidthMeterRate(1)
					mshrMeters[smID] = p.MSHR
				}
				p.MSHREntries = gpu.L1.MSHREntries
				u := analytic.NewMemModel("mem", eng, p, g)
				eng.AddModule(u)
				return u
			},
		}
	}

	units.Scheduler = opts.Scheduler

	// SMs and the Block Scheduler.
	sms := make([]*smcore.SM, gpu.NumSMs)
	var bs *smcore.BlockScheduler
	onBlockDone := func(sm *smcore.SM) { bs.BlockDone(sm) }
	for i := range sms {
		sm, err := smcore.NewSM(i, smCfg, ctxFor(i), units, gFor(i), onBlockDone)
		if err != nil {
			return nil, err
		}
		sm.SetTracer(opts.Trace)
		sms[i] = sm
	}
	a.sms = sms
	if traceModule {
		// "Active" means holding resident blocks — a memory-stalled SM is
		// still occupied. Busy() would report the idle-aware issue state
		// and zero out the timeline during long stalls.
		eng.AddProbe("active_sms", func() uint64 {
			n := 0
			for _, sm := range sms {
				if sm.ResidentBlocks() > 0 {
					n++
				}
			}
			return uint64(n)
		})
	}
	bs = smcore.NewBlockScheduler(sms, g)
	a.bs = bs
	eng.Register(bs)
	for i, sm := range sms {
		if nShards > 1 {
			eng.RegisterSharded(sm, shardOf(i))
		} else {
			eng.Register(sm)
		}
	}
	return a, nil
}

// analyticalALUs returns the ALU provider of the hybrid configurations:
// one ALUModel per sub-core per class, with DP shared per sub-core pair
// when the configuration is "DP:0.5x" — identical structure to the
// cycle-accurate provider, different modeling. ctx is the engine context
// the models schedule completions through (a shard context in parallel
// assemblies); eng is only used for the module inventory.
func analyticalALUs(cfg config.SM, eng *engine.Engine, ctx engine.Context, g *metrics.Gatherer) func(smID, sub int, class trace.OpClass) smcore.Unit {
	type dpKey struct{ sm, pair int }
	sharedDP := make(map[dpKey]*analytic.ALUModel)
	mk := func(name string, lat, lanes int) *analytic.ALUModel {
		u := analytic.NewALUModel(name, ctx, lat, cfg.IssueInterval(lanes), g)
		eng.AddModule(u)
		return u
	}
	return func(smID, sub int, class trace.OpClass) smcore.Unit {
		switch class {
		case trace.OpInt:
			return mk("alu.INT", cfg.IntLatency, cfg.IntLanes)
		case trace.OpSP:
			return mk("alu.SP", cfg.SPLatency, cfg.SPLanes)
		case trace.OpSFU:
			return mk("alu.SFU", cfg.SFULatency, cfg.SFULanes)
		default: // OpDP
			if !cfg.DPLanesHalf {
				return mk("alu.DP", cfg.DPLatency, cfg.DPLanes)
			}
			key := dpKey{smID, sub / 2}
			if u, ok := sharedDP[key]; ok {
				return u
			}
			u := mk("alu.DP", cfg.DPLatency, cfg.DPLanes)
			sharedDP[key] = u
			return u
		}
	}
}
