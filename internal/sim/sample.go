// Sampled execution: kernel-launch memoization + representative-block
// sampling with analytical extrapolation.
//
// The synthetic corpus (like real NVBit traces) is dominated by two kinds
// of redundancy the full simulator pays for every time:
//
//   - Repeated launches. Iterative apps launch the same kernel code over
//     and over (per-step names and base addresses differ; the static
//     instruction streams do not). The first launch of each fingerprint is
//     simulated at full fidelity and its outcome — duration and metric
//     delta — recorded; later launches with the same fingerprint *replay*
//     the record: engine time advances analytically (Engine.AdvanceTime)
//     and the counters gain the recorded delta, with no per-cycle work. A
//     configurable stride re-simulates every Nth repeat to bound drift,
//     and a launch is only replayed at a quiescent boundary (otherwise
//     in-flight work would jump over the advanced interval).
//
//   - Homogeneous blocks within a launch. Only a representative subset of
//     CTAs is simulated — the full first wave (cold caches and launch
//     contention) plus stratified, seeded contiguous tail windows with
//     built-in pressure blocks (smcore.SelectSampleBlocks) — and the
//     remainder is extrapolated through the Eq. 1-style analytical path:
//     the measured per-sampled-block launch/end cycles (which embed the
//     sampled blocks' hit rates, neighbor locality, and contention delays)
//     price the unsimulated blocks' cycles (analytic.ExtrapolateBlocks),
//     and the launch's counter growth is scaled to the full grid
//     (metrics.Gatherer.FoldScaled) so canonical metrics output stays
//     schema-identical.
//
// The launch fingerprint is (static-content hash, previous launch's
// static-content hash). trace.LaunchKey hashes geometry, resources and the
// instruction streams but not names or address values, so per-step
// relaunches match; the previous launch's key is a Markov-1 signature of
// the cache/DRAM state the launch enters with — two launches replay one
// another only when both the code and the predecessor's code agree.
//
// Everything here is deterministic: selection is a pure function of
// (config, kernel, fraction, seed), measured durations fold through
// order-independent integer sums, and replay reuses recorded values — so
// a sampled run is bit-reproducible at every thread count, exactly like
// exact mode. Accuracy is a trade, not a guarantee; the per-preset
// envelopes in internal/regress/testdata/sample bound the drift.
package sim

import (
	"context"
	"fmt"
	"math"

	"swiftsim/internal/analytic"
	"swiftsim/internal/config"
	"swiftsim/internal/smcore"
	"swiftsim/internal/trace"
)

// Sampling configures the sampled execution mode. The zero value (Enabled
// false) simulates everything.
type Sampling struct {
	// Enabled turns sampled execution on.
	Enabled bool
	// BlockFraction is the fraction of each launch's post-first-wave
	// blocks to simulate, in (0,1); 0 means the default 0.125. The first
	// wave is always simulated in full.
	BlockFraction float64
	// ReplayStride re-simulates every Nth occurrence of a repeated launch
	// fingerprint instead of replaying it, bounding replay drift; 0 means
	// the default 8, 1 disables replay entirely (every launch simulates).
	ReplayStride int
	// Seed drives the stratified tail selection. Runs with equal seeds
	// (and options) are bit-identical; different seeds sample different
	// representatives.
	Seed uint64
}

// DefaultBlockFraction and DefaultReplayStride are the effective values of
// the zero fields of an enabled Sampling.
const (
	DefaultBlockFraction = 0.125
	DefaultReplayStride  = 8
)

// Effective returns s with zero fields replaced by the defaults. The
// service cache key and the regress envelopes both use the effective
// values, so "default by zero" and "default spelled out" hit the same
// cache entries and envelopes.
func (s Sampling) Effective() Sampling {
	if !s.Enabled {
		return Sampling{}
	}
	if s.BlockFraction == 0 {
		s.BlockFraction = DefaultBlockFraction
	}
	if s.ReplayStride == 0 {
		s.ReplayStride = DefaultReplayStride
	}
	return s
}

// validate rejects out-of-range sampling parameters.
func (s Sampling) validate() error {
	if s.BlockFraction < 0 || s.BlockFraction >= 1 {
		return fmt.Errorf("sampling block fraction must be in (0,1) (0 = default %v), got %v", DefaultBlockFraction, s.BlockFraction)
	}
	if s.ReplayStride < 0 {
		return fmt.Errorf("sampling replay stride must be non-negative (0 = default %d), got %d", DefaultReplayStride, s.ReplayStride)
	}
	return nil
}

// launchFP is the memoization key of one kernel launch: the launch's
// static-content hash plus its predecessor's (zero for the first launch).
type launchFP struct {
	key  [32]byte
	prev [32]byte
}

// replayRec is the recorded outcome of one fully simulated launch: its
// extrapolated duration and its post-fold counter delta (sorted by name).
// seen counts occurrences of the fingerprint, including the recorded one,
// to drive the re-simulation stride.
type replayRec struct {
	cycles uint64
	names  []string
	vals   []uint64
	seen   int
}

// sampleKernel is the per-kernel sampling plan of one run.
type sampleKernel struct {
	fp        launchFP
	total     int     // blocks in the original launch
	simulated int     // blocks in the sampled launch
	waveCap   int     // concurrent blocks per wave
	factor    float64 // total/simulated counter scale
}

// sampler orchestrates one sampled run.
type sampler struct {
	opts    Sampling
	kernels []sampleKernel
	memo    map[launchFP]*replayRec

	// per-launch measurement state, reset by beginLaunch: per-block
	// (launch, end) cycle pairs, split into first-wave and tail-window
	// populations.
	cur          int // kernel index being simulated
	baseSnap     map[string]uint64
	headL, headE []uint64
	tailL, tailE []uint64
	pending      launchFP // fingerprint to record at endLaunch
}

// newSampler plans the sampled run: every kernel is replaced by its
// representative-block subset and fingerprinted. The returned app is what
// the rest of the run (profiling included) simulates.
func newSampler(app *trace.App, gpu config.GPU, opts Sampling) (*sampler, *trace.App) {
	s := &sampler{
		opts:    opts.Effective(),
		kernels: make([]sampleKernel, len(app.Kernels)),
		memo:    make(map[launchFP]*replayRec),
	}
	out := &trace.App{Name: app.Name, Suite: app.Suite}
	var prev [32]byte
	for i, k := range app.Kernels {
		sel := smcore.SelectSampleBlocks(gpu.SM, k, gpu.NumSMs, s.opts.BlockFraction, s.opts.Seed)
		sk := k
		if len(sel) < len(k.Blocks) {
			blocks := make([]trace.BlockTrace, len(sel))
			for j, bi := range sel {
				blocks[j] = k.Blocks[bi]
			}
			sk = &trace.Kernel{
				Name:              k.Name,
				Grid:              trace.Dim3{X: len(sel), Y: 1, Z: 1},
				Block:             k.Block,
				RegsPerThread:     k.RegsPerThread,
				SharedMemPerBlock: k.SharedMemPerBlock,
				Blocks:            blocks,
			}
		}
		out.Kernels = append(out.Kernels, sk)
		wave := smcore.BlocksPerSM(gpu.SM, k) * gpu.NumSMs
		if wave < 1 {
			wave = 1
		}
		key := trace.LaunchKey(sk)
		s.kernels[i] = sampleKernel{
			fp:        launchFP{key: key, prev: prev},
			total:     len(k.Blocks),
			simulated: len(sel),
			waveCap:   wave,
			factor:    float64(len(k.Blocks)) / float64(len(sel)),
		}
		prev = key
	}
	return s, out
}

// install wires the per-block duration observer into every SM of the
// assembly. Call once, after assemble.
func (s *sampler) install(a *gpuAssembly) {
	for _, sm := range a.sms {
		sm.SetBlockObserver(s.observe)
	}
}

// observe records one finished block's duration, split into first-wave and
// tail populations (block indices are kernel-local indices of the sampled
// launch, whose first waveCap blocks are the first wave). It runs in a
// serial engine phase; see smcore.SM.SetBlockObserver.
func (s *sampler) observe(index int, launch, end uint64) {
	if index < s.kernels[s.cur].waveCap {
		s.headL = append(s.headL, launch)
		s.headE = append(s.headE, end)
		return
	}
	s.tailL = append(s.tailL, launch)
	s.tailE = append(s.tailE, end)
}

// tryReplay consults the memo for kernel ki's fingerprint. On a hit whose
// stride position allows replay, it brings the engine to quiescence (the
// previous kernel's fire-and-forget stores may still be draining through
// the cycle-accurate L2/DRAM; the drain is itself deterministic and short),
// advances time by the recorded duration, adds the recorded counter delta,
// and returns (cycles, true). Otherwise the launch must be simulated (and
// will be recorded by endLaunch). The drained tail is not added to the
// returned duration: in a full run it overlaps the next kernel's execution,
// and the recorded duration was measured from a launch with the same
// overlap.
func (s *sampler) tryReplay(ctx context.Context, a *gpuAssembly, ki int, maxCycles uint64) (uint64, bool) {
	fp := s.kernels[ki].fp
	rec, ok := s.memo[fp]
	if !ok {
		return 0, false
	}
	rec.seen++
	if s.opts.ReplayStride <= 1 || rec.seen%s.opts.ReplayStride == 0 {
		// Stride boundary: refresh the record with a full simulation.
		return 0, false
	}
	if !a.eng.Quiescent() {
		limit := a.eng.Cycle() + maxCycles
		if limit < a.eng.Cycle() {
			limit = math.MaxUint64
		}
		if _, err := a.eng.RunCtx(ctx, a.eng.Quiescent, limit); err != nil {
			// Could not quiesce within budget (or canceled): simulate the
			// launch instead; a real error will resurface there.
			return 0, false
		}
	}
	if err := a.eng.AdvanceTime(rec.cycles); err != nil {
		return 0, false
	}
	for i, n := range rec.names {
		a.g.Counter(n).Add(rec.vals[i])
	}
	return rec.cycles, true
}

// beginLaunch resets the per-launch measurement state and snapshots the
// counters so endLaunch can compute the launch's delta.
func (s *sampler) beginLaunch(a *gpuAssembly, ki int) {
	s.cur = ki
	s.headL, s.headE = s.headL[:0], s.headE[:0]
	s.tailL, s.tailE = s.tailL[:0], s.tailE[:0]
	s.pending = s.kernels[ki].fp
	if a.drain != nil {
		a.drain()
	}
	s.baseSnap = a.g.Snapshot()
}

// endLaunch finishes a simulated (non-replayed) launch: extrapolates the
// unsimulated blocks' cycles from the measured durations, scales the
// launch's counter growth to the full grid, records the outcome under the
// launch fingerprint, and returns the launch's total duration.
func (s *sampler) endLaunch(a *gpuAssembly, ki int, simCycles uint64) uint64 {
	sk := &s.kernels[ki]
	// Tail blocks see steady-state contention and are the better price for
	// the unsimulated remainder; launches at or under two waves have no
	// tail (and nothing to extrapolate anyway).
	lau, end := s.tailL, s.tailE
	if len(lau) == 0 {
		lau, end = s.headL, s.headE
	}
	kc := simCycles + analytic.ExtrapolateBlocks(lau, end, sk.waveCap, sk.total, sk.simulated)

	if a.drain != nil {
		a.drain()
	}
	a.g.FoldScaled(s.baseSnap, sk.factor, func(name string) bool {
		// Per-launch gauges must not scale with block count.
		return name == "gpu.kernels"
	})

	// Record the post-fold delta so a replay reproduces exactly what this
	// launch contributed (including its own gpu.kernels increment).
	snap := a.g.Snapshot()
	rec := &replayRec{cycles: kc, seen: 1}
	for _, n := range a.g.Names() {
		if d := snap[n] - s.baseSnap[n]; d != 0 {
			rec.names = append(rec.names, n)
			rec.vals = append(rec.vals, d)
		}
	}
	s.memo[s.pending] = rec
	return kc
}
