package sim

import (
	"bytes"
	"errors"
	"testing"

	"swiftsim/internal/config"
	"swiftsim/internal/trace"
	"swiftsim/internal/workload"
)

// fuzzSeedSnapshot produces one real checkpoint to seed the corpus: a tiny
// Memory-kind run snapshotted at its first kernel boundary.
func fuzzSeedSnapshot(f *testing.F) []byte {
	f.Helper()
	gpu, ok := config.Preset("RTX2080Ti")
	if !ok {
		f.Fatal("missing RTX2080Ti preset")
	}
	app, err := workload.Generate("GEMM", 0.25)
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := Run(app, gpu, Options{Kind: Memory, SnapshotTo: &buf}); err != nil {
		f.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzParseSnapshot drives the checkpoint decoder with arbitrary bytes: it
// must return a structured error or nil, never panic, and never allocate
// proportionally to an attacker-controlled count field. The seed corpus
// covers the interesting prefixes: a real checkpoint, truncations at every
// framing layer, a corrupt magic, and a version from the future.
func FuzzParseSnapshot(f *testing.F) {
	valid := fuzzSeedSnapshot(f)
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte("SSIM"))
	f.Add(valid[:4+4])                           // header only
	f.Add(valid[:len(valid)/2])                  // mid-stream truncation
	f.Add(valid[:len(valid)-1])                  // last byte missing
	f.Add(append(append([]byte{}, valid...), 0)) // trailing garbage

	// Corrupt magic.
	bad := append([]byte{}, valid...)
	bad[0] ^= 0xff
	f.Add(bad)

	// Version skew: bump the format version after the magic.
	skew := append([]byte{}, valid...)
	skew[4] ^= 0xff
	f.Add(skew)

	// Absurd count fields right after the identity section.
	huge := append([]byte{}, valid[:16]...)
	for i := 0; i < 8; i++ {
		huge = append(huge, 0xff)
	}
	f.Add(huge)

	f.Fuzz(func(t *testing.T, data []byte) {
		// Must not panic; errors are the expected outcome for junk.
		_ = ParseSnapshot(data)
	})
}

// TestParseSnapshotErrors pins the decoder's structured-error contract on
// the corpus the fuzzer starts from.
func TestParseSnapshotErrors(t *testing.T) {
	valid := fuzzSeedSnapshotT(t)
	if err := ParseSnapshot(valid); err != nil {
		t.Fatalf("valid checkpoint rejected: %v", err)
	}

	bad := append([]byte{}, valid...)
	bad[0] ^= 0xff
	if err := ParseSnapshot(bad); err == nil {
		t.Error("corrupt magic accepted")
	}

	skew := append([]byte{}, valid...)
	skew[4] ^= 0xff
	if err := ParseSnapshot(skew); err == nil {
		t.Error("version skew accepted")
	}

	for _, cut := range []int{0, 4, 8, 16, len(valid) / 2, len(valid) - 1} {
		if err := ParseSnapshot(valid[:cut]); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}

	long := append(append([]byte{}, valid...), 0xAA)
	if err := ParseSnapshot(long); err == nil {
		t.Error("trailing garbage accepted")
	}
}

func fuzzSeedSnapshotT(t *testing.T) []byte {
	t.Helper()
	gpu, ok := config.Preset("RTX2080Ti")
	if !ok {
		t.Fatal("missing RTX2080Ti preset")
	}
	app, err := workload.Generate("GEMM", 0.25)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := Run(app, gpu, Options{Kind: Memory, SnapshotTo: &buf}); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestRestoreRejectsMismatch pins the identity checks: a checkpoint of one
// run must refuse to restore into a differently configured one with
// ErrSnapshotMismatch, not a crash or silent acceptance.
func TestRestoreRejectsMismatch(t *testing.T) {
	gpu, _ := config.Preset("RTX2080Ti")
	other, _ := config.Preset("RTX3060")
	app, err := workload.Generate("GEMM", 0.25)
	if err != nil {
		t.Fatal(err)
	}
	bfs, err := workload.Generate("BFS", 0.25)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := Run(app, gpu, Options{Kind: Memory, SnapshotTo: &buf}); err != nil {
		t.Fatal(err)
	}
	snapBytes := buf.Bytes()

	cases := []struct {
		label string
		app   *trace.App
		gpu   config.GPU
		opts  Options
	}{
		{"different app", bfs, gpu, Options{Kind: Memory}},
		{"different GPU", app, other, Options{Kind: Memory}},
		{"different kind", app, gpu, Options{Kind: Basic}},
		{"different latency scale", app, gpu, Options{Kind: Memory, LatencyScale: 2}},
		{"different max cycles", app, gpu, Options{Kind: Memory, MaxCycles: 12345}},
	}
	for _, c := range cases {
		c.opts.RestoreFrom = bytes.NewReader(snapBytes)
		if _, err := Run(c.app, c.gpu, c.opts); !errors.Is(err, ErrSnapshotMismatch) {
			t.Errorf("%s: want ErrSnapshotMismatch, got %v", c.label, err)
		}
	}

	// The matching configuration restores cleanly.
	res, err := Run(app, gpu, Options{Kind: Memory, RestoreFrom: bytes.NewReader(snapBytes)})
	if err != nil {
		t.Fatalf("matching restore failed: %v", err)
	}
	if res == nil || res.Cycles == 0 {
		t.Error("matching restore produced an empty result")
	}
}
