package sim

import (
	"context"
	"errors"
	"math"
	"strings"
	"testing"
	"time"

	"swiftsim/internal/config"
	"swiftsim/internal/engine"
	"swiftsim/internal/trace"
	"swiftsim/internal/workload"
)

// smallGPU shrinks the 2080 Ti so integration tests run fast.
func smallGPU() config.GPU {
	g := config.RTX2080Ti()
	g.NumSMs = 8
	g.MemPartitions = 4
	return g
}

func mustApp(t *testing.T, name string, scale float64) *trace.App {
	t.Helper()
	app, err := workload.Generate(name, scale)
	if err != nil {
		t.Fatal(err)
	}
	return app
}

func TestAllKindsCompleteAndAgreeOnWork(t *testing.T) {
	gpu := smallGPU()
	app := mustApp(t, "PATHFINDER", 0.2)
	var results []*Result
	for _, kind := range []Kind{Detailed, Basic, Memory} {
		res, err := Run(app, gpu, Options{Kind: kind})
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if res.Cycles == 0 {
			t.Errorf("%v: zero cycles", kind)
		}
		results = append(results, res)
	}
	// Every configuration must issue exactly the trace's instructions.
	want := uint64(app.Insts())
	for _, r := range results {
		if r.Instructions != want {
			t.Errorf("%v: issued %d instructions, want %d", r.Kind, r.Instructions, want)
		}
	}
}

func TestKindsPredictSimilarCycles(t *testing.T) {
	// The paper's claim: hybrid simplification degrades accuracy only
	// mildly. The three configurations must agree within 2x on total
	// cycles (they usually agree much closer).
	gpu := smallGPU()
	for _, name := range []string{"HOTSPOT", "SM", "BFS"} {
		app := mustApp(t, name, 0.15)
		var cycles [3]uint64
		for i, kind := range []Kind{Detailed, Basic, Memory} {
			res, err := Run(app, gpu, Options{Kind: kind})
			if err != nil {
				t.Fatalf("%s/%v: %v", name, kind, err)
			}
			cycles[i] = res.Cycles
		}
		for i := 1; i < 3; i++ {
			ratio := float64(cycles[i]) / float64(cycles[0])
			if ratio < 0.5 || ratio > 2.0 {
				t.Errorf("%s: %v predicts %d cycles vs Detailed %d (ratio %.2f)",
					name, []Kind{Detailed, Basic, Memory}[i], cycles[i], cycles[0], ratio)
			}
		}
	}
}

func TestMemorySkipsMoreCycles(t *testing.T) {
	// Swift-Sim-Memory must fast-forward far more of simulated time than
	// the Detailed baseline on a memory-bound app — that is where its
	// speedup comes from.
	gpu := smallGPU()
	app := mustApp(t, "SM", 0.15)
	det, err := Run(app, gpu, Options{Kind: Detailed})
	if err != nil {
		t.Fatal(err)
	}
	mem, err := Run(app, gpu, Options{Kind: Memory})
	if err != nil {
		t.Fatal(err)
	}
	detFrac := float64(det.SkippedCycles) / float64(det.TickedCycles+det.SkippedCycles)
	memFrac := float64(mem.SkippedCycles) / float64(mem.TickedCycles+mem.SkippedCycles)
	if memFrac <= detFrac {
		t.Errorf("Memory skipped fraction %.3f not above Detailed %.3f", memFrac, detFrac)
	}
	if mem.TickedCycles >= det.TickedCycles {
		t.Errorf("Memory ticked %d cycles, Detailed %d; hybrid should tick fewer",
			mem.TickedCycles, det.TickedCycles)
	}
}

func TestInventoryReflectsHybridization(t *testing.T) {
	gpu := smallGPU()
	app := mustApp(t, "GAUSSIAN", 0.1)
	countKinds := func(inv []engine.ModuleInfo) (ca, an int) {
		for _, m := range inv {
			if m.Kind == engine.Analytical {
				an++
			} else {
				ca++
			}
		}
		return
	}
	det, err := Run(app, gpu, Options{Kind: Detailed})
	if err != nil {
		t.Fatal(err)
	}
	if _, an := countKinds(det.Inventory); an != 0 {
		t.Errorf("Detailed inventory contains %d analytical modules", an)
	}
	bas, err := Run(app, gpu, Options{Kind: Basic})
	if err != nil {
		t.Fatal(err)
	}
	if _, an := countKinds(bas.Inventory); an == 0 {
		t.Error("Basic inventory contains no analytical modules")
	}
	memr, err := Run(app, gpu, Options{Kind: Memory})
	if err != nil {
		t.Fatal(err)
	}
	_, anBasic := countKinds(bas.Inventory)
	_, anMem := countKinds(memr.Inventory)
	if anMem <= anBasic {
		t.Errorf("Memory (%d analytical) not more hybridized than Basic (%d)", anMem, anBasic)
	}
}

func TestHitRateSources(t *testing.T) {
	gpu := smallGPU()
	app := mustApp(t, "MVT", 0.15)
	a, err := Run(app, gpu, Options{Kind: Memory, HitRates: FunctionalCaches})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(app, gpu, Options{Kind: Memory, HitRates: ReuseDistance})
	if err != nil {
		t.Fatal(err)
	}
	// Different hit-rate sources give different but same-magnitude
	// predictions.
	ratio := float64(a.Cycles) / float64(b.Cycles)
	if ratio < 0.5 || ratio > 2 {
		t.Errorf("hit-rate sources disagree wildly: %d vs %d", a.Cycles, b.Cycles)
	}
}

func TestRunRejectsInvalidInputs(t *testing.T) {
	gpu := smallGPU()
	app := mustApp(t, "LU", 0.1)
	bad := gpu
	bad.NumSMs = 0
	if _, err := Run(app, bad, Options{}); err == nil {
		t.Error("invalid GPU accepted")
	}
	badApp := &trace.App{Name: "x"}
	if _, err := Run(badApp, gpu, Options{}); err == nil {
		t.Error("invalid app accepted")
	}
}

func TestDeterministicCycles(t *testing.T) {
	gpu := smallGPU()
	app := mustApp(t, "SSSP", 0.15)
	for _, kind := range []Kind{Detailed, Basic, Memory} {
		a, err := Run(app, gpu, Options{Kind: kind})
		if err != nil {
			t.Fatal(err)
		}
		b, err := Run(app, gpu, Options{Kind: kind})
		if err != nil {
			t.Fatal(err)
		}
		if a.Cycles != b.Cycles {
			t.Errorf("%v: nondeterministic cycles %d vs %d", kind, a.Cycles, b.Cycles)
		}
	}
}

func TestLatencyScaleIncreasesCycles(t *testing.T) {
	gpu := smallGPU()
	app := mustApp(t, "SRAD", 0.1)
	base, err := Run(app, gpu, Options{Kind: Detailed})
	if err != nil {
		t.Fatal(err)
	}
	scaled, err := Run(app, gpu, Options{Kind: Detailed, LatencyScale: 1.5})
	if err != nil {
		t.Fatal(err)
	}
	if scaled.Cycles <= base.Cycles {
		t.Errorf("scaled run %d cycles not above base %d", scaled.Cycles, base.Cycles)
	}
}

func TestExtraKernelOverhead(t *testing.T) {
	gpu := smallGPU()
	app := mustApp(t, "GRU", 0.1)
	base, err := Run(app, gpu, Options{Kind: Basic})
	if err != nil {
		t.Fatal(err)
	}
	withOv, err := Run(app, gpu, Options{Kind: Basic, ExtraKernelOverhead: 10_000})
	if err != nil {
		t.Fatal(err)
	}
	wantExtra := uint64(len(app.Kernels)) * 10_000
	got := withOv.Cycles - base.Cycles
	if got != wantExtra {
		t.Errorf("overhead delta = %d, want %d", got, wantExtra)
	}
}

func TestKindString(t *testing.T) {
	if Detailed.String() != "Detailed" || Basic.String() != "Swift-Sim-Basic" ||
		Memory.String() != "Swift-Sim-Memory" {
		t.Error("Kind names wrong")
	}
	if Kind(9).String() == "" {
		t.Error("unknown kind must stringify")
	}
}

func TestSchedulerPolicyExploration(t *testing.T) {
	// The paper's §III-D scenario: exploring a new warp scheduler with
	// everything else analytical. All policies must complete and give
	// plausible (nonzero, same-work) results on Swift-Sim-Memory.
	gpu := smallGPU()
	app := mustApp(t, "BACKPROP", 0.15)
	want := uint64(app.Insts())
	cycles := map[config.SchedPolicy]uint64{}
	for _, pol := range []config.SchedPolicy{config.GTO, config.LRR, config.OldestFirst} {
		g := gpu
		g.SM.Scheduler = pol
		res, err := Run(app, g, Options{Kind: Memory})
		if err != nil {
			t.Fatalf("%v: %v", pol, err)
		}
		if res.Instructions != want {
			t.Errorf("%v: issued %d, want %d", pol, res.Instructions, want)
		}
		cycles[pol] = res.Cycles
	}
	t.Logf("scheduler exploration cycles: %v", cycles)
}

func TestNoCTopologyExploration(t *testing.T) {
	// Swapping the interconnect module (crossbar vs ring) is a one-key
	// configuration change; both topologies complete all work, and the
	// ring's longer hop paths cost cycles on NoC-heavy workloads.
	app := mustApp(t, "SM", 0.15)
	xbar := smallGPU()
	ring := smallGPU()
	ring.NoCTopology = "ring"
	rx, err := Run(app, xbar, Options{Kind: Detailed})
	if err != nil {
		t.Fatal(err)
	}
	rr, err := Run(app, ring, Options{Kind: Detailed})
	if err != nil {
		t.Fatal(err)
	}
	if rr.Instructions != rx.Instructions {
		t.Errorf("instruction counts differ: ring %d vs crossbar %d", rr.Instructions, rx.Instructions)
	}
	// The topologies trade fixed traversal (crossbar) against
	// distance-dependent hops (ring): timing must differ, in either
	// direction (small rings beat a 12-cycle crossbar; large ones lose).
	if rr.Cycles == rx.Cycles {
		t.Errorf("ring and crossbar predict identical cycles (%d); topology had no effect", rr.Cycles)
	}
	if rr.Metrics["noc.hops"] == 0 {
		t.Error("ring recorded no hop traffic")
	}
}

func TestBadTopologyRejected(t *testing.T) {
	gpu := smallGPU()
	gpu.NoCTopology = "torus"
	app := mustApp(t, "WC", 0.1)
	if _, err := Run(app, gpu, Options{Kind: Detailed}); err == nil {
		t.Fatal("unknown topology accepted")
	}
}

func TestBlockSampling(t *testing.T) {
	// Sampled simulation of a homogeneous workload extrapolates close to
	// the full run at a fraction of the simulated work.
	// Enough blocks for several waves on the small GPU, so sampling has
	// something to skip.
	gpu := smallGPU()
	app := mustApp(t, "SM", 4)
	full, err := Run(app, gpu, Options{Kind: Basic})
	if err != nil {
		t.Fatal(err)
	}
	sampled, err := Run(app, gpu, Options{Kind: Basic, SampleBlocks: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	if !sampled.Sampled || full.Sampled {
		t.Error("Sampled flags wrong")
	}
	if sampled.Instructions >= full.Instructions {
		t.Errorf("sampling simulated %d instructions, full %d", sampled.Instructions, full.Instructions)
	}
	ratio := float64(sampled.Cycles) / float64(full.Cycles)
	if ratio < 0.7 || ratio > 1.4 {
		t.Errorf("extrapolated %d vs full %d (ratio %.2f) out of tolerance",
			sampled.Cycles, full.Cycles, ratio)
	}
	if len(sampled.KernelCycles) != len(app.Kernels) {
		t.Errorf("KernelCycles has %d entries, want %d", len(sampled.KernelCycles), len(app.Kernels))
	}
}

func TestKernelCyclesSumToTotal(t *testing.T) {
	gpu := smallGPU()
	app := mustApp(t, "GRU", 0.15)
	res, err := Run(app, gpu, Options{Kind: Memory, ExtraKernelOverhead: 100})
	if err != nil {
		t.Fatal(err)
	}
	var sum uint64
	for _, kc := range res.KernelCycles {
		sum += kc
	}
	want := sum + uint64(len(app.Kernels))*100
	if res.Cycles != want {
		t.Errorf("Cycles = %d, want kernel sum + overhead = %d", res.Cycles, want)
	}
}

func TestSamplingFractionOneIsFull(t *testing.T) {
	gpu := smallGPU()
	app := mustApp(t, "MVT", 0.15)
	full, err := Run(app, gpu, Options{Kind: Basic})
	if err != nil {
		t.Fatal(err)
	}
	one, err := Run(app, gpu, Options{Kind: Basic, SampleBlocks: 1})
	if err != nil {
		t.Fatal(err)
	}
	if one.Cycles != full.Cycles || one.Sampled {
		t.Errorf("fraction 1: cycles %d vs %d, sampled=%v", one.Cycles, full.Cycles, one.Sampled)
	}
}

func TestSamplingComposesWithMemoryKind(t *testing.T) {
	gpu := smallGPU()
	app := mustApp(t, "ADI", 0.3)
	res, err := Run(app, gpu, Options{Kind: Memory, SampleBlocks: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles == 0 || !res.Sampled {
		t.Fatalf("sampled Memory run: %+v", res.Cycles)
	}
}

func TestExtrapolateRoundsHalfUp(t *testing.T) {
	// Regression for the sampled-cycle truncation bug: uint64(x*scale)
	// truncates toward zero and under-predicts, e.g. 3 raw cycles at a
	// wave scale of 2/3 gives the float product 1.9999999999999998, which
	// truncation pinned at 1 instead of 2.
	cases := []struct {
		raw   uint64
		scale float64
		want  uint64
	}{
		{3, 2.0 / 3.0, 2},         // 1.999...8 -> truncation bug gave 1
		{1000, 1, 1000},           // identity untouched
		{7, 1.5, 11},              // 10.5 rounds up
		{100, 2.004999, 200},      // 200.4999 rounds down
		{1_000_003, 3, 3_000_009}, // exact products stay exact
	}
	for _, c := range cases {
		if got := extrapolate(c.raw, c.scale); got != c.want {
			t.Errorf("extrapolate(%d, %v) = %d, want %d", c.raw, c.scale, got, c.want)
		}
	}
}

func TestMaxCyclesMaxUint64DoesNotWrap(t *testing.T) {
	// Regression: eng.Cycle()+MaxCycles wrapped for kernels after the
	// first, turning an "unlimited" budget into an instant timeout.
	gpu := smallGPU()
	app := mustApp(t, "GRU", 0.1) // multi-kernel: cycle > 0 at kernel 2
	if len(app.Kernels) < 2 {
		t.Fatal("need a multi-kernel app for the wrap case")
	}
	res, err := Run(app, gpu, Options{Kind: Basic, MaxCycles: math.MaxUint64})
	if err != nil {
		t.Fatalf("MaxCycles=MaxUint64 run failed: %v", err)
	}
	if res.Cycles == 0 {
		t.Error("zero cycles")
	}
}

func TestUnschedulableKernelRejectedAtAssembly(t *testing.T) {
	// A kernel whose single-block register footprint exceeds the SM's
	// register file can never be scheduled. This used to surface as an
	// engine deadlock (or warp-slot panic) deep inside the run; it must
	// now be a clear validation error before simulation starts.
	gpu := smallGPU()
	// Generated traces are memoized and shared; clone before mutating.
	shared := mustApp(t, "BFS", 0.1)
	bad := *shared.Kernels[0]
	bad.RegsPerThread = gpu.SM.Registers // one thread busts the file
	app := &trace.App{Name: shared.Name, Suite: shared.Suite, Kernels: []*trace.Kernel{&bad}}
	_, err := Run(app, gpu, Options{Kind: Basic})
	if err == nil {
		t.Fatal("unschedulable kernel accepted")
	}
	if !strings.Contains(err.Error(), "can never be scheduled") {
		t.Errorf("error does not identify unschedulability: %v", err)
	}
	if !strings.Contains(err.Error(), app.Kernels[0].Name) {
		t.Errorf("error does not identify the kernel: %v", err)
	}
}

func TestRunCtxPreCanceled(t *testing.T) {
	gpu := smallGPU()
	app := mustApp(t, "BFS", 0.1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunCtx(ctx, app, gpu, Options{Kind: Basic})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled in chain", err)
	}
	if !errors.Is(err, engine.ErrCanceled) {
		t.Errorf("err = %v, want engine.ErrCanceled in chain", err)
	}
}

func TestRunCtxDeadline(t *testing.T) {
	gpu := smallGPU()
	app := mustApp(t, "SM", 0.3)
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := RunCtx(ctx, app, gpu, Options{Kind: Detailed})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded in chain", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("cancellation took %v; engine context polling is broken", elapsed)
	}
}

func TestL2HybridConfiguration(t *testing.T) {
	// The fourth hybridization point: cycle-accurate L1 over an
	// analytical below-L1 backend. It must complete all work, sit
	// between Basic and Memory in hybridization, and predict cycles in
	// the same band.
	gpu := smallGPU()
	app := mustApp(t, "SM", 0.15)
	basic, err := Run(app, gpu, Options{Kind: Basic})
	if err != nil {
		t.Fatal(err)
	}
	hyb, err := Run(app, gpu, Options{Kind: L2Hybrid})
	if err != nil {
		t.Fatal(err)
	}
	if hyb.Instructions != basic.Instructions {
		t.Errorf("instructions %d vs %d", hyb.Instructions, basic.Instructions)
	}
	ratio := float64(hyb.Cycles) / float64(basic.Cycles)
	if ratio < 0.5 || ratio > 2 {
		t.Errorf("L2Hybrid %d cycles vs Basic %d (ratio %.2f)", hyb.Cycles, basic.Cycles, ratio)
	}
	// Its inventory has analytical modules (the backend + ALUs) and
	// cycle-accurate L1s.
	an, l1 := 0, 0
	for _, m := range hyb.Inventory {
		if m.Kind == engine.Analytical {
			an++
		}
		if m.Name == "l1" {
			l1++
		}
	}
	if an == 0 || l1 != gpu.NumSMs {
		t.Errorf("inventory: %d analytical, %d l1 modules (want >0, %d)", an, l1, gpu.NumSMs)
	}
	if hyb.Kind.String() != "Swift-Sim-L2" {
		t.Errorf("Kind = %q", hyb.Kind.String())
	}
	// L2 backend counters flow into the metrics.
	if hyb.Metrics["membackend.l2_hit"]+hyb.Metrics["membackend.l2_miss"] == 0 {
		t.Error("backend saw no traffic")
	}
}
