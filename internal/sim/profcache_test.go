package sim

import (
	"testing"

	"swiftsim/internal/trace"
)

// copyApp deep-copies a trace down to the instruction slices, simulating a
// separately-parsed copy of the same .sgt file (distinct pointers, equal
// content).
func copyApp(a *trace.App) *trace.App {
	out := &trace.App{Name: a.Name, Suite: a.Suite}
	for _, k := range a.Kernels {
		nk := &trace.Kernel{
			Name: k.Name, Grid: k.Grid, Block: k.Block,
			RegsPerThread: k.RegsPerThread, SharedMemPerBlock: k.SharedMemPerBlock,
		}
		for _, b := range k.Blocks {
			nb := trace.BlockTrace{}
			for _, w := range b.Warps {
				nw := make(trace.WarpTrace, len(w))
				copy(nw, w)
				for i := range nw {
					nw[i].Addrs = append([]uint64(nil), w[i].Addrs...)
				}
				nb.Warps = append(nb.Warps, nw)
			}
			nk.Blocks = append(nk.Blocks, nb)
		}
		out.Kernels = append(out.Kernels, nk)
	}
	return out
}

// TestProfileCacheHitsAcrossCopies: the profile memoization is keyed by
// trace content, so two separately-built copies of the same application
// share one cache entry (the pointer-keyed scheme could never hit here).
func TestProfileCacheHitsAcrossCopies(t *testing.T) {
	gpu := smallGPU()
	app := mustApp(t, "BFS", 0.1)
	dup := copyApp(app)
	if app == dup {
		t.Fatal("copyApp returned the same pointer")
	}

	profMu.Lock()
	before := len(profCache)
	profMu.Unlock()

	p1 := profileCached(app, gpu, FunctionalCaches)
	p2 := profileCached(dup, gpu, FunctionalCaches)
	if p1 != p2 {
		t.Error("copies of the same trace produced distinct profile instances")
	}

	profMu.Lock()
	after := len(profCache)
	profMu.Unlock()
	if grown := after - before; grown > 1 {
		t.Errorf("profile cache grew by %d entries for two copies of one trace, want at most 1", grown)
	}
}

// TestProfileCacheDistinguishesContent: different traces (and different
// geometries) must not collide.
func TestProfileCacheDistinguishesContent(t *testing.T) {
	gpu := smallGPU()
	a := mustApp(t, "BFS", 0.1)
	b := mustApp(t, "GEMM", 0.1)
	if profileCached(a, gpu, FunctionalCaches) == profileCached(b, gpu, FunctionalCaches) {
		t.Error("distinct applications shared a profile instance")
	}
	other := gpu
	other.L1.Sets *= 2
	if profileCached(a, gpu, FunctionalCaches) == profileCached(a, other, FunctionalCaches) {
		t.Error("distinct cache geometries shared a profile instance")
	}
}
