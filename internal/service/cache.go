package service

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// Cache is the sweep service's persistent result cache: canonical metric
// renderings keyed by the job key of key.go. Values survive process
// restarts — a daemon restarted on the same -cache-dir serves
// yesterday's sweeps from disk.
//
// Since the distributed execution plane, the cache is layered on the
// content-addressed Store (store.go): the value bytes live in the store
// under their content hash and the per-key file (key.ref) holds only
// that hash. The layering buys two things. Results computed by remote
// workers are published into the same store the cache reads, so
// committing a worker's result is a tiny ref write, and every read is
// integrity-checked — a corrupted blob is detected by its hash, evicted
// along with the ref, and the job transparently re-runs instead of
// serving bad bytes.
//
// Lookups have single-flight semantics: the first claimant of a missing
// key owns its computation; concurrent claimants of the same key (the
// same job submitted twice while the first copy is still simulating)
// wait on the owner's flight instead of simulating again. Ownership is
// process-local — two daemons sharing a directory may duplicate work but
// never corrupt it, because refs and blobs are written atomically
// (tmp + rename) and every value for a key is byte-identical by
// construction.
type Cache struct {
	dir   string
	store *Store

	mu      sync.Mutex
	flights map[string]*Flight
	stats   CacheStats
}

// CacheStats counts cache outcomes since process start.
type CacheStats struct {
	// Hits and Misses count claims served from disk vs claims that had
	// to compute. Waits counts claims that joined another claim's
	// in-progress computation.
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
	Waits  uint64 `json:"waits"`
	// Corrupt counts claims whose stored value failed its integrity
	// check; each evicted the entry and recomputed.
	Corrupt uint64 `json:"corrupt"`
}

// Flight is an in-progress computation of one key. The owner resolves it
// with Fulfill or Fail exactly once; joiners block in Wait.
type Flight struct {
	key  string
	done chan struct{}
	val  []byte
	err  error
}

// Wait blocks until the flight's owner resolves it (or ctx is done) and
// returns the computed value.
func (f *Flight) Wait(ctx context.Context) ([]byte, error) {
	select {
	case <-f.done:
		return f.val, f.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// NewCache opens (creating if needed) a cache rooted at dir. The value
// blobs live in the content-addressed store under dir/blobs; BlobStore
// exposes it so the service serves the same store over HTTP.
func NewCache(dir string) (*Cache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("service: cache dir: %w", err)
	}
	store, err := NewStore(filepath.Join(dir, "blobs"))
	if err != nil {
		return nil, err
	}
	return &Cache{dir: dir, store: store, flights: make(map[string]*Flight)}, nil
}

// BlobStore returns the content-addressed store backing the cache's
// values. Workers fetch traces/configs from it and publish results into
// it; the cache commits a published result by writing its ref.
func (c *Cache) BlobStore() *Store { return c.store }

// path maps a key to its ref file (the content hash of its value blob).
func (c *Cache) path(key string) string {
	return filepath.Join(c.dir, key+".ref")
}

// read resolves a key via its ref and the store, with integrity
// verification. A corrupt blob (or a dangling ref) evicts the entry and
// reads as a miss, so the caller recomputes instead of serving bad
// bytes.
func (c *Cache) read(key string) ([]byte, bool) {
	ref, err := os.ReadFile(c.path(key))
	if err != nil {
		return nil, false
	}
	data, err := c.store.Get(string(ref))
	if err != nil {
		// ErrBlobCorrupt already evicted the blob; either way the ref
		// points at nothing servable, so drop it and recompute.
		os.Remove(c.path(key))
		if errors.Is(err, ErrBlobCorrupt) {
			c.mu.Lock()
			c.stats.Corrupt++
			c.mu.Unlock()
		}
		return nil, false
	}
	return data, true
}

// Claim resolves a key one of three ways:
//
//   - disk hit: (val, true, nil) — the caller has the value;
//   - miss, caller owns: (nil, false, flight) — the caller MUST compute
//     the value and resolve the flight with Fulfill or Fail;
//   - miss, someone else owns: (nil, false, flight) where the flight is
//     not owned — distinguish with owner.
//
// The flights map is consulted before disk so a claim arriving between an
// owner's Fulfill and its map cleanup still gets a consistent answer.
func (c *Cache) Claim(key string) (val []byte, hit bool, owner bool, f *Flight) {
	c.mu.Lock()
	if f, ok := c.flights[key]; ok {
		c.stats.Waits++
		c.mu.Unlock()
		return nil, false, false, f
	}
	// Registering the flight before the disk read closes the window where
	// two concurrent claimants both miss; the loser of the map insert
	// above joins instead. A disk hit releases the claim immediately.
	f = &Flight{key: key, done: make(chan struct{})}
	c.flights[key] = f
	c.mu.Unlock()

	if data, ok := c.read(key); ok {
		c.resolve(f, data, nil, &c.stats.Hits)
		return data, true, false, nil
	}
	c.mu.Lock()
	c.stats.Misses++
	c.mu.Unlock()
	return nil, false, true, f
}

// Fulfill persists the owner's computed value and releases every joiner.
// The value reaches joiners even when the disk write fails (the error is
// returned for logging); the next process simply recomputes.
func (c *Cache) Fulfill(f *Flight, val []byte) error {
	err := c.write(f.key, val)
	c.resolve(f, val, nil, nil)
	return err
}

// Fail releases a flight's joiners with the owner's error. Nothing is
// persisted: the next claim of the key retries the computation.
func (c *Cache) Fail(f *Flight, err error) {
	c.resolve(f, nil, err, nil)
}

// resolve publishes a flight's outcome, removes it from the flight table
// and optionally bumps a counter under the same lock.
func (c *Cache) resolve(f *Flight, val []byte, err error, counter *uint64) {
	f.val, f.err = val, err
	c.mu.Lock()
	delete(c.flights, f.key)
	if counter != nil {
		*counter++
	}
	c.mu.Unlock()
	close(f.done)
}

// write stores a value: the bytes go into the content-addressed store
// (idempotent — a worker may have published them already) and the key's
// ref file records their hash. Both writes are atomic renames, so
// readers never observe a torn file even across processes.
func (c *Cache) write(key string, val []byte) error {
	hash, err := c.store.Put(val)
	if err != nil {
		return err
	}
	return c.writeRef(key, hash)
}

// writeRef atomically points key at an already-stored blob.
func (c *Cache) writeRef(key, hash string) error {
	tmp, err := os.CreateTemp(c.dir, key+".tmp")
	if err != nil {
		return err
	}
	if _, err := tmp.WriteString(hash); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), c.path(key))
}

// Stats returns a snapshot of the cache counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}
