package service

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"swiftsim/internal/config"
	"swiftsim/internal/sim"
	"swiftsim/internal/workload"
)

// smallSpec is a fast one-job sweep (memory simulator at a small scale).
func smallSpec() Spec {
	return Spec{Apps: []string{"BFS"}, GPUs: []string{"RTX2080Ti"}, Sims: []string{"memory"}, Scale: 0.1}
}

func newService(t *testing.T, cfg Config) *Service {
	t.Helper()
	if cfg.CacheDir == "" {
		cfg.CacheDir = t.TempDir()
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = s.Close(ctx)
	})
	return s
}

// waitDone follows a sweep's event stream to completion.
func waitDone(t *testing.T, sw *Sweep) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	from := 0
	for {
		evs, done, err := sw.WaitEvents(ctx, from)
		if err != nil {
			t.Fatalf("sweep %s did not finish: %v", sw.ID(), err)
		}
		from += len(evs)
		if done {
			return
		}
	}
}

// TestEndToEndCacheHit is the acceptance scenario: two identical
// submissions, the second served entirely from the persistent cache with
// byte-identical canonical results and a matching hit counter.
func TestEndToEndCacheHit(t *testing.T) {
	s := newService(t, Config{})
	spec := Spec{Apps: []string{"BFS", "SM"}, GPUs: []string{"RTX2080Ti"}, Sims: []string{"memory"}, Scale: 0.1}

	sw1, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, sw1)
	st1 := sw1.Status()
	if st1.Failed != 0 || st1.Ok != 2 {
		t.Fatalf("first sweep: %+v", st1)
	}
	if st1.Cached != 0 {
		t.Fatalf("first sweep claims %d cached jobs on a cold cache", st1.Cached)
	}
	res1, err := sw1.Results()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(res1, []byte("swiftsim-canonical 1")) || !bytes.Contains(res1, []byte("app BFS")) {
		t.Fatalf("results not canonical:\n%s", res1)
	}

	sw2, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, sw2)
	st2 := sw2.Status()
	if st2.Cached != st2.Total || st2.Ok != 2 {
		t.Fatalf("second sweep not fully cached: %+v", st2)
	}
	res2, err := sw2.Results()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res1, res2) {
		t.Error("cached results are not byte-identical to the first run")
	}
	if stats := s.Stats(); stats.Cache.Hits < 2 || stats.Cache.Misses != 2 {
		t.Errorf("cache stats = %+v, want >=2 hits and exactly 2 misses", stats.Cache)
	}
}

// TestCacheSurvivesRestart: a new Service on the same cache directory
// serves a previous instance's results without simulating.
func TestCacheSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	s1 := newService(t, Config{CacheDir: dir})
	sw1, err := s1.Submit(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, sw1)
	res1, err := sw1.Results()
	if err != nil || len(res1) == 0 {
		t.Fatalf("first run results: %v (%d bytes)", err, len(res1))
	}

	s2 := newService(t, Config{CacheDir: dir})
	sw2, err := s2.Submit(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, sw2)
	st := sw2.Status()
	if st.Cached != st.Total {
		t.Fatalf("restarted service did not hit the disk cache: %+v", st)
	}
	res2, _ := sw2.Results()
	if !bytes.Equal(res1, res2) {
		t.Error("results differ across a restart")
	}
}

// TestShedding is the acceptance scenario for admission control: with the
// single worker held on an in-flight sweep, a submission exceeding the
// job budget is rejected immediately, a fitting one is queued, and after
// the in-flight work completes the shed submission is accepted.
func TestShedding(t *testing.T) {
	s := newService(t, Config{QueueDepth: 2, Workers: 1})
	release := make(chan struct{})
	s.execHook = func(*Sweep) { <-release }

	swA, err := s.Submit(smallSpec()) // 1 job, occupies the worker
	if err != nil {
		t.Fatal(err)
	}
	big := smallSpec()
	big.Apps = []string{"BFS", "SM"} // 2 jobs: 1 pending + 2 > depth 2
	if _, err := s.Submit(big); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("oversized submission: err = %v, want ErrQueueFull", err)
	}
	small2 := smallSpec()
	small2.Apps = []string{"SM"} // 1 job: fits exactly
	swC, err := s.Submit(small2)
	if err != nil {
		t.Fatalf("fitting submission rejected: %v", err)
	}
	if stats := s.Stats(); stats.Shed != 1 || stats.PendingJobs != 2 {
		t.Errorf("stats = %+v, want 1 shed / 2 pending", stats)
	}

	// The hook stays installed: once release is closed it returns
	// immediately (resetting it here would race with the worker's read).
	close(release)
	waitDone(t, swA)
	waitDone(t, swC)
	for _, sw := range []*Sweep{swA, swC} {
		if st := sw.Status(); st.Failed != 0 {
			t.Errorf("sweep %s failed under shedding pressure: %+v", sw.ID(), st)
		}
	}

	swB, err := s.Submit(big)
	if err != nil {
		t.Fatalf("resubmission after drain rejected: %v", err)
	}
	waitDone(t, swB)
	if st := swB.Status(); st.Failed != 0 {
		t.Errorf("resubmitted sweep failed: %+v", st)
	}
}

// TestGracefulDrain: Close rejects new work, finishes what was queued,
// and returns nil when everything drained in time.
func TestGracefulDrain(t *testing.T) {
	cfg := Config{CacheDir: t.TempDir(), Workers: 1}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sw, err := s.Submit(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := s.Close(ctx); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if st := sw.Status(); !st.Done || st.Ok != 1 {
		t.Errorf("queued sweep not drained: %+v", st)
	}
	if _, err := s.Submit(smallSpec()); !errors.Is(err, ErrDraining) {
		t.Errorf("post-Close submission: err = %v, want ErrDraining", err)
	}
}

// TestHardDrain: when the drain deadline expires, in-flight work is
// hard-canceled — the sweep still completes (every job reaches a terminal
// state) and Close reports the deadline.
func TestHardDrain(t *testing.T) {
	cfg := Config{CacheDir: t.TempDir(), Workers: 1}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.execHook = func(*Sweep) { <-s.ctx.Done() } // wedge until hard cancel
	sw, err := s.Submit(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := s.Close(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Close = %v, want DeadlineExceeded", err)
	}
	st := sw.Status()
	if !st.Done {
		t.Fatal("hard-canceled sweep never completed")
	}
	for _, j := range st.Jobs {
		if j.State != StateSkipped && j.State != StateFailed {
			t.Errorf("job %s/%s state = %s, want skipped or failed", j.App, j.Sim, j.State)
		}
	}
}

// TestFailFastSkippedJobs is the race-detector satellite: a FailFast
// sweep with an unmeetable per-job deadline drives OnStart/OnProgress and
// skipped jobs through the service queue. Every job must reach exactly
// one terminal state and never-started jobs must be reported skipped.
func TestFailFastSkippedJobs(t *testing.T) {
	s := newService(t, Config{Threads: 2})
	spec := Spec{
		Apps:  []string{"BFS", "SM", "GEMM", "LU"},
		GPUs:  []string{"RTX2080Ti", "RTX3060", "RTX3090"},
		Sims:  []string{"memory"},
		Scale: 0.1, JobTimeout: "1ns", FailFast: true,
	}
	sw, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, sw)
	st := sw.Status()
	if st.Total != 12 {
		t.Fatalf("total = %d, want 12", st.Total)
	}
	if st.Ok != 0 || st.Failed != 12 {
		t.Fatalf("ok=%d failed=%d, want 0/12 under a 1ns deadline", st.Ok, st.Failed)
	}

	terminal := map[int]int{}
	skipped := 0
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	evs, done, err := sw.WaitEvents(ctx, 0)
	if err != nil || !done {
		t.Fatalf("WaitEvents: done=%v err=%v", done, err)
	}
	for _, ev := range evs {
		if ev.Type != "job" || ev.State == StateRunning {
			continue
		}
		terminal[ev.Job]++
		if ev.State == StateSkipped {
			skipped++
			if !strings.Contains(ev.Error, "job skipped") {
				t.Errorf("skipped job %d does not carry ErrJobSkipped: %q", ev.Job, ev.Error)
			}
		}
	}
	if len(terminal) != 12 {
		t.Errorf("terminal events for %d jobs, want 12", len(terminal))
	}
	for j, n := range terminal {
		if n != 1 {
			t.Errorf("job %d reached %d terminal states, want exactly 1", j, n)
		}
	}
	// Two workers at most were in flight when the first failure hit, so
	// at least 10 of the 12 jobs must have been skipped by FailFast.
	if skipped == 0 {
		t.Error("FailFast sweep skipped no jobs")
	}
	// Nothing may be cached from a sweep where every job failed.
	if stats := s.Stats(); stats.Cache.Hits != 0 {
		t.Errorf("failed jobs produced cache hits: %+v", stats.Cache)
	}
}

// TestConcurrentIdenticalSweeps: many identical submissions racing
// through multiple workers stay race-clean and all produce identical
// results; at most one simulation per distinct job runs (the rest hit
// disk or join the in-progress flight).
func TestConcurrentIdenticalSweeps(t *testing.T) {
	s := newService(t, Config{Workers: 4, QueueDepth: 16})
	const n = 4
	sweeps := make([]*Sweep, n)
	for i := range sweeps {
		sw, err := s.Submit(smallSpec())
		if err != nil {
			t.Fatal(err)
		}
		sweeps[i] = sw
	}
	var want []byte
	for i, sw := range sweeps {
		waitDone(t, sw)
		if st := sw.Status(); st.Failed != 0 {
			t.Fatalf("sweep %d failed: %+v", i, st)
		}
		res, err := sw.Results()
		if err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = res
		} else if !bytes.Equal(want, res) {
			t.Errorf("sweep %d results differ", i)
		}
	}
	if stats := s.Stats(); stats.Cache.Misses != 1 {
		t.Errorf("%d simulations ran for 4 identical single-job sweeps, want 1", stats.Cache.Misses)
	}
}

// TestSubmitValidation: bad specs are rejected before admission.
func TestSubmitValidation(t *testing.T) {
	s := newService(t, Config{})
	cases := []struct {
		name string
		spec Spec
		want string
	}{
		{"unknown app", Spec{Apps: []string{"NOPE"}}, "NOPE"},
		{"unknown gpu", Spec{GPUs: []string{"GTX9000"}}, "GTX9000"},
		{"unknown sim", Spec{Sims: []string{"quantum"}}, "quantum"},
		{"bad timeout", Spec{JobTimeout: "banana"}, "job_timeout"},
		{"negative timeout", Spec{JobTimeout: "-1s"}, "negative"},
		{"negative scale", Spec{Scale: -1}, "scale"},
		{"negative engine_threads", Spec{EngineThreads: -1}, "engine_threads"},
		{"negative epoch_cycles", Spec{EpochCycles: -1}, "epoch_cycles"},
		{"relaxed epoch on serial engine", Spec{EpochCycles: 8}, "engine_threads"},
		{"relaxed epoch with one thread", Spec{EpochCycles: 8, EngineThreads: 1}, "engine_threads"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := s.Submit(tc.spec)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("Submit = %v, want error mentioning %q", err, tc.want)
			}
		})
	}
}

// TestMaxJobTimeoutClamp: the service caps (and defaults) per-job budgets.
func TestMaxJobTimeoutClamp(t *testing.T) {
	s := newService(t, Config{MaxJobTimeout: time.Minute})
	spec := smallSpec()
	spec.JobTimeout = "2h"
	_, timeout, _, err := s.resolve(spec)
	if err != nil {
		t.Fatal(err)
	}
	if timeout != time.Minute {
		t.Errorf("timeout = %v, want clamped to 1m", timeout)
	}
	spec.JobTimeout = ""
	if _, timeout, _, _ = s.resolve(spec); timeout != time.Minute {
		t.Errorf("default timeout = %v, want 1m", timeout)
	}
	spec.JobTimeout = "1s"
	if _, timeout, _, _ = s.resolve(spec); timeout != time.Second {
		t.Errorf("within-cap timeout = %v, want 1s", timeout)
	}
}

// TestJobKeyDiscriminates: the cache key separates everything that can
// change results, and unifies content-identical trace copies.
func TestJobKeyDiscriminates(t *testing.T) {
	gpu, _ := config.Preset("RTX2080Ti")
	gpu2, _ := config.Preset("RTX3060")
	a1, err := workload.Generate("BFS", 0.1)
	if err != nil {
		t.Fatal(err)
	}
	a2, _ := workload.Generate("SM", 0.1)
	a3, _ := workload.Generate("BFS", 0.2)
	base := jobKey(a1, gpu, sim.Options{Kind: sim.Memory})
	if jobKey(a1, gpu, sim.Options{Kind: sim.Memory}) != base {
		t.Error("identical jobs got different keys")
	}
	diff := map[string]string{
		"app":   jobKey(a2, gpu, sim.Options{Kind: sim.Memory}),
		"scale": jobKey(a3, gpu, sim.Options{Kind: sim.Memory}),
		"gpu":   jobKey(a1, gpu2, sim.Options{Kind: sim.Memory}),
		"kind":  jobKey(a1, gpu, sim.Options{Kind: sim.Basic}),
		"rates": jobKey(a1, gpu, sim.Options{Kind: sim.Memory, HitRates: sim.ReuseDistance}),
		"sample": jobKey(a1, gpu, sim.Options{Kind: sim.Memory,
			SampleBlocks: 0.5}),
		"epoch": jobKey(a1, gpu, sim.Options{Kind: sim.Memory,
			EngineThreads: 4, EpochCycles: 8}),
	}
	for dim, k := range diff {
		if k == base {
			t.Errorf("key ignores %s", dim)
		}
	}
	// EngineThreads is result-neutral and must share the key; so must the
	// unset/explicit spellings of exact mode (EpochCycles 0 and 1).
	if jobKey(a1, gpu, sim.Options{Kind: sim.Memory, EngineThreads: 4}) != base {
		t.Error("key varies with EngineThreads (results are byte-identical)")
	}
	if jobKey(a1, gpu, sim.Options{Kind: sim.Memory, EpochCycles: 1}) != base {
		t.Error("key separates EpochCycles 0 from 1 (both are exact mode)")
	}
}
