package service

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func newHTTPService(t *testing.T, cfg Config) (*Service, *httptest.Server) {
	t.Helper()
	s := newService(t, cfg)
	srv := httptest.NewServer(NewHandler(s))
	t.Cleanup(srv.Close)
	return s, srv
}

func postSweep(t *testing.T, srv *httptest.Server, spec string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Post(srv.URL+"/v1/sweeps", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return resp.StatusCode, body
}

func getBody(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data
}

// waitHTTPDone polls the status endpoint until the sweep completes.
func waitHTTPDone(t *testing.T, srv *httptest.Server, id string) Status {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		code, data := getBody(t, srv.URL+"/v1/sweeps/"+id)
		if code != http.StatusOK {
			t.Fatalf("status %s: HTTP %d: %s", id, code, data)
		}
		var st Status
		if err := json.Unmarshal(data, &st); err != nil {
			t.Fatal(err)
		}
		if st.Done {
			return st
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("sweep %s did not finish", id)
	return Status{}
}

const specJSON = `{"apps":["BFS"],"gpus":["RTX2080Ti"],"sims":["memory"],"scale":0.1}`

// TestHTTPEndToEnd drives the full client workflow over the wire: submit,
// stream progress as NDJSON, fetch canonical results, then resubmit and
// observe the cache hit — byte-identical bodies and a bumped hit counter.
func TestHTTPEndToEnd(t *testing.T) {
	_, srv := newHTTPService(t, Config{})

	code, body := postSweep(t, srv, specJSON)
	if code != http.StatusAccepted {
		t.Fatalf("POST = %d: %v", code, body)
	}
	id := body["id"].(string)
	if body["jobs"].(float64) != 1 {
		t.Fatalf("jobs = %v, want 1", body["jobs"])
	}

	// Stream the progress feed to the end and validate its shape.
	resp, err := http.Get(srv.URL + "/v1/sweeps/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("events Content-Type = %q", ct)
	}
	var events []Event
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("empty event stream")
	}
	for i, ev := range events {
		if ev.Seq != i {
			t.Errorf("event %d has seq %d", i, ev.Seq)
		}
	}
	last := events[len(events)-1]
	if last.Type != "sweep" || last.Done != 1 || last.Failed != 0 {
		t.Errorf("final event = %+v, want sweep tally 1/0", last)
	}

	st := waitHTTPDone(t, srv, id)
	if st.Ok != 1 || st.Cached != 0 {
		t.Fatalf("first run status: %+v", st)
	}
	code, res1 := getBody(t, srv.URL+"/v1/sweeps/"+id+"/results")
	if code != http.StatusOK || !bytes.Contains(res1, []byte("swiftsim-canonical 1")) {
		t.Fatalf("results: HTTP %d:\n%s", code, res1)
	}

	// Identical resubmission: served from the persistent cache.
	code, body = postSweep(t, srv, specJSON)
	if code != http.StatusAccepted {
		t.Fatalf("second POST = %d: %v", code, body)
	}
	id2 := body["id"].(string)
	st2 := waitHTTPDone(t, srv, id2)
	if st2.Cached != 1 {
		t.Fatalf("second run not cached: %+v", st2)
	}
	code, res2 := getBody(t, srv.URL+"/v1/sweeps/"+id2+"/results")
	if code != http.StatusOK || !bytes.Equal(res1, res2) {
		t.Errorf("cached results differ (HTTP %d)", code)
	}

	code, data := getBody(t, srv.URL+"/v1/stats")
	var stats Stats
	if err := json.Unmarshal(data, &stats); err != nil || code != http.StatusOK {
		t.Fatalf("stats: HTTP %d, %v", code, err)
	}
	if stats.Cache.Hits < 1 || stats.Cache.Misses != 1 {
		t.Errorf("stats = %+v, want >=1 hit and exactly 1 miss", stats.Cache)
	}
}

// TestHTTPShedding: a full queue responds 429 with Retry-After while the
// in-flight sweep still completes.
func TestHTTPShedding(t *testing.T) {
	s, srv := newHTTPService(t, Config{QueueDepth: 1, Workers: 1})
	release := make(chan struct{})
	s.execHook = func(*Sweep) { <-release }

	code, body := postSweep(t, srv, specJSON)
	if code != http.StatusAccepted {
		t.Fatalf("POST = %d: %v", code, body)
	}
	id := body["id"].(string)

	resp, err := http.Post(srv.URL+"/v1/sweeps", "application/json", strings.NewReader(specJSON))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overload POST = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}

	close(release)
	if st := waitHTTPDone(t, srv, id); st.Failed != 0 {
		t.Errorf("in-flight sweep failed during shedding: %+v", st)
	}
}

// TestRetryAfterJitterBounds: the 429 Retry-After is uniform over [1,3]
// seconds — never zero or negative, never past the window, and actually
// jittered (a constant would retry a shed fleet in lockstep).
func TestRetryAfterJitterBounds(t *testing.T) {
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		v := retryAfterSeconds()
		if v < 1 || v > 3 {
			t.Fatalf("retryAfterSeconds() = %d, want within [1,3]", v)
		}
		seen[v] = true
	}
	if len(seen) < 2 {
		t.Errorf("retryAfterSeconds() produced only %v over 1000 draws; no jitter", seen)
	}
}

// TestHTTPErrors pins the error status mapping.
func TestHTTPErrors(t *testing.T) {
	s, srv := newHTTPService(t, Config{})

	if code, _ := postSweep(t, srv, `{"sims":["quantum"]}`); code != http.StatusBadRequest {
		t.Errorf("unknown sim POST = %d, want 400", code)
	}
	if code, _ := postSweep(t, srv, `not json`); code != http.StatusBadRequest {
		t.Errorf("bad JSON POST = %d, want 400", code)
	}
	if code, _ := getBody(t, srv.URL+"/v1/sweeps/s999"); code != http.StatusNotFound {
		t.Errorf("unknown sweep GET = %d, want 404", code)
	}
	if code, _ := getBody(t, srv.URL+"/v1/sweeps/s999/results"); code != http.StatusNotFound {
		t.Errorf("unknown sweep results = %d, want 404", code)
	}
	if code, body := getBody(t, srv.URL+"/healthz"); code != http.StatusOK || !strings.Contains(string(body), "ok") {
		t.Errorf("healthz = %d %q", code, body)
	}

	// Results of an unfinished sweep: 409.
	release := make(chan struct{})
	s.execHook = func(*Sweep) { <-release }
	code, body := postSweep(t, srv, specJSON)
	if code != http.StatusAccepted {
		t.Fatalf("POST = %d", code)
	}
	id := fmt.Sprint(body["id"])
	if code, _ := getBody(t, srv.URL+"/v1/sweeps/"+id+"/results"); code != http.StatusConflict {
		t.Errorf("unfinished results = %d, want 409", code)
	}
	close(release)
	waitHTTPDone(t, srv, id)
}

// TestHTTPEventsResume: a client reconnecting with ?from= skips events it
// already has.
func TestHTTPEventsResume(t *testing.T) {
	_, srv := newHTTPService(t, Config{})
	code, body := postSweep(t, srv, specJSON)
	if code != http.StatusAccepted {
		t.Fatalf("POST = %d", code)
	}
	id := body["id"].(string)
	waitHTTPDone(t, srv, id)

	_, all := getBody(t, srv.URL+"/v1/sweeps/"+id+"/events")
	lines := strings.Count(strings.TrimSpace(string(all)), "\n") + 1
	if lines < 2 {
		t.Fatalf("only %d events", lines)
	}
	_, tail := getBody(t, srv.URL+"/v1/sweeps/"+id+"/events?from="+fmt.Sprint(lines-1))
	var last Event
	if err := json.Unmarshal(bytes.TrimSpace(tail), &last); err != nil {
		t.Fatalf("resumed stream %q: %v", tail, err)
	}
	if last.Seq != lines-1 || last.Type != "sweep" {
		t.Errorf("resumed event = %+v, want the final sweep event", last)
	}
}
