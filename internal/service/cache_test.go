package service

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func TestCacheMissFulfillHit(t *testing.T) {
	c, err := NewCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	val, hit, owner, f := c.Claim("k1")
	if hit || !owner {
		t.Fatalf("first claim: hit=%v owner=%v, want miss+owner", hit, owner)
	}
	if err := c.Fulfill(f, []byte("payload")); err != nil {
		t.Fatalf("Fulfill: %v", err)
	}
	val, hit, owner, _ = c.Claim("k1")
	if !hit || owner {
		t.Fatalf("second claim: hit=%v owner=%v, want disk hit", hit, owner)
	}
	if string(val) != "payload" {
		t.Errorf("cached value = %q", val)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Waits != 0 {
		t.Errorf("stats = %+v, want 1 hit / 1 miss / 0 waits", st)
	}
}

// TestCachePersistsAcrossInstances: a value written by one Cache is
// served by a new Cache on the same directory — the restart survival the
// daemon's -cache-dir promises.
func TestCachePersistsAcrossInstances(t *testing.T) {
	dir := t.TempDir()
	c1, err := NewCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	_, _, _, f := c1.Claim("k")
	if err := c1.Fulfill(f, []byte("v")); err != nil {
		t.Fatal(err)
	}
	c2, err := NewCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	val, hit, _, _ := c2.Claim("k")
	if !hit || string(val) != "v" {
		t.Fatalf("fresh instance: hit=%v val=%q, want persisted value", hit, val)
	}
}

// TestCacheSingleFlight: a claim of an in-flight key joins the owner's
// computation instead of owning a second one, and gets the owner's value.
func TestCacheSingleFlight(t *testing.T) {
	c, err := NewCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	_, _, owner, f := c.Claim("k")
	if !owner {
		t.Fatal("first claim did not own")
	}
	var wg sync.WaitGroup
	joinedVal := make([]string, 3)
	for i := 0; i < 3; i++ {
		_, hit, own2, f2 := c.Claim("k")
		if hit || own2 {
			t.Fatalf("concurrent claim: hit=%v owner=%v, want join", hit, own2)
		}
		wg.Add(1)
		go func(i int, f2 *Flight) {
			defer wg.Done()
			v, err := f2.Wait(context.Background())
			if err != nil {
				t.Errorf("joiner %d: %v", i, err)
			}
			joinedVal[i] = string(v)
		}(i, f2)
	}
	if err := c.Fulfill(f, []byte("once")); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	for i, v := range joinedVal {
		if v != "once" {
			t.Errorf("joiner %d got %q", i, v)
		}
	}
	if st := c.Stats(); st.Waits != 3 || st.Misses != 1 {
		t.Errorf("stats = %+v, want 3 waits / 1 miss", st)
	}
}

// TestCacheFailReleasesAndRetries: a failed flight propagates its error
// to joiners, persists nothing, and the next claim owns a fresh attempt.
func TestCacheFailReleasesAndRetries(t *testing.T) {
	c, err := NewCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	_, _, _, f := c.Claim("k")
	_, _, _, joined := c.Claim("k")
	c.Fail(f, boom)
	if _, err := joined.Wait(context.Background()); !errors.Is(err, boom) {
		t.Errorf("joiner error = %v, want boom", err)
	}
	_, hit, owner, f2 := c.Claim("k")
	if hit || !owner {
		t.Fatalf("retry claim: hit=%v owner=%v, want fresh ownership", hit, owner)
	}
	c.Fail(f2, boom)
}

// TestFlightWaitHonorsContext: a joiner abandoned by a wedged owner is
// still released by its own context.
func TestFlightWaitHonorsContext(t *testing.T) {
	c, err := NewCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	_, _, _, _ = c.Claim("k") // owner never resolves
	_, _, _, f := c.Claim("k")
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if _, err := f.Wait(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("Wait = %v, want DeadlineExceeded", err)
	}
}

// TestCacheWriteAtomic: the value directory never contains a torn or
// temporary file after Fulfill returns — just the key's ref and the
// blob store directory holding exactly the value blob.
func TestCacheWriteAtomic(t *testing.T) {
	dir := t.TempDir()
	c, err := NewCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	_, _, _, f := c.Claim("kk")
	if err := c.Fulfill(f, []byte("value")); err != nil {
		t.Fatal(err)
	}
	names := dirNames(t, dir)
	if len(names) != 2 || names[0] != "blobs" || names[1] != "kk.ref" {
		t.Errorf("cache dir = %v, want exactly [blobs kk.ref]", names)
	}
	want := BlobHash([]byte("value")) + ".blob"
	blobs := dirNames(t, filepath.Join(dir, "blobs"))
	if len(blobs) != 1 || blobs[0] != want {
		t.Errorf("blob dir = %v, want exactly [%s]", blobs, want)
	}
}

func dirNames(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	names := make([]string, len(entries))
	for i, e := range entries {
		names[i] = e.Name()
	}
	return names
}

// TestCacheCorruptBlobEvicted: flipping bytes in a stored value blob is
// detected by the read-side hash check; the entry is evicted and the
// next claim owns a fresh computation instead of serving bad bytes.
func TestCacheCorruptBlobEvicted(t *testing.T) {
	dir := t.TempDir()
	c, err := NewCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	_, _, _, f := c.Claim("k")
	if err := c.Fulfill(f, []byte("good bytes")); err != nil {
		t.Fatal(err)
	}
	blob := filepath.Join(dir, "blobs", BlobHash([]byte("good bytes"))+".blob")
	if err := os.WriteFile(blob, []byte("bad bytes!"), 0o644); err != nil {
		t.Fatal(err)
	}

	val, hit, owner, f2 := c.Claim("k")
	if hit || !owner {
		t.Fatalf("claim after corruption: hit=%v owner=%v val=%q, want miss+owner", hit, owner, val)
	}
	if _, err := os.Stat(blob); !os.IsNotExist(err) {
		t.Errorf("corrupt blob still on disk (stat err=%v)", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "k.ref")); !os.IsNotExist(err) {
		t.Errorf("dangling ref still on disk (stat err=%v)", err)
	}
	if st := c.Stats(); st.Corrupt != 1 {
		t.Errorf("stats.Corrupt = %d, want 1", st.Corrupt)
	}
	// The re-run heals the entry.
	if err := c.Fulfill(f2, []byte("good bytes")); err != nil {
		t.Fatal(err)
	}
	val, hit, _, _ = c.Claim("k")
	if !hit || string(val) != "good bytes" {
		t.Errorf("healed claim: hit=%v val=%q", hit, val)
	}
}
