package service

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"runtime/debug"
	"sync"

	"swiftsim/internal/config"
	"swiftsim/internal/regress"
	"swiftsim/internal/sim"
	"swiftsim/internal/trace"
)

// keySchema versions the key derivation itself; bump it when the fields
// folded into the key change. Schema 3 added the sampled-execution
// parameters.
const keySchema = "swiftsim-service-key 3"

// jobKey derives the persistent cache key of one simulation job. Two jobs
// share a key exactly when they are guaranteed byte-identical canonical
// results, so the key folds in everything that affects them:
//
//   - the canonical rendering format (regress.CanonicalVersion);
//   - the code version (VCS revision when built from a checkout) — any
//     code change may legitimately move metrics, so a new build starts
//     cold rather than serving stale values;
//   - the full GPU configuration, via its canonical file serialization;
//   - the trace content hash — content, not pointer or name, so a
//     re-parsed or re-generated copy of the same workload still hits;
//   - the result-affecting sim.Options fields, including the relaxed-sync
//     epoch length (k > 1 legitimately shifts cycle counts, so each k has
//     its own cache line) and the sampled-execution parameters (a sampled
//     run's cycles include analytical extrapolation, so each effective
//     (fraction, stride, seed) triple has its own line — normalized via
//     Sampling.Effective so "default by zero" and "default spelled out"
//     share an entry). EngineThreads is deliberately excluded (results
//     are byte-identical at every shard count for a fixed epoch length);
//     Scheduler and Trace must be unset — the service never sets them, and
//     a custom scheduler would change results without changing the key.
func jobKey(app *trace.App, gpu config.GPU, opts sim.Options) string {
	h := sha256.New()
	io.WriteString(h, keySchema+"\n")
	io.WriteString(h, regress.CanonicalVersion+"\n")
	io.WriteString(h, codeVersion()+"\n")
	h.Write(config.Marshal(gpu))
	th := trace.ContentHash(app)
	h.Write(th[:])
	epoch := opts.EpochCycles
	if epoch < 1 {
		epoch = 1
	}
	fmt.Fprintf(h, "opts kind=%d hitrates=%d maxcycles=%d latencyscale=%g overhead=%d sample=%g epoch=%d\n",
		opts.Kind, opts.HitRates, opts.MaxCycles, opts.LatencyScale,
		opts.ExtraKernelOverhead, opts.SampleBlocks, epoch)
	sm := opts.Sampling.Effective()
	fmt.Fprintf(h, "sampling enabled=%t frac=%g stride=%d seed=%d\n",
		sm.Enabled, sm.BlockFraction, sm.ReplayStride, sm.Seed)
	return hex.EncodeToString(h.Sum(nil))
}

var (
	codeVersionOnce sync.Once
	codeVersionVal  string
)

// codeVersion identifies the running build: the VCS revision (plus a
// dirty marker) when available, else a fixed placeholder. Builds without
// VCS stamping — go test binaries, plain `go run` — share one cold
// namespace, which only ever costs recomputation, never staleness within
// a single test process.
func codeVersion() string {
	codeVersionOnce.Do(func() {
		codeVersionVal = "unversioned"
		info, ok := debug.ReadBuildInfo()
		if !ok {
			return
		}
		var rev, dirty string
		for _, s := range info.Settings {
			switch s.Key {
			case "vcs.revision":
				rev = s.Value
			case "vcs.modified":
				if s.Value == "true" {
					dirty = "+dirty"
				}
			}
		}
		if rev != "" {
			codeVersionVal = rev + dirty
		}
	})
	return codeVersionVal
}
