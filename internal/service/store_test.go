package service

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func TestStorePutGetRoundTrip(t *testing.T) {
	st, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("trace bytes")
	hash, err := st.Put(data)
	if err != nil {
		t.Fatal(err)
	}
	if hash != BlobHash(data) {
		t.Errorf("Put hash = %s, want %s", hash, BlobHash(data))
	}
	if !st.Has(hash) {
		t.Error("Has = false after Put")
	}
	got, err := st.Get(hash)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(data) {
		t.Errorf("Get = %q, want %q", got, data)
	}
	if s := st.Stats(); s.Puts != 1 || s.Gets != 1 || s.Dups != 0 {
		t.Errorf("stats = %+v, want 1 put / 1 get", s)
	}
}

// TestStorePutIdempotent: re-putting existing content is a no-op counted
// as a dup — two racing workers publishing the same canonical result is
// the normal case, not an error.
func TestStorePutIdempotent(t *testing.T) {
	st, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	h1, err := st.Put([]byte("same"))
	if err != nil {
		t.Fatal(err)
	}
	h2, err := st.Put([]byte("same"))
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 {
		t.Errorf("hashes differ: %s vs %s", h1, h2)
	}
	if s := st.Stats(); s.Puts != 1 || s.Dups != 1 {
		t.Errorf("stats = %+v, want 1 put / 1 dup", s)
	}
}

// TestStoreCorruptionEvicted: a blob whose bytes no longer hash to its
// name is reported as corrupt and removed from disk; a later Get is a
// plain not-found.
func TestStoreCorruptionEvicted(t *testing.T) {
	dir := t.TempDir()
	st, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	hash, err := st.Put([]byte("pristine"))
	if err != nil {
		t.Fatal(err)
	}
	file := filepath.Join(dir, hash+".blob")
	if err := os.WriteFile(file, []byte("tampered"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Get(hash); !errors.Is(err, ErrBlobCorrupt) {
		t.Fatalf("Get after tamper = %v, want ErrBlobCorrupt", err)
	}
	if _, err := os.Stat(file); !os.IsNotExist(err) {
		t.Errorf("corrupt blob not evicted (stat err=%v)", err)
	}
	if _, err := st.Get(hash); !errors.Is(err, ErrBlobNotFound) {
		t.Errorf("Get after eviction = %v, want ErrBlobNotFound", err)
	}
	if s := st.Stats(); s.Corrupt != 1 {
		t.Errorf("stats.Corrupt = %d, want 1", s.Corrupt)
	}
}

// TestStoreRejectsMalformedHashes: anything that is not 64 lowercase hex
// digits reads as not-found and never touches the filesystem — this is
// what keeps "../../etc/passwd" out of the HTTP store endpoint.
func TestStoreRejectsMalformedHashes(t *testing.T) {
	st, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	bad := []string{
		"",
		"short",
		"../../../../etc/passwd",
		"ABCDEF0123456789ABCDEF0123456789ABCDEF0123456789ABCDEF0123456789", // uppercase
		"zzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzz", // non-hex
		BlobHash(nil) + "0", // 65 chars
		BlobHash(nil)[:63],  // 63 chars
	}
	for _, h := range bad {
		if _, err := st.Get(h); !errors.Is(err, ErrBlobNotFound) {
			t.Errorf("Get(%q) = %v, want ErrBlobNotFound", h, err)
		}
		if st.Has(h) {
			t.Errorf("Has(%q) = true", h)
		}
	}
}

func TestStoreGetMissing(t *testing.T) {
	st, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Get(BlobHash([]byte("never stored"))); !errors.Is(err, ErrBlobNotFound) {
		t.Errorf("Get = %v, want ErrBlobNotFound", err)
	}
}
