package service

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"
)

// This file is the daemon side of the distributed execution plane: a job
// board that hands simulation jobs to remote swiftsim-worker processes
// under time-bounded leases.
//
// Lease state machine (per job):
//
//	pending ──claim──▶ leased ──fulfill/fail──▶ done
//	   ▲                  │
//	   └──lease expiry────┘   (attempts++, until the retry budget;
//	                           exhausting it is a terminal failure)
//
// Ownership is a lease, not a fact: a worker owns a job only while its
// heartbeats keep the lease's deadline in the future. A worker that dies
// mid-job simply stops heartbeating; the reaper requeues the job and
// another worker picks it up. Every grant carries a fencing token — the
// job's monotonically increasing grant counter — and a fulfill must
// present the token of the grant it is completing, so a presumed-dead
// worker's late result for an already-requeued job is rejected instead
// of double-committing (exactly-once result commitment; the bytes are
// identical by construction, but the accounting must fire once).
//
// The board holds no simulation state. Jobs reference their inputs
// (trace, GPU config) as content hashes into the Store and workers
// publish results the same way, so the wire format is a few hundred
// bytes per job regardless of trace size.

// Default lease plane tuning (overridable via RemoteConfig).
const (
	defaultLeaseTTL     = 10 * time.Second
	defaultLeaseRetries = 3
)

// Lease plane sentinel errors (HTTP mapping in http.go).
var (
	// ErrStaleLease rejects a fulfill/fail for a lease that is no longer
	// current — expired and requeued, canceled, superseded by a newer
	// grant, or already resolved (409).
	ErrStaleLease = errors.New("service: stale lease")
	// ErrUnknownWorker rejects requests from unregistered worker ids (404).
	ErrUnknownWorker = errors.New("service: unknown worker")
	// ErrRetriesExhausted fails a job whose every lease expired without a
	// result.
	ErrRetriesExhausted = errors.New("service: job retry budget exhausted (worker leases kept expiring)")
	// errBoardClosed resolves jobs still outstanding when the board shuts
	// down.
	errBoardClosed = errors.New("service: job board closed")
)

// WireJob is the job descriptor a worker receives from a successful
// claim: the job's identity, its lease, and content-hash references to
// its inputs. The worker fetches the blobs from GET /v1/store/{hash},
// simulates, publishes the canonical result bytes via POST /v1/store and
// commits with POST /v1/leases/{id}/result.
type WireJob struct {
	// Key is the job's cache key — its identity across the plane.
	Key string `json:"key"`
	// LeaseID and Token identify this grant. Token is the fencing token:
	// it increments on every grant of the job, and a commit must present
	// the token it was granted with.
	LeaseID string `json:"lease_id"`
	Token   uint64 `json:"token"`
	// Attempt counts prior expired leases of this job.
	Attempt int `json:"attempt"`
	// App/GPU/Sim label the job for logs and traces.
	App string `json:"app"`
	GPU string `json:"gpu"`
	Sim string `json:"sim"`
	// TraceBlob and ConfigBlob are store hashes of the application trace
	// (trace.Write serialization) and the GPU configuration
	// (config.Marshal serialization).
	TraceBlob  string `json:"trace_blob"`
	ConfigBlob string `json:"config_blob"`
	// Opts carries the result-affecting simulator options.
	Opts WireOptions `json:"opts"`
	// TimeoutMS bounds the job's wall-clock time on the worker (0 = none).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// LeaseTTLMS is the lease duration; the worker must heartbeat well
	// within it (the register response suggests a cadence).
	LeaseTTLMS int64 `json:"lease_ttl_ms"`
}

// WireOptions is the serializable subset of sim.Options — everything the
// sweep service ever sets on a job. Scheduler and Trace hooks are
// process-local and deliberately unrepresentable here.
type WireOptions struct {
	Kind                int     `json:"kind"`
	HitRates            int     `json:"hit_rates,omitempty"`
	MaxCycles           uint64  `json:"max_cycles,omitempty"`
	LatencyScale        float64 `json:"latency_scale,omitempty"`
	ExtraKernelOverhead uint64  `json:"extra_kernel_overhead,omitempty"`
	SampleBlocks        float64 `json:"sample_blocks,omitempty"`
	EngineThreads       int     `json:"engine_threads,omitempty"`
	EpochCycles         int     `json:"epoch_cycles,omitempty"`
	SampleEnabled       bool    `json:"sample_enabled,omitempty"`
	SampleFrac          float64 `json:"sample_frac,omitempty"`
	SampleStride        int     `json:"sample_stride,omitempty"`
	SampleSeed          uint64  `json:"sample_seed,omitempty"`
}

// BoardStats is the lease plane's observability snapshot.
type BoardStats struct {
	// Workers is the number of registered workers; Pending and Leased
	// count jobs waiting for a claim and jobs under a live lease.
	Workers int `json:"workers"`
	Pending int `json:"pending"`
	Leased  int `json:"leased"`
	// Expired counts leases the reaper requeued; Stale counts rejected
	// late commits (fencing violations); Exhausted counts jobs failed on
	// the retry budget.
	Expired   uint64 `json:"expired"`
	Stale     uint64 `json:"stale"`
	Exhausted uint64 `json:"exhausted"`
}

// boardJob is one job on the board. Its immutable wire template is
// stamped with lease fields at each grant; done fires exactly once.
type boardJob struct {
	key     string
	wire    WireJob // template: lease fields zero
	attempt int
	token   uint64 // fencing counter, incremented at each grant
	state   string // pending | leased | done
	lease   *lease // current grant when leased

	// onStart fires at most once per grant (a requeued job "starts"
	// again); done fires exactly once with the job's terminal outcome.
	// Both are invoked outside the board lock.
	onStart func(worker string)
	done    func(val []byte, err error)
}

// lease is one live grant of a job to a worker.
type lease struct {
	id       string
	job      *boardJob
	worker   string
	token    uint64
	deadline time.Time
}

// boardWorker is a registered worker process.
type boardWorker struct {
	id       string
	name     string
	lastSeen time.Time
}

// board is the lease-granting job dispatcher. All state is guarded by
// mu; long-poll claims block on cond (broadcast whenever the queue gains
// a job or the board closes).
type board struct {
	ttl      time.Duration
	maxTries int

	mu      sync.Mutex
	cond    *sync.Cond
	queue   []*boardJob // pending, FIFO; requeues go to the front
	jobs    map[string]*boardJob
	leases  map[string]*lease
	workers map[string]*boardWorker
	nextID  int
	stats   BoardStats
	closed  bool

	stopReaper chan struct{}
	reaperDone chan struct{}
}

// newBoard starts a board and its lease reaper.
func newBoard(ttl time.Duration, maxTries int) *board {
	if ttl <= 0 {
		ttl = defaultLeaseTTL
	}
	if maxTries <= 0 {
		maxTries = defaultLeaseRetries
	}
	b := &board{
		ttl:        ttl,
		maxTries:   maxTries,
		jobs:       make(map[string]*boardJob),
		leases:     make(map[string]*lease),
		workers:    make(map[string]*boardWorker),
		stopReaper: make(chan struct{}),
		reaperDone: make(chan struct{}),
	}
	b.cond = sync.NewCond(&b.mu)
	go b.reaper()
	return b
}

// reaper periodically requeues jobs whose lease deadline passed. The
// interval divides the TTL so an expiry is noticed within a fraction of
// it, with a floor for very short test TTLs.
func (b *board) reaper() {
	defer close(b.reaperDone)
	interval := b.ttl / 4
	if interval < 5*time.Millisecond {
		interval = 5 * time.Millisecond
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-b.stopReaper:
			return
		case now := <-tick.C:
			b.reap(now)
		}
	}
}

// reap requeues (or terminally fails) every job whose lease expired
// before now. Terminal done callbacks run outside the lock.
func (b *board) reap(now time.Time) {
	var failed []*boardJob
	b.mu.Lock()
	for id, l := range b.leases {
		if !l.deadline.Before(now) {
			continue
		}
		delete(b.leases, id)
		j := l.job
		j.lease = nil
		j.attempt++
		b.stats.Expired++
		if j.attempt >= b.maxTries {
			j.state = "done"
			b.stats.Exhausted++
			delete(b.jobs, j.key)
			failed = append(failed, j)
			continue
		}
		// Requeue at the front: an interrupted job has already waited a
		// full lease, so it should not requeue behind a long backlog.
		j.state = "pending"
		b.queue = append([]*boardJob{j}, b.queue...)
	}
	if len(b.queue) > 0 {
		b.cond.Broadcast()
	}
	b.mu.Unlock()
	for _, j := range failed {
		j.done(nil, fmt.Errorf("%w: job %s gave out %d lease(s), none fulfilled", ErrRetriesExhausted, j.key, j.attempt))
	}
}

// Register adds a worker and returns its id.
func (b *board) Register(name string) string {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.nextID++
	id := fmt.Sprintf("w%d", b.nextID)
	b.workers[id] = &boardWorker{id: id, name: name, lastSeen: time.Now()}
	return id
}

// Enqueue posts a job to the board. The job's done callback will fire
// exactly once, from a board goroutine or an HTTP handler.
func (b *board) Enqueue(j *boardJob) {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		j.done(nil, errBoardClosed)
		return
	}
	j.state = "pending"
	b.jobs[j.key] = j
	b.queue = append(b.queue, j)
	b.cond.Broadcast()
	b.mu.Unlock()
}

// Claim blocks until a job is available (granting a fresh lease on it)
// or ctx expires. The bool result distinguishes "no job before the wait
// ran out" (false, nil error) from unknown workers and board shutdown.
func (b *board) Claim(ctx context.Context, workerID string) (WireJob, bool, error) {
	b.mu.Lock()
	w, ok := b.workers[workerID]
	if !ok {
		b.mu.Unlock()
		return WireJob{}, false, fmt.Errorf("%w: %q", ErrUnknownWorker, workerID)
	}
	for len(b.queue) == 0 && !b.closed {
		if ctx.Err() != nil {
			b.mu.Unlock()
			return WireJob{}, false, nil
		}
		stop := context.AfterFunc(ctx, func() {
			b.mu.Lock()
			defer b.mu.Unlock()
			b.cond.Broadcast()
		})
		b.cond.Wait()
		stop()
	}
	if b.closed {
		b.mu.Unlock()
		return WireJob{}, false, errBoardClosed
	}
	j := b.queue[0]
	b.queue = b.queue[1:]
	t := time.Now()
	w.lastSeen = t
	j.token++
	j.state = "leased"
	b.nextID++
	l := &lease{
		id: fmt.Sprintf("l%d", b.nextID), job: j, worker: workerID,
		token: j.token, deadline: t.Add(b.ttl),
	}
	j.lease = l
	b.leases[l.id] = l
	wire := j.wire
	wire.LeaseID, wire.Token, wire.Attempt, wire.LeaseTTLMS = l.id, l.token, j.attempt, b.ttl.Milliseconds()
	onStart := j.onStart
	b.mu.Unlock()
	if onStart != nil {
		onStart(workerID)
	}
	return wire, true, nil
}

// Heartbeat renews the given leases for workerID and reports which of
// them are no longer current (expired and requeued, canceled, or
// resolved) so the worker can abandon the corresponding jobs.
func (b *board) Heartbeat(workerID string, leaseIDs []string) (renewed, lost []string, err error) {
	now := time.Now()
	b.mu.Lock()
	defer b.mu.Unlock()
	w, ok := b.workers[workerID]
	if !ok {
		return nil, nil, fmt.Errorf("%w: %q", ErrUnknownWorker, workerID)
	}
	w.lastSeen = now
	for _, id := range leaseIDs {
		l, ok := b.leases[id]
		if !ok || l.worker != workerID {
			lost = append(lost, id)
			continue
		}
		l.deadline = now.Add(b.ttl)
		renewed = append(renewed, id)
	}
	return renewed, lost, nil
}

// resolveLease validates a commit attempt against the fencing rules and,
// when valid, marks the job done. It returns the job for the caller to
// fire done on (outside the lock).
func (b *board) resolveLease(leaseID string, token uint64) (*boardJob, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	l, ok := b.leases[leaseID]
	if !ok || l.token != token || l.job.state != "leased" || l.job.lease != l {
		b.stats.Stale++
		return nil, fmt.Errorf("%w: lease %s token %d is not the current grant", ErrStaleLease, leaseID, token)
	}
	delete(b.leases, leaseID)
	j := l.job
	j.state = "done"
	j.lease = nil
	delete(b.jobs, j.key)
	return j, nil
}

// Fulfill commits a worker's result for its lease. Exactly-once: the
// first valid commit wins; anything else is ErrStaleLease.
func (b *board) Fulfill(leaseID string, token uint64, val []byte) error {
	j, err := b.resolveLease(leaseID, token)
	if err != nil {
		return err
	}
	j.done(val, nil)
	return nil
}

// Fail commits a worker-reported job failure (a simulation error, not a
// worker death — those surface as lease expiries). Failures are
// deterministic re-simulation errors, so they are terminal rather than
// requeued.
func (b *board) Fail(leaseID string, token uint64, msg string) error {
	j, err := b.resolveLease(leaseID, token)
	if err != nil {
		return err
	}
	j.done(nil, fmt.Errorf("worker %s: %s", leaseID, msg))
	return nil
}

// Cancel terminally resolves a job (FailFast skips) with err. A pending
// job is dequeued; a leased job's lease is invalidated so the worker's
// eventual commit is rejected and its next heartbeat reports the lease
// lost. Unknown keys (already resolved) are ignored.
func (b *board) Cancel(key string, err error) {
	b.mu.Lock()
	j, ok := b.jobs[key]
	if !ok {
		b.mu.Unlock()
		return
	}
	delete(b.jobs, key)
	if j.state == "pending" {
		for i, q := range b.queue {
			if q == j {
				b.queue = append(b.queue[:i], b.queue[i+1:]...)
				break
			}
		}
	}
	if j.lease != nil {
		delete(b.leases, j.lease.id)
		j.lease = nil
	}
	j.state = "done"
	b.mu.Unlock()
	j.done(nil, err)
}

// Close shuts the board down: claims unblock, every unresolved job is
// failed with errBoardClosed (wrapping cause when non-nil), and the
// reaper exits. Idempotent.
func (b *board) Close(cause error) {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.closed = true
	err := errBoardClosed
	if cause != nil {
		err = fmt.Errorf("%w: %w", errBoardClosed, cause)
	}
	var unresolved []*boardJob
	for _, j := range b.jobs {
		if j.state != "done" {
			j.state = "done"
			unresolved = append(unresolved, j)
		}
	}
	b.jobs = make(map[string]*boardJob)
	b.queue = nil
	b.leases = make(map[string]*lease)
	b.cond.Broadcast()
	b.mu.Unlock()
	close(b.stopReaper)
	<-b.reaperDone
	for _, j := range unresolved {
		j.done(nil, err)
	}
}

// Stats snapshots the board counters.
func (b *board) Stats() BoardStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	st := b.stats
	st.Workers = len(b.workers)
	st.Pending = len(b.queue)
	st.Leased = len(b.leases)
	return st
}
