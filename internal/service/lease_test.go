package service

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// outcome is one terminal resolution of a board job, captured by a test
// done callback.
type outcome struct {
	val []byte
	err error
}

// testJob builds a board job whose terminal outcome lands on the
// returned channel; fires counts done invocations so tests can assert
// exactly-once resolution.
func testJob(key string, fires *atomic.Int32) (*boardJob, chan outcome) {
	ch := make(chan outcome, 1)
	j := &boardJob{
		key:  key,
		wire: WireJob{Key: key, App: "app", GPU: "gpu", Sim: "detailed"},
		done: func(val []byte, err error) {
			if fires != nil {
				fires.Add(1)
			}
			ch <- outcome{val, err}
		},
	}
	return j, ch
}

func waitOutcome(t *testing.T, ch chan outcome) outcome {
	t.Helper()
	select {
	case o := <-ch:
		return o
	case <-time.After(5 * time.Second):
		t.Fatal("job never resolved")
		return outcome{}
	}
}

// A long TTL keeps the background reaper inert so tests drive expiry
// deterministically with explicit reap(now) calls.
const inertTTL = time.Hour

func TestBoardClaimFulfill(t *testing.T) {
	b := newBoard(inertTTL, 3)
	defer b.Close(nil)
	w := b.Register("alpha")

	var started atomic.Int32
	j, ch := testJob("k1", nil)
	j.onStart = func(worker string) {
		if worker != w {
			t.Errorf("onStart worker = %s, want %s", worker, w)
		}
		started.Add(1)
	}
	b.Enqueue(j)

	wire, ok, err := b.Claim(context.Background(), w)
	if err != nil || !ok {
		t.Fatalf("Claim: ok=%v err=%v", ok, err)
	}
	if wire.Key != "k1" || wire.Token != 1 || wire.Attempt != 0 || wire.LeaseID == "" {
		t.Errorf("wire = %+v, want key k1, token 1, attempt 0, a lease id", wire)
	}
	if wire.LeaseTTLMS != inertTTL.Milliseconds() {
		t.Errorf("LeaseTTLMS = %d", wire.LeaseTTLMS)
	}
	if started.Load() != 1 {
		t.Errorf("onStart fired %d times, want 1", started.Load())
	}
	if err := b.Fulfill(wire.LeaseID, wire.Token, []byte("result")); err != nil {
		t.Fatalf("Fulfill: %v", err)
	}
	o := waitOutcome(t, ch)
	if o.err != nil || string(o.val) != "result" {
		t.Errorf("outcome = (%q, %v)", o.val, o.err)
	}
	// A second commit of the same lease is stale, not a double-fire.
	if err := b.Fulfill(wire.LeaseID, wire.Token, []byte("again")); !errors.Is(err, ErrStaleLease) {
		t.Errorf("second Fulfill = %v, want ErrStaleLease", err)
	}
}

func TestBoardClaimUnknownWorker(t *testing.T) {
	b := newBoard(inertTTL, 3)
	defer b.Close(nil)
	if _, _, err := b.Claim(context.Background(), "w999"); !errors.Is(err, ErrUnknownWorker) {
		t.Errorf("Claim = %v, want ErrUnknownWorker", err)
	}
}

// TestBoardClaimLongPoll: an empty board parks the claim until a job
// arrives; a claim whose context expires first reports "no job" rather
// than an error.
func TestBoardClaimLongPoll(t *testing.T) {
	b := newBoard(inertTTL, 3)
	defer b.Close(nil)
	w := b.Register("alpha")

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, ok, err := b.Claim(ctx, w); ok || err != nil {
		t.Fatalf("timed-out claim: ok=%v err=%v, want no job, no error", ok, err)
	}

	got := make(chan WireJob, 1)
	go func() {
		wire, ok, err := b.Claim(context.Background(), w)
		if err != nil || !ok {
			t.Errorf("parked claim: ok=%v err=%v", ok, err)
		}
		got <- wire
	}()
	time.Sleep(10 * time.Millisecond) // let the claim park
	j, _ := testJob("k", nil)
	b.Enqueue(j)
	select {
	case wire := <-got:
		if wire.Key != "k" {
			t.Errorf("claimed %q, want k", wire.Key)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("parked claim never woke")
	}
}

// TestBoardExpiryRequeuesWithFencing is the heart of the fault model: a
// worker that stops heartbeating loses its lease, the job requeues (at
// the front, with attempt+1 and a fresh fencing token), a second worker
// completes it, and the first worker's late commit is rejected stale.
func TestBoardExpiryRequeuesWithFencing(t *testing.T) {
	b := newBoard(inertTTL, 3)
	defer b.Close(nil)
	w1, w2 := b.Register("alpha"), b.Register("beta")

	var fires atomic.Int32
	j, ch := testJob("k", &fires)
	b.Enqueue(j)
	stale, ok, err := b.Claim(context.Background(), w1)
	if err != nil || !ok {
		t.Fatalf("first claim: ok=%v err=%v", ok, err)
	}

	// w1 "dies": no heartbeats, so a reap past the deadline expires it.
	b.reap(time.Now().Add(2 * inertTTL))
	if st := b.Stats(); st.Expired != 1 || st.Pending != 1 || st.Leased != 0 {
		t.Fatalf("after expiry: stats = %+v", st)
	}

	fresh, ok, err := b.Claim(context.Background(), w2)
	if err != nil || !ok {
		t.Fatalf("second claim: ok=%v err=%v", ok, err)
	}
	if fresh.Key != "k" || fresh.Attempt != 1 || fresh.Token != stale.Token+1 {
		t.Errorf("requeued wire = %+v (stale token %d), want attempt 1 and a newer token", fresh, stale.Token)
	}

	// The presumed-dead worker's late commit must lose.
	if err := b.Fulfill(stale.LeaseID, stale.Token, []byte("late")); !errors.Is(err, ErrStaleLease) {
		t.Errorf("stale Fulfill = %v, want ErrStaleLease", err)
	}
	if err := b.Fulfill(fresh.LeaseID, fresh.Token, []byte("winner")); err != nil {
		t.Fatalf("fresh Fulfill: %v", err)
	}
	o := waitOutcome(t, ch)
	if o.err != nil || string(o.val) != "winner" {
		t.Errorf("outcome = (%q, %v)", o.val, o.err)
	}
	if fires.Load() != 1 {
		t.Errorf("done fired %d times, want exactly once", fires.Load())
	}
	if st := b.Stats(); st.Stale != 1 {
		t.Errorf("stats.Stale = %d, want 1", st.Stale)
	}
}

// TestBoardRequeueJumpsQueue: an expired job requeues ahead of jobs that
// have not yet waited a full lease.
func TestBoardRequeueJumpsQueue(t *testing.T) {
	b := newBoard(inertTTL, 3)
	defer b.Close(nil)
	w := b.Register("alpha")

	j1, _ := testJob("first", nil)
	b.Enqueue(j1)
	wire, ok, err := b.Claim(context.Background(), w)
	if err != nil || !ok || wire.Key != "first" {
		t.Fatalf("claim: %+v ok=%v err=%v", wire, ok, err)
	}
	j2, _ := testJob("backlog", nil)
	b.Enqueue(j2)

	b.reap(time.Now().Add(2 * inertTTL))
	wire, ok, err = b.Claim(context.Background(), w)
	if err != nil || !ok {
		t.Fatalf("reclaim: ok=%v err=%v", ok, err)
	}
	if wire.Key != "first" {
		t.Errorf("reclaimed %q, want the expired job ahead of the backlog", wire.Key)
	}
}

// TestBoardRetryBudget: a job whose every lease expires fails terminally
// with ErrRetriesExhausted after maxTries grants.
func TestBoardRetryBudget(t *testing.T) {
	const tries = 2
	b := newBoard(inertTTL, tries)
	defer b.Close(nil)
	w := b.Register("alpha")

	var fires atomic.Int32
	j, ch := testJob("k", &fires)
	b.Enqueue(j)
	for i := 0; i < tries; i++ {
		if _, ok, err := b.Claim(context.Background(), w); err != nil || !ok {
			t.Fatalf("claim %d: ok=%v err=%v", i, ok, err)
		}
		b.reap(time.Now().Add(2 * inertTTL))
	}
	o := waitOutcome(t, ch)
	if !errors.Is(o.err, ErrRetriesExhausted) {
		t.Errorf("outcome err = %v, want ErrRetriesExhausted", o.err)
	}
	if fires.Load() != 1 {
		t.Errorf("done fired %d times", fires.Load())
	}
	if st := b.Stats(); st.Exhausted != 1 || st.Expired != tries {
		t.Errorf("stats = %+v, want 1 exhausted / %d expired", st, tries)
	}
}

// TestBoardHeartbeat: renewal pushes the deadline so a reap that would
// have expired the original grant leaves it alone; unknown lease ids are
// reported lost so the worker can abandon those jobs.
func TestBoardHeartbeat(t *testing.T) {
	b := newBoard(inertTTL, 3)
	defer b.Close(nil)
	w := b.Register("alpha")
	j, _ := testJob("k", nil)
	b.Enqueue(j)
	wire, _, err := b.Claim(context.Background(), w)
	if err != nil {
		t.Fatal(err)
	}

	// Sit just before the renewed deadline but past the original one:
	// renew first, then reap at original-deadline + half a TTL.
	renewed, lost, err := b.Heartbeat(w, []string{wire.LeaseID, "l-bogus"})
	if err != nil {
		t.Fatal(err)
	}
	if len(renewed) != 1 || renewed[0] != wire.LeaseID {
		t.Errorf("renewed = %v", renewed)
	}
	if len(lost) != 1 || lost[0] != "l-bogus" {
		t.Errorf("lost = %v", lost)
	}
	b.reap(time.Now().Add(inertTTL / 2))
	if st := b.Stats(); st.Expired != 0 || st.Leased != 1 {
		t.Errorf("renewed lease expired anyway: stats = %+v", st)
	}

	if _, _, err := b.Heartbeat("w999", nil); !errors.Is(err, ErrUnknownWorker) {
		t.Errorf("heartbeat from unknown worker = %v, want ErrUnknownWorker", err)
	}

	// Another worker cannot renew someone else's lease.
	w2 := b.Register("beta")
	if renewed, lost, _ := b.Heartbeat(w2, []string{wire.LeaseID}); len(renewed) != 0 || len(lost) != 1 {
		t.Errorf("cross-worker renew: renewed=%v lost=%v, want it reported lost", renewed, lost)
	}
}

// TestBoardFailTerminal: a worker-reported simulation error resolves the
// job without a requeue (the error is deterministic).
func TestBoardFailTerminal(t *testing.T) {
	b := newBoard(inertTTL, 3)
	defer b.Close(nil)
	w := b.Register("alpha")
	j, ch := testJob("k", nil)
	b.Enqueue(j)
	wire, _, err := b.Claim(context.Background(), w)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Fail(wire.LeaseID, wire.Token, "deadlock detected"); err != nil {
		t.Fatal(err)
	}
	o := waitOutcome(t, ch)
	if o.err == nil || !strings.Contains(o.err.Error(), "deadlock detected") {
		t.Errorf("outcome err = %v", o.err)
	}
	if st := b.Stats(); st.Pending != 0 || st.Leased != 0 {
		t.Errorf("job lingers: stats = %+v", st)
	}
}

// TestBoardCancel: canceling a pending job dequeues it; canceling a
// leased job invalidates the lease so the worker's commit is stale and
// its heartbeat reports the lease lost.
func TestBoardCancel(t *testing.T) {
	b := newBoard(inertTTL, 3)
	defer b.Close(nil)
	w := b.Register("alpha")
	skip := errors.New("skipped by fail-fast")

	leased, chLeased := testJob("leased", nil)
	pending, chPending := testJob("pending", nil)
	b.Enqueue(leased)
	b.Enqueue(pending)
	wire, _, err := b.Claim(context.Background(), w)
	if err != nil || wire.Key != "leased" {
		t.Fatalf("claim: %+v err=%v", wire, err)
	}

	b.Cancel("pending", skip)
	if o := waitOutcome(t, chPending); !errors.Is(o.err, skip) {
		t.Errorf("pending outcome = %v", o.err)
	}
	b.Cancel("leased", skip)
	if o := waitOutcome(t, chLeased); !errors.Is(o.err, skip) {
		t.Errorf("leased outcome = %v", o.err)
	}
	if err := b.Fulfill(wire.LeaseID, wire.Token, []byte("v")); !errors.Is(err, ErrStaleLease) {
		t.Errorf("post-cancel Fulfill = %v, want ErrStaleLease", err)
	}
	if _, lost, _ := b.Heartbeat(w, []string{wire.LeaseID}); len(lost) != 1 {
		t.Errorf("heartbeat lost = %v, want the canceled lease", lost)
	}
	b.Cancel("neither", skip) // unknown key: no-op, no panic
	if st := b.Stats(); st.Pending != 0 || st.Leased != 0 {
		t.Errorf("stats = %+v, want empty board", st)
	}
}

// TestBoardClose: shutdown resolves every outstanding job with the
// cause, unblocks parked claims, and rejects new work.
func TestBoardClose(t *testing.T) {
	b := newBoard(inertTTL, 3)
	w := b.Register("alpha")

	leased, chLeased := testJob("leased", nil)
	pending, chPending := testJob("pending", nil)
	b.Enqueue(leased)
	b.Enqueue(pending)
	if _, _, err := b.Claim(context.Background(), w); err != nil {
		t.Fatal(err)
	}

	cause := errors.New("draining")
	b.Close(cause)
	b.Close(cause) // idempotent

	for name, ch := range map[string]chan outcome{"leased": chLeased, "pending": chPending} {
		o := waitOutcome(t, ch)
		if !errors.Is(o.err, errBoardClosed) || !errors.Is(o.err, cause) {
			t.Errorf("%s outcome = %v, want errBoardClosed wrapping cause", name, o.err)
		}
	}
	if _, _, err := b.Claim(context.Background(), w); !errors.Is(err, errBoardClosed) {
		t.Errorf("post-close claim = %v, want errBoardClosed", err)
	}

	late, chLate := testJob("late", nil)
	b.Enqueue(late)
	if o := waitOutcome(t, chLate); !errors.Is(o.err, errBoardClosed) {
		t.Errorf("post-close enqueue = %v, want errBoardClosed", o.err)
	}
}

// TestBoardCloseUnblocksParkedClaim: a claim long-polling an empty board
// is released (with errBoardClosed) by shutdown rather than left hanging
// until its poll window expires.
func TestBoardCloseUnblocksParkedClaim(t *testing.T) {
	b := newBoard(inertTTL, 3)
	w := b.Register("alpha")
	parked := make(chan error, 1)
	go func() {
		_, _, err := b.Claim(context.Background(), w)
		parked <- err
	}()
	time.Sleep(10 * time.Millisecond) // let the claim park
	b.Close(nil)
	select {
	case err := <-parked:
		if !errors.Is(err, errBoardClosed) {
			t.Errorf("parked claim = %v, want errBoardClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("parked claim never unblocked by Close")
	}
}
