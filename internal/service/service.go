// Package service is the long-running sweep service behind cmd/swiftsimd:
// clients submit sweep specifications (applications × GPU presets ×
// simulator kinds), poll or stream per-job progress, and fetch results as
// the byte-stable canonical metric renderings of internal/regress.
//
// Three properties distinguish it from a one-shot cmd/sweep run:
//
//   - Persistent caching: every job's canonical result is stored on disk
//     keyed by (code version, GPU config, trace content hash, simulator
//     options) — see key.go — so a repeated submission is served without
//     simulating, across restarts. In-process, identical concurrent jobs
//     are single-flighted: one simulates, the rest wait for its value.
//   - Admission control: the total number of queued-plus-running jobs is
//     bounded by Config.QueueDepth. A submission that would exceed it is
//     shed immediately (ErrQueueFull → HTTP 429) instead of building an
//     unbounded backlog.
//   - Graceful drain: Close stops admissions (ErrDraining → HTTP 503),
//     lets queued sweeps finish, and hard-cancels in-flight simulations
//     only when its context expires.
package service

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"swiftsim/internal/config"
	"swiftsim/internal/obs"
	"swiftsim/internal/regress"
	"swiftsim/internal/runner"
	"swiftsim/internal/sim"
	"swiftsim/internal/trace"
	"swiftsim/internal/workload"
)

// Config tunes a Service.
type Config struct {
	// CacheDir is the persistent result cache directory ("" disables
	// persistence is not supported — the daemon always has one; tests use
	// t.TempDir()).
	CacheDir string
	// QueueDepth bounds queued-plus-running jobs across all sweeps
	// (0 = 64). A submission whose jobs would exceed it is rejected with
	// ErrQueueFull; a single sweep larger than the whole depth can never
	// be admitted.
	QueueDepth int
	// Workers is the number of sweeps executed concurrently (0 = 1).
	// Parallelism *within* a sweep is Threads.
	Workers int
	// Threads is the per-sweep worker-pool size handed to runner.Run
	// (0 = NumCPU).
	Threads int
	// MaxJobTimeout caps (and defaults) the per-job wall-clock budget a
	// spec may request (0 = no cap, no default).
	MaxJobTimeout time.Duration
	// EngineThreads is the daemon-wide default engine shard count for
	// specs that leave engine_threads unset (0 or 1 = serial engine).
	EngineThreads int
	// EpochCycles is the daemon-wide default relaxed-sync epoch length
	// for specs that leave epoch_cycles unset (0 or 1 = exact mode). A
	// value > 1 requires EngineThreads > 1; New rejects the contradiction.
	EpochCycles int
	// Sampling is the daemon-wide default sampled-execution mode for
	// specs that leave `sample` unset. Sampled results legitimately
	// differ from exact ones, so the effective sampling parameters are
	// part of every job's cache key.
	Sampling SamplingDefaults
	// Trace is the daemon-wide observability handle (nil records
	// nothing). Each sweep gets its own block of trace pids and the
	// recorder is flushed after every finished sweep.
	Trace *obs.Tracer
	// Remote, when enabled, switches job execution to the distributed
	// plane: cache misses are published to the lease-based job board and
	// executed by swiftsim-worker processes pulling over HTTP, instead of
	// simulated in this process.
	Remote RemoteConfig
}

// RemoteConfig tunes the distributed execution plane (lease.go).
type RemoteConfig struct {
	// Enabled turns remote execution on. With it off, the worker and
	// store endpoints still serve (a warm worker fleet can register
	// early) but jobs always run in-process.
	Enabled bool
	// LeaseTTL is how long a claimed job stays owned without a heartbeat
	// before it is requeued to another worker (0 = 10s).
	LeaseTTL time.Duration
	// MaxAttempts bounds how many leases a job may burn through before
	// it fails terminally (0 = 3).
	MaxAttempts int
}

// SamplingDefaults is the daemon-wide sampled-execution default applied to
// specs that do not set `sample` themselves (an alias of sim.Sampling; see
// its fields for semantics).
type SamplingDefaults = sim.Sampling

// Sentinel errors mapped to HTTP statuses by http.go.
var (
	// ErrQueueFull sheds a submission that would exceed QueueDepth (429).
	ErrQueueFull = errors.New("service: job queue full")
	// ErrDraining rejects submissions after Close began (503).
	ErrDraining = errors.New("service: draining, not accepting sweeps")
	// ErrNotFound reports an unknown sweep id (404).
	ErrNotFound = errors.New("service: no such sweep")
)

// Spec is a sweep submission. Zero-valued fields get defaults: all
// catalog applications, the three GPU presets, the memory simulator,
// scale 0.25.
type Spec struct {
	Apps  []string `json:"apps,omitempty"`
	GPUs  []string `json:"gpus,omitempty"`
	Sims  []string `json:"sims,omitempty"`
	Scale float64  `json:"scale,omitempty"`
	// JobTimeout is a Go duration string ("30s"); clamped to the
	// service's MaxJobTimeout.
	JobTimeout string `json:"job_timeout,omitempty"`
	// FailFast cancels the sweep's remaining jobs after its first
	// failure; never-started jobs finish as "skipped".
	FailFast bool `json:"fail_fast,omitempty"`
	// EngineThreads shards each simulation's engine (0 = the daemon's
	// -engine-threads default). Results are byte-identical at every shard
	// count, so it does not enter the cache key.
	EngineThreads int `json:"engine_threads,omitempty"`
	// EpochCycles is the relaxed-sync epoch length (0 = the daemon's
	// -epoch-cycles default; 1 = exact per-cycle barrier). A value > 1
	// requires engine_threads > 1 and legitimately shifts results, so it
	// is part of the cache key.
	EpochCycles int `json:"epoch_cycles,omitempty"`
	// Sample runs every job of the sweep in sampled execution mode:
	// repeated kernel launches replay a recorded outcome and each launch
	// simulates only a representative block subset, with the remainder
	// extrapolated analytically. Sampled cycles legitimately differ from
	// exact ones, so the effective sampling parameters are part of the
	// cache key. When unset, the daemon's -sample default applies (and
	// the tuning fields below must be zero).
	Sample bool `json:"sample,omitempty"`
	// SampleFrac is the fraction of post-first-wave blocks to simulate
	// per launch, in (0,1); 0 = the simulator default.
	SampleFrac float64 `json:"sample_frac,omitempty"`
	// SampleStride re-simulates every Nth repeated launch; 0 = the
	// simulator default, 1 disables launch replay.
	SampleStride int `json:"sample_stride,omitempty"`
	// SampleSeed drives the representative-block selection; equal seeds
	// (and parameters) give bit-identical sampled results.
	SampleSeed uint64 `json:"sample_seed,omitempty"`
}

// Job states reported in statuses and progress events.
const (
	StatePending = "pending"
	StateRunning = "running"
	StateDone    = "done"
	StateFailed  = "failed"
	StateSkipped = "skipped"
)

// JobStatus is the externally visible state of one job of a sweep.
type JobStatus struct {
	App   string `json:"app"`
	GPU   string `json:"gpu"`
	Sim   string `json:"sim"`
	State string `json:"state"`
	// Cached reports the job was served without simulating here: from
	// the persistent cache or by joining another sweep's identical job.
	Cached bool   `json:"cached,omitempty"`
	Error  string `json:"error,omitempty"`
}

// Event is one line of a sweep's progress stream. Type "job" events carry
// a job transition; the single trailing "sweep" event carries the final
// tally.
type Event struct {
	Seq  int    `json:"seq"`
	Type string `json:"type"` // "job" | "sweep"
	// Job fields (Type "job").
	Job    int    `json:"job,omitempty"`
	App    string `json:"app,omitempty"`
	GPU    string `json:"gpu,omitempty"`
	Sim    string `json:"sim,omitempty"`
	State  string `json:"state,omitempty"`
	Cached bool   `json:"cached,omitempty"`
	Error  string `json:"error,omitempty"`
	// Tally fields (Type "sweep", and maintained on job events too).
	Done   int `json:"done,omitempty"`
	Failed int `json:"failed,omitempty"`
	Total  int `json:"total,omitempty"`
}

// Status is a sweep's poll response.
type Status struct {
	ID     string      `json:"id"`
	Done   bool        `json:"done"`
	Total  int         `json:"total"`
	Ok     int         `json:"ok"`
	Failed int         `json:"failed"`
	Cached int         `json:"cached"`
	Jobs   []JobStatus `json:"jobs"`
}

// job is one resolved (app, gpu, sim) cell of a sweep.
type job struct {
	app  *trace.App
	gpu  config.GPU
	opts sim.Options
	sim  string // report name (sim.Kind.String())
	key  string
}

// Sweep is one submitted sweep. All mutable state is guarded by mu;
// waiters block on cond (broadcast on every event and at completion).
type Sweep struct {
	id         string
	jobs       []job
	jobTimeout time.Duration
	failFast   bool
	// engineThreads is the sweep's effective engine shard count; the
	// runner shrinks its job pool by it so the thread budget holds.
	engineThreads int

	mu     sync.Mutex
	cond   *sync.Cond
	status []JobStatus
	events []Event
	result [][]byte // canonical bytes per succeeded job
	okJobs int
	failed int
	done   bool
}

// ID returns the sweep's identifier.
func (sw *Sweep) ID() string { return sw.id }

// Service is the sweep service. Create with New, serve over HTTP with
// NewHandler, stop with Close.
type Service struct {
	cfg   Config
	cache *Cache
	store *Store // the cache's blob store, served over /v1/store
	board *board // the lease-based job board (always present; used when cfg.Remote.Enabled)

	ctx    context.Context // canceled only by hard drain
	cancel context.CancelFunc
	queue  chan *Sweep
	wg     sync.WaitGroup

	mu       sync.Mutex
	sweeps   map[string]*Sweep
	nextID   int
	nextPid  int
	pending  int // queued + running jobs, the admission-control gauge
	shed     uint64
	draining bool

	// execHook, when set (tests only), runs at the top of each sweep's
	// execution — before any job starts — so tests can hold a worker in
	// a known state.
	execHook func(*Sweep)
}

// Stats is the service-wide observability snapshot.
type Stats struct {
	Cache       CacheStats `json:"cache"`
	Store       StoreStats `json:"store"`
	Remote      BoardStats `json:"remote"`
	PendingJobs int        `json:"pending_jobs"`
	Sweeps      int        `json:"sweeps"`
	Shed        uint64     `json:"shed"`
}

// New starts a Service with cfg's worker pool running.
func New(cfg Config) (*Service, error) {
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.EngineThreads < 0 || cfg.EpochCycles < 0 {
		return nil, fmt.Errorf("service: negative engine defaults (engine_threads %d, epoch_cycles %d)", cfg.EngineThreads, cfg.EpochCycles)
	}
	if cfg.EpochCycles > 1 && cfg.EngineThreads <= 1 {
		return nil, fmt.Errorf("service: default epoch_cycles %d needs a parallel engine: set EngineThreads > 1", cfg.EpochCycles)
	}
	if err := validateSampling(cfg.Sampling); err != nil {
		return nil, fmt.Errorf("service: default sampling: %w", err)
	}
	if cfg.Remote.LeaseTTL < 0 || cfg.Remote.MaxAttempts < 0 {
		return nil, fmt.Errorf("service: negative remote tuning (lease_ttl %v, max_attempts %d)", cfg.Remote.LeaseTTL, cfg.Remote.MaxAttempts)
	}
	cache, err := NewCache(cfg.CacheDir)
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Service{
		cfg:    cfg,
		cache:  cache,
		store:  cache.BlobStore(),
		board:  newBoard(cfg.Remote.LeaseTTL, cfg.Remote.MaxAttempts),
		ctx:    ctx,
		cancel: cancel,
		// Admission caps total jobs at QueueDepth and every sweep has at
		// least one job, so at most QueueDepth sweeps are ever queued —
		// the send in Submit can never block.
		queue:  make(chan *Sweep, cfg.QueueDepth),
		sweeps: make(map[string]*Sweep),
	}
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s, nil
}

// Submit validates and admits a sweep, returning it queued. The sweep
// runs asynchronously; follow it with Status / WaitEvents / Results.
func (s *Service) Submit(spec Spec) (*Sweep, error) {
	jobs, timeout, engineThreads, err := s.resolve(spec)
	if err != nil {
		return nil, err
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil, ErrDraining
	}
	if s.pending+len(jobs) > s.cfg.QueueDepth {
		s.shed++
		pending := s.pending
		s.mu.Unlock()
		return nil, fmt.Errorf("%w: %d job(s) pending, %d submitted, depth %d",
			ErrQueueFull, pending, len(jobs), s.cfg.QueueDepth)
	}
	s.pending += len(jobs)
	s.nextID++
	sw := &Sweep{
		id:            fmt.Sprintf("s%d", s.nextID),
		jobs:          jobs,
		jobTimeout:    timeout,
		failFast:      spec.FailFast,
		engineThreads: engineThreads,
		status:        make([]JobStatus, len(jobs)),
		result:        make([][]byte, len(jobs)),
	}
	sw.cond = sync.NewCond(&sw.mu)
	for i, jb := range jobs {
		sw.status[i] = JobStatus{App: jb.app.Name, GPU: jb.gpu.Name, Sim: jb.sim, State: StatePending}
	}
	s.sweeps[sw.id] = sw
	// The send stays under the lock: it can never block (see the queue's
	// capacity invariant in New), and serializing it with Close's
	// draining flip makes a send on the closed queue impossible.
	s.queue <- sw
	s.mu.Unlock()
	return sw, nil
}

// resolve expands a spec into its jobs (GPUs outermost, then apps, then
// sims — the deterministic order of the regression corpus) and validates
// every name up front so admission is all-or-nothing. The third return is
// the sweep's effective engine shard count for the runner's pool split.
func (s *Service) resolve(spec Spec) ([]job, time.Duration, int, error) {
	appNames := spec.Apps
	if len(appNames) == 0 {
		appNames = workload.Names()
	}
	gpuNames := spec.GPUs
	if len(gpuNames) == 0 {
		gpuNames = config.PresetNames()
	}
	simNames := spec.Sims
	if len(simNames) == 0 {
		simNames = []string{"memory"}
	}
	scale := spec.Scale
	if scale == 0 {
		scale = 0.25
	}
	if scale < 0 {
		return nil, 0, 0, fmt.Errorf("service: negative scale %g", scale)
	}

	if spec.EngineThreads < 0 {
		return nil, 0, 0, fmt.Errorf("service: negative engine_threads %d", spec.EngineThreads)
	}
	if spec.EpochCycles < 0 {
		return nil, 0, 0, fmt.Errorf("service: negative epoch_cycles %d", spec.EpochCycles)
	}
	engineThreads := spec.EngineThreads
	if engineThreads == 0 {
		engineThreads = s.cfg.EngineThreads
	}
	epoch := spec.EpochCycles
	if epoch == 0 {
		epoch = s.cfg.EpochCycles
	}
	// The effective pair is validated, not the raw spec: a spec asking for
	// engine_threads 1 against a daemon whose default epoch is relaxed
	// would otherwise silently run an epoch the simulator ignores.
	if epoch > 1 && engineThreads <= 1 {
		return nil, 0, 0, fmt.Errorf("service: epoch_cycles %d needs a parallel engine: set engine_threads > 1 (or drop epoch_cycles for the exact run)", epoch)
	}

	sampling := sim.Sampling(s.cfg.Sampling)
	if spec.Sample {
		sampling = sim.Sampling{
			Enabled:       true,
			BlockFraction: spec.SampleFrac,
			ReplayStride:  spec.SampleStride,
			Seed:          spec.SampleSeed,
		}
	} else if spec.SampleFrac != 0 || spec.SampleStride != 0 || spec.SampleSeed != 0 {
		// Tuning fields without the mode switch would be silently dead
		// settings; reject the contradiction like the CLIs do.
		return nil, 0, 0, fmt.Errorf("service: sample_frac/sample_stride/sample_seed have no effect without sample")
	}
	if err := validateSampling(sampling); err != nil {
		return nil, 0, 0, fmt.Errorf("service: %w", err)
	}

	var timeout time.Duration
	if spec.JobTimeout != "" {
		d, err := time.ParseDuration(spec.JobTimeout)
		if err != nil {
			return nil, 0, 0, fmt.Errorf("service: job_timeout: %w", err)
		}
		if d < 0 {
			return nil, 0, 0, fmt.Errorf("service: negative job_timeout %v", d)
		}
		timeout = d
	}
	if max := s.cfg.MaxJobTimeout; max > 0 && (timeout == 0 || timeout > max) {
		timeout = max
	}

	apps := make([]*trace.App, len(appNames))
	for i, name := range appNames {
		app, err := workload.Generate(name, scale)
		if err != nil {
			return nil, 0, 0, err
		}
		apps[i] = app
	}
	gpus := make([]config.GPU, len(gpuNames))
	for i, name := range gpuNames {
		g, ok := config.Preset(name)
		if !ok {
			return nil, 0, 0, fmt.Errorf("service: unknown GPU preset %q (want one of %v)", name, config.PresetNames())
		}
		gpus[i] = g
	}
	kinds := make([]sim.Kind, len(simNames))
	for i, name := range simNames {
		k, err := parseKind(name)
		if err != nil {
			return nil, 0, 0, err
		}
		kinds[i] = k
	}

	var jobs []job
	for _, g := range gpus {
		for _, a := range apps {
			for _, k := range kinds {
				opts := sim.Options{Kind: k, EngineThreads: engineThreads, EpochCycles: epoch, Sampling: sampling}
				jobs = append(jobs, job{
					app: a, gpu: g, opts: opts, sim: k.String(),
					key: jobKey(a, g, opts),
				})
			}
		}
	}
	return jobs, timeout, engineThreads, nil
}

// validateSampling bounds an enabled sampling configuration (disabled
// sampling is always valid; tuning fields are checked against the mode
// switch by the caller).
func validateSampling(sm sim.Sampling) error {
	if !sm.Enabled {
		return nil
	}
	if sm.BlockFraction < 0 || sm.BlockFraction >= 1 {
		return fmt.Errorf("sample_frac must be in (0,1) (0 = simulator default), got %g", sm.BlockFraction)
	}
	if sm.ReplayStride < 0 {
		return fmt.Errorf("sample_stride must be >= 0 (0 = simulator default, 1 = no replay), got %d", sm.ReplayStride)
	}
	return nil
}

// parseKind maps the spec's simulator spelling (the cmd/explore -sim
// vocabulary) to a sim.Kind.
func parseKind(name string) (sim.Kind, error) {
	switch name {
	case "detailed":
		return sim.Detailed, nil
	case "basic":
		return sim.Basic, nil
	case "memory":
		return sim.Memory, nil
	case "l2":
		return sim.L2Hybrid, nil
	default:
		return 0, fmt.Errorf("service: unknown simulator %q (want detailed|basic|memory|l2)", name)
	}
}

// Sweep looks a sweep up by id.
func (s *Service) Sweep(id string) (*Sweep, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sw, ok := s.sweeps[id]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	return sw, nil
}

// Stats snapshots the service counters.
func (s *Service) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Cache:       s.cache.Stats(),
		Store:       s.store.Stats(),
		Remote:      s.board.Stats(),
		PendingJobs: s.pending,
		Sweeps:      len(s.sweeps),
		Shed:        s.shed,
	}
}

// Close drains the service: admissions stop immediately, queued and
// running sweeps are given until ctx expires to finish, then in-flight
// simulations are hard-canceled (their jobs fail with context.Canceled
// and the sweeps still complete). Close returns when all workers exited.
func (s *Service) Close(ctx context.Context) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return errors.New("service: Close called twice")
	}
	s.draining = true
	close(s.queue)
	s.mu.Unlock()

	done := make(chan struct{})
	go func() { s.wg.Wait(); close(done) }()
	select {
	case <-done:
		s.board.Close(nil)
		return nil
	case <-ctx.Done():
		s.cancel() // hard drain: cancel in-flight simulations
		// Resolving the board's outstanding jobs is what unblocks sweeps
		// waiting on remote leases, so it happens before waiting for the
		// workers to exit.
		s.board.Close(context.Canceled)
		<-done
		return ctx.Err()
	}
}

// worker executes queued sweeps until the queue closes.
func (s *Service) worker() {
	defer s.wg.Done()
	for sw := range s.queue {
		s.runSweep(sw)
	}
}

// runSweep executes one sweep: claim every job against the cache, run the
// owned misses on a runner pool, then collect jobs that joined another
// claimant's flight.
func (s *Service) runSweep(sw *Sweep) {
	if hook := s.execHook; hook != nil {
		hook(sw)
	}

	// The sweep's trace pids: a disjoint block per sweep, derived from
	// the daemon tracer (pid 0 stays the daemon's own row).
	var tr *obs.Tracer
	if s.cfg.Trace != nil {
		s.mu.Lock()
		base := s.nextPid + 1
		s.nextPid += len(sw.jobs) + 1
		s.mu.Unlock()
		tr = s.cfg.Trace.WithPid(base)
	}

	// Phase 1: claim. Owned misses go to the runner; flights owned by
	// someone else are collected in phase 3.
	type joined struct {
		idx    int
		flight *Flight
	}
	var misses []int
	flights := make(map[int]*Flight)
	var joins []joined
	for i := range sw.jobs {
		val, hit, owner, f := s.cache.Claim(sw.jobs[i].key)
		switch {
		case hit:
			s.finishJob(sw, i, val, nil, true)
		case owner:
			misses = append(misses, i)
			flights[i] = f
		default:
			joins = append(joins, joined{idx: i, flight: f})
		}
	}

	// Phase 2: simulate the misses — remotely on the lease plane when
	// configured, else on the in-process runner pool. Either way every
	// owned flight is resolved exactly once.
	if len(misses) > 0 && s.cfg.Remote.Enabled {
		s.runRemote(sw, misses, flights)
	} else if len(misses) > 0 {
		jobs := make([]runner.Job, len(misses))
		for k, i := range misses {
			jobs[k] = runner.Job{App: sw.jobs[i].app, GPU: sw.jobs[i].gpu, Opts: sw.jobs[i].opts}
		}
		runner.Run(jobs, s.cfg.Threads, runner.Options{
			Ctx:        s.ctx,
			JobTimeout: sw.jobTimeout,
			FailFast:   sw.failFast,
			Trace:      tr,
			// Each job's sim.Options already carries the sweep's effective
			// EngineThreads/EpochCycles; passing EngineThreads here shrinks
			// the runner's job pool so the thread budget stays bounded.
			EngineThreads: sw.engineThreads,
			OnStart: func(k int) {
				s.startJob(sw, misses[k])
			},
			OnProgress: func(p runner.Progress) {
				i := misses[p.JobIndex]
				if p.Err != nil {
					s.cache.Fail(flights[i], p.Err)
					s.finishJob(sw, i, nil, p.Err, false)
					return
				}
				data := regress.Canonical(p.Result)
				// A failed disk write only costs persistence; the value
				// still serves this sweep and its joiners.
				_ = s.cache.Fulfill(flights[i], data)
				s.finishJob(sw, i, data, nil, false)
			},
		})
	}

	// Phase 3: collect joined flights. Owners always resolve their
	// flights (even for skipped jobs), so these waits terminate; s.ctx
	// guards against a hard drain racing an owner.
	for _, j := range joins {
		val, err := j.flight.Wait(s.ctx)
		s.finishJob(sw, j.idx, val, err, err == nil)
	}

	sw.mu.Lock()
	sw.done = true
	sw.appendEventLocked(Event{
		Type: "sweep", Done: sw.okJobs + sw.failed, Failed: sw.failed, Total: len(sw.jobs),
	})
	sw.mu.Unlock()

	// Flushing keeps a streaming trace file current between sweeps; a
	// flush error is non-fatal here and resurfaces at daemon Close.
	_ = tr.Flush()
}

// runRemote executes a sweep's cache misses on the distributed plane:
// each job's inputs (trace, GPU config) are published to the blob store,
// the job is posted to the lease board, and remote workers claim,
// simulate and publish canonical results by hash. Worker loss surfaces
// as lease expiry and requeue (lease.go); the call returns when every
// miss reached a terminal state.
func (s *Service) runRemote(sw *Sweep, misses []int, flights map[int]*Flight) {
	var wg sync.WaitGroup
	var failOnce sync.Once
	keys := make([]string, len(misses))
	for k, i := range misses {
		keys[k] = sw.jobs[i].key
	}
	// FailFast: terminally skip the sweep's other board jobs. Cancel
	// ignores keys that already resolved, and a leased job's worker
	// learns on its next heartbeat.
	cancelRest := func() {
		for _, key := range keys {
			s.board.Cancel(key, fmt.Errorf("%w: fail-fast after another job's failure", runner.ErrJobSkipped))
		}
	}
	for _, i := range misses {
		jb := &sw.jobs[i]
		wire, err := s.publishJob(jb, sw.jobTimeout)
		if err != nil {
			s.cache.Fail(flights[i], err)
			s.finishJob(sw, i, nil, err, false)
			continue
		}
		flight := flights[i]
		idx := i
		wg.Add(1)
		s.board.Enqueue(&boardJob{
			key:     jb.key,
			wire:    wire,
			onStart: func(string) { s.startJob(sw, idx) },
			done: func(val []byte, err error) {
				defer wg.Done()
				if err != nil {
					s.cache.Fail(flight, err)
					s.finishJob(sw, idx, nil, err, false)
					if sw.failFast {
						failOnce.Do(cancelRest)
					}
					return
				}
				// A failed ref write only costs persistence, as in the
				// local path; the blob itself is already in the store.
				_ = s.cache.Fulfill(flight, val)
				s.finishJob(sw, idx, val, nil, false)
			},
		})
	}
	wg.Wait()
}

// publishJob uploads one job's inputs into the blob store and builds its
// wire descriptor (lease fields are stamped at claim time).
func (s *Service) publishJob(jb *job, timeout time.Duration) (WireJob, error) {
	var buf bytes.Buffer
	if err := trace.Write(&buf, jb.app); err != nil {
		return WireJob{}, fmt.Errorf("serializing trace: %w", err)
	}
	traceHash, err := s.store.Put(buf.Bytes())
	if err != nil {
		return WireJob{}, fmt.Errorf("publishing trace blob: %w", err)
	}
	confHash, err := s.store.Put(config.Marshal(jb.gpu))
	if err != nil {
		return WireJob{}, fmt.Errorf("publishing config blob: %w", err)
	}
	timeoutMS := timeout.Milliseconds()
	if timeout > 0 && timeoutMS == 0 {
		// A sub-millisecond budget must stay a budget: truncating it to 0
		// would read as "no timeout" on the worker.
		timeoutMS = 1
	}
	return WireJob{
		Key: jb.key, App: jb.app.Name, GPU: jb.gpu.Name, Sim: jb.sim,
		TraceBlob: traceHash, ConfigBlob: confHash,
		Opts:      wireOptions(jb.opts),
		TimeoutMS: timeoutMS,
	}, nil
}

// wireOptions flattens the result-affecting sim.Options into the wire
// form; wireOptions and simOptions are inverses for every field the
// service sets.
func wireOptions(o sim.Options) WireOptions {
	return WireOptions{
		Kind:                int(o.Kind),
		HitRates:            int(o.HitRates),
		MaxCycles:           o.MaxCycles,
		LatencyScale:        o.LatencyScale,
		ExtraKernelOverhead: o.ExtraKernelOverhead,
		SampleBlocks:        o.SampleBlocks,
		EngineThreads:       o.EngineThreads,
		EpochCycles:         o.EpochCycles,
		SampleEnabled:       o.Sampling.Enabled,
		SampleFrac:          o.Sampling.BlockFraction,
		SampleStride:        o.Sampling.ReplayStride,
		SampleSeed:          o.Sampling.Seed,
	}
}

// simOptions rebuilds sim.Options from the wire form (the worker side of
// wireOptions).
func simOptions(w WireOptions) (sim.Options, error) {
	if w.Kind < int(sim.Detailed) || w.Kind > int(sim.L2Hybrid) {
		return sim.Options{}, fmt.Errorf("service: wire options: unknown simulator kind %d", w.Kind)
	}
	return sim.Options{
		Kind:                sim.Kind(w.Kind),
		HitRates:            sim.HitRateSource(w.HitRates),
		MaxCycles:           w.MaxCycles,
		LatencyScale:        w.LatencyScale,
		ExtraKernelOverhead: w.ExtraKernelOverhead,
		SampleBlocks:        w.SampleBlocks,
		EngineThreads:       w.EngineThreads,
		EpochCycles:         w.EpochCycles,
		Sampling: sim.Sampling{
			Enabled:       w.SampleEnabled,
			BlockFraction: w.SampleFrac,
			ReplayStride:  w.SampleStride,
			Seed:          w.SampleSeed,
		},
	}, nil
}

// startJob transitions a job to running and emits its event.
func (s *Service) startJob(sw *Sweep, i int) {
	sw.mu.Lock()
	sw.status[i].State = StateRunning
	st := sw.status[i]
	sw.appendEventLocked(Event{
		Type: "job", Job: i, App: st.App, GPU: st.GPU, Sim: st.Sim,
		State: StateRunning,
		Done:  sw.okJobs + sw.failed, Failed: sw.failed, Total: len(sw.jobs),
	})
	sw.mu.Unlock()
}

// finishJob records a job's terminal state, stores its canonical result,
// emits its event and returns its admission-control slot.
func (s *Service) finishJob(sw *Sweep, i int, val []byte, err error, cached bool) {
	sw.mu.Lock()
	st := &sw.status[i]
	st.Cached = cached
	switch {
	case err == nil:
		st.State = StateDone
		sw.result[i] = val
		sw.okJobs++
	case errors.Is(err, runner.ErrJobSkipped):
		st.State = StateSkipped
		st.Error = err.Error()
		sw.failed++
	default:
		st.State = StateFailed
		st.Error = err.Error()
		sw.failed++
	}
	ev := Event{
		Type: "job", Job: i, App: st.App, GPU: st.GPU, Sim: st.Sim,
		State: st.State, Cached: st.Cached, Error: st.Error,
		Done: sw.okJobs + sw.failed, Failed: sw.failed, Total: len(sw.jobs),
	}
	sw.appendEventLocked(ev)
	sw.mu.Unlock()

	s.mu.Lock()
	s.pending--
	s.mu.Unlock()
}

// appendEventLocked stamps, stores and broadcasts an event. Callers hold
// sw.mu.
func (sw *Sweep) appendEventLocked(ev Event) {
	ev.Seq = len(sw.events)
	sw.events = append(sw.events, ev)
	sw.cond.Broadcast()
}

// Status snapshots the sweep.
func (sw *Sweep) Status() Status {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	st := Status{
		ID: sw.id, Done: sw.done, Total: len(sw.jobs),
		Ok: sw.okJobs, Failed: sw.failed,
		Jobs: append([]JobStatus(nil), sw.status...),
	}
	for _, j := range st.Jobs {
		if j.Cached {
			st.Cached++
		}
	}
	return st
}

// WaitEvents blocks until the sweep has events beyond offset `from` (or
// is done, or ctx expires) and returns them plus whether the sweep is
// complete. A finished sweep returns its remaining events immediately;
// (nil, true, nil) means the stream is exhausted.
func (sw *Sweep) WaitEvents(ctx context.Context, from int) ([]Event, bool, error) {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	for len(sw.events) <= from && !sw.done {
		if err := ctx.Err(); err != nil {
			return nil, false, err
		}
		// Wake the cond wait when ctx is canceled: cond has no native
		// context support, so a watcher broadcasts on expiry.
		stop := context.AfterFunc(ctx, func() {
			sw.mu.Lock()
			defer sw.mu.Unlock()
			sw.cond.Broadcast()
		})
		sw.cond.Wait()
		stop()
	}
	if from > len(sw.events) {
		from = len(sw.events)
	}
	return append([]Event(nil), sw.events[from:]...), sw.done, nil
}

// Results renders the sweep's results: the canonical metric blocks of its
// succeeded jobs concatenated in job order. The bytes are deliberately
// free of anything run-dependent (cache hits, timings), so two identical
// submissions produce byte-identical bodies — the property the cache
// relies on and the end-to-end tests pin. An unfinished sweep has no
// results yet.
func (sw *Sweep) Results() ([]byte, error) {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	if !sw.done {
		return nil, fmt.Errorf("service: sweep %s still running", sw.id)
	}
	var out []byte
	for _, r := range sw.result {
		out = append(out, r...)
	}
	return out, nil
}
