package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"strings"
	"sync"
	"time"

	"swiftsim/internal/config"
	"swiftsim/internal/regress"
	"swiftsim/internal/runner"
	"swiftsim/internal/trace"
)

// Worker is the client side of the distributed execution plane: the
// loop behind cmd/swiftsim-worker. It registers with a swiftsimd
// daemon, long-polls for job leases, fetches each job's inputs from the
// content-addressed store (verifying their hashes locally), simulates
// on the in-process runner — reusing its panic isolation, per-job
// deadline and Progress.Result plumbing — and publishes the canonical
// result bytes back by hash.
//
// Correctness never depends on the worker: results are canonical and
// byte-stable, so any worker (or the daemon re-running locally)
// produces identical bytes for a job key; the lease protocol only
// decides who does the work and commits it first. A worker that dies
// simply stops heartbeating and its leases expire.
type Worker struct {
	cfg    WorkerConfig
	client *http.Client
	base   string

	id             string
	leaseTTL       time.Duration
	heartbeatEvery time.Duration

	mu     sync.Mutex
	active map[string]context.CancelFunc // lease id → job cancel
	stats  WorkerStats

	blobMu    sync.Mutex
	blobs     map[string][]byte
	blobOrder []string

	// execHook, when set (tests only), runs after a job is claimed and
	// before its simulation — fault-injection tests hold a worker here
	// and kill it mid-job.
	execHook func(WireJob)
}

// WorkerConfig tunes a Worker.
type WorkerConfig struct {
	// BaseURL is the daemon, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Name labels the worker in daemon-side accounting (defaults to
	// "worker").
	Name string
	// Jobs is the number of jobs executed concurrently (0 = 1).
	Jobs int
	// EngineThreads, when > 0, overrides each job's engine shard count
	// for this host. Safe by construction: results are byte-identical at
	// every shard count, so the override never changes what is
	// published.
	EngineThreads int
	// PollWait is the long-poll duration per claim request (0 = 25s).
	PollWait time.Duration
	// Client is the HTTP client (nil = a default with a timeout safely
	// above PollWait).
	Client *http.Client
}

// WorkerStats counts a worker's outcomes since Run started.
type WorkerStats struct {
	Claimed uint64 `json:"claimed"`
	Done    uint64 `json:"done"`
	Failed  uint64 `json:"failed"`
	// Lost counts leases the daemon revoked under this worker — expired
	// before a commit landed, or canceled — including commits rejected
	// by the fencing check.
	Lost uint64 `json:"lost"`
}

// maxWorkerBlobMemo bounds the worker's input-blob memo (trace and
// config blobs repeat across the jobs of a sweep).
const maxWorkerBlobMemo = 32

// NewWorker creates a Worker; Run starts it.
func NewWorker(cfg WorkerConfig) *Worker {
	if cfg.Name == "" {
		cfg.Name = "worker"
	}
	if cfg.Jobs <= 0 {
		cfg.Jobs = 1
	}
	if cfg.PollWait <= 0 {
		cfg.PollWait = 25 * time.Second
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Timeout: cfg.PollWait + 30*time.Second}
	}
	return &Worker{
		cfg:    cfg,
		client: client,
		base:   strings.TrimRight(cfg.BaseURL, "/"),
		active: make(map[string]context.CancelFunc),
		blobs:  make(map[string][]byte),
	}
}

// Stats snapshots the worker counters.
func (w *Worker) Stats() WorkerStats {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.stats
}

// Run registers and executes jobs until ctx is canceled (returning nil)
// or registration definitively fails (returning the error). Transient
// connection failures — the daemon not up yet, a daemon restart — are
// retried with a jittered backoff.
func (w *Worker) Run(ctx context.Context) error {
	if err := w.register(ctx); err != nil {
		return err
	}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done(); w.heartbeatLoop(ctx) }()
	for i := 0; i < w.cfg.Jobs; i++ {
		wg.Add(1)
		go func() { defer wg.Done(); w.claimLoop(ctx) }()
	}
	wg.Wait()
	return nil
}

// register obtains a worker id and the lease cadence, retrying
// transport errors until ctx expires.
func (w *Worker) register(ctx context.Context) error {
	var retry sleeper
	for {
		var resp struct {
			ID         string `json:"id"`
			LeaseTTLMS int64  `json:"lease_ttl_ms"`
			HeartbeatM int64  `json:"heartbeat_ms"`
		}
		code, err := w.postJSON(ctx, "/v1/workers", map[string]string{"name": w.cfg.Name}, &resp)
		switch {
		case err == nil && code == http.StatusOK && resp.ID != "":
			w.id = resp.ID
			w.leaseTTL = time.Duration(resp.LeaseTTLMS) * time.Millisecond
			w.heartbeatEvery = time.Duration(resp.HeartbeatM) * time.Millisecond
			if w.heartbeatEvery <= 0 {
				w.heartbeatEvery = w.leaseTTL / 3
			}
			if w.heartbeatEvery <= 0 {
				w.heartbeatEvery = time.Second
			}
			return nil
		case err == nil:
			// The daemon answered and said no: not a transient condition.
			return fmt.Errorf("service: worker registration rejected: HTTP %d", code)
		}
		if !retry.sleep(ctx, backoff()) {
			return fmt.Errorf("service: worker registration: %w (last error: %v)", ctx.Err(), err)
		}
	}
}

// backoff is a jittered retry delay; the jitter keeps a fleet that lost
// its daemon from reconnecting in lockstep.
func backoff() time.Duration {
	return 250*time.Millisecond + time.Duration(rand.IntN(500))*time.Millisecond
}

// sleeper is a reusable context-aware delay for retry loops. time.After
// allocates a fresh timer per attempt and keeps it live in the runtime
// until it fires even after the select has moved on — a worker whose
// daemon is down retries for the whole outage, churning timers the
// whole time. One sleeper per loop reuses a single timer instead.
type sleeper struct {
	t *time.Timer
}

// sleep waits for d or until ctx is done, reporting whether the full
// delay elapsed (false = canceled). Under this module's pre-1.23 timer
// semantics the cancel path must Stop the timer and drain the fired
// token if Stop lost the race, or the next Reset would return
// immediately off the stale token.
func (s *sleeper) sleep(ctx context.Context, d time.Duration) bool {
	if s.t == nil {
		s.t = time.NewTimer(d)
	} else {
		s.t.Reset(d)
	}
	select {
	case <-s.t.C:
		return true
	case <-ctx.Done():
		if !s.t.Stop() {
			<-s.t.C
		}
		return false
	}
}

// heartbeatLoop renews the worker's active leases on the daemon's
// cadence and cancels jobs whose lease the daemon revoked.
func (w *Worker) heartbeatLoop(ctx context.Context) {
	tick := time.NewTicker(w.heartbeatEvery)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
		}
		w.mu.Lock()
		leases := make([]string, 0, len(w.active))
		for id := range w.active {
			leases = append(leases, id)
		}
		w.mu.Unlock()
		var resp struct {
			Renewed []string `json:"renewed"`
			Lost    []string `json:"lost"`
		}
		code, err := w.postJSON(ctx, "/v1/workers/"+w.id+"/heartbeat", map[string]any{"leases": leases}, &resp)
		if err != nil || code != http.StatusOK {
			continue // transient; the next tick retries well within the TTL
		}
		for _, id := range resp.Lost {
			w.mu.Lock()
			cancel := w.active[id]
			if cancel != nil {
				w.stats.Lost++
			}
			w.mu.Unlock()
			if cancel != nil {
				cancel() // the job is no longer ours: stop burning cycles on it
			}
		}
	}
}

// claimLoop long-polls for jobs and executes them one at a time.
func (w *Worker) claimLoop(ctx context.Context) {
	var retry sleeper
	for ctx.Err() == nil {
		job, ok, err := w.claim(ctx)
		if err != nil {
			if !retry.sleep(ctx, backoff()) {
				return
			}
			continue
		}
		if !ok {
			continue // long poll ran out; poll again
		}
		w.mu.Lock()
		w.stats.Claimed++
		w.mu.Unlock()
		w.execute(ctx, job)
	}
}

// claim issues one long-poll claim request.
func (w *Worker) claim(ctx context.Context) (WireJob, bool, error) {
	url := fmt.Sprintf("%s/v1/workers/%s/claim?wait=%s", w.base, w.id, w.cfg.PollWait)
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, nil)
	if err != nil {
		return WireJob{}, false, err
	}
	resp, err := w.client.Do(req)
	if err != nil {
		return WireJob{}, false, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusNoContent:
		io.Copy(io.Discard, resp.Body)
		return WireJob{}, false, nil
	case http.StatusOK:
		var job WireJob
		if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
			return WireJob{}, false, fmt.Errorf("decoding claim: %w", err)
		}
		return job, true, nil
	default:
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return WireJob{}, false, fmt.Errorf("claim: HTTP %d: %s", resp.StatusCode, bytes.TrimSpace(body))
	}
}

// execute runs one leased job end to end. A failure to even assemble the
// job (unfetchable blobs, bad options) is reported like a simulation
// error; a canceled context (worker shutdown or revoked lease) is
// reported to no one — the lease protocol handles our disappearance.
func (w *Worker) execute(ctx context.Context, job WireJob) {
	jctx, cancel := context.WithCancel(ctx)
	defer cancel()
	w.mu.Lock()
	w.active[job.LeaseID] = cancel
	w.mu.Unlock()
	defer func() {
		w.mu.Lock()
		delete(w.active, job.LeaseID)
		w.mu.Unlock()
	}()

	if hook := w.execHook; hook != nil {
		hook(job)
	}

	val, err := w.runJob(jctx, job)
	if jctx.Err() != nil {
		// Dying (or fenced off): report nothing and let the lease speak.
		return
	}
	if err != nil {
		w.count(func(s *WorkerStats) { s.Failed++ })
		w.report(ctx, "/v1/leases/"+job.LeaseID+"/error",
			map[string]any{"token": job.Token, "error": err.Error()})
		return
	}
	hash, err := w.publish(ctx, val)
	if err != nil {
		w.count(func(s *WorkerStats) { s.Failed++ })
		w.report(ctx, "/v1/leases/"+job.LeaseID+"/error",
			map[string]any{"token": job.Token, "error": fmt.Sprintf("publishing result: %v", err)})
		return
	}
	w.count(func(s *WorkerStats) { s.Done++ })
	w.report(ctx, "/v1/leases/"+job.LeaseID+"/result",
		map[string]any{"token": job.Token, "result": hash})
}

// runJob fetches, assembles and simulates one job, returning its
// canonical result bytes.
func (w *Worker) runJob(ctx context.Context, job WireJob) ([]byte, error) {
	traceData, err := w.fetchBlob(ctx, job.TraceBlob)
	if err != nil {
		return nil, fmt.Errorf("trace blob: %w", err)
	}
	confData, err := w.fetchBlob(ctx, job.ConfigBlob)
	if err != nil {
		return nil, fmt.Errorf("config blob: %w", err)
	}
	app, err := trace.Read(bytes.NewReader(traceData))
	if err != nil {
		return nil, fmt.Errorf("parsing trace: %w", err)
	}
	gpu, err := config.Parse(bytes.NewReader(confData))
	if err != nil {
		return nil, fmt.Errorf("parsing config: %w", err)
	}
	opts, err := simOptions(job.Opts)
	if err != nil {
		return nil, err
	}
	if w.cfg.EngineThreads > 0 {
		opts.EngineThreads = w.cfg.EngineThreads
	}

	// The runner brings panic isolation, the per-job deadline and the
	// Progress.Result hook — the same guarantees local execution has.
	var out []byte
	var jobErr error
	runner.Run([]runner.Job{{App: app, GPU: gpu, Opts: opts}}, 1, runner.Options{
		Ctx:        ctx,
		JobTimeout: time.Duration(job.TimeoutMS) * time.Millisecond,
		OnProgress: func(p runner.Progress) {
			if p.Err != nil {
				jobErr = p.Err
				return
			}
			out = regress.Canonical(p.Result)
		},
	})
	if jobErr != nil {
		return nil, jobErr
	}
	return out, nil
}

// fetchBlob gets a blob from the daemon's store, verifying its content
// hash locally — the wire and the daemon's disk are both untrusted.
func (w *Worker) fetchBlob(ctx context.Context, hash string) ([]byte, error) {
	w.blobMu.Lock()
	if data, ok := w.blobs[hash]; ok {
		w.blobMu.Unlock()
		return data, nil
	}
	w.blobMu.Unlock()

	req, err := http.NewRequestWithContext(ctx, http.MethodGet, w.base+"/v1/store/"+hash, nil)
	if err != nil {
		return nil, err
	}
	resp, err := w.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("fetching %s: HTTP %d", hash, resp.StatusCode)
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxBlobBytes+1))
	if err != nil {
		return nil, err
	}
	if BlobHash(data) != hash {
		return nil, fmt.Errorf("%w: fetched %s", ErrBlobCorrupt, hash)
	}

	w.blobMu.Lock()
	if _, ok := w.blobs[hash]; !ok {
		if len(w.blobOrder) >= maxWorkerBlobMemo {
			delete(w.blobs, w.blobOrder[0])
			w.blobOrder = w.blobOrder[1:]
		}
		w.blobs[hash] = data
		w.blobOrder = append(w.blobOrder, hash)
	}
	w.blobMu.Unlock()
	return data, nil
}

// publish uploads the canonical result bytes and returns their hash.
func (w *Worker) publish(ctx context.Context, data []byte) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.base+"/v1/store", bytes.NewReader(data))
	if err != nil {
		return "", err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := w.client.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	var body struct {
		Hash string `json:"hash"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil || resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("store publish: HTTP %d (%v)", resp.StatusCode, err)
	}
	return body.Hash, nil
}

// report posts a commit (result or error) for a lease. A 409 means the
// lease is stale — the job was requeued or canceled while we worked; the
// work is discarded and only a counter moves.
func (w *Worker) report(ctx context.Context, path string, body map[string]any) {
	code, err := w.postJSON(ctx, path, body, nil)
	if err == nil && code == http.StatusConflict {
		w.count(func(s *WorkerStats) { s.Lost++ })
	}
}

// count mutates the stats under the lock.
func (w *Worker) count(f func(*WorkerStats)) {
	w.mu.Lock()
	f(&w.stats)
	w.mu.Unlock()
}

// postJSON posts a JSON body and decodes a JSON response into out (when
// non-nil and the response is 200). It returns the status code; err is
// transport-level only.
func (w *Worker) postJSON(ctx context.Context, path string, body any, out any) (int, error) {
	data, err := json.Marshal(body)
	if err != nil {
		return 0, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.base+path, bytes.NewReader(data))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := w.client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return resp.StatusCode, err
		}
		return resp.StatusCode, nil
	}
	io.Copy(io.Discard, resp.Body)
	return resp.StatusCode, nil
}
