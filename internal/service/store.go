package service

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// Store is the service's content-addressed blob store: immutable byte
// blobs named by the hex SHA-256 of their content, one file per blob
// under a directory. It is the machine-neutral half of the distributed
// execution plane — the daemon publishes trace and config blobs into it,
// workers fetch them over HTTP by hash and publish canonical result
// blobs back the same way, and the result cache (cache.go) stores only
// small hash references into it.
//
// Addressing by content makes the store self-verifying: Get re-hashes
// the bytes it reads and a mismatch (disk corruption, a torn write from
// a foreign process) evicts the blob and reports ErrBlobCorrupt instead
// of ever serving bad bytes. Writes are atomic (tmp + rename) and
// idempotent — putting a blob that already exists is a no-op — so any
// number of daemons and workers can share a directory safely.
type Store struct {
	dir string

	mu    sync.Mutex
	stats StoreStats
}

// StoreStats counts blob-store outcomes since process start.
type StoreStats struct {
	// Puts counts blobs written (idempotent re-puts of an existing blob
	// are counted under Dups instead). Gets counts successful reads.
	Puts uint64 `json:"puts"`
	Dups uint64 `json:"dups"`
	Gets uint64 `json:"gets"`
	// Corrupt counts blobs whose content no longer matched their hash on
	// read; each was evicted rather than served.
	Corrupt uint64 `json:"corrupt"`
}

// Blob-store sentinel errors.
var (
	// ErrBlobNotFound reports a hash with no stored blob (404 over HTTP).
	ErrBlobNotFound = errors.New("service: blob not found")
	// ErrBlobCorrupt reports a stored blob whose bytes no longer hash to
	// its name; the blob has been evicted.
	ErrBlobCorrupt = errors.New("service: blob corrupt (content hash mismatch), evicted")
)

// BlobHash names a blob: the lowercase hex SHA-256 of its content.
func BlobHash(data []byte) string {
	h := sha256.Sum256(data)
	return hex.EncodeToString(h[:])
}

// validBlobHash reports whether h is a well-formed blob name — exactly 64
// lowercase hex digits. Rejecting anything else keeps path traversal out
// of the store directory.
func validBlobHash(h string) bool {
	if len(h) != 64 {
		return false
	}
	for i := 0; i < len(h); i++ {
		c := h[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// NewStore opens (creating if needed) a store rooted at dir.
func NewStore(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("service: store dir: %w", err)
	}
	return &Store{dir: dir}, nil
}

// path maps a hash to its blob file.
func (st *Store) path(hash string) string {
	return filepath.Join(st.dir, hash+".blob")
}

// Put stores data under its content hash and returns the hash. Storing
// a blob that already exists is a cheap no-op, so callers re-publish
// freely (the same trace blob for every job of a sweep, the same result
// blob from two racing workers).
func (st *Store) Put(data []byte) (string, error) {
	hash := BlobHash(data)
	if _, err := os.Stat(st.path(hash)); err == nil {
		st.count(func(s *StoreStats) { s.Dups++ })
		return hash, nil
	}
	tmp, err := os.CreateTemp(st.dir, "put-*.tmp")
	if err != nil {
		return "", err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return "", err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return "", err
	}
	if err := os.Rename(tmp.Name(), st.path(hash)); err != nil {
		os.Remove(tmp.Name())
		return "", err
	}
	st.count(func(s *StoreStats) { s.Puts++ })
	return hash, nil
}

// Get returns the blob named hash after verifying its content still
// hashes to its name. A missing or malformed hash is ErrBlobNotFound; a
// blob that fails verification is evicted from disk and reported as
// ErrBlobCorrupt — the caller treats it as a miss and recomputes, never
// serving bad bytes.
func (st *Store) Get(hash string) ([]byte, error) {
	if !validBlobHash(hash) {
		return nil, fmt.Errorf("%w: malformed hash %q", ErrBlobNotFound, hash)
	}
	data, err := os.ReadFile(st.path(hash))
	if err != nil {
		return nil, fmt.Errorf("%w: %s", ErrBlobNotFound, hash)
	}
	if BlobHash(data) != hash {
		os.Remove(st.path(hash))
		st.count(func(s *StoreStats) { s.Corrupt++ })
		return nil, fmt.Errorf("%w: %s", ErrBlobCorrupt, hash)
	}
	st.count(func(s *StoreStats) { s.Gets++ })
	return data, nil
}

// Has reports whether a well-formed hash names a stored blob (without
// verifying its content; Get does that).
func (st *Store) Has(hash string) bool {
	if !validBlobHash(hash) {
		return false
	}
	_, err := os.Stat(st.path(hash))
	return err == nil
}

// count mutates the stats under the lock.
func (st *Store) count(f func(*StoreStats)) {
	st.mu.Lock()
	f(&st.stats)
	st.mu.Unlock()
}

// Stats returns a snapshot of the store counters.
func (st *Store) Stats() StoreStats {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.stats
}
