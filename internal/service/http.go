package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
)

// NewHandler serves the service's HTTP/JSON API:
//
//	POST /v1/sweeps             submit a Spec        → 202 {"id":..., "jobs":...}
//	GET  /v1/sweeps/{id}        poll a sweep         → 200 Status
//	GET  /v1/sweeps/{id}/events stream progress      → 200 NDJSON Events
//	GET  /v1/sweeps/{id}/results fetch results       → 200 canonical metrics
//	GET  /v1/stats              service counters     → 200 Stats
//	GET  /healthz               liveness             → 200 "ok"
//
// Error mapping: invalid specs → 400, unknown sweeps → 404, a full queue
// → 429 (with Retry-After), draining → 503.
func NewHandler(s *Service) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sweeps", func(w http.ResponseWriter, r *http.Request) {
		var spec Spec
		if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("decoding spec: %w", err))
			return
		}
		sw, err := s.Submit(spec)
		if err != nil {
			switch {
			case errors.Is(err, ErrQueueFull):
				w.Header().Set("Retry-After", "1")
				httpError(w, http.StatusTooManyRequests, err)
			case errors.Is(err, ErrDraining):
				httpError(w, http.StatusServiceUnavailable, err)
			default:
				httpError(w, http.StatusBadRequest, err)
			}
			return
		}
		writeJSON(w, http.StatusAccepted, map[string]any{
			"id": sw.ID(), "jobs": len(sw.jobs),
		})
	})

	mux.HandleFunc("GET /v1/sweeps/{id}", func(w http.ResponseWriter, r *http.Request) {
		sw, err := s.Sweep(r.PathValue("id"))
		if err != nil {
			httpError(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, http.StatusOK, sw.Status())
	})

	mux.HandleFunc("GET /v1/sweeps/{id}/events", func(w http.ResponseWriter, r *http.Request) {
		sw, err := s.Sweep(r.PathValue("id"))
		if err != nil {
			httpError(w, http.StatusNotFound, err)
			return
		}
		from := 0
		if v := r.URL.Query().Get("from"); v != "" {
			if from, err = strconv.Atoi(v); err != nil || from < 0 {
				httpError(w, http.StatusBadRequest, fmt.Errorf("bad from=%q", v))
				return
			}
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		flusher, _ := w.(http.Flusher)
		enc := json.NewEncoder(w)
		for {
			evs, done, err := sw.WaitEvents(r.Context(), from)
			if err != nil {
				return // client went away
			}
			for _, ev := range evs {
				if err := enc.Encode(ev); err != nil {
					return
				}
			}
			from += len(evs)
			if flusher != nil {
				flusher.Flush()
			}
			if done {
				return
			}
		}
	})

	mux.HandleFunc("GET /v1/sweeps/{id}/results", func(w http.ResponseWriter, r *http.Request) {
		sw, err := s.Sweep(r.PathValue("id"))
		if err != nil {
			httpError(w, http.StatusNotFound, err)
			return
		}
		body, err := sw.Results()
		if err != nil {
			httpError(w, http.StatusConflict, err)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.WriteHeader(http.StatusOK)
		w.Write(body)
	})

	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Stats())
	})

	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})

	return mux
}

// writeJSON writes v as a JSON response.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

// httpError writes a JSON error body so clients never have to parse
// free-form text.
func httpError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
