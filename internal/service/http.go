package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"strconv"
	"time"
)

// maxBlobBytes bounds a published blob (a canonical result or a trace
// serialization); anything larger is rejected before it is buffered.
const maxBlobBytes = 256 << 20

// NewHandler serves the service's HTTP/JSON API:
//
//	POST /v1/sweeps             submit a Spec        → 202 {"id":..., "jobs":...}
//	GET  /v1/sweeps/{id}        poll a sweep         → 200 Status
//	GET  /v1/sweeps/{id}/events stream progress      → 200 NDJSON Events
//	GET  /v1/sweeps/{id}/results fetch results       → 200 canonical metrics
//	GET  /v1/stats              service counters     → 200 Stats
//	GET  /healthz               liveness             → 200 "ok"
//
// and the distributed execution plane (lease.go, worker.go):
//
//	POST /v1/workers                  register         → 200 {"id","lease_ttl_ms","heartbeat_ms"}
//	POST /v1/workers/{id}/claim       long-poll a job  → 200 WireJob | 204 none
//	POST /v1/workers/{id}/heartbeat   renew leases     → 200 {"renewed","lost"}
//	POST /v1/leases/{id}/result       commit a result  → 200 {} (by store hash)
//	POST /v1/leases/{id}/error        report a failure → 200 {}
//	GET  /v1/store/{hash}             fetch a blob     → 200 bytes
//	POST /v1/store                    publish a blob   → 200 {"hash"}
//
// Error mapping: invalid specs → 400, unknown sweeps/workers/blobs →
// 404, stale leases (fencing violations) → 409, a full queue → 429
// (with a jittered Retry-After), draining → 503.
func NewHandler(s *Service) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sweeps", func(w http.ResponseWriter, r *http.Request) {
		var spec Spec
		if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("decoding spec: %w", err))
			return
		}
		sw, err := s.Submit(spec)
		if err != nil {
			switch {
			case errors.Is(err, ErrQueueFull):
				w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds()))
				httpError(w, http.StatusTooManyRequests, err)
			case errors.Is(err, ErrDraining):
				httpError(w, http.StatusServiceUnavailable, err)
			default:
				httpError(w, http.StatusBadRequest, err)
			}
			return
		}
		writeJSON(w, http.StatusAccepted, map[string]any{
			"id": sw.ID(), "jobs": len(sw.jobs),
		})
	})

	mux.HandleFunc("GET /v1/sweeps/{id}", func(w http.ResponseWriter, r *http.Request) {
		sw, err := s.Sweep(r.PathValue("id"))
		if err != nil {
			httpError(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, http.StatusOK, sw.Status())
	})

	mux.HandleFunc("GET /v1/sweeps/{id}/events", func(w http.ResponseWriter, r *http.Request) {
		sw, err := s.Sweep(r.PathValue("id"))
		if err != nil {
			httpError(w, http.StatusNotFound, err)
			return
		}
		from := 0
		if v := r.URL.Query().Get("from"); v != "" {
			if from, err = strconv.Atoi(v); err != nil || from < 0 {
				httpError(w, http.StatusBadRequest, fmt.Errorf("bad from=%q", v))
				return
			}
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		flusher, _ := w.(http.Flusher)
		enc := json.NewEncoder(w)
		for {
			evs, done, err := sw.WaitEvents(r.Context(), from)
			if err != nil {
				return // client went away
			}
			for _, ev := range evs {
				if err := enc.Encode(ev); err != nil {
					return
				}
			}
			from += len(evs)
			if flusher != nil {
				flusher.Flush()
			}
			if done {
				return
			}
		}
	})

	mux.HandleFunc("GET /v1/sweeps/{id}/results", func(w http.ResponseWriter, r *http.Request) {
		sw, err := s.Sweep(r.PathValue("id"))
		if err != nil {
			httpError(w, http.StatusNotFound, err)
			return
		}
		body, err := sw.Results()
		if err != nil {
			httpError(w, http.StatusConflict, err)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.WriteHeader(http.StatusOK)
		w.Write(body)
	})

	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Stats())
	})

	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})

	// ---- Distributed execution plane ----

	mux.HandleFunc("POST /v1/workers", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Name string `json:"name"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil && !errors.Is(err, io.EOF) {
			httpError(w, http.StatusBadRequest, fmt.Errorf("decoding registration: %w", err))
			return
		}
		id := s.board.Register(req.Name)
		writeJSON(w, http.StatusOK, map[string]any{
			"id":           id,
			"lease_ttl_ms": s.board.ttl.Milliseconds(),
			// Three heartbeats per TTL tolerate two lost in a row.
			"heartbeat_ms": (s.board.ttl / 3).Milliseconds(),
		})
	})

	mux.HandleFunc("POST /v1/workers/{id}/claim", func(w http.ResponseWriter, r *http.Request) {
		wait := 25 * time.Second
		if v := r.URL.Query().Get("wait"); v != "" {
			d, err := time.ParseDuration(v)
			if err != nil || d < 0 {
				httpError(w, http.StatusBadRequest, fmt.Errorf("bad wait=%q", v))
				return
			}
			if d > time.Minute {
				d = time.Minute
			}
			wait = d
		}
		ctx, cancel := context.WithTimeout(r.Context(), wait)
		defer cancel()
		job, ok, err := s.board.Claim(ctx, r.PathValue("id"))
		switch {
		case errors.Is(err, ErrUnknownWorker):
			httpError(w, http.StatusNotFound, err)
		case errors.Is(err, errBoardClosed):
			httpError(w, http.StatusServiceUnavailable, err)
		case err != nil:
			httpError(w, http.StatusInternalServerError, err)
		case !ok:
			w.WriteHeader(http.StatusNoContent)
		default:
			writeJSON(w, http.StatusOK, job)
		}
	})

	mux.HandleFunc("POST /v1/workers/{id}/heartbeat", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Leases []string `json:"leases"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil && !errors.Is(err, io.EOF) {
			httpError(w, http.StatusBadRequest, fmt.Errorf("decoding heartbeat: %w", err))
			return
		}
		renewed, lost, err := s.board.Heartbeat(r.PathValue("id"), req.Leases)
		if err != nil {
			httpError(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"renewed": renewed, "lost": lost})
	})

	mux.HandleFunc("POST /v1/leases/{id}/result", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Token  uint64 `json:"token"`
			Result string `json:"result"` // store hash of the canonical bytes
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("decoding result: %w", err))
			return
		}
		// The result must be readable (and pass its integrity check)
		// before the lease commits — a commit is irrevocable.
		data, err := s.store.Get(req.Result)
		if err != nil {
			httpError(w, http.StatusNotFound, fmt.Errorf("result blob: %w", err))
			return
		}
		if err := s.board.Fulfill(r.PathValue("id"), req.Token, data); err != nil {
			httpError(w, http.StatusConflict, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{})
	})

	mux.HandleFunc("POST /v1/leases/{id}/error", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Token uint64 `json:"token"`
			Error string `json:"error"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("decoding error report: %w", err))
			return
		}
		if req.Error == "" {
			req.Error = "unspecified worker error"
		}
		if err := s.board.Fail(r.PathValue("id"), req.Token, req.Error); err != nil {
			httpError(w, http.StatusConflict, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{})
	})

	mux.HandleFunc("GET /v1/store/{hash}", func(w http.ResponseWriter, r *http.Request) {
		data, err := s.store.Get(r.PathValue("hash"))
		if err != nil {
			// A corrupt blob was evicted; to the client both cases read
			// as absence.
			httpError(w, http.StatusNotFound, err)
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		w.WriteHeader(http.StatusOK)
		w.Write(data)
	})

	mux.HandleFunc("POST /v1/store", func(w http.ResponseWriter, r *http.Request) {
		data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBlobBytes))
		if err != nil {
			httpError(w, http.StatusRequestEntityTooLarge, fmt.Errorf("reading blob: %w", err))
			return
		}
		hash, err := s.store.Put(data)
		if err != nil {
			httpError(w, http.StatusInternalServerError, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"hash": hash})
	})

	return mux
}

// retryAfterSeconds jitters the 429 Retry-After value uniformly over
// [1,3] seconds. A constant would synchronize a whole worker/client
// fleet shed at the same instant into retrying in lockstep and being
// shed again together; the jitter spreads the retry wave out.
func retryAfterSeconds() int { return 1 + rand.IntN(3) }

// writeJSON writes v as a JSON response.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

// httpError writes a JSON error body so clients never have to parse
// free-form text.
func httpError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
