package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"swiftsim/internal/sim"
)

// The distributed test rig: a Remote-enabled daemon behind httptest and
// in-process Worker loops against it. Fault injection goes through the
// worker's execHook (hold a worker mid-job, then kill its context) and
// through raw HTTP requests impersonating stale workers.

// remoteConfig is the daemon configuration for distributed tests: short
// leases so worker-loss scenarios resolve in test time.
func remoteConfig(ttl time.Duration, retries int) Config {
	return Config{Remote: RemoteConfig{Enabled: true, LeaseTTL: ttl, MaxAttempts: retries}}
}

// startTestWorker runs a Worker against the daemon URL on its own
// context. The worker is stopped (and its Run awaited) at cleanup; tests
// that kill it earlier use the returned cancel and done channel.
func startTestWorker(t *testing.T, url string, hook func(WireJob)) (*Worker, context.CancelFunc, chan struct{}) {
	t.Helper()
	w := NewWorker(WorkerConfig{BaseURL: url, Name: t.Name(), PollWait: 200 * time.Millisecond})
	w.execHook = hook
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		if err := w.Run(ctx); err != nil {
			t.Errorf("worker Run: %v", err)
		}
	}()
	t.Cleanup(func() {
		cancel()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Error("worker did not stop")
		}
	})
	return w, cancel, done
}

// localResults runs spec on a plain in-process service and returns its
// canonical result bytes — the reference every distributed run must
// reproduce byte for byte.
func localResults(t *testing.T, spec Spec) []byte {
	t.Helper()
	s := newService(t, Config{})
	sw, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, sw)
	if st := sw.Status(); st.Failed != 0 {
		t.Fatalf("local reference run failed: %+v", st)
	}
	res, err := sw.Results()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestDistributedEndToEnd is the happy-path acceptance scenario: a
// Remote daemon, two workers, a multi-job sweep executed entirely on the
// lease plane, canonical results byte-identical to a single-process run,
// and the NDJSON progress stream (with ?from= resume) relaying
// worker-executed job transitions.
func TestDistributedEndToEnd(t *testing.T) {
	spec := `{"apps":["BFS","SM"],"gpus":["RTX2080Ti"],"sims":["memory"],"scale":0.1}`
	want := localResults(t, Spec{Apps: []string{"BFS", "SM"}, GPUs: []string{"RTX2080Ti"}, Sims: []string{"memory"}, Scale: 0.1})

	_, srv := newHTTPService(t, remoteConfig(5*time.Second, 3))
	startTestWorker(t, srv.URL, nil)
	startTestWorker(t, srv.URL, nil)

	code, body := postSweep(t, srv, spec)
	if code != http.StatusAccepted {
		t.Fatalf("POST = %d: %v", code, body)
	}
	id := body["id"].(string)
	st := waitHTTPDone(t, srv, id)
	if st.Ok != 2 || st.Failed != 0 || st.Cached != 0 {
		t.Fatalf("remote sweep status: %+v", st)
	}
	code, res := getBody(t, srv.URL+"/v1/sweeps/"+id+"/results")
	if code != http.StatusOK {
		t.Fatalf("results: HTTP %d", code)
	}
	if !bytes.Equal(res, want) {
		t.Errorf("remote results differ from the single-process run:\nremote:\n%s\nlocal:\n%s", res, want)
	}

	// The progress relay: every job went pending → running → done through
	// remote execution, and the stream is resumable mid-way.
	resp, err := http.Get(srv.URL + "/v1/sweeps/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var events []Event
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		events = append(events, ev)
	}
	running, doneEv := 0, 0
	for i, ev := range events {
		if ev.Seq != i {
			t.Errorf("event %d has seq %d", i, ev.Seq)
		}
		switch {
		case ev.Type == "job" && ev.State == StateRunning:
			running++
		case ev.Type == "job" && ev.State == StateDone:
			doneEv++
		}
	}
	if running != 2 || doneEv != 2 {
		t.Errorf("event stream saw %d running / %d done transitions, want 2/2", running, doneEv)
	}
	last := events[len(events)-1]
	if last.Type != "sweep" || last.Done != 2 || last.Failed != 0 {
		t.Errorf("final event = %+v, want sweep tally 2/0", last)
	}
	_, tail := getBody(t, srv.URL+"/v1/sweeps/"+id+"/events?from="+fmt.Sprint(len(events)-1))
	var resumed Event
	if err := json.Unmarshal(bytes.TrimSpace(tail), &resumed); err != nil {
		t.Fatalf("resumed stream %q: %v", tail, err)
	}
	if resumed.Seq != len(events)-1 || resumed.Type != "sweep" {
		t.Errorf("resumed event = %+v, want the final sweep event", resumed)
	}

	// Identical resubmission is a pure cache hit: no lease round-trip.
	code, body = postSweep(t, srv, spec)
	if code != http.StatusAccepted {
		t.Fatalf("second POST = %d", code)
	}
	st2 := waitHTTPDone(t, srv, body["id"].(string))
	if st2.Cached != 2 {
		t.Errorf("resubmission not served from cache: %+v", st2)
	}
}

// TestDistributedWorkerKilledMidJob is the fault-injection acceptance
// scenario: worker 1 claims the job and dies mid-simulation (context
// killed, heartbeats stop); the lease expires and the job requeues;
// worker 2 — started only after the kill — completes the sweep; the
// dead worker's late commit for its stale lease is rejected by the
// fencing check; and the results are byte-identical to a single-process
// run.
func TestDistributedWorkerKilledMidJob(t *testing.T) {
	want := localResults(t, smallSpec())
	_, srv := newHTTPService(t, remoteConfig(300*time.Millisecond, 3))

	claimed := make(chan WireJob, 1)
	release := make(chan struct{})
	_, cancel1, done1 := startTestWorker(t, srv.URL, func(job WireJob) {
		claimed <- job
		<-release
	})

	code, body := postSweep(t, srv, specJSON)
	if code != http.StatusAccepted {
		t.Fatalf("POST = %d: %v", code, body)
	}
	id := body["id"].(string)

	var stale WireJob
	select {
	case stale = <-claimed:
	case <-time.After(30 * time.Second):
		t.Fatal("worker 1 never claimed the job")
	}

	// Kill worker 1 mid-job: cancel its context (stops heartbeats), then
	// unblock the hook so its goroutines can exit. The canceled worker
	// reports nothing — requeue is purely the daemon noticing the silence.
	cancel1()
	close(release)
	select {
	case <-done1:
	case <-time.After(10 * time.Second):
		t.Fatal("killed worker did not exit")
	}

	w2, _, _ := startTestWorker(t, srv.URL, nil)
	st := waitHTTPDone(t, srv, id)
	if st.Ok != 1 || st.Failed != 0 {
		t.Fatalf("sweep after worker loss: %+v", st)
	}
	code, res := getBody(t, srv.URL+"/v1/sweeps/"+id+"/results")
	if code != http.StatusOK || !bytes.Equal(res, want) {
		t.Errorf("requeued result differs from the single-process run (HTTP %d):\n%s", code, res)
	}
	if ws := w2.Stats(); ws.Done != 1 {
		t.Errorf("worker 2 stats = %+v, want the requeued job done here", ws)
	}

	// The presumed-dead worker's late result must lose to the fence. The
	// blob publishes fine (the store is content-addressed and dumb); the
	// commit is what gets rejected.
	hash := postStore(t, srv, []byte("late result from a zombie"))
	code, resp := postLeaseResult(t, srv, stale.LeaseID, stale.Token, hash)
	if code != http.StatusConflict {
		t.Errorf("stale commit = HTTP %d (%s), want 409", code, resp)
	}

	var stats Stats
	_, data := getBody(t, srv.URL+"/v1/stats")
	if err := json.Unmarshal(data, &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Remote.Expired < 1 {
		t.Errorf("stats.Remote.Expired = %d, want >= 1 (the killed worker's lease)", stats.Remote.Expired)
	}
	if stats.Remote.Stale < 1 {
		t.Errorf("stats.Remote.Stale = %d, want >= 1 (the rejected late commit)", stats.Remote.Stale)
	}
}

// TestDistributedRetryBudgetExhausted: when every worker that claims a
// job dies, the job fails terminally after MaxAttempts leases instead of
// requeueing forever.
func TestDistributedRetryBudgetExhausted(t *testing.T) {
	_, srv := newHTTPService(t, remoteConfig(200*time.Millisecond, 2))

	code, body := postSweep(t, srv, specJSON)
	if code != http.StatusAccepted {
		t.Fatalf("POST = %d", code)
	}

	// Two generations of workers, each claiming the job and dying mid-run
	// — exactly the MaxAttempts budget.
	for i := 0; i < 2; i++ {
		claimed := make(chan WireJob, 1)
		release := make(chan struct{})
		_, cancel, done := startTestWorker(t, srv.URL, func(job WireJob) {
			claimed <- job
			<-release
		})
		select {
		case <-claimed:
		case <-time.After(30 * time.Second):
			t.Fatalf("worker generation %d never claimed the job", i)
		}
		cancel() // heartbeats stop; the lease expires and requeues
		close(release)
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Fatalf("worker generation %d did not exit", i)
		}
	}

	st := waitHTTPDone(t, srv, body["id"].(string))
	if st.Failed != 1 || st.Ok != 0 {
		t.Fatalf("status = %+v, want the job terminally failed", st)
	}
	if e := st.Jobs[0].Error; !strings.Contains(e, "retry budget exhausted") {
		t.Errorf("job error = %q, want the retry-budget failure", e)
	}
}

// TestDistributedJobError: a deterministic simulation failure on the
// worker (an unmeetable per-job deadline) is reported back over the
// error endpoint and fails the job terminally — no requeue, the error
// text preserved.
func TestDistributedJobError(t *testing.T) {
	_, srv := newHTTPService(t, remoteConfig(5*time.Second, 3))
	w, _, _ := startTestWorker(t, srv.URL, nil)

	// A 1ns budget rides the wire as the 1ms floor; the scale-1.0 job
	// takes tens of milliseconds, so the deadline fails it deterministically.
	code, body := postSweep(t, srv, `{"apps":["BFS"],"gpus":["RTX2080Ti"],"sims":["memory"],"scale":1,"job_timeout":"1ns"}`)
	if code != http.StatusAccepted {
		t.Fatalf("POST = %d", code)
	}
	st := waitHTTPDone(t, srv, body["id"].(string))
	if st.Failed != 1 || st.Ok != 0 {
		t.Fatalf("status = %+v, want 1 failed", st)
	}
	if st.Jobs[0].Error == "" {
		t.Error("failed job carries no error text")
	}
	if ws := w.Stats(); ws.Failed != 1 || ws.Done != 0 {
		t.Errorf("worker stats = %+v, want 1 failed", ws)
	}
}

// TestDistributedCorruptResultRerun is the store-integrity satellite
// end to end: a result blob corrupted on the daemon's disk is caught by
// the content hash on the next claim, evicted (blob and ref), and the
// job transparently re-runs on a worker — producing the same bytes.
func TestDistributedCorruptResultRerun(t *testing.T) {
	dir := t.TempDir()
	cfg := remoteConfig(5*time.Second, 3)
	cfg.CacheDir = dir
	_, srv := newHTTPService(t, cfg)
	startTestWorker(t, srv.URL, nil)

	code, body := postSweep(t, srv, specJSON)
	if code != http.StatusAccepted {
		t.Fatalf("POST = %d", code)
	}
	waitHTTPDone(t, srv, body["id"].(string))
	_, res1 := getBody(t, srv.URL+"/v1/sweeps/"+body["id"].(string)+"/results")

	refs, err := filepath.Glob(filepath.Join(dir, "*.ref"))
	if err != nil || len(refs) != 1 {
		t.Fatalf("refs = %v (err %v), want exactly one", refs, err)
	}
	hash, err := os.ReadFile(refs[0])
	if err != nil {
		t.Fatal(err)
	}
	blob := filepath.Join(dir, "blobs", string(hash)+".blob")
	if err := os.WriteFile(blob, []byte("rot"), 0o644); err != nil {
		t.Fatal(err)
	}

	code, body = postSweep(t, srv, specJSON)
	if code != http.StatusAccepted {
		t.Fatalf("second POST = %d", code)
	}
	st := waitHTTPDone(t, srv, body["id"].(string))
	if st.Cached != 0 || st.Ok != 1 {
		t.Fatalf("status after corruption = %+v, want an uncached re-run", st)
	}
	_, res2 := getBody(t, srv.URL+"/v1/sweeps/"+body["id"].(string)+"/results")
	if !bytes.Equal(res1, res2) {
		t.Error("re-run after corruption produced different bytes")
	}
	var stats Stats
	_, data := getBody(t, srv.URL+"/v1/stats")
	if err := json.Unmarshal(data, &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Cache.Corrupt != 1 {
		t.Errorf("stats.Cache.Corrupt = %d, want 1", stats.Cache.Corrupt)
	}
}

// TestHTTPWorkerProtocol drives the worker-facing wire protocol with raw
// HTTP requests: registration, long-poll claims (both outcomes),
// heartbeat renewal, blob fetch/publish and result commit — pinning the
// status codes a non-Go worker implementation would program against.
func TestHTTPWorkerProtocol(t *testing.T) {
	_, srv := newHTTPService(t, remoteConfig(time.Minute, 3))

	// Register.
	var reg struct {
		ID         string `json:"id"`
		LeaseTTLMS int64  `json:"lease_ttl_ms"`
		Heartbeat  int64  `json:"heartbeat_ms"`
	}
	resp, err := http.Post(srv.URL+"/v1/workers", "application/json", strings.NewReader(`{"name":"proto"}`))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&reg); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("register: HTTP %d, %v", resp.StatusCode, err)
	}
	resp.Body.Close()
	if reg.ID == "" || reg.LeaseTTLMS != time.Minute.Milliseconds() || reg.Heartbeat <= 0 || reg.Heartbeat >= reg.LeaseTTLMS {
		t.Fatalf("registration = %+v, want an id and a heartbeat cadence within the TTL", reg)
	}

	// An empty board long-polls then reports no content; unknown workers
	// and malformed waits are 404/400.
	if code := postCode(t, srv.URL+"/v1/workers/"+reg.ID+"/claim?wait=10ms", ""); code != http.StatusNoContent {
		t.Errorf("empty claim = %d, want 204", code)
	}
	if code := postCode(t, srv.URL+"/v1/workers/w999/claim?wait=10ms", ""); code != http.StatusNotFound {
		t.Errorf("unknown worker claim = %d, want 404", code)
	}
	if code := postCode(t, srv.URL+"/v1/workers/"+reg.ID+"/claim?wait=banana", ""); code != http.StatusBadRequest {
		t.Errorf("bad wait claim = %d, want 400", code)
	}
	if code := postCode(t, srv.URL+"/v1/workers/w999/heartbeat", `{"leases":[]}`); code != http.StatusNotFound {
		t.Errorf("unknown worker heartbeat = %d, want 404", code)
	}

	// Submit a sweep; its one job lands on the board and the claim
	// delivers a fully populated wire descriptor.
	code, body := postSweep(t, srv, specJSON)
	if code != http.StatusAccepted {
		t.Fatalf("POST sweep = %d", code)
	}
	id := body["id"].(string)
	resp, err = http.Post(srv.URL+"/v1/workers/"+reg.ID+"/claim?wait=10s", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	var job WireJob
	if err := json.NewDecoder(resp.Body).Decode(&job); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("claim: HTTP %d, %v", resp.StatusCode, err)
	}
	resp.Body.Close()
	if job.Key == "" || job.LeaseID == "" || job.Token != 1 || job.Attempt != 0 {
		t.Fatalf("wire job = %+v, want key, lease, token 1, attempt 0", job)
	}
	if job.App != "BFS" || job.GPU != "RTX2080Ti" || job.Sim != sim.Memory.String() || job.Opts.Kind != int(sim.Memory) {
		t.Errorf("wire job labels = %s/%s/%s kind %d", job.App, job.GPU, job.Sim, job.Opts.Kind)
	}
	if !validBlobHash(job.TraceBlob) || !validBlobHash(job.ConfigBlob) {
		t.Fatalf("wire job blob refs = %q / %q, want content hashes", job.TraceBlob, job.ConfigBlob)
	}

	// Blob fetch: the store serves the published inputs under their
	// hashes; unknown and malformed hashes read as 404.
	code, data := getBody(t, srv.URL+"/v1/store/"+job.TraceBlob)
	if code != http.StatusOK || BlobHash(data) != job.TraceBlob {
		t.Errorf("trace blob fetch: HTTP %d, hash match %v", code, BlobHash(data) == job.TraceBlob)
	}
	if code, _ := getBody(t, srv.URL+"/v1/store/"+BlobHash([]byte("no such blob"))); code != http.StatusNotFound {
		t.Errorf("missing blob = %d, want 404", code)
	}
	if code, _ := getBody(t, srv.URL+"/v1/store/not-a-hash"); code != http.StatusNotFound {
		t.Errorf("malformed hash = %d, want 404", code)
	}

	// Heartbeat renews the held lease and flags unknown ones as lost.
	resp, err = http.Post(srv.URL+"/v1/workers/"+reg.ID+"/heartbeat", "application/json",
		strings.NewReader(`{"leases":["`+job.LeaseID+`","l-bogus"]}`))
	if err != nil {
		t.Fatal(err)
	}
	var hb struct {
		Renewed []string `json:"renewed"`
		Lost    []string `json:"lost"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&hb); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("heartbeat: HTTP %d, %v", resp.StatusCode, err)
	}
	resp.Body.Close()
	if len(hb.Renewed) != 1 || hb.Renewed[0] != job.LeaseID || len(hb.Lost) != 1 {
		t.Errorf("heartbeat = %+v", hb)
	}

	// Commit: publish bytes, reference them by hash. Committing a hash
	// the store has never seen is a 404 before the lease is touched.
	if code, resp := postLeaseResult(t, srv, job.LeaseID, job.Token, BlobHash([]byte("unpublished"))); code != http.StatusNotFound {
		t.Errorf("commit of unpublished blob = %d (%s), want 404", code, resp)
	}
	result := []byte("protocol-test canonical bytes\n")
	hash := postStore(t, srv, result)
	if code, resp := postLeaseResult(t, srv, job.LeaseID, job.Token, hash); code != http.StatusOK {
		t.Fatalf("commit = %d (%s)", code, resp)
	}
	st := waitHTTPDone(t, srv, id)
	if st.Ok != 1 {
		t.Fatalf("status after commit: %+v", st)
	}
	code, res := getBody(t, srv.URL+"/v1/sweeps/"+id+"/results")
	if code != http.StatusOK || !bytes.Equal(res, result) {
		t.Errorf("results = HTTP %d %q, want the committed bytes", code, res)
	}

	// Exactly-once: the same commit again, and an error report for the
	// resolved lease, are both stale.
	if code, _ := postLeaseResult(t, srv, job.LeaseID, job.Token, hash); code != http.StatusConflict {
		t.Errorf("double commit = %d, want 409", code)
	}
	if code := postCode(t, srv.URL+"/v1/leases/"+job.LeaseID+"/error", `{"token":1,"error":"too late"}`); code != http.StatusConflict {
		t.Errorf("late error report = %d, want 409", code)
	}
}

// postCode posts a JSON body and returns just the status code.
func postCode(t *testing.T, url, body string) int {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp.StatusCode
}

// postStore publishes bytes into the daemon's blob store.
func postStore(t *testing.T, srv *httptest.Server, data []byte) string {
	t.Helper()
	resp, err := http.Post(srv.URL+"/v1/store", "application/octet-stream", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body struct {
		Hash string `json:"hash"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("store publish: HTTP %d, %v", resp.StatusCode, err)
	}
	return body.Hash
}

// postLeaseResult commits a result hash for a lease and returns the
// status code and body.
func postLeaseResult(t *testing.T, srv *httptest.Server, leaseID string, token uint64, hash string) (int, string) {
	t.Helper()
	payload := fmt.Sprintf(`{"token":%d,"result":%q}`, token, hash)
	resp, err := http.Post(srv.URL+"/v1/leases/"+leaseID+"/result", "application/json", strings.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp.StatusCode, strings.TrimSpace(buf.String())
}
