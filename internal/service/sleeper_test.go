package service

import (
	"context"
	"testing"
	"time"
)

// TestSleeperFullDelay: an uncanceled sleep runs its whole delay and
// reports completion, and the same sleeper is reusable for the next
// attempt.
func TestSleeperFullDelay(t *testing.T) {
	var s sleeper
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		start := time.Now()
		if !s.sleep(ctx, 10*time.Millisecond) {
			t.Fatalf("attempt %d: full sleep reported canceled", i)
		}
		if d := time.Since(start); d < 10*time.Millisecond {
			t.Fatalf("attempt %d: returned after %v, want >= 10ms", i, d)
		}
	}
}

// TestSleeperCancel: a context canceled mid-sleep returns false promptly,
// and — the part the classic timer semantics make easy to get wrong — the
// sleeper must still run the *full* delay on its next use: a stale fired
// token left in the timer channel would make the next sleep return
// immediately, collapsing the retry backoff into a hot loop.
func TestSleeperCancel(t *testing.T) {
	var s sleeper
	cctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	if s.sleep(cctx, time.Hour) {
		t.Fatal("canceled sleep reported the full delay elapsed")
	}
	start := time.Now()
	if !s.sleep(context.Background(), 20*time.Millisecond) {
		t.Fatal("sleep after cancel reported canceled")
	}
	if d := time.Since(start); d < 20*time.Millisecond {
		t.Fatalf("sleep after cancel returned after %v, want >= 20ms (stale timer token?)", d)
	}
}

// TestSleeperAlreadyCanceled: a context that is already done never
// reports a completed delay, even across repeated calls on one sleeper.
func TestSleeperAlreadyCanceled(t *testing.T) {
	var s sleeper
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for i := 0; i < 3; i++ {
		if s.sleep(ctx, time.Hour) {
			t.Fatalf("attempt %d: sleep on a done context reported completion", i)
		}
	}
}
