package engine

import (
	"fmt"
	"testing"
)

// wakeTicker is a wake-aware fake: busy while work > 0, consuming one unit
// of work per tick. External input arrives via give(), which models a port
// Accept — it adds work and invokes the wake callback.
type wakeTicker struct {
	name  string
	work  int
	wake  func()
	ticks int
	// tickLog records the cycle of every tick, for order/visibility checks.
	tickLog []uint64
	onTick  func(cycle uint64)
}

func (w *wakeTicker) Name() string        { return w.name }
func (w *wakeTicker) Kind() ModelKind     { return CycleAccurate }
func (w *wakeTicker) Busy() bool          { return w.work > 0 }
func (w *wakeTicker) SetWake(wake func()) { w.wake = wake }
func (w *wakeTicker) Tick(cycle uint64) {
	w.ticks++
	w.tickLog = append(w.tickLog, cycle)
	if w.onTick != nil {
		w.onTick(cycle)
	}
	if w.work > 0 {
		w.work--
	}
}

func (w *wakeTicker) give(n int) {
	w.work += n
	if w.wake != nil {
		w.wake()
	}
}

// TestActiveSetOscillation: a ticker that repeatedly drains its work and is
// re-woken by events is ticked while busy, left alone while idle, and the
// engine fast-forwards the idle gaps.
func TestActiveSetOscillation(t *testing.T) {
	e := New()
	tk := &wakeTicker{name: "osc"}
	e.Register(tk)

	// Bursts of 10 cycles of work arriving every 1000 cycles.
	const bursts = 5
	for i := 0; i < bursts; i++ {
		e.Schedule(uint64(1+i*1000), func() { tk.give(10) })
	}
	done := false
	e.Schedule(bursts*1000+100, func() { done = true })
	if _, err := e.Run(func() bool { return done }, 0); err != nil {
		t.Fatal(err)
	}
	// Each burst costs ~10 busy ticks plus a couple of activation ticks;
	// without the active set the run would tick ~5100 times.
	if tk.ticks > bursts*15 {
		t.Errorf("oscillating ticker ticked %d times, want ~%d (idle cycles not skipped)", tk.ticks, bursts*11)
	}
	if tk.work != 0 {
		t.Errorf("undrained work: %d", tk.work)
	}
	if e.SkippedCycles() < 4000 {
		t.Errorf("SkippedCycles = %d, want most of the idle gaps", e.SkippedCycles())
	}
}

// TestWakeDuringFastForward: an event that lands mid-fast-forward and wakes
// an idle module gets that module ticked at the event's cycle, exactly as
// the tick-everything engine would have.
func TestWakeDuringFastForward(t *testing.T) {
	e := New()
	tk := &wakeTicker{name: "sleeper"}
	e.Register(tk)

	const wakeAt = 500_000
	e.Schedule(wakeAt, func() { tk.give(3) })
	done := false
	e.Schedule(wakeAt+100, func() { done = true })
	cyc, err := e.Run(func() bool { return done }, 0)
	if err != nil {
		t.Fatal(err)
	}
	if cyc != wakeAt+100 {
		t.Errorf("final cycle = %d, want %d", cyc, wakeAt+100)
	}
	found := false
	for _, c := range tk.tickLog {
		if c == wakeAt {
			found = true
		}
		if c > wakeAt && c < wakeAt+3 && tk.work > 0 {
			t.Errorf("work left after cycle %d", c)
		}
	}
	if !found {
		t.Errorf("module not ticked at wake cycle %d; tickLog=%v", wakeAt, tk.tickLog)
	}
}

// TestActiveSetRegistrationOrder: within one cycle, active tickers tick in
// registration order regardless of the order they were woken in.
func TestActiveSetRegistrationOrder(t *testing.T) {
	e := New()
	const n = 8
	// Record the global (index, cycle) tick sequence.
	var order []int
	var cycles []uint64
	tks := make([]*wakeTicker, n)
	for i := 0; i < n; i++ {
		i := i
		tks[i] = &wakeTicker{name: fmt.Sprintf("t%d", i)}
		tks[i].onTick = func(c uint64) {
			order = append(order, i)
			cycles = append(cycles, c)
		}
		e.Register(tks[i])
	}
	// Wake in scrambled order at cycle 10 (after all have gone idle).
	e.Schedule(10, func() {
		for _, i := range []int{5, 2, 7, 0, 3, 6, 1, 4} {
			tks[i].give(1)
		}
	})
	done := false
	e.Schedule(12, func() { done = true })
	if _, err := e.Run(func() bool { return done }, 0); err != nil {
		t.Fatal(err)
	}
	// The ticks at cycle 10 must be indices 0..n-1 in ascending order.
	var at10 []int
	for k := range order {
		if cycles[k] == 10 {
			at10 = append(at10, order[k])
		}
	}
	if len(at10) != n {
		t.Fatalf("ticked %d modules at wake cycle, want %d (%v)", len(at10), n, at10)
	}
	for k := 1; k < n; k++ {
		if at10[k] < at10[k-1] {
			t.Fatalf("cycle-10 tick order not registration order: %v", at10)
		}
	}
}

// TestActiveSetSameCycleVisibility: waking a later-registered idle module
// ticks it the same cycle (downstream visibility); waking an
// earlier-registered one defers to the next visited cycle — both matching
// the tick-everything engine's registration-order semantics.
func TestActiveSetSameCycleVisibility(t *testing.T) {
	e := New()
	up := &wakeTicker{name: "up"}
	down := &wakeTicker{name: "down"}
	e.Register(up)   // idx 0
	e.Register(down) // idx 1

	const fireAt = 100
	up.onTick = func(cycle uint64) {
		if cycle == fireAt {
			down.give(1) // downstream accept during upstream tick
		}
	}
	e.Schedule(fireAt, func() { up.give(1) })
	done := false
	e.Schedule(fireAt+5, func() { done = true })
	if _, err := e.Run(func() bool { return done }, 0); err != nil {
		t.Fatal(err)
	}
	if !containsCycle(down.tickLog, fireAt) {
		t.Errorf("downstream not ticked same cycle %d; log=%v", fireAt, down.tickLog)
	}

	// Reverse direction: down wakes up (an upstream response path).
	e2 := New()
	up2 := &wakeTicker{name: "up"}
	down2 := &wakeTicker{name: "down"}
	e2.Register(up2)
	e2.Register(down2)
	down2.onTick = func(cycle uint64) {
		if cycle == fireAt {
			up2.give(1)
		}
	}
	e2.Schedule(fireAt, func() { down2.give(1) })
	done2 := false
	e2.Schedule(fireAt+5, func() { done2 = true })
	if _, err := e2.Run(func() bool { return done2 }, 0); err != nil {
		t.Fatal(err)
	}
	if containsCycle(up2.tickLog, fireAt) {
		t.Errorf("upstream ticked same cycle it was woken by a later-registered module; log=%v", up2.tickLog)
	}
	if !containsCycle(up2.tickLog, fireAt+1) {
		t.Errorf("upstream not ticked the cycle after its wake; log=%v", up2.tickLog)
	}
}

func containsCycle(log []uint64, c uint64) bool {
	for _, x := range log {
		if x == c {
			return true
		}
	}
	return false
}

// TestActiveSetMixedLegacy: legacy (non-wake-aware) tickers keep the
// tick-every-cycle contract alongside wake-aware ones, and their Busy()
// still gates fast-forwarding.
func TestActiveSetMixedLegacy(t *testing.T) {
	e := New()
	wa := &wakeTicker{name: "modern"}
	lg := &fakeTicker{name: "legacy", busyUntil: 50}
	e.Register(wa)
	e.Register(lg)
	done := false
	e.Schedule(200, func() { done = true })
	if _, err := e.Run(func() bool { return done }, 0); err != nil {
		t.Fatal(err)
	}
	// Legacy busy until cycle 50: all of 0..50 visited, then fast-forward.
	if lg.ticks < 50 {
		t.Errorf("legacy ticker ticked %d times, want >= 50", lg.ticks)
	}
	// The wake-aware ticker was never woken after its registration tick, so
	// it must not have been ticked on the legacy-driven cycles.
	if wa.ticks > 2 {
		t.Errorf("idle wake-aware ticker ticked %d times next to a busy legacy one", wa.ticks)
	}
	if e.SkippedCycles() < 100 {
		t.Errorf("SkippedCycles = %d, want the idle tail skipped", e.SkippedCycles())
	}
}

// BenchmarkEngineActiveSet quantifies the scheduling win: many registered
// tickers, few busy — the common late-simulation state where most SMs have
// drained. "wake" uses the active set; "legacy" models the old engine via
// non-wake-aware tickers that are ticked and polled every cycle.
func BenchmarkEngineActiveSet(b *testing.B) {
	const nTickers = 256
	const busyTickers = 4
	const horizon = 10_000

	run := func(b *testing.B, mk func(i int) Ticker) {
		for i := 0; i < b.N; i++ {
			e := New()
			for k := 0; k < nTickers; k++ {
				e.Register(mk(k))
			}
			done := false
			e.Schedule(horizon+1, func() { done = true })
			if _, err := e.Run(func() bool { return done }, 0); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(horizon)*float64(b.N)/b.Elapsed().Seconds(), "cycles/s")
	}

	b.Run("wake", func(b *testing.B) {
		run(b, func(i int) Ticker {
			w := &wakeTicker{name: fmt.Sprintf("t%d", i)}
			if i < busyTickers {
				w.work = horizon
			}
			return w
		})
	})
	b.Run("legacy", func(b *testing.B) {
		run(b, func(i int) Ticker {
			f := &fakeTicker{name: fmt.Sprintf("t%d", i)}
			if i < busyTickers {
				f.busyUntil = horizon
			}
			return f
		})
	})
}
