// Sharded (intra-simulation) parallel execution.
//
// SetParallel(n) splits the cycle-accurate tickers into n shards plus the
// implicit serial shard. Shard-private modules (an SM and its L1/i-cache)
// are registered with RegisterSharded and tick concurrently on persistent
// worker goroutines; shared modules (block scheduler, NoC, L2, DRAM) stay
// on plain Register and tick on the coordinator goroutine. Each simulated
// cycle runs as:
//
//  1. serial head — active entries registered before the shard range
//     (the block scheduler), exactly as in serial mode;
//  2. pre-phase — every active sharded entry's PreTick (its downstream
//     drain) runs serially on the coordinator in registration order, so
//     pushes into the shared NoC/L2 happen in the serial engine's order;
//  3. shard passes — each shard with active entries ticks them in
//     registration order; the coordinator runs one shard itself and wakes
//     the others' workers through the spin-then-park barrier (barrier.go).
//     All cross-shard side effects (Schedule, Defer, wakes of serial
//     entries) are staged into per-shard arenas instead of being applied;
//  4. barrier fold — one registration-order walk over the sharded range
//     rebuilds the active segment, assigns the staged events their serial
//     sequence numbers and collects the staged defers (foldBarrier). This
//     reproduces the serial engine's event order exactly, which is what
//     makes metrics byte-identical at any thread count. Cycles where no
//     shard changed its active set and nothing was staged skip the walk
//     entirely;
//  5. serial tail — active entries registered after the shard range
//     (NoC, L2, DRAM), exactly as in serial mode.
//
// Wakes *within* a shard during phase 3 are applied locally with the same
// same-cycle visibility rule the serial active list uses. Wakes of a
// sharded entry from the serial phases go through the normal activate
// path. Modules must not wake another shard's entries from a shard tick —
// cross-shard interaction is only legal through Schedule/Defer (the
// standard assemblies interact across shards exclusively through memory
// ports and the block scheduler, which already obey this).
//
// Staging arenas: events, defers and pass lists are per-shard slices that
// are truncated (never freed) at the barrier, so their capacity is
// retained across cycles and the steady-state sharded tick performs no
// heap allocation. A shard's arenas are written only by its worker while
// staging is set and only by the coordinator otherwise; the barrier in
// barrier.go carries the happens-before edges between the two.
package engine

import (
	"fmt"
	"runtime/debug"
	"sort"
)

const maxInt = int(^uint(0) >> 1)

// Context is the part of the engine a shard-private module is allowed to
// touch. *Engine implements it (serial mode); shardCtx implements it with
// staging during a parallel shard pass. Modules that may be sharded hold a
// Context instead of a *Engine.
type Context interface {
	// Cycle returns the current simulated cycle (frozen during a pass).
	Cycle() uint64
	// TickedCycles returns the number of simulated (ticked) cycles.
	TickedCycles() uint64
	// Schedule runs fn after delay cycles. During a parallel shard pass
	// the event is staged and enqueued at the barrier in deterministic
	// order.
	Schedule(delay uint64, fn func())
	// Defer runs fn immediately in serial mode, and at the barrier (in
	// registration order of the staging module) during a parallel shard
	// pass. Use it for side effects that escape the shard: completion
	// notifications, trace emits whose arguments are already computed.
	Defer(fn func())
}

// Defer on the engine itself runs fn immediately: in serial mode there is
// nothing to stage.
func (e *Engine) Defer(fn func()) { fn() }

// PreTicker is a Ticker whose per-cycle work starts by pushing into a
// downstream shared module (a cache draining its miss queue into the NoC).
// The engine runs PreTick immediately before Tick in serial mode; in
// parallel mode PreTick is hoisted into the serial pre-phase so the shared
// module sees pushes in registration order, not worker-interleaved order.
//
// Contract: a PreTicker holding undrained downstream work must report
// Busy. The pre-phase visits active entries only (as the serial engine
// does); an idle entry woken mid-pass by a same-shard sibling ticks that
// cycle but cannot drain until the next pre-phase — PreTick pushes into
// shared modules and so can never run on a worker goroutine. Keeping such
// a module Busy keeps it in the pre-phase snapshot, which is what makes
// the sharded schedule identical to the serial one. The standard cache
// models satisfy this naturally (non-empty miss queues are Busy).
type PreTicker interface {
	PreTick(cycle uint64)
}

// stagedEvent is a Schedule call captured during a parallel phase, tagged
// with the registration index of the module that issued it so the barrier
// can replay the serial engine's sequence numbering, and with the absolute
// cycle at which it was issued. In exact mode the cycle is constant across
// a barrier (every stage happens at the engine's current cycle), so the
// flush order degenerates to the pure (index, phase) order of PR 5 — which
// foldBarrier produces with a single registration-order walk; in
// relaxed-epoch mode the capture cycle leads the merge key so events from
// different local cycles of one epoch keep their causal order.
type stagedEvent struct {
	idx   int
	cyc   uint64 // absolute cycle the Schedule was issued at
	delay uint64
	fn    func()
}

// stagedCall is a Defer call captured during a shard pass.
type stagedCall struct {
	idx int
	cyc uint64 // absolute cycle the Defer was issued at
	fn  func()
}

// shardCtx is one shard's staging context and pass state. During a pass
// (staging == true) it is touched only by its worker goroutine; outside a
// pass only by the coordinator.
type shardCtx struct {
	e     *Engine
	shard int

	// staging is set by the coordinator around phase 3. While set,
	// Schedule/Defer/wakes stage instead of applying.
	staging bool

	// dirty records that the pass changed the shard's active membership
	// (an entry went idle, or a local wake activated one): the barrier
	// must rebuild the global active segment. A clean cycle with nothing
	// staged skips the rebuild walk entirely.
	dirty bool

	// members lists every registration index owned by this shard, in
	// ascending order; relaxed-epoch passes rebuild the per-cycle list
	// from it (see runEpochPass).
	members []int

	// pass state: list is the shard's active entries this cycle (ascending
	// registration index), lpos the cursor, current the index being ticked.
	list    []int
	lpos    int
	current int

	// relaxed-epoch pass state: epochK > 0 means safePass runs an epoch of
	// that many local cycles; epochOff is the local cycle offset within it,
	// so Cycle()/TickedCycles() report the shard's local time.
	epochK   int
	epochOff uint64

	// staged side effects (arenas: truncated at the barrier, capacity
	// retained). epos/dpos are the fold cursors.
	events    []stagedEvent
	epos      int
	defers    []stagedCall
	dpos      int
	busyDelta int

	// worker plumbing (barrier.go).
	sig        shardSignal
	panicVal   any
	panicStack []byte
}

func (sc *shardCtx) Cycle() uint64        { return sc.e.cycle + sc.epochOff }
func (sc *shardCtx) TickedCycles() uint64 { return sc.e.tickedCycles + sc.epochOff }

func (sc *shardCtx) Schedule(delay uint64, fn func()) {
	if sc.staging {
		sc.events = append(sc.events, stagedEvent{idx: sc.current, cyc: sc.Cycle(), delay: delay, fn: fn})
		return
	}
	sc.e.Schedule(delay, fn)
}

func (sc *shardCtx) Defer(fn func()) {
	if sc.staging {
		sc.defers = append(sc.defers, stagedCall{idx: sc.current, cyc: sc.Cycle(), fn: fn})
		return
	}
	fn()
}

// wakeLocal is activate's shard-pass twin: same pending/active/Busy-poll
// semantics, but the insertion targets the shard's pass list and the busy
// transition lands in the shard's delta. Visibility matches the serial
// rule — an entry woken after its registration index has been passed is
// ticked next cycle.
func (sc *shardCtx) wakeLocal(idx int, en *tickerEntry) {
	en.pending = true
	if en.active {
		return
	}
	en.active = true
	sc.dirty = true
	if idx > sc.current {
		tail := sc.list[sc.lpos+1:]
		pos := sc.lpos + 1 + sort.SearchInts(tail, idx)
		sc.list = append(sc.list, 0)
		copy(sc.list[pos+1:], sc.list[pos:])
		sc.list[pos] = idx
	}
	if en.t.Busy() && !en.busy {
		en.busy = true
		sc.busyDelta++
	}
}

// runPass ticks the shard's active entries in registration order,
// mirroring tickSerialRange: clear pending, Tick, re-poll Busy. Entries
// that go idle are only flagged (active = false); the coordinator rebuilds
// the global active list at the barrier.
func (sc *shardCtx) runPass() {
	e := sc.e
	for sc.lpos = 0; sc.lpos < len(sc.list); sc.lpos++ {
		idx := sc.list[sc.lpos]
		sc.current = idx
		en := &e.entries[idx]
		en.pending = false
		en.t.Tick(e.cycle)
		nowBusy := en.t.Busy()
		if nowBusy != en.busy {
			en.busy = nowBusy
			if nowBusy {
				sc.busyDelta++
			} else {
				sc.busyDelta--
			}
		}
		if !nowBusy && !en.pending {
			en.active = false
			sc.dirty = true
		}
	}
	sc.current = -1
}

// safePass runs the pass with panic isolation: a panicking module must not
// kill the worker goroutine (and with it the whole process) — the
// coordinator re-raises it as a *ShardPanic after the barrier.
func (sc *shardCtx) safePass() {
	defer func() {
		if r := recover(); r != nil {
			sc.panicVal = r
			sc.panicStack = debug.Stack()
		}
	}()
	if sc.epochK > 1 {
		sc.runEpochPass(sc.epochK)
		return
	}
	sc.runPass()
}

// ShardPanic wraps a panic raised inside a shard worker so the usual
// sim-goroutine recovery (runner panic isolation) sees a single structured
// value with the original stack attached.
type ShardPanic struct {
	Shard int
	Value any
	Stack []byte
}

func (p *ShardPanic) Error() string {
	return fmt.Sprintf("engine: panic in shard %d: %v", p.Shard, p.Value)
}

// SetParallel configures n execution shards. Call before registering
// sharded tickers; n <= 1 leaves the engine fully serial. The assembly
// decides the shard count (typically min(EngineThreads, NumSMs)).
func (e *Engine) SetParallel(n int) {
	if n < 1 {
		n = 1
	}
	e.nShards = n
	e.shards = make([]*shardCtx, n)
	for s := range e.shards {
		e.shards[s] = &shardCtx{e: e, shard: s, current: -1}
		e.shards[s].sig.wake = make(chan struct{}, 1)
	}
	if e.coordWake == nil {
		e.coordWake = make(chan struct{}, 1)
	}
}

// Shards returns the configured shard count (0 = SetParallel never called).
func (e *Engine) Shards() int { return e.nShards }

// ShardContext returns shard s's Context. Modules registered into shard s
// must use it (not the engine) for Schedule/Defer so their side effects
// stage correctly during parallel passes.
func (e *Engine) ShardContext(s int) Context { return e.shards[s] }

// RegisterSharded adds a shard-private cycle-accurate ticker to shard. The
// ticker must be WakeAware (the pass lists are built from the active set)
// and all sharded tickers must occupy a contiguous registration range —
// serial modules register either before every sharded one (schedulers) or
// after (NoC, L2, DRAM); RunCtx validates this once.
func (e *Engine) RegisterSharded(t Ticker, shard int) {
	if e.nShards < 1 || shard < 0 || shard >= e.nShards {
		panic(fmt.Sprintf("engine: RegisterSharded(%q): shard %d out of range [0,%d)", t.Name(), shard, e.nShards))
	}
	wa, ok := t.(WakeAware)
	if !ok {
		panic(fmt.Sprintf("engine: RegisterSharded(%q): sharded tickers must be WakeAware", t.Name()))
	}
	idx := len(e.entries)
	en := tickerEntry{t: t, wakeAware: true, shard: shard, sctx: e.shards[shard]}
	en.pre, _ = t.(PreTicker)
	e.entries = append(e.entries, en)
	e.modules = append(e.modules, t)
	e.shards[shard].members = append(e.shards[shard].members, idx)
	if e.pLo < 0 || idx < e.pLo {
		e.pLo = idx
	}
	if idx > e.pHi {
		e.pHi = idx
	}
	wa.SetWake(func() { e.wakeEntry(idx) })
	e.activate(idx)
}

// wakeEntry routes a sharded entry's wake to the right mechanism: during
// a parallel shard pass, the entry is woken locally inside its own shard
// (the only legal waker at that point is the shard itself); everywhere
// else — event phase, PreTick drains, barrier flushes, serial head/tail —
// the normal activate path applies. Serial entries bypass this and wake
// through activate directly (see Register).
func (e *Engine) wakeEntry(idx int) {
	en := &e.entries[idx]
	if sc := en.sctx; sc.staging {
		sc.wakeLocal(idx, en)
		return
	}
	e.activate(idx)
}

// checkShardLayout verifies (once) that the sharded registration range
// [pLo, pHi] contains no serial entries, which the head/segment/tail split
// of tickSharded depends on.
func (e *Engine) checkShardLayout() error {
	if e.shardsChecked {
		return nil
	}
	for idx := e.pLo; idx <= e.pHi; idx++ {
		if e.entries[idx].sctx == nil {
			return fmt.Errorf("engine: parallel mode requires contiguous sharded registration: ticker %d (%s) inside shard range [%d,%d] is serial",
				idx, e.entries[idx].t.Name(), e.pLo, e.pHi)
		}
	}
	e.shardsChecked = true
	return nil
}

// tickSharded is one simulated cycle in parallel mode; see the package
// comment at the top of this file for the five phases. It only runs with
// workers up — on hosts without spare parallelism tickActive takes the
// serial path instead (byte-identical by construction; see barrier.go).
func (e *Engine) tickSharded() {
	// Phase 1: serial head.
	e.tickPos = 0
	e.tickSerialRange(e.pLo - 1)
	segStart := e.tickPos

	// Phase 2: snapshot the active sharded segment (a contiguous run of
	// segCount positions — engine.go maintains the count), then run the
	// drains (PreTick) serially in registration order. Schedule calls made
	// by the drained-into modules (an analytical L2 backend computing a
	// fill latency) are staged into preStage tagged with the draining
	// entry's index, so the barrier can interleave them with the
	// shard-staged events exactly as the serial engine would have.
	seg := e.segScratch[:0]
	for pos := segStart; pos < segStart+e.segCount; pos++ {
		seg = append(seg, e.active[pos])
	}
	e.segScratch = seg
	if len(seg) > 0 {
		e.preStaging = true
		for _, idx := range seg {
			en := &e.entries[idx]
			if en.pre != nil {
				e.preIdx = idx
				en.pre.PreTick(e.cycle)
			}
			en.sctx.list = append(en.sctx.list, idx)
		}
		e.preStaging = false

		// Phase 3: tick the shards (barrier.go).
		e.dispatchShards(1)

		// Phase 4: fused barrier fold.
		e.foldBarrier(segStart)
	}

	// Phase 5: serial tail.
	e.tickSerialRange(maxInt)
	e.tickPos = -1
}

// foldBarrier is the exact-mode barrier: fold the shards' busy deltas,
// and — when a pass changed active membership or staged side effects —
// run one walk over the sharded registration range [pLo, pHi] that
// simultaneously rebuilds the active segment and flushes the staged
// queues in serial order.
//
// The walk replaces PR 5's k-way selection merge: in exact mode every
// staged record carries the same capture cycle, so the merge key
// (cycle, idx<<1|phase) reduces to ascending registration index with
// phase 0 (pre-phase drains) before phase 1 (shard ticks) at the same
// index. Each source queue is already in ascending-index FIFO order
// (the pre-phase and the passes run in registration order), so advancing
// one cursor per source while idx sweeps the range yields exactly the
// serial sequence numbering at O(range + staged) instead of
// O(sources × staged).
//
// Staged defers cannot run mid-walk — they execute with staging off and
// may wake entries, which would mutate the active list under the rebuild
// — so the walk collects them in order and runs them after the rebuild,
// exactly where PR 5's flushStagedDefers ran.
func (e *Engine) foldBarrier(segStart int) {
	dirty, staged := false, len(e.preStage) > 0
	for _, sc := range e.shards {
		e.busyCount += sc.busyDelta
		sc.busyDelta = 0
		sc.list = sc.list[:0]
		if sc.dirty {
			dirty = true
			sc.dirty = false
		}
		if len(sc.events) > 0 || len(sc.defers) > 0 {
			staged = true
		}
	}
	if !dirty && !staged {
		// Clean cycle: the active segment is exactly what phase 2 saw and
		// there is nothing to flush.
		e.tickPos = segStart + e.segCount
		return
	}

	pc := 0
	deferred := e.deferScratch[:0]
	seg := e.segScratch[:0]
	for idx := e.pLo; idx <= e.pHi; idx++ {
		for pc < len(e.preStage) && e.preStage[pc].idx == idx {
			ev := &e.preStage[pc]
			e.seq++
			e.events.push(event{cycle: ev.cyc + ev.delay, seq: e.seq, fn: ev.fn})
			ev.fn = nil
			pc++
		}
		en := &e.entries[idx]
		sc := en.sctx
		for sc.epos < len(sc.events) && sc.events[sc.epos].idx == idx {
			ev := &sc.events[sc.epos]
			e.seq++
			e.events.push(event{cycle: ev.cyc + ev.delay, seq: e.seq, fn: ev.fn})
			ev.fn = nil
			sc.epos++
		}
		for sc.dpos < len(sc.defers) && sc.defers[sc.dpos].idx == idx {
			deferred = append(deferred, sc.defers[sc.dpos].fn)
			sc.defers[sc.dpos].fn = nil
			sc.dpos++
		}
		if en.active {
			seg = append(seg, idx)
		}
	}
	e.segScratch = seg

	// Splice the rebuilt segment into the active list. segCount still
	// holds the pre-pass segment length, so the old segment occupies
	// [segStart, segStart+segCount).
	segEnd := segStart + e.segCount
	na := e.activeScratch[:0]
	na = append(na, e.active[:segStart]...)
	na = append(na, seg...)
	na = append(na, e.active[segEnd:]...)
	e.activeScratch, e.active = e.active, na
	e.segCount = len(seg)
	e.tickPos = segStart + len(seg)

	e.preStage = e.preStage[:0]
	for _, sc := range e.shards {
		sc.events = sc.events[:0]
		sc.epos = 0
		sc.defers = sc.defers[:0]
		sc.dpos = 0
	}
	// Defers run with staging off: anything they do (wake the block
	// scheduler, emit a trace event, schedule) applies directly on the
	// coordinator, against the rebuilt active list.
	for i, fn := range deferred {
		deferred[i] = nil
		fn()
	}
	e.deferScratch = deferred[:0]
}

// flushStagedEvents merges preStage (phase 0: drain-time events) and the
// per-shard event queues (phase 1: tick-time events) by ascending
// (capture cycle, registration index, phase), assigning sequence numbers
// as it goes. Each source queue is already sorted by that key (passes run
// cycle by cycle in registration order), so this is a k-way merge over
// k = nShards+1 cursors. Only the relaxed-epoch barrier uses it — staged
// cycles differ across an epoch's local cycles, so the single-walk fold
// of exact mode does not apply. An event fires at its capture cycle plus
// its delay, which in an epoch may lie in the barrier's past; the
// heap-push still works, and the run loop fires it at the next event
// phase — late, never early.
func (e *Engine) flushStagedEvents() {
	nSrc := len(e.shards) + 1
	if cap(e.mergeCur) < nSrc {
		e.mergeCur = make([]int, nSrc)
	}
	cur := e.mergeCur[:nSrc]
	for i := range cur {
		cur[i] = 0
	}
	for {
		best := -1
		var bestCyc uint64
		bestKey := 0
		if cur[0] < len(e.preStage) {
			best = 0
			bestCyc = e.preStage[cur[0]].cyc
			bestKey = e.preStage[cur[0]].idx << 1
		}
		for s, sc := range e.shards {
			if c := cur[s+1]; c < len(sc.events) {
				ev := &sc.events[c]
				if k := ev.idx<<1 | 1; best == -1 || ev.cyc < bestCyc || (ev.cyc == bestCyc && k < bestKey) {
					best = s + 1
					bestCyc = ev.cyc
					bestKey = k
				}
			}
		}
		if best == -1 {
			break
		}
		var ev stagedEvent
		if best == 0 {
			ev = e.preStage[cur[0]]
			e.preStage[cur[0]].fn = nil
		} else {
			sc := e.shards[best-1]
			ev = sc.events[cur[best]]
			sc.events[cur[best]].fn = nil
		}
		cur[best]++
		e.seq++
		e.events.push(event{cycle: ev.cyc + ev.delay, seq: e.seq, fn: ev.fn})
	}
	e.preStage = e.preStage[:0]
	for _, sc := range e.shards {
		sc.events = sc.events[:0]
	}
}

// flushStagedDefers runs the staged Defer calls in ascending (capture
// cycle, registration index) of their staging module (FIFO within a
// module) — again the serial execution order, extended across the local
// cycles of a relaxed epoch. The calls run with staging off, so anything
// they do (wake the block scheduler, emit a trace event, schedule) applies
// directly on the coordinator. Exact mode folds its defers in foldBarrier
// instead.
func (e *Engine) flushStagedDefers() {
	for {
		best := -1
		var bestCyc uint64
		bestIdx := 0
		for s, sc := range e.shards {
			if sc.dpos < len(sc.defers) {
				d := &sc.defers[sc.dpos]
				if best == -1 || d.cyc < bestCyc || (d.cyc == bestCyc && d.idx < bestIdx) {
					best = s
					bestCyc = d.cyc
					bestIdx = d.idx
				}
			}
		}
		if best == -1 {
			break
		}
		sc := e.shards[best]
		fn := sc.defers[sc.dpos].fn
		sc.defers[sc.dpos].fn = nil
		sc.dpos++
		fn()
	}
	for _, sc := range e.shards {
		sc.defers = sc.defers[:0]
		sc.dpos = 0
	}
}
