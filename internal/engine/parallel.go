// Sharded (intra-simulation) parallel execution.
//
// SetParallel(n) splits the cycle-accurate tickers into n shards plus the
// implicit serial shard. Shard-private modules (an SM and its L1/i-cache)
// are registered with RegisterSharded and tick concurrently on a bounded
// worker pool; shared modules (block scheduler, NoC, L2, DRAM) stay on
// plain Register and tick on the coordinator goroutine. Each simulated
// cycle runs as:
//
//  1. serial head — active entries registered before the shard range
//     (the block scheduler), exactly as in serial mode;
//  2. pre-phase — every active sharded entry's PreTick (its downstream
//     drain) runs serially on the coordinator in registration order, so
//     pushes into the shared NoC/L2 happen in the serial engine's order;
//  3. shard passes — each shard with active entries ticks them in
//     registration order on its worker. All cross-shard side effects
//     (Schedule, Defer, wakes of serial entries) are staged into
//     per-shard queues instead of being applied;
//  4. barrier — the coordinator rebuilds the active segment in
//     registration order, folds the shards' busy deltas, and flushes the
//     staged queues in ascending (registration index, phase) order. This
//     reproduces the serial engine's event sequence numbers exactly,
//     which is what makes metrics byte-identical at any thread count;
//  5. serial tail — active entries registered after the shard range
//     (NoC, L2, DRAM), exactly as in serial mode.
//
// Wakes *within* a shard during phase 3 are applied locally with the same
// same-cycle visibility rule the serial active list uses. Wakes of a
// sharded entry from the serial phases go through the normal activate
// path. Modules must not wake another shard's entries from a shard tick —
// cross-shard interaction is only legal through Schedule/Defer (the
// standard assemblies interact across shards exclusively through memory
// ports and the block scheduler, which already obey this).
package engine

import (
	"fmt"
	"runtime/debug"
	"sort"
)

const maxInt = int(^uint(0) >> 1)

// Context is the part of the engine a shard-private module is allowed to
// touch. *Engine implements it (serial mode); shardCtx implements it with
// staging during a parallel shard pass. Modules that may be sharded hold a
// Context instead of a *Engine.
type Context interface {
	// Cycle returns the current simulated cycle (frozen during a pass).
	Cycle() uint64
	// TickedCycles returns the number of simulated (ticked) cycles.
	TickedCycles() uint64
	// Schedule runs fn after delay cycles. During a parallel shard pass
	// the event is staged and enqueued at the barrier in deterministic
	// order.
	Schedule(delay uint64, fn func())
	// Defer runs fn immediately in serial mode, and at the barrier (in
	// registration order of the staging module) during a parallel shard
	// pass. Use it for side effects that escape the shard: completion
	// notifications, trace emits whose arguments are already computed.
	Defer(fn func())
}

// Defer on the engine itself runs fn immediately: in serial mode there is
// nothing to stage.
func (e *Engine) Defer(fn func()) { fn() }

// PreTicker is a Ticker whose per-cycle work starts by pushing into a
// downstream shared module (a cache draining its miss queue into the NoC).
// The engine runs PreTick immediately before Tick in serial mode; in
// parallel mode PreTick is hoisted into the serial pre-phase so the shared
// module sees pushes in registration order, not worker-interleaved order.
type PreTicker interface {
	PreTick(cycle uint64)
}

// stagedEvent is a Schedule call captured during a parallel phase, tagged
// with the registration index of the module that issued it so the barrier
// can replay the serial engine's sequence numbering, and with the absolute
// cycle at which it was issued. In exact mode the cycle is constant across
// a barrier (every stage happens at the engine's current cycle), so the
// merge order degenerates to the pure (index, phase) order of PR 5; in
// relaxed-epoch mode the capture cycle leads the merge key so events from
// different local cycles of one epoch keep their causal order.
type stagedEvent struct {
	idx   int
	cyc   uint64 // absolute cycle the Schedule was issued at
	delay uint64
	fn    func()
}

// stagedCall is a Defer call captured during a shard pass.
type stagedCall struct {
	idx int
	cyc uint64 // absolute cycle the Defer was issued at
	fn  func()
}

// shardCtx is one shard's staging context and pass state. During a pass
// (staging == true) it is touched only by its worker goroutine; outside a
// pass only by the coordinator.
type shardCtx struct {
	e     *Engine
	shard int

	// staging is set by the coordinator around phase 3. While set,
	// Schedule/Defer/wakes stage instead of applying.
	staging bool

	// members lists every registration index owned by this shard, in
	// ascending order; relaxed-epoch passes rebuild the per-cycle list
	// from it (see runEpochPass).
	members []int

	// pass state: list is the shard's active entries this cycle (ascending
	// registration index), lpos the cursor, current the index being ticked.
	list    []int
	lpos    int
	current int

	// relaxed-epoch pass state: epochK > 0 means safePass runs an epoch of
	// that many local cycles; epochOff is the local cycle offset within it,
	// so Cycle()/TickedCycles() report the shard's local time.
	epochK   int
	epochOff uint64

	// staged side effects, merged at the barrier.
	events    []stagedEvent
	defers    []stagedCall
	dpos      int
	busyDelta int

	// worker plumbing.
	work       chan struct{}
	panicVal   any
	panicStack []byte
}

func (sc *shardCtx) Cycle() uint64        { return sc.e.cycle + sc.epochOff }
func (sc *shardCtx) TickedCycles() uint64 { return sc.e.tickedCycles + sc.epochOff }

func (sc *shardCtx) Schedule(delay uint64, fn func()) {
	if sc.staging {
		sc.events = append(sc.events, stagedEvent{idx: sc.current, cyc: sc.Cycle(), delay: delay, fn: fn})
		return
	}
	sc.e.Schedule(delay, fn)
}

func (sc *shardCtx) Defer(fn func()) {
	if sc.staging {
		sc.defers = append(sc.defers, stagedCall{idx: sc.current, cyc: sc.Cycle(), fn: fn})
		return
	}
	fn()
}

// wakeLocal is activate's shard-pass twin: same pending/active/Busy-poll
// semantics, but the insertion targets the shard's pass list and the busy
// transition lands in the shard's delta. Visibility matches the serial
// rule — an entry woken after its registration index has been passed is
// ticked next cycle.
func (sc *shardCtx) wakeLocal(idx int, en *tickerEntry) {
	en.pending = true
	if en.active {
		return
	}
	en.active = true
	if idx > sc.current {
		tail := sc.list[sc.lpos+1:]
		pos := sc.lpos + 1 + sort.SearchInts(tail, idx)
		sc.list = append(sc.list, 0)
		copy(sc.list[pos+1:], sc.list[pos:])
		sc.list[pos] = idx
	}
	if en.t.Busy() && !en.busy {
		en.busy = true
		sc.busyDelta++
	}
}

// runPass ticks the shard's active entries in registration order,
// mirroring tickSerialRange: clear pending, Tick, re-poll Busy. Entries
// that go idle are only flagged (active = false); the coordinator rebuilds
// the global active list at the barrier.
func (sc *shardCtx) runPass() {
	e := sc.e
	for sc.lpos = 0; sc.lpos < len(sc.list); sc.lpos++ {
		idx := sc.list[sc.lpos]
		sc.current = idx
		en := &e.entries[idx]
		en.pending = false
		en.t.Tick(e.cycle)
		nowBusy := en.t.Busy()
		if nowBusy != en.busy {
			en.busy = nowBusy
			if nowBusy {
				sc.busyDelta++
			} else {
				sc.busyDelta--
			}
		}
		if !nowBusy && !en.pending {
			en.active = false
		}
	}
	sc.current = -1
}

// safePass runs the pass with panic isolation: a panicking module must not
// kill the worker goroutine (and with it the whole process) — the
// coordinator re-raises it as a *ShardPanic after the barrier.
func (sc *shardCtx) safePass() {
	defer func() {
		if r := recover(); r != nil {
			sc.panicVal = r
			sc.panicStack = debug.Stack()
		}
	}()
	if sc.epochK > 1 {
		sc.runEpochPass(sc.epochK)
		return
	}
	sc.runPass()
}

// workerLoop takes the channel by value: stopWorkers replaces sc.work with
// a fresh channel for the next run, and the retiring worker must not read
// the field concurrently with that write.
func (sc *shardCtx) workerLoop(work chan struct{}) {
	for range work {
		sc.safePass()
		sc.e.workerWG.Done()
	}
}

// ShardPanic wraps a panic raised inside a shard worker so the usual
// sim-goroutine recovery (runner panic isolation) sees a single structured
// value with the original stack attached.
type ShardPanic struct {
	Shard int
	Value any
	Stack []byte
}

func (p *ShardPanic) Error() string {
	return fmt.Sprintf("engine: panic in shard %d: %v", p.Shard, p.Value)
}

// SetParallel configures n execution shards. Call before registering
// sharded tickers; n <= 1 leaves the engine fully serial. The assembly
// decides the shard count (typically min(EngineThreads, NumSMs)).
func (e *Engine) SetParallel(n int) {
	if n < 1 {
		n = 1
	}
	e.nShards = n
	e.shards = make([]*shardCtx, n)
	for s := range e.shards {
		e.shards[s] = &shardCtx{e: e, shard: s, current: -1, work: make(chan struct{}, 1)}
	}
}

// Shards returns the configured shard count (0 = SetParallel never called).
func (e *Engine) Shards() int { return e.nShards }

// ShardContext returns shard s's Context. Modules registered into shard s
// must use it (not the engine) for Schedule/Defer so their side effects
// stage correctly during parallel passes.
func (e *Engine) ShardContext(s int) Context { return e.shards[s] }

// RegisterSharded adds a shard-private cycle-accurate ticker to shard. The
// ticker must be WakeAware (the pass lists are built from the active set)
// and all sharded tickers must occupy a contiguous registration range —
// serial modules register either before every sharded one (schedulers) or
// after (NoC, L2, DRAM); RunCtx validates this once.
func (e *Engine) RegisterSharded(t Ticker, shard int) {
	if e.nShards < 1 || shard < 0 || shard >= e.nShards {
		panic(fmt.Sprintf("engine: RegisterSharded(%q): shard %d out of range [0,%d)", t.Name(), shard, e.nShards))
	}
	wa, ok := t.(WakeAware)
	if !ok {
		panic(fmt.Sprintf("engine: RegisterSharded(%q): sharded tickers must be WakeAware", t.Name()))
	}
	idx := len(e.entries)
	en := tickerEntry{t: t, wakeAware: true, shard: shard, sctx: e.shards[shard]}
	en.pre, _ = t.(PreTicker)
	e.entries = append(e.entries, en)
	e.modules = append(e.modules, t)
	e.shards[shard].members = append(e.shards[shard].members, idx)
	if e.pLo < 0 || idx < e.pLo {
		e.pLo = idx
	}
	if idx > e.pHi {
		e.pHi = idx
	}
	wa.SetWake(func() { e.wakeEntry(idx) })
	e.activate(idx)
}

// wakeEntry routes a sharded entry's wake to the right mechanism: during
// a parallel shard pass, the entry is woken locally inside its own shard
// (the only legal waker at that point is the shard itself); everywhere
// else — event phase, PreTick drains, barrier flushes, serial head/tail —
// the normal activate path applies. Serial entries bypass this and wake
// through activate directly (see Register).
func (e *Engine) wakeEntry(idx int) {
	en := &e.entries[idx]
	if sc := en.sctx; sc.staging {
		sc.wakeLocal(idx, en)
		return
	}
	e.activate(idx)
}

// checkShardLayout verifies (once) that the sharded registration range
// [pLo, pHi] contains no serial entries, which the head/segment/tail split
// of tickSharded depends on.
func (e *Engine) checkShardLayout() error {
	if e.shardsChecked {
		return nil
	}
	for idx := e.pLo; idx <= e.pHi; idx++ {
		if e.entries[idx].sctx == nil {
			return fmt.Errorf("engine: parallel mode requires contiguous sharded registration: ticker %d (%s) inside shard range [%d,%d] is serial",
				idx, e.entries[idx].t.Name(), e.pLo, e.pHi)
		}
	}
	e.shardsChecked = true
	return nil
}

func (e *Engine) startWorkers() {
	if e.workersUp {
		return
	}
	e.workersUp = true
	for _, sc := range e.shards {
		go sc.workerLoop(sc.work)
	}
}

func (e *Engine) stopWorkers() {
	if !e.workersUp {
		return
	}
	e.workersUp = false
	for _, sc := range e.shards {
		close(sc.work)
		// Fresh channel so a later RunCtx (next kernel) can restart.
		sc.work = make(chan struct{}, 1)
	}
}

// tickSharded is one simulated cycle in parallel mode; see the package
// comment at the top of this file for the five phases.
func (e *Engine) tickSharded() {
	// Phase 1: serial head.
	e.tickPos = 0
	e.tickSerialRange(e.pLo - 1)
	segStart := e.tickPos

	// Phase 2: snapshot the active sharded segment, then run the drains
	// (PreTick) serially in registration order. Schedule calls made by the
	// drained-into modules (an analytical L2 backend computing a fill
	// latency) are staged into preStage tagged with the draining entry's
	// index, so the barrier can interleave them with the shard-staged
	// events exactly as the serial engine would have.
	seg := e.segScratch[:0]
	for pos := segStart; pos < len(e.active); pos++ {
		idx := e.active[pos]
		if idx > e.pHi {
			break
		}
		seg = append(seg, idx)
	}
	e.segScratch = seg
	if len(seg) > 0 {
		e.preStaging = true
		for _, idx := range seg {
			en := &e.entries[idx]
			if en.pre != nil {
				e.preIdx = idx
				en.pre.PreTick(e.cycle)
			}
			sc := en.sctx
			sc.list = append(sc.list, idx)
		}
		e.preStaging = false

		// Phase 3: tick the shards. With a single shard holding work (or
		// workers not yet started) the pass runs inline on the coordinator
		// — still staged, so semantics are identical to the worker path.
		nWork := 0
		for _, sc := range e.shards {
			if len(sc.list) > 0 {
				nWork++
			}
		}
		if nWork == 1 || !e.workersUp {
			for _, sc := range e.shards {
				if len(sc.list) > 0 {
					sc.staging = true
					sc.safePass()
					sc.staging = false
				}
			}
		} else {
			for _, sc := range e.shards {
				if len(sc.list) > 0 {
					sc.staging = true
				}
			}
			e.workerWG.Add(nWork)
			for _, sc := range e.shards {
				if len(sc.list) > 0 {
					sc.work <- struct{}{}
				}
			}
			e.workerWG.Wait()
			for _, sc := range e.shards {
				sc.staging = false
			}
		}
		for _, sc := range e.shards {
			if sc.panicVal != nil {
				v, st := sc.panicVal, sc.panicStack
				sc.panicVal, sc.panicStack = nil, nil
				panic(&ShardPanic{Shard: sc.shard, Value: v, Stack: st})
			}
		}

		// Phase 4: barrier. Rebuild the active segment in registration
		// order from the entries' active flags, fold busy deltas, then
		// flush staged events and defers in ascending (index, phase)
		// order — reproducing the serial engine's sequence numbers.
		segEnd := segStart
		for segEnd < len(e.active) && e.active[segEnd] <= e.pHi {
			segEnd++
		}
		seg = seg[:0]
		for idx := e.pLo; idx <= e.pHi; idx++ {
			if e.entries[idx].active {
				seg = append(seg, idx)
			}
		}
		e.segScratch = seg
		na := e.activeScratch[:0]
		na = append(na, e.active[:segStart]...)
		na = append(na, seg...)
		na = append(na, e.active[segEnd:]...)
		e.activeScratch, e.active = e.active, na
		e.tickPos = segStart + len(seg)

		for _, sc := range e.shards {
			e.busyCount += sc.busyDelta
			sc.busyDelta = 0
			sc.list = sc.list[:0]
		}
		e.flushStagedEvents()
		e.flushStagedDefers()
	}

	// Phase 5: serial tail.
	e.tickSerialRange(maxInt)
	e.tickPos = -1
}

// flushStagedEvents merges preStage (phase 0: drain-time events) and the
// per-shard event queues (phase 1: tick-time events) by ascending
// (capture cycle, registration index, phase), assigning sequence numbers
// as it goes. Each source queue is already sorted by that key (passes run
// cycle by cycle in registration order), so this is a k-way merge over
// k = nShards+1 cursors. In exact mode every staged entry carries the same
// capture cycle, so the (cycle, seq) order is exactly what a serial pass —
// drain then tick, entry by entry — would have produced; in relaxed-epoch
// mode the key additionally orders staged work across the local cycles of
// one epoch. An event fires at its capture cycle plus its delay, which in
// an epoch may lie in the barrier's past; the heap-push still works, and
// the run loop fires it at the next event phase — late, never early.
func (e *Engine) flushStagedEvents() {
	nSrc := len(e.shards) + 1
	if cap(e.mergeCur) < nSrc {
		e.mergeCur = make([]int, nSrc)
	}
	cur := e.mergeCur[:nSrc]
	for i := range cur {
		cur[i] = 0
	}
	for {
		best := -1
		var bestCyc uint64
		bestKey := 0
		if cur[0] < len(e.preStage) {
			best = 0
			bestCyc = e.preStage[cur[0]].cyc
			bestKey = e.preStage[cur[0]].idx << 1
		}
		for s, sc := range e.shards {
			if c := cur[s+1]; c < len(sc.events) {
				ev := &sc.events[c]
				if k := ev.idx<<1 | 1; best == -1 || ev.cyc < bestCyc || (ev.cyc == bestCyc && k < bestKey) {
					best = s + 1
					bestCyc = ev.cyc
					bestKey = k
				}
			}
		}
		if best == -1 {
			break
		}
		var ev stagedEvent
		if best == 0 {
			ev = e.preStage[cur[0]]
			e.preStage[cur[0]].fn = nil
		} else {
			sc := e.shards[best-1]
			ev = sc.events[cur[best]]
			sc.events[cur[best]].fn = nil
		}
		cur[best]++
		e.seq++
		e.events.push(event{cycle: ev.cyc + ev.delay, seq: e.seq, fn: ev.fn})
	}
	e.preStage = e.preStage[:0]
	for _, sc := range e.shards {
		sc.events = sc.events[:0]
	}
}

// flushStagedDefers runs the staged Defer calls in ascending (capture
// cycle, registration index) of their staging module (FIFO within a
// module) — again the serial execution order, extended across the local
// cycles of a relaxed epoch. The calls run with staging off, so anything
// they do (wake the block scheduler, emit a trace event, schedule) applies
// directly on the coordinator.
func (e *Engine) flushStagedDefers() {
	for {
		best := -1
		var bestCyc uint64
		bestIdx := 0
		for s, sc := range e.shards {
			if sc.dpos < len(sc.defers) {
				d := &sc.defers[sc.dpos]
				if best == -1 || d.cyc < bestCyc || (d.cyc == bestCyc && d.idx < bestIdx) {
					best = s
					bestCyc = d.cyc
					bestIdx = d.idx
				}
			}
		}
		if best == -1 {
			break
		}
		sc := e.shards[best]
		fn := sc.defers[sc.dpos].fn
		sc.defers[sc.dpos].fn = nil
		sc.dpos++
		fn()
	}
	for _, sc := range e.shards {
		sc.defers = sc.defers[:0]
		sc.dpos = 0
	}
}
