// Low-overhead shard dispatch: the per-cycle worker handshake.
//
// PR 5 woke each shard worker with a channel send and joined them with a
// sync.WaitGroup — four scheduler round trips per shard per simulated
// cycle, which BENCH_PR8 showed dominating the parallel tick (threads=2
// ran ~10% slower than threads=1). This file replaces that handshake with
// a generation-published spin-then-park barrier over persistent workers:
//
//   - each shard owns a cache-line-padded shardSignal; the coordinator
//     publishes work by bumping sig.cmd (a generation counter) and the
//     worker waits for its next generation with a bounded spin before
//     parking on a buffered channel;
//   - completion is a single shared countdown (barDone): the last worker
//     to finish wakes the coordinator, which also spins briefly before
//     parking — on a multi-core host the common case is that nobody
//     parks and the whole barrier is a handful of uncontended atomics;
//   - the coordinator is itself a worker: it runs the first shard with
//     work inline while the others execute, so an n-shard cycle pays
//     n-1 publishes instead of n sends plus a WaitGroup;
//   - workers are started only when the host can actually run them
//     (GOMAXPROCS > 1). On a single-proc host exact-mode sharded
//     assemblies fall back to the plain serial tick path (see
//     tickActive), which produces byte-identical results by
//     construction — the staged protocol exists precisely to reproduce
//     the serial order.
//
// The park/unpark protocol is the standard flag-then-recheck pairing:
// the waiter sets its parked flag and re-reads the condition before
// blocking; the signaler updates the condition and then reads the flag.
// Under sequentially consistent atomics (sync/atomic) one of the two
// always observes the other, so wakeups cannot be lost. The wake
// channels hold one token and are sent with a non-blocking select, so a
// harmless stale token at worst causes one extra loop iteration.
package engine

import (
	"runtime"
	"sync/atomic"
)

// barrierSpin bounds the busy-wait before a waiter parks. The spin body
// is one atomic load, so this is on the order of a few microseconds —
// enough to cover the serial head/tail of a neighboring cycle without
// burning a core for long when the simulation goes quiet.
const barrierSpin = 4096

// shardSignal is the coordinator→worker mailbox for one shard. The
// leading and trailing pads keep the hot cmd word on its own cache line:
// every worker spins on its own signal, and false sharing between
// adjacent signals (or with coordinator-written engine state) would put
// that line in play on every publish.
type shardSignal struct {
	_      [64]byte
	cmd    atomic.Uint64 // published work generation
	parked atomic.Uint32 // worker is (about to be) blocked on wake
	wake   chan struct{} // unpark token, capacity 1
	_      [64]byte
}

// publish hands the shard's worker its next generation of work and
// unparks it if it gave up spinning.
func (sig *shardSignal) publish() {
	sig.cmd.Add(1)
	if sig.parked.Load() != 0 {
		select {
		case sig.wake <- struct{}{}:
		default:
		}
	}
}

// await blocks until generation gen has been published: spin first, then
// park. The re-check loop after setting parked closes the lost-wakeup
// window and absorbs stale tokens from earlier generations.
func (sig *shardSignal) await(gen uint64, spin int) {
	for i := 0; i < spin; i++ {
		if sig.cmd.Load() >= gen {
			return
		}
	}
	sig.parked.Store(1)
	for sig.cmd.Load() < gen {
		<-sig.wake
	}
	sig.parked.Store(0)
}

// workerLoop is a shard's persistent worker: one goroutine per shard for
// the lifetime of a run (startWorkers..stopWorkers), not one handshake
// per cycle. gen snapshots the shard's current generation at spawn so a
// later run can restart workers without resetting the counters.
func (sc *shardCtx) workerLoop(gen uint64) {
	e := sc.e
	for {
		gen++
		sc.sig.await(gen, e.spinCount)
		if e.workerStop.Load() {
			e.workerWG.Done()
			return
		}
		sc.safePass()
		e.finishPass()
	}
}

// finishPass counts one shard pass done; the last finisher unparks the
// coordinator if it stopped spinning.
func (e *Engine) finishPass() {
	if e.barDone.Add(-1) == 0 {
		if e.coordParked.Load() != 0 {
			select {
			case e.coordWake <- struct{}{}:
			default:
			}
		}
	}
}

// awaitShards blocks the coordinator until every dispatched shard has
// finished its pass: the worker-side await mirrored onto barDone.
func (e *Engine) awaitShards() {
	for i := 0; i < e.spinCount; i++ {
		if e.barDone.Load() == 0 {
			return
		}
	}
	e.coordParked.Store(1)
	for e.barDone.Load() != 0 {
		<-e.coordWake
	}
	e.coordParked.Store(0)
}

// startWorkers spawns the persistent shard workers. On a host without
// spare parallelism (GOMAXPROCS == 1) it spawns none — tickActive then
// takes the serial fallback in exact mode and the inline pass in epoch
// mode, avoiding pure-overhead goroutine switching. forceWorkers (tests
// and the sharded-tick benchmark) overrides the host check so the
// concurrent path stays exercised on single-proc machines.
func (e *Engine) startWorkers() {
	if e.workersUp {
		return
	}
	procs := runtime.GOMAXPROCS(0)
	if procs <= 1 && !e.forceWorkers {
		return
	}
	e.spinCount = 0
	if procs > 1 {
		// With only one proc a spinning waiter just steals the core the
		// work needs; park immediately instead.
		e.spinCount = barrierSpin
	}
	e.workersUp = true
	e.workerStop.Store(false)
	if e.coordWake == nil {
		e.coordWake = make(chan struct{}, 1)
	}
	e.workerWG.Add(len(e.shards))
	for _, sc := range e.shards {
		if sc.sig.wake == nil {
			sc.sig.wake = make(chan struct{}, 1)
		}
		go sc.workerLoop(sc.sig.cmd.Load())
	}
}

// stopWorkers retires the persistent workers: publish one generation to
// each with the stop flag up, then join. Generation counters keep their
// values, so a later startWorkers (next kernel's RunCtx) resumes cleanly.
func (e *Engine) stopWorkers() {
	if !e.workersUp {
		return
	}
	e.workersUp = false
	e.workerStop.Store(true)
	for _, sc := range e.shards {
		sc.sig.publish()
	}
	e.workerWG.Wait()
}

// dispatchShards runs every shard whose pass list is non-empty, with
// epochK local cycles per shard (1 = exact mode). The coordinator takes
// the first such shard inline — it would otherwise only wait — and the
// remaining shards run on their workers. With a single busy shard, or no
// workers (single-proc host under epoch mode, or a Run that has not
// started them), every pass runs inline on the coordinator; the staging
// discipline is identical either way, which is what keeps results
// byte-identical across hosts and thread counts.
func (e *Engine) dispatchShards(epochK int) {
	nWork := 0
	for _, sc := range e.shards {
		if len(sc.list) > 0 {
			nWork++
			sc.epochK = epochK
			sc.staging = true
		}
	}
	if nWork == 0 {
		return
	}
	// From here on "has work" is the staging flag, not the list length — a
	// relaxed pass may drain its list to empty mid-epoch.
	if nWork == 1 || !e.workersUp {
		for _, sc := range e.shards {
			if sc.staging {
				sc.safePass()
			}
		}
	} else {
		var own *shardCtx
		e.barDone.Store(int32(nWork - 1))
		for _, sc := range e.shards {
			if !sc.staging {
				continue
			}
			if own == nil {
				own = sc
				continue
			}
			sc.sig.publish()
		}
		own.safePass()
		e.awaitShards()
	}
	for _, sc := range e.shards {
		sc.staging = false
		sc.epochK = 0
	}
	for _, sc := range e.shards {
		if sc.panicVal != nil {
			v, st := sc.panicVal, sc.panicStack
			sc.panicVal, sc.panicStack = nil, nil
			panic(&ShardPanic{Shard: sc.shard, Value: v, Stack: st})
		}
	}
}
