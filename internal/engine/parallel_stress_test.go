package engine

import (
	"fmt"
	"math/rand/v2"
	"runtime"
	"testing"
)

// These stress tests exist to be run under -race (`make tier1` does): they
// drive the spin-then-park barrier and the staged-event arenas through the
// schedules most likely to expose a synchronization hole — more runnable
// goroutines than shards, shards with wildly uneven work, shards that
// drain to idle mid-epoch, and shards that panic while their siblings are
// mid-pass. Determinism is asserted throughout: any schedule-dependent
// divergence is a correctness bug even when the race detector stays quiet.

// stressGOMAXPROCS raises GOMAXPROCS above every shard count used here, so
// workers, the coordinator and the runtime all contend for cores at once —
// the regime where a lost wakeup or a missed happens-before edge actually
// reorders memory. Restored via the returned func.
func stressGOMAXPROCS() func() {
	prev := runtime.GOMAXPROCS(0)
	if prev >= 8 {
		return func() {}
	}
	runtime.GOMAXPROCS(8)
	return func() { runtime.GOMAXPROCS(prev) }
}

// TestBarrierStressRandomImbalance: sharded runs with randomized per-SM
// work and event budgets — shards finish their passes at very different
// times, so fast shards hit the barrier and park (or spin) while slow ones
// still stage — must still match the serial engine's history exactly, for
// several seeds and shard counts that do not divide the SM count.
func TestBarrierStressRandomImbalance(t *testing.T) {
	defer stressGOMAXPROCS()()
	const nSMs = 12
	horizon := uint64(500)
	if testing.Short() {
		horizon = 200
	}
	for seed := uint64(1); seed <= 4; seed++ {
		for _, nShards := range []int{2, 3, 4} {
			imbalance := func(f *parallelFixture) {
				rng := rand.New(rand.NewPCG(seed, uint64(nShards)))
				for _, sm := range f.sms {
					sm.work = rng.IntN(6) // zero = starts idle, woken later
					sm.budget = rng.IntN(12)
				}
			}
			serial := newParallelFixture(nSMs, 0, nShards)
			imbalance(serial)
			serial.run(t, horizon)
			want := serial.history()
			par := newParallelFixture(nSMs, nShards, nShards)
			imbalance(par)
			par.run(t, horizon)
			if got := par.history(); got != want {
				t.Errorf("seed=%d shards=%d diverged from serial:\n--- serial ---\n%s--- sharded ---\n%s",
					seed, nShards, want, got)
			}
		}
	}
}

// TestBarrierStressPanicInShard: a module panicking at an arbitrary point
// in an arbitrary shard — including while every other shard is busy inside
// the same barrier generation — must surface as exactly one *ShardPanic on
// the run goroutine, naming the faulting shard, and the engine's worker
// teardown (RunCtx's deferred stopWorkers) must not deadlock against
// workers parked mid-generation.
func TestBarrierStressPanicInShard(t *testing.T) {
	defer stressGOMAXPROCS()()
	const nShards = 4
	for _, tc := range []struct{ shard, atTick int }{
		{0, 1}, {1, 7}, {2, 25}, {3, 2},
	} {
		t.Run(fmt.Sprintf("shard=%d/tick=%d", tc.shard, tc.atTick), func(t *testing.T) {
			e := New()
			e.SetParallel(nShards)
			e.forceWorkers = true
			e.Register(&wakeTicker{name: "head"})
			var sharded []*wakeTicker
			for i := 0; i < nShards*2; i++ {
				w := &wakeTicker{name: fmt.Sprintf("w%d", i), work: 200}
				sharded = append(sharded, w)
				e.RegisterSharded(w, i%nShards)
			}
			boom := sharded[tc.shard]
			boom.onTick = func(cycle uint64) {
				if boom.ticks == tc.atTick {
					panic("stress fault")
				}
			}
			defer func() {
				sp, ok := recover().(*ShardPanic)
				if !ok {
					t.Fatalf("recovered %T, want *ShardPanic", sp)
				}
				if sp.Shard != tc.shard {
					t.Errorf("ShardPanic.Shard = %d, want %d", sp.Shard, tc.shard)
				}
			}()
			done := false
			e.Schedule(500, func() { done = true })
			_, _ = e.Run(func() bool { return done }, 0)
			t.Error("run completed despite injected panic")
		})
	}
}

// TestEpochStressCatchUpAndDrain pins the epoch/catch-up interaction under
// load: shards whose lists drain to empty mid-epoch (their staging window
// must close cleanly), serial modules woken by deferred notifications at
// the epoch barrier (their catch-up cycles run batched event wakes), and
// shard entries re-woken by completion events during those catch-up
// windows. Relaxed mode has no serial-history equivalent, so the oracle is
// determinism: repeated runs of the identical assembly must agree exactly.
func TestEpochStressCatchUpAndDrain(t *testing.T) {
	defer stressGOMAXPROCS()()
	const nSMs, nShards = 12, 3
	build := func() *parallelFixture {
		f := newParallelFixture(nSMs, nShards, nShards)
		rng := rand.New(rand.NewPCG(7, 11))
		for _, sm := range f.sms {
			sm.work = rng.IntN(4) // shallow: most shards drain mid-epoch
			sm.budget = rng.IntN(10)
		}
		f.relax(8)
		return f
	}
	first := build()
	first.run(t, 600)
	want := first.history()
	if len(first.coll.tickLog) == 0 {
		t.Fatal("collector never ticked — the catch-up path was not exercised")
	}
	for i := 0; i < 3; i++ {
		f := build()
		f.run(t, 600)
		if got := f.history(); got != want {
			t.Errorf("epoch rerun %d diverged (relaxed mode must be deterministic):\n--- first ---\n%s--- rerun ---\n%s",
				i, want, got)
		}
	}
}
