package engine

import (
	"errors"
	"fmt"
	"testing"
)

// shardSM is a synthetic shard-private module shaped like an SM+L1 pair:
// wake-aware, busy while it holds work, pushing downstream traffic in
// PreTick, scheduling completion events through its Context, and notifying
// a shared collector through Defer. All its behavior is a deterministic
// function of (id, tick count), so serial and sharded runs must produce
// identical histories.
type shardSM struct {
	name    string
	id      int
	ctx     Context
	wake    func()
	work    int
	budget  int  // self-rescheduling allowance, bounds the run
	pending int  // downstream pushes emitted at the next PreTick
	relaxed bool // epoch mode: PreTick pushes must escape via Defer
	down    *wakeTicker
	coll    *wakeTicker
	ticks   int
	tickLog []uint64
	sibling *shardSM // same-shard neighbor woken directly during ticks
}

func (s *shardSM) Name() string    { return s.name }
func (s *shardSM) Kind() ModelKind { return CycleAccurate }

// Busy includes undrained downstream pushes, per the PreTicker contract:
// a module holding work for its next PreTick must stay active so the
// pre-phase visits it (real cache models are Busy while their miss
// queues are non-empty for the same reason).
func (s *shardSM) Busy() bool          { return s.work > 0 || s.pending > 0 }
func (s *shardSM) SetWake(wake func()) { s.wake = wake }

func (s *shardSM) give(n int) {
	s.work += n
	if s.wake != nil {
		s.wake()
	}
}

func (s *shardSM) PreTick(cycle uint64) {
	if s.pending == 0 {
		return
	}
	n := s.pending
	s.pending = 0
	if s.relaxed {
		// In relaxed mode (k > 1) PreTick runs on the shard goroutine, so
		// a push into the shared downstream must escape through a
		// shard-safe path — Defer here, standing in for the shard-private
		// boundary ports a real relaxed assembly inserts (see
		// internal/sim's epoch boundary).
		s.ctx.Defer(func() { s.down.give(n) })
		return
	}
	s.down.give(n)
}

func (s *shardSM) Tick(cycle uint64) {
	s.ticks++
	s.tickLog = append(s.tickLog, cycle)
	if s.work > 0 {
		s.work--
	}
	switch s.ticks % 4 {
	case 0:
		if s.budget > 0 {
			s.budget--
			// Completion-event path (an LDST latency, an analytical ALU).
			s.ctx.Schedule(uint64(2+s.id%3), func() { s.give(1) })
		}
	case 1:
		// Cross-shard notification path (block completion): must escape
		// through Defer, applied at the barrier.
		s.ctx.Defer(func() { s.coll.give(1) })
	case 2:
		// Downstream traffic, drained at the next cycle's pre-phase.
		s.pending++
	case 3:
		if s.sibling != nil {
			// Same-shard wake (an SM waking its own L1).
			s.sibling.give(1)
		}
	}
}

// parallelFixture wires nSMs shardSMs between a serial collector (first
// registration, like the block scheduler) and a serial downstream (last,
// like the NoC). nShards == 0 leaves the engine serial. sibStep sets the
// sibling-wake wiring (sm[i] wakes sm[i+sibStep]); a serial baseline and a
// sharded run must be built with the SAME sibStep so they model the same
// system, and a sharded run needs sibStep to be a multiple of nShards so
// siblings share a shard (direct wakes are only legal within a shard).
type parallelFixture struct {
	e    *Engine
	coll *wakeTicker
	down *wakeTicker
	sms  []*shardSM
}

func newParallelFixture(nSMs, nShards, sibStep int) *parallelFixture {
	e := New()
	f := &parallelFixture{e: e}
	f.coll = &wakeTicker{name: "collector"}
	f.down = &wakeTicker{name: "downstream"}
	if nShards > 1 {
		e.SetParallel(nShards)
		// Keep the staged worker path under test even when the host has a
		// single proc (where RunCtx would otherwise take the serial
		// fallback).
		e.forceWorkers = true
	}
	e.Register(f.coll)
	for i := 0; i < nSMs; i++ {
		sm := &shardSM{
			name:   fmt.Sprintf("sm%d", i),
			id:     i,
			work:   3 + i%4,
			budget: 8,
			down:   f.down,
			coll:   f.coll,
		}
		if nShards > 1 {
			sm.ctx = e.ShardContext(i % nShards)
		} else {
			sm.ctx = e
		}
		f.sms = append(f.sms, sm)
	}
	for i := 0; i+sibStep < nSMs; i++ {
		f.sms[i].sibling = f.sms[i+sibStep]
	}
	for i, sm := range f.sms {
		if nShards > 1 {
			e.RegisterSharded(sm, i%nShards)
		} else {
			e.Register(sm)
		}
	}
	e.Register(f.down)
	return f
}

// relax switches the fixture into relaxed-epoch mode: SetEpoch(k) on the
// engine, plus the SMs route their PreTick pushes through Defer — the
// fixture analog of the shard-private boundary ports a relaxed assembly
// must give its sharded modules (SetEpoch's documented contract).
func (f *parallelFixture) relax(k int) {
	f.e.SetEpoch(k)
	for _, sm := range f.sms {
		sm.relaxed = true
	}
}

func (f *parallelFixture) run(t *testing.T, horizon uint64) {
	t.Helper()
	done := false
	f.e.Schedule(horizon, func() { done = true })
	if _, err := f.e.Run(func() bool { return done }, 0); err != nil {
		t.Fatal(err)
	}
}

// history flattens the run into a deterministic comparable form.
func (f *parallelFixture) history() string {
	out := fmt.Sprintf("cycle=%d ticked=%d events=%d coll=%v down=%v\n",
		f.e.Cycle(), f.e.TickedCycles(), f.e.FiredEvents(), f.coll.tickLog, f.down.tickLog)
	for _, sm := range f.sms {
		out += fmt.Sprintf("%s: %v\n", sm.name, sm.tickLog)
	}
	return out
}

// TestParallelMatchesSerial: the sharded engine must reproduce the serial
// engine's execution exactly — every module's per-cycle tick history, the
// event count, and the final cycle — at several shard counts, including
// counts that do not divide the module count evenly.
func TestParallelMatchesSerial(t *testing.T) {
	const nSMs = 8
	for _, nShards := range []int{2, 3, 4, 8} {
		serial := newParallelFixture(nSMs, 0, nShards)
		serial.run(t, 400)
		want := serial.history()
		f := newParallelFixture(nSMs, nShards, nShards)
		f.run(t, 400)
		if got := f.history(); got != want {
			t.Errorf("shards=%d history diverged from serial:\n--- serial ---\n%s--- shards=%d ---\n%s",
				nShards, want, nShards, got)
		}
	}
}

// TestParallelWakeDeferral is the regression test for the wake-staging
// rule: cross-shard notifications issued during a parallel shard tick must
// be deferred to the barrier, not applied inline. Applying them inline
// (calling Engine.activate from worker goroutines) mutates the shared
// active list concurrently — this test fails under -race on that naive
// implementation, and nondeterministically corrupts the collector's tick
// history without it. Heavy shard count and a long horizon maximize
// concurrent barrier traffic.
func TestParallelWakeDeferral(t *testing.T) {
	serial := newParallelFixture(16, 0, 4)
	serial.run(t, 600)
	par := newParallelFixture(16, 4, 4)
	par.run(t, 600)
	if got, want := par.history(), serial.history(); got != want {
		t.Errorf("deferred wakes diverged from serial:\n--- serial ---\n%s--- parallel ---\n%s", want, got)
	}
	if len(par.coll.tickLog) == 0 {
		t.Fatal("collector never woken — deferral path not exercised")
	}
}

// TestShardPanicPropagates: a module panicking inside a worker must not
// kill the process from the worker goroutine; the coordinator re-raises it
// as a *ShardPanic on the simulation goroutine, where the runner's panic
// isolation can catch it.
func TestShardPanicPropagates(t *testing.T) {
	e := New()
	e.SetParallel(2)
	e.forceWorkers = true
	e.Register(&wakeTicker{name: "head"})
	boom := &wakeTicker{name: "boom", work: 10}
	boom.onTick = func(cycle uint64) {
		if boom.ticks == 3 {
			panic("injected fault")
		}
	}
	other := &wakeTicker{name: "other", work: 50}
	e.RegisterSharded(boom, 0)
	e.RegisterSharded(other, 1)

	defer func() {
		r := recover()
		sp, ok := r.(*ShardPanic)
		if !ok {
			t.Fatalf("recovered %v (%T), want *ShardPanic", r, r)
		}
		if sp.Shard != 0 {
			t.Errorf("ShardPanic.Shard = %d, want 0", sp.Shard)
		}
		if sp.Value != "injected fault" {
			t.Errorf("ShardPanic.Value = %v, want injected fault", sp.Value)
		}
		if len(sp.Stack) == 0 {
			t.Error("ShardPanic.Stack empty")
		}
		if sp.Error() == "" {
			t.Error("ShardPanic.Error() empty")
		}
	}()
	done := false
	e.Schedule(100, func() { done = true })
	_, _ = e.Run(func() bool { return done }, 0)
	t.Fatal("run completed despite injected panic")
}

// TestShardLayoutValidation: a serial ticker registered inside the sharded
// registration range breaks the head/segment/tail split; RunCtx must
// reject the assembly with a clear error instead of misticking it.
func TestShardLayoutValidation(t *testing.T) {
	e := New()
	e.SetParallel(2)
	e.RegisterSharded(&wakeTicker{name: "a", work: 5}, 0)
	e.Register(&wakeTicker{name: "interloper", work: 5})
	e.RegisterSharded(&wakeTicker{name: "b", work: 5}, 1)
	done := false
	e.Schedule(10, func() { done = true })
	_, err := e.Run(func() bool { return done }, 0)
	if err == nil {
		t.Fatal("Run accepted a serial ticker inside the sharded range")
	}
	var sp *ShardPanic
	if errors.As(err, &sp) {
		t.Fatalf("layout violation surfaced as a panic, want a plain error: %v", err)
	}
}

// TestRegisterShardedValidation: shard indices out of range and
// non-wake-aware tickers are programming errors caught at registration.
func TestRegisterShardedValidation(t *testing.T) {
	e := New()
	e.SetParallel(2)
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("shard out of range", func() {
		e.RegisterSharded(&wakeTicker{name: "x"}, 2)
	})
	mustPanic("legacy ticker", func() {
		e.RegisterSharded(&fakeTicker{name: "legacy"}, 0)
	})
}

// TestParallelSameCycleWakeVisibility pins the within-shard visibility
// rule to the serial engine's: a shard entry woken by an earlier-indexed
// same-shard entry ticks the same cycle; the reverse direction ticks the
// next cycle.
func TestParallelSameCycleWakeVisibility(t *testing.T) {
	build := func(nShards int) (up, down *wakeTicker, run func(t *testing.T)) {
		e := New()
		if nShards > 1 {
			e.SetParallel(nShards)
			e.forceWorkers = true
		}
		e.Register(&wakeTicker{name: "head"})
		up = &wakeTicker{name: "up"}
		down = &wakeTicker{name: "down"}
		// Keep the sibling shard busy so the worker path engages.
		busy := &wakeTicker{name: "busy", work: 40}
		const fireAt = 20
		up.onTick = func(cycle uint64) {
			if cycle == fireAt {
				down.give(1)
			}
		}
		down.onTick = func(cycle uint64) {
			if cycle == fireAt+2 {
				up.give(1)
			}
		}
		if nShards > 1 {
			e.RegisterSharded(up, 0)   // idx 1, shard 0
			e.RegisterSharded(busy, 1) // idx 2, shard 1
			e.RegisterSharded(down, 0) // idx 3, shard 0
		} else {
			e.Register(up)
			e.Register(busy)
			e.Register(down)
		}
		run = func(t *testing.T) {
			t.Helper()
			e.Schedule(fireAt, func() { up.give(1) })
			e.Schedule(fireAt+2, func() { down.give(1) })
			done := false
			e.Schedule(fireAt+10, func() { done = true })
			if _, err := e.Run(func() bool { return done }, 0); err != nil {
				t.Fatal(err)
			}
		}
		return
	}
	for _, nShards := range []int{0, 2} {
		up, down, run := build(nShards)
		run(t)
		if !containsCycle(down.tickLog, 20) {
			t.Errorf("shards=%d: down not ticked same cycle as its upstream wake; log=%v", nShards, down.tickLog)
		}
		if containsCycle(up.tickLog, 22) {
			t.Errorf("shards=%d: up ticked the same cycle a later-indexed entry woke it; log=%v", nShards, up.tickLog)
		}
		if !containsCycle(up.tickLog, 23) {
			t.Errorf("shards=%d: up not ticked the cycle after its wake; log=%v", nShards, up.tickLog)
		}
	}
}
