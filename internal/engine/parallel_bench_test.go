package engine

import (
	"fmt"
	"testing"
)

// benchShardTicker is a permanently-busy sharded module for the
// steady-state tick benchmark: it exercises the staged Schedule/Defer
// paths every few ticks through preallocated closures, so the benchmark
// measures the engine's per-cycle cost — barrier dispatch, staged-arena
// writes, the fold — with zero allocation attributable to the harness.
type benchShardTicker struct {
	name  string
	ctx   Context
	wake  func()
	work  int
	ticks int
	fill  func() // preallocated completion-event closure
	note  func() // preallocated cross-shard defer closure
	coll  *benchCollector
}

func (t *benchShardTicker) Name() string     { return t.name }
func (t *benchShardTicker) Kind() ModelKind  { return CycleAccurate }
func (t *benchShardTicker) Busy() bool       { return t.work > 0 }
func (t *benchShardTicker) SetWake(w func()) { t.wake = w }
func (t *benchShardTicker) Tick(cycle uint64) {
	t.ticks++
	t.work--
	switch t.ticks % 4 {
	case 0:
		t.ctx.Schedule(2, t.fill) // completion-event path
	case 2:
		t.ctx.Defer(t.note) // cross-shard notification path
	}
}

// benchCollector is the serial module the defers land on; it drains its
// work immediately so the head segment's membership churns every cycle,
// keeping the barrier's rebuild path honest.
type benchCollector struct {
	name string
	wake func()
	work int
}

func (c *benchCollector) Name() string     { return c.name }
func (c *benchCollector) Kind() ModelKind  { return CycleAccurate }
func (c *benchCollector) Busy() bool       { return c.work > 0 }
func (c *benchCollector) SetWake(w func()) { c.wake = w }
func (c *benchCollector) Tick(cycle uint64) {
	if c.work > 0 {
		c.work = 0
	}
}
func (c *benchCollector) give() {
	c.work++
	if c.wake != nil {
		c.wake()
	}
}

// newShardedBenchEngine wires nSMs permanently-busy sharded tickers plus a
// serial collector head into an engine with workers forced up, mirroring
// the head/segment layout of a real assembly.
func newShardedBenchEngine(nSMs, nShards int) (*Engine, *benchCollector) {
	e := New()
	e.SetParallel(nShards)
	e.forceWorkers = true
	coll := &benchCollector{name: "collector"}
	e.Register(coll)
	for i := 0; i < nSMs; i++ {
		t := &benchShardTicker{
			name: fmt.Sprintf("sm%d", i),
			ctx:  e.ShardContext(i % nShards),
			work: 1 << 30,
			coll: coll,
		}
		t.fill = func() {
			t.work++
			if t.wake != nil {
				t.wake()
			}
		}
		t.note = func() { t.coll.give() }
		e.RegisterSharded(t, i%nShards)
	}
	return e, coll
}

// stepCycle advances the engine by one simulated cycle exactly as the run
// loop does — event phase with batched wakes, then the tick — without the
// loop's done()/context scaffolding, so b.N counts cycles.
func stepCycle(e *Engine) {
	if len(e.events) > 0 && e.events[0].cycle <= e.cycle {
		e.batchWake = true
		for len(e.events) > 0 && e.events[0].cycle <= e.cycle {
			ev := e.events.pop()
			e.firedEvents++
			ev.fn()
		}
		e.flushWakes()
	}
	e.tickActive()
	e.tickedCycles++
	e.cycle++
}

// BenchmarkEngineShardedTick measures the steady-state cost of one
// sharded simulated cycle: worker dispatch and join through the
// spin-then-park barrier, staged event/defer arenas, and the fused
// barrier fold. The committed floor is 0 B/op and 0 allocs/op — the
// sharded hot path must not touch the heap once arenas are warm (gated
// via `benchcmp -metric allocs/op -max` in `make benchcmp`).
func BenchmarkEngineShardedTick(b *testing.B) {
	for _, nShards := range []int{2, 4} {
		b.Run(fmt.Sprintf("shards=%d", nShards), func(b *testing.B) {
			e, _ := newShardedBenchEngine(32, nShards)
			if err := e.checkShardLayout(); err != nil {
				b.Fatal(err)
			}
			e.startWorkers()
			defer e.stopWorkers()
			// Warm the arenas: grow staged queues, the event heap, the
			// active-list scratch buffers to their steady-state capacity.
			for i := 0; i < 512; i++ {
				stepCycle(e)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				stepCycle(e)
			}
		})
	}
}
