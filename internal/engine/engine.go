// Package engine implements Swift-Sim's simulation core: a hybrid
// cycle/event engine plus the module abstraction of the paper's "Modular and
// Hybrid GPU Modeling" layer.
//
// Cycle-accurate modules register as Tickers and are ticked every simulated
// cycle while they have work. Analytical modules do not tick: they answer a
// request by computing a latency and scheduling a completion event. Because
// both kinds of module sit behind the same inter-module interfaces, a
// simulator assembly can mix them freely — the paper's central idea. When
// every ticker is idle, the engine fast-forwards directly to the next
// scheduled event, which is where hybrid configurations gain most of their
// speed on memory-bound workloads.
package engine

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"swiftsim/internal/obs"
)

// ModelKind tells how a module is simulated.
type ModelKind int

const (
	// CycleAccurate modules are ticked every cycle and model state
	// transitions in detail.
	CycleAccurate ModelKind = iota
	// Analytical modules compute latencies from closed-form models and
	// interact with the rest of the GPU only through scheduled events.
	Analytical
)

// String returns a human-readable name for k.
func (k ModelKind) String() string {
	switch k {
	case CycleAccurate:
		return "cycle-accurate"
	case Analytical:
		return "analytical"
	default:
		return fmt.Sprintf("ModelKind(%d)", int(k))
	}
}

// Module is any simulated GPU component. The engine keeps an inventory of
// modules so a simulator can report which components are cycle-accurate and
// which are analytical.
type Module interface {
	// Name identifies the module (e.g. "SM3.L1", "WarpScheduler").
	Name() string
	// Kind reports how the module is modeled.
	Kind() ModelKind
}

// Ticker is a cycle-accurate module that needs per-cycle evaluation.
type Ticker interface {
	Module
	// Tick advances the module by one cycle.
	Tick(cycle uint64)
	// Busy reports whether the module has pending per-cycle work. When
	// every registered Ticker is idle the engine jumps to the next
	// scheduled event instead of ticking through empty cycles.
	Busy() bool
}

// WakeAware is a Ticker that self-reports idle→busy transitions. At
// registration the engine installs a wake callback; the module must invoke
// it whenever external input (a port Accept, a completion event, a kernel
// launch) may have given it per-cycle work while it was idle. In exchange
// the engine stops ticking the module while it is idle: each simulated
// cycle touches only the active set, and the all-idle check is an O(1)
// counter test instead of an O(modules) Busy() scan.
//
// Tickers that do not implement WakeAware fall back to the compatible
// legacy contract: they are ticked on every simulated (non-skipped) cycle
// and their Busy() is polled each cycle.
//
// The wake callback is idempotent and cheap when the module is already
// active, so modules may call it conservatively. It must only be invoked
// from within the engine's run loop (module ticks or scheduled events) or
// while the engine is stopped — never from another goroutine.
type WakeAware interface {
	Ticker
	// SetWake installs the engine's activation callback. It is called
	// once, at Register time. Modules must tolerate running without a
	// callback installed (standalone unit tests drive Tick directly).
	SetWake(wake func())
}

type event struct {
	cycle uint64
	seq   uint64 // FIFO tie-break within a cycle
	fn    func()
}

// eventQueue is a binary min-heap ordered by (cycle, seq).
type eventQueue []event

func (q eventQueue) less(i, j int) bool {
	if q[i].cycle != q[j].cycle {
		return q[i].cycle < q[j].cycle
	}
	return q[i].seq < q[j].seq
}

func (q *eventQueue) push(ev event) {
	*q = append(*q, ev)
	i := len(*q) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		(*q)[i], (*q)[parent] = (*q)[parent], (*q)[i]
		i = parent
	}
}

func (q *eventQueue) pop() event {
	h := *q
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = event{}
	*q = h[:n]
	q.siftDown(0)
	return top
}

func (q *eventQueue) siftDown(i int) {
	h := *q
	n := len(h)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		smallest := left
		if right := left + 1; right < n && q.less(right, left) {
			smallest = right
		}
		if !q.less(smallest, i) {
			return
		}
		h[i], h[smallest] = h[smallest], h[i]
		i = smallest
	}
}

// tickerEntry is the engine's per-ticker scheduling state.
type tickerEntry struct {
	t         Ticker
	wakeAware bool
	// pre is non-nil for tickers implementing PreTicker; the engine runs
	// PreTick immediately before Tick in serial mode, and hoists it into
	// the serial pre-phase of the barrier protocol in parallel mode.
	pre PreTicker
	// shard is the entry's shard index (-1 = serial shard); sctx is the
	// owning shard's staging context, nil for serial entries.
	shard int
	sctx  *shardCtx
	// active marks membership in the active list. Wake-aware tickers are
	// active while busy (as of their last post-tick Busy poll) or pending;
	// legacy tickers are permanently active.
	active bool
	// busy is the wake-aware ticker's last polled Busy() state. Only busy
	// tickers keep the engine from fast-forwarding.
	busy bool
	// pending guarantees at least one tick at the next simulated cycle
	// (set by the wake callback; cleared when the tick happens). A
	// pending-but-idle ticker does not prevent fast-forwarding — exactly
	// like the legacy engine, it is simply ticked at whichever cycle the
	// engine visits next.
	pending bool
}

// Engine drives a simulation: it owns simulated time, the set of
// cycle-accurate tickers, and the event queue used by analytical modules.
//
// Tickers are evaluated through an active set: each simulated cycle ticks,
// in registration order, only the tickers that are busy or were explicitly
// woken (see WakeAware). Legacy tickers without wake support stay in the
// active set permanently and are polled for Busy every cycle, preserving
// the original tick-everything semantics for them.
type Engine struct {
	cycle   uint64
	seq     uint64
	entries []tickerEntry
	// active holds the indices of active entries, sorted ascending so the
	// tick order within the active set is registration order.
	active []int
	// legacy holds the indices of non-wake-aware tickers (a subset of
	// active), polled for Busy each cycle.
	legacy []int
	// busyCount counts wake-aware entries whose last poll reported busy;
	// with no legacy tickers the all-idle check is busyCount == 0.
	busyCount int
	// tickPos is the current index into active during the tick phase, or
	// -1 outside it; activations during the phase use it to decide whether
	// the woken ticker is still reachable this cycle.
	tickPos int
	modules []Module
	events  eventQueue

	// stats
	tickedCycles  uint64
	skippedCycles uint64
	firedEvents   uint64

	// tracing. traceOn caches tr.Enabled(ModuleLevel) so the run loop's
	// per-iteration observability cost with tracing off is one bool test.
	// Probes are sampled at visited cycles only — never via Schedule, which
	// would wake the engine at sample cycles and change ticked/skipped
	// counts (observation must not perturb simulation).
	tr         *obs.Tracer
	trTid      int32
	traceOn    bool
	probes     []probe
	nextSample uint64
	sampleIvl  uint64
	// preSample, when set, runs immediately before each probe sample (the
	// simulator uses it to drain per-shard metric shadows so sampled
	// windows match the serial engine byte-for-byte).
	preSample func()

	// parallel (sharded) execution state; see parallel.go. nShards == 0
	// means serial mode — the default, and the only mode plain Register
	// ever produces.
	nShards       int
	shards        []*shardCtx
	pLo, pHi      int // contiguous registration-index range of sharded entries
	shardsChecked bool
	// segCount is the number of sharded entries currently on the active
	// list. They always occupy one contiguous run of positions (the active
	// list is sorted and [pLo, pHi] contains only sharded entries), so the
	// barrier and the epoch catch-up skip the whole segment in O(1)
	// instead of scanning it.
	segCount int
	// persistent worker state (barrier.go). workersUp is only set when the
	// host has spare parallelism (or forceWorkers, for tests/benchmarks);
	// exact-mode sharded engines without workers take the plain serial
	// tick path, which is byte-identical by construction.
	workersUp    bool
	forceWorkers bool
	spinCount    int
	workerStop   atomic.Bool
	workerWG     sync.WaitGroup
	barDone      atomic.Int32
	coordParked  atomic.Uint32
	coordWake    chan struct{}
	// preStaging routes Schedule calls made during the parallel pre-phase
	// (downstream drains) into preStage, so their event sequence numbers
	// interleave with the shard-staged ones exactly as in serial order.
	preStaging bool
	preIdx     int
	preStage   []stagedEvent
	// epochK > 1 enables relaxed-sync epochs: shards run epochK local
	// cycles between every barrier instead of one; see epoch.go.
	epochK int
	// segScratch/activeScratch/mergeCur/deferScratch are retained buffers
	// for the barrier's segment snapshot, active-list rebuild, staged-queue
	// merge and defer fold (no per-cycle allocations in steady state).
	segScratch    []int
	activeScratch []int
	mergeCur      []int
	deferScratch  []func()
	// batchWake diverts activations into wakeBuf during the event-fire
	// phases, where a burst of completion events would otherwise pay one
	// O(active) list insertion each; flushWakes folds the batch with a
	// single merge.
	batchWake bool
	wakeBuf   []int
}

// probe is a named read-only gauge sampled into the counter timeline.
type probe struct {
	name string
	fn   func() uint64
}

// DefaultSampleInterval is how many visited cycles pass between counter
// probe samples when tracing at ModuleLevel or above.
const DefaultSampleInterval = 256

// SetTracer installs the engine's tracer (nil turns tracing off). Call
// before Run; the engine registers its own track and emits fast-forward
// spans and probe samples at ModuleLevel.
func (e *Engine) SetTracer(t *obs.Tracer) {
	e.tr = t
	e.traceOn = t.Enabled(obs.ModuleLevel)
	if e.traceOn {
		e.trTid = t.RegisterTrack("engine")
		if e.sampleIvl == 0 {
			e.sampleIvl = DefaultSampleInterval
		}
	}
}

// Tracer returns the engine's tracer (nil when tracing is off), so
// modules wired to the same engine can share it.
func (e *Engine) Tracer() *obs.Tracer { return e.tr }

// AddProbe registers a gauge sampled into the trace's counter timeline
// every DefaultSampleInterval visited cycles (at ModuleLevel). fn must be
// a pure read of simulator state.
func (e *Engine) AddProbe(name string, fn func() uint64) {
	e.probes = append(e.probes, probe{name, fn})
}

// ActiveTickers returns the size of the active set — how many
// cycle-accurate modules are currently being ticked.
func (e *Engine) ActiveTickers() int { return len(e.active) }

// SetPreSample installs a hook run immediately before every probe sample
// (and only then). Parallel assemblies use it to fold per-shard metric
// shadows into the main gatherer so the sampled counter timeline is
// identical to a serial run's.
func (e *Engine) SetPreSample(fn func()) { e.preSample = fn }

// sample emits one counter timeline row at the current cycle.
func (e *Engine) sample() {
	if e.preSample != nil {
		e.preSample()
	}
	e.tr.Counter(obs.ModuleLevel, "active_tickers", e.trTid, e.cycle, uint64(len(e.active)))
	for _, p := range e.probes {
		e.tr.Counter(obs.ModuleLevel, p.name, e.trTid, e.cycle, p.fn())
	}
	e.nextSample = e.cycle + e.sampleIvl
}

// New returns an empty engine at cycle 0.
func New() *Engine {
	return &Engine{tickPos: -1, pLo: -1}
}

// Cycle returns the current simulated cycle.
func (e *Engine) Cycle() uint64 { return e.cycle }

// TickedCycles returns the number of cycles that were simulated by ticking
// (a proxy for cycle-accurate work performed).
func (e *Engine) TickedCycles() uint64 { return e.tickedCycles }

// SkippedCycles returns the number of cycles the engine fast-forwarded over
// because all tickers were idle (a proxy for work the hybrid configuration
// avoided).
func (e *Engine) SkippedCycles() uint64 { return e.skippedCycles }

// FiredEvents returns the number of scheduled events executed.
func (e *Engine) FiredEvents() uint64 { return e.firedEvents }

// ErrNotQuiescent reports an AdvanceTime call while the engine still holds
// pending work.
var ErrNotQuiescent = fmt.Errorf("engine: not quiescent: pending events or busy modules")

// AdvanceTime moves the clock forward by delta cycles without ticking any
// module — the analytical time-advance of sampled mode's launch replay: a
// memoized kernel's duration is added to simulated time as if it had run,
// with no per-cycle work. The engine must be quiescent (no scheduled
// events, no busy ticker); otherwise in-flight work would silently jump
// over the skipped interval and fire late. The advanced cycles count as
// fast-forwarded in the ticked/skipped decomposition.
func (e *Engine) AdvanceTime(delta uint64) error {
	if !e.Quiescent() {
		return ErrNotQuiescent
	}
	e.cycle += delta
	e.skippedCycles += delta
	return nil
}

// AddModule records a non-ticking module in the inventory.
func (e *Engine) AddModule(m Module) {
	e.modules = append(e.modules, m)
}

// Register adds a cycle-accurate ticker (and records it in the inventory).
// Tickers are ticked in registration order, so assemblies should register
// upstream modules (schedulers) before downstream ones (caches, DRAM).
//
// A ticker implementing WakeAware gets its wake callback installed here and
// enters the active set only while it has work; any other ticker is ticked
// every simulated cycle, as the original engine did.
func (e *Engine) Register(t Ticker) {
	idx := len(e.entries)
	wa, wakeAware := t.(WakeAware)
	en := tickerEntry{t: t, wakeAware: wakeAware, shard: -1}
	en.pre, _ = t.(PreTicker)
	e.entries = append(e.entries, en)
	e.modules = append(e.modules, t)
	if wakeAware {
		// Serial entries wake through activate directly: they are never
		// woken from inside a parallel shard pass (cross-shard effects go
		// through Defer/Schedule, applied at the barrier with staging off),
		// so the wakeEntry staging check would be a dead branch on a hot
		// path. Sharded entries (RegisterSharded) get the staging-aware
		// callback.
		wa.SetWake(func() { e.activate(idx) })
		// Start pending so the first simulated cycle ticks every module
		// once, letting it publish its initial busy state.
		e.activate(idx)
	} else {
		e.legacy = append(e.legacy, idx)
		en := &e.entries[idx]
		en.active = true
		e.active = append(e.active, idx) // idx is the largest: stays sorted
	}
}

// activate marks entry idx pending and inserts it into the active list. It
// is idempotent and cheap when the ticker is already active. Activations
// that land at or before the current tick position take effect next cycle
// (the registration-order pass has already moved past them), matching the
// legacy engine, where a module woken by a later-registered module's tick
// saw the new state only on its next tick.
func (e *Engine) activate(idx int) {
	en := &e.entries[idx]
	en.pending = true
	if en.active {
		return
	}
	en.active = true
	if en.sctx != nil {
		e.segCount++
	}
	if e.batchWake {
		// Event-fire phase: defer the list insertion to flushWakes, which
		// folds the whole burst in one merge. The flags above are already
		// set, so re-wakes of the same entry stay idempotent.
		e.wakeBuf = append(e.wakeBuf, idx)
	} else {
		pos := sort.SearchInts(e.active, idx)
		e.active = append(e.active, 0)
		copy(e.active[pos+1:], e.active[pos:])
		e.active[pos] = idx
		if e.tickPos >= 0 && pos <= e.tickPos {
			e.tickPos++
		}
	}
	// Poll Busy on insertion: a module woken at a position the current tick
	// pass has already visited is only ticked next cycle, but it must gate
	// fast-forwarding now — the legacy engine's post-pass Busy scan covered
	// every ticker, active or not.
	if en.t.Busy() && !en.busy {
		en.busy = true
		e.busyCount++
	}
}

// ModuleInfo is one row of the engine's module inventory.
type ModuleInfo struct {
	Name string
	Kind ModelKind
}

// Inventory lists all registered modules with their modeling kinds, for the
// hybrid-configuration report.
func (e *Engine) Inventory() []ModuleInfo {
	inv := make([]ModuleInfo, len(e.modules))
	for i, m := range e.modules {
		inv[i] = ModuleInfo{Name: m.Name(), Kind: m.Kind()}
	}
	return inv
}

// Schedule runs fn after delay cycles. A delay of 0 runs fn at the current
// cycle if the engine has not yet processed events for it, otherwise at the
// next cycle boundary; analytical modules should use delays >= 1.
func (e *Engine) Schedule(delay uint64, fn func()) {
	if e.preStaging {
		// Parallel pre-phase (downstream drains): stage the event so its
		// sequence number is assigned at the barrier, interleaved with the
		// shard-staged events in exact serial order.
		e.preStage = append(e.preStage, stagedEvent{idx: e.preIdx, cyc: e.cycle, delay: delay, fn: fn})
		return
	}
	e.seq++
	e.events.push(event{cycle: e.cycle + delay, seq: e.seq, fn: fn})
}

// ErrDeadlock is returned by Run when no ticker is busy, no events are
// pending, and the done predicate is still false.
var ErrDeadlock = fmt.Errorf("engine: deadlock: all modules idle but simulation incomplete")

// ErrCycleLimit is returned by Run when maxCycles elapses first.
var ErrCycleLimit = fmt.Errorf("engine: cycle limit reached")

// ErrCanceled is returned by RunCtx when the context is canceled or its
// deadline expires before the simulation completes. The returned error
// also wraps the context's error, so errors.Is(err, context.Canceled) and
// errors.Is(err, context.DeadlineExceeded) report the cause.
var ErrCanceled = fmt.Errorf("engine: run canceled")

// ctxPollInterval is how many scheduler-loop iterations pass between
// context polls. Polling a channel every cycle would dominate the hot
// loop; at 4096 iterations cancellation latency stays far below a
// millisecond of host time while the overhead is unmeasurable.
const ctxPollInterval = 4096

// Run advances the simulation until done reports true. It returns the final
// cycle. maxCycles (0 = unlimited) bounds simulated time to protect against
// livelock in misconfigured assemblies.
//
// Each simulated cycle proceeds as: fire all events scheduled for the
// cycle, then tick every ticker once. When no ticker reports Busy after a
// cycle completes, the engine advances time directly to the next pending
// event.
func (e *Engine) Run(done func() bool, maxCycles uint64) (uint64, error) {
	return e.RunCtx(nil, done, maxCycles)
}

// RunCtx is Run with cooperative cancellation: the context is polled every
// few thousand scheduler iterations and, once canceled, the run stops at
// the current cycle with an error wrapping both ErrCanceled and ctx.Err().
// A nil ctx behaves exactly like Run.
func (e *Engine) RunCtx(ctx context.Context, done func() bool, maxCycles uint64) (uint64, error) {
	if done() {
		return e.cycle, nil
	}
	if e.nShards > 1 && e.pLo >= 0 {
		if err := e.checkShardLayout(); err != nil {
			return e.cycle, err
		}
		e.startWorkers()
		defer e.stopWorkers()
	}
	var cancelCh <-chan struct{}
	if ctx != nil {
		cancelCh = ctx.Done()
	}
	poll := ctxPollInterval // poll on the first iteration: catch pre-canceled contexts
	for {
		if cancelCh != nil {
			poll++
			if poll >= ctxPollInterval {
				poll = 0
				select {
				case <-cancelCh:
					return e.cycle, fmt.Errorf("%w at cycle %d: %w", ErrCanceled, e.cycle, ctx.Err())
				default:
				}
			}
		}
		if maxCycles > 0 && e.cycle >= maxCycles {
			return e.cycle, fmt.Errorf("%w (%d cycles)", ErrCycleLimit, maxCycles)
		}

		// Fire events due this cycle. Events may schedule more events
		// for the same cycle; they run in FIFO order after it. Wakes are
		// batched across the burst and folded in one merge.
		if len(e.events) > 0 && e.events[0].cycle <= e.cycle {
			e.batchWake = true
			for len(e.events) > 0 && e.events[0].cycle <= e.cycle {
				ev := e.events.pop()
				e.firedEvents++
				ev.fn()
			}
			e.flushWakes()
		}

		e.tickActive()
		e.tickedCycles++
		if e.traceOn && e.cycle >= e.nextSample {
			e.sample()
		}

		if done() {
			return e.cycle, nil
		}

		if e.anyBusy() {
			e.cycle++
			continue
		}
		// All tickers idle: fast-forward to the next event.
		if len(e.events) == 0 {
			return e.cycle, fmt.Errorf("%w at cycle %d", ErrDeadlock, e.cycle)
		}
		next := e.events[0].cycle
		if next <= e.cycle {
			e.cycle++
		} else {
			if e.traceOn {
				e.tr.Span(obs.ModuleLevel, "engine", "fast-forward", e.trTid, e.cycle+1, next)
			}
			e.skippedCycles += next - e.cycle - 1
			e.cycle = next
		}
	}
}

// tickActive ticks the active set in registration order. After each
// wake-aware ticker's tick its Busy() is re-polled: a ticker that is idle
// and not re-woken leaves the active set and is not touched again until a
// wake. Activations occurring during the pass (a scheduler assigning work
// to a downstream module, for instance) are ticked this same cycle when
// their registration index has not been passed yet — the same visibility
// the tick-everything engine provided.
//
// In parallel mode (SetParallel(n>1) with sharded registrations) the cycle
// is instead split into serial head, concurrent shard passes, a
// deterministic barrier and a serial tail; see tickSharded in parallel.go.
// Exact-mode sharded engines without workers (startWorkers declined to
// spawn any: single-proc host, no forceWorkers) tick serially instead —
// the staged protocol reproduces the serial order exactly, so the results
// are byte-identical and the per-cycle staging cost is saved where no
// speedup was available anyway. Epoch mode has no serial equivalent and
// always runs its own protocol, inline when workers are down.
func (e *Engine) tickActive() {
	if e.nShards > 1 && e.pLo >= 0 {
		if e.epochK > 1 {
			e.tickEpoch()
			return
		}
		if e.workersUp {
			e.tickSharded()
			return
		}
	}
	e.tickPos = 0
	e.tickSerialRange(maxInt)
	e.tickPos = -1
}

// flushWakes ends a batchWake window, merging the buffered activations
// into the active list in one backward in-place pass: O(active + batch)
// for the whole burst instead of O(active) per wake. It must only run
// outside the tick phase (tickPos == -1) — the event-fire windows — so no
// tickPos adjustment is needed.
func (e *Engine) flushWakes() {
	e.batchWake = false
	wb := e.wakeBuf
	if len(wb) == 0 {
		return
	}
	// Completion events usually wake entries in heap order, not index
	// order; the buffer is tiny, so sorting it is cheap (and allocation
	// free since Go's sort.Ints runs in place).
	sort.Ints(wb)
	n := len(e.active)
	e.active = append(e.active, wb...)
	i, j, k := n-1, len(wb)-1, len(e.active)-1
	for j >= 0 {
		if i >= 0 && e.active[i] > wb[j] {
			e.active[k] = e.active[i]
			i--
		} else {
			e.active[k] = wb[j]
			j--
		}
		k--
	}
	e.wakeBuf = wb[:0]
}

// tickSerialRange advances tickPos through the active list, ticking every
// entry whose registration index is <= hi. It is the serial engine's whole
// tick pass when hi is maxInt, and the head/tail phases of a sharded cycle
// otherwise. PreTicker entries get their PreTick immediately before Tick,
// which in serial mode is exactly where the drain used to live inside
// Tick itself.
func (e *Engine) tickSerialRange(hi int) {
	for e.tickPos < len(e.active) {
		idx := e.active[e.tickPos]
		if idx > hi {
			return
		}
		en := &e.entries[idx]
		en.pending = false
		if en.pre != nil {
			en.pre.PreTick(e.cycle)
		}
		en.t.Tick(e.cycle)
		if en.wakeAware {
			nowBusy := en.t.Busy()
			if nowBusy != en.busy {
				en.busy = nowBusy
				if nowBusy {
					e.busyCount++
				} else {
					e.busyCount--
				}
			}
			if !nowBusy && !en.pending {
				en.active = false
				if en.sctx != nil {
					e.segCount--
				}
				e.active = append(e.active[:e.tickPos], e.active[e.tickPos+1:]...)
				continue
			}
		}
		e.tickPos++
	}
}

// anyBusy reports whether any ticker still has per-cycle work: an O(1)
// counter check over the wake-aware modules, plus a Busy poll of the
// legacy tickers (none in the standard assemblies).
//
// In relaxed-epoch mode a pending sharded entry also counts: the epoch's
// catch-up phase skips the sharded segment, so an entry woken by a staged
// completion event firing mid-catch-up has not been ticked since its wake
// and its polled Busy state is stale (an SM recomputes busyCache only
// inside Tick). The exact engine has no such window — an event-phase wake
// is always followed by a same-cycle tick — so the scan is gated on
// epochK to keep the exact path O(1).
func (e *Engine) anyBusy() bool {
	if e.busyCount > 0 {
		return true
	}
	for _, idx := range e.legacy {
		if e.entries[idx].t.Busy() {
			return true
		}
	}
	if e.epochK > 1 && e.segCount > 0 {
		// The sharded entries sit in one contiguous run of the sorted
		// active list; scan only that window.
		lo := sort.SearchInts(e.active, e.pLo)
		for _, idx := range e.active[lo : lo+e.segCount] {
			if e.entries[idx].pending {
				return true
			}
		}
	}
	return false
}
