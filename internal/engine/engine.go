// Package engine implements Swift-Sim's simulation core: a hybrid
// cycle/event engine plus the module abstraction of the paper's "Modular and
// Hybrid GPU Modeling" layer.
//
// Cycle-accurate modules register as Tickers and are ticked every simulated
// cycle while they have work. Analytical modules do not tick: they answer a
// request by computing a latency and scheduling a completion event. Because
// both kinds of module sit behind the same inter-module interfaces, a
// simulator assembly can mix them freely — the paper's central idea. When
// every ticker is idle, the engine fast-forwards directly to the next
// scheduled event, which is where hybrid configurations gain most of their
// speed on memory-bound workloads.
package engine

import (
	"context"
	"fmt"
)

// ModelKind tells how a module is simulated.
type ModelKind int

const (
	// CycleAccurate modules are ticked every cycle and model state
	// transitions in detail.
	CycleAccurate ModelKind = iota
	// Analytical modules compute latencies from closed-form models and
	// interact with the rest of the GPU only through scheduled events.
	Analytical
)

// String returns a human-readable name for k.
func (k ModelKind) String() string {
	switch k {
	case CycleAccurate:
		return "cycle-accurate"
	case Analytical:
		return "analytical"
	default:
		return fmt.Sprintf("ModelKind(%d)", int(k))
	}
}

// Module is any simulated GPU component. The engine keeps an inventory of
// modules so a simulator can report which components are cycle-accurate and
// which are analytical.
type Module interface {
	// Name identifies the module (e.g. "SM3.L1", "WarpScheduler").
	Name() string
	// Kind reports how the module is modeled.
	Kind() ModelKind
}

// Ticker is a cycle-accurate module that needs per-cycle evaluation.
type Ticker interface {
	Module
	// Tick advances the module by one cycle.
	Tick(cycle uint64)
	// Busy reports whether the module has pending per-cycle work. When
	// every registered Ticker is idle the engine jumps to the next
	// scheduled event instead of ticking through empty cycles.
	Busy() bool
}

type event struct {
	cycle uint64
	seq   uint64 // FIFO tie-break within a cycle
	fn    func()
}

// eventQueue is a binary min-heap ordered by (cycle, seq).
type eventQueue []event

func (q eventQueue) less(i, j int) bool {
	if q[i].cycle != q[j].cycle {
		return q[i].cycle < q[j].cycle
	}
	return q[i].seq < q[j].seq
}

func (q *eventQueue) push(ev event) {
	*q = append(*q, ev)
	i := len(*q) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		(*q)[i], (*q)[parent] = (*q)[parent], (*q)[i]
		i = parent
	}
}

func (q *eventQueue) pop() event {
	h := *q
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = event{}
	*q = h[:n]
	q.siftDown(0)
	return top
}

func (q *eventQueue) siftDown(i int) {
	h := *q
	n := len(h)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		smallest := left
		if right := left + 1; right < n && q.less(right, left) {
			smallest = right
		}
		if !q.less(smallest, i) {
			return
		}
		h[i], h[smallest] = h[smallest], h[i]
		i = smallest
	}
}

// Engine drives a simulation: it owns simulated time, the set of
// cycle-accurate tickers, and the event queue used by analytical modules.
type Engine struct {
	cycle   uint64
	seq     uint64
	tickers []Ticker
	modules []Module
	events  eventQueue

	// stats
	tickedCycles  uint64
	skippedCycles uint64
	firedEvents   uint64
}

// New returns an empty engine at cycle 0.
func New() *Engine {
	return &Engine{}
}

// Cycle returns the current simulated cycle.
func (e *Engine) Cycle() uint64 { return e.cycle }

// TickedCycles returns the number of cycles that were simulated by ticking
// (a proxy for cycle-accurate work performed).
func (e *Engine) TickedCycles() uint64 { return e.tickedCycles }

// SkippedCycles returns the number of cycles the engine fast-forwarded over
// because all tickers were idle (a proxy for work the hybrid configuration
// avoided).
func (e *Engine) SkippedCycles() uint64 { return e.skippedCycles }

// FiredEvents returns the number of scheduled events executed.
func (e *Engine) FiredEvents() uint64 { return e.firedEvents }

// AddModule records a non-ticking module in the inventory.
func (e *Engine) AddModule(m Module) {
	e.modules = append(e.modules, m)
}

// Register adds a cycle-accurate ticker (and records it in the inventory).
// Tickers are ticked in registration order, so assemblies should register
// upstream modules (schedulers) before downstream ones (caches, DRAM).
func (e *Engine) Register(t Ticker) {
	e.tickers = append(e.tickers, t)
	e.modules = append(e.modules, t)
}

// ModuleInfo is one row of the engine's module inventory.
type ModuleInfo struct {
	Name string
	Kind ModelKind
}

// Inventory lists all registered modules with their modeling kinds, for the
// hybrid-configuration report.
func (e *Engine) Inventory() []ModuleInfo {
	inv := make([]ModuleInfo, len(e.modules))
	for i, m := range e.modules {
		inv[i] = ModuleInfo{Name: m.Name(), Kind: m.Kind()}
	}
	return inv
}

// Schedule runs fn after delay cycles. A delay of 0 runs fn at the current
// cycle if the engine has not yet processed events for it, otherwise at the
// next cycle boundary; analytical modules should use delays >= 1.
func (e *Engine) Schedule(delay uint64, fn func()) {
	e.seq++
	e.events.push(event{cycle: e.cycle + delay, seq: e.seq, fn: fn})
}

// ErrDeadlock is returned by Run when no ticker is busy, no events are
// pending, and the done predicate is still false.
var ErrDeadlock = fmt.Errorf("engine: deadlock: all modules idle but simulation incomplete")

// ErrCycleLimit is returned by Run when maxCycles elapses first.
var ErrCycleLimit = fmt.Errorf("engine: cycle limit reached")

// ErrCanceled is returned by RunCtx when the context is canceled or its
// deadline expires before the simulation completes. The returned error
// also wraps the context's error, so errors.Is(err, context.Canceled) and
// errors.Is(err, context.DeadlineExceeded) report the cause.
var ErrCanceled = fmt.Errorf("engine: run canceled")

// ctxPollInterval is how many scheduler-loop iterations pass between
// context polls. Polling a channel every cycle would dominate the hot
// loop; at 4096 iterations cancellation latency stays far below a
// millisecond of host time while the overhead is unmeasurable.
const ctxPollInterval = 4096

// Run advances the simulation until done reports true. It returns the final
// cycle. maxCycles (0 = unlimited) bounds simulated time to protect against
// livelock in misconfigured assemblies.
//
// Each simulated cycle proceeds as: fire all events scheduled for the
// cycle, then tick every ticker once. When no ticker reports Busy after a
// cycle completes, the engine advances time directly to the next pending
// event.
func (e *Engine) Run(done func() bool, maxCycles uint64) (uint64, error) {
	return e.RunCtx(nil, done, maxCycles)
}

// RunCtx is Run with cooperative cancellation: the context is polled every
// few thousand scheduler iterations and, once canceled, the run stops at
// the current cycle with an error wrapping both ErrCanceled and ctx.Err().
// A nil ctx behaves exactly like Run.
func (e *Engine) RunCtx(ctx context.Context, done func() bool, maxCycles uint64) (uint64, error) {
	if done() {
		return e.cycle, nil
	}
	var cancelCh <-chan struct{}
	if ctx != nil {
		cancelCh = ctx.Done()
	}
	poll := ctxPollInterval // poll on the first iteration: catch pre-canceled contexts
	for {
		if cancelCh != nil {
			poll++
			if poll >= ctxPollInterval {
				poll = 0
				select {
				case <-cancelCh:
					return e.cycle, fmt.Errorf("%w at cycle %d: %w", ErrCanceled, e.cycle, ctx.Err())
				default:
				}
			}
		}
		if maxCycles > 0 && e.cycle >= maxCycles {
			return e.cycle, fmt.Errorf("%w (%d cycles)", ErrCycleLimit, maxCycles)
		}

		// Fire events due this cycle. Events may schedule more events
		// for the same cycle; they run in FIFO order after it.
		for len(e.events) > 0 && e.events[0].cycle <= e.cycle {
			ev := e.events.pop()
			e.firedEvents++
			ev.fn()
		}

		for _, t := range e.tickers {
			t.Tick(e.cycle)
		}
		e.tickedCycles++

		if done() {
			return e.cycle, nil
		}

		if e.anyBusy() {
			e.cycle++
			continue
		}
		// All tickers idle: fast-forward to the next event.
		if len(e.events) == 0 {
			return e.cycle, ErrDeadlock
		}
		next := e.events[0].cycle
		if next <= e.cycle {
			e.cycle++
		} else {
			e.skippedCycles += next - e.cycle - 1
			e.cycle = next
		}
	}
}

func (e *Engine) anyBusy() bool {
	for _, t := range e.tickers {
		if t.Busy() {
			return true
		}
	}
	return false
}
