// Relaxed-sync epoch execution.
//
// PR 5's sharded mode barriers every simulated cycle, which caps parallel
// speedup at the barrier frequency. SetEpoch(k > 1) relaxes that: each
// shard runs k consecutive local cycles between barriers, with every
// cross-shard side effect (Schedule, Defer, pushes into a boundary queue)
// captured together with the absolute cycle it happened at, and released
// at the barrier in deterministic (cycle, registration index, phase)
// order. The semantics are *bounded staleness*:
//
//   - shard-local state is always exact — a shard never observes a future
//     value of its own modules;
//   - cross-shard effects are correct-or-late — an event captured at local
//     cycle T+j fires at its true cycle when that cycle has not yet been
//     visited, and at the next event phase otherwise (never early);
//   - serial modules (block scheduler, NoC, L2, DRAM) run every cycle of
//     the epoch in catch-up order after the shards, consuming the staged
//     traffic at the cycles it belongs to;
//   - the schedule is a pure function of (assembly, k): results are
//     independent of the thread count and host timing, so a relaxed run
//     is still reproducible bit for bit.
//
// An epoch visits cycles [T, T+k-1] as:
//
//  1. serial head at T (exactly as in exact mode);
//  2. shard passes: every shard with active entries runs k local cycles,
//     rebuilding its pass list from its members' active flags between
//     local cycles; PreTick drains run inside the pass (the assembly must
//     give sharded modules shard-private downstream ports — see
//     internal/sim's epoch boundary);
//  3. barrier: active-list rebuild, busy-delta fold, staged flush in
//     (cycle, index, phase) order — identical mechanics to tickSharded;
//  4. serial tail at T;
//  5. catch-up: for each remaining cycle T+1..T+k-1, fire due events and
//     run the serial head and tail (the sharded segment is skipped — those
//     modules already ran their local cycles).
//
// done()/maxCycles are evaluated at epoch granularity, so a run may
// overshoot its natural end by up to k-1 cycles; the error-envelope
// harness in internal/regress quantifies the resulting metric drift.
package engine

// SetEpoch sets the relaxed-sync epoch length in cycles. k <= 1 keeps the
// exact barrier-per-cycle protocol (the default); k > 1 lets shards run k
// local cycles between barriers. Call before Run, after SetParallel. The
// assembly enabling epochs must route every sharded module's downstream
// traffic through shard-private ports (bounded-staleness queues), because
// PreTick drains are no longer hoisted into a serial pre-phase.
func (e *Engine) SetEpoch(k int) {
	if k < 1 {
		k = 1
	}
	e.epochK = k
}

// EpochCycles returns the configured epoch length (1 = exact mode).
func (e *Engine) EpochCycles() int {
	if e.epochK < 1 {
		return 1
	}
	return e.epochK
}

// Quiescent reports whether the engine holds no pending work at all: no
// scheduled events and no busy ticker. Snapshots are only taken at
// quiescent points — there is no in-flight state to serialize then.
func (e *Engine) Quiescent() bool {
	return len(e.events) == 0 && !e.anyBusy()
}

// runEpochPass is runPass's relaxed twin: the shard runs k consecutive
// local cycles. Between local cycles the pass list is rebuilt from the
// shard's members' active flags, so entries that went idle drop out and
// entries woken locally (fills completing inside the shard) are picked up.
// PreTick runs inside the pass immediately before Tick — with a
// shard-private downstream port that is exactly the serial engine's
// drain-then-tick order for this module.
func (sc *shardCtx) runEpochPass(k int) {
	e := sc.e
	for off := 0; off < k; off++ {
		sc.epochOff = uint64(off)
		if off > 0 {
			list := sc.list[:0]
			for _, idx := range sc.members {
				if e.entries[idx].active {
					list = append(list, idx)
				}
			}
			sc.list = list
			if len(sc.list) == 0 {
				break
			}
		}
		cyc := e.cycle + uint64(off)
		for sc.lpos = 0; sc.lpos < len(sc.list); sc.lpos++ {
			idx := sc.list[sc.lpos]
			sc.current = idx
			en := &e.entries[idx]
			en.pending = false
			if en.pre != nil {
				en.pre.PreTick(cyc)
			}
			en.t.Tick(cyc)
			nowBusy := en.t.Busy()
			if nowBusy != en.busy {
				en.busy = nowBusy
				if nowBusy {
					sc.busyDelta++
				} else {
					sc.busyDelta--
				}
			}
			if !nowBusy && !en.pending {
				en.active = false
				sc.dirty = true
			}
		}
		sc.current = -1
	}
	sc.epochOff = 0
}

// tickEpoch is one epoch of epochK simulated cycles in relaxed mode; see
// the file comment for the phase structure. On return e.cycle sits at the
// epoch's last cycle and e.tickedCycles has been advanced for all but one
// of its cycles (the run loop's own increment covers the last), so the
// outer loop's accounting is unchanged.
func (e *Engine) tickEpoch() {
	k := e.epochK

	// Phase 1: serial head at the epoch's first cycle.
	e.tickPos = 0
	e.tickSerialRange(e.pLo - 1)
	segStart := e.tickPos

	// Snapshot the active sharded segment — segCount contiguous positions
	// starting at segStart (engine.go maintains the count).
	seg := e.segScratch[:0]
	for pos := segStart; pos < segStart+e.segCount; pos++ {
		seg = append(seg, e.active[pos])
	}
	e.segScratch = seg
	if len(seg) == 0 {
		// No sharded work: behave exactly like one serial cycle — no
		// staging, no barrier — so idle stretches still fast-forward
		// event to event.
		e.tickSerialRange(maxInt)
		e.tickPos = -1
		return
	}

	for _, idx := range seg {
		sc := e.entries[idx].sctx
		sc.list = append(sc.list, idx)
	}

	// Phase 2: run every shard with work for k local cycles (barrier.go).
	e.dispatchShards(k)

	// Phase 3: barrier. Fold busy deltas; rebuild the active segment only
	// if some shard's membership actually changed, and flush only what was
	// staged. The staged-event flush stays the k-way merge of PR 7 — an
	// epoch's records span k capture cycles, so the exact-mode single-walk
	// fold does not apply.
	dirty, staged := false, len(e.preStage) > 0
	for _, sc := range e.shards {
		e.busyCount += sc.busyDelta
		sc.busyDelta = 0
		sc.list = sc.list[:0]
		if sc.dirty {
			dirty = true
			sc.dirty = false
		}
		if len(sc.events) > 0 || len(sc.defers) > 0 {
			staged = true
		}
	}
	if dirty {
		segEnd := segStart + e.segCount
		seg = seg[:0]
		for idx := e.pLo; idx <= e.pHi; idx++ {
			if e.entries[idx].active {
				seg = append(seg, idx)
			}
		}
		e.segScratch = seg
		na := e.activeScratch[:0]
		na = append(na, e.active[:segStart]...)
		na = append(na, seg...)
		na = append(na, e.active[segEnd:]...)
		e.activeScratch, e.active = e.active, na
		e.segCount = len(seg)
	}
	e.tickPos = segStart + e.segCount
	if staged {
		e.flushStagedEvents()
		e.flushStagedDefers()
	}

	// Phase 4: serial tail at the epoch's first cycle.
	e.tickSerialRange(maxInt)

	// Phase 5: catch-up — the serial modules run the remaining k-1 cycles,
	// consuming the traffic the shards staged for them at the cycles it
	// belongs to. The sharded segment is skipped in O(1) — those modules
	// already ran their local cycles; entries woken meanwhile (fill
	// completions) tick at the next epoch. Event wakes are batched per
	// catch-up cycle like the run loop's own event phase.
	for j := 1; j < k; j++ {
		e.tickPos = -1
		e.cycle++
		e.tickedCycles++
		if len(e.events) > 0 && e.events[0].cycle <= e.cycle {
			e.batchWake = true
			for len(e.events) > 0 && e.events[0].cycle <= e.cycle {
				ev := e.events.pop()
				e.firedEvents++
				ev.fn()
			}
			e.flushWakes()
		}
		e.tickPos = 0
		e.tickSerialRange(e.pLo - 1)
		e.tickPos += e.segCount
		e.tickSerialRange(maxInt)
	}
	e.tickPos = -1
}
