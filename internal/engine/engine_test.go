package engine

import (
	"context"
	"errors"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// fakeTicker counts ticks and stays busy for a configured number of cycles.
type fakeTicker struct {
	name      string
	busyUntil uint64
	cycle     uint64
	ticks     int
	onTick    func(cycle uint64)
}

func (f *fakeTicker) Name() string    { return f.name }
func (f *fakeTicker) Kind() ModelKind { return CycleAccurate }
func (f *fakeTicker) Busy() bool      { return f.cycle < f.busyUntil }
func (f *fakeTicker) Tick(cycle uint64) {
	f.cycle = cycle
	f.ticks++
	if f.onTick != nil {
		f.onTick(cycle)
	}
}

type fakeModule struct{ name string }

func (f fakeModule) Name() string    { return f.name }
func (f fakeModule) Kind() ModelKind { return Analytical }

func TestRunImmediateDone(t *testing.T) {
	e := New()
	cyc, err := e.Run(func() bool { return true }, 0)
	if err != nil || cyc != 0 {
		t.Fatalf("Run = %d, %v; want 0, nil", cyc, err)
	}
}

func TestEventOrderingWithinCycle(t *testing.T) {
	e := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(1, func() { order = append(order, i) })
	}
	done := false
	e.Schedule(1, func() { done = true })
	if _, err := e.Run(func() bool { return done }, 100); err != nil {
		t.Fatal(err)
	}
	if !sort.IntsAreSorted(order) {
		t.Errorf("events fired out of FIFO order: %v", order)
	}
	if len(order) != 10 {
		t.Errorf("fired %d events, want 10", len(order))
	}
}

func TestEventOrderingAcrossCycles(t *testing.T) {
	e := New()
	var fired []uint64
	delays := []uint64{50, 3, 20, 3, 1, 100, 7}
	for _, d := range delays {
		e.Schedule(d, func() { fired = append(fired, e.Cycle()) })
	}
	done := false
	e.Schedule(101, func() { done = true })
	if _, err := e.Run(func() bool { return done }, 1000); err != nil {
		t.Fatal(err)
	}
	want := []uint64{1, 3, 3, 7, 20, 50, 100}
	if len(fired) != len(want) {
		t.Fatalf("fired %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired %v, want %v", fired, want)
		}
	}
}

func TestFastForwardSkipsIdleCycles(t *testing.T) {
	e := New()
	tk := &fakeTicker{name: "idle"}
	e.Register(tk)
	done := false
	e.Schedule(1_000_000, func() { done = true })
	cyc, err := e.Run(func() bool { return done }, 0)
	if err != nil {
		t.Fatal(err)
	}
	if cyc != 1_000_000 {
		t.Errorf("final cycle = %d, want 1000000", cyc)
	}
	if tk.ticks > 10 {
		t.Errorf("idle ticker ticked %d times; fast-forward failed", tk.ticks)
	}
	if e.SkippedCycles() < 999_000 {
		t.Errorf("SkippedCycles = %d, want ~1e6", e.SkippedCycles())
	}
}

func TestBusyTickerPreventsFastForward(t *testing.T) {
	e := New()
	tk := &fakeTicker{name: "busy", busyUntil: 1000}
	e.Register(tk)
	done := false
	e.Schedule(1000, func() { done = true })
	if _, err := e.Run(func() bool { return done }, 0); err != nil {
		t.Fatal(err)
	}
	if tk.ticks < 1000 {
		t.Errorf("busy ticker ticked %d times, want >= 1000", tk.ticks)
	}
	if e.SkippedCycles() != 0 {
		t.Errorf("SkippedCycles = %d, want 0", e.SkippedCycles())
	}
}

func TestDeadlockDetection(t *testing.T) {
	e := New()
	e.Register(&fakeTicker{name: "idle"})
	_, err := e.Run(func() bool { return false }, 0)
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("err = %v, want ErrDeadlock", err)
	}
}

func TestCycleLimit(t *testing.T) {
	e := New()
	e.Register(&fakeTicker{name: "forever", busyUntil: ^uint64(0)})
	_, err := e.Run(func() bool { return false }, 500)
	if !errors.Is(err, ErrCycleLimit) {
		t.Fatalf("err = %v, want ErrCycleLimit", err)
	}
}

func TestEventsScheduledDuringTick(t *testing.T) {
	e := New()
	completions := 0
	tk := &fakeTicker{name: "issuer", busyUntil: 5}
	tk.onTick = func(cycle uint64) {
		if cycle < 5 {
			e.Schedule(10, func() { completions++ })
		}
	}
	e.Register(tk)
	done := false
	e.Schedule(100, func() { done = true })
	if _, err := e.Run(func() bool { return done }, 0); err != nil {
		t.Fatal(err)
	}
	if completions != 5 {
		t.Errorf("completions = %d, want 5", completions)
	}
}

func TestZeroDelayEventRunsPromptly(t *testing.T) {
	e := New()
	hits := 0
	e.Schedule(1, func() {
		e.Schedule(0, func() { hits++ })
	})
	done := false
	e.Schedule(3, func() { done = true })
	if _, err := e.Run(func() bool { return done }, 100); err != nil {
		t.Fatal(err)
	}
	if hits != 1 {
		t.Errorf("hits = %d, want 1", hits)
	}
}

func TestInventory(t *testing.T) {
	e := New()
	e.Register(&fakeTicker{name: "sched"})
	e.AddModule(fakeModule{name: "aluModel"})
	inv := e.Inventory()
	if len(inv) != 2 {
		t.Fatalf("inventory size = %d, want 2", len(inv))
	}
	if inv[0].Name != "sched" || inv[0].Kind != CycleAccurate {
		t.Errorf("inv[0] = %+v", inv[0])
	}
	if inv[1].Name != "aluModel" || inv[1].Kind != Analytical {
		t.Errorf("inv[1] = %+v", inv[1])
	}
}

func TestModelKindString(t *testing.T) {
	if CycleAccurate.String() != "cycle-accurate" || Analytical.String() != "analytical" {
		t.Error("ModelKind.String mismatch")
	}
	if ModelKind(42).String() == "" {
		t.Error("unknown ModelKind must stringify non-empty")
	}
}

// TestQuickEventOrder: for any set of scheduled delays, events fire in
// nondecreasing cycle order and all fire exactly once.
func TestQuickEventOrder(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + int(nRaw)%64
		e := New()
		var fired []uint64
		maxDelay := uint64(0)
		for i := 0; i < n; i++ {
			d := uint64(r.Intn(1000)) + 1
			if d > maxDelay {
				maxDelay = d
			}
			e.Schedule(d, func() { fired = append(fired, e.Cycle()) })
		}
		done := false
		e.Schedule(maxDelay+1, func() { done = true })
		if _, err := e.Run(func() bool { return done }, 0); err != nil {
			return false
		}
		if len(fired) != n {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickHeap: the event queue is a correct priority queue for arbitrary
// push/pop interleavings.
func TestQuickHeap(t *testing.T) {
	f := func(cycles []uint64) bool {
		var q eventQueue
		for i, c := range cycles {
			q.push(event{cycle: c, seq: uint64(i)})
		}
		prev := uint64(0)
		for len(q) > 0 {
			ev := q.pop()
			if ev.cycle < prev {
				return false
			}
			prev = ev.cycle
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestRunCtxPreCanceled: an already-canceled context stops the run on the
// first scheduler iteration, and the error exposes both ErrCanceled and
// the context cause.
func TestRunCtxPreCanceled(t *testing.T) {
	e := New()
	tk := &fakeTicker{name: "busy", busyUntil: 1 << 40}
	e.Register(tk)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := e.RunCtx(ctx, func() bool { return false }, 0)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("want ErrCanceled, got %v", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled in chain, got %v", err)
	}
	if tk.ticks > ctxPollInterval {
		t.Errorf("engine ticked %d times after pre-cancel", tk.ticks)
	}
}

// TestRunCtxCancelMidRun: cancellation during a run stops the engine
// within one poll interval of the cancel point.
func TestRunCtxCancelMidRun(t *testing.T) {
	e := New()
	ctx, cancel := context.WithCancel(context.Background())
	const cancelAt = 10 * ctxPollInterval
	tk := &fakeTicker{name: "busy", busyUntil: 1 << 40}
	tk.onTick = func(cycle uint64) {
		if cycle == cancelAt {
			cancel()
		}
	}
	e.Register(tk)
	cyc, err := e.RunCtx(ctx, func() bool { return false }, 0)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if cyc < cancelAt || cyc > cancelAt+2*ctxPollInterval {
		t.Errorf("stopped at cycle %d, want within one poll interval of %d", cyc, cancelAt)
	}
}

// TestRunCtxNilContext: a nil context behaves exactly like Run.
func TestRunCtxNilContext(t *testing.T) {
	e := New()
	done := false
	e.Schedule(42, func() { done = true })
	cyc, err := e.RunCtx(nil, func() bool { return done }, 0)
	if err != nil || cyc != 42 {
		t.Fatalf("RunCtx(nil) = %d, %v; want 42, nil", cyc, err)
	}
}
