package engine

import (
	"fmt"
	"testing"
)

// staleTicker models the SM's cached-busy hazard: Busy() returns a cache
// refreshed only inside Tick, so a wake arriving between ticks is not yet
// reflected in the polled busy state — exactly the window the relaxed
// engine's catch-up phase exposes.
type staleTicker struct {
	name      string
	wake      func()
	work      int
	busyCache bool
	ticks     int
	tickLog   []uint64
}

func (s *staleTicker) Name() string        { return s.name }
func (s *staleTicker) Kind() ModelKind     { return CycleAccurate }
func (s *staleTicker) Busy() bool          { return s.busyCache }
func (s *staleTicker) SetWake(wake func()) { s.wake = wake }
func (s *staleTicker) Tick(cycle uint64) {
	s.ticks++
	s.tickLog = append(s.tickLog, cycle)
	if s.work > 0 {
		s.work--
	}
	s.busyCache = s.work > 0
}

// give adds work and wakes WITHOUT refreshing the busy cache, like a block
// assignment or a fill completion landing between ticks.
func (s *staleTicker) give(n int) {
	s.work += n
	s.wake()
}

// TestSetEpochClamp pins the configuration contract: the default and any
// k < 1 mean exact mode.
func TestSetEpochClamp(t *testing.T) {
	e := New()
	if got := e.EpochCycles(); got != 1 {
		t.Errorf("default EpochCycles = %d, want 1", got)
	}
	e.SetEpoch(0)
	if got := e.EpochCycles(); got != 1 {
		t.Errorf("SetEpoch(0): EpochCycles = %d, want 1", got)
	}
	e.SetEpoch(8)
	if got := e.EpochCycles(); got != 8 {
		t.Errorf("SetEpoch(8): EpochCycles = %d, want 8", got)
	}
}

// TestEpochK1MatchesSerial pins that SetEpoch(1) leaves the exact sharded
// protocol untouched: the full per-module tick history equals the serial
// engine's.
func TestEpochK1MatchesSerial(t *testing.T) {
	serial := newParallelFixture(8, 0, 2)
	serial.run(t, 400)
	want := serial.history()
	f := newParallelFixture(8, 2, 2)
	f.e.SetEpoch(1)
	f.run(t, 400)
	if got := f.history(); got != want {
		t.Errorf("SetEpoch(1) diverged from serial:\n--- serial ---\n%s--- epoch k=1 ---\n%s", want, got)
	}
}

// TestEpochReproducible pins relaxed-mode determinism at the engine level:
// two identically built assemblies run with k=8 produce identical tick
// histories, cycle for cycle, despite worker goroutine scheduling.
func TestEpochReproducible(t *testing.T) {
	for _, nShards := range []int{2, 4} {
		base := newParallelFixture(8, nShards, nShards)
		base.relax(8)
		base.run(t, 400)
		want := base.history()
		for rep := 0; rep < 3; rep++ {
			f := newParallelFixture(8, nShards, nShards)
			f.relax(8)
			f.run(t, 400)
			if got := f.history(); got != want {
				t.Fatalf("shards=%d rep=%d: relaxed run not reproducible:\n--- first ---\n%s--- rep ---\n%s",
					nShards, rep, want, got)
			}
		}
	}
}

// TestEpochIdleFastForward pins the empty-segment path: with no sharded
// work, an epoch engine still fast-forwards event to event like the serial
// one instead of grinding k cycles at a time.
func TestEpochIdleFastForward(t *testing.T) {
	e := New()
	e.SetParallel(2)
	e.SetEpoch(8)
	e.Register(&wakeTicker{name: "head"})
	e.RegisterSharded(&wakeTicker{name: "a"}, 0)
	e.RegisterSharded(&wakeTicker{name: "b"}, 1)
	done := false
	e.Schedule(100_000, func() { done = true })
	if _, err := e.Run(func() bool { return done }, 0); err != nil {
		t.Fatal(err)
	}
	if e.Cycle() != 100_000 {
		t.Errorf("Cycle = %d, want 100000", e.Cycle())
	}
	if e.TickedCycles() > 64 {
		t.Errorf("TickedCycles = %d; idle stretch was not fast-forwarded", e.TickedCycles())
	}
}

// TestEpochStaleWakeNoDeadlock is the regression test for the catch-up wake
// hazard: an event firing during the epoch's catch-up phase wakes a sharded
// module whose polled busy state is stale-false. The catch-up phase never
// ticks the sharded segment, so without the pending-entry check in anyBusy
// the engine saw "no events, nothing busy" at the epoch's end and declared
// a deadlock. The woken module must instead be ticked in the next epoch.
func TestEpochStaleWakeNoDeadlock(t *testing.T) {
	e := New()
	e.SetParallel(2)
	e.SetEpoch(8)
	e.Register(&wakeTicker{name: "head"})
	sm := &staleTicker{name: "sm", work: 3, busyCache: true}
	e.RegisterSharded(sm, 0)
	e.RegisterSharded(&wakeTicker{name: "other"}, 1)

	// Lands at catch-up cycle 3 of the first epoch [0..7]: the shard pass is
	// over, so the wake leaves sm pending with a stale busy cache.
	e.Schedule(3, func() { sm.give(1) })

	if _, err := e.Run(func() bool { return sm.ticks >= 4 }, 10_000); err != nil {
		t.Fatalf("relaxed run deadlocked on a stale wake: %v", err)
	}
	if sm.ticks < 4 {
		t.Fatalf("sm ticked %d times, want 4", sm.ticks)
	}
	// The post-wake tick belongs to the next epoch, never the current one.
	if last := sm.tickLog[len(sm.tickLog)-1]; last < 8 {
		t.Errorf("post-wake tick at cycle %d; catch-up must not tick the sharded segment", last)
	}
}

// TestEpochEventsNeverEarly pins the correct-or-late rule: a completion
// event scheduled from inside a shard pass fires at or after its true
// cycle, never before.
func TestEpochEventsNeverEarly(t *testing.T) {
	const k = 8
	e := New()
	e.SetParallel(2)
	e.SetEpoch(k)
	e.Register(&wakeTicker{name: "head"})
	a := &wakeTicker{name: "a", work: 20}
	b := &wakeTicker{name: "b", work: 20}
	ctx := e.ShardContext(0)
	type fire struct{ sched, actual uint64 }
	var fires []fire
	a.onTick = func(cycle uint64) {
		if cycle%3 == 1 {
			sched := cycle + 2
			ctx.Schedule(2, func() {
				fires = append(fires, fire{sched, e.Cycle()})
			})
		}
	}
	e.RegisterSharded(a, 0)
	e.RegisterSharded(b, 1)
	done := false
	e.Schedule(60, func() { done = true })
	if _, err := e.Run(func() bool { return done }, 0); err != nil {
		t.Fatal(err)
	}
	if len(fires) == 0 {
		t.Fatal("no staged events fired")
	}
	for i, f := range fires {
		if f.actual < f.sched {
			t.Errorf("fire %d: event scheduled for cycle %d fired early at %d", i, f.sched, f.actual)
		}
		if f.actual > f.sched+2*k {
			t.Errorf("fire %d: event scheduled for cycle %d fired at %d, beyond the staleness bound", i, f.sched, f.actual)
		}
	}
}

// TestEpochQuiescent pins the snapshot gate: quiescent means no events and
// no busy or pending module.
func TestEpochQuiescent(t *testing.T) {
	e := New()
	w := &wakeTicker{name: "w"}
	e.Register(w)
	if !e.Quiescent() {
		t.Fatal("fresh idle engine not quiescent")
	}
	e.Schedule(5, func() {})
	if e.Quiescent() {
		t.Fatal("engine with a scheduled event reported quiescent")
	}
	done := false
	e.Schedule(6, func() { done = true })
	if _, err := e.Run(func() bool { return done }, 0); err != nil {
		t.Fatal(err)
	}
	if !e.Quiescent() {
		t.Fatal("drained engine not quiescent")
	}
	w.give(1)
	if e.Quiescent() {
		t.Fatal("busy module reported quiescent")
	}
}

// TestEpochHeavyTrafficReproducible stresses the barrier merge with many
// shards and heavy cross-shard traffic at several epoch lengths; every
// (shards, k) point must be self-consistent across repeats.
func TestEpochHeavyTrafficReproducible(t *testing.T) {
	for _, k := range []int{2, 8, 64} {
		k := k
		t.Run(fmt.Sprintf("k=%d", k), func(t *testing.T) {
			base := newParallelFixture(16, 4, 4)
			base.relax(k)
			base.run(t, 600)
			want := base.history()
			f := newParallelFixture(16, 4, 4)
			f.relax(k)
			f.run(t, 600)
			if got := f.history(); got != want {
				t.Errorf("k=%d not reproducible:\n--- first ---\n%s--- second ---\n%s", k, want, got)
			}
		})
	}
}
