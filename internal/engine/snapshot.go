// Engine snapshot/restore: serialize the scheduler's counters and every
// module's state at a quiescent point into the versioned binary format of
// internal/snap, so long runs can fast-forward past warmup, sweeps can fan
// one warmed checkpoint out across configurations, and service jobs can be
// preempted and resumed.
//
// Module sections are matched POSITIONALLY: module names are not unique
// ("l1" appears once per SM, "alu.INT" once per sub-core), but the
// assembly's registration order is deterministic and independent of the
// engine thread count, so section i always belongs to modules[i]. The name
// stored with each section is a consistency check, not a lookup key.
package engine

import (
	"fmt"

	"swiftsim/internal/snap"
)

// SaveState serializes the engine's scheduler state and the state of every
// module in the inventory. It must be called at a quiescent point (see
// Quiescent); otherwise a snap.ErrNotQuiescent error is recorded on w.
// Modules implementing snap.Stateful contribute their payload; all other
// modules are recorded with an empty section so restore can verify the
// assembly shape.
func (e *Engine) SaveState(w *snap.Writer) {
	if len(e.events) != 0 {
		w.Fail(fmt.Errorf("%w: engine has %d pending events", snap.ErrNotQuiescent, len(e.events)))
		return
	}
	if e.anyBusy() {
		w.Fail(fmt.Errorf("%w: engine has busy tickers", snap.ErrNotQuiescent))
		return
	}
	w.U64(e.cycle)
	w.U64(e.seq)
	w.U64(e.tickedCycles)
	w.U64(e.skippedCycles)
	w.U64(e.firedEvents)
	w.U64(uint64(len(e.modules)))
	for _, m := range e.modules {
		w.String(m.Name())
		s, ok := m.(snap.Stateful)
		if !ok {
			w.Bytes64(nil)
			continue
		}
		var mw snap.Writer
		s.SnapSave(&mw)
		if err := mw.Err(); err != nil {
			w.Fail(fmt.Errorf("module %q: %w", m.Name(), err))
			return
		}
		w.Bytes64(mw.Bytes())
	}
}

// LoadState restores the engine from a snapshot payload into a freshly
// assembled engine with the identical module set. Every failure is a
// structured error; on error the engine state is undefined and the caller
// must discard the assembly.
func (e *Engine) LoadState(r *snap.Reader) error {
	e.cycle = r.U64()
	e.seq = r.U64()
	e.tickedCycles = r.U64()
	e.skippedCycles = r.U64()
	e.firedEvents = r.U64()
	n := r.U64()
	if err := r.Err(); err != nil {
		return err
	}
	if n != uint64(len(e.modules)) {
		return fmt.Errorf("%w: snapshot has %d module sections, assembly has %d modules",
			snap.ErrCorrupt, n, len(e.modules))
	}
	for i, m := range e.modules {
		name := r.String()
		payload := r.BytesN()
		if err := r.Err(); err != nil {
			return fmt.Errorf("module section %d: %w", i, err)
		}
		if name != m.Name() {
			return fmt.Errorf("%w: module section %d is %q in the snapshot but %q in the assembly",
				snap.ErrCorrupt, i, name, m.Name())
		}
		s, ok := m.(snap.Stateful)
		if !ok {
			if len(payload) != 0 {
				return fmt.Errorf("%w: module section %d (%q) carries %d bytes for a stateless module",
					snap.ErrCorrupt, i, name, len(payload))
			}
			continue
		}
		mr := snap.NewReader(payload)
		if err := s.SnapLoad(mr); err != nil {
			return fmt.Errorf("module section %d (%q): %w", i, name, err)
		}
		if err := mr.Err(); err != nil {
			return fmt.Errorf("module section %d (%q): %w", i, name, err)
		}
		if mr.Remaining() != 0 {
			return fmt.Errorf("%w: module section %d (%q) has %d trailing bytes",
				snap.ErrCorrupt, i, name, mr.Remaining())
		}
	}
	return r.Err()
}
