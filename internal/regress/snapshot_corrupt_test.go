package regress

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"

	"swiftsim/internal/sim"
	"swiftsim/internal/snap"
	"swiftsim/internal/trace"
	"swiftsim/internal/workload"
)

// Snapshot decode hardening: a corrupt checkpoint — truncated mid-field,
// counts inflated past the payload, module sections reordered — must
// degrade into a structured "cannot restore" error via the snap.Reader's
// sticky error, never a panic or a silent misparse. These tests corrupt a
// real checkpoint structurally (not random bit flips — that is
// FuzzParseSnapshot's job in internal/sim) and assert the decoder refuses
// each specific damage class.

// checkpointLayout records the byte offsets of the structurally
// interesting fields of a checkpoint stream, recovered by walking the
// format exactly as the decoder does.
type checkpointLayout struct {
	nkcOff     int      // run-position kernel-duration count (u64)
	sampledOff int      // run-position sampled flag (bool byte)
	modCntOff  int      // engine-section module count (u64)
	modFrames  [][2]int // [start,end) of each module frame (name + payload)
	metricsOff int      // metrics-section counter count (u64)
}

// walkCheckpoint recovers the layout of a valid checkpoint stream. It
// mirrors the writer's field sequence (see internal/sim/snapshot.go); a
// format change that breaks this walk also breaks the decoder tests,
// which is exactly when they must be revisited.
func walkCheckpoint(t *testing.T, data []byte) checkpointLayout {
	t.Helper()
	pos := 8 // magic + version
	u64 := func() uint64 {
		v := binary.LittleEndian.Uint64(data[pos:])
		pos += 8
		return v
	}
	str := func() { n := u64(); pos += int(n) }

	var lay checkpointLayout
	// Identity section: app, kernel count, gpu, kind, max cycles, latency
	// scale, overhead, sample fraction, epoch length.
	str()
	u64()
	str()
	for i := 0; i < 6; i++ {
		u64()
	}
	// Run-position section.
	u64() // next kernel
	lay.nkcOff = pos
	nkc := u64()
	pos += int(nkc) * 8
	u64() // extrapolated
	u64() // overhead
	lay.sampledOff = pos
	pos++ // sampled bool
	// Engine section: one length-framed payload.
	elen := u64()
	engineEnd := pos + int(elen)
	for i := 0; i < 5; i++ {
		u64() // scheduler counters
	}
	lay.modCntOff = pos
	nMod := u64()
	for i := uint64(0); i < nMod; i++ {
		start := pos
		str()         // module name
		plen := u64() // payload frame
		pos += int(plen)
		lay.modFrames = append(lay.modFrames, [2]int{start, pos})
	}
	if pos != engineEnd {
		t.Fatalf("walk desynced: engine section ends at %d, walk reached %d", engineEnd, pos)
	}
	lay.metricsOff = pos
	return lay
}

// makeCheckpoint runs BFS mid-run checkpointing on the L2Hybrid
// configuration (its kernel boundaries are quiescent) and returns the
// checkpoint bytes plus the app for restore attempts.
func makeCheckpoint(t *testing.T) ([]byte, *trace.App) {
	t.Helper()
	gpu := DefaultCorpus().GPUs[0]
	app, err := workload.Generate("BFS", 0.25)
	if err != nil {
		t.Fatal(err)
	}
	base, err := sim.Run(app, gpu, sim.Options{Kind: sim.L2Hybrid})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := sim.Run(app, gpu, sim.Options{
		Kind: sim.L2Hybrid, SnapshotAt: base.Cycles / 2, SnapshotTo: &buf,
	}); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), app
}

// restoreErr attempts to restore a (possibly corrupted) checkpoint and
// returns the error. The assembly and options must match the checkpoint so
// the only failure source is the corruption under test.
func restoreErr(t *testing.T, app *trace.App, data []byte) error {
	t.Helper()
	_, err := sim.Run(app, DefaultCorpus().GPUs[0], sim.Options{
		Kind: sim.L2Hybrid, RestoreFrom: bytes.NewReader(data),
	})
	return err
}

func TestSnapshotCorruptTruncated(t *testing.T) {
	data, app := makeCheckpoint(t)
	lay := walkCheckpoint(t, data)
	// Cut points spanning every section: inside the header, inside the
	// identity strings, mid-count, mid-engine-frame, mid-metrics, and one
	// byte short of a valid stream.
	cuts := []int{0, 3, 7, 8, 12, lay.nkcOff + 4, lay.sampledOff,
		lay.modCntOff + 2, (lay.modFrames[0][0] + lay.modFrames[0][1]) / 2,
		lay.metricsOff + 1, len(data) - 1}
	for _, cut := range cuts {
		if cut >= len(data) {
			continue
		}
		trunc := data[:cut]
		if err := sim.ParseSnapshot(trunc); err == nil {
			t.Errorf("ParseSnapshot accepted a stream truncated at byte %d of %d", cut, len(data))
		}
		err := restoreErr(t, app, trunc)
		if err == nil {
			t.Errorf("restore accepted a stream truncated at byte %d of %d", cut, len(data))
			continue
		}
		if !errors.Is(err, snap.ErrTruncated) && !errors.Is(err, snap.ErrCorrupt) {
			t.Errorf("truncation at byte %d: error %v, want snap.ErrTruncated or snap.ErrCorrupt", cut, err)
		}
	}
}

func TestSnapshotCorruptOverCapCounts(t *testing.T) {
	data, app := makeCheckpoint(t)
	lay := walkCheckpoint(t, data)
	cases := []struct {
		name string
		off  int
	}{
		{"kernel-duration count", lay.nkcOff},
		{"module count", lay.modCntOff},
		{"metrics count", lay.metricsOff},
	}
	for _, c := range cases {
		corrupt := append([]byte(nil), data...)
		// A count far past the remaining payload: the capped-allocation
		// check must reject it before any oversized make().
		binary.LittleEndian.PutUint64(corrupt[c.off:], 1<<40)
		err := restoreErr(t, app, corrupt)
		if err == nil {
			t.Errorf("%s: restore accepted count 2^40", c.name)
			continue
		}
		if !errors.Is(err, snap.ErrCorrupt) && !errors.Is(err, snap.ErrTruncated) {
			t.Errorf("%s: error %v, want snap.ErrCorrupt or snap.ErrTruncated", c.name, err)
		}
	}
}

func TestSnapshotCorruptBoolByte(t *testing.T) {
	data, app := makeCheckpoint(t)
	lay := walkCheckpoint(t, data)
	corrupt := append([]byte(nil), data...)
	corrupt[lay.sampledOff] = 7 // bools are strictly 0 or 1
	err := restoreErr(t, app, corrupt)
	if !errors.Is(err, snap.ErrCorrupt) {
		t.Errorf("restore of a 0x07 bool byte: error %v, want snap.ErrCorrupt", err)
	}
}

func TestSnapshotCorruptSectionOrder(t *testing.T) {
	data, app := makeCheckpoint(t)
	lay := walkCheckpoint(t, data)
	// Find two adjacent module frames with different names and swap them:
	// sections are matched positionally with the stored name as the
	// consistency check, so the decoder must notice the transposition.
	name := func(f [2]int) string {
		n := binary.LittleEndian.Uint64(data[f[0]:])
		return string(data[f[0]+8 : f[0]+8+int(n)])
	}
	swapped := -1
	for i := 0; i+1 < len(lay.modFrames); i++ {
		if name(lay.modFrames[i]) != name(lay.modFrames[i+1]) {
			swapped = i
			break
		}
	}
	if swapped < 0 {
		t.Fatal("checkpoint has no adjacent module frames with distinct names")
	}
	a, b := lay.modFrames[swapped], lay.modFrames[swapped+1]
	corrupt := append([]byte(nil), data[:a[0]]...)
	corrupt = append(corrupt, data[a[1]:b[1]]...) // frame B first
	corrupt = append(corrupt, data[a[0]:a[1]]...) // then frame A
	corrupt = append(corrupt, data[b[1]:]...)
	if len(corrupt) != len(data) {
		t.Fatalf("swap changed the stream length: %d -> %d", len(data), len(corrupt))
	}
	err := restoreErr(t, app, corrupt)
	if err == nil {
		t.Fatalf("restore accepted module sections %d and %d swapped (%q <-> %q)",
			swapped, swapped+1, name(a), name(b))
	}
	if !errors.Is(err, snap.ErrCorrupt) {
		t.Errorf("swapped module sections: error %v, want snap.ErrCorrupt", err)
	}
}
