package regress

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"

	"swiftsim/internal/sim"
	"swiftsim/internal/workload"
)

// epochKValues is the relaxed-sync sweep the oracles run: exact mode, a
// moderate epoch, and an aggressive one.
var epochKValues = []int{1, 8, 64}

// TestGoldenCorpusEpochCycles is the relaxed-mode safety oracle over the
// committed corpus: the golden corpus is Swift-Sim-Memory, which always
// assembles serially, so EpochCycles at any value must leave all 60 cases
// byte-identical to their fixtures — the relaxation must never leak into a
// serial assembly.
func TestGoldenCorpusEpochCycles(t *testing.T) {
	corpus := goldenCorpus(t)
	for _, k := range epochKValues {
		for _, cs := range corpus.Cases() {
			cs := cs
			cs.Opts.EpochCycles = k
			cs.Opts.EngineThreads = 4
			t.Run(fmt.Sprintf("k=%d/%s/%s", k, cs.GPU.Name, cs.App), func(t *testing.T) {
				res, err := cs.Run()
				if err != nil {
					t.Fatalf("simulation failed at EpochCycles=%d: %v", k, err)
				}
				want, err := os.ReadFile(GoldenPath(cs.GPU.Name, cs.App))
				if err != nil {
					t.Fatalf("missing golden fixture: %v", err)
				}
				if got := Canonical(res); !bytes.Equal(want, got) {
					t.Errorf("EpochCycles=%d drifted from the golden fixture:\n%s",
						k, DiffLines(want, got, 20))
				}
			})
		}
	}
}

// TestEpochK1MatchesSerial pins the tentpole's exactness guarantee: with
// EpochCycles=1 (or unset) a parallel assembly routes through the exact
// barrier-per-cycle protocol, so the cycle-accurate kinds must stay
// byte-identical to their serial runs.
func TestEpochK1MatchesSerial(t *testing.T) {
	type cfg struct {
		kind sim.Kind
		apps []string
	}
	cases := []cfg{
		{sim.Basic, []string{"BFS", "GEMM"}},
		{sim.L2Hybrid, []string{"GEMM"}},
		{sim.Detailed, []string{"GEMM"}},
	}
	if testing.Short() {
		cases = []cfg{{sim.Basic, []string{"GEMM"}}}
	}
	gpu := DefaultCorpus().GPUs[0]
	for _, c := range cases {
		for _, name := range c.apps {
			app, err := workload.Generate(name, 0.25)
			if err != nil {
				t.Fatal(err)
			}
			base, err := sim.Run(app, gpu, sim.Options{Kind: c.kind})
			if err != nil {
				t.Fatalf("%s/%s serial: %v", c.kind, name, err)
			}
			want := Canonical(base)
			res, err := sim.Run(app, gpu, sim.Options{Kind: c.kind, EngineThreads: 4, EpochCycles: 1})
			if err != nil {
				t.Fatalf("%s/%s k=1: %v", c.kind, name, err)
			}
			if got := Canonical(res); !bytes.Equal(want, got) {
				t.Errorf("%s/%s: EpochCycles=1 diverged from serial:\n%s",
					c.kind, name, DiffLines(want, got, 20))
			}
		}
	}
}

// TestEpochRelaxedReproducible pins the tentpole's determinism guarantee
// for k > 1: a relaxed run is a pure function of (configuration, k) — the
// thread count and repetition must not change a single byte.
func TestEpochRelaxedReproducible(t *testing.T) {
	gpu := DefaultCorpus().GPUs[0]
	apps := []string{"BFS", "GEMM"}
	if testing.Short() {
		apps = apps[:1]
	}
	for _, name := range apps {
		app, err := workload.Generate(name, 0.25)
		if err != nil {
			t.Fatal(err)
		}
		opts := sim.Options{Kind: sim.Basic, EngineThreads: 2, EpochCycles: 8}
		base, err := sim.Run(app, gpu, opts)
		if err != nil {
			t.Fatalf("%s threads=2: %v", name, err)
		}
		want := Canonical(base)
		threadVals := []int{2, 4}
		if n := runtime.NumCPU(); n > 4 {
			threadVals = append(threadVals, n)
		}
		for _, threads := range threadVals {
			o := opts
			o.EngineThreads = threads
			res, err := sim.Run(app, gpu, o)
			if err != nil {
				t.Fatalf("%s threads=%d: %v", name, threads, err)
			}
			if got := Canonical(res); !bytes.Equal(want, got) {
				t.Errorf("%s: relaxed k=8 differs between threads=2 and threads=%d:\n%s",
					name, threads, DiffLines(want, got, 20))
			}
		}
	}
}

// --- The accuracy-envelope oracle -----------------------------------------

// The envelope oracle quantifies relaxed-mode drift where it can actually
// occur: the Basic configuration's sharded SMs and L1s over the shared
// NoC/L2/DRAM. For every GPU preset it compares a k=8 relaxed run against
// the serial baseline and requires the relative cycle error (in permille,
// rounded up) to stay within the committed per-preset fixture. The fixtures
// are regenerated with -update; relaxed runs are deterministic, so any
// change in these numbers is a real behavior change and reviewed like a
// golden diff.

// envelopeK and envelopeThreads fix the operating point the fixtures pin.
const (
	envelopeK       = 8
	envelopeThreads = 4
)

// envelopeApps are the Basic-kind applications the envelope tracks.
var envelopeApps = []string{"BFS", "GEMM", "SM"}

// EnvelopePath returns the fixture path for one GPU preset's error
// envelope: testdata/epoch/<gpu>.envelope.
func EnvelopePath(gpuName string) string {
	return filepath.Join("testdata", "epoch", gpuName+".envelope")
}

// envelopeHeader identifies the fixture format and operating point.
var envelopeHeader = fmt.Sprintf("swiftsim-epoch-envelope 1 kind=%s k=%d threads=%d",
	sim.Basic, envelopeK, envelopeThreads)

// relErrPermille returns |got-want| / want in permille, rounded up.
func relErrPermille(want, got uint64) uint64 {
	d := got - want
	if got < want {
		d = want - got
	}
	if want == 0 {
		if d == 0 {
			return 0
		}
		return 1000
	}
	return (d*1000 + want - 1) / want
}

// parseEnvelope reads a committed envelope fixture into app → max permille.
func parseEnvelope(t *testing.T, path string) map[string]uint64 {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing envelope fixture (regenerate with -update): %v", err)
	}
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	if len(lines) == 0 || lines[0] != envelopeHeader {
		t.Fatalf("envelope fixture %s has header %q, want %q (regenerate with -update)",
			path, lines[0], envelopeHeader)
	}
	out := make(map[string]uint64)
	for _, ln := range lines[1:] {
		var app string
		var p uint64
		if _, err := fmt.Sscanf(ln, "%s %d", &app, &p); err != nil {
			t.Fatalf("envelope fixture %s: bad line %q: %v", path, ln, err)
		}
		out[app] = p
	}
	return out
}

// TestEpochRelaxedEnvelope is the accuracy oracle: per-preset, per-app
// relative cycle error of the k=8 relaxed Basic run against its serial
// baseline, bounded by the committed envelope.
func TestEpochRelaxedEnvelope(t *testing.T) {
	if testing.Short() {
		t.Skip("envelope oracle runs the full preset sweep")
	}
	for _, gpu := range DefaultCorpus().GPUs {
		gpu := gpu
		t.Run(gpu.Name, func(t *testing.T) {
			got := make(map[string]uint64, len(envelopeApps))
			for _, name := range envelopeApps {
				app, err := workload.Generate(name, 0.25)
				if err != nil {
					t.Fatal(err)
				}
				base, err := sim.Run(app, gpu, sim.Options{Kind: sim.Basic})
				if err != nil {
					t.Fatalf("%s serial: %v", name, err)
				}
				relaxed, err := sim.Run(app, gpu, sim.Options{
					Kind: sim.Basic, EngineThreads: envelopeThreads, EpochCycles: envelopeK})
				if err != nil {
					t.Fatalf("%s relaxed: %v", name, err)
				}
				got[name] = relErrPermille(base.Cycles, relaxed.Cycles)
				t.Logf("%s: serial %d cycles, k=%d relaxed %d cycles, error %d‰",
					name, base.Cycles, envelopeK, relaxed.Cycles, got[name])
			}
			path := EnvelopePath(gpu.Name)
			if *update {
				var b strings.Builder
				b.WriteString(envelopeHeader + "\n")
				for _, name := range envelopeApps {
					fmt.Fprintf(&b, "%s %d\n", name, got[name])
				}
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want := parseEnvelope(t, path)
			for _, name := range envelopeApps {
				bound, ok := want[name]
				if !ok {
					t.Errorf("%s missing from envelope fixture %s (regenerate with -update)", name, path)
					continue
				}
				if got[name] > bound {
					t.Errorf("%s: k=%d relative cycle error %d‰ exceeds the committed envelope %d‰ (regenerate with -update if intended)",
						name, envelopeK, got[name], bound)
				}
			}
		})
	}
}
