package regress

import (
	"bytes"
	"fmt"
	"math"

	"swiftsim/internal/config"
	"swiftsim/internal/metrics"
	"swiftsim/internal/reuse"
	"swiftsim/internal/sim"
	"swiftsim/internal/trace"
)

// KernelDelta is one kernel's cycle comparison between two simulator
// configurations.
type KernelDelta struct {
	// Index is the kernel's launch position; Name its trace name.
	Index int
	Name  string
	// Ref and Alt are the kernel cycles under the reference and alternate
	// configurations; Rel is |Alt-Ref|/Ref.
	Ref, Alt uint64
	Rel      float64
}

// KindDiff is the differential-oracle comparison of two simulator
// configurations on one application: the alternate (typically analytical)
// configuration's cycles measured against the reference (typically
// cycle-accurate) configuration's, app-wide and per kernel.
type KindDiff struct {
	App, GPU string
	RefKind  sim.Kind
	AltKind  sim.Kind
	// Ref and Alt are total application cycles; Rel is |Alt-Ref|/Ref.
	Ref, Alt uint64
	Rel      float64
	Kernels  []KernelDelta
}

// relDelta returns |alt-ref|/ref (0 when both are zero, +Inf when only ref
// is zero).
func relDelta(ref, alt uint64) float64 {
	if ref == alt {
		return 0
	}
	if ref == 0 {
		return math.Inf(1)
	}
	d := float64(alt) - float64(ref)
	return math.Abs(d) / float64(ref)
}

// CompareKinds runs app under both configurations and returns the
// per-kernel cycle comparison. optRef is the reference (its cycles are the
// denominator of every relative delta).
func CompareKinds(app *trace.App, gpu config.GPU, optRef, optAlt sim.Options) (*KindDiff, error) {
	ref, err := sim.Run(app, gpu, optRef)
	if err != nil {
		return nil, fmt.Errorf("regress: %s on %s (%v): %w", app.Name, gpu.Name, optRef.Kind, err)
	}
	alt, err := sim.Run(app, gpu, optAlt)
	if err != nil {
		return nil, fmt.Errorf("regress: %s on %s (%v): %w", app.Name, gpu.Name, optAlt.Kind, err)
	}
	d := &KindDiff{
		App: app.Name, GPU: gpu.Name,
		RefKind: optRef.Kind, AltKind: optAlt.Kind,
		Ref: ref.Cycles, Alt: alt.Cycles,
		Rel: relDelta(ref.Cycles, alt.Cycles),
	}
	for i := range ref.KernelCycles {
		kd := KernelDelta{Index: i}
		if i < len(app.Kernels) {
			kd.Name = app.Kernels[i].Name
		}
		kd.Ref = ref.KernelCycles[i]
		if i < len(alt.KernelCycles) {
			kd.Alt = alt.KernelCycles[i]
		}
		kd.Rel = relDelta(kd.Ref, kd.Alt)
		d.Kernels = append(d.Kernels, kd)
	}
	return d, nil
}

// Within reports whether the app-wide relative delta is inside tol.
func (d *KindDiff) Within(tol float64) bool { return d.Rel <= tol }

// String renders the per-kernel diff table shown when the differential
// oracle fails.
func (d *KindDiff) String() string {
	var b bytes.Buffer
	fmt.Fprintf(&b, "%s on %s: %v %d cycles vs %v %d cycles (rel %s)\n",
		d.App, d.GPU, d.RefKind, d.Ref, d.AltKind, d.Alt, metrics.FormatRate(d.Rel))
	fmt.Fprintf(&b, "  %-4s %-24s %12s %12s %10s\n", "k", "kernel", d.RefKind.String(), d.AltKind.String(), "rel")
	for _, k := range d.Kernels {
		fmt.Fprintf(&b, "  %-4d %-24s %12d %12d %10s\n",
			k.Index, k.Name, k.Ref, k.Alt, metrics.FormatRate(k.Rel))
	}
	return b.String()
}

// HitRateDiff compares the hit rates the analytical memory model consumes
// (extracted by internal/reuse) against the rates the cycle-accurate timed
// caches of internal/cache observe during a Swift-Sim-Basic run of the
// same trace.
type HitRateDiff struct {
	App, GPU string
	// TimedL1 and ProfiledL1 are the L1 read service rates: the timed
	// caches' read_hit/(read_hit+read_miss) vs the profile's fraction of
	// load sector transactions serviced by the L1.
	TimedL1, ProfiledL1 float64
	// TimedL2 and ProfiledL2 are the L2 read hit rates conditioned on
	// read traffic that reached the L2.
	TimedL2, ProfiledL2 float64
}

// CompareHitRates runs a Swift-Sim-Basic simulation (timed caches) and the
// functional reuse profiler over the same trace and pairs up their rates.
func CompareHitRates(app *trace.App, gpu config.GPU) (*HitRateDiff, error) {
	res, err := sim.Run(app, gpu, sim.Options{Kind: sim.Basic})
	if err != nil {
		return nil, fmt.Errorf("regress: %s on %s (timed caches): %w", app.Name, gpu.Name, err)
	}
	prof := reuse.ProfileApp(app, gpu)

	m := res.Metrics
	d := &HitRateDiff{App: app.Name, GPU: gpu.Name}
	// Compare read transactions only: the timed caches count store
	// hits/misses too (write-through no-allocate), but the profiler never
	// services a store from the L1, so the all-access rates are not
	// commensurable. The read_hit/read_miss counters and Profile
	// DefaultReads both restrict to loads.
	d.TimedL1 = metrics.Ratio(m["l1.read_hit"], m["l1.read_miss"])
	d.ProfiledL1 = prof.DefaultReads.L1
	d.TimedL2 = metrics.Ratio(m["l2.read_hit"], m["l2.read_miss"])
	l2Traffic := prof.DefaultReads.L2 + prof.DefaultReads.DRAM
	if l2Traffic > 0 {
		d.ProfiledL2 = prof.DefaultReads.L2 / l2Traffic
	}
	return d, nil
}

// L1Delta and L2Delta return the absolute rate disagreements.
func (d *HitRateDiff) L1Delta() float64 { return math.Abs(d.TimedL1 - d.ProfiledL1) }

// L2Delta returns the absolute L2 rate disagreement.
func (d *HitRateDiff) L2Delta() float64 { return math.Abs(d.TimedL2 - d.ProfiledL2) }

// String renders the rate comparison for failure messages.
func (d *HitRateDiff) String() string {
	return fmt.Sprintf("%s on %s: L1 timed %s vs profiled %s (delta %s); L2 timed %s vs profiled %s (delta %s)",
		d.App, d.GPU,
		metrics.FormatRate(d.TimedL1), metrics.FormatRate(d.ProfiledL1), metrics.FormatRate(d.L1Delta()),
		metrics.FormatRate(d.TimedL2), metrics.FormatRate(d.ProfiledL2), metrics.FormatRate(d.L2Delta()))
}
