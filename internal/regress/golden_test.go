package regress

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

// update regenerates the golden fixtures instead of comparing against them:
//
//	go test ./internal/regress/ -run Golden -update
//
// Regenerate only when a metrics change is intended, and review the fixture
// diff like any other code change.
var update = flag.Bool("update", false, "rewrite golden fixtures from the current simulator output")

// goldenCorpus trims the committed corpus under -short so the suite stays
// quick in short mode while CI and the verify recipe cover all 60 cases.
func goldenCorpus(t testing.TB) Corpus {
	c := DefaultCorpus()
	if testing.Short() {
		c.Apps = []string{"BFS", "HOTSPOT", "GEMM", "ADI", "SM", "GRU"}
		c.GPUs = c.GPUs[:1]
	}
	return c
}

// TestGoldenCorpus pins the canonical metrics of every corpus case to its
// committed fixture. Any metrics drift — cycles, counters, derived rates —
// fails with a line diff; `-update` regenerates the fixtures.
func TestGoldenCorpus(t *testing.T) {
	corpus := goldenCorpus(t)
	for _, cs := range corpus.Cases() {
		t.Run(cs.GPU.Name+"/"+cs.App, func(t *testing.T) {
			res, err := cs.Run()
			if err != nil {
				t.Fatalf("simulation failed: %v", err)
			}
			got := Canonical(res)
			path := GoldenPath(cs.GPU.Name, cs.App)
			if *update {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden fixture (regenerate with -update): %v", err)
			}
			if !bytes.Equal(want, got) {
				t.Errorf("canonical metrics drifted from %s (regenerate with -update if intended):\n%s",
					path, DiffLines(want, got, 20))
			}
		})
	}
}

// TestGoldenFixturesComplete fails if the committed fixture set and the
// corpus definition fall out of sync in either direction.
func TestGoldenFixturesComplete(t *testing.T) {
	if testing.Short() {
		t.Skip("fixture inventory covers the full corpus")
	}
	corpus := DefaultCorpus()
	want := make(map[string]bool)
	for _, cs := range corpus.Cases() {
		want[GoldenPath(cs.GPU.Name, cs.App)] = true
	}
	for path := range want {
		if _, err := os.Stat(path); err != nil {
			t.Errorf("corpus case has no fixture: %s (run go test ./internal/regress/ -run Golden -update)", path)
		}
	}
	matches, err := filepath.Glob(filepath.Join("testdata", "golden", "*", "*.golden"))
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range matches {
		if !want[m] {
			t.Errorf("stale fixture not in corpus: %s", m)
		}
	}
	if len(matches) == 0 && !*update {
		t.Error("no golden fixtures found")
	}
}

// TestCanonicalExcludesWallClock guards the one intentional omission: wall
// time is the only nondeterministic result field and must never leak into
// the canonical form.
func TestCanonicalExcludesWallClock(t *testing.T) {
	cs := Case{App: "BFS", Scale: 0.1, GPU: DefaultCorpus().GPUs[0], Opts: DefaultCorpus().Opts}
	res, err := cs.Run()
	if err != nil {
		t.Fatal(err)
	}
	c1 := Canonical(res)
	res.Wall *= 17 // perturb the nondeterministic field
	if !bytes.Equal(c1, Canonical(res)) {
		t.Error("canonical form depends on wall-clock time")
	}
	if bytes.Contains(c1, []byte(res.Wall.String())) {
		t.Error("canonical form contains the wall-clock duration")
	}
}

// TestDiffLines pins the failure-diff rendering.
func TestDiffLines(t *testing.T) {
	want := []byte("a\nb\nc\n")
	got := []byte("a\nB\nc\n")
	d := DiffLines(want, got, 0)
	if d != "line 2: -b\nline 2: +B\n" {
		t.Errorf("unexpected diff:\n%s", d)
	}
	if d := DiffLines(want, want, 0); d != "" {
		t.Errorf("diff of identical inputs = %q", d)
	}
	// Truncation names the residue.
	many := DiffLines([]byte("a\nb\nc\nd\n"), []byte("1\n2\n3\n4\n"), 2)
	if !bytes.Contains([]byte(many), []byte("more differing lines")) {
		t.Errorf("truncated diff missing residue note:\n%s", many)
	}
}
