package regress

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"swiftsim/internal/config"
	"swiftsim/internal/sim"
	"swiftsim/internal/workload"
)

// The sampled-execution oracles. Sampling (sim.Sampling) is an accuracy
// trade: repeated kernel launches replay a recorded outcome and each
// launch simulates only a representative block subset, with the remainder
// extrapolated analytically. Three properties are pinned here:
//
//   - Off by default: with Sampling unset the golden corpus is already
//     byte-identical to its fixtures (golden_test.go) — there is no
//     sampling code on that path to re-test.
//   - Determinism: a sampled run is a pure function of (configuration,
//     sampling parameters) — thread count and repetition change nothing.
//   - Bounded drift: per-preset relative cycle error against the exact
//     run stays within the committed envelope fixtures.

// sampleGPU shrinks a preset to the sampling oracle's operating point:
// 4 SMs and 2 memory partitions keep every wave small enough that the
// corpus apps have multi-wave grids at test scales (on the full 68-SM
// preset the whole grid fits in one wave and block sampling is a no-op),
// while preserving the preset's latencies and cache geometry.
func sampleGPU(gpu config.GPU) config.GPU {
	gpu.NumSMs = 4
	gpu.MemPartitions = 2
	return gpu
}

// sampleEnvelopeApps are the envelope's (app, scale) operating points:
// GRU and LSTM are iterative (launch replay dominates), HOTSPOT and SM
// are single-launch multi-wave grids (representative-block sampling and
// analytical extrapolation dominate).
var sampleEnvelopeApps = []struct {
	name  string
	scale float64
}{
	{"GRU", 2},
	{"LSTM", 2},
	{"HOTSPOT", 4},
	{"SM", 4},
}

// SampleEnvelopePath returns the fixture path for one GPU preset's
// sampled-execution error envelope: testdata/sample/<gpu>.envelope.
func SampleEnvelopePath(gpuName string) string {
	return filepath.Join("testdata", "sample", gpuName+".envelope")
}

// sampleEnvelopeHeader identifies the fixture format and operating point
// (the simulator defaults: fraction 0.125, stride 8, seed 0).
var sampleEnvelopeHeader = fmt.Sprintf("swiftsim-sample-envelope 1 kind=%s frac=%g stride=%d seed=0 sms=4 parts=2",
	sim.Basic, sim.DefaultBlockFraction, sim.DefaultReplayStride)

// TestSampleDeterministic pins the tentpole's determinism guarantee: a
// sampled run is bit-reproducible across engine thread counts and across
// repetitions — selection is a pure function of the configuration, and
// measured durations fold through order-independent sums.
func TestSampleDeterministic(t *testing.T) {
	gpu := sampleGPU(DefaultCorpus().GPUs[0])
	cases := []struct {
		name  string
		scale float64
	}{
		{"GRU", 2},      // replay-dominant
		{"PAGERANK", 1}, // block-sampling path with an irregular grid
	}
	if testing.Short() {
		cases = cases[:1]
	}
	for _, c := range cases {
		app, err := workload.Generate(c.name, c.scale)
		if err != nil {
			t.Fatal(err)
		}
		opts := sim.Options{Kind: sim.Basic, Sampling: sim.Sampling{Enabled: true}}
		base, err := sim.Run(app, gpu, opts)
		if err != nil {
			t.Fatalf("%s sampled serial: %v", c.name, err)
		}
		if !base.Sampled {
			t.Fatalf("%s: result not marked Sampled", c.name)
		}
		want := Canonical(base)
		for _, threads := range []int{1, 4} {
			o := opts
			o.EngineThreads = threads
			res, err := sim.Run(app, gpu, o)
			if err != nil {
				t.Fatalf("%s sampled threads=%d: %v", c.name, threads, err)
			}
			if got := Canonical(res); !bytes.Equal(want, got) {
				t.Errorf("%s: sampled run differs at threads=%d:\n%s",
					c.name, threads, DiffLines(want, got, 20))
			}
		}
	}
}

// TestSampleSeedSelectsDifferentBlocks guards the seed plumbing: two
// different seeds must be allowed to pick different representatives (equal
// seeds are already pinned byte-identical by TestSampleDeterministic).
// Cycles may coincide by chance on some apps, so this only requires the
// runs to be valid, not distinct — the real assertion is that Seed
// round-trips into selection without error and deterministically.
func TestSampleSeedSelectsDifferentBlocks(t *testing.T) {
	gpu := sampleGPU(DefaultCorpus().GPUs[0])
	app, err := workload.Generate("SM", 4)
	if err != nil {
		t.Fatal(err)
	}
	byseed := make(map[uint64]uint64)
	for _, seed := range []uint64{0, 1} {
		res, err := sim.Run(app, gpu, sim.Options{
			Kind: sim.Basic, Sampling: sim.Sampling{Enabled: true, Seed: seed}})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		again, err := sim.Run(app, gpu, sim.Options{
			Kind: sim.Basic, Sampling: sim.Sampling{Enabled: true, Seed: seed}})
		if err != nil {
			t.Fatalf("seed %d repeat: %v", seed, err)
		}
		if res.Cycles != again.Cycles {
			t.Errorf("seed %d: cycles not reproducible: %d then %d", seed, res.Cycles, again.Cycles)
		}
		byseed[seed] = res.Cycles
	}
	t.Logf("seed 0: %d cycles, seed 1: %d cycles", byseed[0], byseed[1])
}

// parseSampleEnvelope reads a committed sample envelope fixture into
// app → max permille.
func parseSampleEnvelope(t *testing.T, path string) map[string]uint64 {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing sample envelope fixture (regenerate with -update): %v", err)
	}
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	if len(lines) == 0 || lines[0] != sampleEnvelopeHeader {
		t.Fatalf("sample envelope fixture %s has header %q, want %q (regenerate with -update)",
			path, lines[0], sampleEnvelopeHeader)
	}
	out := make(map[string]uint64)
	for _, ln := range lines[1:] {
		var app string
		var scale float64
		var p uint64
		if _, err := fmt.Sscanf(ln, "%s %g %d", &app, &scale, &p); err != nil {
			t.Fatalf("sample envelope fixture %s: bad line %q: %v", path, ln, err)
		}
		out[app] = p
	}
	return out
}

// TestSampleEnvelope is the accuracy oracle: per-preset, per-app relative
// cycle error of the default sampled Basic run against its exact serial
// baseline, bounded by the committed envelope. Sampled runs are
// deterministic, so any change in these numbers is a real behavior change
// and reviewed like a golden diff; regenerate intended changes with
// -update (or `make envelopes`).
func TestSampleEnvelope(t *testing.T) {
	if testing.Short() {
		t.Skip("envelope oracle runs the full preset sweep")
	}
	for _, preset := range DefaultCorpus().GPUs {
		gpu := sampleGPU(preset)
		t.Run(preset.Name, func(t *testing.T) {
			got := make(map[string]uint64, len(sampleEnvelopeApps))
			for _, c := range sampleEnvelopeApps {
				app, err := workload.Generate(c.name, c.scale)
				if err != nil {
					t.Fatal(err)
				}
				exact, err := sim.Run(app, gpu, sim.Options{Kind: sim.Basic})
				if err != nil {
					t.Fatalf("%s exact: %v", c.name, err)
				}
				sampled, err := sim.Run(app, gpu, sim.Options{
					Kind: sim.Basic, Sampling: sim.Sampling{Enabled: true}})
				if err != nil {
					t.Fatalf("%s sampled: %v", c.name, err)
				}
				got[c.name] = relErrPermille(exact.Cycles, sampled.Cycles)
				t.Logf("%s@%g: exact %d cycles, sampled %d cycles (ticked %d vs %d), error %d‰",
					c.name, c.scale, exact.Cycles, sampled.Cycles,
					sampled.TickedCycles, exact.TickedCycles, got[c.name])
			}
			path := SampleEnvelopePath(preset.Name)
			if *update {
				var b strings.Builder
				b.WriteString(sampleEnvelopeHeader + "\n")
				for _, c := range sampleEnvelopeApps {
					fmt.Fprintf(&b, "%s %g %d\n", c.name, c.scale, got[c.name])
				}
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want := parseSampleEnvelope(t, path)
			for _, c := range sampleEnvelopeApps {
				bound, ok := want[c.name]
				if !ok {
					t.Errorf("%s missing from sample envelope fixture %s (regenerate with -update)", c.name, path)
					continue
				}
				if got[c.name] > bound {
					t.Errorf("%s: sampled relative cycle error %d‰ exceeds the committed envelope %d‰ (regenerate with -update if intended)",
						c.name, got[c.name], bound)
				}
			}
		})
	}
}

// TestSampleSpeedsUpTickedCycles pins the mechanism behind the perf gate:
// at the default parameters, sampled execution must tick strictly fewer
// engine cycles than the exact run on a replay-heavy app (the wall-clock
// speedup itself is gated by BenchmarkEngineSampled via make benchcmp,
// where it is measured rather than assumed).
func TestSampleSpeedsUpTickedCycles(t *testing.T) {
	gpu := sampleGPU(DefaultCorpus().GPUs[0])
	app, err := workload.Generate("GRU", 2)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := sim.Run(app, gpu, sim.Options{Kind: sim.Basic})
	if err != nil {
		t.Fatal(err)
	}
	sampled, err := sim.Run(app, gpu, sim.Options{
		Kind: sim.Basic, Sampling: sim.Sampling{Enabled: true}})
	if err != nil {
		t.Fatal(err)
	}
	if sampled.TickedCycles*2 >= exact.TickedCycles {
		t.Errorf("sampled run ticked %d cycles, want < half of the exact run's %d",
			sampled.TickedCycles, exact.TickedCycles)
	}
}
