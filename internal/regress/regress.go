// Package regress is Swift-Sim's golden-fixture regression and
// differential-testing subsystem — the safety net that makes the ROADMAP's
// "refactor freely" mandate tenable.
//
// Three oracles live here:
//
//   - Golden metrics: every simulation result can be rendered to a
//     canonical, byte-stable text form (Canonical). Committed fixtures
//     under testdata/golden pin the exact metrics of the 20-app workload
//     catalog on the three GPU presets; any drift — an extra cycle, a
//     changed counter — fails `go test ./internal/regress/...` until the
//     change is acknowledged with `-update`.
//   - Determinism: the same trace and configuration must produce
//     bit-identical canonical output across repeated runs and across
//     worker-pool sizes (threads 1, 4, NumCPU), because each job is an
//     independent simulator instance. Silent nondeterminism is the first
//     thing that corrupts correlation numbers once sweeps run
//     multi-threaded.
//   - Differential: the hybrid configurations must agree with each other —
//     Swift-Sim-Memory's analytical cycles within a configured tolerance
//     of Swift-Sim-Basic's cycle-accurate memory path, and the reuse
//     profiler's hit rates within tolerance of the timed caches. Failures
//     print a per-kernel diff (see diff.go).
package regress

import (
	"bytes"
	"fmt"
	"path/filepath"
	"strconv"

	"swiftsim/internal/config"
	"swiftsim/internal/metrics"
	"swiftsim/internal/sim"
	"swiftsim/internal/workload"
)

// Corpus defines a golden regression corpus: the cross product of
// applications and GPU configurations, simulated at one problem scale under
// one simulator configuration.
type Corpus struct {
	// Apps lists workload-catalog application names.
	Apps []string
	// GPUs lists the hardware configurations.
	GPUs []config.GPU
	// Scale is the workload problem scale.
	Scale float64
	// Opts selects the simulator configuration for every case.
	Opts sim.Options
}

// DefaultCorpus returns the committed golden corpus: all 20 catalog
// applications on the three GPU presets of Table I, at scale 0.25 under
// Swift-Sim-Memory (the fastest configuration, so the full 60-case corpus
// reruns in seconds while still exercising the trace generators, the reuse
// profiler, the analytical memory model, the warp/block schedulers, and the
// metrics pipeline end to end).
func DefaultCorpus() Corpus {
	return Corpus{
		Apps:  workload.Names(),
		GPUs:  []config.GPU{config.RTX2080Ti(), config.RTX3060(), config.RTX3090()},
		Scale: 0.25,
		Opts:  sim.Options{Kind: sim.Memory},
	}
}

// Case is one (application, GPU) cell of a corpus.
type Case struct {
	App   string
	GPU   config.GPU
	Scale float64
	Opts  sim.Options
}

// Cases expands the corpus into its cases, GPUs outermost, in declaration
// order (deterministic).
func (c Corpus) Cases() []Case {
	out := make([]Case, 0, len(c.GPUs)*len(c.Apps))
	for _, gpu := range c.GPUs {
		for _, app := range c.Apps {
			out = append(out, Case{App: app, GPU: gpu, Scale: c.Scale, Opts: c.Opts})
		}
	}
	return out
}

// Run generates the case's workload trace and simulates it.
func (cs Case) Run() (*sim.Result, error) {
	app, err := workload.Generate(cs.App, cs.Scale)
	if err != nil {
		return nil, err
	}
	return sim.Run(app, cs.GPU, cs.Opts)
}

// GoldenPath returns the testdata-relative fixture path for a case:
// testdata/golden/<gpu>/<app>.golden.
func GoldenPath(gpuName, appName string) string {
	return filepath.Join("testdata", "golden", gpuName, appName+".golden")
}

// CanonicalVersion is the header line of the canonical rendering. It names
// the serialization format, so consumers that persist canonical bytes —
// the golden fixtures here, the sweep service's result cache — can fold it
// into their keys and invalidate stored values when the format changes.
const CanonicalVersion = "swiftsim-canonical 1"

// Canonical renders a simulation result in canonical, byte-stable form:
// fixed header fields, per-kernel cycle counts in launch order, and the
// full metrics snapshot in sorted key order with fixed-format derived
// rates. Wall-clock time is deliberately excluded — it is the only
// nondeterministic field of a result. Byte equality of two canonical
// renderings is the determinism criterion used throughout this package.
func Canonical(res *sim.Result) []byte {
	var b bytes.Buffer
	b.WriteString(CanonicalVersion + "\n")
	fmt.Fprintf(&b, "app %s\n", res.App)
	fmt.Fprintf(&b, "gpu %s\n", res.GPUName)
	fmt.Fprintf(&b, "sim %s\n", res.Kind)
	fmt.Fprintf(&b, "cycles %d\n", res.Cycles)
	fmt.Fprintf(&b, "instructions %d\n", res.Instructions)
	fmt.Fprintf(&b, "ticked %d\n", res.TickedCycles)
	fmt.Fprintf(&b, "skipped %d\n", res.SkippedCycles)
	fmt.Fprintf(&b, "sampled %s\n", strconv.FormatBool(res.Sampled))
	fmt.Fprintf(&b, "kernels %d\n", len(res.KernelCycles))
	for i, kc := range res.KernelCycles {
		fmt.Fprintf(&b, "kernel %d %d\n", i, kc)
	}
	fmt.Fprintf(&b, "metrics %d\n", len(res.Metrics))
	// bytes.Buffer writes cannot fail.
	_ = metrics.WriteCanonical(&b, res.Metrics)
	return b.Bytes()
}

// DiffLines renders a compact line-oriented diff between two canonical
// renderings, at most max differing lines (0 = all). It is the failure
// message of the golden and determinism oracles: each differing line is
// shown as "-want / +got" with its line number.
func DiffLines(want, got []byte, max int) string {
	w := bytes.Split(want, []byte("\n"))
	g := bytes.Split(got, []byte("\n"))
	n := len(w)
	if len(g) > n {
		n = len(g)
	}
	var b bytes.Buffer
	shown := 0
	for i := 0; i < n; i++ {
		var wl, gl []byte
		if i < len(w) {
			wl = w[i]
		}
		if i < len(g) {
			gl = g[i]
		}
		if bytes.Equal(wl, gl) {
			continue
		}
		if max > 0 && shown >= max {
			fmt.Fprintf(&b, "... (%d more differing lines)\n", countDiffs(w, g, i))
			break
		}
		if i < len(w) {
			fmt.Fprintf(&b, "line %d: -%s\n", i+1, wl)
		}
		if i < len(g) {
			fmt.Fprintf(&b, "line %d: +%s\n", i+1, gl)
		}
		shown++
	}
	return b.String()
}

// countDiffs counts differing line positions from index from onward.
func countDiffs(w, g [][]byte, from int) int {
	n := len(w)
	if len(g) > n {
		n = len(g)
	}
	count := 0
	for i := from; i < n; i++ {
		var wl, gl []byte
		if i < len(w) {
			wl = w[i]
		}
		if i < len(g) {
			gl = g[i]
		}
		if !bytes.Equal(wl, gl) {
			count++
		}
	}
	return count
}
