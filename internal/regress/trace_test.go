package regress

import (
	"bytes"
	"os"
	"testing"

	"swiftsim/internal/obs"
	"swiftsim/internal/sim"
	"swiftsim/internal/workload"
)

// TestTracingLeavesGoldensIdentical is the observability determinism
// oracle: running the golden corpus with request-level tracing enabled
// must reproduce every committed fixture byte for byte. Observation reads
// simulator state; it must never feed back into scheduling, counters or
// cycle counts.
func TestTracingLeavesGoldensIdentical(t *testing.T) {
	corpus := goldenCorpus(t)
	for _, cs := range corpus.Cases() {
		t.Run(cs.GPU.Name+"/"+cs.App, func(t *testing.T) {
			cs.Opts.Trace = obs.New(obs.NewRing(0), obs.RequestLevel)
			res, err := cs.Run()
			if err != nil {
				t.Fatalf("traced simulation failed: %v", err)
			}
			got := Canonical(res)
			want, err := os.ReadFile(GoldenPath(cs.GPU.Name, cs.App))
			if err != nil {
				t.Fatalf("missing golden fixture: %v", err)
			}
			if !bytes.Equal(want, got) {
				t.Errorf("request-level tracing changed canonical metrics:\n%s",
					DiffLines(want, got, 20))
			}
		})
	}
}

// TestTracingIsObservationOnly runs the same Detailed simulation with and
// without request-level tracing and requires bit-identical canonical
// output. The Detailed configuration exercises every hook the goldens'
// analytical memory model skips — timed caches, NoC, DRAM and the SM
// stall attribution — so a tracing hook that perturbs state (an extra
// engine wakeup, a counter bump, a mutated pooled request) fails here.
func TestTracingIsObservationOnly(t *testing.T) {
	app, err := workload.Generate("BFS", 0.25)
	if err != nil {
		t.Fatal(err)
	}
	gpu := DefaultCorpus().GPUs[0]

	plain, err := sim.Run(app, gpu, sim.Options{Kind: sim.Detailed})
	if err != nil {
		t.Fatal(err)
	}
	ring := obs.NewRing(0)
	traced, err := sim.Run(app, gpu, sim.Options{
		Kind:  sim.Detailed,
		Trace: obs.New(ring, obs.RequestLevel),
	})
	if err != nil {
		t.Fatal(err)
	}

	want, got := Canonical(plain), Canonical(traced)
	if !bytes.Equal(want, got) {
		t.Errorf("tracing perturbed the Detailed simulation:\n%s", DiffLines(want, got, 20))
	}
	// Guard against the oracle passing vacuously with tracing dead.
	if ring.Len() == 0 {
		t.Fatal("request-level tracing recorded no events; the oracle is not exercising the hooks")
	}
}
