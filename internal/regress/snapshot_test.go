package regress

import (
	"bytes"
	"fmt"
	"runtime"
	"testing"

	"swiftsim/internal/sim"
	"swiftsim/internal/workload"
)

// TestSnapshotRoundTrip is the checkpoint determinism oracle over the golden
// corpus: every app is checkpointed at a mid-run quiescent kernel boundary,
// the checkpoint is structurally validated, restored into a fresh assembly,
// and the resumed run's canonical result must be byte-identical to an
// uninterrupted run. The snapshotting run itself must also be unperturbed —
// taking a checkpoint is observationally free.
func TestSnapshotRoundTrip(t *testing.T) {
	corpus := goldenCorpus(t)
	for _, cs := range corpus.Cases() {
		cs := cs
		t.Run(fmt.Sprintf("%s/%s", cs.GPU.Name, cs.App), func(t *testing.T) {
			base, err := cs.Run()
			if err != nil {
				t.Fatalf("base run: %v", err)
			}
			want := Canonical(base)

			// Snapshot at roughly the middle of the run; the writer rolls
			// forward to the first quiescent kernel boundary at or after it.
			var buf bytes.Buffer
			snapCase := cs
			snapCase.Opts.SnapshotAt = base.Cycles / 2
			snapCase.Opts.SnapshotTo = &buf
			snapRes, err := snapCase.Run()
			if err != nil {
				t.Fatalf("snapshot run: %v", err)
			}
			if got := Canonical(snapRes); !bytes.Equal(want, got) {
				t.Errorf("taking a snapshot perturbed the run:\n%s", DiffLines(want, got, 20))
			}
			if buf.Len() == 0 {
				t.Fatal("snapshot run wrote no checkpoint")
			}
			if err := sim.ParseSnapshot(buf.Bytes()); err != nil {
				t.Fatalf("checkpoint fails structural validation: %v", err)
			}

			restCase := cs
			restCase.Opts.RestoreFrom = bytes.NewReader(buf.Bytes())
			restRes, err := restCase.Run()
			if err != nil {
				t.Fatalf("restored run: %v", err)
			}
			if got := Canonical(restRes); !bytes.Equal(want, got) {
				t.Errorf("restored run diverged from the uninterrupted run:\n%s",
					DiffLines(want, got, 20))
			}
		})
	}
}

// TestSnapshotCrossThreads pins the thread-count independence of the format:
// a checkpoint of a parallel cycle-accurate run restores into a serial
// assembly (and vice versa) with byte-identical final results. EngineThreads
// is deliberately absent from the snapshot identity.
//
// The oracle runs the L2Hybrid configuration: its kernel boundaries are
// quiescent (the analytic backend completes in-kernel), whereas Basic and
// Detailed boundaries typically still carry fire-and-forget store
// completions — those runs take the designed skip-or-fail path instead.
func TestSnapshotCrossThreads(t *testing.T) {
	gpu := DefaultCorpus().GPUs[0]
	apps := []string{"BFS", "GEMM"}
	if testing.Short() {
		apps = apps[:1]
	}
	threads := runtime.NumCPU()
	if threads < 2 {
		threads = 2
	}
	for _, name := range apps {
		app, err := workload.Generate(name, 0.25)
		if err != nil {
			t.Fatal(err)
		}
		base, err := sim.Run(app, gpu, sim.Options{Kind: sim.L2Hybrid})
		if err != nil {
			t.Fatalf("%s serial: %v", name, err)
		}
		want := Canonical(base)

		type leg struct {
			label       string
			saveThreads int
			loadThreads int
		}
		legs := []leg{
			{"parallel-to-serial", threads, 1},
			{"serial-to-parallel", 1, threads},
		}
		for _, l := range legs {
			var buf bytes.Buffer
			_, err := sim.Run(app, gpu, sim.Options{
				Kind:          sim.L2Hybrid,
				EngineThreads: l.saveThreads,
				SnapshotAt:    base.Cycles / 2,
				SnapshotTo:    &buf,
			})
			if err != nil {
				t.Fatalf("%s %s: snapshot run: %v", name, l.label, err)
			}
			res, err := sim.Run(app, gpu, sim.Options{
				Kind:          sim.L2Hybrid,
				EngineThreads: l.loadThreads,
				RestoreFrom:   bytes.NewReader(buf.Bytes()),
			})
			if err != nil {
				t.Fatalf("%s %s: restored run: %v", name, l.label, err)
			}
			if got := Canonical(res); !bytes.Equal(want, got) {
				t.Errorf("%s %s: restored run diverged from serial baseline:\n%s",
					name, l.label, DiffLines(want, got, 20))
			}
		}
	}
}
