package regress

import (
	"bytes"
	"runtime"
	"testing"

	"swiftsim/internal/runner"
	"swiftsim/internal/sim"
	"swiftsim/internal/trace"
	"swiftsim/internal/workload"
)

// determinismApps returns the apps the determinism oracle sweeps. The
// full catalog runs by default; -short keeps a cross-suite sample.
func determinismApps() []string {
	if testing.Short() {
		return []string{"BFS", "GEMM", "SM", "GRU"}
	}
	return workload.Names()
}

// canonicalSweep runs every app through the parallel runner at the given
// worker count and returns each app's canonical metrics bytes, keyed by
// app name.
func canonicalSweep(t *testing.T, apps []string, scale float64, opts sim.Options, threads int) map[string][]byte {
	t.Helper()
	corpus := DefaultCorpus()
	gpu := corpus.GPUs[0]
	jobs := make([]runner.Job, len(apps))
	traces := make([]*trace.App, len(apps))
	for i, name := range apps {
		app, err := workload.Generate(name, scale)
		if err != nil {
			t.Fatal(err)
		}
		traces[i] = app
		jobs[i] = runner.Job{App: app, GPU: gpu, Opts: opts}
	}
	outs := runner.Run(jobs, threads, runner.Options{})
	got := make(map[string][]byte, len(outs))
	for i, o := range outs {
		if o.Err != nil {
			t.Fatalf("%s failed at %d threads: %v", apps[i], threads, o.Err)
		}
		got[apps[i]] = Canonical(o.Result)
	}
	return got
}

// requireIdentical asserts two sweeps produced bit-identical canonical
// metrics for every app.
func requireIdentical(t *testing.T, label string, base, other map[string][]byte) {
	t.Helper()
	for app, want := range base {
		got, ok := other[app]
		if !ok {
			t.Errorf("%s: app %s missing from sweep", label, app)
			continue
		}
		if !bytes.Equal(want, got) {
			t.Errorf("%s: %s canonical metrics differ:\n%s", label, app, DiffLines(want, got, 10))
		}
	}
}

// TestDeterminismRepeatedRuns is the core determinism oracle: three
// repeated single-thread sweeps of the corpus must produce bit-identical
// canonical metrics.
func TestDeterminismRepeatedRuns(t *testing.T) {
	apps := determinismApps()
	opts := DefaultCorpus().Opts
	base := canonicalSweep(t, apps, 0.25, opts, 1)
	for run := 2; run <= 3; run++ {
		requireIdentical(t, "repeat run", base, canonicalSweep(t, apps, 0.25, opts, 1))
	}
}

// TestDeterminismAcrossThreadCounts asserts worker-pool size cannot change
// results: threads ∈ {1, 4, NumCPU} all match, because every job is an
// independent simulator instance.
func TestDeterminismAcrossThreadCounts(t *testing.T) {
	apps := determinismApps()
	opts := DefaultCorpus().Opts
	base := canonicalSweep(t, apps, 0.25, opts, 1)
	for _, threads := range []int{4, runtime.NumCPU()} {
		requireIdentical(t, "threads", base, canonicalSweep(t, apps, 0.25, opts, threads))
	}
}

// TestDeterminismCycleAccurate covers the cycle-accurate memory path
// (Swift-Sim-Basic), whose event scheduling is the likeliest place for
// accidental nondeterminism to creep in during refactors.
func TestDeterminismCycleAccurate(t *testing.T) {
	apps := []string{"BFS", "GEMM", "SM"}
	if testing.Short() {
		apps = apps[:1]
	}
	opts := sim.Options{Kind: sim.Basic}
	base := canonicalSweep(t, apps, 0.25, opts, 1)
	requireIdentical(t, "basic repeat", base, canonicalSweep(t, apps, 0.25, opts, 1))
	requireIdentical(t, "basic threads=4", base, canonicalSweep(t, apps, 0.25, opts, 4))
}

// TestDeterminismHitRateSources pins both hit-rate extraction paths of
// Swift-Sim-Memory: repeated profiling must agree with itself.
func TestDeterminismHitRateSources(t *testing.T) {
	for _, src := range []sim.HitRateSource{sim.FunctionalCaches, sim.ReuseDistance} {
		opts := sim.Options{Kind: sim.Memory, HitRates: src}
		apps := []string{"PAGERANK"}
		base := canonicalSweep(t, apps, 0.25, opts, 1)
		requireIdentical(t, "hit-rate source", base, canonicalSweep(t, apps, 0.25, opts, 1))
	}
}
