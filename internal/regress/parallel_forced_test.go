package regress

import (
	"bytes"
	"runtime"
	"testing"

	"swiftsim/internal/sim"
	"swiftsim/internal/workload"
)

// TestEngineThreadsForcedWorkers pins the *staged* parallel path — worker
// goroutines, barrier, staged-event fold — against the serial engine on
// every host. On a single-proc machine the engine's exact mode falls back
// to the plain serial tick (no speedup is available, so no staging cost
// is paid), which would leave the worker path untested by the plain
// EngineThreads sweep; raising GOMAXPROCS for the duration re-engages it.
// GOMAXPROCS is deliberately allowed to exceed the physical core count:
// correctness must not depend on the scheduler ever running two workers
// at once.
func TestEngineThreadsForcedWorkers(t *testing.T) {
	prev := runtime.GOMAXPROCS(0)
	if prev < 2 {
		runtime.GOMAXPROCS(4)
		defer runtime.GOMAXPROCS(prev)
	}
	gpu := DefaultCorpus().GPUs[0]
	cases := []struct {
		kind sim.Kind
		app  string
	}{
		{sim.Basic, "GEMM"},
		{sim.L2Hybrid, "BFS"},
		{sim.Detailed, "HOTSPOT"},
	}
	if testing.Short() {
		cases = cases[:1]
	}
	for _, c := range cases {
		app, err := workload.Generate(c.app, 0.25)
		if err != nil {
			t.Fatal(err)
		}
		base, err := sim.Run(app, gpu, sim.Options{Kind: c.kind})
		if err != nil {
			t.Fatalf("%s/%s serial: %v", c.kind, c.app, err)
		}
		want := Canonical(base)
		for _, threads := range []int{2, 4} {
			res, err := sim.Run(app, gpu, sim.Options{Kind: c.kind, EngineThreads: threads})
			if err != nil {
				t.Fatalf("%s/%s EngineThreads=%d: %v", c.kind, c.app, threads, err)
			}
			if got := Canonical(res); !bytes.Equal(want, got) {
				t.Errorf("%s/%s: EngineThreads=%d (workers forced) diverged from serial:\n%s",
					c.kind, c.app, threads, DiffLines(want, got, 20))
			}
		}
	}
}
