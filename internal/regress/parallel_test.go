package regress

import (
	"bytes"
	"os"
	"runtime"
	"testing"

	"swiftsim/internal/sim"
	"swiftsim/internal/workload"
)

// engineThreadValues is the EngineThreads sweep the intra-simulation
// parallelism oracle runs: serial, two shards, and one shard per host CPU.
func engineThreadValues() []int {
	vals := []int{1, 2}
	if n := runtime.NumCPU(); n != 1 && n != 2 {
		vals = append(vals, n)
	}
	return vals
}

// TestGoldenCorpusEngineThreads re-runs the committed golden corpus at
// every EngineThreads value and requires each case to stay byte-identical
// to its fixture: intra-simulation parallelism must be invisible in the
// metrics.
func TestGoldenCorpusEngineThreads(t *testing.T) {
	corpus := goldenCorpus(t)
	for _, threads := range engineThreadValues() {
		for _, cs := range corpus.Cases() {
			cs := cs
			cs.Opts.EngineThreads = threads
			t.Run(cs.GPU.Name+"/"+cs.App, func(t *testing.T) {
				res, err := cs.Run()
				if err != nil {
					t.Fatalf("simulation failed at EngineThreads=%d: %v", threads, err)
				}
				want, err := os.ReadFile(GoldenPath(cs.GPU.Name, cs.App))
				if err != nil {
					t.Fatalf("missing golden fixture: %v", err)
				}
				if got := Canonical(res); !bytes.Equal(want, got) {
					t.Errorf("EngineThreads=%d drifted from the golden fixture:\n%s",
						threads, DiffLines(want, got, 20))
				}
			})
		}
	}
}

// TestEngineThreadsCycleAccurateKinds is the sharp edge of the oracle: the
// golden corpus is Swift-Sim-Memory (which always runs serially), so this
// sweeps the configurations whose SMs/L1s actually tick on shards —
// Detailed, Basic and L2Hybrid — and requires canonical metrics at every
// EngineThreads value to match the serial run byte for byte.
func TestEngineThreadsCycleAccurateKinds(t *testing.T) {
	type cfg struct {
		kind sim.Kind
		apps []string
	}
	cases := []cfg{
		{sim.Basic, []string{"BFS", "GEMM", "SM"}},
		{sim.L2Hybrid, []string{"BFS", "GEMM"}},
		{sim.Detailed, []string{"GEMM", "HOTSPOT"}},
	}
	if testing.Short() {
		cases = []cfg{{sim.Basic, []string{"GEMM"}}, {sim.Detailed, []string{"GEMM"}}}
	}
	gpu := DefaultCorpus().GPUs[0]
	for _, c := range cases {
		for _, name := range c.apps {
			app, err := workload.Generate(name, 0.25)
			if err != nil {
				t.Fatal(err)
			}
			base, err := sim.Run(app, gpu, sim.Options{Kind: c.kind})
			if err != nil {
				t.Fatalf("%s/%s serial: %v", c.kind, name, err)
			}
			want := Canonical(base)
			threadVals := []int{2, 3, 4}
			if n := runtime.NumCPU(); n > 4 {
				threadVals = append(threadVals, n)
			}
			if testing.Short() {
				threadVals = threadVals[:2]
			}
			for _, threads := range threadVals {
				res, err := sim.Run(app, gpu, sim.Options{Kind: c.kind, EngineThreads: threads})
				if err != nil {
					t.Fatalf("%s/%s EngineThreads=%d: %v", c.kind, name, threads, err)
				}
				if got := Canonical(res); !bytes.Equal(want, got) {
					t.Errorf("%s/%s: EngineThreads=%d diverged from serial:\n%s",
						c.kind, name, threads, DiffLines(want, got, 20))
				}
			}
		}
	}
}
