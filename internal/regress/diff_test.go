package regress

import (
	"testing"

	"swiftsim/internal/config"
	"swiftsim/internal/sim"
	"swiftsim/internal/workload"
)

// tolerance bounds one app's allowed disagreement between the hybrid
// configurations on the RTX 2080 Ti (the preset the envelopes below were
// measured on).
type tolerance struct {
	// rel bounds the app-wide Basic-vs-Memory relative cycle delta;
	// kernelRel bounds every per-kernel delta.
	rel, kernelRel float64
	// l1, l2 bound the absolute read hit-rate disagreement between the
	// timed caches and the functional reuse profiler.
	l1, l2 float64
}

// defaultTol covers the well-behaved majority of the catalog with ~1.5x
// headroom over the measured envelope at scale 0.25.
var defaultTol = tolerance{rel: 0.20, kernelRel: 0.32, l1: 0.08, l2: 0.10}

// tolOverrides lists the apps whose models genuinely diverge further.
//
//   - PAGERANK/BFS/SSSP: divergent graph gathers. The analytical model
//     prices every load with app-wide average hit rates, but these apps'
//     latency is dominated by a few fully-diverged frontier loads, so the
//     cycle disagreement is structural (measured up to 1.08x app-wide).
//   - WC: every load line of its 64 KiB-strided scan maps to L1 set 0
//     (the 64-set x 128 B L1 aliases at 8 KiB), so the timeless functional
//     model sees pure conflict misses while the timed cache's fine-grained
//     warp interleaving salvages ~23% of reads. A textbook timing-dependent
//     hit-rate case the paper's Eq. 1 inputs cannot capture.
//   - ATAX/ADI/GRU/BACKPROP/NW/LSTM: MSHR merges (counted as misses by the
//     timed cache, as hits by the functional model) and eviction-order
//     timing shift the read rates by 0.03-0.18.
//
// Tightening any entry requires improving the analytical model first; see
// DESIGN.md.
var tolOverrides = map[string]tolerance{
	"PAGERANK": {rel: 1.30, kernelRel: 1.35, l1: 0.08, l2: 0.10},
	"BFS":      {rel: 0.85, kernelRel: 1.20, l1: 0.08, l2: 0.10},
	"SSSP":     {rel: 0.70, kernelRel: 1.00, l1: 0.08, l2: 0.10},
	"WC":       {rel: 0.20, kernelRel: 0.32, l1: 0.32, l2: 0.20},
	"ATAX":     {rel: 0.20, kernelRel: 0.32, l1: 0.18, l2: 0.25},
	"ADI":      {rel: 0.20, kernelRel: 0.32, l1: 0.14, l2: 0.20},
	"GRU":      {rel: 0.20, kernelRel: 0.32, l1: 0.22, l2: 0.10},
	"BACKPROP": {rel: 0.20, kernelRel: 0.32, l1: 0.16, l2: 0.10},
	"NW":       {rel: 0.20, kernelRel: 0.32, l1: 0.13, l2: 0.10},
	"LSTM":     {rel: 0.20, kernelRel: 0.32, l1: 0.12, l2: 0.10},
	"SM":       {rel: 0.20, kernelRel: 0.32, l1: 0.08, l2: 0.14},
}

func tolFor(app string) tolerance {
	if t, ok := tolOverrides[app]; ok {
		return t
	}
	return defaultTol
}

// diffApps returns the apps the differential oracle covers; -short keeps a
// sample spanning the tight and loose ends of the tolerance table.
func diffApps() []string {
	if testing.Short() {
		return []string{"HOTSPOT", "GEMM", "WC", "BFS"}
	}
	return workload.Names()
}

// TestDifferentialBasicVsMemory is the cycle differential oracle:
// Swift-Sim-Memory's analytical cycles must stay within each app's
// configured tolerance of Swift-Sim-Basic's cycle-accurate memory path,
// app-wide and per kernel. A failure prints the per-kernel diff table.
func TestDifferentialBasicVsMemory(t *testing.T) {
	gpu := config.RTX2080Ti()
	for _, name := range diffApps() {
		t.Run(name, func(t *testing.T) {
			app, err := workload.Generate(name, 0.25)
			if err != nil {
				t.Fatal(err)
			}
			d, err := CompareKinds(app, gpu,
				sim.Options{Kind: sim.Basic}, sim.Options{Kind: sim.Memory})
			if err != nil {
				t.Fatal(err)
			}
			tol := tolFor(name)
			if !d.Within(tol.rel) {
				t.Errorf("app-wide cycle delta %.3f exceeds tolerance %.2f:\n%s",
					d.Rel, tol.rel, d)
			}
			for _, k := range d.Kernels {
				if k.Rel > tol.kernelRel {
					t.Errorf("kernel %d (%s) cycle delta %.3f exceeds tolerance %.2f:\n%s",
						k.Index, k.Name, k.Rel, tol.kernelRel, d)
					break
				}
			}
		})
	}
}

// TestHitRateAgreement is the hit-rate differential oracle: the functional
// reuse profiler's read service rates (the analytical model's Eq. 1
// inputs) must stay within each app's tolerance of the rates the timed
// caches observe during a cycle-accurate run of the same trace.
func TestHitRateAgreement(t *testing.T) {
	gpu := config.RTX2080Ti()
	for _, name := range diffApps() {
		t.Run(name, func(t *testing.T) {
			app, err := workload.Generate(name, 0.25)
			if err != nil {
				t.Fatal(err)
			}
			d, err := CompareHitRates(app, gpu)
			if err != nil {
				t.Fatal(err)
			}
			tol := tolFor(name)
			if d.L1Delta() > tol.l1 {
				t.Errorf("L1 read hit-rate delta %.3f exceeds tolerance %.2f:\n%s",
					d.L1Delta(), tol.l1, d)
			}
			if d.L2Delta() > tol.l2 {
				t.Errorf("L2 read hit-rate delta %.3f exceeds tolerance %.2f:\n%s",
					d.L2Delta(), tol.l2, d)
			}
		})
	}
}
