// Package experiments reproduces the evaluation artifacts of the paper:
// Table I (GPU comparison), Table II (RTX 2080 Ti configuration), Figure 4
// (per-application prediction error and speedup on the RTX 2080 Ti),
// Figure 5 (speedup contribution analysis), and Figure 6 (prediction error
// across three GPU architectures).
//
// Real-hardware cycle counts are supplied by the golden reference model in
// internal/hwmodel (see DESIGN.md for the substitution rationale), and the
// Accel-Sim baseline by the fully cycle-accurate Detailed configuration.
package experiments

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sort"
	"time"

	"swiftsim/internal/config"
	"swiftsim/internal/hwmodel"
	"swiftsim/internal/obs"
	"swiftsim/internal/runner"
	"swiftsim/internal/sim"
	"swiftsim/internal/stats"
	"swiftsim/internal/trace"
	"swiftsim/internal/workload"
)

// Params configures an experiment run.
type Params struct {
	// Apps lists the applications to run (nil = the full 20-app
	// catalog).
	Apps []string
	// Scale is the workload problem scale (0 = 1.0).
	Scale float64
	// GPU is the hardware configuration (zero value = RTX 2080 Ti).
	GPU config.GPU
	// Threads is the worker count for the sweeps that run jobs in
	// parallel: the parallel phase of Figure 5 and the per-GPU sweeps of
	// Figure 6 (0 = NumCPU). Figure 4 is unaffected — its speedups are
	// single-thread wall-clock measurements, so it always runs serially.
	Threads int
	// EngineThreads shards each simulation's SMs across that many engine
	// workers (deterministic; results are byte-identical to serial). The
	// parallel phase of Figure 5 divides its job pool by this, keeping the
	// total thread budget at Threads. 0 or 1 runs each simulation serially.
	EngineThreads int
	// EpochCycles sets the relaxed-sync epoch length of every parallel
	// simulation (see sim.Options.EpochCycles); meaningful only with
	// EngineThreads > 1. 0 or 1 keeps the exact per-cycle barrier.
	EpochCycles int
	// Sampling, when enabled, runs every simulation of the experiment in
	// sampled execution mode (launch replay + representative-block
	// sampling; see sim.Sampling). Reported cycles then include analytical
	// extrapolation, so figure errors measure the sampling trade directly.
	Sampling sim.Sampling
	// HW holds the golden-model coefficients (zero value = defaults).
	HW hwmodel.Params
	// Ctx cancels the whole experiment (nil = context.Background).
	Ctx context.Context
	// JobTimeout bounds each simulation's wall-clock time (0 = none). A
	// job exceeding it is recorded as a Failure; the figure renders from
	// the remaining jobs.
	JobTimeout time.Duration
	// Trace is the observability handle threaded into every simulation of
	// the experiment (nil records nothing). Parallel phases derive per-job
	// tracers from it; cmd/sweep owns the recorder behind it and must
	// close it on every exit path so partial traces stay well-formed.
	Trace *obs.Tracer
}

// Failure identifies one failed simulation within an experiment. Figures
// render from the successful subset; failures are carried alongside so
// callers (cmd/sweep) can report them and exit non-zero.
type Failure struct {
	// GPU and App identify the job; Stage names the simulator or model
	// that failed ("hwmodel", "Detailed", "Swift-Sim-Memory", ...).
	GPU   string
	App   string
	Stage string
	Err   error
}

func (f Failure) String() string {
	return fmt.Sprintf("%s/%s [%s]: %v", f.GPU, f.App, f.Stage, f.Err)
}

// ctx returns the experiment-wide context.
func (p *Params) ctx() context.Context {
	if p.Ctx != nil {
		return p.Ctx
	}
	return context.Background()
}

// runSim runs one simulation under the experiment context and per-job
// timeout.
func (p *Params) runSim(app *trace.App, gpu config.GPU, opts sim.Options) (*sim.Result, error) {
	ctx := p.ctx()
	if p.JobTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, p.JobTimeout)
		defer cancel()
	}
	opts.Trace = p.Trace
	if p.Sampling.Enabled && !opts.Sampling.Enabled {
		opts.Sampling = p.Sampling
	}
	return sim.RunCtx(ctx, app, gpu, opts)
}

func (p *Params) fill() {
	if len(p.Apps) == 0 {
		p.Apps = workload.Names()
	}
	if p.Scale <= 0 {
		p.Scale = 1.0
	}
	if p.GPU.Name == "" {
		p.GPU = config.RTX2080Ti()
	}
	if p.HW == (hwmodel.Params{}) {
		p.HW = hwmodel.DefaultParams()
	}
}

func (p *Params) apps() ([]*trace.App, error) {
	apps := make([]*trace.App, len(p.Apps))
	for i, name := range p.Apps {
		app, err := workload.Generate(name, p.Scale)
		if err != nil {
			return nil, err
		}
		apps[i] = app
	}
	return apps, nil
}

// ---------------------------------------------------------------------------
// Tables

// Table1 writes the three-GPU comparison of Table I.
func Table1(w io.Writer) {
	fmt.Fprintln(w, "Table I: comparison of three NVIDIA GPUs")
	fmt.Fprintf(w, "%-20s %12s %10s %10s\n", "NVIDIA GPUs", "RTX 2080 Ti", "RTX 3060", "RTX 3090")
	gpus := []config.GPU{config.RTX2080Ti(), config.RTX3060(), config.RTX3090()}
	row := func(label string, f func(config.GPU) string) {
		fmt.Fprintf(w, "%-20s %12s %10s %10s\n", label, f(gpus[0]), f(gpus[1]), f(gpus[2]))
	}
	row("SMs", func(g config.GPU) string { return fmt.Sprint(g.NumSMs) })
	row("CUDA Cores", func(g config.GPU) string { return fmt.Sprint(g.CUDACores()) })
	row("L2 Cache", func(g config.GPU) string {
		return fmt.Sprintf("%.1fMB", float64(g.L2TotalBytes())/(1<<20))
	})
	row("Mem partitions", func(g config.GPU) string { return fmt.Sprint(g.MemPartitions) })
}

// Table2 writes the RTX 2080 Ti configuration of Table II.
func Table2(w io.Writer) {
	g := config.RTX2080Ti()
	fmt.Fprintln(w, "Table II: NVIDIA RTX 2080 Ti GPU configuration")
	p := func(k, v string) { fmt.Fprintf(w, "  %-22s %s\n", k, v) }
	p("# SMs", fmt.Sprint(g.NumSMs))
	p("# Sub-Cores/SM", fmt.Sprint(g.SM.SubCores))
	p("Warp Scheduler", fmt.Sprintf("%dx, %s", g.SM.SchedulersPerSubCore, g.SM.Scheduler))
	dp := fmt.Sprintf("%d", g.SM.DPLanes)
	if g.SM.DPLanesHalf {
		dp = "0.5"
	}
	p("Exec Units", fmt.Sprintf("INT:%dx, SP:%dx, DP:%sx, SFU:%dx",
		g.SM.IntLanes, g.SM.SPLanes, dp, g.SM.SFULanes))
	p("LD/ST Units", fmt.Sprintf("%dx", g.SM.LDSTLanes))
	p("L1 in SM", fmt.Sprintf("sectored, streaming, write-through, %d banks, %dB/line, %dB/sector, %d MSHR, %d max merge, %s, %d cycles",
		g.L1.Banks, g.L1.LineBytes, g.L1.SectorBytes, g.L1.MSHREntries, g.L1.MSHRMaxMerge, g.L1.Replacement, g.L1.HitLatency))
	p("L2 Cache", fmt.Sprintf("sectored, write-back, %dB/line, %dB/sector, %d MSHR, %d max merge, %s, %d cycles",
		g.L2.LineBytes, g.L2.SectorBytes, g.L2.MSHREntries, g.L2.MSHRMaxMerge, g.L2.Replacement, g.L2.HitLatency))
	p("Memory", fmt.Sprintf("%d memory partitions, %d cycles", g.MemPartitions, g.DRAMLatency))
}

// ---------------------------------------------------------------------------
// Figure 4

// Fig4Row is one application's bar (errors) and scatter points (speedups)
// of Figure 4.
type Fig4Row struct {
	App      string
	HWCycles uint64
	// Indexed by sim.Kind: Detailed, Basic, Memory.
	Cycles [3]uint64
	Err    [3]float64
	Wall   [3]time.Duration
	// ProfileWall is the portion of Wall spent extracting hit rates
	// (non-zero only for Swift-Sim-Memory). Wall stays inclusive of it,
	// matching the paper's end-to-end speedup accounting (§IV).
	ProfileWall [3]time.Duration
	// Speedups of Basic and Memory over Detailed (single thread).
	SpeedupBasic  float64
	SpeedupMemory float64
}

// Fig4Result aggregates Figure 4.
type Fig4Result struct {
	Rows []Fig4Row
	// MeanErr is the arithmetic-mean prediction error per simulator.
	MeanErr [3]float64
	// Geometric-mean single-thread speedups over Detailed. Non-positive
	// speedups (failed or zero-wall jobs) are skipped; SpeedupsSkipped
	// counts them.
	GeoSpeedupBasic  float64
	GeoSpeedupMemory float64
	SpeedupsSkipped  int
	// Failed lists the applications excluded from the table because the
	// hardware model or one of the simulators failed on them.
	Failed []Failure
}

// Figure4 runs every application through the golden hardware model and the
// three simulator configurations on the RTX 2080 Ti (or p.GPU), computing
// cycle-prediction errors and single-thread speedups. Applications whose
// jobs fail are dropped from the table and recorded in Failed; the figure
// renders from the successful subset.
func Figure4(p Params) (*Fig4Result, error) {
	p.fill()
	apps, err := p.apps()
	if err != nil {
		return nil, err
	}
	res := &Fig4Result{}
	var errSum [3]float64
	var spBasic, spMem []float64
	for _, app := range apps {
		if cerr := p.ctx().Err(); cerr != nil {
			res.Failed = append(res.Failed, Failure{GPU: p.GPU.Name, App: app.Name, Stage: "canceled", Err: cerr})
			continue
		}
		hw, err := hwmodel.Run(app, p.GPU, p.HW)
		if err != nil {
			res.Failed = append(res.Failed, Failure{GPU: p.GPU.Name, App: app.Name, Stage: "hwmodel", Err: err})
			continue
		}
		row := Fig4Row{App: app.Name, HWCycles: hw.Cycles}
		ok := true
		for _, kind := range []sim.Kind{sim.Detailed, sim.Basic, sim.Memory} {
			r, err := p.runSim(app, p.GPU, sim.Options{Kind: kind})
			if err != nil {
				res.Failed = append(res.Failed, Failure{GPU: p.GPU.Name, App: app.Name, Stage: kind.String(), Err: err})
				ok = false
				break
			}
			row.Cycles[kind] = r.Cycles
			row.Err[kind] = stats.RelError(float64(r.Cycles), float64(hw.Cycles))
			row.Wall[kind] = r.Wall
			row.ProfileWall[kind] = r.ProfileWall
		}
		if !ok {
			continue
		}
		row.SpeedupBasic = stats.Speedup(row.Wall[sim.Detailed].Seconds(), row.Wall[sim.Basic].Seconds())
		row.SpeedupMemory = stats.Speedup(row.Wall[sim.Detailed].Seconds(), row.Wall[sim.Memory].Seconds())
		for k := 0; k < 3; k++ {
			errSum[k] += row.Err[k]
		}
		spBasic = append(spBasic, row.SpeedupBasic)
		spMem = append(spMem, row.SpeedupMemory)
		res.Rows = append(res.Rows, row)
	}
	for k := 0; k < 3; k++ {
		if len(res.Rows) > 0 {
			res.MeanErr[k] = errSum[k] / float64(len(res.Rows))
		}
	}
	var skB, skM int
	res.GeoSpeedupBasic, skB = stats.GeomeanSkipNonPositive(spBasic)
	res.GeoSpeedupMemory, skM = stats.GeomeanSkipNonPositive(spMem)
	res.SpeedupsSkipped = skB + skM
	return res, nil
}

// Print writes the Figure 4 table (and any failures beneath it).
func (r *Fig4Result) Print(w io.Writer) {
	fmt.Fprintln(w, "Figure 4: prediction error and speedup vs the detailed baseline (RTX 2080 Ti)")
	fmt.Fprintf(w, "%-10s %12s | %8s %8s %8s | %9s %9s\n",
		"App", "HW cycles", "errDet", "errBasic", "errMem", "spBasic", "spMem")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-10s %12d | %8s %8s %8s | %8.1fx %8.1fx\n",
			row.App, row.HWCycles,
			stats.Pct(row.Err[sim.Detailed]), stats.Pct(row.Err[sim.Basic]), stats.Pct(row.Err[sim.Memory]),
			row.SpeedupBasic, row.SpeedupMemory)
	}
	fmt.Fprintf(w, "%-10s %12s | %8s %8s %8s | %8.1fx %8.1fx\n",
		"MEAN/GEO", "",
		stats.Pct(r.MeanErr[sim.Detailed]), stats.Pct(r.MeanErr[sim.Basic]), stats.Pct(r.MeanErr[sim.Memory]),
		r.GeoSpeedupBasic, r.GeoSpeedupMemory)
	printFailures(w, r.Failed)
}

// printFailures appends a failure report beneath a figure.
func printFailures(w io.Writer, failed []Failure) {
	if len(failed) == 0 {
		return
	}
	fmt.Fprintf(w, "FAILED %d job(s); figure rendered from the successful subset:\n", len(failed))
	for _, f := range failed {
		fmt.Fprintf(w, "  %s\n", f)
	}
}

// ---------------------------------------------------------------------------
// Figure 5

// Fig5Result is the speedup contribution analysis of Figure 5.
type Fig5Result struct {
	// Single-thread geometric-mean speedups over the Detailed baseline.
	SingleThreadBasic  float64
	SingleThreadMemory float64
	// MemoryOverBasic is the extra factor from the analytical memory
	// model.
	MemoryOverBasic float64
	// Parallel speedups of the whole-suite wall time (1 thread vs
	// Threads workers), per configuration.
	ParallelBasic  float64
	ParallelMemory float64
	// Total speedups over single-thread Detailed including parallelism.
	TotalBasic  float64
	TotalMemory float64
	// Threads actually used.
	Threads int
	// Failed lists jobs that errored during any measurement phase. Wall
	// times (and hence speedups) cover the successful subset.
	Failed []Failure
}

// Figure5 reproduces the contribution analysis: hybrid-modeling speedup at
// one thread, then the additional factor from running applications in
// parallel. Failed jobs are recorded in Failed and excluded from the
// measurements rather than aborting the figure.
func Figure5(p Params) (*Fig5Result, error) {
	p.fill()
	apps, err := p.apps()
	if err != nil {
		return nil, err
	}
	res := &Fig5Result{Threads: p.Threads}
	if res.Threads <= 0 {
		res.Threads = defaultThreads()
	}
	mkJobs := func(kind sim.Kind) []runner.Job {
		jobs := make([]runner.Job, len(apps))
		for i, app := range apps {
			jobs[i] = runner.Job{App: app, GPU: p.GPU, Opts: sim.Options{Kind: kind}}
		}
		return jobs
	}
	// suiteWall measures the wall time of one sweep, summing only the
	// successful jobs' contribution (the sweep itself runs to completion;
	// failures are recorded, not fatal).
	suiteWall := func(kind sim.Kind, threads int) (time.Duration, error) {
		start := time.Now()
		outs := runner.Run(mkJobs(kind), threads, runner.Options{
			Ctx: p.Ctx, JobTimeout: p.JobTimeout, Trace: p.Trace,
			EngineThreads: p.EngineThreads, EpochCycles: p.EpochCycles,
			Sampling: p.Sampling,
		})
		for i, o := range outs {
			if o.Err != nil {
				res.Failed = append(res.Failed, Failure{
					GPU: p.GPU.Name, App: apps[i].Name,
					Stage: fmt.Sprintf("%v@%dthr", kind, threads), Err: o.Err,
				})
			}
		}
		if cerr := p.ctx().Err(); cerr != nil {
			return 0, fmt.Errorf("figure 5 canceled: %w", cerr)
		}
		return time.Since(start), nil
	}

	wallDet1, err := suiteWall(sim.Detailed, 1)
	if err != nil {
		return nil, err
	}
	wallBasic1, err := suiteWall(sim.Basic, 1)
	if err != nil {
		return nil, err
	}
	wallMem1, err := suiteWall(sim.Memory, 1)
	if err != nil {
		return nil, err
	}
	wallBasicN, err := suiteWall(sim.Basic, res.Threads)
	if err != nil {
		return nil, err
	}
	wallMemN, err := suiteWall(sim.Memory, res.Threads)
	if err != nil {
		return nil, err
	}

	res.SingleThreadBasic = stats.Speedup(wallDet1.Seconds(), wallBasic1.Seconds())
	res.SingleThreadMemory = stats.Speedup(wallDet1.Seconds(), wallMem1.Seconds())
	res.MemoryOverBasic = stats.Speedup(wallBasic1.Seconds(), wallMem1.Seconds())
	res.ParallelBasic = stats.Speedup(wallBasic1.Seconds(), wallBasicN.Seconds())
	res.ParallelMemory = stats.Speedup(wallMem1.Seconds(), wallMemN.Seconds())
	res.TotalBasic = stats.Speedup(wallDet1.Seconds(), wallBasicN.Seconds())
	res.TotalMemory = stats.Speedup(wallDet1.Seconds(), wallMemN.Seconds())
	return res, nil
}

// Print writes the Figure 5 decomposition.
func (r *Fig5Result) Print(w io.Writer) {
	fmt.Fprintln(w, "Figure 5: contribution analysis of speedup over the detailed baseline")
	fmt.Fprintf(w, "  single-thread Swift-Sim-Basic          %6.1fx\n", r.SingleThreadBasic)
	fmt.Fprintf(w, "  + analytical memory (Memory vs Basic)  %6.1fx\n", r.MemoryOverBasic)
	fmt.Fprintf(w, "  = single-thread Swift-Sim-Memory       %6.1fx\n", r.SingleThreadMemory)
	fmt.Fprintf(w, "  parallel factor (%2d threads) Basic     %6.1fx\n", r.Threads, r.ParallelBasic)
	fmt.Fprintf(w, "  parallel factor (%2d threads) Memory    %6.1fx\n", r.Threads, r.ParallelMemory)
	fmt.Fprintf(w, "  TOTAL Swift-Sim-Basic                  %6.1fx\n", r.TotalBasic)
	fmt.Fprintf(w, "  TOTAL Swift-Sim-Memory                 %6.1fx\n", r.TotalMemory)
	printFailures(w, r.Failed)
}

// ---------------------------------------------------------------------------
// Figure 6

// Fig6Row is one (GPU, application) error pair.
type Fig6Row struct {
	GPU         string
	App         string
	ErrDetailed float64
	ErrBasic    float64
}

// Fig6Result aggregates Figure 6: Detailed and Basic errors across GPUs.
type Fig6Result struct {
	Rows []Fig6Row
	// MeanErr maps GPU name to [Detailed, Basic] mean errors over the
	// successful rows.
	MeanErr map[string][2]float64
	// Failed lists (GPU, application) pairs excluded from the figure.
	Failed []Failure
}

// Figure6 validates Detailed and Swift-Sim-Basic against the golden model
// of each of the three GPUs. Failed (GPU, app) pairs are dropped from the
// figure and recorded in Failed, carrying only the first failing stage
// (an app whose Detailed run fails never runs Basic).
//
// Unlike Figure 4, the figure reports only error percentages — no
// wall-clock quantity — so its simulations run on a p.Threads worker pool:
// per GPU, the surviving apps' Detailed jobs sweep in parallel, then the
// Basic jobs of the apps whose Detailed run succeeded. Results are
// byte-identical to a serial run (each job is an independent simulator
// instance) and rows stay in application order.
func Figure6(p Params) (*Fig6Result, error) {
	p.fill()
	apps, err := p.apps()
	if err != nil {
		return nil, err
	}
	res := &Fig6Result{MeanErr: make(map[string][2]float64)}
	downscaled := p.GPU.NumSMs != config.RTX2080Ti().NumSMs ||
		p.GPU.MemPartitions != config.RTX2080Ti().MemPartitions
	// cand is an app that survived every stage so far, with its
	// accumulated per-stage cycle counts.
	type cand struct {
		app       *trace.App
		hwCycles  uint64
		detCycles uint64
	}
	for _, gpu := range []config.GPU{config.RTX2080Ti(), config.RTX3060(), config.RTX3090()} {
		if downscaled {
			// A scaled-down experiment GPU replaces only SM/partition
			// counts; per-architecture parameters are kept.
			gpu.NumSMs = p.GPU.NumSMs
			gpu.MemPartitions = p.GPU.MemPartitions
		}
		// Stage 1: the golden hardware model, serially — it is an
		// analytical computation, not a simulation worth pooling.
		var cands []cand
		for _, app := range apps {
			if cerr := p.ctx().Err(); cerr != nil {
				res.Failed = append(res.Failed, Failure{GPU: gpu.Name, App: app.Name, Stage: "canceled", Err: cerr})
				continue
			}
			hw, err := hwmodel.Run(app, gpu, p.HW)
			if err != nil {
				res.Failed = append(res.Failed, Failure{GPU: gpu.Name, App: app.Name, Stage: "hwmodel", Err: err})
				continue
			}
			cands = append(cands, cand{app: app, hwCycles: hw.Cycles})
		}
		runKind := func(kind sim.Kind, items []cand) []runner.Outcome {
			jobs := make([]runner.Job, len(items))
			for i, c := range items {
				jobs[i] = runner.Job{App: c.app, GPU: gpu, Opts: sim.Options{Kind: kind}}
			}
			return runner.Run(jobs, p.Threads, runner.Options{
				Ctx: p.Ctx, JobTimeout: p.JobTimeout, Trace: p.Trace,
				EngineThreads: p.EngineThreads, EpochCycles: p.EpochCycles,
				Sampling: p.Sampling,
			})
		}
		// Stage 2: Detailed sweep; stage 3: Basic, only for apps whose
		// Detailed run succeeded.
		var detOK []cand
		for i, o := range runKind(sim.Detailed, cands) {
			if o.Err != nil {
				res.Failed = append(res.Failed, Failure{GPU: gpu.Name, App: cands[i].app.Name, Stage: sim.Detailed.String(), Err: simErr(o.Err)})
				continue
			}
			c := cands[i]
			c.detCycles = o.Result.Cycles
			detOK = append(detOK, c)
		}
		var sumDet, sumBasic float64
		okRows := 0
		for i, o := range runKind(sim.Basic, detOK) {
			c := detOK[i]
			if o.Err != nil {
				res.Failed = append(res.Failed, Failure{GPU: gpu.Name, App: c.app.Name, Stage: sim.Basic.String(), Err: simErr(o.Err)})
				continue
			}
			row := Fig6Row{
				GPU:         gpu.Name,
				App:         c.app.Name,
				ErrDetailed: stats.RelError(float64(c.detCycles), float64(c.hwCycles)),
				ErrBasic:    stats.RelError(float64(o.Result.Cycles), float64(c.hwCycles)),
			}
			sumDet += row.ErrDetailed
			sumBasic += row.ErrBasic
			okRows++
			res.Rows = append(res.Rows, row)
		}
		if okRows > 0 {
			res.MeanErr[gpu.Name] = [2]float64{
				sumDet / float64(okRows),
				sumBasic / float64(okRows),
			}
		}
	}
	return res, nil
}

// simErr strips the runner's *JobError wrapper from a sweep outcome: the
// Failure record already carries the job's identity, so only the
// underlying simulation error is kept (panics, which have no underlying
// error, keep the full JobError).
func simErr(err error) error {
	var je *runner.JobError
	if errors.As(err, &je) && je.Err != nil {
		return je.Err
	}
	return err
}

// Print writes the Figure 6 summary.
func (r *Fig6Result) Print(w io.Writer) {
	fmt.Fprintln(w, "Figure 6: prediction error across GPU architectures")
	fmt.Fprintf(w, "%-10s %-10s %10s %10s\n", "GPU", "App", "errDet", "errBasic")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-10s %-10s %10s %10s\n", row.GPU, row.App,
			stats.Pct(row.ErrDetailed), stats.Pct(row.ErrBasic))
	}
	// Render the mean rows in sorted key order: ranging over the map
	// directly would make the report nondeterministic, and a hardcoded
	// name list would silently drop GPUs added to the figure later.
	names := make([]string, 0, len(r.MeanErr))
	for name := range r.MeanErr {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		m := r.MeanErr[name]
		fmt.Fprintf(w, "%-10s %-10s %10s %10s\n", name, "MEAN",
			stats.Pct(m[0]), stats.Pct(m[1]))
	}
	printFailures(w, r.Failed)
}

func defaultThreads() int { return runtime.NumCPU() }
