package experiments

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"swiftsim/internal/config"
	"swiftsim/internal/sim"
)

// smallParams keeps harness tests fast: few apps, small scale, small GPU.
func smallParams() Params {
	gpu := config.RTX2080Ti()
	gpu.NumSMs = 8
	gpu.MemPartitions = 4
	return Params{
		Apps:    []string{"BFS", "GEMM", "SM"},
		Scale:   0.15,
		GPU:     gpu,
		Threads: 2,
	}
}

func TestTable1(t *testing.T) {
	var sb strings.Builder
	Table1(&sb)
	out := sb.String()
	for _, want := range []string{"68", "4352", "5.5MB", "28", "3584", "3.0MB", "82", "10496", "6.0MB"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table1 missing %q:\n%s", want, out)
		}
	}
}

func TestTable2(t *testing.T) {
	var sb strings.Builder
	Table2(&sb)
	out := sb.String()
	for _, want := range []string{"68", "GTO", "INT:16x, SP:16x, DP:0.5x, SFU:4x",
		"write-through", "write-back", "22 memory partitions, 227 cycles", "256 MSHR", "192 MSHR"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table2 missing %q:\n%s", want, out)
		}
	}
}

func TestFigure4Harness(t *testing.T) {
	res, err := Figure4(smallParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.HWCycles == 0 {
			t.Errorf("%s: zero hardware cycles", row.App)
		}
		for k := 0; k < 3; k++ {
			if row.Err[k] < 0 || row.Err[k] > 2 {
				t.Errorf("%s: error[%d] = %v out of plausible range", row.App, k, row.Err[k])
			}
		}
		if row.SpeedupBasic <= 0 || row.SpeedupMemory <= 0 {
			t.Errorf("%s: non-positive speedups", row.App)
		}
	}
	// Paper shape: hybrid simulators are faster; Memory fastest.
	if res.GeoSpeedupMemory <= res.GeoSpeedupBasic {
		t.Errorf("Memory geomean speedup %.2f not above Basic %.2f",
			res.GeoSpeedupMemory, res.GeoSpeedupBasic)
	}
	var sb strings.Builder
	res.Print(&sb)
	if !strings.Contains(sb.String(), "MEAN/GEO") {
		t.Error("Print missing summary row")
	}
}

func TestFigure5Harness(t *testing.T) {
	res, err := Figure5(smallParams())
	if err != nil {
		t.Fatal(err)
	}
	if res.SingleThreadBasic <= 0 || res.SingleThreadMemory <= 0 {
		t.Fatal("non-positive speedups")
	}
	// Wall-clock ratios on millisecond-scale test workloads are noisy
	// (GC, co-scheduled tests); only require well-formed positive output.
	if res.TotalMemory <= 0 || res.TotalBasic <= 0 || res.ParallelMemory <= 0 {
		t.Errorf("non-positive speedup factors: %+v", res)
	}
	var sb strings.Builder
	res.Print(&sb)
	if !strings.Contains(sb.String(), "TOTAL Swift-Sim-Memory") {
		t.Error("Print missing totals")
	}
}

func TestFigure6Harness(t *testing.T) {
	p := smallParams()
	p.Apps = []string{"BFS", "SM"}
	res, err := Figure6(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2*3 {
		t.Fatalf("rows = %d, want 6 (2 apps × 3 GPUs)", len(res.Rows))
	}
	if len(res.MeanErr) != 3 {
		t.Fatalf("mean entries = %d, want 3", len(res.MeanErr))
	}
	var sb strings.Builder
	res.Print(&sb)
	for _, g := range []string{"RTX2080Ti", "RTX3060", "RTX3090"} {
		if !strings.Contains(sb.String(), g) {
			t.Errorf("Print missing %s", g)
		}
	}
}

func TestParamsFillDefaults(t *testing.T) {
	var p Params
	p.fill()
	if len(p.Apps) != 20 {
		t.Errorf("default apps = %d, want 20", len(p.Apps))
	}
	if p.Scale != 1.0 || p.GPU.Name != "RTX2080Ti" {
		t.Errorf("defaults wrong: scale=%v gpu=%s", p.Scale, p.GPU.Name)
	}
}

func TestFigure4UnknownApp(t *testing.T) {
	p := smallParams()
	p.Apps = []string{"NOPE"}
	if _, err := Figure4(p); err == nil {
		t.Fatal("unknown app accepted")
	}
}

func TestKindIndexing(t *testing.T) {
	// Fig4Row arrays are indexed by sim.Kind; the constants must stay
	// 0,1,2.
	if sim.Detailed != 0 || sim.Basic != 1 || sim.Memory != 2 {
		t.Fatal("sim.Kind constants changed; Fig4Row indexing breaks")
	}
}

// TestFigure4PartialResults: an unmeetable per-job deadline fails every
// simulation; the figure still renders (from an empty subset) and every
// failure is recorded with its stage.
func TestFigure4PartialResults(t *testing.T) {
	p := smallParams()
	p.JobTimeout = time.Nanosecond
	res, err := Figure4(p)
	if err != nil {
		t.Fatalf("Figure4 must not abort on per-job failures: %v", err)
	}
	if len(res.Rows) != 0 {
		t.Errorf("rows = %d, want 0 (every job timed out)", len(res.Rows))
	}
	if len(res.Failed) != len(p.Apps) {
		t.Fatalf("failures = %d, want %d", len(res.Failed), len(p.Apps))
	}
	for _, f := range res.Failed {
		if !errors.Is(f.Err, context.DeadlineExceeded) {
			t.Errorf("%s: cause = %v, want DeadlineExceeded", f.App, f.Err)
		}
		if f.Stage == "" || f.GPU == "" {
			t.Errorf("failure missing identity: %+v", f)
		}
	}
	var sb strings.Builder
	res.Print(&sb)
	if !strings.Contains(sb.String(), "FAILED 3 job(s)") {
		t.Errorf("Print missing failure report:\n%s", sb.String())
	}
}

// TestFigure4Canceled: a pre-canceled experiment context records every
// application as canceled instead of simulating.
func TestFigure4Canceled(t *testing.T) {
	p := smallParams()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p.Ctx = ctx
	res, err := Figure4(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 0 || len(res.Failed) != len(p.Apps) {
		t.Fatalf("rows=%d failed=%d, want 0/%d", len(res.Rows), len(res.Failed), len(p.Apps))
	}
	for _, f := range res.Failed {
		if f.Stage != "canceled" {
			t.Errorf("%s: stage = %q, want canceled", f.App, f.Stage)
		}
	}
}

// TestFigure5Canceled: figure 5 measures wall time, so cancellation aborts
// it with an error instead of producing meaningless timings.
func TestFigure5Canceled(t *testing.T) {
	p := smallParams()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p.Ctx = ctx
	if _, err := Figure5(p); err == nil {
		t.Fatal("Figure5 accepted a canceled context")
	}
}

// TestFigure6PartialResults: per-job deadline failures drop rows but keep
// the figure alive with per-(GPU, app) failure records.
func TestFigure6PartialResults(t *testing.T) {
	p := smallParams()
	p.Apps = []string{"BFS"}
	p.JobTimeout = time.Nanosecond
	res, err := Figure6(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 0 {
		t.Errorf("rows = %d, want 0", len(res.Rows))
	}
	if len(res.MeanErr) != 0 {
		t.Errorf("MeanErr has %d entries for an all-failed figure", len(res.MeanErr))
	}
	if len(res.Failed) != 3 { // one app × three GPUs
		t.Fatalf("failures = %d, want 3", len(res.Failed))
	}
	seen := map[string]bool{}
	for _, f := range res.Failed {
		seen[f.GPU] = true
	}
	for _, g := range []string{"RTX2080Ti", "RTX3060", "RTX3090"} {
		if !seen[g] {
			t.Errorf("no failure recorded for %s", g)
		}
	}
}

// TestFigure6PrintMeanRows pins the mean-row rendering: every MeanErr
// entry must appear (even for GPU names outside the stock preset list),
// in sorted order, so report output is deterministic and complete.
func TestFigure6PrintMeanRows(t *testing.T) {
	res := &Fig6Result{MeanErr: map[string][2]float64{
		"ZZZCustom": {0.10, 0.20},
		"AAACustom": {0.30, 0.40},
		"RTX3060":   {0.50, 0.60},
	}}
	var sb strings.Builder
	res.Print(&sb)
	out := sb.String()
	ia := strings.Index(out, "AAACustom")
	ir := strings.Index(out, "RTX3060")
	iz := strings.Index(out, "ZZZCustom")
	if ia < 0 || ir < 0 || iz < 0 {
		t.Fatalf("Print dropped a MeanErr entry:\n%s", out)
	}
	if !(ia < ir && ir < iz) {
		t.Errorf("mean rows not in sorted order:\n%s", out)
	}
	var sb2 strings.Builder
	res.Print(&sb2)
	if sb2.String() != out {
		t.Error("repeated Print produced different output")
	}
}
