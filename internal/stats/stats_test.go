package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestGeomean(t *testing.T) {
	if g := Geomean([]float64{2, 8}); g != 4 {
		t.Errorf("Geomean(2,8) = %v, want 4", g)
	}
	if g := Geomean([]float64{5}); g != 5 {
		t.Errorf("Geomean(5) = %v, want 5", g)
	}
	if g := Geomean(nil); g != 0 {
		t.Errorf("Geomean(nil) = %v, want 0", g)
	}
	if g := Geomean([]float64{1, -2}); !math.IsNaN(g) {
		t.Errorf("Geomean with negative = %v, want NaN", g)
	}
	if g := Geomean([]float64{1, 0}); !math.IsNaN(g) {
		t.Errorf("Geomean with zero = %v, want NaN", g)
	}
}

func TestMean(t *testing.T) {
	if m := Mean([]float64{1, 2, 3}); m != 2 {
		t.Errorf("Mean = %v, want 2", m)
	}
	if m := Mean(nil); m != 0 {
		t.Errorf("Mean(nil) = %v, want 0", m)
	}
}

func TestRelError(t *testing.T) {
	if e := RelError(110, 100); math.Abs(e-0.1) > 1e-12 {
		t.Errorf("RelError(110,100) = %v, want 0.1", e)
	}
	if e := RelError(90, 100); math.Abs(e-0.1) > 1e-12 {
		t.Errorf("RelError(90,100) = %v, want 0.1", e)
	}
	if e := RelError(1, 0); !math.IsNaN(e) {
		t.Errorf("RelError with zero actual = %v, want NaN", e)
	}
}

func TestSpeedup(t *testing.T) {
	if s := Speedup(100, 10); s != 10 {
		t.Errorf("Speedup = %v, want 10", s)
	}
	if s := Speedup(100, 0); !math.IsNaN(s) {
		t.Errorf("Speedup with zero = %v, want NaN", s)
	}
}

func TestPct(t *testing.T) {
	if got := Pct(0.226); got != "22.6%" {
		t.Errorf("Pct = %q", got)
	}
}

// TestQuickGeomeanBounds: the geometric mean of positive values lies
// between their minimum and maximum.
func TestQuickGeomeanBounds(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		lo, hi := math.Inf(1), math.Inf(-1)
		for i, r := range raw {
			xs[i] = float64(r) + 1
			lo = math.Min(lo, xs[i])
			hi = math.Max(hi, xs[i])
		}
		g := Geomean(xs)
		return g >= lo-1e-9 && g <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGeomeanSkipNonPositive(t *testing.T) {
	// Clean input: identical to Geomean, nothing skipped.
	g, skipped := GeomeanSkipNonPositive([]float64{2, 8})
	if g != 4 || skipped != 0 {
		t.Errorf("clean input: got %v (skipped %d), want 4 (skipped 0)", g, skipped)
	}

	// Contaminated input: zeros, negatives, NaN and +Inf are dropped and
	// counted; the mean comes from the remaining values only.
	xs := []float64{2, 0, 8, -3, math.NaN(), math.Inf(1)}
	g, skipped = GeomeanSkipNonPositive(xs)
	if math.Abs(g-4) > 1e-12 {
		t.Errorf("contaminated input: geomean = %v, want 4", g)
	}
	if skipped != 4 {
		t.Errorf("contaminated input: skipped = %d, want 4", skipped)
	}

	// All values unusable: zero mean, everything skipped.
	g, skipped = GeomeanSkipNonPositive([]float64{0, math.NaN()})
	if g != 0 || skipped != 2 {
		t.Errorf("all-skipped input: got %v (skipped %d), want 0 (skipped 2)", g, skipped)
	}

	// Empty input.
	if g, skipped = GeomeanSkipNonPositive(nil); g != 0 || skipped != 0 {
		t.Errorf("nil input: got %v (skipped %d)", g, skipped)
	}
}
