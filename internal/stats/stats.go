// Package stats provides the small statistical helpers the evaluation
// harness uses: geometric means (the paper reports geometric-mean
// speedups), arithmetic means, and relative cycle-prediction errors.
package stats

import (
	"fmt"
	"math"
)

// Geomean returns the geometric mean of xs. It returns 0 for an empty
// slice and NaN if any value is non-positive.
func Geomean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			return math.NaN()
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// GeomeanSkipNonPositive returns the geometric mean of the usable values
// of xs along with the number of values skipped. Non-positive values, NaN
// and +Inf are skipped rather than contaminating the whole mean: a single
// zero-cycle failed job would otherwise turn an entire report table into
// NaN. With no usable values it returns (0, skipped).
func GeomeanSkipNonPositive(xs []float64) (geomean float64, skipped int) {
	sum, n := 0.0, 0
	for _, x := range xs {
		if !(x > 0) || math.IsInf(x, 1) { // !(x>0) also catches NaN
			skipped++
			continue
		}
		sum += math.Log(x)
		n++
	}
	if n == 0 {
		return 0, skipped
	}
	return math.Exp(sum / float64(n)), skipped
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// RelError returns |predicted-actual| / actual — the prediction-error
// metric of the paper's Figures 4 and 6. It returns NaN when actual is 0.
func RelError(predicted, actual float64) float64 {
	if actual == 0 {
		return math.NaN()
	}
	return math.Abs(predicted-actual) / actual
}

// Speedup returns baseline/measured — how many times faster "measured" is
// than "baseline". It returns NaN when measured is 0.
func Speedup(baseline, measured float64) float64 {
	if measured == 0 {
		return math.NaN()
	}
	return baseline / measured
}

// Pct formats a fraction as a percentage string with one decimal.
func Pct(x float64) string {
	return fmt.Sprintf("%.1f%%", 100*x)
}
