package runner

import (
	"testing"

	"swiftsim/internal/config"
	"swiftsim/internal/sim"
	"swiftsim/internal/workload"
)

func testJobs(t *testing.T, names []string) []Job {
	t.Helper()
	gpu := config.RTX2080Ti()
	gpu.NumSMs = 4
	gpu.MemPartitions = 2
	var jobs []Job
	for _, n := range names {
		app, err := workload.Generate(n, 0.1)
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, Job{App: app, GPU: gpu, Opts: sim.Options{Kind: sim.Memory}})
	}
	return jobs
}

func TestParallelMatchesSequential(t *testing.T) {
	names := []string{"BFS", "GEMM", "SM", "LU", "WC", "MVT"}
	jobs := testJobs(t, names)
	seq := RunAll(jobs, 1)
	par := RunAll(jobs, 4)
	for i := range seq {
		if seq[i].Err != nil || par[i].Err != nil {
			t.Fatalf("job %d errors: %v / %v", i, seq[i].Err, par[i].Err)
		}
		if seq[i].Result.Cycles != par[i].Result.Cycles {
			t.Errorf("%s: parallel cycles %d != sequential %d",
				names[i], par[i].Result.Cycles, seq[i].Result.Cycles)
		}
		if seq[i].Result.App != names[i] || par[i].Result.App != names[i] {
			t.Errorf("job %d: order not preserved (%s/%s)", i,
				seq[i].Result.App, par[i].Result.App)
		}
	}
}

func TestDefaultThreadCount(t *testing.T) {
	jobs := testJobs(t, []string{"BFS", "GEMM"})
	out := RunAll(jobs, 0) // NumCPU
	for i, o := range out {
		if o.Err != nil {
			t.Fatalf("job %d: %v", i, o.Err)
		}
	}
}

func TestErrorsPropagate(t *testing.T) {
	jobs := testJobs(t, []string{"BFS"})
	bad := jobs[0]
	bad.GPU.NumSMs = 0
	out := RunAll([]Job{bad, jobs[0]}, 2)
	if out[0].Err == nil {
		t.Error("invalid job did not error")
	}
	if out[1].Err != nil {
		t.Errorf("valid job errored: %v", out[1].Err)
	}
}

func TestEmptyJobs(t *testing.T) {
	if out := RunAll(nil, 4); len(out) != 0 {
		t.Fatalf("RunAll(nil) returned %d outcomes", len(out))
	}
}
